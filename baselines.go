package datalinks

import (
	"datalinks/internal/cau"
	"datalinks/internal/cico"
	"datalinks/internal/fs"
)

func intToFsUID(uid int32) fs.UID { return fs.UID(uid) }

// The paper's §3 compares update-in-place against two older disciplines.
// Both are implemented and exposed here so applications (and the E6
// experiment) can run them against the same file servers.

// CheckOutManager is the check-in/check-out discipline: the database locks
// a file at check-out and releases it at check-in. The lock spans the whole
// edit, which is exactly the concurrency cost §3 criticizes.
type CheckOutManager struct {
	inner *cico.Manager
}

// CheckOutTicket represents one granted check-out with a private working
// copy in Content.
type CheckOutTicket struct {
	inner *cico.Ticket
}

// Content returns the working copy for editing.
func (t *CheckOutTicket) Content() []byte { return t.inner.Content }

// SetContent replaces the working copy.
func (t *CheckOutTicket) SetContent(p []byte) { t.inner.Content = p }

// NewCheckOutManager creates a check-out coordinator over one file server,
// storing its lock table in the system's host database.
func (s *System) NewCheckOutManager(server string) (*CheckOutManager, error) {
	srv, err := s.core.Server(server)
	if err != nil {
		return nil, err
	}
	m, err := cico.New(s.core.DB, srv.Phys, srv.Archive, server, nil)
	if err != nil {
		return nil, err
	}
	return &CheckOutManager{inner: m}, nil
}

// CheckOut locks the file in the database and returns a working copy.
func (m *CheckOutManager) CheckOut(uid int32, url string) (*CheckOutTicket, error) {
	t, err := m.inner.CheckOut(intToFsUID(uid), url)
	if err != nil {
		return nil, err
	}
	return &CheckOutTicket{inner: t}, nil
}

// CheckIn writes the working copy back and releases the lock.
func (m *CheckOutManager) CheckIn(t *CheckOutTicket) error { return m.inner.CheckIn(t.inner) }

// Cancel abandons a check-out without writing.
func (m *CheckOutManager) Cancel(t *CheckOutTicket) error { return m.inner.Cancel(t.inner) }

// Outstanding reports how many files are currently checked out.
func (m *CheckOutManager) Outstanding() int { return m.inner.OutstandingCheckouts() }

// CopyUpdateManager is the copy-and-update discipline: private copies, no
// locks, consistency left to the application — including the possibility of
// lost updates with blind check-ins ("and it does occur", §3).
type CopyUpdateManager struct {
	inner *cau.Manager
}

// WorkCopy is a private copy of a file.
type WorkCopy struct {
	inner *cau.WorkCopy
}

// Content returns the private copy for editing.
func (w *WorkCopy) Content() []byte { return w.inner.Content }

// SetContent replaces the private copy.
func (w *WorkCopy) SetContent(p []byte) { w.inner.Content = p }

// NewCopyUpdateManager creates a copy-and-update coordinator over one file
// server.
func (s *System) NewCopyUpdateManager(server string) (*CopyUpdateManager, error) {
	srv, err := s.core.Server(server)
	if err != nil {
		return nil, err
	}
	return &CopyUpdateManager{inner: cau.New(srv.Phys, srv.Archive, server, nil)}, nil
}

// Copy takes a private, lock-free copy of the file.
func (m *CopyUpdateManager) Copy(url string) (*WorkCopy, error) {
	w, err := m.inner.Copy(url)
	if err != nil {
		return nil, err
	}
	return &WorkCopy{inner: w}, nil
}

// CheckInBlind writes the copy back unconditionally (last writer wins; a
// concurrent committed update is silently lost and counted).
func (m *CopyUpdateManager) CheckInBlind(w *WorkCopy) error { return m.inner.CheckInBlind(w.inner) }

// CheckInSafe writes back only if the file is unchanged since Copy;
// otherwise merge (base, mine, theirs) is consulted, or the check-in fails.
func (m *CopyUpdateManager) CheckInSafe(w *WorkCopy, merge func(base, mine, theirs []byte) ([]byte, error)) error {
	if merge == nil {
		return m.inner.CheckInSafe(w.inner, nil)
	}
	return m.inner.CheckInSafe(w.inner, cau.MergeFunc(merge))
}

// Stats reports copies taken, lost updates, merges, and rejected check-ins.
func (m *CopyUpdateManager) Stats() (copies, lost, merges, rejects int64) {
	return m.inner.Stats()
}
