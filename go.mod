module datalinks

go 1.22
