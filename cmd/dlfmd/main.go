// Command dlfmd runs a standalone DataLinks File Manager serving its upcall
// protocol over TCP — the deployment shape of Figure 1, where DLFM is a
// user-space daemon on each file server and DLFS reaches it via IPC.
//
// The daemon owns an in-memory physical file system seeded from -seed flags
// and a local archive store. A DLFS configured with upcall.Dial(addr) can
// mount against it from another process.
//
//	dlfmd -addr 127.0.0.1:7707 -name fs1 -seed /data/a.txt=hello -selftest
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/dlfm"
	"datalinks/internal/fs"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// standaloneHost is a minimal Host for a DLFM without a database attached:
// metadata updates commit trivially and every outcome is "committed". Used
// only by this demo daemon; in a real deployment the DataLinks engine serves
// this interface.
type standaloneHost struct{ state uint64 }

func (h *standaloneHost) MetaUpdate(server, path string, size int64, mtime time.Time, sub sqlmini.XRM) (uint64, error) {
	h.state++
	id := h.state + 1_000_000
	if err := sub.PrepareXRM(id); err != nil {
		_ = sub.AbortXRM(id)
		return 0, err
	}
	if err := sub.CommitXRM(id); err != nil {
		return 0, err
	}
	return h.state, nil
}
func (h *standaloneHost) TxnOutcome(uint64) (bool, bool) { return true, true }
func (h *standaloneHost) StateID() uint64                { return h.state }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7707", "listen address for the upcall service")
		name         = flag.String("name", "fs1", "file server name")
		key          = flag.String("key", "datalinks-shared-secret", "token key shared with the engine")
		selftest     = flag.Bool("selftest", false, "issue a token and validate it over TCP, then exit")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGINT/SIGTERM; exceeding it exits nonzero")
		maxConns     = flag.Int("max-conns", 0, "max concurrent upcall connections (0: default)")
		window       = flag.Int("window", 0, "max in-flight requests per connection (0: default)")
		maxInflight  = flag.Int("max-inflight", 0, "max in-flight requests across all connections (0: default)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "evict connections idle this long (0: never)")
		ioTimeout    = flag.Duration("io-timeout", 0, "per-frame read/write deadline (0: default)")
		obsAddr      = flag.String("obs-addr", "", "observability HTTP listen address (/metrics, /debug/traces, pprof); empty disables")
		slowOp       = flag.Duration("slow-op", 0, "log upcalls slower than this as slow_op JSON events to stderr (0: never)")
	)
	var seeds seedList
	flag.Var(&seeds, "seed", "seed file as path=content (repeatable)")
	flag.Parse()

	phys := fs.New()
	for _, s := range seeds {
		if err := phys.MkdirAll(parentDir(s.path), fs.Cred{UID: fs.Root}, 0o777); err != nil {
			fatal(err)
		}
		if err := phys.WriteFile(s.path, []byte(s.content)); err != nil {
			fatal(err)
		}
	}
	// One registry and one tracer shared by the DLFM and the upcall server,
	// so daemon counters and network counters expose through one /metrics
	// page and inbound trace contexts stitch into local traces.
	reg := metrics.NewRegistry()
	// Liveness series: a scrape of a freshly started (or idle) daemon is
	// still non-empty, so monitors can distinguish "up but quiet" from
	// "unreachable".
	reg.Counter("dlfmd.up").Inc()
	var tracer *obs.Tracer
	if *obsAddr != "" || *slowOp > 0 {
		tracer = obs.New(obs.Config{
			SlowOpThreshold: *slowOp,
			Log:             obs.NewLogger(os.Stderr, obs.LevelDebug),
		})
	}
	srv, err := dlfm.New(dlfm.Config{
		Name:     *name,
		Phys:     phys,
		Archive:  archive.New(0, nil),
		Host:     &standaloneHost{},
		TokenKey: []byte(*key),
		Metrics:  reg,
		Tracer:   tracer,
	})
	if err != nil {
		fatal(err)
	}
	server, bound, err := upcall.ServeConfig(srv, *addr, upcall.ServerConfig{
		MaxConns:     *maxConns,
		Window:       *window,
		MaxInflight:  *maxInflight,
		IdleTimeout:  *idleTimeout,
		FrameTimeout: *ioTimeout,
		WriteTimeout: *ioTimeout,
		Metrics:      reg,
		Tracer:       tracer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dlfmd: %s serving upcalls on %s (%d files seeded)\n", *name, bound, len(seeds))

	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := http.Serve(ln, obs.Mux(reg, tracer)); err != nil {
				fmt.Fprintln(os.Stderr, "dlfmd: obs server:", err)
			}
		}()
		fmt.Printf("dlfmd: observability on http://%s (/metrics, /debug/traces, /debug/pprof)\n", ln.Addr())
	}

	if *selftest {
		client, err := upcall.Dial(bound)
		if err != nil {
			fatal(err)
		}
		path := "/selftest.txt"
		if err := phys.WriteFile(path, []byte("ok")); err != nil {
			fatal(err)
		}
		tok := srv.Authority().Issue(token.Read, path)
		resp, err := client.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: path, Token: tok, UID: 100})
		if err != nil || !resp.OK {
			fatal(fmt.Errorf("selftest validate failed: %+v %v", resp, err))
		}
		fmt.Println("dlfmd: selftest passed (token validated over TCP)")
		client.Close()
		server.Close()
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("dlfmd: %v received, draining (up to %v)\n", s, *drainTimeout)
	if err := server.Drain(*drainTimeout); err != nil {
		// In-flight work did not finish in time; connections were closed
		// hard. Report the dirty shutdown to the supervisor.
		fmt.Fprintln(os.Stderr, "dlfmd:", err)
		srv.Close()
		os.Exit(2)
	}
	srv.Close()
	fmt.Println("dlfmd: drained cleanly")
}

type seed struct{ path, content string }

type seedList []seed

func (s *seedList) String() string { return fmt.Sprintf("%d seeds", len(*s)) }
func (s *seedList) Set(v string) error {
	path, content, ok := strings.Cut(v, "=")
	if !ok || !strings.HasPrefix(path, "/") {
		return fmt.Errorf("seed must be /path=content, got %q", v)
	}
	*s = append(*s, seed{path: path, content: content})
	return nil
}

func parentDir(p string) string {
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlfmd:", err)
	os.Exit(1)
}
