// Command dldb is an interactive SQL shell over a DataLinks-enabled host
// database with one or more in-memory file servers attached — a playground
// for the whole system.
//
// SQL statements execute directly. Dot-commands drive the file-server side:
//
//	.help                              this help
//	.seed <server> <path> <text>       create a file (owned by uid 100)
//	.cat <server> <path>               print a file's content
//	.ls <server> <dir>                 list a directory
//	.read <url>                        open+read via the file API (token URLs work)
//	.update <url> <text>               in-place update transaction (write-token URL)
//	.versions <server> <path>          archived versions of a linked file
//	.linked <server>                   linked files on a server
//	.state                             current database state id
//	.backup / .restore <stateid>       coordinated backup/point-in-time restore
//	.crash <server>                    crash + recover a file server
//	.metrics                           upcall/engine counters
//	.quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"datalinks"
)

func main() {
	servers := flag.String("servers", "fs1", "comma-separated file server names")
	flag.Parse()

	var cfgs []datalinks.ServerConfig
	for _, name := range strings.Split(*servers, ",") {
		cfgs = append(cfgs, datalinks.ServerConfig{Name: strings.TrimSpace(name)})
	}
	sys, err := datalinks.Open(datalinks.Config{Servers: cfgs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dldb:", err)
		os.Exit(1)
	}
	defer sys.Close()
	sess := sys.Session(100)

	fmt.Printf("dldb — DataLinks shell. Servers: %s. Type .help for commands.\n", *servers)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("dldb> ")
		if !scanner.Scan() {
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if !dot(sys, sess, line) {
				return
			}
			continue
		}
		runSQL(sys, line)
	}
}

func runSQL(sys *datalinks.System, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := sys.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(rows.Cols, " | "))
		for _, r := range rows.Data {
			cells := make([]string, len(r))
			for i, v := range r {
				cells[i] = fmt.Sprintf("%v", v)
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows)\n", len(rows.Data))
		return
	}
	n, err := sys.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", n)
}

// dot handles a dot-command; returns false to quit.
func dot(sys *datalinks.System, sess *datalinks.Session, line string) bool {
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	rest := func(i int) string {
		if i < len(fields) {
			return strings.Join(fields[i:], " ")
		}
		return ""
	}
	switch cmd {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println("SQL or: .seed .cat .ls .read .update .versions .linked .state .backup .restore .crash .metrics .quit")
	case ".seed":
		fsrv, err := sys.FileServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := fsrv.SeedFile(arg(2), []byte(rest(3)), 100); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("ok")
	case ".cat":
		fsrv, err := sys.FileServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		data, err := fsrv.ReadFile(arg(2))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(string(data))
	case ".ls":
		fsrv, err := sys.FileServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		names, err := fsrv.ListDir(arg(2))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case ".read":
		f, err := sess.OpenRead(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		data, err := f.ReadAll()
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(string(data))
	case ".update":
		f, err := sess.OpenWrite(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if err := f.WriteAll([]byte(rest(2))); err != nil {
			fmt.Println("error:", err)
			f.Abort()
			break
		}
		if err := f.Close(); err != nil {
			fmt.Println("commit failed:", err)
			break
		}
		fmt.Println("committed")
	case ".versions":
		fsrv, err := sys.FileServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fsrv.WaitArchives()
		fmt.Println(fsrv.Versions(arg(2)))
	case ".linked":
		fsrv, err := sys.FileServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, p := range fsrv.LinkedFiles() {
			fmt.Println(p)
		}
	case ".state":
		fmt.Println(sys.StateID())
	case ".backup":
		fmt.Printf("backup point: state id %d (use .restore %d)\n", sys.StateID(), sys.StateID())
	case ".restore":
		id, err := strconv.ParseUint(arg(1), 10, 64)
		if err != nil {
			fmt.Println("usage: .restore <stateid>")
			break
		}
		if err := sys.RestoreToState(id); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("restored database and linked files to state", id)
	case ".crash":
		rep, err := sys.CrashAndRecoverServer(arg(1))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("recovered: %d files restored, %d archives completed, commits=%v aborts=%v\n",
			len(rep.RestoredFiles), len(rep.ArchivedVersions), rep.ResolvedCommit, rep.ResolvedAbort)
	case ".metrics":
		for _, name := range strings.Split(flagServers(), ",") {
			fsrv, err := sys.FileServer(strings.TrimSpace(name))
			if err == nil {
				fmt.Printf("%s upcalls: %d\n", name, fsrv.UpcallCount())
			}
		}
	default:
		fmt.Println("unknown command; try .help")
	}
	return true
}

func flagServers() string {
	f := flag.Lookup("servers")
	if f == nil {
		return "fs1"
	}
	return f.Value.String()
}
