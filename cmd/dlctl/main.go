// Command dlctl demonstrates the administrative workflows of DataLinks on a
// self-contained system: linking/unlinking, status inspection, coordinated
// backup/restore, and crash recovery. Each -demo runs a scripted scenario
// and narrates what the system does.
//
//	dlctl -demo status
//	dlctl -demo backup-restore
//	dlctl -demo crash
//	dlctl -demo ring
//	dlctl -demo failover
//	dlctl -demo trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"datalinks"
	"datalinks/internal/obs"
	"datalinks/internal/upcall"
)

func main() {
	demo := flag.String("demo", "status", "scenario: status | backup-restore | crash | ring | failover | trace")
	flag.Parse()

	if *demo == "ring" {
		ringDemo()
		return
	}
	if *demo == "failover" {
		failoverDemo()
		return
	}
	if *demo == "trace" {
		traceDemo()
		return
	}

	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{Name: "fs1"}},
	})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fsrv, _ := sys.FileServer("fs1")

	// Common setup: two linked files.
	must(fsrv.SeedFile("/docs/contract.pdf", []byte("contract v1"), 100))
	must(fsrv.SeedFile("/docs/report.pdf", []byte("report v1"), 100))
	sys.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT)`)
	sys.MustExec(`INSERT INTO docs (id, doc) VALUES (1, DLVALUE('dlfs://fs1/docs/contract.pdf'))`)
	sys.MustExec(`INSERT INTO docs (id, doc) VALUES (2, DLVALUE('dlfs://fs1/docs/report.pdf'))`)

	switch *demo {
	case "status":
		fmt.Println("== dlctl status ==")
		fmt.Println("state id:   ", sys.StateID())
		fmt.Println("linked:     ", fsrv.LinkedFiles())
		fmt.Println("upcalls:    ", fsrv.UpcallCount())
		rows, _ := sys.Query(`SELECT id, DLURLPATHONLY(doc) FROM docs ORDER BY id`)
		for _, r := range rows.Data {
			fmt.Printf("row %v -> %v\n", r[0], r[1])
		}
	case "backup-restore":
		fmt.Println("== coordinated backup/restore (§4.4) ==")
		backupState := sys.StateID()
		fmt.Println("backup taken at state", backupState)

		url, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = 1`)
		must(err)
		f, err := sys.Session(100).OpenWrite(url)
		must(err)
		must(f.WriteAll([]byte("contract v2 SIGNED")))
		must(f.Close())
		fsrv.WaitArchives()
		data, _ := fsrv.ReadFile("/docs/contract.pdf")
		fmt.Printf("after update: %q (versions %v)\n", data, fsrv.Versions("/docs/contract.pdf"))

		must(sys.RestoreToState(backupState))
		data, _ = fsrv.ReadFile("/docs/contract.pdf")
		fmt.Printf("after restore to %d: %q\n", backupState, data)
	case "crash":
		fmt.Println("== crash recovery (§4.2) ==")
		url, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = 2`)
		must(err)
		f, err := sys.Session(100).OpenWrite(url)
		must(err)
		f.WriteAll([]byte("report v2 — NEVER COMMITTED"))
		fmt.Println("update in flight; crashing the file server now...")
		rep, err := sys.CrashAndRecoverServer("fs1")
		must(err)
		fmt.Printf("recovery: restored=%v archived=%v\n", rep.RestoredFiles, rep.ArchivedVersions)
		fsrv2, _ := sys.FileServer("fs1")
		data, _ := fsrv2.ReadFile("/docs/report.pdf")
		fmt.Printf("file content after recovery: %q (the last committed version)\n", data)
		quarantined, _ := fsrv2.ListDir("/lost+found")
		fmt.Println("quarantined in-flight versions:", quarantined)
	default:
		fmt.Fprintf(os.Stderr, "dlctl: unknown demo %q\n", *demo)
		os.Exit(1)
	}
}

// ringDemo inspects the scale-out namespace: where the consistent-hash ring
// places each linked path, which successors replicate it, how many shards
// each member serves, and what the migration and replication counters record
// after the cluster grows by one member.
func ringDemo() {
	fmt.Println("== dlctl ring: placement, successor lists, migration status ==")
	c, err := datalinks.OpenCluster(datalinks.ClusterConfig{
		Members:     []datalinks.ServerConfig{{Name: "fs1"}, {Name: "fs2"}},
		Replicas:    2,
		WriteQuorum: 2,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	c.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	const files = 12
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/docs/doc%02d.pdf", i)
		must(c.SeedFile(paths[i], []byte(fmt.Sprintf("doc %d v1", i)), 100))
		c.MustExec(fmt.Sprintf(`INSERT INTO docs (id, doc) VALUES (%d, DLVALUE('%s'))`, i, c.URL(paths[i])))
	}

	fmt.Printf("\nauthority %q, members %v\n", c.Authority(), c.Members())
	fmt.Println("\npath -> replica set (owner first, then ring successors):")
	for _, p := range paths {
		fmt.Printf("  %-22s -> %v\n", p, c.ReplicaSet(p))
	}

	fmt.Println("\nper-server shard counts:")
	printPlacements(c.Placements())

	fmt.Println("\ngrowing the cluster: AddServer fs3 (live rebalance)...")
	must(c.AddServer(datalinks.ServerConfig{Name: "fs3"}))

	fmt.Println("\nper-server shard counts after rebalance:")
	printPlacements(c.Placements())

	reg := c.Internal().Router().Metrics()
	fmt.Println("\nmigration status:")
	for _, nv := range reg.Snapshot() {
		fmt.Printf("  %-18s %d\n", nv.Name+":", nv.Value)
	}
	printReplCounters(c)

	fmt.Println("\nreplica sets after growth:")
	for _, p := range paths {
		fmt.Printf("  %-22s -> %v\n", p, c.ReplicaSet(p))
	}
}

// failoverDemo exercises replicated shards end to end: every path's committed
// history lives on its owner and its ring successor, a member machine dies,
// and Failover promotes the surviving replicas in place — no cold start, no
// archive handoff, reads and writes continue on the survivors.
func failoverDemo() {
	fmt.Println("== dlctl failover: successor replication, promote in place ==")
	c, err := datalinks.OpenCluster(datalinks.ClusterConfig{
		Members:     []datalinks.ServerConfig{{Name: "fs1"}, {Name: "fs2"}, {Name: "fs3"}},
		Replicas:    2,
		WriteQuorum: 2,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	c.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	const files = 8
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/docs/doc%02d.pdf", i)
		must(c.SeedFile(paths[i], []byte(fmt.Sprintf("doc %d v1", i)), 100))
		c.MustExec(fmt.Sprintf(`INSERT INTO docs (id, doc) VALUES (%d, DLVALUE('%s'))`, i, c.URL(paths[i])))
	}
	// Commit an update through each path so the replicas carry real history,
	// shipped synchronously at the commit barrier (write quorum 2).
	for i, p := range paths {
		url, err := c.QueryString(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = %d`, i))
		must(err)
		f, err := c.Session(100).OpenWrite(url)
		must(err)
		must(f.WriteAll([]byte(fmt.Sprintf("doc %d v2 REPLICATED", i))))
		must(f.Close())
		_ = p
	}
	c.WaitArchives()

	fmt.Printf("\nmembers %v; replica sets (owner first, then successors):\n", c.Members())
	for _, p := range paths {
		fmt.Printf("  %-22s -> %v\n", p, c.ReplicaSet(p))
	}

	victim := mustOwner(c, paths[0])
	fmt.Printf("\nmachine %s dies (FailServer); failing over its shards...\n", victim)
	must(c.FailServer(victim))
	rep, err := c.Failover(victim)
	must(err)
	fmt.Printf("failover promoted %d paths in %v: %v\n", len(rep.Promoted), rep.Elapsed.Round(time.Microsecond), rep.Promoted)

	fmt.Println("\nreplica sets after failover (promoted successors now own):")
	for _, p := range paths {
		fmt.Printf("  %-22s -> %v\n", p, c.ReplicaSet(p))
	}

	fmt.Println("\nreading every path from the survivors:")
	for i, p := range paths {
		url, err := c.QueryString(fmt.Sprintf(`SELECT DLURLCOMPLETE(doc) FROM docs WHERE id = %d`, i))
		must(err)
		f, err := c.Session(100).OpenRead(url)
		must(err)
		data, err := f.ReadAll()
		must(err)
		must(f.Close())
		fmt.Printf("  %-22s -> %q (owner %s)\n", p, data, mustOwner(c, p))
	}

	printReplCounters(c)
}

// printReplCounters renders every repl.* counter across the cluster's
// registries: the router's (failovers, stale reads, probe deaths) and each
// member DLFM's (ships, applies, promotions, quorum waits).
func printReplCounters(c *datalinks.Cluster) {
	fmt.Println("\nreplication counters:")
	regs := c.Internal().Metrics()
	names := make([]string, 0, len(regs))
	for name := range regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, nv := range regs[name].Snapshot() {
			if !strings.Contains(nv.Name, "repl.") {
				continue
			}
			fmt.Printf("  %-10s %-26s %d\n", name, nv.Name, nv.Value)
		}
	}
}

func mustOwner(c *datalinks.Cluster, path string) string {
	owner, err := c.Owner(path)
	must(err)
	return owner
}

// traceDemo follows one commit from the session API to the archive fsync: a
// TCP-deployed server with tracing on, a chaos-delayed wire, and a slow-op
// threshold low enough that the delayed commit trips it. It prints the
// slowest trace as an indented span tree and the slow_op JSON line the
// threshold emitted.
func traceDemo() {
	fmt.Println("== dlctl trace: follow one commit from session to fsync ==")
	var slowLog bytes.Buffer
	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{
			Name:            "fs1",
			TCPUpcalls:      true,
			Trace:           true,
			SlowOpThreshold: 2 * time.Millisecond,
			SlowOpLog:       &slowLog,
			UpcallNet: &upcall.NetConfig{
				Client: upcall.ClientConfig{
					Chaos: &upcall.Chaos{DelayDist: upcall.Delay{Prob: 1, Min: 3 * time.Millisecond, Max: 4 * time.Millisecond}},
				},
			},
		}},
	})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	fsrv, _ := sys.FileServer("fs1")
	must(fsrv.SeedFile("/docs/contract.pdf", []byte("contract v1"), 100))
	sys.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT)`)
	sys.MustExec(`INSERT INTO docs (id, doc) VALUES (1, DLVALUE('dlfs://fs1/docs/contract.pdf'))`)

	url, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = 1`)
	must(err)
	f, err := sys.Session(100).OpenWrite(url)
	must(err)
	must(f.WriteAll([]byte("contract v2 SIGNED")))
	must(f.Close())
	fsrv.WaitArchives()

	tracer := fsrv.Internal().Obs
	fmt.Println("\nslowest traces (span trees; chaos delays the wire 3–4ms per upcall):")
	for _, tr := range tracer.Slowest(3) {
		obs.RenderText(os.Stdout, tr)
	}
	fmt.Println("slow_op events (one-line JSON, span tree embedded):")
	os.Stdout.Write(slowLog.Bytes())
}

// printPlacements renders a member -> linked-path-count map in sorted order.
func printPlacements(pl map[string]int) {
	ids := make([]string, 0, len(pl))
	for id := range pl {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-6s %d shards\n", id, pl[id])
	}
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlctl:", err)
	os.Exit(1)
}
