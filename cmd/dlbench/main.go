// Command dlbench runs the paper-reproduction experiments: every table and
// figure of "Database Managed External File Update" (ICDE 2001) plus the
// quantified versions of its design arguments.
//
// Usage:
//
//	dlbench                 # run every experiment
//	dlbench -exp E6         # run one experiment
//	dlbench -list           # list experiments
//	dlbench -markdown       # render results as markdown (EXPERIMENTS.md body)
package main

import (
	"flag"
	"fmt"
	"os"

	"datalinks/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by id (e.g. T1, E6)")
		list     = flag.Bool("list", false, "list experiments and exit")
		markdown = flag.Bool("markdown", false, "render tables as markdown")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e harness.Experiment) error {
		if !*markdown {
			return harness.RunOne(os.Stdout, e)
		}
		fmt.Printf("### %s: %s\n\n", e.ID, e.Title)
		fmt.Printf("*Paper:* %s\n\n", e.Paper)
		tables, err := e.Run()
		if err != nil {
			return err
		}
		for _, t := range tables {
			t.Markdown(os.Stdout)
		}
		return nil
	}

	if *exp != "" {
		e, ok := harness.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dlbench: no experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range harness.All() {
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
			os.Exit(1)
		}
	}
}
