// Command dlbench runs the paper-reproduction experiments: every table and
// figure of "Database Managed External File Update" (ICDE 2001) plus the
// quantified versions of its design arguments.
//
// Usage:
//
//	dlbench                 # run every experiment
//	dlbench -exp E6         # run one experiment
//	dlbench -list           # list experiments
//	dlbench -markdown       # render results as markdown (EXPERIMENTS.md body)
//
// The E13 concurrency experiment (aggregate throughput and lock contention
// counters vs concurrent sessions) is configurable:
//
//	dlbench -exp E13 -sessions 1,8,32 -servers 4 -ops 200 -upcall-latency 500us
//
// The E14 large-file update experiment (bytes archived vs bytes written) is
// configurable, and -json emits machine-readable result tables (the CI perf
// snapshot artifact):
//
//	dlbench -exp E14 -filesize 64 -edits 16 -editsize 64
//	dlbench -exp E14 -json > BENCH_E14.json
//
// The E15 durable tiered-archive experiment (disk spill, bounded resident
// memory, page-in and GC counters) is configurable:
//
//	dlbench -exp E15 -e15-files 3 -e15-filesize 8 -e15-versions 10 -e15-budget 4
//	dlbench -exp E15 -e15-dir /var/tmp/archive -e15-compress -json > BENCH_E15.json
//
// The E16 restart-recovery experiment commits a deterministic version
// history, hard-restarts the process state, and proves the durable catalog
// serves every version byte-identically with zero re-archiving. Run it twice
// against the same -e16-dir and the second run skips the churn entirely,
// cold-serving the first run's history:
//
//	dlbench -exp E16 -e16-dir /var/tmp/e16 -json > BENCH_E16.json
//	dlbench -exp E16 -e16-dir /var/tmp/e16    # verify-only: zero device transfer
//
// The E22 tracing experiment prices the observability plane on the E13 hot
// path (tracing on vs off, best-of rounds) and audits every commit trace for
// the full session→wire→lock→archive-barrier→fsync span story over real TCP:
//
//	dlbench -exp E22 -e22-rounds 5 -e22-sessions 8 -e22-commits 20
//	dlbench -exp E22 -json > BENCH_E22.json
//
// The E23 failover experiment soaks commits against a replicated cluster
// (Replicas=2, write quorum 2), kills a member mid-round without telling the
// router, and lets the health probe detect the death and promote replicas in
// place. It FAILS on any lost acked commit, on per-path unavailability beyond
// the declared budget, or on owner/replica history divergence after quiesce:
//
//	dlbench -exp E23 -e23-round 5s -e23-writers 32 -e23-budget 1s
//	dlbench -exp E23 -json > BENCH_E23.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"datalinks/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by id (e.g. T1, E6)")
		list     = flag.Bool("list", false, "list experiments and exit")
		markdown = flag.Bool("markdown", false, "render tables as markdown")
		jsonOut  = flag.Bool("json", false, "render results as JSON (perf snapshots)")
		sessions = flag.String("sessions", "", "E13: comma-separated concurrent session counts (e.g. 1,4,16)")
		servers  = flag.Int("servers", 0, "E13: number of file servers")
		ops      = flag.Int("ops", 0, "E13: operations per session")
		upcallMs = flag.Duration("upcall-latency", -1, "E13: simulated DLFS→DLFM IPC latency (e.g. 200us)")
		netMode  = flag.Bool("net", false, "E13: route upcalls over real TCP sockets and report per-op latency percentiles")
		filesize = flag.Int("filesize", 0, "E14: linked file size in MiB")
		edits    = flag.Int("edits", 0, "E14: edits committed per session")
		editsize = flag.Int("editsize", 0, "E14: edit size in KiB")
		e14sess  = flag.Int("e14-sessions", 0, "E14: concurrent sessions")
		e15files = flag.Int("e15-files", 0, "E15: linked files")
		e15size  = flag.Int("e15-filesize", 0, "E15: linked file size in MiB")
		e15vers  = flag.Int("e15-versions", 0, "E15: versions committed per file")
		e15edit  = flag.Int("e15-editsize", 0, "E15: edit size in KiB")
		e15budg  = flag.Int("e15-budget", 0, "E15: archive LRU memory budget in MiB")
		e15dir   = flag.String("e15-dir", "", "E15: on-disk chunk store directory (default: private temp dir)")
		e15comp  = flag.Bool("e15-compress", false, "E15: flate-compress spilled archive chunks")
		e16files = flag.Int("e16-files", 0, "E16: linked files")
		e16size  = flag.Int("e16-filesize", 0, "E16: linked file size in MiB")
		e16vers  = flag.Int("e16-versions", 0, "E16: versions committed per file")
		e16edit  = flag.Int("e16-editsize", 0, "E16: edit size in KiB")
		e16budg  = flag.Int("e16-budget", 0, "E16: archive LRU memory budget in MiB")
		e16dir   = flag.String("e16-dir", "", "E16: archive directory; if it already holds an E16 history, the run only cold-serves and verifies it (default: private temp dir)")
		e16comp  = flag.Bool("e16-compress", false, "E16: flate-compress spilled archive chunks")
		e16fsync = flag.String("e16-fsync", "", "E16: archive fsync policy (none|group|always)")
		e17sess  = flag.Int("e17-sessions", 0, "E17: concurrent committing sessions")
		e17comm  = flag.Int("e17-commits", 0, "E17: commits per session")
		e17file  = flag.Int("e17-filesize", 0, "E17: linked file size in KiB")
		e17edit  = flag.Int("e17-editsize", 0, "E17: edit size in bytes")
		e17dir   = flag.String("e17-dir", "", "E17: archive directory root (default: private temp dirs)")
		e18files = flag.Int("e18-files", 0, "E18: linked files")
		e18size  = flag.Int("e18-filesize", 0, "E18: linked file size in KiB")
		e18vers  = flag.Int("e18-versions", 0, "E18: versions committed per file")
		e18edit  = flag.Int("e18-editsize", 0, "E18: edit size in KiB")
		e18ckpt  = flag.Int("e18-ckpt", 0, "E18: repository checkpoint interval in KiB")
		e18dir   = flag.String("e18-dir", "", "E18: durable root holding repo/ and archive/; if it already holds E18 state, the run only cold-serves and verifies it (default: private temp dir)")
		e18fsync = flag.String("e18-fsync", "", "E18: repo + archive fsync policy (none|group|always)")
		e20sess  = flag.Int("e20-sessions", 0, "E20: concurrent client sessions")
		e20ops   = flag.Int("e20-ops", 0, "E20: update attempts per session")
		e20drop  = flag.Float64("e20-drop", -1, "E20: per-message drop probability (0..1)")
		e20reset = flag.Float64("e20-reset", -1, "E20: per-message connection-reset probability (0..1)")
		e20delay = flag.Float64("e20-delay", -1, "E20: per-message delay probability (0..1)")
		e20seed  = flag.Int64("e20-seed", 0, "E20: chaos PRNG seed (nonzero)")
		e21srv   = flag.String("e21-servers", "", "E21: comma-separated cluster sizes for the scale rounds (e.g. 1,4,16)")
		e21sess  = flag.Int("e21-sessions", 0, "E21: concurrent sessions per round (half readers, half writers)")
		e21round = flag.Duration("e21-round", 0, "E21: duration of each time-bounded round (e.g. 2s)")
		e21files = flag.Int("e21-files", 0, "E21: linked files per round")
		e21lat   = flag.Duration("e21-upcall-latency", -1, "E21: simulated DLFS→DLFM IPC latency per member (e.g. 1ms)")
		e21width = flag.Int("e21-width", 0, "E21: concurrent upcall width per member")
		e22round = flag.Int("e22-rounds", 0, "E22: interleaved overhead rounds per mode (best-of comparison)")
		e22budg  = flag.Float64("e22-budget", 0, "E22: max tracing overhead as a fraction of untraced ops/s (e.g. 0.05)")
		e22sess  = flag.Int("e22-sessions", 0, "E22: sessions in the commit-trace completeness phase")
		e22comm  = flag.Int("e22-commits", 0, "E22: commits per session in the completeness phase")
		e23srv   = flag.Int("e23-servers", 0, "E23: cluster members")
		e23files = flag.Int("e23-files", 0, "E23: linked files")
		e23write = flag.Int("e23-writers", 0, "E23: concurrent writer sessions")
		e23round = flag.Duration("e23-round", 0, "E23: soak duration (e.g. 2s)")
		e23budg  = flag.Duration("e23-budget", 0, "E23: declared failover budget — max per-path unavailability after the kill")
		e23probe = flag.Duration("e23-probe", 0, "E23: health-probe interval (e.g. 25ms)")
	)
	flag.Parse()

	if *sessions != "" {
		var counts []int
		for _, part := range strings.Split(*sessions, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "dlbench: bad -sessions value %q\n", part)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		harness.ConcurrencySessions = counts
	}
	if *servers > 0 {
		harness.ConcurrencyServers = *servers
	}
	if *ops > 0 {
		harness.ConcurrencyOps = *ops
	}
	if *upcallMs >= 0 {
		harness.ConcurrencyUpcallLatency = *upcallMs
	}
	if *netMode {
		harness.ConcurrencyNet = true
	}
	if *filesize > 0 {
		harness.LargeFileSizeMB = *filesize
	}
	if *edits > 0 {
		harness.LargeFileEdits = *edits
	}
	if *editsize > 0 {
		harness.LargeFileEditKB = *editsize
	}
	if *e14sess > 0 {
		harness.LargeFileSessions = *e14sess
	}
	if *e15files > 0 {
		harness.TieredFiles = *e15files
	}
	if *e15size > 0 {
		harness.TieredFileMB = *e15size
	}
	if *e15vers > 0 {
		harness.TieredVersions = *e15vers
	}
	if *e15edit > 0 {
		harness.TieredEditKB = *e15edit
	}
	if *e15budg > 0 {
		harness.TieredBudgetMB = *e15budg
	}
	if *e15dir != "" {
		harness.TieredDir = *e15dir
	}
	if *e15comp {
		harness.TieredCompress = true
	}
	if *e16files > 0 {
		harness.RestartFiles = *e16files
	}
	if *e16size > 0 {
		harness.RestartFileMB = *e16size
	}
	if *e16vers > 0 {
		harness.RestartVersions = *e16vers
	}
	if *e16edit > 0 {
		harness.RestartEditKB = *e16edit
	}
	if *e16budg > 0 {
		harness.RestartBudgetMB = *e16budg
	}
	if *e16dir != "" {
		harness.RestartDir = *e16dir
	}
	if *e16comp {
		harness.RestartCompress = true
	}
	if *e16fsync != "" {
		harness.RestartFsync = *e16fsync
	}
	if *e17sess > 0 {
		harness.BatchSessions = *e17sess
	}
	if *e17comm > 0 {
		harness.BatchCommits = *e17comm
	}
	if *e17file > 0 {
		harness.BatchFileKB = *e17file
	}
	if *e17edit > 0 {
		harness.BatchEditBytes = *e17edit
	}
	if *e17dir != "" {
		harness.BatchDir = *e17dir
	}
	if *e18files > 0 {
		harness.ColdFiles = *e18files
	}
	if *e18size > 0 {
		harness.ColdFileKB = *e18size
	}
	if *e18vers > 0 {
		harness.ColdVersions = *e18vers
	}
	if *e18edit > 0 {
		harness.ColdEditKB = *e18edit
	}
	if *e18ckpt > 0 {
		harness.ColdCheckpointKB = *e18ckpt
	}
	if *e18dir != "" {
		harness.ColdDir = *e18dir
	}
	if *e18fsync != "" {
		harness.ColdFsync = *e18fsync
	}
	if *e20sess > 0 {
		harness.ChaosSessions = *e20sess
	}
	if *e20ops > 0 {
		harness.ChaosOps = *e20ops
	}
	if *e20drop >= 0 {
		harness.ChaosDropProb = *e20drop
	}
	if *e20reset >= 0 {
		harness.ChaosResetProb = *e20reset
	}
	if *e20delay >= 0 {
		harness.ChaosDelayProb = *e20delay
	}
	if *e20seed != 0 {
		harness.ChaosSeed = *e20seed
	}
	if *e21srv != "" {
		var counts []int
		for _, part := range strings.Split(*e21srv, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "dlbench: bad -e21-servers value %q\n", part)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		harness.ScaleoutServers = counts
	}
	if *e21sess > 0 {
		harness.ScaleoutSessions = *e21sess
	}
	if *e21round > 0 {
		harness.ScaleoutRound = *e21round
	}
	if *e21files > 0 {
		harness.ScaleoutFiles = *e21files
	}
	if *e21lat >= 0 {
		harness.ScaleoutUpcallLatency = *e21lat
	}
	if *e21width > 0 {
		harness.ScaleoutUpcallWidth = *e21width
	}
	if *e22round > 0 {
		harness.TraceOverheadRounds = *e22round
	}
	if *e22budg > 0 {
		harness.TraceOverheadBudget = *e22budg
	}
	if *e22sess > 0 {
		harness.TraceSessions = *e22sess
	}
	if *e22comm > 0 {
		harness.TraceCommits = *e22comm
	}
	if *e23srv > 0 {
		harness.FailoverServers = *e23srv
	}
	if *e23files > 0 {
		harness.FailoverFiles = *e23files
	}
	if *e23write > 0 {
		harness.FailoverWriters = *e23write
	}
	if *e23round > 0 {
		harness.FailoverRound = *e23round
	}
	if *e23budg > 0 {
		harness.FailoverBudget = *e23budg
	}
	if *e23probe > 0 {
		harness.FailoverProbe = *e23probe
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	run := func(e harness.Experiment) error {
		switch {
		case *jsonOut:
			tables, err := e.Run()
			if err != nil {
				return err
			}
			return enc.Encode(map[string]any{
				"experiment": e.ID,
				"title":      e.Title,
				"tables":     tables,
			})
		case *markdown:
			fmt.Printf("### %s: %s\n\n", e.ID, e.Title)
			fmt.Printf("*Paper:* %s\n\n", e.Paper)
			tables, err := e.Run()
			if err != nil {
				return err
			}
			for _, t := range tables {
				t.Markdown(os.Stdout)
			}
			return nil
		default:
			return harness.RunOne(os.Stdout, e)
		}
	}

	if *exp != "" {
		e, ok := harness.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dlbench: no experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range harness.All() {
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
			os.Exit(1)
		}
	}
}
