// Quickstart: link a file to the database, read it with a token, update it
// in place with transactional semantics, and roll an update back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datalinks"
)

func main() {
	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{Name: "fs1"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A file server with one file, owned by uid 100.
	fsrv, err := sys.FileServer("fs1")
	if err != nil {
		log.Fatal(err)
	}
	if err := fsrv.SeedFile("/pages/index.html", []byte("<html>v1</html>"), 100); err != nil {
		log.Fatal(err)
	}

	// Link the file under database control: rdd = token-gated reads AND
	// database-managed in-place update, with archived versions.
	sys.MustExec(`CREATE TABLE pages (
		id INT PRIMARY KEY,
		title VARCHAR,
		doc DATALINK MODE RDD RECOVERY YES,
		doc_size INT,
		doc_mtime TIMESTAMP
	)`)
	sys.MustExec(`INSERT INTO pages VALUES (1, 'home', DLVALUE('dlfs://fs1/pages/index.html'), NULL, NULL)`)
	fmt.Println("linked:", fsrv.LinkedFiles())

	// Read through the file API with a token from the database.
	readURL, err := sys.QueryString(`SELECT DLURLCOMPLETE(doc) FROM pages WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	sess := sys.Session(100)
	f, err := sess.OpenRead(readURL)
	if err != nil {
		log.Fatal(err)
	}
	content, _ := f.ReadAll()
	f.Close()
	fmt.Printf("read via token: %s\n", content)

	// Update in place: open = begin transaction, close = commit.
	writeURL, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM pages WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	w, err := sess.OpenWrite(writeURL)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.WriteAll([]byte("<html>v2 — updated in place</html>")); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil { // commit
		log.Fatal(err)
	}

	// The size/mtime metadata was updated in the same transaction (§4.3).
	rows, err := sys.Query(`SELECT doc_size FROM pages WHERE id = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed update; doc_size in database = %v\n", rows.Data[0][0])
	fmt.Printf("archived versions: %v\n", fsrv.Versions("/pages/index.html"))

	// An aborted update never becomes visible.
	writeURL, _ = sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM pages WHERE id = 1`)
	w2, err := sess.OpenWrite(writeURL)
	if err != nil {
		log.Fatal(err)
	}
	w2.WriteAll([]byte("half-finished garbage"))
	if err := w2.Abort(); err != nil {
		log.Fatal(err)
	}
	data, _ := fsrv.ReadFile("/pages/index.html")
	fmt.Printf("after abort the file is back to: %s\n", data)
}
