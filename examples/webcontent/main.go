// Webcontent demonstrates the paper's web content-management use case (§1,
// §3.2): static pages served straight from the file system while the
// database manages integrity and update, including the consistency
// difference between rfd (fast reads, weak read-write isolation) and rdd
// (token-gated reads, full serialization) under a live editor.
//
// Run with: go run ./examples/webcontent
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"datalinks"
)

const (
	webserver = 300 // uid serving pages
	editor    = 301 // uid editing pages
)

func main() {
	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{Name: "www"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fsrv, _ := sys.FileServer("www")
	page := func(v int) []byte {
		return []byte(fmt.Sprintf("<html><body>press release, revision %d</body></html>", v))
	}
	if err := fsrv.SeedFile("/site/press.html", page(0), editor); err != nil {
		log.Fatal(err)
	}
	if err := fsrv.SeedFile("/site/about.html", []byte("<html>about us</html>"), editor); err != nil {
		log.Fatal(err)
	}

	// press.html is hot and edited: rfd gives the web server zero-overhead
	// reads. about.html holds sensitive drafts: rdd gates reads with tokens.
	sys.MustExec(`CREATE TABLE site (
		path VARCHAR PRIMARY KEY,
		owner VARCHAR,
		doc DATALINK MODE RFD RECOVERY YES,
		doc_size INT
	)`)
	sys.MustExec(`CREATE TABLE drafts (
		path VARCHAR PRIMARY KEY,
		doc DATALINK MODE RDD RECOVERY YES
	)`)
	sys.MustExec(`INSERT INTO site VALUES ('/site/press.html', 'pr-team', DLVALUE('dlfs://www/site/press.html'), NULL)`)
	sys.MustExec(`INSERT INTO drafts VALUES ('/site/about.html', DLVALUE('dlfs://www/site/about.html'))`)

	// The web server hammers the page while the editor publishes revisions.
	var served, rejected int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv := sys.Session(webserver)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f, err := srv.OpenRead("dlfs://www/site/press.html")
			if err != nil {
				atomic.AddInt64(&rejected, 1)
				continue
			}
			f.ReadAll()
			f.Close()
			atomic.AddInt64(&served, 1)
		}
	}()

	ed := sys.Session(editor)
	for rev := 1; rev <= 5; rev++ {
		url, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM site WHERE path = '/site/press.html'`)
		if err != nil {
			log.Fatal(err)
		}
		for {
			w, err := ed.OpenWrite(url)
			if err != nil {
				continue // page busy; retry
			}
			w.WriteAll(page(rev))
			if err := w.Close(); err == nil {
				break
			}
		}
		// Let the archiver drain before the next revision — and give the
		// web-server goroutine a window to serve (on a single-CPU box the
		// editor would otherwise publish all revisions before the reader
		// is ever scheduled).
		fsrv.WaitArchives()
	}
	close(stop)
	wg.Wait()

	fmt.Printf("served %d page loads while publishing 5 revisions (%d opens rejected during update windows)\n",
		atomic.LoadInt64(&served), atomic.LoadInt64(&rejected))
	fmt.Println("press.html versions in the archive:", fsrv.Versions("/site/press.html"))

	// The sensitive draft cannot be read without a token...
	anon := sys.Session(999)
	if _, err := anon.OpenRead("dlfs://www/site/about.html"); err != nil {
		fmt.Println("tokenless read of the rdd draft: denied ✔")
	}
	// ...but a token from the database opens it.
	url, _ := sys.QueryString(`SELECT DLURLCOMPLETE(doc) FROM drafts WHERE path = '/site/about.html'`)
	f, err := sys.Session(editor).OpenRead(url)
	if err != nil {
		log.Fatal(err)
	}
	draft, _ := f.ReadAll()
	f.Close()
	fmt.Printf("token-gated draft read: %q\n", draft)

	// Point-in-time restore: roll the whole site (database + files) back.
	state := sys.StateID()
	url, _ = sys.QueryString(`SELECT DLURLCOMPLETEWRITE(doc) FROM site WHERE path = '/site/press.html'`)
	w, _ := ed.OpenWrite(url)
	w.WriteAll([]byte("<html>accidentally published draft!!</html>"))
	w.Close()
	if err := sys.RestoreToState(state); err != nil {
		log.Fatal(err)
	}
	data, _ := fsrv.ReadFile("/site/press.html")
	fmt.Printf("after point-in-time restore: %s\n", data)
}
