// Devlab reproduces §3's development-lab anecdote for the copy-and-update
// (CAU) discipline: near a release deadline several developers edit the same
// file from private copies. The first to finish integrates cleanly; later
// check-ins must merge — and a careless (blind) check-in silently loses
// someone's work, "and it does occur".
//
// Run with: go run ./examples/devlab
package main

import (
	"bytes"
	"fmt"
	"log"

	"datalinks/internal/archive"
	"datalinks/internal/cau"
	"datalinks/internal/fs"
)

func main() {
	phys := fs.New()
	if err := phys.MkdirAll("/src", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		log.Fatal(err)
	}
	base := []byte("func release() {\n\t// TODO alpha\n\t// TODO beta\n}\n")
	if err := phys.WriteFile("/src/release.go", base); err != nil {
		log.Fatal(err)
	}
	mgr := cau.New(phys, archive.New(0, nil), "lab", nil)

	// Two developers take private copies of the same file. No locks.
	alice, err := mgr.Copy("dlfs://lab/src/release.go")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := mgr.Copy("dlfs://lab/src/release.go")
	if err != nil {
		log.Fatal(err)
	}
	alice.Content = bytes.Replace(alice.Content, []byte("// TODO alpha"), []byte("doAlpha()"), 1)
	bob.Content = bytes.Replace(bob.Content, []byte("// TODO beta"), []byte("doBeta()"), 1)

	// Alice integrates first — clean.
	if err := mgr.CheckInSafe(alice, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice checked in cleanly")

	// Bob's safe check-in detects the conflict and merges three-way.
	merge := func(base, mine, theirs []byte) ([]byte, error) {
		// A toy three-way merge good enough for disjoint line edits: take
		// `theirs` and apply the line bob changed.
		merged := bytes.Replace(theirs, []byte("// TODO beta"), []byte("doBeta()"), 1)
		return merged, nil
	}
	if err := mgr.CheckInSafe(bob, merge); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob's check-in merged with alice's work")
	final, _ := phys.ReadFile("/src/release.go")
	fmt.Printf("\nmerged file:\n%s\n", final)

	// The hazard: the same scenario with blind check-ins loses an update.
	if err := phys.WriteFile("/src/hotfix.go", []byte("v0\n")); err != nil {
		log.Fatal(err)
	}
	carol, _ := mgr.Copy("dlfs://lab/src/hotfix.go")
	dave, _ := mgr.Copy("dlfs://lab/src/hotfix.go")
	carol.Content = []byte("v0 + carol's fix\n")
	dave.Content = []byte("v0 + dave's fix\n")
	mgr.CheckInBlind(carol)
	mgr.CheckInBlind(dave) // overwrites carol silently
	data, _ := phys.ReadFile("/src/hotfix.go")
	_, lost, merges, _ := mgr.Stats()
	fmt.Printf("blind check-ins on hotfix.go left: %q\n", data)
	fmt.Printf("lost updates: %d (carol's), successful merges: %d\n", lost, merges)
	fmt.Println("\n→ this is why the paper builds update-in-place with DBMS-enforced serialization instead")
}
