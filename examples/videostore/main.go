// Videostore reproduces the paper's motivating scenario (§1): a video
// merchant keeps movie attributes in the RDBMS for search and analysis, and
// the preview clips as files on a file server. DataLinks keeps them
// consistent: deleting a movie releases its clip atomically, updating a clip
// is transactional, and the clip can never be removed or renamed while the
// catalog references it.
//
// Run with: go run ./examples/videostore
package main

import (
	"fmt"
	"log"

	"datalinks"
)

const clerk = 200 // uid of the catalog application

func main() {
	sys, err := datalinks.Open(datalinks.Config{
		Servers: []datalinks.ServerConfig{{Name: "media1"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fsrv, _ := sys.FileServer("media1")
	clips := map[string]string{
		"/clips/casablanca.mpg": "casablanca preview v1",
		"/clips/metropolis.mpg": "metropolis preview v1",
		"/clips/vertigo.mpg":    "vertigo preview v1",
	}
	for path, content := range clips {
		if err := fsrv.SeedFile(path, []byte(content), clerk); err != nil {
			log.Fatal(err)
		}
	}

	// The catalog: attributes in columns, the clip as a DATALINK. rfd mode:
	// anyone can stream (read) the clip with no database involvement — the
	// web-server fast path — while updates are database-managed.
	sys.MustExec(`CREATE TABLE movies (
		id INT PRIMARY KEY,
		title VARCHAR NOT NULL,
		category VARCHAR,
		price DOUBLE,
		inventory INT,
		clip DATALINK MODE RFD RECOVERY YES,
		clip_size INT,
		clip_mtime TIMESTAMP
	)`)
	sys.MustExec(`INSERT INTO movies (id, title, category, price, inventory, clip) VALUES
		(1, 'Casablanca', 'classic', 9.99, 12, DLVALUE('dlfs://media1/clips/casablanca.mpg')),
		(2, 'Metropolis', 'silent', 14.50, 3, DLVALUE('dlfs://media1/clips/metropolis.mpg')),
		(3, 'Vertigo', 'thriller', 12.00, 7, DLVALUE('dlfs://media1/clips/vertigo.mpg'))`)

	// Search works like any SQL query.
	rows, err := sys.Query(`SELECT title, price FROM movies WHERE price < 13 ORDER BY price`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("movies under $13:")
	for _, r := range rows.Data {
		fmt.Printf("  %-12v $%v\n", r[0], r[1])
	}

	// Streaming a preview is plain file access — no token, no upcalls.
	sess := sys.Session(clerk)
	before := fsrv.UpcallCount()
	clip, err := sess.OpenRead("dlfs://media1/clips/casablanca.mpg")
	if err != nil {
		log.Fatal(err)
	}
	data, _ := clip.ReadAll()
	clip.Close()
	fmt.Printf("\nstreamed %d bytes with %d upcalls (the rfd read fast path)\n",
		len(data), fsrv.UpcallCount()-before)

	// Re-cutting a clip is an in-place update transaction.
	writeURL, err := sys.QueryString(`SELECT DLURLCOMPLETEWRITE(clip) FROM movies WHERE title = 'Vertigo'`)
	if err != nil {
		log.Fatal(err)
	}
	w, err := sess.OpenWrite(writeURL)
	if err != nil {
		log.Fatal(err)
	}
	w.WriteAll([]byte("vertigo preview v2 — recut"))
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fsrv.WaitArchives() // archiving after commit is asynchronous (§4.4)
	fmt.Println("\nrecut vertigo clip; archived versions:", fsrv.Versions("/clips/vertigo.mpg"))

	// While the catalog references a clip, the file system refuses to
	// delete it — no dangling catalog entries, ever.
	if _, err := sys.Exec(`DELETE FROM movies WHERE title = 'Metropolis'`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndropped Metropolis from the catalog; its clip is unmanaged again:")
	fmt.Println("  still linked:", fsrv.LinkedFiles())

	// Atomicity across catalog and file server: a rolled-back delete keeps
	// both sides intact. (Session-level SQL transactions drive this through
	// the engine's 2PC with the file manager.)
	rows, _ = sys.Query(`SELECT COUNT(*) FROM movies`)
	fmt.Printf("\ncatalog now has %v movies, %d clips remain linked\n",
		rows.Data[0][0], len(fsrv.LinkedFiles()))
}
