package datalinks

// Public surface of the scale-out namespace: a Cluster runs one DataLinks
// authority across several file servers. Link paths place on a consistent-
// hash ring of members; membership can change while update transactions
// continue — paths whose owner changes migrate live (drain, freeze, archive
// handoff, evict) and no acknowledged commit is ever lost. See
// internal/core/cluster.go for the protocol.

import (
	"fmt"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
)

// ClusterConfig configures a scale-out deployment.
type ClusterConfig struct {
	// Authority is the shared file-server name in DATALINK URLs
	// (dlfs://<authority>/...), valid no matter which member serves a path.
	// Defaults to "cluster".
	Authority string
	// Members configures the initial members; each Name is the member's id on
	// the ring (it never appears in URLs).
	Members []ServerConfig
	// VirtualNodes per member on the ring (0 = the ring default of 128).
	VirtualNodes int
	Clock        func() time.Time
	TokenKey     []byte
	TokenTTL     time.Duration
	LockTimeout  time.Duration

	// Replicas is the total number of copies of every path (owner plus ring
	// successors). 0 or 1 disables replication.
	Replicas int
	// WriteQuorum is how many copies (owner included) must acknowledge a
	// commit before close returns; 0 means all Replicas.
	WriteQuorum int
	// ReplicaReads lets reads fall back to a surviving replica while the
	// owner is unreachable (stale-bounded; off by default).
	ReplicaReads bool
	// ProbeInterval enables the member health probe; with AutoFailover a
	// member found dead is failed over without an operator.
	ProbeInterval time.Duration
	AutoFailover  bool
}

// Cluster is a running scale-out DataLinks deployment.
type Cluster struct {
	inner *core.Cluster
}

// OpenCluster builds a scale-out deployment.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	members := make([]core.ServerConfig, len(cfg.Members))
	for i, s := range cfg.Members {
		members[i] = toCoreServer(s)
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Authority:     cfg.Authority,
		Members:       members,
		VirtualNodes:  cfg.VirtualNodes,
		Clock:         cfg.Clock,
		TokenKey:      cfg.TokenKey,
		TokenTTL:      cfg.TokenTTL,
		LockTimeout:   cfg.LockTimeout,
		Replicas:      cfg.Replicas,
		WriteQuorum:   cfg.WriteQuorum,
		ReplicaReads:  cfg.ReplicaReads,
		ProbeInterval: cfg.ProbeInterval,
		AutoFailover:  cfg.AutoFailover,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// Close shuts down every member stack.
func (c *Cluster) Close() { c.inner.Close() }

// Authority returns the cluster's shared file-server name.
func (c *Cluster) Authority() string { return c.inner.Authority() }

// URL returns the DATALINK URL for a path under this cluster.
func (c *Cluster) URL(path string) string { return c.inner.URL(path) }

// Members lists the live member ids, sorted.
func (c *Cluster) Members() []string { return c.inner.Members() }

// Owner reports which member currently serves a path.
func (c *Cluster) Owner(path string) (string, error) { return c.inner.Owner(path) }

// Placements counts linked paths per member.
func (c *Cluster) Placements() map[string]int { return c.inner.Placements() }

// AddServer grows the cluster by one member, migrating the paths the ring
// reassigns to it while commits continue.
func (c *Cluster) AddServer(sc ServerConfig) error { return c.inner.AddServer(toCoreServer(sc)) }

// RemoveServer drains a member gracefully and shuts its stack down.
func (c *Cluster) RemoveServer(id string) error { return c.inner.RemoveServer(id) }

// FailServer simulates a member machine dying; its durable directories
// survive for AbsorbDead.
func (c *Cluster) FailServer(id string) error { return c.inner.FailServer(id) }

// AbsorbDead cold-starts a failed member's durable state and migrates its
// namespace to the surviving members.
func (c *Cluster) AbsorbDead(id string) error { return c.inner.AbsorbDead(id) }

// KillServer kills a member's processes without informing the cluster — only
// the health probe (or a later FailServer) notices. Use with ProbeInterval
// to exercise automatic failure detection.
func (c *Cluster) KillServer(id string) error { return c.inner.KillServer(id) }

// FailoverReport describes what one Failover promoted.
type FailoverReport = core.FailoverReport

// Failover recovers a failed member's paths from their replicas: each
// orphaned path is promoted on its first live ring successor, which already
// holds the full history — no cold start, no AbsorbDead. Requires
// Replicas > 1.
func (c *Cluster) Failover(id string) (*FailoverReport, error) { return c.inner.Failover(id) }

// ReplicaSet reports the members holding copies of a path: the current owner
// first, then its ring successors in promotion order.
func (c *Cluster) ReplicaSet(path string) []string { return c.inner.ReplicaSet(path) }

// FlushReplication runs the anti-entropy pass: every owner repairs its
// successors' copies and stale replicas are pruned. The quiesce barrier to
// run before comparing owner and replica histories.
func (c *Cluster) FlushReplication() error { return c.inner.FlushReplication() }

// SeedFile creates an (unlinked) file on the member the ring places it on.
func (c *Cluster) SeedFile(path string, content []byte, owner int32) error {
	return c.inner.SeedFile(path, content, fs.UID(owner))
}

// WaitArchives drains async archive jobs on every member.
func (c *Cluster) WaitArchives() { c.inner.WaitArchives() }

// Exec runs a DDL/DML statement with ?-placeholders.
func (c *Cluster) Exec(sql string, args ...any) (int, error) {
	vals, err := toValues(args)
	if err != nil {
		return 0, err
	}
	return c.inner.DB.Exec(sql, vals...)
}

// MustExec is Exec that panics on error.
func (c *Cluster) MustExec(sql string, args ...any) int {
	n, err := c.Exec(sql, args...)
	if err != nil {
		panic(err)
	}
	return n
}

// Query runs a SELECT with ?-placeholders.
func (c *Cluster) Query(sql string, args ...any) (*Rows, error) {
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	rows, err := c.inner.DB.Query(sql, vals...)
	if err != nil {
		return nil, err
	}
	out := &Rows{Cols: rows.Cols}
	for _, r := range rows.Data {
		converted := make([]any, len(r))
		for i, v := range r {
			converted[i] = fromValue(v)
		}
		out.Data = append(out.Data, converted)
	}
	return out, nil
}

// QueryString runs a SELECT expected to return one string value.
func (c *Cluster) QueryString(sql string, args ...any) (string, error) {
	rows, err := c.Query(sql, args...)
	if err != nil {
		return "", err
	}
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		return "", fmt.Errorf("datalinks: expected one value, got %dx%d", len(rows.Data), len(rows.Cols))
	}
	str, ok := rows.Data[0][0].(string)
	if !ok {
		return "", fmt.Errorf("datalinks: value is %T, not string", rows.Data[0][0])
	}
	return str, nil
}

// Session returns an application identity with the given uid. Opens resolve
// the path's current owner through the ring and fail over once if a
// migration races the open.
func (c *Cluster) Session(uid int32) *ClusterSession {
	return &ClusterSession{inner: c.inner.NewSession(fs.UID(uid))}
}

// ClusterSession is an application identity against a Cluster.
type ClusterSession struct {
	inner *core.ClusterSession
}

// OpenRead opens a linked file for reading (URL from DLURLCOMPLETE).
func (s *ClusterSession) OpenRead(url string) (*File, error) {
	f, err := s.inner.OpenRead(url)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// OpenWrite begins an in-place update transaction (URL from
// DLURLCOMPLETEWRITE).
func (s *ClusterSession) OpenWrite(url string) (*File, error) {
	f, err := s.inner.OpenWrite(url)
	if err != nil {
		return nil, err
	}
	return &File{inner: f}, nil
}

// Internal exposes the core cluster (experiment harnesses, admin tools).
func (c *Cluster) Internal() *core.Cluster { return c.inner }
