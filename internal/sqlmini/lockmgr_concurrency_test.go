package sqlmini

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockManagerParallelDisjointTargets checks that transactions locking
// disjoint rows in parallel all succeed and fully release — the sharded
// fast path.
func TestLockManagerParallelDisjointTargets(t *testing.T) {
	lm := NewLockManager(2 * time.Second)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := uint64(g + 1)
			for i := 0; i < 200; i++ {
				target := LockTarget{Table: "t", Row: RowID(g*1000 + i)}
				if err := lm.Acquire(txn, target, LockX); err != nil {
					failures.Add(1)
					return
				}
			}
			lm.ReleaseAll(txn)
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d goroutines failed to acquire disjoint locks", failures.Load())
	}
	for g := 0; g < 16; g++ {
		if m := lm.Holding(uint64(g+1), LockTarget{Table: "t", Row: RowID(g * 1000)}); m != 0 {
			t.Fatalf("txn %d still holds a lock after ReleaseAll", g+1)
		}
	}
}

// TestLockManagerContendedHandoff makes many writers fight over one row:
// every acquire must eventually be granted after the holder releases, and
// the wait accounting must record the contention.
func TestLockManagerContendedHandoff(t *testing.T) {
	lm := NewLockManager(10 * time.Second)
	target := LockTarget{Table: "hot", Row: 1}
	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := uint64(g + 1)
			for i := 0; i < 50; i++ {
				if err := lm.Acquire(txn, target, LockX); err != nil {
					t.Error(err)
					return
				}
				granted.Add(1)
				lm.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	if granted.Load() != 400 {
		t.Fatalf("granted %d of 400 exclusive acquires", granted.Load())
	}

	// Force one deterministic blocked acquire and check the accounting
	// (the racing loop above may or may not block on a single-CPU box).
	if err := lm.Acquire(100, target, LockX); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- lm.Acquire(101, target, LockX) }()
	time.Sleep(20 * time.Millisecond)
	lm.ReleaseAll(100)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(101)
	waits, waitTime, _ := lm.ContentionStats()
	if waits == 0 || waitTime == 0 {
		t.Fatalf("blocked acquire recorded no wait (waits=%d time=%v)", waits, waitTime)
	}
}

// TestLockManagerSharedThenUpgrade exercises the S→X upgrade under
// concurrency: one txn upgrades as soon as the other readers drain.
func TestLockManagerSharedThenUpgrade(t *testing.T) {
	lm := NewLockManager(5 * time.Second)
	target := LockTarget{Table: "t", Row: 7}
	if err := lm.Acquire(1, target, LockS); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, target, LockS); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- lm.Acquire(1, target, LockX) }()
	select {
	case err := <-upgraded:
		t.Fatalf("upgrade granted while another reader held the lock (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	if err := <-upgraded; err != nil {
		t.Fatalf("upgrade after reader drain: %v", err)
	}
	if lm.Holding(1, target) != LockX {
		t.Fatal("txn 1 does not hold X after upgrade")
	}
	lm.ReleaseAll(1)
}

// TestLockManagerTimeoutUnderConflict verifies deadlock resolution by
// timeout still fires with the per-target wait queues.
func TestLockManagerTimeoutUnderConflict(t *testing.T) {
	lm := NewLockManager(50 * time.Millisecond)
	target := LockTarget{Table: "t", Row: 3}
	if err := lm.Acquire(1, target, LockX); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lm.Acquire(2, target, LockX)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("timed out too early: %v", elapsed)
	}
	lm.ReleaseAll(1)
	// The row is free again for a fresh transaction.
	if err := lm.Acquire(3, target, LockX); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(3)
}

// TestLockManagerReleaseWakesOnlyTarget checks the per-target queues: a
// release on one row must not grant or disturb a waiter on another row held
// by a third transaction.
func TestLockManagerReleaseWakesOnlyTarget(t *testing.T) {
	lm := NewLockManager(2 * time.Second)
	rowA := LockTarget{Table: "t", Row: 1}
	rowB := LockTarget{Table: "t", Row: 2}
	if err := lm.Acquire(1, rowA, LockX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, rowB, LockX); err != nil {
		t.Fatal(err)
	}
	gotA := make(chan error, 1)
	gotB := make(chan error, 1)
	go func() { gotA <- lm.Acquire(3, rowA, LockX) }()
	go func() { gotB <- lm.Acquire(4, rowB, LockX) }()
	time.Sleep(10 * time.Millisecond)
	lm.ReleaseAll(1) // frees rowA only
	if err := <-gotA; err != nil {
		t.Fatalf("waiter on released row: %v", err)
	}
	select {
	case err := <-gotB:
		t.Fatalf("waiter on still-held row was granted (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	if err := <-gotB; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(3)
	lm.ReleaseAll(4)
}
