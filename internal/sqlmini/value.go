// Package sqlmini is the host relational database of the reproduction: a
// small but complete transactional SQL engine standing in for DB2 UDB.
//
// It provides typed tables (including the DATALINK type), a SQL subset,
// strict two-phase locking at row granularity, write-ahead logging with
// ARIES-style restart recovery, and two-phase commit with external resource
// managers — the hook DLFM plugs into so link/unlink and file-update
// transactions share the host transaction's fate (§2.2 of the paper).
package sqlmini

import (
	"fmt"
	"strings"
	"time"

	"datalinks/internal/datalink"
)

// Kind enumerates the SQL types supported by the engine.
type Kind uint8

// Value kinds. KindLink is the DATALINK type of SQL/MED.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
	KindLink
)

// String names the kind like the SQL type it represents.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindLink:
		return "DATALINK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
	T time.Time
	L datalink.Link
}

// Constructors for each kind.
func Null() Value                { return Value{} }
func Int(v int64) Value          { return Value{K: KindInt, I: v} }
func Float(v float64) Value      { return Value{K: KindFloat, F: v} }
func Str(v string) Value         { return Value{K: KindString, S: v} }
func Bool(v bool) Value          { return Value{K: KindBool, B: v} }
func Time(v time.Time) Value     { return Value{K: KindTime, T: v} }
func Link(v datalink.Link) Value { return Value{K: KindLink, L: v} }
func (v Value) IsNull() bool     { return v.K == KindNull }
func (v Value) Kind() Kind       { return v.K }
func (v Value) AsLink() (datalink.Link, bool) {
	if v.K != KindLink {
		return datalink.Link{}, false
	}
	return v.L, true
}

// String renders the value for display.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.T.UTC().Format("2006-01-02 15:04:05.000000")
	case KindLink:
		return v.L.URL()
	default:
		return "?"
	}
}

// numeric returns the value as float64 when it is numeric.
func (v Value) numeric() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Compare orders two values: -1, 0, +1. NULL compares as unknown and returns
// an error so predicates can implement three-valued logic. Ints and floats
// compare across kinds; other cross-kind comparisons error.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, errNullCompare
	}
	if an, ok := a.numeric(); ok {
		if bn, ok := b.numeric(); ok {
			switch {
			case an < bn:
				return -1, nil
			case an > bn:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if a.K != b.K {
		return 0, fmt.Errorf("sqlmini: cannot compare %s with %s", a.K, b.K)
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S), nil
	case KindBool:
		ab, bb := 0, 0
		if a.B {
			ab = 1
		}
		if b.B {
			bb = 1
		}
		return ab - bb, nil
	case KindTime:
		switch {
		case a.T.Before(b.T):
			return -1, nil
		case a.T.After(b.T):
			return 1, nil
		default:
			return 0, nil
		}
	case KindLink:
		return strings.Compare(a.L.URL(), b.L.URL()), nil
	default:
		return 0, fmt.Errorf("sqlmini: cannot compare kind %s", a.K)
	}
}

var errNullCompare = fmt.Errorf("sqlmini: NULL comparison")

// Equal reports strict equality (NULL never equals anything).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// CoerceTo converts v to the column kind where the SQL standard allows it
// (int ↔ float, string → link). It returns an error for lossy or nonsense
// conversions.
func CoerceTo(v Value, k Kind) (Value, error) {
	if v.IsNull() || v.K == k {
		return v, nil
	}
	switch {
	case v.K == KindInt && k == KindFloat:
		return Float(float64(v.I)), nil
	case v.K == KindFloat && k == KindInt:
		i := int64(v.F)
		if float64(i) != v.F {
			return Value{}, fmt.Errorf("sqlmini: non-integral %g for BIGINT column", v.F)
		}
		return Int(i), nil
	case v.K == KindString && k == KindLink:
		l, err := datalink.Parse(v.S)
		if err != nil {
			return Value{}, err
		}
		return Link(l), nil
	case v.K == KindLink && k == KindString:
		return Str(v.L.URL()), nil
	default:
		return Value{}, fmt.Errorf("sqlmini: cannot assign %s to %s column", v.K, k)
	}
}

// Row is an ordered tuple of values matching a table's column order.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
