package sqlmini

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTxnCommitVisibility(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	txn := db.Begin()
	if _, err := txn.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 10 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestTxnAbortUndoesEverything(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)

	txn := db.Begin()
	txn.Exec(`INSERT INTO t VALUES (3, 30)`)
	txn.Exec(`UPDATE t SET v = 99 WHERE id = 1`)
	txn.Exec(`DELETE FROM t WHERE id = 2`)
	if err := txn.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}

	rows := mustQuery(t, db, `SELECT id, v FROM t ORDER BY id`)
	if len(rows.Data) != 2 {
		t.Fatalf("row count after abort = %d", len(rows.Data))
	}
	if rows.Data[0][1].I != 10 || rows.Data[1][1].I != 20 {
		t.Fatalf("values after abort = %+v", rows.Data)
	}
}

func TestTxnAbortRestoresIndexes(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	txn := db.Begin()
	txn.Exec(`DELETE FROM t WHERE id = 1`)
	txn.Abort()
	// PK index must be restored: a new insert of id 1 must conflict.
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 11)`); err == nil {
		t.Fatal("PK index lost the restored row")
	}
}

func TestTxnDoubleFinish(t *testing.T) {
	db := testDB(t)
	txn := db.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, errTxnDone) {
		t.Fatalf("double commit = %v", err)
	}
	if err := txn.Abort(); !errors.Is(err, errTxnDone) {
		t.Fatalf("abort after commit = %v", err)
	}
}

func TestWriteWriteBlocking(t *testing.T) {
	db := NewDB(Options{LockTimeout: 3 * time.Second})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)

	t1 := db.Begin()
	if _, err := t1.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatalf("t1 update: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		_, err := t2.Exec(`UPDATE t SET v = 2 WHERE id = 1`)
		if err != nil {
			t2.Abort()
			done <- err
			return
		}
		done <- t2.Commit()
	}()

	select {
	case err := <-done:
		t.Fatalf("t2 finished while t1 held the row lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("t2: %v", err)
	}
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if rows.Data[0][0].I != 2 {
		t.Fatalf("final v = %d, want 2 (t2 last)", rows.Data[0][0].I)
	}
}

func TestReadBlocksOnUncommittedWrite(t *testing.T) {
	db := NewDB(Options{LockTimeout: 200 * time.Millisecond})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)

	t1 := db.Begin()
	t1.Exec(`UPDATE t SET v = 42 WHERE id = 1`)

	// Reader must not observe the dirty value; it blocks and times out.
	_, err := db.Query(`SELECT v FROM t WHERE id = 1`)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("dirty read attempt = %v, want lock timeout", err)
	}
	t1.Abort()
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if rows.Data[0][0].I != 0 {
		t.Fatalf("v after abort = %d", rows.Data[0][0].I)
	}
}

func TestConcurrentDisjointRowUpdates(t *testing.T) {
	db := NewDB(Options{LockTimeout: 5 * time.Second})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 8; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, 0)`, Int(int64(i)))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := db.Exec(`UPDATE t SET v = v + 1 WHERE id = ?`, Int(id)); err != nil {
					errs <- err
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent update: %v", err)
	}
	rows := mustQuery(t, db, `SELECT SUM(v) FROM t`)
	if rows.Data[0][0].I != 160 {
		t.Fatalf("sum = %d, want 160", rows.Data[0][0].I)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	db := NewDB(Options{LockTimeout: 5 * time.Second})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := db.Exec(`UPDATE t SET v = v + 1 WHERE id = 1`); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rows := mustQuery(t, db, `SELECT v FROM t WHERE id = 1`)
	if rows.Data[0][0].I != 100 {
		t.Fatalf("v = %d, want 100 (no lost updates)", rows.Data[0][0].I)
	}
}

func TestSelectForUpdateTakesXLock(t *testing.T) {
	db := NewDB(Options{LockTimeout: 150 * time.Millisecond})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0)`)

	t1 := db.Begin()
	if _, err := t1.Query(`SELECT v FROM t WHERE id = 1 FOR UPDATE`); err != nil {
		t.Fatalf("select for update: %v", err)
	}
	// Another reader blocks (S incompatible with X).
	if _, err := db.Query(`SELECT v FROM t WHERE id = 1`); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("reader vs FOR UPDATE = %v", err)
	}
	t1.Commit()
}

func TestLockManagerUpgrade(t *testing.T) {
	lm := NewLockManager(time.Second)
	target := LockTarget{Table: "t", Row: 1}
	if err := lm.Acquire(1, target, LockS); err != nil {
		t.Fatalf("S: %v", err)
	}
	if err := lm.Acquire(1, target, LockX); err != nil {
		t.Fatalf("upgrade S->X sole holder: %v", err)
	}
	if lm.Holding(1, target) != LockX {
		t.Fatalf("mode = %v", lm.Holding(1, target))
	}
	lm.ReleaseAll(1)
	if lm.Holding(1, target) != 0 {
		t.Fatal("locks not released")
	}
}

func TestLockManagerUpgradeBlockedByOtherReader(t *testing.T) {
	lm := NewLockManager(100 * time.Millisecond)
	target := LockTarget{Table: "t", Row: 1}
	lm.Acquire(1, target, LockS)
	lm.Acquire(2, target, LockS)
	if err := lm.Acquire(1, target, LockX); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("upgrade with co-reader = %v", err)
	}
	lm.ReleaseAll(2)
	if err := lm.Acquire(1, target, LockX); err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
}

func TestTryAcquireNowait(t *testing.T) {
	lm := NewLockManager(time.Second)
	target := LockTarget{Table: "t", Row: 1}
	lm.Acquire(1, target, LockX)
	if err := lm.TryAcquire(2, target, LockS); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("try against X = %v", err)
	}
	if err := lm.TryAcquire(1, target, LockX); err != nil {
		t.Fatalf("re-try own lock: %v", err)
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	db := NewDB(Options{LockTimeout: 200 * time.Millisecond})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 0), (2, 0)`)

	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Exec(`UPDATE t SET v = 2 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() { _, err := t1.Exec(`UPDATE t SET v = 1 WHERE id = 2`); done <- err }()
	go func() { _, err := t2.Exec(`UPDATE t SET v = 2 WHERE id = 1`); done <- err }()
	e1, e2 := <-done, <-done
	if e1 == nil && e2 == nil {
		t.Fatal("deadlock not detected: both acquired")
	}
	t1.Abort()
	t2.Abort()
}

func TestOnCommitOnAbortHooks(t *testing.T) {
	db := testDB(t)
	var committed, aborted bool
	t1 := db.Begin()
	t1.OnCommit(func() { committed = true })
	t1.OnAbort(func() { aborted = true })
	t1.Commit()
	if !committed || aborted {
		t.Fatalf("hooks after commit: committed=%v aborted=%v", committed, aborted)
	}
	committed, aborted = false, false
	t2 := db.Begin()
	t2.OnCommit(func() { committed = true })
	t2.OnAbort(func() { aborted = true })
	t2.Abort()
	if committed || !aborted {
		t.Fatalf("hooks after abort: committed=%v aborted=%v", committed, aborted)
	}
}

// fakeXRM records 2PC calls and can be told to fail prepare.
type fakeXRM struct {
	name        string
	prepared    []uint64
	committed   []uint64
	aborted     []uint64
	failPrepare bool
}

func (f *fakeXRM) XRMName() string { return f.name }
func (f *fakeXRM) PrepareXRM(id uint64) error {
	if f.failPrepare {
		return fmt.Errorf("%s: prepare refused", f.name)
	}
	f.prepared = append(f.prepared, id)
	return nil
}
func (f *fakeXRM) CommitXRM(id uint64) error {
	f.committed = append(f.committed, id)
	return nil
}
func (f *fakeXRM) AbortXRM(id uint64) error {
	f.aborted = append(f.aborted, id)
	return nil
}

func TestTwoPhaseCommitSuccess(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	x1 := &fakeXRM{name: "dlfm1"}
	x2 := &fakeXRM{name: "dlfm2"}
	txn := db.Begin()
	txn.Enlist(x1)
	txn.Enlist(x2)
	txn.Enlist(x1) // duplicate enlistment ignored
	txn.Exec(`INSERT INTO t VALUES (1)`)
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(x1.prepared) != 1 || len(x1.committed) != 1 || len(x1.aborted) != 0 {
		t.Fatalf("x1 calls = %+v", x1)
	}
	if len(x2.prepared) != 1 || len(x2.committed) != 1 {
		t.Fatalf("x2 calls = %+v", x2)
	}
	if c, known := db.Outcome(txn.ID()); !known || !c {
		t.Fatalf("outcome = %v, %v", c, known)
	}
}

func TestTwoPhaseCommitPrepareFailureAbortsHost(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	good := &fakeXRM{name: "good"}
	bad := &fakeXRM{name: "bad", failPrepare: true}
	txn := db.Begin()
	txn.Enlist(good)
	txn.Enlist(bad)
	txn.Exec(`INSERT INTO t VALUES (1)`)
	if err := txn.Commit(); err == nil {
		t.Fatal("commit should fail when a participant refuses prepare")
	}
	// Host change rolled back.
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 0 {
		t.Fatalf("row survived failed 2PC: %d", rows.Data[0][0].I)
	}
	// The good participant must have been told to abort.
	if len(good.aborted) != 1 || len(good.committed) != 0 {
		t.Fatalf("good participant calls = %+v", good)
	}
	if c, known := db.Outcome(txn.ID()); !known || c {
		t.Fatalf("outcome = %v, %v; want aborted", c, known)
	}
}

func TestStateIDAdvancesOnCommit(t *testing.T) {
	db := testDB(t)
	s0 := db.StateID()
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	s1 := db.StateID()
	if s1 <= s0 {
		t.Fatalf("state id did not advance: %d -> %d", s0, s1)
	}
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if db.StateID() <= s1 {
		t.Fatal("state id did not advance on second commit")
	}
}

func TestDMLHookVeto(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	db.SetDMLHook(func(txn *Txn, tbl *Table, op DMLOp, old, new Row) error {
		if op == DMLInsert && new[0].I == 13 {
			return errors.New("thirteen is unlucky")
		}
		return nil
	})
	if _, err := db.Exec(`INSERT INTO t VALUES (13)`); err == nil {
		t.Fatal("vetoed insert succeeded")
	}
	mustExec(t, db, `INSERT INTO t VALUES (12)`)
}

func TestDMLHookSeesOldAndNew(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	var gotOld, gotNew int64
	db.SetDMLHook(func(txn *Txn, tbl *Table, op DMLOp, old, new Row) error {
		if op == DMLUpdate {
			gotOld, gotNew = old[1].I, new[1].I
		}
		return nil
	})
	mustExec(t, db, `UPDATE t SET v = 20 WHERE id = 1`)
	if gotOld != 10 || gotNew != 20 {
		t.Fatalf("hook saw %d -> %d", gotOld, gotNew)
	}
}
