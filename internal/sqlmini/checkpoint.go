package sqlmini

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"datalinks/internal/wal"
)

// Checkpoints bound recovery work: a quiescent snapshot of every table is
// captured at a known LSN (the anchor) and recovery replays only the log
// tail after it, O(tail) instead of O(history).
//
// The snapshot is taken only when no transaction is active — Begin registers
// in db.active under db.mu before logging anything, so holding db.mu with an
// empty active set blocks every writer. Quiescence buys a strong invariant:
// no transaction spans a checkpoint, so no loser or in-doubt backchain ever
// reaches below the anchor, and the undo pass never needs truncated records.
//
// Disk mode (Options.Dir set) writes the snapshot to repo.snap in the WAL
// directory via temp+rename, then logs a reference checkpoint record and
// truncates the log head. The sequencing is the gate against double-apply:
// the snapshot file carries its anchor LSN, recovery replays strictly after
// it, and a crash between the rename and the truncate merely leaves extra
// pre-anchor records that the anchored scan skips. The in-memory mode embeds
// the snapshot in the checkpoint record itself.

// Checkpoint payload kinds (first byte of a RecCheckpoint payload).
const (
	ckptEmbedded byte = 0x01 // gob snapshot follows (in-memory mode)
	ckptRef      byte = 0x02 // uvarint anchor LSN follows; state in repo.snap
)

// snapFileName is the checkpoint snapshot in the repository directory.
const snapFileName = "repo.snap"

// tableSnap is one table's checkpoint image.
type tableSnap struct {
	Name    string
	Columns []Column
	Indexes []int // secondary-indexed column positions
	RowIDs  []RowID
	Rows    []Row
	NextID  RowID
}

// dbSnapshot is the whole-database checkpoint image.
type dbSnapshot struct {
	SnapLSN wal.LSN // the log tail when the image was captured — the anchor
	NextTxn uint64
	Tables  []tableSnap
}

// Checkpoint attempts a quiescent checkpoint. It returns false (with no
// error) when active transactions make the database non-quiescent; the next
// trigger retries.
func (db *DB) Checkpoint() (bool, error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked()
}

// maybeCheckpoint fires a checkpoint when the log odometer passes the
// configured threshold. Called on every transaction finish; contention and
// failure are both non-events (the log remains authoritative, a checkpoint
// is only an optimization until the next one lands).
func (db *DB) maybeCheckpoint() {
	if db.ckptBytes <= 0 || db.log.SizeSinceCheckpoint() < db.ckptBytes {
		return
	}
	if !db.ckptMu.TryLock() {
		return
	}
	defer db.ckptMu.Unlock()
	_, _ = db.checkpointLocked()
}

// checkpointLocked does the work; caller holds ckptMu.
func (db *DB) checkpointLocked() (bool, error) {
	db.mu.Lock()
	if len(db.active) > 0 {
		db.mu.Unlock()
		return false, nil
	}
	snap := db.captureQuiescent()
	snap.SnapLSN = db.log.TailLSN()
	snap.NextTxn = db.nextTxn
	db.mu.Unlock()

	// WAL rule: every record the snapshot reflects must be durable before
	// the snapshot can supersede them.
	if err := db.log.FlushTo(snap.SnapLSN); err != nil {
		return false, err
	}

	if db.dir != "" {
		if err := writeSnapFile(db.dir, snap); err != nil {
			return false, err
		}
		payload := binary.AppendUvarint([]byte{ckptRef}, uint64(snap.SnapLSN))
		if _, err := db.log.Append(wal.Record{Type: wal.RecCheckpoint, Payload: payload}); err != nil {
			return false, err
		}
		if _, err := db.log.Flush(); err != nil {
			return false, err
		}
		if err := db.log.TruncateHead(snap.SnapLSN + 1); err != nil {
			return false, err
		}
		return true, nil
	}

	payload := append([]byte{ckptEmbedded}, encodeSnapshot(snap)...)
	if _, err := db.log.Append(wal.Record{Type: wal.RecCheckpoint, Payload: payload}); err != nil {
		return false, err
	}
	if _, err := db.log.Flush(); err != nil {
		return false, err
	}
	return true, nil
}

// captureQuiescent copies every table. Caller holds db.mu with db.active
// empty, so no writer can race the per-table latches.
func (db *DB) captureQuiescent() *dbSnapshot {
	snap := &dbSnapshot{}
	db.cat.mu.RLock()
	names := make([]string, 0, len(db.cat.tables))
	for k := range db.cat.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	tables := make([]*Table, 0, len(names))
	for _, k := range names {
		tables = append(tables, db.cat.tables[k])
	}
	db.cat.mu.RUnlock()
	for _, t := range tables {
		snap.Tables = append(snap.Tables, snapTable(t))
	}
	return snap
}

// snapTable copies one table under its latch.
func snapTable(t *Table) tableSnap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ts := tableSnap{
		Name:    t.Name,
		Columns: append([]Column(nil), t.Columns...),
		NextID:  t.nextID,
	}
	for ci := range t.secondary {
		ts.Indexes = append(ts.Indexes, ci)
	}
	sort.Ints(ts.Indexes)
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts.RowIDs = append(ts.RowIDs, id)
		ts.Rows = append(ts.Rows, t.rows[id].Clone())
	}
	return ts
}

// applySnapshot rebuilds the catalog from a checkpoint image. The database
// must be empty (freshly constructed for recovery).
func (db *DB) applySnapshot(snap *dbSnapshot) error {
	for _, ts := range snap.Tables {
		tbl, err := db.cat.create(ts.Name, ts.Columns)
		if err != nil {
			return fmt.Errorf("sqlmini: snapshot apply: %w", err)
		}
		for _, ci := range ts.Indexes {
			tbl.AddIndex(ci)
		}
		for i, id := range ts.RowIDs {
			if err := tbl.InsertAt(id, ts.Rows[i]); err != nil {
				return fmt.Errorf("sqlmini: snapshot apply: %w", err)
			}
		}
		tbl.mu.Lock()
		if ts.NextID > tbl.nextID {
			tbl.nextID = ts.NextID
		}
		tbl.mu.Unlock()
	}
	db.nextTxn = snap.NextTxn
	return nil
}

func encodeSnapshot(snap *dbSnapshot) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		panic(fmt.Sprintf("sqlmini: snapshot encode: %v", err)) // all types are gob-safe
	}
	return buf.Bytes()
}

func decodeSnapshot(b []byte) (*dbSnapshot, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sqlmini: snapshot decode: %w", err)
	}
	return &snap, nil
}

// writeSnapFile persists the snapshot atomically: CRC-prefixed gob into a
// temp file, fsync, rename over repo.snap, fsync the directory. A crash at
// any point leaves either the previous snapshot or the new one, never a
// torn mixture.
func writeSnapFile(dir string, snap *dbSnapshot) error {
	body := encodeSnapshot(snap)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(body))

	tmp := filepath.Join(dir, snapFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("sqlmini: snapshot write: %w", err)
	}
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(body)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("sqlmini: snapshot write: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sqlmini: snapshot write: %w", err)
	}
	syncDirBestEffort(dir)
	return nil
}

// loadSnapFile reads the checkpoint snapshot, returning (nil, nil) when none
// exists. A leftover .tmp from an interrupted write is discarded.
func loadSnapFile(dir string) (*dbSnapshot, error) {
	os.Remove(filepath.Join(dir, snapFileName+".tmp"))
	raw, err := os.ReadFile(filepath.Join(dir, snapFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sqlmini: snapshot read: %w", err)
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("sqlmini: snapshot file truncated (%d bytes)", len(raw))
	}
	want := binary.LittleEndian.Uint32(raw[:4])
	if crc32.ChecksumIEEE(raw[4:]) != want {
		return nil, fmt.Errorf("sqlmini: snapshot file fails its checksum")
	}
	return decodeSnapshot(raw[4:])
}

func syncDirBestEffort(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
