package sqlmini

import (
	"testing"
	"testing/quick"
	"time"
)

// recoverDB crashes db and runs restart recovery.
func recoverDB(t *testing.T, db *DB) (*DB, *RecoveryReport) {
	t.Helper()
	durable := db.Crash()
	db2, rep, err := Recover(durable, Options{LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return db2, rep
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'one'), (2, 'two')`)
	mustExec(t, db, `UPDATE t SET v = 'uno' WHERE id = 1`)
	mustExec(t, db, `DELETE FROM t WHERE id = 2`)

	db2, rep := recoverDB(t, db)
	if len(rep.LoserTxns) != 0 {
		t.Fatalf("losers = %v", rep.LoserTxns)
	}
	rows := mustQuery(t, db2, `SELECT id, v FROM t`)
	if len(rows.Data) != 1 || rows.Data[0][1].S != "uno" {
		t.Fatalf("recovered rows = %+v", rows.Data)
	}
}

func TestRecoveryUndoesUncommitted(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)

	// Uncommitted transaction caught by the crash.
	txn := db.Begin()
	txn.Exec(`UPDATE t SET v = 999 WHERE id = 1`)
	txn.Exec(`INSERT INTO t VALUES (2, 20)`)
	// Force the log so the loser's records are durable (worst case for undo).
	db.Log().Flush()

	db2, rep := recoverDB(t, db)
	if len(rep.LoserTxns) != 1 {
		t.Fatalf("losers = %v", rep.LoserTxns)
	}
	rows := mustQuery(t, db2, `SELECT id, v FROM t`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 || rows.Data[0][1].I != 10 {
		t.Fatalf("recovered rows = %+v", rows.Data)
	}
	if c, known := db2.Outcome(txn.ID()); !known || c {
		t.Fatalf("loser outcome = %v/%v, want aborted/known", c, known)
	}
}

func TestRecoveryLosesUnflushedCommit(t *testing.T) {
	// A commit whose record never reached stable storage did not happen.
	// Commit() flushes, so simulate by writing through a txn and crashing
	// before commit — the insert records may be durable but no commit is.
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	txn := db.Begin()
	txn.Exec(`INSERT INTO t VALUES (1)`)
	db.Log().Flush() // updates durable, commit absent

	db2, _ := recoverDB(t, db)
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 0 {
		t.Fatalf("uncommitted insert survived: %d", rows.Data[0][0].I)
	}
}

func TestRecoveryMidAbortContinuesUndo(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)

	// Manually mimic a crash in the middle of an abort: updates logged,
	// abort record logged, one CLR logged, then crash.
	txn := db.Begin()
	txn.Exec(`UPDATE t SET v = 111 WHERE id = 1`)
	txn.Exec(`UPDATE t SET v = 222 WHERE id = 2`)
	db.Log().Flush()
	// Start an abort but "crash" before it completes by not letting it run:
	// we emulate the partial abort by flushing mid-way. Full abort then crash
	// after only the durable prefix includes part of the CLRs is equivalent.
	go txn.Abort()
	time.Sleep(10 * time.Millisecond)

	db2, _ := recoverDB(t, db)
	rows := mustQuery(t, db2, `SELECT id, v FROM t ORDER BY id`)
	if len(rows.Data) != 2 || rows.Data[0][1].I != 10 || rows.Data[1][1].I != 20 {
		t.Fatalf("rows after mid-abort recovery = %+v", rows.Data)
	}
}

func TestRecoveryKeepsInDoubtPrepared(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)

	txn := db.Begin()
	txn.Exec(`UPDATE t SET v = 77 WHERE id = 1`)
	if err := txn.Prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}

	db2, rep := recoverDB(t, db)
	if len(rep.InDoubtTxns) != 1 || rep.InDoubtTxns[0] != txn.ID() {
		t.Fatalf("in-doubt = %v", rep.InDoubtTxns)
	}
	// The row is re-locked: readers must block/timeout.
	if _, err := db2.Query(`SELECT v FROM t WHERE id = 1`); err == nil {
		t.Fatal("read of in-doubt row should block")
	}
	// Coordinator says commit.
	if err := db2.ResolveInDoubt(txn.ID(), true); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	rows := mustQuery(t, db2, `SELECT v FROM t WHERE id = 1`)
	if rows.Data[0][0].I != 77 {
		t.Fatalf("v = %d after commit resolution", rows.Data[0][0].I)
	}
}

func TestRecoveryResolveInDoubtAbort(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	txn := db.Begin()
	txn.Exec(`UPDATE t SET v = 88 WHERE id = 1`)
	txn.Prepare()

	db2, _ := recoverDB(t, db)
	if err := db2.ResolveInDoubt(txn.ID(), false); err != nil {
		t.Fatalf("resolve abort: %v", err)
	}
	rows := mustQuery(t, db2, `SELECT v FROM t WHERE id = 1`)
	if rows.Data[0][0].I != 10 {
		t.Fatalf("v = %d after abort resolution", rows.Data[0][0].I)
	}
	if err := db2.ResolveInDoubt(txn.ID(), false); err == nil {
		t.Fatal("double resolve should fail")
	}
}

func TestRecoveryDDL(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE keepme (id INT)`)
	mustExec(t, db, `CREATE TABLE dropme (id INT)`)
	mustExec(t, db, `DROP TABLE dropme`)

	// Uncommitted CREATE must vanish.
	txn := db.Begin()
	txn.Exec(`CREATE TABLE ghost (id INT)`)
	db.Log().Flush()

	db2, _ := recoverDB(t, db)
	names := db2.TableNames()
	if len(names) != 1 || names[0] != "keepme" {
		t.Fatalf("tables after recovery = %v", names)
	}
}

// TestRecoveryRebuildsIndexes: CREATE INDEX is WAL-logged DDL, so a
// recovered database serves the same predicates index-backed instead of
// silently degrading to full scans; an index created by a loser transaction
// is dropped by undo.
func TestRecoveryRebuildsIndexes(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, cat VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a')`)
	mustExec(t, db, `CREATE INDEX ON t (cat)`)

	// A loser transaction creates a second index the crash must roll back.
	loser := db.Begin()
	if _, err := loser.Exec(`CREATE INDEX ON t (id)`); err != nil {
		t.Fatal(err)
	}
	db.Log().Flush()

	db2, _ := recoverDB(t, db)
	tbl, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex(tbl.ColIndex("cat")) {
		t.Fatal("committed index lost by recovery")
	}
	if tbl.HasIndex(tbl.ColIndex("id")) {
		t.Fatal("loser transaction's index survived recovery")
	}
	if ids, ok := tbl.LookupIndex(tbl.ColIndex("cat"), Str("a")); !ok || len(ids) != 2 {
		t.Fatalf("recovered index lookup = %v, %v", ids, ok)
	}
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t WHERE cat = 'a'`)
	if rows.Data[0][0].I != 2 {
		t.Fatalf("indexed count after recovery = %d", rows.Data[0][0].I)
	}
}

// TestDuplicateCreateIndexAbortKeepsIndex: a duplicate CREATE INDEX is a
// no-op and must not be logged — otherwise undoing the aborted duplicate
// would drop the committed index.
func TestDuplicateCreateIndexAbortKeepsIndex(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, cat VARCHAR)`)
	mustExec(t, db, `CREATE INDEX ON t (cat)`)
	txn := db.Begin()
	if _, err := txn.Exec(`CREATE INDEX ON t (cat)`); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex(tbl.ColIndex("cat")) {
		t.Fatal("aborted duplicate CREATE INDEX dropped the committed index")
	}
}

func TestRecoveryAfterRecoveryIsStable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 1)`)
	db2, _ := recoverDB(t, db)
	mustExec(t, db2, `INSERT INTO t VALUES (2, 2)`)
	db3, _ := recoverDB(t, db2)
	rows := mustQuery(t, db3, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 2 {
		t.Fatalf("double recovery count = %d", rows.Data[0][0].I)
	}
	// New transactions keep working post-recovery.
	mustExec(t, db3, `INSERT INTO t VALUES (3, 3)`)
}

// Property: for any interleaving of committed and aborted increments, with
// one in-flight increment caught by the crash, the recovered counter equals
// the number of committed increments. (Uncommitted work other than the final
// in-flight transaction is aborted through the normal path: strict 2PL means
// only one writer can be in flight at the instant of the crash.)
func TestRecoveryCounterProperty(t *testing.T) {
	prop := func(pattern []bool, inflight bool) bool {
		if len(pattern) > 25 {
			pattern = pattern[:25]
		}
		db := NewDB(Options{LockTimeout: 500 * time.Millisecond})
		db.MustExec(`CREATE TABLE c (id INT PRIMARY KEY, n INT)`)
		db.MustExec(`INSERT INTO c VALUES (1, 0)`)
		want := int64(0)
		for _, commit := range pattern {
			txn := db.Begin()
			if _, err := txn.Exec(`UPDATE c SET n = n + 1 WHERE id = 1`); err != nil {
				return false
			}
			if commit {
				if err := txn.Commit(); err != nil {
					return false
				}
				want++
			} else {
				if err := txn.Abort(); err != nil {
					return false
				}
			}
		}
		if inflight {
			txn := db.Begin()
			if _, err := txn.Exec(`UPDATE c SET n = n + 1 WHERE id = 1`); err != nil {
				return false
			}
			db.Log().Flush() // its records are durable, its commit is not
		}
		durable := db.Crash()
		db2, _, err := Recover(durable, Options{})
		if err != nil {
			return false
		}
		rows, err := db2.Query(`SELECT n FROM c WHERE id = 1`)
		if err != nil || len(rows.Data) != 1 {
			return false
		}
		return rows.Data[0][0].I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
