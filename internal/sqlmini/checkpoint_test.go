package sqlmini

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datalinks/internal/wal"
)

// diskDB opens a disk-backed database in dir with small segments so head
// truncation actually deletes files.
func diskDB(t *testing.T, dir string) *DB {
	t.Helper()
	lg, err := wal.Open(wal.Config{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	return NewDB(Options{Log: lg, Dir: dir, LockTimeout: 500 * time.Millisecond})
}

// reopenDisk kills the process state and cold-starts from the directory.
func reopenDisk(t *testing.T, db *DB, dir string) (*DB, *RecoveryReport) {
	t.Helper()
	db.Log().Kill()
	lg, err := wal.Open(wal.Config{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	db2, rep, err := Recover(lg, Options{Dir: dir, LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return db2, rep
}

func TestCheckpointDiskAnchoredRecovery(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)`)
	for i := 1; i <= 40; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, 'x')`, Int(int64(i)))
	}
	ok, err := db.Checkpoint()
	if err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "repo.snap")); err != nil {
		t.Fatalf("repo.snap missing: %v", err)
	}
	totalBefore := db.Log().TailLSN()
	// Tail after the checkpoint: a handful of records only.
	mustExec(t, db, `UPDATE t SET v = 'y' WHERE id = 7`)
	mustExec(t, db, `INSERT INTO t VALUES (41, 'tail')`)

	db2, rep := reopenDisk(t, db, dir)
	if !rep.SnapshotUsed || rep.AnchorLSN == wal.NilLSN {
		t.Fatalf("recovery ignored the snapshot: %+v", rep)
	}
	// O(tail), not O(history): the anchored scan must cover far fewer
	// records than were ever logged.
	if rep.RecordsScanned >= int(totalBefore) {
		t.Fatalf("RecordsScanned = %d, want « %d total", rep.RecordsScanned, totalBefore)
	}
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 41 {
		t.Fatalf("row count after recovery = %d, want 41", rows.Data[0][0].I)
	}
	rows = mustQuery(t, db2, `SELECT v FROM t WHERE id = 7`)
	if rows.Data[0][0].S != "y" {
		t.Fatalf("post-checkpoint update lost: %+v", rows.Data)
	}
}

// TestCheckpointSequenceGate: head truncation removes only whole segments,
// so the log retains records at or below the anchor. If recovery replayed
// them on top of the snapshot, InsertAt would duplicate rows — the anchored
// scan is the gate, and this is its natural failure mode.
func TestCheckpointSequenceGate(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(int64(i*100)))
	}
	if ok, err := db.Checkpoint(); err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	// Pre-anchor records must still be on disk (whole-segment truncation).
	if db.Log().Base() >= db.Log().TailLSN() {
		t.Fatalf("truncation removed the whole log: base=%d tail=%d", db.Log().Base(), db.Log().TailLSN())
	}

	db2, rep := reopenDisk(t, db, dir)
	if !rep.SnapshotUsed {
		t.Fatal("snapshot not used")
	}
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 10 {
		t.Fatalf("rows double-applied or lost: count = %d, want 10", rows.Data[0][0].I)
	}
}

func TestCheckpointSkipsWhileBusy(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	txn := db.Begin()
	if _, err := txn.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	ok, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("checkpoint claimed success while a transaction was active")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	ok, err = db.Checkpoint()
	if err != nil || !ok {
		t.Fatalf("quiescent checkpoint: ok=%v err=%v", ok, err)
	}
}

func TestCheckpointMemoryAnchoredRecovery(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 1; i <= 30; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(int64(i)))
	}
	if ok, err := db.Checkpoint(); err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	total := db.Log().TailLSN()
	mustExec(t, db, `UPDATE t SET v = 0 WHERE id = 3`)

	durable := db.Crash()
	db2, rep, err := Recover(durable, Options{LockTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotUsed {
		t.Fatal("embedded checkpoint not used")
	}
	if rep.RecordsScanned >= int(total) {
		t.Fatalf("RecordsScanned = %d, want « %d", rep.RecordsScanned, total)
	}
	rows := mustQuery(t, db2, `SELECT v FROM t WHERE id = 3`)
	if rows.Data[0][0].I != 0 {
		t.Fatalf("tail update lost: %+v", rows.Data)
	}
	rows = mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 30 {
		t.Fatalf("count = %d, want 30", rows.Data[0][0].I)
	}
}

func TestCheckpointAutomaticTrigger(t *testing.T) {
	dir := t.TempDir()
	lg, err := wal.Open(wal.Config{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(Options{Log: lg, Dir: dir, CheckpointBytes: 2048, LockTimeout: 500 * time.Millisecond})
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)`)
	for i := 1; i <= 60; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, 'some-padding-value-to-fill-the-log')`, Int(int64(i)))
	}
	if _, err := os.Stat(filepath.Join(dir, "repo.snap")); err != nil {
		t.Fatalf("automatic checkpoint never fired: %v", err)
	}
	if db.Log().SizeSinceCheckpoint() > 4096 {
		t.Fatalf("odometer not reset by automatic checkpoint: %d", db.Log().SizeSinceCheckpoint())
	}
}

func TestRecoverRefusesTruncatedLogWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 1; i <= 20; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?)`, Int(int64(i)))
	}
	if ok, err := db.Checkpoint(); err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	if db.Log().Base() == wal.NilLSN {
		t.Skip("no segment was truncated; cannot exercise the gate")
	}
	db.Log().Kill()
	if err := os.Remove(filepath.Join(dir, "repo.snap")); err != nil {
		t.Fatal(err)
	}
	lg, err := wal.Open(wal.Config{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(lg, Options{Dir: dir, LockTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("recovery accepted a truncated log with no snapshot")
	}
}

func TestRecoverRejectsOrphanRecord(t *testing.T) {
	lg := wal.New()
	p := encodePayload(logPayload{Op: opInsert, Table: "t", Row: 1})
	if _, err := lg.Append(wal.Record{Type: wal.RecUpdate, TxnID: 0, Payload: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := lg.Crash()
	_, _, err := Recover(durable, Options{LockTimeout: 500 * time.Millisecond})
	if !errors.Is(err, ErrOrphanRecord) {
		t.Fatalf("err = %v, want ErrOrphanRecord", err)
	}
}

func TestRecoverRejectsOrphanCLR(t *testing.T) {
	lg := wal.New()
	p := encodePayload(logPayload{Op: opDelete, Table: "t", Row: 1})
	if _, err := lg.Append(wal.Record{Type: wal.RecCLR, TxnID: 0, Payload: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := lg.Crash()
	_, _, err := Recover(durable, Options{LockTimeout: 500 * time.Millisecond})
	if !errors.Is(err, ErrOrphanRecord) {
		t.Fatalf("err = %v, want ErrOrphanRecord", err)
	}
}

// TestCheckpointRepeatedCycles runs several checkpoint/workload/kill rounds
// and verifies each cold start reconstructs the full state.
func TestCheckpointRepeatedCycles(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	next := 1
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, Int(int64(next)), Int(int64(next*7)))
			next++
		}
		if round%2 == 0 {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		db2, _ := reopenDisk(t, db, dir)
		db = db2
		rows := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
		if got := int(rows.Data[0][0].I); got != next-1 {
			t.Fatalf("round %d: count = %d, want %d", round, got, next-1)
		}
	}
	db.Log().Close()
}
