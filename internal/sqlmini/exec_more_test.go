package sqlmini

import (
	"testing"

	"datalinks/internal/datalink"
)

// Additional executor coverage: NULL propagation, DATALINK predicates,
// three-table joins, alias ordering, and update coercion errors.

func TestNullPropagationInArithmetic(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, NULL)`)
	rows := mustQuery(t, db, `SELECT a + b, a || b, -b FROM t`)
	for i, v := range rows.Data[0] {
		if !v.IsNull() {
			t.Errorf("col %d = %v, want NULL", i, v)
		}
	}
}

func TestDatalinkEqualityPredicate(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT, doc DATALINK)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, DLVALUE('dlfs://s/a')), (2, DLVALUE('dlfs://s/b'))`)
	rows := mustQuery(t, db, `SELECT id FROM t WHERE doc = ?`, Link(datalink.MustParse("dlfs://s/b")))
	if len(rows.Data) != 1 || rows.Data[0][0].I != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
	// String literal coerces for comparison via CoerceTo on insert only; an
	// explicit DLVALUE comparison works in-place.
	rows = mustQuery(t, db, `SELECT id FROM t WHERE doc = DLVALUE('dlfs://s/a')`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 {
		t.Fatalf("dlvalue predicate rows = %+v", rows.Data)
	}
}

func TestThreeTableJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE a (id INT, v VARCHAR)`)
	mustExec(t, db, `CREATE TABLE b (id INT, v VARCHAR)`)
	mustExec(t, db, `CREATE TABLE c (id INT, v VARCHAR)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 'a1')`)
	mustExec(t, db, `INSERT INTO b VALUES (1, 'b1'), (2, 'b2')`)
	mustExec(t, db, `INSERT INTO c VALUES (1, 'c1')`)
	rows := mustQuery(t, db, `SELECT a.v, b.v, c.v FROM a, b, c WHERE a.id = b.id AND b.id = c.id`)
	if len(rows.Data) != 1 || rows.Data[0][1].S != "b1" {
		t.Fatalf("join = %+v", rows.Data)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (3), (1), (2)`)
	rows := mustQuery(t, db, `SELECT a + 10 AS shifted FROM t ORDER BY shifted`)
	if rows.Data[0][0].I != 11 || rows.Data[2][0].I != 13 {
		t.Fatalf("ordered = %+v", rows.Data)
	}
}

func TestUpdateCoercionFailureAborts(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)
	// 'abc' cannot become INT; the whole statement fails and nothing sticks.
	if _, err := db.Exec(`UPDATE t SET v = 'abc'`); err == nil {
		t.Fatal("bad coercion accepted")
	}
	rows := mustQuery(t, db, `SELECT SUM(v) FROM t`)
	if rows.Data[0][0].I != 30 {
		t.Fatalf("partial update leaked: sum = %d", rows.Data[0][0].I)
	}
}

func TestSelectLimitZero(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	rows := mustQuery(t, db, `SELECT a FROM t LIMIT 0`)
	if len(rows.Data) != 0 {
		t.Fatalf("limit 0 returned %d rows", len(rows.Data))
	}
}

func TestNestedFunctionCalls(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES ('MiXeD')`)
	rows := mustQuery(t, db, `SELECT UPPER(LOWER(s)), LENGTH(UPPER(s)) FROM t`)
	if rows.Data[0][0].S != "MIXED" || rows.Data[0][1].I != 5 {
		t.Fatalf("nested = %+v", rows.Data[0])
	}
}

func TestInsertSelectVisibilityWithinTxn(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	txn := db.Begin()
	if _, err := txn.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Own writes are visible inside the transaction.
	rows, err := txn.Query(`SELECT COUNT(*) FROM t`)
	if err != nil || rows.Data[0][0].I != 1 {
		t.Fatalf("own-write visibility = %+v, %v", rows, err)
	}
	txn.Abort()
	rows2 := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows2.Data[0][0].I != 0 {
		t.Fatalf("after abort count = %d", rows2.Data[0][0].I)
	}
}

func TestBoolAndTimeColumns(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (flag BOOLEAN, at TIMESTAMP)`)
	mustExec(t, db, `INSERT INTO t VALUES (TRUE, NOW()), (FALSE, NOW())`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE flag = TRUE`)
	if rows.Data[0][0].I != 1 {
		t.Fatalf("bool predicate = %d", rows.Data[0][0].I)
	}
	rows = mustQuery(t, db, `SELECT at FROM t LIMIT 1`)
	if rows.Data[0][0].K != KindTime || rows.Data[0][0].T.IsZero() {
		t.Fatalf("timestamp = %+v", rows.Data[0][0])
	}
}
