package sqlmini

import (
	"fmt"

	"datalinks/internal/wal"
)

// RecoveryReport summarizes what restart recovery did.
type RecoveryReport struct {
	RecordsScanned int
	Redone         int
	LoserTxns      []uint64
	InDoubtTxns    []uint64
	CommittedTxns  []uint64
}

// Crash simulates a machine failure: the volatile log tail is discarded and
// the database becomes unusable. The returned log is the durable prefix a
// restart would find on disk; feed it to Recover.
func (db *DB) Crash() *wal.Log {
	return db.log.Crash()
}

// Recover performs ARIES-style restart recovery from a durable log: analysis
// (classify transactions), redo (replay history), undo (roll back losers).
// Prepared (in-doubt) transactions are redone, re-locked, and left pending
// for ResolveInDoubt — the 2PC coordinator decides their fate.
func Recover(durable *wal.Log, opts Options) (*DB, *RecoveryReport, error) {
	opts.Log = durable
	db := NewDB(opts)
	rep := &RecoveryReport{}

	// Analysis pass.
	type txnInfo struct {
		state   TxnState
		lastLSN wal.LSN
		ended   bool
	}
	txns := make(map[uint64]*txnInfo)
	maxTxn := uint64(0)
	err := durable.Scan(wal.NilLSN, wal.NilLSN, func(rec wal.Record) bool {
		rep.RecordsScanned++
		if rec.TxnID > maxTxn {
			maxTxn = rec.TxnID
		}
		ti, ok := txns[rec.TxnID]
		if !ok && rec.TxnID != 0 {
			ti = &txnInfo{state: TxnActive}
			txns[rec.TxnID] = ti
		}
		switch rec.Type {
		case wal.RecUpdate, wal.RecCLR:
			ti.lastLSN = rec.LSN
		case wal.RecPrepare:
			ti.state = TxnPrepared
			ti.lastLSN = rec.LSN
		case wal.RecCommit:
			ti.state = TxnCommitted
			ti.lastLSN = rec.LSN
		case wal.RecAbort:
			ti.state = TxnAborted
		case wal.RecEnd:
			ti.ended = true
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	db.nextTxn = maxTxn

	// Redo pass: replay complete history.
	var redoErr error
	err = durable.Scan(wal.NilLSN, wal.NilLSN, func(rec wal.Record) bool {
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			return true
		}
		p, err := decodePayload(rec.Payload)
		if err != nil {
			redoErr = err
			return false
		}
		if err := db.redoOne(p); err != nil {
			redoErr = err
			return false
		}
		rep.Redone++
		return true
	})
	if err == nil {
		err = redoErr
	}
	if err != nil {
		return nil, nil, err
	}

	// Undo pass: roll back losers (active or mid-abort, not ended).
	for id, ti := range txns {
		switch {
		case ti.state == TxnCommitted:
			rep.CommittedTxns = append(rep.CommittedTxns, id)
			db.outcome[id] = true
		case ti.state == TxnAborted && ti.ended:
			db.outcome[id] = false
		case ti.state == TxnPrepared:
			rep.InDoubtTxns = append(rep.InDoubtTxns, id)
			txn := &Txn{db: db, id: id, state: TxnPrepared, lastLSN: ti.lastLSN}
			db.active[id] = txn
			// Re-acquire exclusive locks on everything the in-doubt txn
			// touched so new transactions cannot see or change those rows
			// until the coordinator resolves the outcome.
			if err := db.relockBackchain(txn); err != nil {
				return nil, nil, err
			}
		default: // loser
			rep.LoserTxns = append(rep.LoserTxns, id)
			if err := db.undoLoser(id, ti.lastLSN); err != nil {
				return nil, nil, err
			}
			db.outcome[id] = false
		}
	}
	if _, err := db.log.Append(wal.Record{Type: wal.RecCheckpoint}); err != nil {
		return nil, nil, err
	}
	if _, err := db.log.Flush(); err != nil {
		return nil, nil, err
	}
	return db, rep, nil
}

// redoOne replays a single logged change.
func (db *DB) redoOne(p logPayload) error {
	switch p.Op {
	case opCreateTable:
		_, err := db.cat.create(p.Table, p.Cols)
		return err
	case opDropTable:
		return db.cat.drop(p.Table)
	case opCreateIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.AddIndex(tbl.ColIndex(p.Col))
		return nil
	case opDropIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.DropIndex(tbl.ColIndex(p.Col))
		return nil
	case opInsert:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		return tbl.InsertAt(p.Row, p.After)
	case opDelete:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.Delete(p.Row)
		return nil
	case opUpdate:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		_, err = tbl.Update(p.Row, p.After)
		return err
	default:
		return fmt.Errorf("sqlmini: cannot redo op %d", p.Op)
	}
}

// undoLoser rolls back an unfinished transaction during recovery. If the
// crash interrupted an abort, already-undone changes are skipped by
// following CLR UndoLSN pointers.
func (db *DB) undoLoser(id uint64, last wal.LSN) error {
	cur := last
	for cur != wal.NilLSN {
		rec, err := db.log.Read(cur)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecCLR:
			cur = rec.UndoLSN
		case wal.RecUpdate:
			if err := db.undoOne(rec, id); err != nil {
				return err
			}
			cur = rec.PrevLSN
		default:
			cur = rec.PrevLSN
		}
	}
	_, err := db.log.Append(wal.Record{Type: wal.RecEnd, TxnID: id})
	return err
}

// relockBackchain takes X locks on every row an in-doubt transaction wrote.
func (db *DB) relockBackchain(txn *Txn) error {
	cur := txn.lastLSN
	for cur != wal.NilLSN {
		rec, err := db.log.Read(cur)
		if err != nil {
			return err
		}
		if rec.Type == wal.RecUpdate || rec.Type == wal.RecCLR {
			p, err := decodePayload(rec.Payload)
			if err != nil {
				return err
			}
			if p.Op == opInsert || p.Op == opDelete || p.Op == opUpdate {
				if err := db.lm.Acquire(txn.id, LockTarget{Table: p.Table, Row: p.Row}, LockX); err != nil {
					return err
				}
			}
		}
		if rec.Type == wal.RecCLR {
			cur = rec.UndoLSN
		} else {
			cur = rec.PrevLSN
		}
	}
	return nil
}

// InDoubt lists transactions recovered in the prepared state.
func (db *DB) InDoubt() []uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []uint64
	for id, t := range db.active {
		if t.state == TxnPrepared {
			out = append(out, id)
		}
	}
	return out
}

// ResolveInDoubt finishes a prepared transaction with the coordinator's
// verdict.
func (db *DB) ResolveInDoubt(id uint64, commit bool) error {
	db.mu.Lock()
	txn, ok := db.active[id]
	db.mu.Unlock()
	if !ok || txn.state != TxnPrepared {
		return fmt.Errorf("sqlmini: txn %d is not in-doubt", id)
	}
	if commit {
		return txn.Commit()
	}
	return txn.Abort()
}
