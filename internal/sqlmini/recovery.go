package sqlmini

import (
	"errors"
	"fmt"

	"datalinks/internal/wal"
)

// ErrOrphanRecord marks a transaction-scoped log record carrying no
// transaction id — corruption recovery must refuse, not panic over.
var ErrOrphanRecord = errors.New("sqlmini: transaction-scoped log record with no transaction id")

// RecoveryReport summarizes what restart recovery did.
type RecoveryReport struct {
	RecordsScanned int
	Redone         int
	// AnchorLSN is where the analysis and redo passes started (NilLSN means
	// the full log was scanned); SnapshotUsed reports whether a checkpoint
	// image seeded the catalog.
	AnchorLSN     wal.LSN
	SnapshotUsed  bool
	LoserTxns     []uint64
	InDoubtTxns   []uint64
	CommittedTxns []uint64
}

// Crash simulates a machine failure: the volatile log tail is discarded and
// the database becomes unusable. The returned log is the durable prefix a
// restart would find on disk; feed it to Recover.
func (db *DB) Crash() *wal.Log {
	return db.log.Crash()
}

// Recover performs ARIES-style restart recovery from a durable log: analysis
// (classify transactions), redo (replay history), undo (roll back losers).
// Prepared (in-doubt) transactions are redone, re-locked, and left pending
// for ResolveInDoubt — the 2PC coordinator decides their fate.
//
// Both scanning passes are anchored at the last durable checkpoint: the
// snapshot image seeds the catalog at the anchor LSN, and only the log tail
// after it is replayed. Checkpoints are quiescent, so no backchain of a
// loser or in-doubt transaction reaches below the anchor. Without a
// checkpoint the passes run from the log's start, as before.
func Recover(durable *wal.Log, opts Options) (*DB, *RecoveryReport, error) {
	opts.Log = durable
	db := NewDB(opts)
	rep := &RecoveryReport{}

	anchor, err := db.loadCheckpoint(durable, opts.Dir, rep)
	if err != nil {
		return nil, nil, err
	}
	if base := durable.Base(); base > anchor {
		// The log head was truncated past our anchor: the snapshot that
		// justified that truncation is missing or stale. Refusing beats
		// silently replaying an incomplete history.
		return nil, nil, fmt.Errorf("sqlmini: log starts at LSN %d but the checkpoint anchor is %d; snapshot missing or stale", base+1, anchor)
	}

	// Analysis pass.
	type txnInfo struct {
		state   TxnState
		lastLSN wal.LSN
		ended   bool
	}
	txns := make(map[uint64]*txnInfo)
	maxTxn := uint64(0)
	var scanErr error
	err = durable.Scan(anchor+1, wal.NilLSN, func(rec wal.Record) bool {
		rep.RecordsScanned++
		if rec.TxnID > maxTxn {
			maxTxn = rec.TxnID
		}
		if rec.TxnID == 0 {
			if rec.Type != wal.RecCheckpoint {
				scanErr = fmt.Errorf("%w: %s at LSN %d", ErrOrphanRecord, rec.Type, rec.LSN)
				return false
			}
			return true
		}
		ti, ok := txns[rec.TxnID]
		if !ok {
			ti = &txnInfo{state: TxnActive}
			txns[rec.TxnID] = ti
		}
		switch rec.Type {
		case wal.RecUpdate, wal.RecCLR:
			ti.lastLSN = rec.LSN
		case wal.RecPrepare:
			ti.state = TxnPrepared
			ti.lastLSN = rec.LSN
		case wal.RecCommit:
			ti.state = TxnCommitted
			ti.lastLSN = rec.LSN
		case wal.RecAbort:
			ti.state = TxnAborted
		case wal.RecEnd:
			ti.ended = true
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, nil, err
	}
	if maxTxn > db.nextTxn {
		db.nextTxn = maxTxn
	}

	// Redo pass: replay the tail after the anchor. The snapshot already
	// holds every change at or below it, and redo is not idempotent
	// (InsertAt of an existing row fails), so the anchor gate is what makes
	// a crash between snapshot rename and log truncation harmless.
	var redoErr error
	err = durable.Scan(anchor+1, wal.NilLSN, func(rec wal.Record) bool {
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			return true
		}
		p, err := decodePayload(rec.Payload)
		if err != nil {
			redoErr = err
			return false
		}
		if err := db.redoOne(p); err != nil {
			redoErr = err
			return false
		}
		rep.Redone++
		return true
	})
	if err == nil {
		err = redoErr
	}
	if err != nil {
		return nil, nil, err
	}

	// Undo pass: roll back losers (active or mid-abort, not ended).
	for id, ti := range txns {
		switch {
		case ti.state == TxnCommitted:
			rep.CommittedTxns = append(rep.CommittedTxns, id)
			db.outcome[id] = true
		case ti.state == TxnAborted && ti.ended:
			db.outcome[id] = false
		case ti.state == TxnPrepared:
			rep.InDoubtTxns = append(rep.InDoubtTxns, id)
			txn := &Txn{db: db, id: id, state: TxnPrepared, lastLSN: ti.lastLSN}
			db.active[id] = txn
			// Re-acquire exclusive locks on everything the in-doubt txn
			// touched so new transactions cannot see or change those rows
			// until the coordinator resolves the outcome.
			if err := db.relockBackchain(txn); err != nil {
				return nil, nil, err
			}
		default: // loser
			rep.LoserTxns = append(rep.LoserTxns, id)
			if err := db.undoLoser(id, ti.lastLSN); err != nil {
				return nil, nil, err
			}
			db.outcome[id] = false
		}
	}
	if _, err := db.log.Flush(); err != nil {
		return nil, nil, err
	}
	// A fresh checkpoint caps what the next restart must replay. Best
	// effort: in-doubt transactions keep the database non-quiescent, and a
	// failed snapshot write only postpones the optimization.
	_, _ = db.Checkpoint()
	return db, rep, nil
}

// loadCheckpoint seeds db from the newest durable checkpoint and returns its
// anchor LSN (NilLSN when no checkpoint exists). Disk-backed databases read
// repo.snap; in-memory logs carry the snapshot inside the checkpoint record.
func (db *DB) loadCheckpoint(durable *wal.Log, dir string, rep *RecoveryReport) (wal.LSN, error) {
	if dir != "" {
		snap, err := loadSnapFile(dir)
		if err != nil {
			return wal.NilLSN, err
		}
		if snap == nil {
			return wal.NilLSN, nil
		}
		if err := db.applySnapshot(snap); err != nil {
			return wal.NilLSN, err
		}
		rep.AnchorLSN = snap.SnapLSN
		rep.SnapshotUsed = true
		return snap.SnapLSN, nil
	}
	ck := durable.LastCheckpoint()
	if ck == wal.NilLSN {
		return wal.NilLSN, nil
	}
	rec, err := durable.Read(ck)
	if err != nil {
		return wal.NilLSN, err
	}
	switch rec.Payload[0] {
	case ckptEmbedded:
		snap, err := decodeSnapshot(rec.Payload[1:])
		if err != nil {
			return wal.NilLSN, err
		}
		if err := db.applySnapshot(snap); err != nil {
			return wal.NilLSN, err
		}
		rep.AnchorLSN = snap.SnapLSN
		rep.SnapshotUsed = true
		return snap.SnapLSN, nil
	case ckptRef:
		return wal.NilLSN, fmt.Errorf("sqlmini: checkpoint at LSN %d references a disk snapshot but no repository directory is configured", ck)
	default:
		return wal.NilLSN, fmt.Errorf("sqlmini: checkpoint at LSN %d has unknown payload kind %#x", ck, rec.Payload[0])
	}
}

// redoOne replays a single logged change.
func (db *DB) redoOne(p logPayload) error {
	switch p.Op {
	case opCreateTable:
		_, err := db.cat.create(p.Table, p.Cols)
		return err
	case opDropTable:
		return db.cat.drop(p.Table)
	case opCreateIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.AddIndex(tbl.ColIndex(p.Col))
		return nil
	case opDropIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.DropIndex(tbl.ColIndex(p.Col))
		return nil
	case opInsert:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		return tbl.InsertAt(p.Row, p.After)
	case opDelete:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.Delete(p.Row)
		return nil
	case opUpdate:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		_, err = tbl.Update(p.Row, p.After)
		return err
	default:
		return fmt.Errorf("sqlmini: cannot redo op %d", p.Op)
	}
}

// undoLoser rolls back an unfinished transaction during recovery. If the
// crash interrupted an abort, already-undone changes are skipped by
// following CLR UndoLSN pointers.
func (db *DB) undoLoser(id uint64, last wal.LSN) error {
	cur := last
	for cur != wal.NilLSN {
		rec, err := db.log.Read(cur)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecCLR:
			cur = rec.UndoLSN
		case wal.RecUpdate:
			if err := db.undoOne(rec, id); err != nil {
				return err
			}
			cur = rec.PrevLSN
		default:
			cur = rec.PrevLSN
		}
	}
	_, err := db.log.Append(wal.Record{Type: wal.RecEnd, TxnID: id})
	return err
}

// relockBackchain takes X locks on every row an in-doubt transaction wrote.
func (db *DB) relockBackchain(txn *Txn) error {
	cur := txn.lastLSN
	for cur != wal.NilLSN {
		rec, err := db.log.Read(cur)
		if err != nil {
			return err
		}
		if rec.Type == wal.RecUpdate || rec.Type == wal.RecCLR {
			p, err := decodePayload(rec.Payload)
			if err != nil {
				return err
			}
			if p.Op == opInsert || p.Op == opDelete || p.Op == opUpdate {
				if err := db.lm.Acquire(txn.id, LockTarget{Table: p.Table, Row: p.Row}, LockX); err != nil {
					return err
				}
			}
		}
		if rec.Type == wal.RecCLR {
			cur = rec.UndoLSN
		} else {
			cur = rec.PrevLSN
		}
	}
	return nil
}

// InDoubt lists transactions recovered in the prepared state.
func (db *DB) InDoubt() []uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []uint64
	for id, t := range db.active {
		if t.state == TxnPrepared {
			out = append(out, id)
		}
	}
	return out
}

// ResolveInDoubt finishes a prepared transaction with the coordinator's
// verdict.
func (db *DB) ResolveInDoubt(id uint64, commit bool) error {
	db.mu.Lock()
	txn, ok := db.active[id]
	db.mu.Unlock()
	if !ok || txn.state != TxnPrepared {
		return fmt.Errorf("sqlmini: txn %d is not in-doubt", id)
	}
	if commit {
		return txn.Commit()
	}
	return txn.Abort()
}
