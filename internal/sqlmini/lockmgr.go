package sqlmini

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LockMode is the strength of a lock request.
type LockMode uint8

// Lock modes: shared (readers) and exclusive (writers).
const (
	LockS LockMode = iota + 1
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// LockTarget names a lockable object: a whole table or one row.
type LockTarget struct {
	Table string
	Row   RowID
	Whole bool // table-level lock when true
}

func (t LockTarget) String() string {
	if t.Whole {
		return t.Table
	}
	return fmt.Sprintf("%s[%d]", t.Table, t.Row)
}

// ErrLockTimeout is returned when a lock cannot be granted within the
// manager's timeout; the engine treats it as a deadlock victim signal.
var ErrLockTimeout = errors.New("sqlmini: lock wait timeout (possible deadlock)")

// lockState tracks the holders of one lock target plus its wait queue.
// Waiters are woken per target — a release on one row never disturbs
// transactions queued on another.
type lockState struct {
	holders map[uint64]LockMode // txnID -> strongest mode held
	waiters []chan struct{}
}

func (s *lockState) compatible(txn uint64, mode LockMode) bool {
	for id, held := range s.holders {
		if id == txn {
			continue
		}
		if mode == LockX || held == LockX {
			return false
		}
	}
	return true
}

// wake releases every waiter queued on this target.
func (s *lockState) wake() {
	for _, ch := range s.waiters {
		close(ch)
	}
	s.waiters = nil
}

// lockShards is the number of stripes the lock table is split into. Targets
// hash across shards so concurrent transactions touching different rows
// rarely contend on the same mutex. Power of two for cheap masking.
const lockShards = 64

// lockShard is one stripe of the lock table.
type lockShard struct {
	mu    sync.Mutex
	locks map[LockTarget]*lockState
	_     [48]byte // pad the struct to 64 bytes so shards don't share cache lines
}

// LockManager implements strict two-phase locking with timeout-based
// deadlock resolution. All locks a transaction holds are released together
// at commit or abort.
//
// The lock table is striped into shards with per-target wait queues: an
// acquire touches exactly one shard mutex, and a release wakes only the
// transactions queued on the released targets — there is no global mutex
// and no global broadcast.
type LockManager struct {
	shards  [lockShards]lockShard
	timeout time.Duration

	// held maps txn -> its locks, for strict-2PL release-all. A transaction
	// is driven by one goroutine at a time (2PL), so entries for one txn are
	// not themselves contended; the mutex only guards the outer map.
	heldMu sync.Mutex
	held   map[uint64]map[LockTarget]LockMode

	// Contention accounting, read by the E6/E13 experiments and exported to
	// a metrics registry when one is attached.
	waitTimeNs atomic.Int64 // total blocked time
	waits      atomic.Int64 // acquires that blocked at least once
	collisions atomic.Int64 // acquires that found an unrelated target on their shard

	mWaits, mWaitNs, mCollisions metricCounter
}

// metricCounter decouples the manager from the metrics package: internal/
// metrics.Counter satisfies it. Nil means "not attached".
type metricCounter interface{ Add(int64) }

// NewLockManager returns a manager with the given wait timeout.
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	lm := &LockManager{
		timeout: timeout,
		held:    make(map[uint64]map[LockTarget]LockMode),
	}
	for i := range lm.shards {
		lm.shards[i].locks = make(map[LockTarget]*lockState)
	}
	return lm
}

// AttachMetrics mirrors the contention counters into a metrics registry
// under the given counter handles (lock waits, blocked nanoseconds, shard
// collisions). Call before concurrent use.
func (lm *LockManager) AttachMetrics(waits, waitNs, collisions metricCounter) {
	lm.mWaits, lm.mWaitNs, lm.mCollisions = waits, waitNs, collisions
}

// shardOf hashes a target onto its stripe (FNV-1a).
func (lm *LockManager) shardOf(target LockTarget) *lockShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(target.Table); i++ {
		h = (h ^ uint32(target.Table[i])) * prime32
	}
	h = (h ^ uint32(target.Row)) * prime32
	h = (h ^ uint32(target.Row>>32)) * prime32
	if target.Whole {
		h = (h ^ 0x57) * prime32
	}
	return &lm.shards[h&(lockShards-1)]
}

// recordHeld notes that txn now holds target in mode.
func (lm *LockManager) recordHeld(txn uint64, target LockTarget, mode LockMode) {
	lm.heldMu.Lock()
	byTxn, ok := lm.held[txn]
	if !ok {
		byTxn = make(map[LockTarget]LockMode)
		lm.held[txn] = byTxn
	}
	byTxn[target] = mode
	lm.heldMu.Unlock()
}

// Acquire blocks until txn holds target in at least mode, or times out.
// Re-acquiring a held lock (same or weaker mode) is a no-op; S→X upgrade is
// granted when no other transaction holds the lock.
func (lm *LockManager) Acquire(txn uint64, target LockTarget, mode LockMode) error {
	sh := lm.shardOf(target)
	deadline := time.Now().Add(lm.timeout)
	waited := time.Duration(0)
	collided := false
	for {
		sh.mu.Lock()
		st, ok := sh.locks[target]
		if !ok {
			st = &lockState{holders: make(map[uint64]LockMode)}
			sh.locks[target] = st
		}
		if !collided && len(sh.locks) > 1 {
			collided = true
			lm.noteCollision()
		}
		if held, has := st.holders[txn]; has && (held == LockX || held == mode) {
			sh.mu.Unlock()
			return nil // already strong enough
		}
		if st.compatible(txn, mode) {
			st.holders[txn] = mode
			sh.mu.Unlock()
			lm.recordHeld(txn, target, mode)
			if waited > 0 {
				lm.noteWait(waited)
			}
			return nil
		}
		// Incompatible: queue on this target and wait for a release or the
		// deadline, whichever comes first.
		remaining := time.Until(deadline)
		if remaining <= 0 {
			sh.mu.Unlock()
			if waited > 0 {
				lm.noteWait(waited)
			}
			return fmt.Errorf("%w: txn %d waiting for %s %s", ErrLockTimeout, txn, mode, target)
		}
		ch := make(chan struct{})
		st.waiters = append(st.waiters, ch)
		sh.mu.Unlock()

		start := time.Now()
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
		waited += time.Since(start)
	}
}

// noteWait records one blocked acquire.
func (lm *LockManager) noteWait(waited time.Duration) {
	lm.waitTimeNs.Add(int64(waited))
	lm.waits.Add(1)
	if lm.mWaits != nil {
		lm.mWaits.Add(1)
	}
	if lm.mWaitNs != nil {
		lm.mWaitNs.Add(int64(waited))
	}
}

// noteCollision records an acquire that shared its shard with another target.
func (lm *LockManager) noteCollision() {
	lm.collisions.Add(1)
	if lm.mCollisions != nil {
		lm.mCollisions.Add(1)
	}
}

// TryAcquire is the NOWAIT variant: it errors immediately on conflict.
func (lm *LockManager) TryAcquire(txn uint64, target LockTarget, mode LockMode) error {
	sh := lm.shardOf(target)
	sh.mu.Lock()
	st, ok := sh.locks[target]
	if !ok {
		st = &lockState{holders: make(map[uint64]LockMode)}
		sh.locks[target] = st
	}
	if held, has := st.holders[txn]; has && (held == LockX || held == mode) {
		sh.mu.Unlock()
		return nil
	}
	if !st.compatible(txn, mode) {
		sh.mu.Unlock()
		return fmt.Errorf("%w: txn %d needs %s %s", ErrLockTimeout, txn, mode, target)
	}
	st.holders[txn] = mode
	sh.mu.Unlock()
	lm.recordHeld(txn, target, mode)
	return nil
}

// ReleaseAll drops every lock txn holds (end of strict 2PL), waking only the
// transactions queued on those targets.
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.heldMu.Lock()
	targets := lm.held[txn]
	delete(lm.held, txn)
	lm.heldMu.Unlock()
	for target := range targets {
		sh := lm.shardOf(target)
		sh.mu.Lock()
		if st, ok := sh.locks[target]; ok {
			delete(st.holders, txn)
			st.wake()
			if len(st.holders) == 0 {
				delete(sh.locks, target)
			}
		}
		sh.mu.Unlock()
	}
}

// Holding reports the mode txn holds on target (0 when none).
func (lm *LockManager) Holding(txn uint64, target LockTarget) LockMode {
	lm.heldMu.Lock()
	defer lm.heldMu.Unlock()
	return lm.held[txn][target]
}

// WaitStats reports cumulative blocked time and number of waits.
func (lm *LockManager) WaitStats() (time.Duration, int64) {
	return time.Duration(lm.waitTimeNs.Load()), lm.waits.Load()
}

// ContentionStats reports waits, cumulative blocked time and shard
// collisions — the counters the concurrency experiments surface.
func (lm *LockManager) ContentionStats() (waits int64, waitTime time.Duration, shardCollisions int64) {
	return lm.waits.Load(), time.Duration(lm.waitTimeNs.Load()), lm.collisions.Load()
}

// ShardCount reports the stripe count of the lock table.
func (lm *LockManager) ShardCount() int { return lockShards }

// ResetWaitStats zeroes the wait accounting between experiment runs.
func (lm *LockManager) ResetWaitStats() {
	lm.waitTimeNs.Store(0)
	lm.waits.Store(0)
	lm.collisions.Store(0)
}
