package sqlmini

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// LockMode is the strength of a lock request.
type LockMode uint8

// Lock modes: shared (readers) and exclusive (writers).
const (
	LockS LockMode = iota + 1
	LockX
)

func (m LockMode) String() string {
	if m == LockS {
		return "S"
	}
	return "X"
}

// LockTarget names a lockable object: a whole table or one row.
type LockTarget struct {
	Table string
	Row   RowID
	Whole bool // table-level lock when true
}

func (t LockTarget) String() string {
	if t.Whole {
		return t.Table
	}
	return fmt.Sprintf("%s[%d]", t.Table, t.Row)
}

// ErrLockTimeout is returned when a lock cannot be granted within the
// manager's timeout; the engine treats it as a deadlock victim signal.
var ErrLockTimeout = errors.New("sqlmini: lock wait timeout (possible deadlock)")

// lockState tracks the holders of one lock target.
type lockState struct {
	holders map[uint64]LockMode // txnID -> strongest mode held
}

func (s *lockState) compatible(txn uint64, mode LockMode) bool {
	for id, held := range s.holders {
		if id == txn {
			continue
		}
		if mode == LockX || held == LockX {
			return false
		}
	}
	return true
}

// LockManager implements strict two-phase locking with timeout-based
// deadlock resolution. All locks a transaction holds are released together
// at commit or abort.
type LockManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[LockTarget]*lockState
	held    map[uint64]map[LockTarget]LockMode
	timeout time.Duration

	// WaitTime accumulates total blocked time, for the E6 experiment.
	waitTime time.Duration
	waits    int64
}

// NewLockManager returns a manager with the given wait timeout.
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	lm := &LockManager{
		locks:   make(map[LockTarget]*lockState),
		held:    make(map[uint64]map[LockTarget]LockMode),
		timeout: timeout,
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Acquire blocks until txn holds target in at least mode, or times out.
// Re-acquiring a held lock (same or weaker mode) is a no-op; S→X upgrade is
// granted when no other transaction holds the lock.
func (lm *LockManager) Acquire(txn uint64, target LockTarget, mode LockMode) error {
	deadline := time.Now().Add(lm.timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()

	waited := time.Duration(0)
	for {
		st, ok := lm.locks[target]
		if !ok {
			st = &lockState{holders: make(map[uint64]LockMode)}
			lm.locks[target] = st
		}
		if held, has := st.holders[txn]; has && (held == LockX || held == mode) {
			return nil // already strong enough
		}
		if st.compatible(txn, mode) {
			st.holders[txn] = mode
			byTxn, ok := lm.held[txn]
			if !ok {
				byTxn = make(map[LockTarget]LockMode)
				lm.held[txn] = byTxn
			}
			byTxn[target] = mode
			if waited > 0 {
				lm.waitTime += waited
				lm.waits++
			}
			return nil
		}
		// Incompatible: wait with timeout. A simple timed wait loop over the
		// shared condition variable keeps the manager small; at benchmark
		// scale the thundering herd is immaterial.
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("%w: txn %d waiting for %s %s", ErrLockTimeout, txn, mode, target)
		}
		start := time.Now()
		done := make(chan struct{})
		go func() {
			select {
			case <-done:
			case <-time.After(remaining):
				lm.cond.Broadcast()
			}
		}()
		lm.cond.Wait()
		close(done)
		waited += time.Since(start)
	}
}

// TryAcquire is the NOWAIT variant: it errors immediately on conflict.
func (lm *LockManager) TryAcquire(txn uint64, target LockTarget, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st, ok := lm.locks[target]
	if !ok {
		st = &lockState{holders: make(map[uint64]LockMode)}
		lm.locks[target] = st
	}
	if held, has := st.holders[txn]; has && (held == LockX || held == mode) {
		return nil
	}
	if !st.compatible(txn, mode) {
		return fmt.Errorf("%w: txn %d needs %s %s", ErrLockTimeout, txn, mode, target)
	}
	st.holders[txn] = mode
	byTxn, ok := lm.held[txn]
	if !ok {
		byTxn = make(map[LockTarget]LockMode)
		lm.held[txn] = byTxn
	}
	byTxn[target] = mode
	return nil
}

// ReleaseAll drops every lock txn holds (end of strict 2PL).
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for target := range lm.held[txn] {
		if st, ok := lm.locks[target]; ok {
			delete(st.holders, txn)
			if len(st.holders) == 0 {
				delete(lm.locks, target)
			}
		}
	}
	delete(lm.held, txn)
	lm.cond.Broadcast()
}

// Holding reports the mode txn holds on target (0 when none).
func (lm *LockManager) Holding(txn uint64, target LockTarget) LockMode {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.held[txn][target]
}

// WaitStats reports cumulative blocked time and number of waits.
func (lm *LockManager) WaitStats() (time.Duration, int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.waitTime, lm.waits
}

// ResetWaitStats zeroes the wait accounting between experiment runs.
func (lm *LockManager) ResetWaitStats() {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.waitTime = 0
	lm.waits = 0
}
