package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"datalinks/internal/datalink"
)

// ---- AST ----

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name    string
	Columns []Column
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct{ Name string }

// CreateIndexStmt is CREATE INDEX ON t (col).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// InsertStmt is INSERT INTO t (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty = all columns in order
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET c=e,... [WHERE pred].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr // nil = all rows
}

// SetClause is one c = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is SELECT items FROM tables [WHERE] [ORDER BY] [LIMIT] [FOR UPDATE].
type SelectStmt struct {
	Items     []SelectItem
	Star      bool
	Tables    []string
	Where     Expr
	OrderBy   string
	OrderDesc bool
	Limit     int // -1 = none
	ForUpdate bool
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V Value }

// ColRef references a column, optionally table-qualified.
type ColRef struct{ Table, Name string }

// Param is a ? placeholder, bound positionally at execution.
type Param struct{ Idx int }

// Unary is NOT x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string // = <> < <= > >= AND OR + - * / ||
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a scalar or aggregate function call. Star marks COUNT(*).
type Call struct {
	Name string
	Args []Expr
	Star bool
}

func (*Lit) expr()    {}
func (*ColRef) expr() {}
func (*Param) expr()  {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*IsNull) expr() {}
func (*Call) expr()   {}

// ---- Lexer ----

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkSymbol
)

type tok struct {
	kind tokKind
	text string // idents upper-cased; strings unquoted
	raw  string
}

type lexer struct {
	src  string
	pos  int
	toks []tok
}

func lex(src string) ([]tok, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, tok{kind: tkEOF})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			raw := l.src[start:l.pos]
			l.toks = append(l.toks, tok{kind: tkIdent, text: strings.ToUpper(raw), raw: raw})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, tok{kind: tkNumber, text: l.src[start:l.pos]})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sqlmini: unterminated string literal")
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, tok{kind: tkString, text: sb.String()})
		default:
			// multi-char symbols first
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				l.toks = append(l.toks, tok{kind: tkSymbol, text: two})
				l.pos += 2
				continue
			}
			switch c {
			case '(', ')', ',', '=', '<', '>', '*', '+', '-', '/', '?', '.', ';':
				l.toks = append(l.toks, tok{kind: tkSymbol, text: string(c)})
				l.pos++
			default:
				return nil, fmt.Errorf("sqlmini: unexpected character %q", string(c))
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

// ---- Parser ----

type parser struct {
	toks   []tok
	pos    int
	params int
}

// Parse turns one SQL statement into an AST.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, fmt.Errorf("sqlmini: trailing input at %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() tok { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (tok, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return tok{}, fmt.Errorf("sqlmini: expected %q, found %q", text, p.cur().text)
}

func (p *parser) expectIdent() (tok, error) {
	if p.cur().kind == tkIdent {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return tok{}, fmt.Errorf("sqlmini: expected identifier, found %q", p.cur().text)
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.accept(tkIdent, "CREATE"):
		if p.accept(tkIdent, "TABLE") {
			return p.createTable()
		}
		if p.accept(tkIdent, "INDEX") {
			return p.createIndex()
		}
		return nil, fmt.Errorf("sqlmini: CREATE must be followed by TABLE or INDEX")
	case p.accept(tkIdent, "DROP"):
		if _, err := p.expect(tkIdent, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name.raw}, nil
	case p.accept(tkIdent, "INSERT"):
		return p.insert()
	case p.accept(tkIdent, "UPDATE"):
		return p.update()
	case p.accept(tkIdent, "DELETE"):
		return p.delete()
	case p.accept(tkIdent, "SELECT"):
		return p.selectStmt()
	default:
		return nil, fmt.Errorf("sqlmini: unknown statement starting with %q", p.cur().text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		col := Column{Name: colName.raw}
		switch typTok.text {
		case "INT", "INTEGER", "BIGINT":
			col.Kind = KindInt
		case "DOUBLE", "FLOAT", "REAL":
			col.Kind = KindFloat
		case "VARCHAR", "TEXT", "CHAR":
			col.Kind = KindString
			// optional (n)
			if p.accept(tkSymbol, "(") {
				if _, err := p.expect(tkNumber, ""); err == nil {
					if _, err := p.expect(tkSymbol, ")"); err != nil {
						return nil, err
					}
				} else {
					return nil, fmt.Errorf("sqlmini: VARCHAR length must be a number")
				}
			}
		case "BOOLEAN", "BOOL":
			col.Kind = KindBool
		case "TIMESTAMP", "DATETIME":
			col.Kind = KindTime
		case "DATALINK":
			col.Kind = KindLink
			col.DL = datalink.DefaultOptions
		default:
			return nil, fmt.Errorf("sqlmini: unknown type %q", typTok.raw)
		}
		// Column constraints / DATALINK options until , or )
		for {
			if p.accept(tkIdent, "PRIMARY") {
				if _, err := p.expect(tkIdent, "KEY"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
				col.NotNull = true
				continue
			}
			if p.accept(tkIdent, "NOT") {
				if _, err := p.expect(tkIdent, "NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
				continue
			}
			if col.Kind == KindLink && (p.at(tkIdent, "MODE") || p.at(tkIdent, "RECOVERY") || p.at(tkIdent, "TOKEN")) {
				// Collect option words until , or ) and hand to datalink.
				var words []string
				for !p.at(tkSymbol, ",") && !p.at(tkSymbol, ")") {
					t := p.cur()
					if t.kind != tkIdent && t.kind != tkNumber {
						return nil, fmt.Errorf("sqlmini: bad DATALINK option token %q", t.text)
					}
					words = append(words, t.text)
					p.pos++
				}
				opts, err := datalink.ParseColumnOptions(strings.Join(words, " "))
				if err != nil {
					return nil, err
				}
				col.DL = opts
				continue
			}
			break
		}
		cols = append(cols, col)
		if p.accept(tkSymbol, ",") {
			continue
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTableStmt{Name: name.raw, Columns: cols}, nil
}

func (p *parser) createIndex() (Stmt, error) {
	// CREATE INDEX [name] ON table (col) — the index name is optional noise.
	if !p.at(tkIdent, "ON") {
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkIdent, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: table.raw, Column: col.raw}, nil
}

func (p *parser) insert() (Stmt, error) {
	if _, err := p.expect(tkIdent, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table.raw}
	if p.accept(tkSymbol, "(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c.raw)
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tkIdent, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) update() (Stmt, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkIdent, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table.raw}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col.raw, Value: e})
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tkIdent, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) delete() (Stmt, error) {
	if _, err := p.expect(tkIdent, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table.raw}
	if p.accept(tkIdent, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	st := &SelectStmt{Limit: -1}
	if p.accept(tkSymbol, "*") {
		st.Star = true
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tkIdent, "AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a.raw
			}
			st.Items = append(st.Items, item)
			if p.accept(tkSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tkIdent, "FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Tables = append(st.Tables, t.raw)
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tkIdent, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tkIdent, "ORDER") {
		if _, err := p.expect(tkIdent, "BY"); err != nil {
			return nil, err
		}
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.OrderBy = c.raw
		if p.accept(tkIdent, "DESC") {
			st.OrderDesc = true
		} else {
			p.accept(tkIdent, "ASC")
		}
	}
	if p.accept(tkIdent, "LIMIT") {
		n, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sqlmini: bad LIMIT %q", n.text)
		}
		st.Limit = v
	}
	if p.accept(tkIdent, "FOR") {
		if _, err := p.expect(tkIdent, "UPDATE"); err != nil {
			return nil, err
		}
		st.ForUpdate = true
	}
	return st, nil
}

// ---- Expression parsing (precedence climbing) ----

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkIdent, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkIdent, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tkIdent, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tkIdent, "IS") {
		not := p.accept(tkIdent, "NOT")
		if _, err := p.expect(tkIdent, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Not: not}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tkSymbol, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tkSymbol, "+"):
			op = "+"
		case p.accept(tkSymbol, "-"):
			op = "-"
		case p.accept(tkSymbol, "||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tkSymbol, "*"):
			op = "*"
		case p.accept(tkSymbol, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: bad number %q", t.text)
			}
			return &Lit{V: Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad number %q", t.text)
		}
		return &Lit{V: Int(i)}, nil
	case t.kind == tkString:
		p.pos++
		return &Lit{V: Str(t.text)}, nil
	case p.accept(tkSymbol, "?"):
		e := &Param{Idx: p.params}
		p.params++
		return e, nil
	case p.accept(tkSymbol, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkIdent:
		switch t.text {
		case "NULL":
			p.pos++
			return &Lit{V: Null()}, nil
		case "TRUE":
			p.pos++
			return &Lit{V: Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Lit{V: Bool(false)}, nil
		}
		p.pos++
		// function call?
		if p.accept(tkSymbol, "(") {
			call := &Call{Name: t.text}
			if p.accept(tkSymbol, "*") {
				call.Star = true
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.accept(tkSymbol, ")") {
				return call, nil
			}
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.accept(tkSymbol, ",") {
					continue
				}
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				break
			}
			return call, nil
		}
		// qualified column?
		if p.accept(tkSymbol, ".") {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.raw, Name: c.raw}, nil
		}
		return &ColRef{Name: t.raw}, nil
	default:
		return nil, fmt.Errorf("sqlmini: unexpected token %q in expression", t.text)
	}
}

func normalizeFnName(name string) string { return strings.ToUpper(strings.TrimSpace(name)) }
