package sqlmini

import (
	"strings"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, sql string) Stmt {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return st
}

func TestParseCreateTableTypes(t *testing.T) {
	st := parse(t, `CREATE TABLE t (
		a INT PRIMARY KEY,
		b BIGINT,
		c VARCHAR(40) NOT NULL,
		d TEXT,
		e DOUBLE,
		f BOOLEAN,
		g TIMESTAMP,
		h DATALINK MODE RDD RECOVERY YES TOKEN 120
	)`).(*CreateTableStmt)
	if len(st.Columns) != 8 {
		t.Fatalf("columns = %d", len(st.Columns))
	}
	kinds := []Kind{KindInt, KindInt, KindString, KindString, KindFloat, KindBool, KindTime, KindLink}
	for i, k := range kinds {
		if st.Columns[i].Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, st.Columns[i].Kind, k)
		}
	}
	if !st.Columns[0].PrimaryKey || !st.Columns[0].NotNull {
		t.Error("PK flags")
	}
	if !st.Columns[2].NotNull {
		t.Error("NOT NULL flag")
	}
	dl := st.Columns[7].DL
	if dl.Mode.String() != "rdd" || !dl.Recovery || dl.TokenTTLSecs != 120 {
		t.Errorf("datalink opts = %+v", dl)
	}
}

func TestParseSelectShapes(t *testing.T) {
	st := parse(t, `SELECT a, b AS bee, COUNT(*) FROM t WHERE a > 1 AND b IS NOT NULL ORDER BY a DESC LIMIT 10`).(*SelectStmt)
	if len(st.Items) != 3 || st.Items[1].Alias != "bee" {
		t.Fatalf("items = %+v", st.Items)
	}
	if st.OrderBy != "a" || !st.OrderDesc || st.Limit != 10 {
		t.Fatalf("modifiers = %+v", st)
	}
	star := parse(t, `SELECT * FROM a, b`).(*SelectStmt)
	if !star.Star || len(star.Tables) != 2 {
		t.Fatalf("star = %+v", star)
	}
	fu := parse(t, `SELECT a FROM t FOR UPDATE`).(*SelectStmt)
	if !fu.ForUpdate {
		t.Fatal("FOR UPDATE not parsed")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := parse(t, `SELECT a FROM t WHERE a + 1 * 2 = 3`).(*SelectStmt)
	cmp := st.Where.(*Binary)
	if cmp.Op != "=" {
		t.Fatalf("top op = %s", cmp.Op)
	}
	add := cmp.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("left op = %s", add.Op)
	}
	mul := add.R.(*Binary)
	if mul.Op != "*" {
		t.Fatalf("mul = %s", mul.Op)
	}
}

func TestParseQualifiedColumnsAndFunctions(t *testing.T) {
	st := parse(t, `SELECT t.a, UPPER(u.b) FROM t, u WHERE t.id = u.id`).(*SelectStmt)
	col := st.Items[0].Expr.(*ColRef)
	if col.Table != "t" || col.Name != "a" {
		t.Fatalf("qualified col = %+v", col)
	}
	call := st.Items[1].Expr.(*Call)
	if call.Name != "UPPER" || len(call.Args) != 1 {
		t.Fatalf("call = %+v", call)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st := parse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (?, ?)`).(*InsertStmt)
	if len(st.Rows) != 3 || len(st.Columns) != 2 {
		t.Fatalf("insert = %+v", st)
	}
	if p, ok := st.Rows[2][0].(*Param); !ok || p.Idx != 0 {
		t.Fatalf("param = %+v", st.Rows[2][0])
	}
	if p, ok := st.Rows[2][1].(*Param); !ok || p.Idx != 1 {
		t.Fatalf("param idx = %+v", st.Rows[2][1])
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := parse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	del := parse(t, `DELETE FROM t`).(*DeleteStmt)
	if del.Where != nil {
		t.Fatal("bare delete should have nil where")
	}
}

func TestParseComments(t *testing.T) {
	st := parse(t, "SELECT a -- trailing comment\nFROM t -- another\n").(*SelectStmt)
	if len(st.Items) != 1 {
		t.Fatalf("items = %+v", st.Items)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	parse(t, `select a from t where a = 1 order by a limit 1`)
	parse(t, `Insert Into t Values (1)`)
	parse(t, `create table x (y int primary key)`)
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	st := parse(t, `SELECT a FROM t WHERE a = -5 OR a = 2.5`).(*SelectStmt)
	or := st.Where.(*Binary)
	neg := or.L.(*Binary).R.(*Unary)
	if neg.Op != "-" {
		t.Fatalf("negation = %+v", neg)
	}
	flt := or.R.(*Binary).R.(*Lit)
	if flt.V.K != KindFloat || flt.V.F != 2.5 {
		t.Fatalf("float = %+v", flt.V)
	}
}

func TestParseTrailingSemicolonAndErrors(t *testing.T) {
	parse(t, `SELECT a FROM t;`)
	for _, bad := range []string{
		`SELECT a FROM t extra`,
		`SELECT (a FROM t`,
		`INSERT INTO t VALUES (1`,
		`CREATE TABLE t (a INT,)`,
		`UPDATE t SET = 3`,
		`DELETE t WHERE x`,
		`CREATE INDEX ON t`,
		`SELECT a FROM t ORDER a`,
		"SELECT a FROM t WHERE a = @",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// Property: the lexer never panics and either tokenizes or errors cleanly on
// arbitrary input.
func TestLexerTotalProperty(t *testing.T) {
	prop := func(s string) bool {
		// Parse must return, never panic.
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: string literals with embedded quotes round-trip through
// INSERT + SELECT.
func TestStringLiteralRoundTripProperty(t *testing.T) {
	db := NewDB(Options{})
	db.MustExec(`CREATE TABLE s (v VARCHAR)`)
	prop := func(raw string) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		// Escape single quotes the SQL way.
		lit := strings.ReplaceAll(raw, "'", "''")
		if _, err := db.Exec(`DELETE FROM s`); err != nil {
			return false
		}
		if _, err := db.Exec(`INSERT INTO s VALUES ('` + lit + `')`); err != nil {
			return false
		}
		rows, err := db.Query(`SELECT v FROM s`)
		if err != nil || len(rows.Data) != 1 {
			return false
		}
		return rows.Data[0][0].S == raw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
