package sqlmini

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	return NewDB(Options{LockTimeout: 500 * time.Millisecond})
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) int {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(40), dept VARCHAR(10))`)
	n := mustExec(t, db, `INSERT INTO emp (id, name, dept) VALUES (1, 'alice', 'eng'), (2, 'bob', 'sales')`)
	if n != 2 {
		t.Fatalf("insert affected %d", n)
	}
	rows := mustQuery(t, db, `SELECT name FROM emp WHERE dept = 'eng'`)
	if len(rows.Data) != 1 || rows.Data[0][0].S != "alice" {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestInsertAllColumnsPositional(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'x')`)
	rows := mustQuery(t, db, `SELECT * FROM t`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 || rows.Data[0][1].S != "x" {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestPrimaryKeyDuplicateRejected(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// Failed statement must not leave a row behind.
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 1 {
		t.Fatalf("count = %d after failed insert", rows.Data[0][0].I)
	}
}

func TestUpdateWhere(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	n := mustExec(t, db, `UPDATE t SET v = v + 1 WHERE v >= 20`)
	if n != 2 {
		t.Fatalf("update affected %d", n)
	}
	rows := mustQuery(t, db, `SELECT v FROM t ORDER BY v`)
	got := []int64{rows.Data[0][0].I, rows.Data[1][0].I, rows.Data[2][0].I}
	if got[0] != 10 || got[1] != 21 || got[2] != 31 {
		t.Fatalf("values = %v", got)
	}
}

func TestDeleteWhere(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3), (4)`)
	n := mustExec(t, db, `DELETE FROM t WHERE id > 2`)
	if n != 2 {
		t.Fatalf("delete affected %d", n)
	}
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 2 {
		t.Fatalf("count = %d", rows.Data[0][0].I)
	}
}

func TestSelectOrderLimitDesc(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT, v VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')`)
	rows := mustQuery(t, db, `SELECT id, v FROM t ORDER BY id DESC LIMIT 2`)
	if len(rows.Data) != 2 || rows.Data[0][0].I != 3 || rows.Data[1][0].I != 2 {
		t.Fatalf("rows = %+v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT, s VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (5, 'a'), (1, 'b'), (9, 'c'), (NULL, 'd')`)
	rows := mustQuery(t, db, `SELECT COUNT(*), COUNT(v), MIN(v), MAX(v), SUM(v), AVG(v) FROM t`)
	r := rows.Data[0]
	if r[0].I != 4 || r[1].I != 3 || r[2].I != 1 || r[3].I != 9 || r[4].I != 15 || r[5].F != 5.0 {
		t.Fatalf("aggregates = %+v", r)
	}
}

func TestAggregateOverEmpty(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	rows := mustQuery(t, db, `SELECT COUNT(*), MIN(v), SUM(v) FROM t`)
	r := rows.Data[0]
	if r[0].I != 0 || !r[1].IsNull() || r[2].I != 0 {
		t.Fatalf("empty aggregates = %+v", r)
	}
}

func TestNullThreeValuedLogic(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, NULL)`)
	// NULL comparisons never match.
	rows := mustQuery(t, db, `SELECT id FROM t WHERE v = 10`)
	if len(rows.Data) != 1 {
		t.Fatalf("v=10 matched %d rows", len(rows.Data))
	}
	rows = mustQuery(t, db, `SELECT id FROM t WHERE v <> 10`)
	if len(rows.Data) != 0 {
		t.Fatalf("v<>10 matched %d rows (NULL must not match)", len(rows.Data))
	}
	rows = mustQuery(t, db, `SELECT id FROM t WHERE v IS NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 2 {
		t.Fatalf("IS NULL = %+v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT id FROM t WHERE v IS NOT NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0].I != 1 {
		t.Fatalf("IS NOT NULL = %+v", rows.Data)
	}
}

func TestAndOrPrecedence(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 1), (1, 2), (2, 1), (2, 2)`)
	// a=1 OR a=2 AND b=2  ==  a=1 OR (a=2 AND b=2)  -> 3 rows
	rows := mustQuery(t, db, `SELECT a, b FROM t WHERE a = 1 OR a = 2 AND b = 2`)
	if len(rows.Data) != 3 {
		t.Fatalf("precedence: %d rows, want 3", len(rows.Data))
	}
	rows = mustQuery(t, db, `SELECT a FROM t WHERE (a = 1 OR a = 2) AND b = 2`)
	if len(rows.Data) != 2 {
		t.Fatalf("parens: %d rows, want 2", len(rows.Data))
	}
	rows = mustQuery(t, db, `SELECT a FROM t WHERE NOT (a = 1)`)
	if len(rows.Data) != 2 {
		t.Fatalf("NOT: %d rows, want 2", len(rows.Data))
	}
}

func TestParamsPlaceholders(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, Int(7), Str("seven"))
	rows := mustQuery(t, db, `SELECT name FROM t WHERE id = ?`, Int(7))
	if len(rows.Data) != 1 || rows.Data[0][0].S != "seven" {
		t.Fatalf("rows = %+v", rows.Data)
	}
	if _, err := db.Query(`SELECT name FROM t WHERE id = ?`); err == nil {
		t.Fatal("missing arg should error")
	}
}

func TestStringEscapesAndConcat(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES ('it''s')`)
	rows := mustQuery(t, db, `SELECT s || '!' FROM t`)
	if rows.Data[0][0].S != "it's!" {
		t.Fatalf("concat = %q", rows.Data[0][0].S)
	}
}

func TestArithmetic(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b DOUBLE)`)
	mustExec(t, db, `INSERT INTO t VALUES (7, 2.5)`)
	rows := mustQuery(t, db, `SELECT a + 1, a * 2, a / 2, b * 2, -a FROM t`)
	r := rows.Data[0]
	if r[0].I != 8 || r[1].I != 14 {
		t.Fatalf("int arith = %+v", r)
	}
	if r[2].K != KindFloat || r[2].F != 3.5 {
		t.Fatalf("non-exact division = %+v", r[2])
	}
	if r[3].F != 5.0 || r[4].I != -7 {
		t.Fatalf("arith = %+v", r)
	}
	if _, err := db.Query(`SELECT a / 0 FROM t`); err == nil {
		t.Fatal("division by zero accepted")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES ('Hello')`)
	rows := mustQuery(t, db, `SELECT LENGTH(s), UPPER(s), LOWER(s) FROM t`)
	r := rows.Data[0]
	if r[0].I != 5 || r[1].S != "HELLO" || r[2].S != "hello" {
		t.Fatalf("builtins = %+v", r)
	}
}

func TestDatalinkColumnAndFunctions(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE movies (id INT PRIMARY KEY, clip DATALINK MODE RDD RECOVERY YES)`)
	tbl, err := db.Table("movies")
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	if tbl.Columns[1].DL.Mode.String() != "rdd" || !tbl.Columns[1].DL.Recovery {
		t.Fatalf("column options = %+v", tbl.Columns[1].DL)
	}
	mustExec(t, db, `INSERT INTO movies VALUES (1, DLVALUE('dlfs://srv1/movies/clip1.mpg'))`)
	rows := mustQuery(t, db, `SELECT DLURLPATHONLY(clip), DLURLSERVER(clip), DLURLSCHEME(clip) FROM movies`)
	r := rows.Data[0]
	if r[0].S != "/movies/clip1.mpg" || r[1].S != "srv1" || r[2].S != "dlfs" {
		t.Fatalf("dl functions = %+v", r)
	}
	// String is auto-coerced to DATALINK on insert.
	mustExec(t, db, `INSERT INTO movies VALUES (2, 'dlfs://srv1/movies/clip2.mpg')`)
	rows = mustQuery(t, db, `SELECT clip FROM movies WHERE id = 2`)
	if l, ok := rows.Data[0][0].AsLink(); !ok || l.Path != "/movies/clip2.mpg" {
		t.Fatalf("coerced link = %+v", rows.Data[0][0])
	}
}

func TestNotNullEnforced(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR NOT NULL)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1, NULL)`); err == nil {
		t.Fatal("NULL into NOT NULL accepted")
	}
	if _, err := db.Exec(`UPDATE t SET v = NULL`); err != nil {
		t.Fatalf("update over empty table should be a no-op: %v", err)
	}
}

func TestTypeCoercionErrors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	if _, err := db.Exec(`INSERT INTO t VALUES ('abc')`); err == nil {
		t.Fatal("string into INT accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1.5)`); err == nil {
		t.Fatal("fractional into INT accepted")
	}
	mustExec(t, db, `INSERT INTO t VALUES (2.0)`) // exact conversion fine
}

func TestCrossJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE a (id INT, x VARCHAR)`)
	mustExec(t, db, `CREATE TABLE b (id INT, y VARCHAR)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 'a1'), (2, 'a2')`)
	mustExec(t, db, `INSERT INTO b VALUES (1, 'b1'), (2, 'b2')`)
	rows := mustQuery(t, db, `SELECT a.x, b.y FROM a, b WHERE a.id = b.id ORDER BY x`)
	if len(rows.Data) != 2 || rows.Data[0][0].S != "a1" || rows.Data[0][1].S != "b1" {
		t.Fatalf("join = %+v", rows.Data)
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := db.Query(`SELECT * FROM t`); err == nil {
		t.Fatal("query of dropped table succeeded")
	}
}

func TestSecondaryIndexUsedAndCorrect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, cat VARCHAR)`)
	for i := 0; i < 20; i++ {
		cat := "odd"
		if i%2 == 0 {
			cat = "even"
		}
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Str(cat))
	}
	mustExec(t, db, `CREATE INDEX ON t (cat)`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE cat = 'even'`)
	if rows.Data[0][0].I != 10 {
		t.Fatalf("indexed count = %d", rows.Data[0][0].I)
	}
	// Index stays correct across update/delete.
	mustExec(t, db, `UPDATE t SET cat = 'odd' WHERE id = 0`)
	mustExec(t, db, `DELETE FROM t WHERE id = 2`)
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE cat = 'even'`)
	if rows.Data[0][0].I != 8 {
		t.Fatalf("after churn count = %d", rows.Data[0][0].I)
	}
}

func TestParserErrors(t *testing.T) {
	db := testDB(t)
	for _, bad := range []string{
		`SELEC x FROM t`,
		`SELECT FROM t`,
		`CREATE TABLE`,
		`INSERT INTO`,
		`SELECT * FROM t WHERE`,
		`CREATE TABLE t (x FROBTYPE)`,
		`SELECT * FROM t LIMIT -1`,
		`UPDATE t SET`,
		`SELECT 'unterminated FROM t`,
	} {
		if _, err := db.Query(bad); err == nil {
			if _, err2 := db.Exec(bad); err2 == nil {
				t.Errorf("statement %q accepted", bad)
			}
		}
	}
}

func TestRowsString(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT, name VARCHAR)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'alice')`)
	rows := mustQuery(t, db, `SELECT * FROM t`)
	s := rows.String()
	if !strings.Contains(s, "alice") || !strings.Contains(s, "id") {
		t.Fatalf("rendered table missing data:\n%s", s)
	}
}

func TestQueryRow(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	if _, err := db.QueryRow(`SELECT id FROM t`); err == nil {
		t.Fatal("QueryRow over 2 rows should fail")
	}
	r, err := db.QueryRow(`SELECT id FROM t WHERE id = 2`)
	if err != nil || r[0].I != 2 {
		t.Fatalf("QueryRow = %+v, %v", r, err)
	}
}

func TestCompareAndCoerce(t *testing.T) {
	if c, err := Compare(Int(1), Float(1.0)); err != nil || c != 0 {
		t.Errorf("int/float compare = %d, %v", c, err)
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("string/int compare should fail")
	}
	if _, err := Compare(Null(), Int(1)); !errors.Is(err, errNullCompare) {
		t.Error("null compare should be unknown")
	}
	if c, _ := Compare(Bool(false), Bool(true)); c >= 0 {
		t.Error("false should sort before true")
	}
	if c, _ := Compare(Time(time.Unix(1, 0)), Time(time.Unix(2, 0))); c >= 0 {
		t.Error("time compare wrong")
	}
	if v, err := CoerceTo(Str("dlfs://s/p"), KindLink); err != nil || v.K != KindLink {
		t.Errorf("string->link coerce = %+v, %v", v, err)
	}
	if _, err := CoerceTo(Bool(true), KindInt); err == nil {
		t.Error("bool->int coerce should fail")
	}
}
