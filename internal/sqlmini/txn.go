package sqlmini

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"datalinks/internal/metrics"
	"datalinks/internal/wal"
)

// XRM is an external resource manager enlisted in a host transaction — the
// interface DLFM implements so its sub-transaction commits and aborts with
// the host database transaction (two-phase commit, §2.2).
type XRM interface {
	// XRMName identifies the participant in logs and errors.
	XRMName() string
	// PrepareXRM must make the sub-transaction's outcome durable-pending.
	PrepareXRM(hostTxn uint64) error
	// CommitXRM and AbortXRM finish the sub-transaction.
	CommitXRM(hostTxn uint64) error
	AbortXRM(hostTxn uint64) error
}

// TxnState is the lifecycle state of a transaction.
type TxnState uint8

// Transaction states.
const (
	TxnActive TxnState = iota + 1
	TxnPrepared
	TxnCommitted
	TxnAborted
)

// dmlKind is the kind of a logged data change.
type dmlKind uint8

const (
	opInsert dmlKind = iota + 1
	opDelete
	opUpdate
	opCreateTable
	opDropTable
	opCreateIndex
	opDropIndex
)

// logPayload is the gob-encoded body of RecUpdate/RecCLR records.
type logPayload struct {
	Op     dmlKind
	Table  string
	Row    RowID
	Before Row
	After  Row
	Cols   []Column // DDL only
	Col    string   // index DDL only: the indexed column
}

func encodePayload(p logPayload) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		panic(fmt.Sprintf("sqlmini: payload encode: %v", err)) // all types are gob-safe
	}
	return buf.Bytes()
}

func decodePayload(b []byte) (logPayload, error) {
	var p logPayload
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p)
	return p, err
}

// DMLOp tells a DML hook what happened to a row.
type DMLOp uint8

// DML operations visible to hooks.
const (
	DMLInsert DMLOp = iota + 1
	DMLDelete
	DMLUpdate
)

// DMLHook observes row changes inside the executing transaction, before they
// are applied. The DataLinks engine registers one to turn DATALINK column
// changes into DLFM link/unlink sub-transaction work. Returning an error
// vetoes the statement.
type DMLHook func(txn *Txn, table *Table, op DMLOp, old, new Row) error

// ScalarFn is a SQL scalar function implementation. The transaction is
// passed so functions like DLURLCOMPLETE can issue tokens in context.
type ScalarFn func(txn *Txn, args []Value) (Value, error)

// DB is a sqlmini database instance.
type DB struct {
	cat   *catalog
	log   *wal.Log
	lm    *LockManager
	clock func() time.Time

	mu      sync.Mutex
	nextTxn uint64
	active  map[uint64]*Txn
	outcome map[uint64]bool // finished txns: true=committed

	// Checkpointing: dir holds repo.snap (empty = embedded checkpoints),
	// ckptBytes is the automatic trigger, ckptMu serializes checkpoints.
	dir       string
	ckptBytes int64
	ckptMu    sync.Mutex

	hookMu  sync.RWMutex
	dmlHook DMLHook
	fns     map[string]ScalarFn
}

// Options configures a DB.
type Options struct {
	Clock       func() time.Time
	LockTimeout time.Duration
	Log         *wal.Log // reuse an existing log (recovery); nil = fresh
	// Metrics, when set, receives the lock manager's contention counters
	// (sqlmini.lock.waits / wait_ns / shard_collisions).
	Metrics *metrics.Registry
	// Dir is the repository directory holding the disk WAL segments and the
	// repo.snap checkpoint snapshot. Empty keeps checkpoints embedded in the
	// (in-memory) log.
	Dir string
	// CheckpointBytes triggers an automatic quiescent checkpoint once this
	// many log bytes accumulate past the previous one. Zero disables
	// automatic checkpoints.
	CheckpointBytes int64
}

// NewDB creates an empty database.
func NewDB(opts Options) *DB {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	lg := opts.Log
	if lg == nil {
		lg = wal.New()
	}
	db := &DB{
		cat:       newCatalog(),
		log:       lg,
		lm:        NewLockManager(opts.LockTimeout),
		clock:     opts.Clock,
		active:    make(map[uint64]*Txn),
		outcome:   make(map[uint64]bool),
		fns:       make(map[string]ScalarFn),
		dir:       opts.Dir,
		ckptBytes: opts.CheckpointBytes,
	}
	if opts.Metrics != nil {
		db.lm.AttachMetrics(
			opts.Metrics.Counter("sqlmini.lock.waits"),
			opts.Metrics.Counter("sqlmini.lock.wait_ns"),
			opts.Metrics.Counter("sqlmini.lock.shard_collisions"),
		)
	}
	registerBuiltins(db)
	return db
}

// SetDMLHook installs the row-change observer (the DataLinks engine).
func (db *DB) SetDMLHook(h DMLHook) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.dmlHook = h
}

// RegisterFn installs a scalar SQL function under the given (upper-cased) name.
func (db *DB) RegisterFn(name string, fn ScalarFn) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.fns[normalizeFnName(name)] = fn
}

func (db *DB) scalarFn(name string) (ScalarFn, bool) {
	db.hookMu.RLock()
	defer db.hookMu.RUnlock()
	fn, ok := db.fns[normalizeFnName(name)]
	return fn, ok
}

// Log exposes the WAL (used by crash tests and the engine's state ids).
func (db *DB) Log() *wal.Log { return db.log }

// LockManager exposes the lock manager for wait statistics.
func (db *DB) LockManager() *LockManager { return db.lm }

// Clock returns the database clock.
func (db *DB) Clock() func() time.Time { return db.clock }

// StateID returns the current database state identifier — the durable tail
// LSN. Archived file versions are tagged with it (§4.4).
func (db *DB) StateID() wal.LSN { return db.log.DurableLSN() }

// TableNames lists the catalog (admin/shell use).
func (db *DB) TableNames() []string { return db.cat.names() }

// Table returns a handle on a table.
func (db *DB) Table(name string) (*Table, error) { return db.cat.get(name) }

// Outcome reports whether a finished transaction committed. The second
// return is false while the transaction is still active or unknown — DLFM
// recovery polls this to resolve in-doubt sub-transactions.
func (db *DB) Outcome(txnID uint64) (committed, known bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.outcome[txnID]
	return c, ok
}

// Txn is a database transaction.
type Txn struct {
	db      *DB
	id      uint64
	state   TxnState
	lastLSN wal.LSN
	xrms    []XRM
	// onCommit/onAbort run after the outcome is durable; the engine uses them
	// for post-commit work like releasing in-memory link state.
	onCommit []func()
	onAbort  []func()
}

// Begin starts a new transaction.
func (db *DB) Begin() *Txn {
	db.mu.Lock()
	db.nextTxn++
	id := db.nextTxn
	txn := &Txn{db: db, id: id, state: TxnActive}
	db.active[id] = txn
	db.mu.Unlock()
	if _, err := db.log.Append(wal.Record{Type: wal.RecBegin, TxnID: id}); err != nil {
		panic(fmt.Sprintf("sqlmini: begin append: %v", err))
	}
	return txn
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// DB returns the owning database.
func (t *Txn) DB() *DB { return t.db }

// State returns the current transaction state.
func (t *Txn) State() TxnState { return t.state }

// Enlist registers an external resource manager in this transaction. A
// participant is enlisted once; duplicates are ignored.
func (t *Txn) Enlist(x XRM) {
	for _, have := range t.xrms {
		if have == x {
			return
		}
	}
	t.xrms = append(t.xrms, x)
}

// OnCommit registers fn to run after a successful commit.
func (t *Txn) OnCommit(fn func()) { t.onCommit = append(t.onCommit, fn) }

// OnAbort registers fn to run after rollback completes.
func (t *Txn) OnAbort(fn func()) { t.onAbort = append(t.onAbort, fn) }

// errTxnDone guards against use-after-finish.
var errTxnDone = errors.New("sqlmini: transaction already finished")

// logChange appends an update record with backchain and returns its LSN.
func (t *Txn) logChange(p logPayload) wal.LSN {
	lsn, err := t.db.log.Append(wal.Record{
		Type:    wal.RecUpdate,
		TxnID:   t.id,
		PrevLSN: t.lastLSN,
		Payload: encodePayload(p),
	})
	if err != nil {
		panic(fmt.Sprintf("sqlmini: log append: %v", err))
	}
	t.lastLSN = lsn
	return lsn
}

// lockRow acquires a row lock for this transaction.
func (t *Txn) lockRow(table string, id RowID, mode LockMode) error {
	return t.db.lm.Acquire(t.id, LockTarget{Table: table, Row: id}, mode)
}

// lockTable acquires a table lock (DDL and inserts use X; scans use S on rows).
func (t *Txn) lockTable(table string, mode LockMode) error {
	return t.db.lm.Acquire(t.id, LockTarget{Table: table, Whole: true}, mode)
}

// callHook invokes the DML hook if installed.
func (t *Txn) callHook(table *Table, op DMLOp, old, new Row) error {
	t.db.hookMu.RLock()
	h := t.db.dmlHook
	t.db.hookMu.RUnlock()
	if h == nil {
		return nil
	}
	return h(t, table, op, old, new)
}

// InsertRow inserts a row (typed, coerced) into the named table with full
// locking, logging and hook processing. Exposed for engine-internal use;
// SQL INSERT goes through the executor which calls this.
func (t *Txn) InsertRow(tbl *Table, r Row) (RowID, error) {
	if t.state != TxnActive {
		return 0, errTxnDone
	}
	if err := t.callHook(tbl, DMLInsert, nil, r); err != nil {
		return 0, err
	}
	id, err := tbl.Insert(r.Clone())
	if err != nil {
		return 0, err
	}
	if err := t.lockRow(tbl.Name, id, LockX); err != nil {
		// Lock failure after insert should be impossible (fresh row id), but
		// keep the table consistent if it ever happens.
		tbl.Delete(id)
		return 0, err
	}
	t.logChange(logPayload{Op: opInsert, Table: tbl.Name, Row: id, After: r.Clone()})
	return id, nil
}

// DeleteRow deletes a locked row with logging and hook processing.
func (t *Txn) DeleteRow(tbl *Table, id RowID) error {
	if t.state != TxnActive {
		return errTxnDone
	}
	if err := t.lockRow(tbl.Name, id, LockX); err != nil {
		return err
	}
	old, ok := tbl.Get(id)
	if !ok {
		return fmt.Errorf("sqlmini: row %d vanished from %s", id, tbl.Name)
	}
	if err := t.callHook(tbl, DMLDelete, old, nil); err != nil {
		return err
	}
	tbl.Delete(id)
	t.logChange(logPayload{Op: opDelete, Table: tbl.Name, Row: id, Before: old})
	return nil
}

// UpdateRow replaces a locked row with logging and hook processing.
func (t *Txn) UpdateRow(tbl *Table, id RowID, new Row) error {
	if t.state != TxnActive {
		return errTxnDone
	}
	if err := t.lockRow(tbl.Name, id, LockX); err != nil {
		return err
	}
	old, ok := tbl.Get(id)
	if !ok {
		return fmt.Errorf("sqlmini: row %d vanished from %s", id, tbl.Name)
	}
	if err := t.callHook(tbl, DMLUpdate, old, new); err != nil {
		return err
	}
	if _, err := tbl.Update(id, new.Clone()); err != nil {
		return err
	}
	t.logChange(logPayload{Op: opUpdate, Table: tbl.Name, Row: id, Before: old, After: new.Clone()})
	return nil
}

// readLockRow takes a shared lock for reads within the transaction.
func (t *Txn) readLockRow(table string, id RowID) error {
	return t.lockRow(table, id, LockS)
}

// createTable performs logged DDL.
func (t *Txn) createTable(name string, cols []Column) error {
	if t.state != TxnActive {
		return errTxnDone
	}
	if err := t.lockTable(name, LockX); err != nil {
		return err
	}
	if _, err := t.db.cat.create(name, cols); err != nil {
		return err
	}
	t.logChange(logPayload{Op: opCreateTable, Table: name, Cols: cols})
	return nil
}

// createIndex performs logged DDL: the index is WAL-logged so it is rebuilt
// by restart recovery — repository hot paths stay index-backed after a
// crash instead of silently degrading to full scans.
func (t *Txn) createIndex(tbl *Table, col string) error {
	if t.state != TxnActive {
		return errTxnDone
	}
	if err := t.lockTable(tbl.Name, LockX); err != nil {
		return err
	}
	ci := tbl.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("sqlmini: no column %q in %s", col, tbl.Name)
	}
	if tbl.HasIndex(ci) {
		// Duplicate CREATE INDEX is a no-op and must not be logged: undoing
		// it would drop the committed index.
		return nil
	}
	tbl.AddIndex(ci)
	t.logChange(logPayload{Op: opCreateIndex, Table: tbl.Name, Col: col})
	return nil
}

// dropTable performs logged DDL. The dropped rows are not individually
// logged; undo of a drop restores schema only (documented limitation, as in
// many real systems DDL is not fully transactional).
func (t *Txn) dropTable(name string) error {
	if t.state != TxnActive {
		return errTxnDone
	}
	if err := t.lockTable(name, LockX); err != nil {
		return err
	}
	tbl, err := t.db.cat.get(name)
	if err != nil {
		return err
	}
	if err := t.db.cat.drop(name); err != nil {
		return err
	}
	t.logChange(logPayload{Op: opDropTable, Table: name, Cols: tbl.Columns})
	return nil
}

// Prepare moves the transaction to the prepared (in-doubt) state of 2PC.
// Used when this database is itself a participant (the DLFM repository).
func (t *Txn) Prepare() error {
	if t.state != TxnActive {
		return errTxnDone
	}
	lsn, err := t.db.log.Append(wal.Record{Type: wal.RecPrepare, TxnID: t.id, PrevLSN: t.lastLSN})
	if err != nil {
		return err
	}
	t.lastLSN = lsn
	if err := t.db.log.FlushTo(lsn); err != nil {
		return err
	}
	t.state = TxnPrepared
	return nil
}

// Commit runs two-phase commit across enlisted XRMs and makes the
// transaction durable. The commit record's LSN becomes the new database
// state identifier.
func (t *Txn) Commit() error {
	if t.state != TxnActive && t.state != TxnPrepared {
		return errTxnDone
	}
	// Phase 1: prepare all participants. Any failure aborts everything.
	for _, x := range t.xrms {
		if err := x.PrepareXRM(t.id); err != nil {
			abortErr := t.Abort()
			if abortErr != nil {
				return fmt.Errorf("prepare %s failed: %w (abort also failed: %v)", x.XRMName(), err, abortErr)
			}
			return fmt.Errorf("sqlmini: prepare %s failed, transaction aborted: %w", x.XRMName(), err)
		}
	}
	// Commit point: durable commit record.
	lsn, err := t.db.log.Append(wal.Record{Type: wal.RecCommit, TxnID: t.id, PrevLSN: t.lastLSN})
	if err != nil {
		return err
	}
	if err := t.db.log.FlushTo(lsn); err != nil {
		return err
	}
	t.lastLSN = lsn
	t.state = TxnCommitted
	// Phase 2: tell participants. Participant failure after the commit point
	// does not change the outcome; participants re-resolve at recovery.
	for _, x := range t.xrms {
		if err := x.CommitXRM(t.id); err != nil {
			// Log-and-continue semantics: outcome is already decided.
			_ = err
		}
	}
	t.finish(true)
	for _, fn := range t.onCommit {
		fn()
	}
	return nil
}

// Abort rolls back the transaction: every logged change is undone in reverse
// order with CLRs, participants abort, locks release.
func (t *Txn) Abort() error {
	if t.state != TxnActive && t.state != TxnPrepared {
		return errTxnDone
	}
	if _, err := t.db.log.Append(wal.Record{Type: wal.RecAbort, TxnID: t.id, PrevLSN: t.lastLSN}); err != nil {
		return err
	}
	// Walk the backchain undoing updates.
	cur := t.lastLSN
	for cur != wal.NilLSN {
		rec, err := t.db.log.Read(cur)
		if err != nil {
			return fmt.Errorf("sqlmini: abort backchain: %w", err)
		}
		if rec.Type == wal.RecUpdate {
			if err := t.db.undoOne(rec, t.id); err != nil {
				return err
			}
		}
		cur = rec.PrevLSN
	}
	if _, err := t.db.log.Append(wal.Record{Type: wal.RecEnd, TxnID: t.id}); err != nil {
		return err
	}
	t.state = TxnAborted
	for _, x := range t.xrms {
		if err := x.AbortXRM(t.id); err != nil {
			_ = err // participant will re-resolve at its recovery
		}
	}
	t.finish(false)
	for _, fn := range t.onAbort {
		fn()
	}
	return nil
}

// finish releases locks and records the outcome.
func (t *Txn) finish(committed bool) {
	t.db.mu.Lock()
	delete(t.db.active, t.id)
	t.db.outcome[t.id] = committed
	t.db.mu.Unlock()
	t.db.lm.ReleaseAll(t.id)
	t.db.maybeCheckpoint()
}

// undoOne reverses a single logged change, writing a CLR.
func (db *DB) undoOne(rec wal.Record, txnID uint64) error {
	p, err := decodePayload(rec.Payload)
	if err != nil {
		return err
	}
	var clr logPayload
	switch p.Op {
	case opInsert:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.Delete(p.Row)
		clr = logPayload{Op: opDelete, Table: p.Table, Row: p.Row, Before: p.After}
	case opDelete:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		if err := tbl.InsertAt(p.Row, p.Before); err != nil {
			return err
		}
		clr = logPayload{Op: opInsert, Table: p.Table, Row: p.Row, After: p.Before}
	case opUpdate:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		if _, err := tbl.Update(p.Row, p.Before); err != nil {
			return err
		}
		clr = logPayload{Op: opUpdate, Table: p.Table, Row: p.Row, Before: p.After, After: p.Before}
	case opCreateTable:
		if err := db.cat.drop(p.Table); err != nil {
			return err
		}
		clr = logPayload{Op: opDropTable, Table: p.Table, Cols: p.Cols}
	case opDropTable:
		if _, err := db.cat.create(p.Table, p.Cols); err != nil {
			return err
		}
		clr = logPayload{Op: opCreateTable, Table: p.Table, Cols: p.Cols}
	case opCreateIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.DropIndex(tbl.ColIndex(p.Col))
		clr = logPayload{Op: opDropIndex, Table: p.Table, Col: p.Col}
	case opDropIndex:
		tbl, err := db.cat.get(p.Table)
		if err != nil {
			return err
		}
		tbl.AddIndex(tbl.ColIndex(p.Col))
		clr = logPayload{Op: opCreateIndex, Table: p.Table, Col: p.Col}
	default:
		return fmt.Errorf("sqlmini: cannot undo op %d", p.Op)
	}
	_, err = db.log.Append(wal.Record{
		Type:    wal.RecCLR,
		TxnID:   txnID,
		UndoLSN: rec.PrevLSN,
		Payload: encodePayload(clr),
	})
	return err
}

// ActiveTxns returns the ids of currently active transactions.
func (db *DB) ActiveTxns() []uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]uint64, 0, len(db.active))
	for id := range db.active {
		out = append(out, id)
	}
	return out
}
