package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Rows is the result of a query.
type Rows struct {
	Cols []string
	Data []Row
}

// String renders the rows as an aligned text table (shell output).
func (r *Rows) String() string {
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Data))
	for ri, row := range r.Data {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Cols {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Cols {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for ci, s := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[ci], s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Exec parses and executes a statement in an implicit transaction.
func (db *DB) Exec(sql string, args ...Value) (int, error) {
	txn := db.Begin()
	n, err := txn.Exec(sql, args...)
	if err != nil {
		_ = txn.Abort()
		return 0, err
	}
	if err := txn.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// Query parses and executes a SELECT in an implicit transaction.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	txn := db.Begin()
	rows, err := txn.Query(sql, args...)
	if err != nil {
		_ = txn.Abort()
		return nil, err
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	return rows, nil
}

// MustExec is Exec that panics on error (tests, examples).
func (db *DB) MustExec(sql string, args ...Value) int {
	n, err := db.Exec(sql, args...)
	if err != nil {
		panic(err)
	}
	return n
}

// Exec runs a DML/DDL statement inside this transaction, returning the
// number of affected rows.
func (t *Txn) Exec(sql string, args ...Value) (int, error) {
	st, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	switch s := st.(type) {
	case *CreateTableStmt:
		return 0, t.execCreateTable(s)
	case *DropTableStmt:
		return 0, t.dropTable(s.Name)
	case *CreateIndexStmt:
		return 0, t.execCreateIndex(s)
	case *InsertStmt:
		return t.execInsert(s, args)
	case *UpdateStmt:
		return t.execUpdate(s, args)
	case *DeleteStmt:
		return t.execDelete(s, args)
	case *SelectStmt:
		return 0, errors.New("sqlmini: use Query for SELECT")
	default:
		return 0, fmt.Errorf("sqlmini: unhandled statement %T", st)
	}
}

// Query runs a SELECT inside this transaction.
func (t *Txn) Query(sql string, args ...Value) (*Rows, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, errors.New("sqlmini: Query requires a SELECT statement")
	}
	return t.execSelect(sel, args)
}

// QueryRow runs a SELECT and returns its single row, erroring on 0 or >1.
func (t *Txn) QueryRow(sql string, args ...Value) (Row, error) {
	rows, err := t.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(rows.Data) != 1 {
		return nil, fmt.Errorf("sqlmini: expected 1 row, got %d", len(rows.Data))
	}
	return rows.Data[0], nil
}

// QueryRow on DB runs in an implicit transaction.
func (db *DB) QueryRow(sql string, args ...Value) (Row, error) {
	txn := db.Begin()
	r, err := txn.QueryRow(sql, args...)
	if err != nil {
		_ = txn.Abort()
		return nil, err
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	return r, nil
}

func (t *Txn) execCreateTable(s *CreateTableStmt) error {
	seen := make(map[string]bool)
	pk := 0
	for _, c := range s.Columns {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return fmt.Errorf("sqlmini: duplicate column %q", c.Name)
		}
		seen[key] = true
		if c.PrimaryKey {
			pk++
		}
		if c.Kind == KindLink && !c.DL.Mode.Valid() {
			return fmt.Errorf("sqlmini: invalid DATALINK mode on column %q", c.Name)
		}
	}
	if pk > 1 {
		return fmt.Errorf("sqlmini: at most one PRIMARY KEY column supported")
	}
	return t.createTable(s.Name, s.Columns)
}

func (t *Txn) execCreateIndex(s *CreateIndexStmt) error {
	tbl, err := t.db.cat.get(s.Table)
	if err != nil {
		return err
	}
	return t.createIndex(tbl, s.Column)
}

// buildRow assembles a full-width row from an INSERT's column list.
func buildRow(tbl *Table, cols []string, vals []Value) (Row, error) {
	row := make(Row, len(tbl.Columns))
	if len(cols) == 0 {
		if len(vals) != len(tbl.Columns) {
			return nil, fmt.Errorf("sqlmini: %s has %d columns, %d values given", tbl.Name, len(tbl.Columns), len(vals))
		}
		copy(row, vals)
	} else {
		if len(cols) != len(vals) {
			return nil, fmt.Errorf("sqlmini: %d columns but %d values", len(cols), len(vals))
		}
		for i, c := range cols {
			ci := tbl.ColIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("sqlmini: no column %q in %s", c, tbl.Name)
			}
			row[ci] = vals[i]
		}
	}
	for i, c := range tbl.Columns {
		v, err := CoerceTo(row[i], c.Kind)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: column %s: %w", c.Name, err)
		}
		row[i] = v
		if c.NotNull && row[i].IsNull() {
			return nil, fmt.Errorf("sqlmini: column %s is NOT NULL", c.Name)
		}
	}
	return row, nil
}

func (t *Txn) execInsert(s *InsertStmt, args []Value) (int, error) {
	tbl, err := t.db.cat.get(s.Table)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, exprRow := range s.Rows {
		vals := make([]Value, len(exprRow))
		for i, e := range exprRow {
			v, err := t.eval(e, nil, args)
			if err != nil {
				return n, err
			}
			vals[i] = v
		}
		row, err := buildRow(tbl, s.Columns, vals)
		if err != nil {
			return n, err
		}
		if _, err := t.InsertRow(tbl, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// matchRows scans tbl, locking each candidate row in `mode`, and returns the
// ids and rows satisfying the predicate. Uses the PK or a secondary index for
// simple equality predicates when available.
func (t *Txn) matchRows(tbl *Table, where Expr, args []Value, mode LockMode) ([]RowID, []Row, error) {
	var ids []RowID
	var rows []Row

	tryRow := func(id RowID) error {
		if err := t.db.lm.Acquire(t.id, LockTarget{Table: tbl.Name, Row: id}, mode); err != nil {
			return err
		}
		row, ok := tbl.Get(id)
		if !ok {
			return nil // deleted while we waited
		}
		match := true
		if where != nil {
			v, err := t.eval(where, rowEnv(tbl, row), args)
			if err != nil {
				if errors.Is(err, errNullCompare) {
					return nil // UNKNOWN predicate = no match
				}
				return err
			}
			match = v.K == KindBool && v.B
		}
		if match {
			ids = append(ids, id)
			rows = append(rows, row)
		}
		return nil
	}

	// Index fast path: WHERE col = literal/param.
	if col, val, ok := simpleEquality(where, args); ok {
		if ci := tbl.ColIndex(col); ci >= 0 {
			if cv, err := CoerceTo(val, tbl.Columns[ci].Kind); err == nil {
				val = cv
			}
			if tbl.pkCol == tbl.ColIndex(col) && tbl.pkCol >= 0 {
				if id, found := tbl.LookupPK(val); found {
					if err := tryRow(id); err != nil {
						return nil, nil, err
					}
				}
				return ids, rows, nil
			}
			if hits, hasIdx := tbl.LookupIndex(ci, val); hasIdx {
				for _, id := range hits {
					if err := tryRow(id); err != nil {
						return nil, nil, err
					}
				}
				return ids, rows, nil
			}
		}
	}

	var scanErr error
	tbl.Scan(func(id RowID, _ Row) bool {
		if err := tryRow(id); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return ids, rows, nil
}

// simpleEquality recognizes `col = literal` or `col = ?` predicates.
func simpleEquality(where Expr, args []Value) (col string, val Value, ok bool) {
	b, isBin := where.(*Binary)
	if !isBin || b.Op != "=" {
		return "", Value{}, false
	}
	c, isCol := b.L.(*ColRef)
	if !isCol {
		return "", Value{}, false
	}
	switch r := b.R.(type) {
	case *Lit:
		return c.Name, r.V, true
	case *Param:
		if r.Idx < len(args) {
			return c.Name, args[r.Idx], true
		}
	}
	return "", Value{}, false
}

func (t *Txn) execUpdate(s *UpdateStmt, args []Value) (int, error) {
	tbl, err := t.db.cat.get(s.Table)
	if err != nil {
		return 0, err
	}
	ids, rows, err := t.matchRows(tbl, s.Where, args, LockX)
	if err != nil {
		return 0, err
	}
	n := 0
	for i, id := range ids {
		newRow := rows[i].Clone()
		for _, set := range s.Set {
			ci := tbl.ColIndex(set.Column)
			if ci < 0 {
				return n, fmt.Errorf("sqlmini: no column %q in %s", set.Column, s.Table)
			}
			v, err := t.eval(set.Value, rowEnv(tbl, rows[i]), args)
			if err != nil {
				return n, err
			}
			cv, err := CoerceTo(v, tbl.Columns[ci].Kind)
			if err != nil {
				return n, fmt.Errorf("sqlmini: column %s: %w", set.Column, err)
			}
			if tbl.Columns[ci].NotNull && cv.IsNull() {
				return n, fmt.Errorf("sqlmini: column %s is NOT NULL", set.Column)
			}
			newRow[ci] = cv
		}
		if err := t.UpdateRow(tbl, id, newRow); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (t *Txn) execDelete(s *DeleteStmt, args []Value) (int, error) {
	tbl, err := t.db.cat.get(s.Table)
	if err != nil {
		return 0, err
	}
	ids, _, err := t.matchRows(tbl, s.Where, args, LockX)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		if err := t.DeleteRow(tbl, id); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// env is the name→value scope for expression evaluation.
type env struct {
	// byName maps unqualified and qualified ("table.col") names to values.
	byName map[string]Value
}

func rowEnv(tbl *Table, row Row) *env {
	e := &env{byName: make(map[string]Value, len(row)*2)}
	for i, c := range tbl.Columns {
		e.byName[strings.ToLower(c.Name)] = row[i]
		e.byName[strings.ToLower(tbl.Name+"."+c.Name)] = row[i]
	}
	return e
}

func mergeEnv(a, b *env) *env {
	e := &env{byName: make(map[string]Value, len(a.byName)+len(b.byName))}
	for k, v := range a.byName {
		e.byName[k] = v
	}
	for k, v := range b.byName {
		e.byName[k] = v
	}
	return e
}

func (t *Txn) execSelect(s *SelectStmt, args []Value) (*Rows, error) {
	if len(s.Tables) == 0 {
		return nil, errors.New("sqlmini: SELECT needs FROM")
	}
	lockMode := LockS
	if s.ForUpdate {
		lockMode = LockX
	}
	// Gather the row sets of each table, then cross-join.
	type tableRows struct {
		tbl  *Table
		rows []Row
	}
	var sets []tableRows
	for i, name := range s.Tables {
		tbl, err := t.db.cat.get(name)
		if err != nil {
			return nil, err
		}
		// Push the WHERE down only for single-table queries; joins filter on
		// the joined row below.
		var where Expr
		if len(s.Tables) == 1 {
			where = s.Where
		}
		_, rows, err := t.matchRows(tbl, where, args, lockMode)
		if err != nil {
			return nil, err
		}
		sets = append(sets, tableRows{tbl: tbl, rows: rows})
		_ = i
	}

	// Build joined environments.
	var envs []*env
	var joinedRows [][]Row
	var build func(i int, acc *env, rowAcc []Row)
	build = func(i int, acc *env, rowAcc []Row) {
		if i == len(sets) {
			envs = append(envs, acc)
			joined := make([]Row, len(rowAcc))
			copy(joined, rowAcc)
			joinedRows = append(joinedRows, joined)
			return
		}
		for _, row := range sets[i].rows {
			e := rowEnv(sets[i].tbl, row)
			if acc != nil {
				e = mergeEnv(acc, e)
			}
			build(i+1, e, append(rowAcc, row))
		}
	}
	build(0, nil, nil)

	// Join-level filtering for multi-table queries.
	if len(s.Tables) > 1 && s.Where != nil {
		var fe []*env
		var fr [][]Row
		for i, e := range envs {
			v, err := t.eval(s.Where, e, args)
			if err != nil {
				if errors.Is(err, errNullCompare) {
					continue
				}
				return nil, err
			}
			if v.K == KindBool && v.B {
				fe = append(fe, e)
				fr = append(fr, joinedRows[i])
			}
		}
		envs, joinedRows = fe, fr
	}

	// Column list for SELECT *.
	var out Rows
	if s.Star {
		for _, set := range sets {
			for _, c := range set.tbl.Columns {
				out.Cols = append(out.Cols, c.Name)
			}
		}
		for _, jr := range joinedRows {
			var row Row
			for _, r := range jr {
				row = append(row, r...)
			}
			out.Data = append(out.Data, row)
		}
	} else if isAggregate(s.Items) {
		row, err := t.evalAggregates(s.Items, envs, args)
		if err != nil {
			return nil, err
		}
		for i, item := range s.Items {
			out.Cols = append(out.Cols, itemName(item, i))
		}
		out.Data = append(out.Data, row)
		return &out, nil
	} else {
		for i, item := range s.Items {
			out.Cols = append(out.Cols, itemName(item, i))
		}
		for _, e := range envs {
			row := make(Row, len(s.Items))
			for i, item := range s.Items {
				v, err := t.eval(item.Expr, e, args)
				if err != nil {
					if errors.Is(err, errNullCompare) {
						v = Null()
					} else {
						return nil, err
					}
				}
				row[i] = v
			}
			out.Data = append(out.Data, row)
		}
	}

	if s.OrderBy != "" {
		oi := -1
		for i, c := range out.Cols {
			if strings.EqualFold(c, s.OrderBy) {
				oi = i
				break
			}
		}
		if oi < 0 {
			return nil, fmt.Errorf("sqlmini: ORDER BY column %q not in select list", s.OrderBy)
		}
		sort.SliceStable(out.Data, func(i, j int) bool {
			c, err := Compare(out.Data[i][oi], out.Data[j][oi])
			if err != nil {
				return false
			}
			if s.OrderDesc {
				return c > 0
			}
			return c < 0
		})
	}
	if s.Limit >= 0 && len(out.Data) > s.Limit {
		out.Data = out.Data[:s.Limit]
	}
	return &out, nil
}

func itemName(item SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(*ColRef); ok {
		return c.Name
	}
	if c, ok := item.Expr.(*Call); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

var aggregateNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func isAggregate(items []SelectItem) bool {
	for _, item := range items {
		if c, ok := item.Expr.(*Call); ok && aggregateNames[c.Name] {
			return true
		}
	}
	return false
}

func (t *Txn) evalAggregates(items []SelectItem, envs []*env, args []Value) (Row, error) {
	row := make(Row, len(items))
	for i, item := range items {
		c, ok := item.Expr.(*Call)
		if !ok || !aggregateNames[c.Name] {
			return nil, fmt.Errorf("sqlmini: mixing aggregates and plain columns needs GROUP BY (unsupported)")
		}
		var vals []Value
		for _, e := range envs {
			if c.Star {
				vals = append(vals, Int(1))
				continue
			}
			if len(c.Args) != 1 {
				return nil, fmt.Errorf("sqlmini: %s takes one argument", c.Name)
			}
			v, err := t.eval(c.Args[0], e, args)
			if err != nil {
				if errors.Is(err, errNullCompare) {
					continue
				}
				return nil, err
			}
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		switch c.Name {
		case "COUNT":
			row[i] = Int(int64(len(vals)))
		case "SUM", "AVG":
			sum := 0.0
			isFloat := false
			for _, v := range vals {
				n, ok := v.numeric()
				if !ok {
					return nil, fmt.Errorf("sqlmini: %s over non-numeric value", c.Name)
				}
				if v.K == KindFloat {
					isFloat = true
				}
				sum += n
			}
			if c.Name == "AVG" {
				if len(vals) == 0 {
					row[i] = Null()
				} else {
					row[i] = Float(sum / float64(len(vals)))
				}
			} else if isFloat {
				row[i] = Float(sum)
			} else {
				row[i] = Int(int64(sum))
			}
		case "MIN", "MAX":
			if len(vals) == 0 {
				row[i] = Null()
				continue
			}
			best := vals[0]
			for _, v := range vals[1:] {
				cres, err := Compare(v, best)
				if err != nil {
					return nil, err
				}
				if (c.Name == "MIN" && cres < 0) || (c.Name == "MAX" && cres > 0) {
					best = v
				}
			}
			row[i] = best
		}
	}
	return row, nil
}

// eval evaluates an expression in an environment. A nil env means no columns
// are in scope (INSERT values).
func (t *Txn) eval(e Expr, scope *env, args []Value) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *Param:
		if x.Idx >= len(args) {
			return Value{}, fmt.Errorf("sqlmini: missing argument for placeholder %d", x.Idx+1)
		}
		return args[x.Idx], nil
	case *ColRef:
		if scope == nil {
			return Value{}, fmt.Errorf("sqlmini: column %q not allowed here", x.Name)
		}
		key := strings.ToLower(x.Name)
		if x.Table != "" {
			key = strings.ToLower(x.Table + "." + x.Name)
		}
		v, ok := scope.byName[key]
		if !ok {
			return Value{}, fmt.Errorf("sqlmini: unknown column %q", x.Name)
		}
		return v, nil
	case *Unary:
		v, err := t.eval(x.X, scope, args)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			if v.K != KindBool {
				return Value{}, fmt.Errorf("sqlmini: NOT over non-boolean")
			}
			return Bool(!v.B), nil
		case "-":
			switch v.K {
			case KindInt:
				return Int(-v.I), nil
			case KindFloat:
				return Float(-v.F), nil
			case KindNull:
				return Null(), nil
			default:
				return Value{}, fmt.Errorf("sqlmini: unary minus over %s", v.K)
			}
		}
		return Value{}, fmt.Errorf("sqlmini: unknown unary op %q", x.Op)
	case *IsNull:
		v, err := t.eval(x.X, scope, args)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return Bool(res), nil
	case *Binary:
		return t.evalBinary(x, scope, args)
	case *Call:
		fn, ok := t.db.scalarFn(x.Name)
		if !ok {
			return Value{}, fmt.Errorf("sqlmini: unknown function %s", x.Name)
		}
		vals := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := t.eval(a, scope, args)
			if err != nil {
				return Value{}, err
			}
			vals[i] = v
		}
		return fn(t, vals)
	default:
		return Value{}, fmt.Errorf("sqlmini: unhandled expression %T", e)
	}
}

func (t *Txn) evalBinary(x *Binary, scope *env, args []Value) (Value, error) {
	// AND/OR get three-valued logic with short-circuit.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := t.eval(x.L, scope, args)
		if err != nil && !errors.Is(err, errNullCompare) {
			return Value{}, err
		}
		lTrue := err == nil && l.K == KindBool && l.B
		lFalse := err == nil && l.K == KindBool && !l.B
		if x.Op == "AND" && lFalse {
			return Bool(false), nil
		}
		if x.Op == "OR" && lTrue {
			return Bool(true), nil
		}
		r, rerr := t.eval(x.R, scope, args)
		if rerr != nil && !errors.Is(rerr, errNullCompare) {
			return Value{}, rerr
		}
		rTrue := rerr == nil && r.K == KindBool && r.B
		rFalse := rerr == nil && r.K == KindBool && !r.B
		switch x.Op {
		case "AND":
			if lTrue && rTrue {
				return Bool(true), nil
			}
			if rFalse {
				return Bool(false), nil
			}
			return Null(), errNullCompare
		default: // OR
			if rTrue {
				return Bool(true), nil
			}
			if lFalse && rFalse {
				return Bool(false), nil
			}
			return Null(), errNullCompare
		}
	}

	l, err := t.eval(x.L, scope, args)
	if err != nil {
		return Value{}, err
	}
	r, err := t.eval(x.R, scope, args)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := Compare(l, r)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Str(l.String() + r.String()), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		ln, lok := l.numeric()
		rn, rok := r.numeric()
		if !lok || !rok {
			return Value{}, fmt.Errorf("sqlmini: arithmetic over non-numeric values")
		}
		var res float64
		switch x.Op {
		case "+":
			res = ln + rn
		case "-":
			res = ln - rn
		case "*":
			res = ln * rn
		case "/":
			if rn == 0 {
				return Value{}, fmt.Errorf("sqlmini: division by zero")
			}
			res = ln / rn
		}
		if l.K == KindInt && r.K == KindInt && x.Op != "/" {
			return Int(int64(res)), nil
		}
		if l.K == KindInt && r.K == KindInt && x.Op == "/" && rn != 0 && int64(ln)%int64(rn) == 0 {
			return Int(int64(res)), nil
		}
		return Float(res), nil
	default:
		return Value{}, fmt.Errorf("sqlmini: unknown operator %q", x.Op)
	}
}

// registerBuiltins installs the default scalar function library.
func registerBuiltins(db *DB) {
	db.RegisterFn("LENGTH", func(_ *Txn, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("LENGTH takes one argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	})
	db.RegisterFn("UPPER", func(_ *Txn, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("UPPER takes one argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToUpper(args[0].String())), nil
	})
	db.RegisterFn("LOWER", func(_ *Txn, args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, errors.New("LOWER takes one argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(strings.ToLower(args[0].String())), nil
	})
	db.RegisterFn("NOW", func(t *Txn, args []Value) (Value, error) {
		return Time(t.db.clock()), nil
	})
	// SQL/MED DATALINK scalar functions that need no engine context.
	db.RegisterFn("DLVALUE", func(_ *Txn, args []Value) (Value, error) {
		if len(args) != 1 || args[0].K != KindString {
			return Value{}, errors.New("DLVALUE takes one VARCHAR argument")
		}
		l, err := dlParse(args[0].S)
		if err != nil {
			return Value{}, err
		}
		return l, nil
	})
	db.RegisterFn("DLURLPATHONLY", func(_ *Txn, args []Value) (Value, error) {
		l, err := oneLinkArg(args)
		if err != nil {
			return Value{}, err
		}
		return Str(l.L.Path), nil
	})
	db.RegisterFn("DLURLSERVER", func(_ *Txn, args []Value) (Value, error) {
		l, err := oneLinkArg(args)
		if err != nil {
			return Value{}, err
		}
		return Str(l.L.Server), nil
	})
	db.RegisterFn("DLURLSCHEME", func(_ *Txn, args []Value) (Value, error) {
		if _, err := oneLinkArg(args); err != nil {
			return Value{}, err
		}
		return Str("dlfs"), nil
	})
	// Without a DataLinks engine attached, DLURLCOMPLETE degrades to the bare
	// URL (no token). The engine overrides this registration.
	db.RegisterFn("DLURLCOMPLETE", func(_ *Txn, args []Value) (Value, error) {
		l, err := oneLinkArg(args)
		if err != nil {
			return Value{}, err
		}
		return Str(l.L.URL()), nil
	})
}

func oneLinkArg(args []Value) (Value, error) {
	if len(args) != 1 || args[0].K != KindLink {
		return Value{}, errors.New("function takes one DATALINK argument")
	}
	return args[0], nil
}

func dlParse(url string) (Value, error) {
	v, err := CoerceTo(Str(url), KindLink)
	if err != nil {
		return Value{}, err
	}
	return v, nil
}
