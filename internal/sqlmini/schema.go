package sqlmini

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"datalinks/internal/datalink"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Kind       Kind
	PrimaryKey bool
	NotNull    bool
	// DL holds DATALINK column options when Kind == KindLink.
	DL datalink.ColumnOptions
}

// Table is a heap of rows plus its schema and indexes. Access is guarded by
// the owning DB's lock manager and the table's own latch (short-term mutex).
type Table struct {
	Name    string
	Columns []Column

	mu     sync.RWMutex
	rows   map[RowID]Row
	nextID RowID
	// pkIndex maps the primary key value to the row id, when a PK exists.
	pkIndex map[string]RowID
	pkCol   int // -1 when no primary key
	// secondary hash indexes: column index -> value-string -> set of row ids
	secondary map[int]map[string]map[RowID]struct{}
}

// RowID identifies a row within a table for its whole life.
type RowID uint64

// newTable builds an empty table for the given schema.
func newTable(name string, cols []Column) *Table {
	t := &Table{
		Name:      name,
		Columns:   cols,
		rows:      make(map[RowID]Row),
		pkIndex:   make(map[string]RowID),
		pkCol:     -1,
		secondary: make(map[int]map[string]map[RowID]struct{}),
	}
	for i, c := range cols {
		if c.PrimaryKey {
			t.pkCol = i
		}
	}
	return t
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// keyString canonicalizes a value for index keys.
func keyString(v Value) string {
	return fmt.Sprintf("%d|%s", v.K, v.String())
}

// insertLocked installs a row under a specific id. Caller holds t.mu.
func (t *Table) insertLocked(id RowID, r Row) error {
	if t.pkCol >= 0 {
		k := keyString(r[t.pkCol])
		if _, dup := t.pkIndex[k]; dup {
			return fmt.Errorf("sqlmini: duplicate primary key %s in %s", r[t.pkCol], t.Name)
		}
		t.pkIndex[k] = id
	}
	t.rows[id] = r
	for col, idx := range t.secondary {
		k := keyString(r[col])
		set, ok := idx[k]
		if !ok {
			set = make(map[RowID]struct{})
			idx[k] = set
		}
		set[id] = struct{}{}
	}
	if id >= t.nextID {
		t.nextID = id + 1
	}
	return nil
}

// deleteLocked removes a row by id. Caller holds t.mu.
func (t *Table) deleteLocked(id RowID) (Row, bool) {
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	if t.pkCol >= 0 {
		delete(t.pkIndex, keyString(r[t.pkCol]))
	}
	for col, idx := range t.secondary {
		k := keyString(r[col])
		if set, ok := idx[k]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, k)
			}
		}
	}
	delete(t.rows, id)
	return r, true
}

// Insert allocates a row id and installs the row (no logging; Txn does that).
func (t *Table) Insert(r Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	if err := t.insertLocked(id, r); err != nil {
		return 0, err
	}
	return id, nil
}

// InsertAt reinstalls a row under a known id (redo/undo paths).
func (t *Table) InsertAt(id RowID, r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(id, r)
}

// Delete removes the row with the given id, returning its prior image.
func (t *Table) Delete(id RowID) (Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(id)
}

// Update replaces the row under id, returning its prior image.
func (t *Table) Update(id RowID, r Row) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.deleteLocked(id)
	if !ok {
		return nil, fmt.Errorf("sqlmini: update of missing row %d in %s", id, t.Name)
	}
	if err := t.insertLocked(id, r); err != nil {
		// Restore the old row so the table is unchanged on error.
		_ = t.insertLocked(id, old)
		return nil, err
	}
	return old, nil
}

// Get returns a copy of the row under id.
func (t *Table) Get(id RowID) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// LookupPK finds the row id for a primary-key value.
func (t *Table) LookupPK(v Value) (RowID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pkCol < 0 {
		return 0, false
	}
	id, ok := t.pkIndex[keyString(v)]
	return id, ok
}

// LookupIndex returns the row ids matching v in a secondary index on col,
// or ok=false when no such index exists.
func (t *Table) LookupIndex(col int, v Value) (ids []RowID, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, exists := t.secondary[col]
	if !exists {
		return nil, false
	}
	set := idx[keyString(v)]
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}

// AddIndex builds a secondary hash index on the column.
func (t *Table) AddIndex(col int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[col]; ok {
		return
	}
	idx := make(map[string]map[RowID]struct{})
	for id, r := range t.rows {
		k := keyString(r[col])
		set, ok := idx[k]
		if !ok {
			set = make(map[RowID]struct{})
			idx[k] = set
		}
		set[id] = struct{}{}
	}
	t.secondary[col] = idx
}

// DropIndex discards the secondary index on the column, if any.
func (t *Table) DropIndex(col int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.secondary, col)
}

// HasIndex reports whether a secondary index exists on the column (tests).
func (t *Table) HasIndex(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.secondary[col]
	return ok
}

// Scan calls fn with every (id, row) pair in ascending id order. The row is
// a copy; mutations require Update.
func (t *Table) Scan(fn func(RowID, Row) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([]Row, len(ids))
	for i, id := range ids {
		rows[i] = t.rows[id].Clone()
	}
	t.mu.RUnlock()
	for i, id := range ids {
		if !fn(id, rows[i]) {
			return
		}
	}
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// catalog is the set of tables in a database.
type catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

func newCatalog() *catalog {
	return &catalog{tables: make(map[string]*Table)}
}

func (c *catalog) get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqlmini: no such table %q", name)
	}
	return t, nil
}

func (c *catalog) create(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("sqlmini: table %q already exists", name)
	}
	t := newTable(name, cols)
	c.tables[key] = t
	return t, nil
}

func (c *catalog) drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("sqlmini: no such table %q", name)
	}
	delete(c.tables, key)
	return nil
}

func (c *catalog) names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
