package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"datalinks/internal/metrics"
)

// WritePrometheus renders a registry in the Prometheus text exposition
// format (version 0.0.4). Counters export as counters; histograms export as
// summaries (p50/p95/p99 quantiles plus _sum in seconds and _count), which
// the log-linear buckets reconstruct within 1%. Output order is the sorted
// Snapshot order, so scrapes are diff-stable.
func WritePrometheus(w io.Writer, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, nv := range reg.Snapshot() {
		name := promName(nv.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, nv.Value)
	}
	for _, nh := range reg.Histograms() {
		name := promName(nh.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q, nh.Hist.Quantile(q).Seconds())
		}
		fmt.Fprintf(w, "%s_sum %g\n", name, nh.Hist.Sum().Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, nh.Hist.Count())
	}
}

// promName maps a dotted registry name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dl_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// TracesJSON is the /debug/traces response body.
type TracesJSON struct {
	Recent  []TraceJSON `json:"recent"`
	Slowest []TraceJSON `json:"slowest"`
}

// Mux serves the observability endpoints for one server:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/traces   recent and slowest traces as JSON (?n= bounds each list)
//	/debug/pprof/   the standard Go profiling endpoints
//
// Either source may be nil (that section is simply empty).
func Mux(reg *metrics.Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		body := TracesJSON{Recent: []TraceJSON{}, Slowest: []TraceJSON{}}
		for _, tr := range tracer.Recent(n) {
			body.Recent = append(body.Recent, tr.JSON())
		}
		for _, tr := range tracer.Slowest(n) {
			body.Slowest = append(body.Slowest, tr.JSON())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RenderText writes a human-readable span tree (dlctl -demo trace).
func RenderText(w io.Writer, tr *Trace) {
	if tr == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	fmt.Fprintf(w, "trace %d op=%s %v\n", tr.ID(), tr.Op(), tr.Duration().Round(time.Microsecond))
	renderSpan(w, tr.Root(), 1)
}

func renderSpan(w io.Writer, s *Span, depth int) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "%s%s %v", strings.Repeat("  ", depth), s.Name(), s.Duration().Round(time.Microsecond))
	s.mu.Lock()
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	s.mu.Unlock()
	for _, a := range attrs {
		fmt.Fprintf(w, " %s=%v", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children() {
		renderSpan(w, c, depth+1)
	}
}
