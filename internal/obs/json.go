package obs

import "time"

// SpanJSON is the wire/JSON shape of one span, as served by /debug/traces
// and embedded in slow_op log events.
type SpanJSON struct {
	Name       string         `json:"name"`
	Start      string         `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// TraceJSON is the JSON shape of one trace.
type TraceJSON struct {
	ID         uint64   `json:"id"`
	Op         string   `json:"op"`
	DurationMS float64  `json:"duration_ms"`
	Root       SpanJSON `json:"root"`
}

// JSON renders the trace for serving. Spans still open (an asynchronous
// archive job outliving its commit) render with duration 0.
func (t *Trace) JSON() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	return TraceJSON{
		ID:         t.id,
		Op:         t.op,
		DurationMS: durMS(t.Duration()),
		Root:       t.root.json(),
	}
}

func (s *Span) json() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		Start:      s.start.Format(time.RFC3339Nano),
		DurationMS: durMS(s.dur),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.json())
	}
	return out
}
