package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"datalinks/internal/metrics"
)

func TestNilTracerIsFullyInert(t *testing.T) {
	var tracer *Tracer
	tr := tracer.Start("open")
	if tr != nil {
		t.Fatal("nil tracer produced a trace")
	}
	sp := tr.Root().Child("x")
	sp.SetAttr("k", 1)
	sp.End()
	tr.Finish()
	if got := tracer.Recent(10); got != nil {
		t.Fatalf("recent = %v", got)
	}
	sp2, done := tracer.Adopt(WireContext{Trace: 7}, "server")
	if sp2 != nil {
		t.Fatal("nil tracer adopted a span")
	}
	done()
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tracer := New(Config{})
	tr := tracer.Start("commit")
	wire := tr.Root().Child("wire")
	wire.SetAttr("attempt", 1)
	lock := wire.Child("lock")
	lock.End()
	wire.End()
	tr.Finish()

	if tr.Root().Find("lock") == nil {
		t.Fatal("nested span not findable")
	}
	if v, ok := wire.Attr("attempt"); !ok || v != 1 {
		t.Fatalf("attr = %v %v", v, ok)
	}
	recent := tracer.Recent(10)
	if len(recent) != 1 || recent[0].Op() != "commit" {
		t.Fatalf("recent = %v", recent)
	}
	j := tr.JSON()
	if j.Op != "commit" || len(j.Root.Children) != 1 || j.Root.Children[0].Name != "wire" {
		t.Fatalf("json = %+v", j)
	}
	if j.Root.Children[0].Attrs["attempt"] != 1 {
		t.Fatalf("json attrs = %+v", j.Root.Children[0].Attrs)
	}
}

func TestAdoptStitchesIntoPendingTrace(t *testing.T) {
	tracer := New(Config{})
	tr := tracer.Start("commit")
	wire := tr.Root().Child("wire")
	sp, done := tracer.Adopt(wire.Wire(), "server")
	if sp == nil {
		t.Fatal("no adopted span")
	}
	sp.Child("lock").End()
	done()
	wire.End()
	tr.Finish()

	// One trace, with the server spans hanging under the client's wire span.
	if len(tracer.Recent(10)) != 1 {
		t.Fatalf("want one trace, got %d", len(tracer.Recent(10)))
	}
	srv := wire.Find("server")
	if srv == nil || srv.Find("lock") == nil {
		t.Fatal("server spans not stitched under the wire span")
	}
}

func TestAdoptUnknownTraceRecordsStandalone(t *testing.T) {
	tracer := New(Config{})
	sp, done := tracer.Adopt(WireContext{Trace: 424242, Span: 1}, "server")
	sp.Child("lock").End()
	done()
	recent := tracer.Recent(10)
	if len(recent) != 1 || recent[0].ID() != 424242 {
		t.Fatalf("recent = %v", recent)
	}
	if v, ok := recent[0].Root().Attr("remote"); !ok || v != true {
		t.Fatal("standalone trace not marked remote")
	}
}

func TestRingIsBoundedAndSlowestRetained(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	tracer := New(Config{Capacity: 16, Slowest: 4, Clock: clock})
	for i := 0; i < 200; i++ {
		tr := tracer.Start("op")
		// Trace i runs for i microseconds.
		now = now.Add(time.Duration(i) * time.Microsecond)
		tr.Finish()
		now = now.Add(time.Microsecond)
	}
	if got := len(tracer.Recent(0)); got > 16 {
		t.Fatalf("ring retained %d traces, capacity 16", got)
	}
	slow := tracer.Slowest(0)
	if len(slow) != 4 {
		t.Fatalf("slowest list = %d", len(slow))
	}
	if slow[0].Duration() != 199*time.Microsecond || slow[3].Duration() != 196*time.Microsecond {
		t.Fatalf("slowest durations = %v %v", slow[0].Duration(), slow[3].Duration())
	}
}

func TestSlowOpLogEmitsOneLineJSON(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	log := NewLogger(&buf, LevelInfo)
	log.clock = clock
	tracer := New(Config{SlowOpThreshold: time.Millisecond, Log: log, Clock: clock})

	fast := tracer.Start("open")
	fast.Finish() // zero duration: below threshold
	slow := tracer.Start("commit")
	w := slow.Root().Child("wire")
	now = now.Add(5 * time.Millisecond)
	w.End()
	slow.Finish()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 slow_op line, got %d: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("slow_op line is not JSON: %v", err)
	}
	if ev["event"] != "slow_op" || ev["level"] != "warn" || ev["op"] != "commit" {
		t.Fatalf("event = %v", ev)
	}
	if ev["duration_ms"].(float64) != 5 {
		t.Fatalf("duration_ms = %v", ev["duration_ms"])
	}
	spans, ok := ev["spans"].(map[string]any)
	if !ok || spans["name"] != "commit" {
		t.Fatalf("spans = %v", ev["spans"])
	}
}

func TestLoggerLevelsAndNil(t *testing.T) {
	var nilLog *Logger
	nilLog.Warn("ignored", nil) // must not panic
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelWarn)
	log.Debug("d", nil)
	log.Info("i", nil)
	log.Warn("w", map[string]any{"k": "v"})
	log.Error("e", nil)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], `"event":"w"`) || !strings.Contains(lines[0], `"k":"v"`) {
		t.Fatalf("warn line = %s", lines[0])
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("upcall.total").Add(7)
	reg.Histogram("upcall.latency").Observe(2 * time.Millisecond)
	tracer := New(Config{})
	tr := tracer.Start("commit")
	tr.Root().Child("wire").End()
	tr.Finish()

	mux := Mux(reg, tracer)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(res.Body)
	res.Body.Close()
	if !strings.Contains(body.String(), "dl_upcall_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body.String())
	}
	if !strings.Contains(body.String(), "dl_upcall_latency_count 1") {
		t.Fatalf("/metrics missing summary:\n%s", body.String())
	}

	res, err = srv.Client().Get(srv.URL + "/debug/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var traces TracesJSON
	if err := json.NewDecoder(res.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(traces.Recent) != 1 || traces.Recent[0].Op != "commit" {
		t.Fatalf("traces = %+v", traces)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("pprof: %v %v", res, err)
	}
	res.Body.Close()
}

func TestConcurrentSpansAndAdoption(t *testing.T) {
	tracer := New(Config{Capacity: 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr := tracer.Start("op")
				w := tr.Root().Child("wire")
				sp, done := tracer.Adopt(w.Wire(), "server")
				sp.Child("lock").End()
				sp.SetAttr("j", j)
				done()
				w.End()
				tr.Finish()
			}
		}()
	}
	// Concurrent readers: the exposition path must tolerate live mutation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, tr := range tracer.Recent(8) {
				tr.JSON()
			}
			tracer.Slowest(4)
		}
	}()
	wg.Wait()
}
