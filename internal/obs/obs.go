// Package obs is the observability plane of the DataLinks stack:
// request-scoped traces with cheap span trees, a lock-striped bounded ring
// of recent traces per server, slowest-trace retention, a slow-op JSON event
// log, and the Prometheus-text metrics exposition used by cmd/dlfmd.
//
// Everything is nil-safe: a server with tracing disabled passes a nil
// *Tracer around, every Span method on the resulting nil spans is a no-op,
// and the instrumented hot paths pay only a pointer test.
//
// A trace follows one top-level operation (open, read, write, commit/close,
// link/unlink, migration move) end to end. The trace context crosses the
// DLFS→DLFM wire as a WireContext embedded in the upcall frame envelope:
// when client and server share a process (the in-proc transport and the
// TCP-loopback deployments used by tests and experiments), the server finds
// the still-pending trace by ID and attaches its spans under the client's
// wire span — one stitched tree from session retry loop to fsync round. A
// genuinely remote server records a standalone trace under the same trace ID
// so the two sides can still be joined offline.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be small
// scalars (string, int64, float64, bool) so JSON rendering stays cheap.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of a trace. All methods are safe on a nil
// receiver (tracing disabled) and safe for concurrent use.
type Span struct {
	tr    *Trace
	id    uint32
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child opens a sub-span. End it when the region completes.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.tracer.clock()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now.Sub(s.start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attr returns the value of the named annotation (the last one wins).
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return nil, false
}

// Duration returns the span's duration (0 while still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a snapshot of the direct sub-spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the first span named name in this subtree (depth-first,
// including the receiver), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every span named name in this subtree, depth-first.
func (s *Span) FindAll(name string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.name == name {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// WireContext identifies a span for propagation across the upcall wire. The
// zero value means "no trace" — old peers that never set it are simply not
// traced, which is what makes the envelope extension version-skew safe.
type WireContext struct {
	Trace uint64
	Span  uint32
}

// Wire returns the span's wire context for embedding in an upcall frame.
func (s *Span) Wire() WireContext {
	if s == nil {
		return WireContext{}
	}
	return WireContext{Trace: s.tr.id, Span: s.id}
}

// Trace is one top-level operation's span tree.
type Trace struct {
	id     uint64
	op     string
	tracer *Tracer
	root   *Span

	mu       sync.Mutex
	nextSpan uint32
	spans    map[uint32]*Span
	end      time.Time
	finished bool
}

// ID returns the trace identifier (shared across the wire).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Op returns the top-level operation name.
func (t *Trace) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Duration returns the root span's duration.
func (t *Trace) Duration() time.Duration { return t.Root().Duration() }

// newSpan allocates a registered span within the trace.
func (t *Trace) newSpan(name string) *Span {
	s := &Span{tr: t, name: name, start: t.tracer.clock()}
	t.mu.Lock()
	t.nextSpan++
	s.id = t.nextSpan
	t.spans[s.id] = s
	t.mu.Unlock()
	return s
}

// span resolves a span ID (the wire parent on adoption).
func (t *Trace) span(id uint32) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.spans[id]; ok {
		return s
	}
	return t.root
}

// Finish ends the root span and records the trace into the tracer's ring,
// slowest-list and (past the threshold) slow-op log. Safe on nil and safe to
// call once per trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = t.tracer.clock()
	t.mu.Unlock()
	t.tracer.record(t)
}

// stripeCount stripes the ring of completed traces so concurrent sessions
// finishing ops do not serialize on one mutex. Must be a power of two.
const stripeCount = 8

type stripe struct {
	mu   sync.Mutex
	buf  []*Trace // ring, len = capacity/stripeCount
	next int
}

// Config configures a Tracer.
type Config struct {
	// Capacity bounds the ring of retained completed traces (default 512).
	Capacity int
	// Slowest bounds the separately retained slowest-trace list (default 32).
	Slowest int
	// SlowOpThreshold emits traces whose root exceeds it to Log as one-line
	// JSON slow_op events. Zero disables the slow-op log.
	SlowOpThreshold time.Duration
	// Log receives slow_op events; nil suppresses them.
	Log *Logger
	// Clock injects a time source (tests); nil means time.Now.
	Clock func() time.Time
}

// Tracer owns the per-server trace machinery. A nil *Tracer is a valid
// "tracing disabled" tracer: Start returns nil traces and every downstream
// span operation no-ops.
type Tracer struct {
	cfg       Config
	clock     func() time.Time
	nextTrace atomic.Uint64
	pending   sync.Map // uint64 -> *Trace, started but not finished
	stripes   [stripeCount]stripe

	slowMu  sync.Mutex
	slowest []*Trace // descending by root duration, capped at cfg.Slowest
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.Slowest <= 0 {
		cfg.Slowest = 32
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	t := &Tracer{cfg: cfg, clock: cfg.Clock}
	per := (cfg.Capacity + stripeCount - 1) / stripeCount
	if per < 1 {
		per = 1
	}
	for i := range t.stripes {
		t.stripes[i].buf = make([]*Trace, per)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a trace for one top-level operation. Finish it when the
// operation completes. Returns nil on a nil tracer.
func (t *Tracer) Start(op string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{id: t.nextTrace.Add(1), op: op, tracer: t, spans: make(map[uint32]*Span)}
	tr.root = tr.newSpan(op)
	t.pending.Store(tr.id, tr)
	return tr
}

// Adopt attaches a server-side span to the trace identified by an incoming
// wire context. If the trace is still pending in this tracer (client and
// server share the process — the in-proc transport or a TCP loopback), the
// span joins the live tree under the client's wire span: genuine stitching.
// Otherwise a standalone trace is recorded under the same trace ID so the
// two halves can be correlated offline. The returned func finishes the
// adopted span (and records the standalone trace, if one was created); it is
// never nil.
func (t *Tracer) Adopt(wc WireContext, name string) (*Span, func()) {
	if t == nil || wc.Trace == 0 {
		return nil, func() {}
	}
	if v, ok := t.pending.Load(wc.Trace); ok {
		tr := v.(*Trace)
		parent := tr.span(wc.Span)
		sp := parent.Child(name)
		return sp, sp.End
	}
	tr := &Trace{id: wc.Trace, op: name, tracer: t, spans: make(map[uint32]*Span)}
	tr.root = tr.newSpan(name)
	tr.root.SetAttr("remote", true)
	return tr.root, tr.Finish
}

// record files a completed trace into the ring and the slowest list; this is
// also where the slow-op log line is emitted. Called once per trace.
func (t *Tracer) record(tr *Trace) {
	t.pending.Delete(tr.id)
	st := &t.stripes[tr.id&(stripeCount-1)]
	st.mu.Lock()
	st.buf[st.next] = tr
	st.next = (st.next + 1) % len(st.buf)
	st.mu.Unlock()

	dur := tr.Duration()
	t.slowMu.Lock()
	i := sort.Search(len(t.slowest), func(i int) bool { return t.slowest[i].Duration() < dur })
	if i < t.cfg.Slowest {
		t.slowest = append(t.slowest, nil)
		copy(t.slowest[i+1:], t.slowest[i:])
		t.slowest[i] = tr
		if len(t.slowest) > t.cfg.Slowest {
			t.slowest = t.slowest[:t.cfg.Slowest]
		}
	}
	t.slowMu.Unlock()

	if t.cfg.SlowOpThreshold > 0 && dur >= t.cfg.SlowOpThreshold {
		t.cfg.Log.Warn("slow_op", map[string]any{
			"trace":        tr.id,
			"op":           tr.op,
			"duration_ms":  durMS(dur),
			"threshold_ms": durMS(t.cfg.SlowOpThreshold),
			"spans":        tr.JSON().Root,
		})
	}
}

// Recent returns up to n most recently completed traces, newest first.
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	var out []*Trace
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for _, tr := range st.buf {
			if tr != nil {
				out = append(out, tr)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].end.After(out[j].end) })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slowest returns up to n slowest completed traces, slowest first. Slow
// traces are retained here even after the ring has evicted them.
func (t *Tracer) Slowest(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	out := make([]*Trace, len(t.slowest))
	copy(out, t.slowest)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span returns
// ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// durMS renders a duration as fractional milliseconds for JSON fields.
func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
