package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is an event severity.
type Level int8

// Severity levels, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// Logger emits structured one-line JSON events: {"ts":...,"level":...,
// "event":..., <fields>}. Keys are sorted, so lines are stable for grep and
// for test assertions. A nil *Logger discards everything.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	clock func() time.Time
}

// NewLogger builds a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, clock: time.Now}
}

// Log emits one event. Fields may be nil.
func (l *Logger) Log(level Level, event string, fields map[string]any) {
	if l == nil || level < l.min {
		return
	}
	line := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		line[k] = v
	}
	line["ts"] = l.clock().Format(time.RFC3339Nano)
	line["level"] = level.String()
	line["event"] = event
	buf, err := json.Marshal(line) // map keys marshal sorted
	if err != nil {
		buf = []byte(fmt.Sprintf(`{"level":"error","event":"logger_marshal_failed","orig":%q}`, event))
	}
	l.mu.Lock()
	l.w.Write(append(buf, '\n'))
	l.mu.Unlock()
}

// Debug emits a debug-level event.
func (l *Logger) Debug(event string, fields map[string]any) { l.Log(LevelDebug, event, fields) }

// Info emits an info-level event.
func (l *Logger) Info(event string, fields map[string]any) { l.Log(LevelInfo, event, fields) }

// Warn emits a warn-level event.
func (l *Logger) Warn(event string, fields map[string]any) { l.Log(LevelWarn, event, fields) }

// Error emits an error-level event.
func (l *Logger) Error(event string, fields map[string]any) { l.Log(LevelError, event, fields) }
