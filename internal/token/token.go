// Package token implements the DataLinks access tokens of §4.1: HMAC-signed
// capabilities embedded in file names / URLs, with a type (read, write,
// execute), an expiry time, and the file path they authorize.
//
// The DataLinks engine generates tokens when a DATALINK column is selected;
// the DLFM upcall daemon validates them when DLFS intercepts fs_lookup. Both
// sides share a per-file-server secret key.
package token

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type is the kind of access a token grants.
type Type uint8

// Token types. A Write token also authorizes reads (an updater may read the
// file it is rewriting); a Read token never authorizes writes.
const (
	Read Type = iota + 1
	Write
	Execute
)

// String returns "r", "w" or "x".
func (t Type) String() string {
	switch t {
	case Read:
		return "r"
	case Write:
		return "w"
	case Execute:
		return "x"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType inverts String.
func ParseType(s string) (Type, error) {
	switch s {
	case "r":
		return Read, nil
	case "w":
		return Write, nil
	case "x":
		return Execute, nil
	default:
		return 0, fmt.Errorf("token: unknown type %q", s)
	}
}

// Covers reports whether a token of type t authorizes access needing `need`.
func (t Type) Covers(need Type) bool {
	if t == need {
		return true
	}
	// Write tokens subsume read access.
	return t == Write && need == Read
}

// Token is a decoded access token.
type Token struct {
	Type   Type
	Path   string // server-relative file path the token authorizes
	Expiry time.Time
}

// Validation errors.
var (
	ErrBadToken  = errors.New("token: malformed token")
	ErrBadMAC    = errors.New("token: MAC verification failed")
	ErrExpired   = errors.New("token: expired")
	ErrWrongPath = errors.New("token: token does not authorize this path")
)

// Sep separates the path from the embedded token in a file name. Real
// DataLinks prefixes the file name with the token; a suffix keeps directory
// components intact and is equivalent for the protocol.
const Sep = ";dltoken="

// Authority issues and validates tokens for one file server. The zero value
// is unusable; construct with NewAuthority.
type Authority struct {
	key   []byte
	clock func() time.Time
	ttl   time.Duration
}

// DefaultTTL is the token lifetime used when none is configured.
const DefaultTTL = 5 * time.Minute

// NewAuthority creates a token authority with the given shared secret.
func NewAuthority(key []byte, clock func() time.Time, ttl time.Duration) *Authority {
	if clock == nil {
		clock = time.Now
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Authority{key: k, clock: clock, ttl: ttl}
}

// mac computes the HMAC over the token's canonical form.
func (a *Authority) mac(typ Type, path string, expiry int64) string {
	h := hmac.New(sha256.New, a.key)
	fmt.Fprintf(h, "%s\x00%s\x00%d", typ, path, expiry)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Issue creates a signed token string authorizing `typ` access to path.
// Format: <type>:<expiry-unix>:<mac>.
func (a *Authority) Issue(typ Type, path string) string {
	expiry := a.clock().Add(a.ttl).Unix()
	return fmt.Sprintf("%s:%d:%s", typ, expiry, a.mac(typ, path, expiry))
}

// IssueWithTTL creates a token with a caller-chosen lifetime.
func (a *Authority) IssueWithTTL(typ Type, path string, ttl time.Duration) string {
	expiry := a.clock().Add(ttl).Unix()
	return fmt.Sprintf("%s:%d:%s", typ, expiry, a.mac(typ, path, expiry))
}

// Validate checks a token string against the path it is being used for and
// returns the decoded token.
func (a *Authority) Validate(tok, path string) (Token, error) {
	parts := strings.SplitN(tok, ":", 3)
	if len(parts) != 3 {
		return Token{}, ErrBadToken
	}
	typ, err := ParseType(parts[0])
	if err != nil {
		return Token{}, ErrBadToken
	}
	expiry, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Token{}, ErrBadToken
	}
	want := a.mac(typ, path, expiry)
	if !hmac.Equal([]byte(want), []byte(parts[2])) {
		// Distinguish wrong-path from forged-MAC only as far as telling the
		// caller validation failed; both are rejections.
		return Token{}, ErrBadMAC
	}
	exp := time.Unix(expiry, 0)
	if a.clock().After(exp) {
		return Token{}, ErrExpired
	}
	return Token{Type: typ, Path: path, Expiry: exp}, nil
}

// Embed attaches a token to a file name for transport through the standard
// file system API (the application opens "name;dltoken=...").
func Embed(name, tok string) string {
	if tok == "" {
		return name
	}
	return name + Sep + tok
}

// Extract splits an embedded token from a file name. ok is false when the
// name carries no token.
func Extract(name string) (path, tok string, ok bool) {
	i := strings.LastIndex(name, Sep)
	if i < 0 {
		return name, "", false
	}
	return name[:i], name[i+len(Sep):], true
}
