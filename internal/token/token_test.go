package token

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func fixedClock(t time.Time) func() time.Time { return func() time.Time { return t } }

func TestIssueValidateRoundTrip(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	a := NewAuthority([]byte("secret"), fixedClock(now), time.Minute)
	for _, typ := range []Type{Read, Write, Execute} {
		tok := a.Issue(typ, "/movies/clip.mpg")
		got, err := a.Validate(tok, "/movies/clip.mpg")
		if err != nil {
			t.Fatalf("validate %s token: %v", typ, err)
		}
		if got.Type != typ {
			t.Fatalf("type = %s, want %s", got.Type, typ)
		}
		if !got.Expiry.Equal(now.Add(time.Minute).Truncate(time.Second)) {
			t.Fatalf("expiry = %v", got.Expiry)
		}
	}
}

func TestValidateRejectsWrongPath(t *testing.T) {
	a := NewAuthority([]byte("secret"), nil, time.Minute)
	tok := a.Issue(Read, "/a/b")
	if _, err := a.Validate(tok, "/a/c"); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong path = %v, want ErrBadMAC", err)
	}
}

func TestValidateRejectsForgedMAC(t *testing.T) {
	a := NewAuthority([]byte("secret"), nil, time.Minute)
	b := NewAuthority([]byte("other-key"), nil, time.Minute)
	tok := b.Issue(Write, "/a/b")
	if _, err := a.Validate(tok, "/a/b"); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("cross-key token = %v, want ErrBadMAC", err)
	}
}

func TestValidateRejectsExpired(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := now
	a := NewAuthority([]byte("secret"), func() time.Time { return clock }, time.Minute)
	tok := a.Issue(Read, "/f")
	clock = now.Add(2 * time.Minute)
	if _, err := a.Validate(tok, "/f"); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired token = %v, want ErrExpired", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	a := NewAuthority([]byte("secret"), nil, time.Minute)
	for _, bad := range []string{"", "r", "r:123", "z:123:abc", "r:notanumber:abc"} {
		if _, err := a.Validate(bad, "/f"); err == nil {
			t.Errorf("malformed %q accepted", bad)
		}
	}
}

func TestIssueWithTTL(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	a := NewAuthority([]byte("secret"), fixedClock(now), time.Minute)
	tok := a.IssueWithTTL(Read, "/f", time.Hour)
	got, err := a.Validate(tok, "/f")
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !got.Expiry.Equal(now.Add(time.Hour)) {
		t.Fatalf("expiry = %v, want +1h", got.Expiry)
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		have, need Type
		want       bool
	}{
		{Read, Read, true},
		{Write, Write, true},
		{Write, Read, true}, // writers may read
		{Read, Write, false},
		{Execute, Read, false},
		{Read, Execute, false},
	}
	for _, c := range cases {
		if got := c.have.Covers(c.need); got != c.want {
			t.Errorf("%s covers %s = %v, want %v", c.have, c.need, got, c.want)
		}
	}
}

func TestEmbedExtract(t *testing.T) {
	name := Embed("/data/file.mpg", "r:123:abc")
	path, tok, ok := Extract(name)
	if !ok || path != "/data/file.mpg" || tok != "r:123:abc" {
		t.Fatalf("extract = %q, %q, %v", path, tok, ok)
	}
	// No token: pass-through.
	path, tok, ok = Extract("/plain/file")
	if ok || path != "/plain/file" || tok != "" {
		t.Fatalf("plain extract = %q, %q, %v", path, tok, ok)
	}
	// Empty token embeds to the bare name.
	if Embed("/f", "") != "/f" {
		t.Fatal("empty token should not alter name")
	}
}

func TestExtractUsesLastSeparator(t *testing.T) {
	// A malicious name embedding the separator twice must still validate
	// against the full prefix path.
	name := "/d/f" + Sep + "x" + Sep + "real"
	path, tok, ok := Extract(name)
	if !ok || tok != "real" || path != "/d/f"+Sep+"x" {
		t.Fatalf("extract = %q %q %v", path, tok, ok)
	}
}

// Property: tokens round-trip for arbitrary paths, and never validate against
// a different path.
func TestTokenPathBindingProperty(t *testing.T) {
	a := NewAuthority([]byte("k"), nil, time.Minute)
	prop := func(p1, p2 string) bool {
		tok := a.Issue(Read, p1)
		if _, err := a.Validate(tok, p1); err != nil {
			return false
		}
		if p1 != p2 {
			if _, err := a.Validate(tok, p2); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{Read, Write, Execute} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("round trip %s: %v, %v", typ, got, err)
		}
	}
	if _, err := ParseType("q"); err == nil {
		t.Error("ParseType(q) should fail")
	}
}
