package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/upcall"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E13",
		Title: "Concurrency scaling: sessions vs aggregate throughput",
		Paper: "DataLinks exists so many clients can read and update externally stored files concurrently while the database coordinates them; the stack must not re-serialize traffic that the design leaves independent (per-file opens, token checks, content I/O).",
		Run:   runE13,
	})
}

// The E13 knobs, exported so cmd/dlbench can sweep them from the command
// line. Session counts are driven against ConcurrencyServers file servers,
// each session issuing ConcurrencyOps operations (reads with an occasional
// in-place update) against its own linked file.
var (
	ConcurrencySessions = []int{1, 4, 16}
	ConcurrencyServers  = 2
	ConcurrencyOps      = 100
	// ConcurrencyUpcallLatency simulates the DLFS→DLFM IPC hop. Concurrent
	// sessions should overlap these waits; any layer that re-serializes them
	// shows up immediately as flat scaling.
	ConcurrencyUpcallLatency = 200 * time.Microsecond
	// ConcurrencyNet routes every upcall over a real TCP socket (the daemon
	// deployment) instead of in-process calls, and reports per-op latency
	// percentiles measured through the resilient client.
	ConcurrencyNet = false
	// ConcurrencyTrace turns request-scoped tracing on for every member —
	// E22 re-runs the E13 hot path with and without it to price the
	// instrumentation.
	ConcurrencyTrace = false
)

// runE13 drives N concurrent sessions against M file servers and reports
// aggregate throughput plus the contention counters of the two hottest
// locks (the sqlmini lock manager and the physical FS).
func runE13() ([]*Table, error) {
	t := &Table{
		Caption: "E13. Aggregate throughput vs concurrent sessions",
		Headers: []string{"sessions", "servers", "ops", "wall", "ops/s", "lock waits", "lock wait time", "shard collisions", "fs reads"},
	}
	if ConcurrencyNet {
		t.Caption = "E13. Aggregate throughput vs concurrent sessions (upcalls over TCP)"
	}
	var baseline float64
	var lastStats concurrencyStats
	for _, n := range ConcurrencySessions {
		wall, ops, stats, err := concurrencyRound(n)
		if err != nil {
			return nil, err
		}
		opsPerSec := float64(ops) / wall.Seconds()
		if baseline == 0 {
			baseline = opsPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", ConcurrencyServers),
			fmt.Sprintf("%d", ops),
			Dur(wall),
			fmt.Sprintf("%.0f (%.1fx)", opsPerSec, opsPerSec/baseline),
			fmt.Sprintf("%d", stats.lockWaits),
			Dur(stats.lockWaitTime),
			fmt.Sprintf("%d", stats.shardCollisions),
			fmt.Sprintf("%d", stats.fsReads),
		)
		lastStats = stats
	}
	t.Note("each session loops open-read-close on its own linked rdd file (every 10th op is an in-place update); upcall IPC latency %v", ConcurrencyUpcallLatency)
	t.Note("scaling comes from overlapping the per-open upcalls across sessions — a global lock anywhere in fs/lockmgr/dlfm flattens this curve")
	tables := []*Table{t}
	if ConcurrencyNet {
		tables = append(tables, netLatencyTable(
			fmt.Sprintf("E13-net. Per-upcall-op latency over real sockets (%d sessions)",
				ConcurrencySessions[len(ConcurrencySessions)-1]),
			lastStats.perOp))
		tables[1].Note("measured through the resilient client: deadlines, retries and backoff included; retries=%d giveups=%d breaker_open=%d inflight_rejected=%d",
			lastStats.retries, lastStats.giveups, lastStats.breakerOpen, lastStats.inflightRejected)
	}
	return tables, nil
}

// netLatencyTable renders per-op latency percentiles from merged samples.
func netLatencyTable(caption string, perOp map[string][]time.Duration) *Table {
	t := &Table{
		Caption: caption,
		Headers: []string{"op", "calls", "p50", "p95", "p99", "max"},
	}
	for _, op := range upcall.Ops() {
		samples := perOp[op.String()]
		if len(samples) == 0 {
			continue
		}
		s := Summarize(samples)
		t.AddRow(op.String(), fmt.Sprintf("%d", s.N), Dur(s.P50), Dur(s.P95), Dur(quantile(samples, 0.99)), Dur(s.Max))
	}
	return t
}

// quantile computes an exact order-statistic quantile of a sample set.
func quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// concurrencyStats aggregates the contention counters of one round.
type concurrencyStats struct {
	lockWaits       int64
	lockWaitTime    time.Duration
	shardCollisions int64
	fsReads         int64
	// TCP-mode extras: per-op latency samples merged across servers and the
	// resilience counters of the upcall plane.
	perOp            map[string][]time.Duration
	retries          int64
	giveups          int64
	breakerOpen      int64
	inflightRejected int64
}

// concurrencyRound runs one session-count configuration to completion. The
// file servers form a cluster under one authority: each session's file is
// placed by the consistent-hash ring rather than a static modulo assignment,
// the same routing a scale-out deployment uses (E21).
func concurrencyRound(sessions int) (time.Duration, int64, concurrencyStats, error) {
	members := make([]core.ServerConfig, ConcurrencyServers)
	for i := range members {
		members[i] = core.ServerConfig{
			Name:          fmt.Sprintf("fs%d", i+1),
			UpcallLatency: ConcurrencyUpcallLatency,
			OpenWait:      10 * time.Second,
			TCPUpcalls:    ConcurrencyNet,
			Trace:         ConcurrencyTrace,
		}
	}
	c, err := core.NewCluster(core.ClusterConfig{Members: members, LockTimeout: 10 * time.Second})
	if err != nil {
		return 0, 0, concurrencyStats{}, err
	}
	defer c.Close()
	c.DB.MustExec(`CREATE TABLE conc (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY NO, doc_size INT)`)

	type sessionWork struct {
		readURL string
		id      int
	}
	work := make([]sessionWork, sessions)
	for i := 0; i < sessions; i++ {
		path := fmt.Sprintf("/c/f%d.bin", i)
		if err := c.SeedFile(path, workload.UniformContent(4096, i), expUID); err != nil {
			return 0, 0, concurrencyStats{}, err
		}
		if _, err := c.DB.Exec(
			fmt.Sprintf(`INSERT INTO conc VALUES (%d, DLVALUE('%s'), NULL)`, i, c.URL(path))); err != nil {
			return 0, 0, concurrencyStats{}, err
		}
		row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETE(doc) FROM conc WHERE id = %d`, i))
		if err != nil {
			return 0, 0, concurrencyStats{}, err
		}
		work[i] = sessionWork{readURL: row[0].S, id: i}
	}

	var wg sync.WaitGroup
	var ops atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(w sessionWork) {
			defer wg.Done()
			sess := c.NewSession(expUID)
			for k := 0; k < ConcurrencyOps; k++ {
				if k%10 == 9 {
					row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM conc WHERE id = %d`, w.id))
					if err != nil {
						fail(err)
						return
					}
					f, err := sess.OpenWrite(row[0].S)
					if err != nil {
						fail(err)
						return
					}
					if _, err := f.WriteAt(0, []byte{byte(k)}); err != nil {
						fail(err)
						return
					}
					if err := f.Close(); err != nil {
						fail(err)
						return
					}
				} else {
					f, err := sess.OpenRead(w.readURL)
					if err != nil {
						fail(err)
						return
					}
					if _, err := f.ReadAll(); err != nil {
						fail(err)
						return
					}
					if err := f.Close(); err != nil {
						fail(err)
						return
					}
				}
				ops.Add(1)
			}
		}(work[i])
	}
	wg.Wait()
	wall := time.Since(start)
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return 0, 0, concurrencyStats{}, err
	}

	var stats concurrencyStats
	stats.lockWaits, stats.lockWaitTime, stats.shardCollisions = c.DB.LockManager().ContentionStats()
	stats.perOp = make(map[string][]time.Duration)
	for _, name := range c.Members() {
		srv, err := c.Member(name)
		if err != nil {
			continue
		}
		stats.fsReads += srv.Phys.Stats.Reads.Load()
		if ConcurrencyNet {
			reg := srv.Transport.Metrics()
			// Enumerate whatever per-op latency histograms the round produced
			// (sorted by name) instead of hand-listing the op set.
			for _, nh := range reg.Histograms() {
				if key, ok := strings.CutPrefix(nh.Name, "upcall.latency."); ok {
					stats.perOp[key] = append(stats.perOp[key], nh.Hist.Samples()...)
				}
			}
			stats.retries += reg.Counter("upcall.retries").Value()
			stats.giveups += reg.Counter("upcall.giveups").Value()
			stats.breakerOpen += reg.Counter("upcall.breaker_open").Value()
			stats.inflightRejected += reg.Counter("upcall.inflight_rejected").Value()
		}
	}
	return wall, ops.Load(), stats, nil
}
