package harness

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/core"
	"datalinks/internal/fsyncer"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E16",
		Title: "Crash-restartable archive: cold reopen serves full history with zero re-archiving",
		Paper: "§4.4's archive is the database-managed store of every committed version. If the version metadata lives only in process memory, a restart faces an uninterpretable chunk directory and must re-archive everything. With the durable catalog (manifest log + snapshot checkpoints), a cold-started store replays the full index, re-pins chunk refcounts, and serves point-in-time restores byte-identically with zero device transfer.",
		Run:   runE16,
	})
}

// The E16 knobs, exported so cmd/dlbench can sweep them from the command
// line. With an explicit RestartDir, a second E16 run against the same
// directory skips the churn phase entirely and verifies the history a
// previous run left behind — the CI restart-recovery smoke job runs exactly
// that: E16 twice, same -e16-dir, second run must serve with zero transfer.
var (
	RestartFiles    = 2
	RestartFileMB   = 4
	RestartVersions = 6
	RestartEditKB   = 64
	RestartBudgetMB = 4
	RestartDir      = "" // "" = private temp dir, removed afterwards
	RestartCompress = false
	RestartFsync    = "" // fsync policy for the churn AND the reopen ("", none, group, always)
)

// restartPath returns the deterministic linked-file path for file i.
func restartPath(i int) string { return fmt.Sprintf("/restart/f%d.bin", i) }

// restartExpected recomputes the exact content of every (file, version) from
// fixed seeds — both runs of E16 derive the same truth without any state
// carried between processes besides the archive directory itself.
func restartExpected(files int, fileSize, editSize int64, versions int) [][][]byte {
	expected := make([][][]byte, files)
	for i := 0; i < files; i++ {
		model := workload.Content(workload.RNG(int64(9000+i)), int(fileSize))
		expected[i] = append(expected[i], append([]byte(nil), model...))
		for v := 1; v <= versions; v++ {
			edit := workload.Content(workload.RNG(int64(9500+100*i+v)), int(editSize))
			off := (int64(v*31+i*17) * editSize) % (fileSize - editSize + 1)
			copy(model[off:], edit)
			expected[i] = append(expected[i], append([]byte(nil), model...))
		}
	}
	return expected
}

// runE16 commits a deterministic version history through the full system,
// hard-restarts the process state (the system is closed and a brand-new
// archive store opened over the directory), and proves every version —
// including point-in-time lookups — comes back byte-identical with zero
// bytes re-archived. Any divergence or re-archiving is an error, so the CI
// smoke job fails loudly instead of recording a bad snapshot.
func runE16() ([]*Table, error) {
	fileSize := int64(RestartFileMB) << 20
	editSize := int64(RestartEditKB) << 10
	if editSize > fileSize {
		editSize = fileSize
	}
	budget := int64(RestartBudgetMB) << 20
	fsyncPolicy, err := fsyncer.ParsePolicy(RestartFsync)
	if err != nil {
		return nil, err
	}
	tier := archive.TierConfig{
		MemoryBudget: budget,
		Compress:     RestartCompress,
		Fsync:        fsyncPolicy,
	}

	dir := RestartDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dlarchive-e16-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	tier.Dir = dir
	expected := restartExpected(RestartFiles, fileSize, editSize, RestartVersions)

	// Probe the directory: an existing history (a previous E16 run) means we
	// only verify; a fresh directory gets the churn phase first.
	probe, err := archive.NewTiered(0, nil, tier)
	if err != nil {
		return nil, err
	}
	coldStart := len(probe.Files("fs1")) > 0
	store := probe
	var churnWall, replayWall time.Duration
	var diskAfterChurn int64
	if !coldStart {
		probe.Close()
		start := time.Now()
		if err := restartChurn(dir, budget, fileSize, editSize, expected); err != nil {
			return nil, err
		}
		churnWall = time.Since(start)
		// The process restart: nothing survives but the directory.
		start = time.Now()
		store, err = archive.NewTiered(0, nil, tier)
		if err != nil {
			return nil, fmt.Errorf("cold reopen: %w", err)
		}
		replayWall = time.Since(start)
	}
	defer store.Close()
	diskAfterChurn = store.Tier().DiskBytes
	rec := store.Recovery()

	// Verification: every version of every file, byte for byte, plus
	// latest/point-in-time lookups, against a store that did not exist when
	// the versions were committed.
	verified := 0
	for i := 0; i < RestartFiles; i++ {
		path := restartPath(i)
		vers := store.Versions("fs1", path)
		if len(vers) != RestartVersions+1 {
			return nil, fmt.Errorf("E16: %s has %d versions after restart, want %d", path, len(vers), RestartVersions+1)
		}
		for v, e := range vers {
			if e.Version != archive.Version(v) {
				return nil, fmt.Errorf("E16: %s slot %d holds version %d", path, v, e.Version)
			}
			if !bytes.Equal(e.Content(), expected[i][v]) {
				return nil, fmt.Errorf("E16: %s v%d diverged across the restart", path, v)
			}
			verified++
		}
		latest, err := store.Latest("fs1", path)
		if err != nil || latest.Version != archive.Version(RestartVersions) {
			return nil, fmt.Errorf("E16: latest of %s after restart: %v", path, err)
		}
		// Point-in-time: the state id archived with the middle version must
		// resolve back to exactly that version.
		mid := vers[RestartVersions/2]
		pit, err := store.AsOf("fs1", path, mid.StateID)
		if err != nil || pit.Version != mid.Version {
			return nil, fmt.Errorf("E16: as-of restore of %s to state %d returned v%d (%v)", path, mid.StateID, pit.Version, err)
		}
		if !bytes.Equal(pit.Content(), expected[i][RestartVersions/2]) {
			return nil, fmt.Errorf("E16: point-in-time content of %s diverged", path)
		}
	}

	// The acceptance bar: serving all of that re-archived NOTHING.
	reArchived := store.Dedup().NewBytes
	spills := store.Tier().Spills
	if reArchived != 0 || spills != 0 {
		return nil, fmt.Errorf("E16: reopen re-archived %d bytes (%d spills); the catalog failed its job", reArchived, spills)
	}
	final := store.Tier()

	mb := func(b int64) string { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
	t := &Table{
		Caption: "E16. Restart recovery: durable catalog serves history from a cold start",
		Headers: []string{"metric", "value"},
	}
	mode := "churn + restart (fresh dir)"
	if coldStart {
		mode = "verify-only (history found in -e16-dir)"
	}
	t.AddRow("run mode", mode)
	t.AddRow("files x versions", fmt.Sprintf("%d x %d (+v0 each)", RestartFiles, RestartVersions))
	t.AddRow("linked file size / edit size", fmt.Sprintf("%s / %s", mb(fileSize), mb(editSize)))
	if !coldStart {
		t.AddRow("churn wall time", Dur(churnWall))
		t.AddRow("catalog replay wall time (cold open)", Dur(replayWall))
	}
	t.AddRow("histories / versions replayed", fmt.Sprintf("%d / %d", rec.Files, rec.Versions))
	t.AddRow("versions dropped (missing blobs)", fmt.Sprintf("%d", rec.DroppedVersions))
	t.AddRow("torn catalog-log bytes quarantined", fmt.Sprintf("%d", rec.TornBytes))
	t.AddRow("catalog records (snapshot / log)", fmt.Sprintf("%d / %d", rec.SnapshotRecords, rec.LogRecords))
	t.AddRow("versions verified byte-identical", fmt.Sprintf("%d (+%d point-in-time)", verified, RestartFiles))
	t.AddRow("bytes re-archived on reopen", fmt.Sprintf("%d (spills: %d)", reArchived, spills))
	t.AddRow("chunks paged in by verification", fmt.Sprintf("%d", final.PageIns))
	t.AddRow("on-disk bytes (physical / logical)", fmt.Sprintf("%s / %s", mb(diskAfterChurn), mb(final.DiskLogicalBytes)))
	t.AddRow("pack files / torn pack bytes", fmt.Sprintf("%d / %d", final.PackFiles, final.PackTornBytes))
	t.AddRow("compression / fsync policy", fmt.Sprintf("%v / %s", RestartCompress, fsyncPolicy))
	t.Note("the reopened store never existed while the versions were committed: the catalog (manifest log + snapshot) is the only index")
	t.Note("zero bytes re-archived is enforced, not just reported — a catalog regression fails the experiment (and the CI restart smoke job)")
	return []*Table{t}, nil
}

// restartChurn drives the deterministic version history through a full
// system stack (link + in-place update transactions), then shuts everything
// down cleanly.
func restartChurn(dir string, budget, fileSize, editSize int64, expected [][][]byte) error {
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:                "fs1",
			OpenWait:            30 * time.Second,
			ArchiveDir:          dir,
			ArchiveMemoryBudget: budget,
			ArchiveCompress:     RestartCompress,
			ArchiveFsync:        RestartFsync,
		}},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return err
	}
	sys.DB.MustExec(`CREATE TABLE restart (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	for i := 0; i < RestartFiles; i++ {
		if err := seedOwned(srv, restartPath(i), expected[i][0], expUID); err != nil {
			return err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO restart VALUES (%d, DLVALUE('dlfs://fs1%s'))`, i, restartPath(i))); err != nil {
			return err
		}
	}
	sess := sys.NewSession(expUID)
	for v := 1; v <= RestartVersions; v++ {
		for i := 0; i < RestartFiles; i++ {
			row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM restart WHERE id = %d`, i))
			if err != nil {
				return err
			}
			f, err := sess.OpenWrite(row[0].S)
			if err != nil {
				return err
			}
			edit := workload.Content(workload.RNG(int64(9500+100*i+v)), int(editSize))
			off := (int64(v*31+i*17) * editSize) % (fileSize - editSize + 1)
			if _, err := f.WriteAt(off, edit); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	srv.DLFM.WaitArchives()
	return nil
}
