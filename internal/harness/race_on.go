//go:build race

package harness

// See race_off.go.
const raceEnabled = true
