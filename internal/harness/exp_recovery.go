package harness

import (
	"bytes"
	"fmt"
	"time"

	"datalinks/internal/sqlmini"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E7",
		Title: "Update atomicity across crashes (§4.2)",
		Paper: "\"either all changes to a file between open and close complete successfully or none of the changes survive the failure\"; the last committed version is restored from the archive, the in-flight version moved to a temporary directory.",
		Run:   runE7,
	})
	Register(Experiment{
		ID:    "E8",
		Title: "Coordinated point-in-time restore (§4.4)",
		Paper: "\"each new version is associated with a database state identifier... when database is restored to a previous point in time, the corresponding files are also restored from the archive\".",
		Run:   runE8,
	})
}

// runE7 drives an update through every crash point and verifies atomicity,
// then measures recovery time as linked files scale.
func runE7() ([]*Table, error) {
	atomicity := &Table{
		Caption: "E7a. Crash-point sweep: file content after recovery",
		Headers: []string{"crash point", "expected content", "observed", "verdict", "quarantined"},
	}
	type crashPoint struct {
		name     string
		expected string // which version should survive
	}
	points := []crashPoint{
		{"before any write (open only)", "v0"},
		{"mid-update (half written)", "v0"},
		{"fully written, before close", "v0"},
		{"after close commit", "v1"},
	}
	for _, cp := range points {
		sys, srv, err := expSystem(false, 0)
		if err != nil {
			return nil, err
		}
		if err := seedOwned(srv, "/d/f.bin", []byte("v0-content"), expUID); err != nil {
			return nil, err
		}
		sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
		if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
			return nil, err
		}
		sess := sys.NewSession(expUID)
		row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
		if err != nil {
			return nil, err
		}
		f, err := sess.OpenWrite(row[0].S)
		if err != nil {
			return nil, err
		}
		switch cp.name {
		case "before any write (open only)":
		case "mid-update (half written)":
			f.WriteAt(0, []byte("v1-half"))
		case "fully written, before close":
			f.WriteAll([]byte("v1-content"))
		case "after close commit":
			f.WriteAll([]byte("v1-content"))
			if err := f.Close(); err != nil {
				return nil, err
			}
			srv.DLFM.WaitArchives()
		}
		if _, err := sys.CrashAndRecoverServer("fs1"); err != nil {
			return nil, err
		}
		newSrv, _ := sys.Server("fs1")
		data, _ := newSrv.Phys.ReadFile("/d/f.bin")
		want := "v0-content"
		if cp.expected == "v1" {
			want = "v1-content"
		}
		verdict := "PASS"
		if !bytes.Equal(data, []byte(want)) {
			verdict = "FAIL"
		}
		qnames, _ := newSrv.Phys.ReadDir("/lost+found")
		atomicity.AddRow(cp.name, cp.expected, truncateCell(string(data), 14), verdict,
			fmt.Sprintf("%d", len(qnames)))
		sys.Close()
	}

	// Recovery time as the number of in-flight updates at crash grows.
	timing := &Table{
		Caption: "E7b. Recovery time vs in-flight updates at crash (64KB files)",
		Headers: []string{"linked files", "in-flight at crash", "recovery time", "files restored"},
	}
	for _, n := range []int{4, 16, 64} {
		sys, srv, err := expSystem(false, 0)
		if err != nil {
			return nil, err
		}
		pop, err := workload.Seed(srv.Phys, "/d", n, 64<<10, expUID, workload.RNG(int64(n)))
		if err != nil {
			return nil, err
		}
		sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
		for i := 0; i < n; i++ {
			if _, err := sys.DB.Exec(`INSERT INTO t VALUES (?, DLVALUE(?))`,
				sqlmini.Int(int64(i)), sqlmini.Str(pop.URL("fs1", i))); err != nil {
				return nil, err
			}
		}
		// Open half the files for update and scribble.
		sess := sys.NewSession(expUID)
		inflight := n / 2
		for i := 0; i < inflight; i++ {
			row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = ?`, sqlmini.Int(int64(i)))
			if err != nil {
				return nil, err
			}
			f, err := sess.OpenWrite(row[0].S)
			if err != nil {
				return nil, err
			}
			f.WriteAt(0, []byte("scribble"))
		}
		start := time.Now()
		rep, err := sys.CrashAndRecoverServer("fs1")
		if err != nil {
			return nil, err
		}
		timing.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", inflight),
			Dur(time.Since(start)), fmt.Sprintf("%d", len(rep.RestoredFiles)))
		sys.Close()
	}
	return []*Table{atomicity, timing}, nil
}

// runE8 commits a chain of versions, capturing state ids, then restores to
// each and verifies database and file agree.
func runE8() ([]*Table, error) {
	const versions = 5
	sys, srv, err := expSystem(false, 0)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := seedOwned(srv, "/d/f.bin", workload.UniformContent(1024, 0), expUID); err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, note VARCHAR, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	if _, err := sys.DB.Exec(`INSERT INTO t (id, note, doc) VALUES (1, 'v0', DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
		return nil, err
	}
	sess := sys.NewSession(expUID)
	type snap struct {
		state uint64
		note  string
		fill  byte
		size  int
	}
	var snaps []snap
	snaps = append(snaps, snap{state: sys.Engine.StateID(), note: "v0", fill: 'A', size: 1024})
	for v := 1; v <= versions; v++ {
		row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
		if err != nil {
			return nil, err
		}
		f, err := sess.OpenWrite(row[0].S)
		if err != nil {
			return nil, err
		}
		size := 1024 + v*100
		if err := f.WriteAll(workload.UniformContent(size, v)); err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		srv.DLFM.WaitArchives()
		note := fmt.Sprintf("v%d", v)
		if _, err := sys.DB.Exec(`UPDATE t SET note = ? WHERE id = 1`, sqlmini.Str(note)); err != nil {
			return nil, err
		}
		snaps = append(snaps, snap{state: sys.Engine.StateID(), note: note, fill: byte('A' + v), size: size})
	}

	t := &Table{
		Caption: "E8. Restore to each captured state id: database note vs file content",
		Headers: []string{"restore to state", "db note", "file fill", "file size", "db/file agree", "restore time"},
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s := snaps[i]
		start := time.Now()
		if err := sys.Engine.RestoreToState(s.state); err != nil {
			return nil, fmt.Errorf("restore to %d: %w", s.state, err)
		}
		elapsed := time.Since(start)
		row, err := sys.Engine.DB().QueryRow(`SELECT note FROM t WHERE id = 1`)
		if err != nil {
			return nil, err
		}
		data, _ := srv.Phys.ReadFile("/d/f.bin")
		clean, fill := workload.TornCheck(data)
		agree := "PASS"
		if !clean || fill != s.fill || len(data) != s.size || row[0].S != s.note {
			agree = "FAIL"
		}
		t.AddRow(fmt.Sprintf("%d", s.state), row[0].S, string(fill),
			fmt.Sprintf("%d", len(data)), agree, Dur(elapsed))
	}
	t.Note("restores run newest-to-oldest against the same live system; each restore discards the newer versions (as a real point-in-time restore would)")
	return []*Table{t}, nil
}
