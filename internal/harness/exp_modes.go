package harness

import (
	"fmt"
	"strings"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
)

// expSystem builds a standard one-server system for experiments.
func expSystem(strict bool, upcallLatency time.Duration) (*core.System, *core.FileServer, error) {
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:          "fs1",
			Strict:        strict,
			UpcallLatency: upcallLatency,
			OpenWait:      150 * time.Millisecond,
		}},
		LockTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, nil, err
	}
	return sys, srv, nil
}

// seedOwned writes a file owned by uid with mode 0644.
func seedOwned(srv *core.FileServer, path string, content []byte, uid fs.UID) error {
	dir := path[:strings.LastIndex(path, "/")]
	if err := srv.Phys.MkdirAll(dir, fs.Cred{UID: fs.Root}, 0o777); err != nil {
		return err
	}
	if err := srv.Phys.WriteFile(path, content); err != nil {
		return err
	}
	ino, err := srv.Phys.Lookup(path)
	if err != nil {
		return err
	}
	if err := srv.Phys.Chown(ino, fs.Cred{UID: fs.Root}, uid); err != nil {
		return err
	}
	return srv.Phys.Chmod(ino, fs.Cred{UID: uid}, 0o644)
}

const expUID fs.UID = 500
const otherUID fs.UID = 501

func yn(allowed bool) string {
	if allowed {
		return "allow"
	}
	return "deny"
}

func init() {
	Register(Experiment{
		ID:    "T1",
		Title: "Control modes (Table 1, extended with rfd/rdd)",
		Paper: "Table 1 lists nff/rff/rfb/rdb; §2.4 adds rfd and rdd. Attributes: referential integrity, read control, write control.",
		Run:   runT1,
	})
	Register(Experiment{
		ID:    "F1",
		Title: "Architecture of DataLinks (Figure 1, from the live system)",
		Paper: "DBMS+DataLinks engine on the host; DLFM (main daemon + child agents + upcall daemon) and DLFS (VFS layer) on each file server.",
		Run:   runF1,
	})
	Register(Experiment{
		ID:    "F2",
		Title: "Application view (Figure 2): SQL API and file API over one linked file",
		Paper: "An Employee table with a DATALINK picture column; applications reach the same file through SQL and through the file system API.",
		Run:   runF2,
	})
}

// runT1 exercises every access class against a file linked in each mode and
// prints the observed allow/deny matrix next to the paper's specification.
func runT1() ([]*Table, error) {
	spec := &Table{
		Caption: "T1a. Control mode specification (paper Table 1 + §2.4)",
		Headers: []string{"mode", "ref.integrity", "read ctl", "write ctl"},
	}
	specRows := [][]string{
		{"nff", "no", "FS", "FS"},
		{"rff", "yes", "FS", "FS"},
		{"rfb", "yes", "FS", "blocked"},
		{"rdb", "yes", "DBMS", "blocked"},
		{"rfd", "yes", "FS", "DBMS"},
		{"rdd", "yes", "DBMS", "DBMS"},
	}
	for _, r := range specRows {
		spec.AddRow(r...)
	}

	obs := &Table{
		Caption: "T1b. Observed enforcement per mode (allow/deny)",
		Headers: []string{"mode", "read no-token", "read token", "write no-token", "write token", "remove", "rename"},
	}

	for _, mode := range []string{"nff", "rff", "rfb", "rdb", "rfd", "rdd"} {
		sys, srv, err := expSystem(false, 0)
		if err != nil {
			return nil, err
		}
		path := "/data/doc.bin"
		if err := seedOwned(srv, path, []byte("content"), expUID); err != nil {
			return nil, err
		}
		sys.DB.MustExec(fmt.Sprintf(
			`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE %s RECOVERY YES)`, strings.ToUpper(mode)))
		if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1` + path + `'))`); err != nil {
			return nil, fmt.Errorf("link %s: %w", mode, err)
		}
		sess := sys.NewSession(expUID)
		bare := "dlfs://fs1" + path

		tryOpen := func(url string, write bool) bool {
			var f *core.File
			var err error
			if write {
				f, err = sess.OpenWrite(url)
			} else {
				f, err = sess.OpenRead(url)
			}
			if err != nil {
				return false
			}
			f.Close()
			srv.DLFM.WaitArchives()
			return true
		}
		readPlain := tryOpen(bare, false)
		readTok := false
		if row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`); err == nil {
			readTok = tryOpen(row[0].S, false)
		}
		writePlain := tryOpen(bare, true)
		writeTok := false
		if row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`); err == nil {
			writeTok = tryOpen(row[0].S, true)
		}
		removeOK := srv.LFS.Remove(fs.Cred{UID: expUID}, path) == nil
		if removeOK {
			// Recreate for the rename probe.
			if err := seedOwned(srv, path, []byte("content"), expUID); err != nil {
				return nil, err
			}
		}
		renameOK := srv.LFS.Rename(fs.Cred{UID: expUID}, path, "/data/doc2.bin") == nil
		obs.AddRow(mode, yn(readPlain), yn(readTok), yn(writePlain), yn(writeTok), yn(removeOK), yn(renameOK))
		sys.Close()
	}
	obs.Note("write token = DLURLCOMPLETEWRITE; modes without DB write control issue no write tokens")
	obs.Note("nff files are not registered with DLFM: every operation is plain file-system access")
	return []*Table{spec, obs}, nil
}

// runF1 prints the architecture wiring from a live system.
func runF1() ([]*Table, error) {
	sys, srv, err := expSystem(false, 0)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := seedOwned(srv, "/data/a.bin", []byte("x"), expUID); err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	sys.DB.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/data/a.bin'))`)

	t := &Table{
		Caption: "F1. Live component inventory (Figure 1 wiring)",
		Headers: []string{"component", "location", "detail"},
	}
	t.AddRow("DBMS (sqlmini)", "host", fmt.Sprintf("%d tables, state id %d", len(sys.DB.TableNames()), sys.DB.StateID()))
	t.AddRow("DataLinks engine", "host", fmt.Sprintf("servers=%v, linked=%v", sys.Engine.ServerNames(), sys.Engine.LinkedFiles()))
	t.AddRow("DLFM main daemon", "file server fs1", fmt.Sprintf("child agents spawned: %d", srv.DLFM.AgentCount()))
	t.AddRow("DLFM repository", "file server fs1", fmt.Sprintf("tables: %v", srv.DLFM.Repo().TableNames()))
	t.AddRow("DLFM upcall daemon", "file server fs1", fmt.Sprintf("upcalls served: %d", srv.Transport.Calls()))
	t.AddRow("DLFS (VFS layer)", "file server fs1", "interposes fs_lookup/fs_open/fs_close/fs_remove/fs_rename")
	t.AddRow("Physical FS", "file server fs1", "in-memory UNIX-like FS (JFS/UFS stand-in)")
	t.AddRow("Archive server", "file server fs1", archiveSummary(srv))
	t.Note("diagram: Application → {db client API → DataLinks engine ↔ DLFM} and {FS API → LFS → DLFS → physical FS}; DLFS ⇢ upcall ⇢ DLFM")
	return []*Table{t}, nil
}

func archiveSummary(srv *core.FileServer) string {
	puts, restores, bytes := srv.Archive.Stats()
	return fmt.Sprintf("puts=%d restores=%d bytes=%d", puts, restores, bytes)
}

// runF2 walks the Figure 2 employee-table example through both APIs.
func runF2() ([]*Table, error) {
	sys, srv, err := expSystem(false, 0)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := seedOwned(srv, "/images/john.gif", []byte("GIF89a john"), expUID); err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE employee (name VARCHAR PRIMARY KEY, dept VARCHAR, picture DATALINK MODE RDB RECOVERY NO)`)
	sys.DB.MustExec(`INSERT INTO employee VALUES ('john', 'research', DLVALUE('dlfs://fs1/images/john.gif'))`)

	t := &Table{
		Caption: "F2. Application view of one linked file (Figure 2)",
		Headers: []string{"step", "API", "result"},
	}
	rows, err := sys.DB.Query(`SELECT name, dept, DLURLPATHONLY(picture) FROM employee`)
	if err != nil {
		return nil, err
	}
	t.AddRow("1. SQL SELECT", "db client API",
		fmt.Sprintf("name=%s dept=%s picture=%s", rows.Data[0][0].S, rows.Data[0][1].S, rows.Data[0][2].S))
	urlRow, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(picture) FROM employee WHERE name = 'john'`)
	if err != nil {
		return nil, err
	}
	t.AddRow("2. token fetch", "db client API", truncateCell(urlRow[0].S, 60))
	sess := sys.NewSession(expUID)
	f, err := sess.OpenRead(urlRow[0].S)
	if err != nil {
		return nil, err
	}
	content, _ := f.ReadAll()
	f.Close()
	t.AddRow("3. file open+read", "FS API (through DLFS)", fmt.Sprintf("%d bytes: %q", len(content), content))
	// Same-uid processes are covered by the validated token entry (§4.1);
	// a different user without a token is rejected.
	if f2, err := sess.OpenRead("dlfs://fs1/images/john.gif"); err == nil {
		f2.Close()
		t.AddRow("4. same-uid tokenless open", "FS API (through DLFS)", "allowed via token entry (§4.1 userid semantics)")
	} else {
		t.AddRow("4. same-uid tokenless open", "FS API (through DLFS)", "denied (unexpected): "+firstLine(err))
	}
	other := sys.NewSession(otherUID)
	if _, err := other.OpenRead("dlfs://fs1/images/john.gif"); err != nil {
		t.AddRow("5. other-uid tokenless open", "FS API (through DLFS)", "denied: "+firstLine(err))
	} else {
		t.AddRow("5. other-uid tokenless open", "FS API (through DLFS)", "ALLOWED (unexpected for rdb)")
	}
	if err := srv.LFS.Remove(fs.Cred{UID: expUID}, "/images/john.gif"); err != nil {
		t.AddRow("6. remove attempt", "FS API (through DLFS)", "denied: "+firstLine(err))
	} else {
		t.AddRow("6. remove attempt", "FS API (through DLFS)", "ALLOWED (unexpected)")
	}
	return []*Table{t}, nil
}

func truncateCell(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func firstLine(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return truncateCell(msg, 60)
}
