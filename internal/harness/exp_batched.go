package harness

import (
	"fmt"
	"os"
	"sync"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E17",
		Title: "Batched archive writes: packfiles + group-commit fsync under a small-edit commit storm",
		Paper: "§4.4's archive device must keep up with the update stream. After the O(delta) commit path, every small blob still cost its own create+write+rename file cycle and the catalog append had no durability policy. Packfiles turn N small blobs into one sequential append stream, and the group-commit fsync pipeline buys power-loss durability at a fraction of fsync-per-append's cost: concurrent committers coalesce behind shared fdatasyncs.",
		Run:   runE17,
	})
}

// The E17 knobs, exported so cmd/dlbench can sweep them from the command
// line: BatchSessions concurrent sessions each commit BatchCommits tiny
// in-place edits (BatchEditBytes at rotating offsets) to their own
// BatchFileKB linked file.
var (
	BatchSessions  = 8
	BatchCommits   = 25
	BatchFileKB    = 96 // one 64 KiB chunk + a 32 KiB tail
	BatchEditBytes = 512
	BatchDir       = "" // "" = private temp dirs, removed afterwards
)

// batchedResult is what one commit-storm round measured.
type batchedResult struct {
	wall         time.Duration
	commits      int
	files        int64 // files the archive tier created
	fsyncs       int64 // chunkdisk + catalog fdatasyncs
	packAppends  int64
	packDead     int64
	spills       int64
	archiveBytes int64
}

// runE17 sweeps the write-path configurations over the same commit storm and
// tabulates throughput against file-creation and fsync cost.
func runE17() ([]*Table, error) {
	configs := []struct {
		label string
		packs bool
		fsync string
	}{
		{"packs=off fsync=none", false, "none"},
		{"packs=on  fsync=none", true, "none"},
		{"packs=on  fsync=always", true, "always"},
		{"packs=on  fsync=group", true, "group"},
	}
	t := &Table{
		Caption: "E17. Small-edit commit storm: packfile batching and fsync policy",
		Headers: []string{"config", "wall", "commits/s", "files/commit", "fsyncs/commit", "pack appends", "pack dead space", "archive KB"},
	}
	var baseline float64
	for _, c := range configs {
		r, err := batchedRound(c.packs, c.fsync)
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", c.label, err)
		}
		commitsPerSec := float64(r.commits) / r.wall.Seconds()
		if baseline == 0 {
			baseline = commitsPerSec
		}
		t.AddRow(
			c.label,
			Dur(r.wall),
			fmt.Sprintf("%.0f (%.2fx)", commitsPerSec, commitsPerSec/baseline),
			fmt.Sprintf("%.3f", float64(r.files)/float64(r.commits)),
			fmt.Sprintf("%.2f", float64(r.fsyncs)/float64(r.commits)),
			fmt.Sprintf("%d", r.packAppends),
			fmt.Sprintf("%.1f KiB", float64(r.packDead)/1024),
			fmt.Sprintf("%.0f", float64(r.archiveBytes)/1024),
		)
	}
	t.Note("%d sessions x %d commits of %dB edits to private %dKB rfd files; every commit archives ~1 small blob + 1 catalog record", BatchSessions, BatchCommits, BatchEditBytes, BatchFileKB)
	t.Note("packs=off costs ~1 created file per commit; packs=on appends to shared packfiles — files/commit collapses to pack creation only")
	t.Note("fsync=always flushes per append; fsync=group coalesces concurrent committers behind shared fdatasyncs (fewer fsyncs/commit, higher commits/s at the same power-loss guarantee per commit barrier)")
	return []*Table{t}, nil
}

// batchedRound drives one commit storm through the full stack and collects
// the write-path counters.
func batchedRound(packs bool, fsync string) (batchedResult, error) {
	var r batchedResult
	fileSize := int64(BatchFileKB) << 10
	editSize := int64(BatchEditBytes)
	if editSize > fileSize {
		editSize = fileSize
	}

	dir := BatchDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dlarchive-e17-*")
		if err != nil {
			return r, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		sub, err := os.MkdirTemp(dir, "round-*")
		if err != nil {
			return r, err
		}
		dir = sub
	}

	packThreshold := int64(0) // chunkdisk default: packs on
	if !packs {
		packThreshold = -1
	}
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:                 "fs1",
			OpenWait:             30 * time.Second,
			ArchiveDir:           dir,
			ArchiveFsync:         fsync,
			ArchivePackThreshold: packThreshold,
		}},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return r, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return r, err
	}
	sys.DB.MustExec(`CREATE TABLE storm (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	paths := make([]string, BatchSessions)
	for i := range paths {
		paths[i] = fmt.Sprintf("/storm/f%d.bin", i)
		content := workload.Content(workload.RNG(int64(7000+i)), int(fileSize))
		if err := seedOwned(srv, paths[i], content, expUID); err != nil {
			return r, err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO storm VALUES (%d, DLVALUE('dlfs://fs1%s'))`, i, paths[i])); err != nil {
			return r, err
		}
	}

	// Baseline the counters after seeding/linking (v0 archives included the
	// whole file; the storm is what we measure).
	srv.DLFM.WaitArchives()
	tier0 := srv.Archive.Tier()
	chunk0, cat0 := srv.Archive.Fsyncs()
	new0 := srv.Archive.Dedup().NewBytes

	var wg sync.WaitGroup
	errCh := make(chan error, BatchSessions)
	start := time.Now()
	for w := 0; w < BatchSessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sys.NewSession(expUID)
			rng := workload.RNG(int64(7900 + w))
			for i := 0; i < BatchCommits; i++ {
				row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM storm WHERE id = %d`, w))
				if err != nil {
					errCh <- err
					return
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					errCh <- err
					return
				}
				edit := workload.Content(rng, int(editSize))
				off := (int64(i*13+w*7) * editSize) % (fileSize - editSize + 1)
				if _, err := f.WriteAt(off, edit); err != nil {
					errCh <- err
					return
				}
				if err := f.Close(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	srv.DLFM.WaitArchives()
	r.wall = time.Since(start)
	select {
	case err := <-errCh:
		return r, err
	default:
	}

	tier := srv.Archive.Tier()
	chunk, cat := srv.Archive.Fsyncs()
	r.commits = BatchSessions * BatchCommits
	r.files = tier.FilesCreated - tier0.FilesCreated
	r.fsyncs = (chunk - chunk0) + (cat - cat0)
	r.packAppends = tier.PackAppends - tier0.PackAppends
	r.packDead = tier.PackDeadBytes - tier0.PackDeadBytes
	r.spills = tier.Spills - tier0.Spills
	r.archiveBytes = srv.Archive.Dedup().NewBytes - new0
	return r, nil
}
