package harness

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
	"datalinks/internal/retry"
	"datalinks/internal/upcall"
)

func init() {
	Register(Experiment{
		ID:    "E20",
		Title: "Chaos soak: committed updates survive an unreliable upcall network",
		Paper: "The paper's transactional file-update guarantee (open=begin, close=commit) must hold when the DLFS↔DLFM channel is a real, faulty network: message loss, connection resets, and latency spikes may slow clients down but can never lose an acknowledged commit, hang a client, or leave the daemon unable to drain.",
		Run:   runE20,
	})
}

// The E20 knobs, exported so cmd/dlbench can sweep them from the command
// line. N sessions each drive committed in-place updates to their own linked
// file over real TCP sockets while the Chaos injector drops, resets, and
// delays wire messages with the given probabilities.
var (
	ChaosSessions  = 8
	ChaosOps       = 25 // update attempts per session
	ChaosDropProb  = 0.06
	ChaosResetProb = 0.03
	ChaosDelayProb = 0.15
	ChaosSeed      = int64(20)
)

// chaosContent encodes a session's update so verification can recover the
// sequence number from the file bytes alone.
func chaosContent(session, seq int) []byte {
	return []byte(fmt.Sprintf("s%d-seq%06d chaos soak payload", session, seq))
}

// chaosSeq parses the sequence number back out of file content (-1: not a
// chaos payload).
func chaosSeq(content []byte) int {
	parts := strings.SplitN(string(content), " ", 2)
	i := strings.Index(parts[0], "-seq")
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(parts[0][i+4:])
	if err != nil {
		return -1
	}
	return n
}

// runE20 soaks the TCP upcall plane under injected faults, then proves the
// commit guarantee: every acknowledged commit is durable (the final content
// is never OLDER than the last ack — newer is legal, because a commit whose
// ack was lost on the wire still committed), the daemon drains cleanly, and
// no client hung.
func runE20() ([]*Table, error) {
	ch := &upcall.Chaos{
		Seed:      ChaosSeed,
		DropProb:  ChaosDropProb,
		ResetProb: ChaosResetProb,
		DelayDist: upcall.Delay{Prob: ChaosDelayProb, Min: 200 * time.Microsecond, Max: 2 * time.Millisecond},
	}
	const opTimeout = 15 * time.Second
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name: "fs1",
			// Short OpenWait: a write-open retried after a lost ack hits
			// "busy" against its own ghost open and must fail fast so the
			// session janitor can abort the ghost and move on.
			OpenWait:   50 * time.Millisecond,
			TCPUpcalls: true,
			// Tracing on: the soak doubles as the injected-vs-real latency
			// attribution check (chaos_delay_ms lands on wire spans).
			Trace:         true,
			TraceCapacity: 4096,
			UpcallNet: &upcall.NetConfig{Client: upcall.ClientConfig{
				PoolSize:       4,
				AttemptTimeout: 150 * time.Millisecond,
				OpTimeout:      opTimeout,
				Retry:          retry.Policy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
				Breaker:        &retry.BreakerConfig{Threshold: 64, Cooldown: 100 * time.Millisecond},
				Chaos:          ch,
			}},
		}},
		LockTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE soak (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY NO, doc_size INT)`)
	if err := srv.Phys.MkdirAll("/c", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		return nil, err
	}
	paths := make([]string, ChaosSessions)
	for i := 0; i < ChaosSessions; i++ {
		paths[i] = fmt.Sprintf("/c/f%d.bin", i)
		if err := seedOwned(srv, paths[i], chaosContent(i, 0), expUID); err != nil {
			return nil, err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO soak VALUES (%d, DLVALUE('dlfs://fs1%s'), NULL)`, i, paths[i])); err != nil {
			return nil, err
		}
	}

	// Soak. Each session tracks the newest sequence number the system
	// ACKNOWLEDGED (a clean Close return). An op that fails anywhere is
	// unacked: the janitor aborts any ghost in-update state and the session
	// moves on. At-least-once delivery means a commit can land without its
	// ack, so acked is a lower bound on the final content, never an upper.
	type sessionResult struct {
		acked   int
		acks    int
		failed  int
		aborts  int
		maxOp   time.Duration
		samples []time.Duration
	}
	results := make([]sessionResult, ChaosSessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < ChaosSessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := sys.NewSession(expUID)
			r := &results[id]
			for seq := 1; seq <= ChaosOps; seq++ {
				opStart := time.Now()
				err := func() error {
					row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM soak WHERE id = %d`, id))
					if err != nil {
						return err
					}
					f, err := sess.OpenWrite(row[0].S)
					if err != nil {
						// Possibly a ghost open from a lost write-open ack:
						// abort it and retry the open once.
						if aerr := srv.DLFM.AbortUpdateByPath(paths[id]); aerr == nil {
							r.aborts++
						}
						f, err = sess.OpenWrite(row[0].S)
						if err != nil {
							return err
						}
					}
					if err := f.WriteAll(chaosContent(id, seq)); err != nil {
						_ = f.Abort()
						return err
					}
					return f.Close()
				}()
				d := time.Since(opStart)
				r.samples = append(r.samples, d)
				if d > r.maxOp {
					r.maxOp = d
				}
				if err == nil {
					r.acked = seq
					r.acks++
				} else {
					r.failed++
					// The commit may or may not have applied; clear any
					// ghost in-update state so the next op starts clean.
					if aerr := srv.DLFM.AbortUpdateByPath(paths[id]); aerr == nil {
						r.aborts++
					}
				}
			}
			// A trailing unacked op can leave the file mid-update; roll it
			// back so the verification below sees committed state only.
			if aerr := srv.DLFM.AbortUpdateByPath(paths[id]); aerr == nil {
				r.aborts++
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Stop injecting, drain the daemon gracefully, then verify.
	ch.Enable(false)
	drainStart := time.Now()
	drainErr := srv.UpcallServer().Drain(10 * time.Second)
	drainWall := time.Since(drainStart)
	srv.DLFM.WaitArchives()

	var lost, totalAcks, totalFails, totalAborts int
	var allSamples []time.Duration
	var maxOp time.Duration
	for i := range results {
		r := &results[i]
		totalAcks += r.acks
		totalFails += r.failed
		totalAborts += r.aborts
		allSamples = append(allSamples, r.samples...)
		if r.maxOp > maxOp {
			maxOp = r.maxOp
		}
		content, err := srv.Phys.ReadFile(paths[i])
		if err != nil {
			return nil, fmt.Errorf("E20: read back %s: %w", paths[i], err)
		}
		if got := chaosSeq(content); got < r.acked {
			lost++
		}
	}
	s := Summarize(allSamples)

	t := &Table{
		Caption: "E20. Chaos soak: committed-update safety under an unreliable network",
		Headers: []string{"sessions", "ops/sess", "acked commits", "failed ops", "lost commits", "wall", "ops/s", "p50", "p95", "p99", "max op"},
	}
	t.AddRow(
		fmt.Sprintf("%d", ChaosSessions),
		fmt.Sprintf("%d", ChaosOps),
		fmt.Sprintf("%d", totalAcks),
		fmt.Sprintf("%d", totalFails),
		fmt.Sprintf("%d", lost),
		Dur(wall),
		fmt.Sprintf("%.0f", float64(ChaosSessions*ChaosOps)/wall.Seconds()),
		Dur(s.P50), Dur(s.P95), Dur(quantile(allSamples, 0.99)), Dur(maxOp),
	)
	t.Note("fault mix: drop %.0f%%, reset %.0f%%, delay %.0f%% of 0.2–2ms (seed %d); a failed op is an update whose ack never arrived — safety demands it never rolls back an EARLIER acked commit",
		ChaosDropProb*100, ChaosResetProb*100, ChaosDelayProb*100, ChaosSeed)
	t.Note("every op is bounded by the client's %v op deadline — max observed %v means zero hung clients", opTimeout, Dur(maxOp))

	st := ch.Stats()
	reg := srv.Transport.Metrics()
	ft := &Table{
		Caption: "E20b. Injected faults and the resilience machinery that absorbed them",
		Headers: []string{"drops", "resets", "delays", "retries", "giveups", "breaker opens", "overload rejects", "conns retired", "ghost aborts", "drain"},
	}
	drainCell := Dur(drainWall) + " clean"
	if drainErr != nil {
		drainCell = "TIMED OUT"
	}
	ft.AddRow(
		fmt.Sprintf("%d", st.Drops),
		fmt.Sprintf("%d", st.Resets),
		fmt.Sprintf("%d", st.Delays),
		fmt.Sprintf("%d", reg.Counter("upcall.retries").Value()),
		fmt.Sprintf("%d", reg.Counter("upcall.giveups").Value()),
		fmt.Sprintf("%d", reg.Counter("upcall.breaker_open").Value()),
		fmt.Sprintf("%d", reg.Counter("upcall.inflight_rejected").Value()),
		fmt.Sprintf("%d", reg.Counter("upcall.conns_retired").Value()),
		fmt.Sprintf("%d", totalAborts),
		drainCell,
	)
	ft.Note("a ghost abort clears in-update state left by an op whose request was applied but whose ack was lost (at-least-once delivery)")

	// Latency attribution: every trace separates injected wire delay
	// (chaos_delay_ms attrs) from real work. Injected time is part of the
	// observed wall time, so per trace the sum over wire spans can never
	// exceed the root duration — if it does, the attribution is lying.
	traced, withInjected, attrViolations := 0, 0, 0
	var worst string
	for _, tr := range srv.Obs.Recent(4096) {
		traced++
		injected := time.Duration(0)
		for _, w := range tr.Root().FindAll("wire") {
			if v, ok := w.Attr("chaos_delay_ms"); ok {
				if ms, ok := v.(float64); ok {
					injected += time.Duration(ms * float64(time.Millisecond))
				}
			}
		}
		if injected == 0 {
			continue
		}
		withInjected++
		if injected > tr.Duration()+time.Millisecond {
			attrViolations++
			if worst == "" {
				worst = fmt.Sprintf("trace %d op=%s injected=%v wall=%v", tr.ID(), tr.Op(), injected, tr.Duration())
			}
		}
	}
	ft.Note("trace attribution: %d traces retained, %d carry injected wire delay, %d violate injected<=wall", traced, withInjected, attrViolations)

	if lost > 0 {
		return []*Table{t, ft}, fmt.Errorf("E20 FAILED: %d file(s) ended OLDER than their last acknowledged commit", lost)
	}
	if drainErr != nil {
		return []*Table{t, ft}, fmt.Errorf("E20 FAILED: graceful drain did not complete: %w", drainErr)
	}
	if maxOp > opTimeout+opTimeout/2 {
		return []*Table{t, ft}, fmt.Errorf("E20 FAILED: an op took %v, beyond the %v deadline — a client hung", maxOp, opTimeout)
	}
	if st.Delays > 0 && withInjected == 0 {
		return []*Table{t, ft}, fmt.Errorf("E20 FAILED: chaos injected %d delays but no trace carries a chaos_delay_ms wire attr", st.Delays)
	}
	if attrViolations > 0 {
		return []*Table{t, ft}, fmt.Errorf("E20 FAILED: %d trace(s) report more injected delay than observed wall time (first: %s)", attrViolations, worst)
	}
	return []*Table{t, ft}, nil
}
