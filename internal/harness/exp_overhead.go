package harness

import (
	"fmt"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/vfs"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E3",
		Title: "Host-side overhead: DATALINK retrieval incl. token generation (§3.2)",
		Paper: "\"less than 3ms overhead for retrieving a DATALINK column, including access token generation\" (200MHz PowerPC 604).",
		Run:   runE3,
	})
	Register(Experiment{
		ID:    "E4",
		Title: "File-side overhead: open/read/close through DLFS vs native (§3.2)",
		Paper: "\"DLFS layer and token validation add about 1ms to open, read, and close\"; \"<1% overhead for reading a 1MB file, ~3% CPU-only\".",
		Run:   runE4,
	})
	Register(Experiment{
		ID:    "E5",
		Title: "Open response time per control mode (§5 claim)",
		Paper: "\"only minor difference in the response time between opening a DataLinks managed file and a file system managed file\".",
		Run:   runE5,
	})
}

// runE3 compares SELECT of a plain VARCHAR column against a DATALINK column
// with DLURLCOMPLETE (token generation), isolating the host-side cost.
func runE3() ([]*Table, error) {
	sys, srv, err := expSystem(false, 0)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	const rows = 2000
	rng := workload.RNG(3)
	pop, err := workload.Seed(srv.Phys, "/files", rows, 64, expUID, rng)
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, plain VARCHAR, doc DATALINK MODE RDD RECOVERY NO)`)
	for i := 0; i < rows; i++ {
		if _, err := sys.DB.Exec(`INSERT INTO docs VALUES (?, ?, ?)`,
			sqlmini.Int(int64(i)), sqlmini.Str(pop.URL("fs1", i)), sqlmini.Str(pop.URL("fs1", i))); err != nil {
			return nil, err
		}
	}
	const probes = 2000
	measure := func(stmt string) (Stats, error) {
		i := 0
		return Measure(probes, func() error {
			id := sqlmini.Int(int64(i % rows))
			i++
			_, err := sys.DB.QueryRow(stmt, id)
			return err
		})
	}
	plain, err := measure(`SELECT plain FROM docs WHERE id = ?`)
	if err != nil {
		return nil, err
	}
	link, err := measure(`SELECT doc FROM docs WHERE id = ?`)
	if err != nil {
		return nil, err
	}
	tokenized, err := measure(`SELECT DLURLCOMPLETE(doc) FROM docs WHERE id = ?`)
	if err != nil {
		return nil, err
	}
	writeTok, err := measure(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = ?`)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Caption: "E3. Per-row SELECT latency at the host database (2000 probes)",
		Headers: []string{"query", "mean", "p50", "p95", "overhead vs plain"},
	}
	base := float64(plain.Mean)
	add := func(name string, s Stats) {
		t.AddRow(name, Dur(s.Mean), Dur(s.P50), Dur(s.P95),
			fmt.Sprintf("+%s", Dur(time.Duration(float64(s.Mean)-base))))
	}
	add("plain VARCHAR", plain)
	add("DATALINK (no token)", link)
	add("DLURLCOMPLETE (read token)", tokenized)
	add("DLURLCOMPLETEWRITE (write token)", writeTok)
	t.Note("paper reported <3ms absolute on 1998 hardware; the reproducible shape is a small constant additive cost for token generation (HMAC-SHA256)")
	return []*Table{t}, nil
}

// runE4 measures open+read+close of files of growing size, native vs DLFS
// with a read token (rdb), at two injected IPC costs.
func runE4() ([]*Table, error) {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	latencies := []time.Duration{0, time.Millisecond}
	var tables []*Table
	for _, ipc := range latencies {
		sys, srv, err := expSystem(false, ipc)
		if err != nil {
			return nil, err
		}
		sys.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RDB RECOVERY NO)`)
		t := &Table{
			Caption: fmt.Sprintf("E4. open+read+close, native vs DataLinks(rdb, read token), IPC latency %v", ipc),
			Headers: []string{"file size", "native", "dlfs+token", "overhead", "overhead %", "upcalls/op"},
		}
		for idx, size := range sizes {
			path := fmt.Sprintf("/data/f%d.bin", idx)
			twin := fmt.Sprintf("/data/n%d.bin", idx) // unlinked twin: native baseline
			content := workload.Content(workload.RNG(int64(idx)), size)
			if err := seedOwned(srv, path, content, expUID); err != nil {
				return nil, err
			}
			if err := seedOwned(srv, twin, content, expUID); err != nil {
				return nil, err
			}
			if _, err := sys.DB.Exec(`INSERT INTO docs VALUES (?, ?)`,
				sqlmini.Int(int64(idx)), sqlmini.Str("dlfs://fs1"+path)); err != nil {
				return nil, err
			}
			probes := 60
			if size >= 4<<20 {
				probes = 20
			}
			buf := make([]byte, 128<<10)
			readAllFDs := func(lfs *vfs.LFS, name string, cred fs.Cred) error {
				fd, err := lfs.Open(cred, name, fs.AccessRead)
				if err != nil {
					return err
				}
				off := int64(0)
				for {
					n, err := lfs.ReadAt(fd, off, buf)
					if err != nil {
						lfs.Close(fd)
						return err
					}
					if n == 0 {
						break
					}
					off += int64(n)
				}
				return lfs.Close(fd)
			}
			native, err := Measure(probes, func() error {
				return readAllFDs(srv.NativeLFS, twin, fs.Cred{UID: expUID})
			})
			if err != nil {
				return nil, err
			}
			row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM docs WHERE id = ?`, sqlmini.Int(int64(idx)))
			if err != nil {
				return nil, err
			}
			_, name, err := core.SplitURL(row[0].S)
			if err != nil {
				return nil, err
			}
			srv.Transport.Reset()
			managed, err := Measure(probes, func() error {
				return readAllFDs(srv.LFS, name, fs.Cred{UID: expUID})
			})
			if err != nil {
				return nil, err
			}
			upcallsPerOp := float64(srv.Transport.Calls()) / float64(probes)
			over := time.Duration(float64(managed.Mean) - float64(native.Mean))
			pct := (float64(managed.Mean) - float64(native.Mean)) / float64(native.Mean)
			t.AddRow(byteSize(size), Dur(native.Mean), Dur(managed.Mean), Dur(over), Pct(pct),
				fmt.Sprintf("%.1f", upcallsPerOp))
		}
		t.Note("fixed per-open cost (token validation + open check + close purge) amortizes as the file grows — the paper's <1%%-at-1MB shape")
		t.Note("absolute ratios differ because the in-memory FS reads at RAM speed; against the paper's 1998 testbed (1MB read ≈ 100ms of CPU+I/O) the same fixed cost is <1%%")
		tables = append(tables, t)
		sys.Close()
	}
	return tables, nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}

// runE5 measures bare open+close latency and upcall counts per control mode.
func runE5() ([]*Table, error) {
	t := &Table{
		Caption: "E5. open+close response time and upcalls by mode (1000 probes, 4KB file)",
		Headers: []string{"mode", "access", "mean", "p95", "upcalls/op", "notes"},
	}
	type probe struct {
		mode  string
		write bool
		notes string
	}
	probes := []probe{
		{"unlinked", false, "baseline: plain file"},
		{"unlinked", true, "baseline: plain file"},
		{"rff", false, "FS-controlled read"},
		{"rff", true, "FS-controlled write"},
		{"rfb", false, "FS-controlled read"},
		{"rdb", false, "token read"},
		{"rfd", false, "FS-controlled read"},
		{"rfd", true, "update transaction"},
		{"rdd", false, "token read"},
		{"rdd", true, "update transaction"},
	}
	for _, p := range probes {
		sys, srv, err := expSystem(false, 0)
		if err != nil {
			return nil, err
		}
		path := "/data/p.bin"
		if err := seedOwned(srv, path, workload.Content(workload.RNG(9), 4096), expUID); err != nil {
			return nil, err
		}
		url := "dlfs://fs1" + path
		if p.mode != "unlinked" {
			sys.DB.MustExec(fmt.Sprintf(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE %s RECOVERY YES)`, p.mode))
			if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE(?))`, sqlmini.Str(url)); err != nil {
				return nil, err
			}
			fn := "DLURLCOMPLETE"
			if p.write {
				fn = "DLURLCOMPLETEWRITE"
			}
			row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT %s(doc) FROM t WHERE id = 1`, fn))
			switch {
			case err == nil:
				url = row[0].S
			case p.write && p.mode == "rff":
				// rff writes are FS-controlled: no token, bare URL works.
			default:
				sys.Close()
				continue // mode does not support this access (e.g. rfb write)
			}
		}
		sess := sys.NewSession(expUID)
		const n = 1000
		srv.Transport.Reset()
		stats, err := Measure(n, func() error {
			var f *core.File
			var err error
			if p.write {
				f, err = sess.OpenWrite(url)
			} else {
				f, err = sess.OpenRead(url)
			}
			if err != nil {
				return err
			}
			return f.Close()
		})
		if err != nil {
			return nil, fmt.Errorf("E5 %s/%v: %w", p.mode, p.write, err)
		}
		access := "read"
		if p.write {
			access = "write"
		}
		t.AddRow(p.mode, access, Dur(stats.Mean), Dur(stats.P95),
			fmt.Sprintf("%.1f", float64(srv.Transport.Calls())/float64(n)), p.notes)
		sys.Close()
	}
	t.Note("reads of files not under full DB control make 0 upcalls (ownership-check optimization, §4)")
	t.Note("token-path opens cost lookup-validate + open-check + close = 3 upcalls; rfd writes add the lazy native attempt first")
	return []*Table{t}, nil
}
