package harness

import (
	"fmt"
	"os"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E15",
		Title: "Durable tiered archive: resident memory vs logical bytes, spill/page-in/GC",
		Paper: "§4.4 archives every committed version and §4.2 quarantines rolled-back content. A RAM-resident archive caps how many users/versions a server can hold; with the disk tier, resident memory is bounded by the LRU budget while versions accumulate on disk, restores page chunks back in, and GC reclaims unreferenced chunks and aged quarantine files.",
		Run:   runE15,
	})
}

// The E15 knobs, exported so cmd/dlbench can sweep them from the command
// line.
var (
	TieredFiles    = 3
	TieredFileMB   = 8
	TieredVersions = 10
	TieredEditKB   = 64
	TieredBudgetMB = 4
	TieredDir      = "" // "" = private temp dir, removed afterwards
	TieredCompress = false
)

// runE15 drives the tiered-archive workload: version churn under a bounded
// LRU, rollback restores that page from disk, quarantine TTL expiry, and a
// point-in-time restore whose truncated versions are reclaimed by GC.
func runE15() ([]*Table, error) {
	fileSize := int64(TieredFileMB) << 20
	editSize := int64(TieredEditKB) << 10
	if editSize > fileSize {
		editSize = fileSize
	}
	budget := int64(TieredBudgetMB) << 20

	dir := TieredDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dlarchive-e15-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	const quarantineTTL = 50 * time.Millisecond

	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:                "fs1",
			OpenWait:            30 * time.Second,
			ArchiveDir:          dir,
			ArchiveMemoryBudget: budget,
			ArchiveCompress:     TieredCompress,
			QuarantineTTL:       quarantineTTL,
		}},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE tiered (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)

	paths := make([]string, TieredFiles)
	committed := make([][]byte, TieredFiles)
	for i := 0; i < TieredFiles; i++ {
		paths[i] = fmt.Sprintf("/tiered/f%d.bin", i)
		committed[i] = workload.Content(workload.RNG(int64(i)), int(fileSize))
		if err := seedOwned(srv, paths[i], committed[i], expUID); err != nil {
			return nil, err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO tiered VALUES (%d, DLVALUE('dlfs://fs1%s'))`, i, paths[i])); err != nil {
			return nil, err
		}
	}

	// Phase 1: version churn. Capture a mid-run state id for the later
	// point-in-time restore.
	sess := sys.NewSession(expUID)
	rng := workload.RNG(99)
	var midStateID uint64
	start := time.Now()
	for v := 0; v < TieredVersions; v++ {
		for i := 0; i < TieredFiles; i++ {
			row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM tiered WHERE id = %d`, i))
			if err != nil {
				return nil, err
			}
			f, err := sess.OpenWrite(row[0].S)
			if err != nil {
				return nil, err
			}
			edit := workload.Content(rng, int(editSize))
			off := (int64(v*TieredFiles+i) * editSize * 13) % (fileSize - editSize + 1)
			if _, err := f.WriteAt(off, edit); err != nil {
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			copy(committed[i][off:], edit)
		}
		if v == TieredVersions/2 {
			srv.DLFM.WaitArchives()
			midStateID = sys.Engine.StateID()
		}
	}
	srv.DLFM.WaitArchives()
	churnWall := time.Since(start)
	churn := srv.Archive.Tier()
	dedup := srv.Archive.Dedup()

	// Phase 2: rollbacks. The in-flight junk is quarantined and the last
	// committed version restored — paging its evicted chunks back in.
	for i := 0; i < TieredFiles; i++ {
		row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM tiered WHERE id = %d`, i))
		if err != nil {
			return nil, err
		}
		f, err := sess.OpenWrite(row[0].S)
		if err != nil {
			return nil, err
		}
		if _, err := f.WriteAt(0, []byte("in-flight junk that must be quarantined")); err != nil {
			return nil, err
		}
		if err := f.Abort(); err != nil {
			return nil, err
		}
	}
	restoredOK := 0
	for i := 0; i < TieredFiles; i++ {
		got, err := srv.Phys.ReadFile(paths[i])
		if err != nil {
			return nil, err
		}
		if string(got) == string(committed[i]) {
			restoredOK++
		}
	}
	afterRestore := srv.Archive.Tier()
	quarantined := len(srv.DLFM.QuarantinedFiles())

	// Phase 3: quarantine TTL expiry.
	time.Sleep(2 * quarantineTTL)
	expired := srv.DLFM.SweepQuarantine()

	// Phase 4: point-in-time restore to the mid-run state; the truncated
	// versions' chunks become unreferenced and GC reclaims their files.
	diskBefore := srv.Archive.Tier().DiskBlobs
	if err := srv.DLFM.RestoreAsOf(midStateID); err != nil {
		return nil, err
	}
	gcFreed := srv.Archive.GCNow()
	final := srv.Archive.Tier()

	mb := func(b int64) string { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
	t := &Table{
		Caption: "E15. Durable tiered archive (disk spill, bounded memory, GC)",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("files x versions", fmt.Sprintf("%d x %d (+v0 each)", TieredFiles, TieredVersions))
	t.AddRow("linked file size / edit size", fmt.Sprintf("%s / %s", mb(fileSize), mb(editSize)))
	t.AddRow("churn wall time", Dur(churnWall))
	t.AddRow("logical archive bytes", mb(dedup.LogicalBytes))
	t.AddRow("on-disk archive bytes (physical)", mb(churn.DiskBytes))
	t.AddRow("on-disk archive bytes (logical)", fmt.Sprintf("%s (compress: %v)", mb(churn.DiskLogicalBytes), TieredCompress))
	t.AddRow("LRU budget", mb(budget))
	t.AddRow("archive resident bytes", fmt.Sprintf("%s (bounded: %v)", mb(churn.ResidentBytes), churn.ResidentBytes <= budget))
	t.AddRow("chunks spilled to disk", fmt.Sprintf("%d", churn.Spills))
	t.AddRow("LRU evictions", fmt.Sprintf("%d", churn.Evictions))
	t.AddRow("pack appends / pack files", fmt.Sprintf("%d / %d", churn.PackAppends, churn.PackFiles))
	t.AddRow("pack dead space / compactions", fmt.Sprintf("%d B / %d", churn.PackDeadBytes, churn.PackCompactions))
	chunkFs, catFs := srv.Archive.Fsyncs()
	t.AddRow("fsyncs (chunkdisk / catalog)", fmt.Sprintf("%d / %d", chunkFs, catFs))
	t.AddRow("rollbacks restored from archive", fmt.Sprintf("%d/%d verified byte-identical", restoredOK, TieredFiles))
	t.AddRow("chunks paged in by restores", fmt.Sprintf("%d", afterRestore.PageIns-churn.PageIns))
	t.AddRow("files quarantined", fmt.Sprintf("%d", quarantined))
	t.AddRow("quarantine files expired by GC", fmt.Sprintf("%d", expired))
	t.AddRow("disk chunks before/after PIT restore + GC", fmt.Sprintf("%d / %d (GC freed %d)", diskBefore, final.DiskBlobs, gcFreed))
	t.Note("resident bytes stay under the LRU budget no matter how many versions accumulate; the full deduplicated history lives on disk")
	t.Note("restores and AsOf page evicted chunks back in on demand; GC unlinks chunk files no surviving version references and expires aged quarantine files")
	return []*Table{t}, nil
}
