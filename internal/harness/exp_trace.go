package harness

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
	"datalinks/internal/obs"
	"datalinks/internal/retry"
	"datalinks/internal/upcall"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E22",
		Title: "Tracing plane: overhead on the hot path, completeness of one commit's story",
		Paper: "Per-request attribution only earns its keep if it is cheap enough to leave on and complete enough to trust: the trace of a commit must actually contain the wire hop, the lock wait, the archive barrier, and the fsync round it claims to decompose — verified, not assumed.",
		Run:   runE22,
	})
}

// The E22 knobs, exported so cmd/dlbench can sweep them from the command
// line.
var (
	// TraceOverheadRounds is how many interleaved rounds of the E13 hot path
	// run per mode; the best round of each mode is compared.
	TraceOverheadRounds = 5
	// TraceOverheadBudget is the maximum throughput the tracer may cost on
	// the E13 hot path (fraction of untraced ops/s).
	TraceOverheadBudget = 0.05
	// TraceSessions × TraceCommits drive the completeness phase: every
	// sampled commit trace must tell the whole session→fsync story.
	TraceSessions = 4
	TraceCommits  = 15
)

// requiredCommitSpans is the span set a commit trace must contain, stitched
// across the client/server boundary, for E22 to pass.
var requiredCommitSpans = []string{"wire", "lock", "archive.barrier", "fsync"}

func runE22() ([]*Table, error) {
	overheadTable, err := e22Overhead()
	if err != nil {
		return []*Table{overheadTable}, err
	}
	completeTable, err := e22Completeness()
	if err != nil {
		return []*Table{overheadTable, completeTable}, err
	}
	slowTable, err := e22SlowOp()
	return []*Table{overheadTable, completeTable, slowTable}, err
}

// e22Overhead prices the tracer on the E13 hot path: interleaved rounds with
// tracing off and on, best round of each compared. FAILS beyond the budget.
func e22Overhead() (*Table, error) {
	sessions := ConcurrencySessions[len(ConcurrencySessions)-1]
	savedTrace := ConcurrencyTrace
	defer func() { ConcurrencyTrace = savedTrace }()

	// One discarded warmup round, then interleaved measured rounds: noise on
	// a loaded machine (CI, the full test suite) dwarfs the real cost per
	// round, so each mode keeps its best round — the closest approximation
	// of its uncontended ceiling.
	if _, _, _, err := concurrencyRound(sessions); err != nil {
		return nil, fmt.Errorf("E22 warmup round: %w", err)
	}
	best := map[bool]float64{}
	for round := 0; round < TraceOverheadRounds; round++ {
		for _, traced := range []bool{false, true} {
			ConcurrencyTrace = traced
			wall, ops, _, err := concurrencyRound(sessions)
			if err != nil {
				return nil, fmt.Errorf("E22 overhead round (traced=%v): %w", traced, err)
			}
			if rate := float64(ops) / wall.Seconds(); rate > best[traced] {
				best[traced] = rate
			}
		}
	}
	overhead := 1 - best[true]/best[false]

	t := &Table{
		Caption: "E22a. Tracing overhead on the E13 hot path",
		Headers: []string{"mode", "sessions", "best ops/s", "overhead"},
	}
	t.AddRow("untraced", fmt.Sprintf("%d", sessions), fmt.Sprintf("%.0f", best[false]), "—")
	t.AddRow("traced", fmt.Sprintf("%d", sessions), fmt.Sprintf("%.0f", best[true]), fmt.Sprintf("%.1f%%", overhead*100))
	t.Note("best of %d interleaved rounds per mode; every op starts a trace (open/read/write/commit span trees into the bounded ring)", TraceOverheadRounds)
	t.Note("budget: %.0f%% — beyond it the experiment fails", TraceOverheadBudget*100)

	// The budget is a statement about the uninstrumented system; the race
	// detector multiplies the cost of every span mutex, so the gate (like
	// E21's scaling gate) only applies without it.
	if overhead > TraceOverheadBudget && !raceEnabled {
		return t, fmt.Errorf("E22 FAILED: tracing costs %.1f%% of hot-path throughput (budget %.0f%%)",
			overhead*100, TraceOverheadBudget*100)
	}
	return t, nil
}

// e22Completeness commits over real TCP with tracing on and then audits every
// sampled commit trace for the full story: a wire span (the client attempt),
// a lock span (Sync-table serialization), the archive barrier, and the fsync
// round — stitched across the client/server boundary, in one trace.
func e22Completeness() (*Table, error) {
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:          "fs1",
			OpenWait:      10 * time.Second,
			TCPUpcalls:    true,
			Trace:         true,
			TraceCapacity: 4 * TraceSessions * TraceCommits,
		}},
		LockTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE tr (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY NO, doc_size INT)`)
	if err := srv.Phys.MkdirAll("/t", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		return nil, err
	}
	for i := 0; i < TraceSessions; i++ {
		path := fmt.Sprintf("/t/f%d.bin", i)
		if err := seedOwned(srv, path, workload.UniformContent(2048, i), expUID); err != nil {
			return nil, err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO tr VALUES (%d, DLVALUE('dlfs://fs1%s'), NULL)`, i, path)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < TraceSessions; i++ {
		sess := sys.NewSession(expUID)
		for seq := 0; seq < TraceCommits; seq++ {
			row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM tr WHERE id = %d`, i))
			if err != nil {
				return nil, err
			}
			f, err := sess.OpenWrite(row[0].S)
			if err != nil {
				return nil, err
			}
			if _, err := f.WriteAt(0, []byte{byte(seq)}); err != nil {
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}
	// The archive span subtree (lock, barrier, fsync) completes on the async
	// archiver goroutine; the audit must not race it.
	srv.DLFM.WaitArchives()

	commits, complete := 0, 0
	missing := map[string]int{}
	var firstIncomplete string
	unstitched := 0
	for _, tr := range srv.Obs.Recent(4 * TraceSessions * TraceCommits) {
		if tr.Op() != "commit" {
			continue
		}
		commits++
		ok := true
		for _, name := range requiredCommitSpans {
			if tr.Root().Find(name) == nil {
				missing[name]++
				ok = false
			}
		}
		// Stitched means the server-side spans hang UNDER the client's wire
		// span — one tree across the TCP boundary, not two siblings.
		wire := tr.Root().Find("wire")
		if wire == nil || wire.Find("server") == nil || wire.Find("dlfm") == nil {
			unstitched++
			ok = false
		}
		if ok {
			complete++
		} else if firstIncomplete == "" {
			var b strings.Builder
			obs.RenderText(&b, tr)
			firstIncomplete = b.String()
		}
	}

	t := &Table{
		Caption: "E22b. Commit-trace completeness over real TCP (wire → lock → archive barrier → fsync)",
		Headers: []string{"commit traces", "complete", "unstitched", "missing spans"},
	}
	missNote := "none"
	if len(missing) > 0 {
		var parts []string
		for _, name := range requiredCommitSpans {
			if missing[name] > 0 {
				parts = append(parts, fmt.Sprintf("%s×%d", name, missing[name]))
			}
		}
		missNote = strings.Join(parts, " ")
	}
	t.AddRow(fmt.Sprintf("%d", commits), fmt.Sprintf("%d", complete), fmt.Sprintf("%d", unstitched), missNote)
	t.Note("required spans: %s — each must appear in the SAME trace as the session-side commit root", strings.Join(requiredCommitSpans, ", "))

	want := TraceSessions * TraceCommits
	if commits != want {
		return t, fmt.Errorf("E22 FAILED: expected %d commit traces in the ring, found %d", want, commits)
	}
	if complete != commits {
		return t, fmt.Errorf("E22 FAILED: %d/%d commit traces incomplete; first:\n%s", commits-complete, commits, firstIncomplete)
	}
	return t, nil
}

// e22SlowOp slows one commit down with injected wire delay and checks the
// operator-facing story: the commit surfaces in the slowest-traces list and
// in the slow-op JSON log, with the delay attributed to the wire span — not
// to the DLFM work that didn't cause it.
func e22SlowOp() (*Table, error) {
	const delayMin, delayMax = 8 * time.Millisecond, 10 * time.Millisecond
	const threshold = 4 * time.Millisecond
	var slowLog bytes.Buffer
	sys, err := core.NewSystem(core.Config{
		Servers: []core.ServerConfig{{
			Name:            "fs1",
			OpenWait:        10 * time.Second,
			TCPUpcalls:      true,
			Trace:           true,
			SlowOpThreshold: threshold,
			SlowOpLog:       &slowLog,
			UpcallNet: &upcall.NetConfig{Client: upcall.ClientConfig{
				PoolSize:       2,
				AttemptTimeout: 2 * time.Second,
				OpTimeout:      10 * time.Second,
				Retry:          retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
				Chaos:          &upcall.Chaos{DelayDist: upcall.Delay{Prob: 1, Min: delayMin, Max: delayMax}},
			}},
		}},
		LockTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE slow (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY NO, doc_size INT)`)
	if err := seedOwned(srv, "/s/slow.bin", []byte("v1"), expUID); err != nil {
		return nil, err
	}
	if _, err := sys.DB.Exec(`INSERT INTO slow VALUES (1, DLVALUE('dlfs://fs1/s/slow.bin'), NULL)`); err != nil {
		return nil, err
	}
	sess := sys.NewSession(expUID)
	row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM slow WHERE id = 1`)
	if err != nil {
		return nil, err
	}
	f, err := sess.OpenWrite(row[0].S)
	if err != nil {
		return nil, err
	}
	if err := f.WriteAll([]byte("v2 slow")); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	srv.DLFM.WaitArchives()

	var slow *obs.Trace
	for _, tr := range srv.Obs.Slowest(16) {
		if tr.Op() == "commit" {
			slow = tr
			break
		}
	}
	t := &Table{
		Caption: "E22c. Slow-op surfacing: a wire-delayed commit, attributed",
		Headers: []string{"commit wall", "wire chaos_delay_ms", "dlfm span", "slow_op log lines"},
	}
	if slow == nil {
		return t, fmt.Errorf("E22 FAILED: the delayed commit never surfaced in the slowest-traces list")
	}
	wire := slow.Root().Find("wire")
	if wire == nil {
		return t, fmt.Errorf("E22 FAILED: slow commit trace has no wire span")
	}
	chaosMS := 0.0
	if v, ok := wire.Attr("chaos_delay_ms"); ok {
		chaosMS, _ = v.(float64)
	}
	dlfmSpan := slow.Root().Find("dlfm")
	if dlfmSpan == nil {
		return t, fmt.Errorf("E22 FAILED: slow commit trace has no dlfm span")
	}
	logLines := 0
	sawCommit := false
	for _, line := range strings.Split(strings.TrimSpace(slowLog.String()), "\n") {
		if strings.Contains(line, `"event":"slow_op"`) {
			logLines++
			if strings.Contains(line, `"op":"commit"`) {
				sawCommit = true
			}
		}
	}
	t.AddRow(Dur(slow.Duration()), fmt.Sprintf("%.2f", chaosMS),
		Dur(dlfmSpan.Duration()), fmt.Sprintf("%d", logLines))
	t.Note("every wire message is delayed %v–%v; threshold %v — the wall time is the network's fault and the trace must say so", delayMin, delayMax, threshold)

	if slow.Duration() < threshold {
		return t, fmt.Errorf("E22 FAILED: slowest commit (%v) is under the %v threshold", slow.Duration(), threshold)
	}
	if chaosMS < float64(delayMin.Milliseconds()) {
		return t, fmt.Errorf("E22 FAILED: wire span reports %.2fms injected delay, expected >= %dms", chaosMS, delayMin.Milliseconds())
	}
	if _, ok := dlfmSpan.Attr("chaos_delay_ms"); ok {
		return t, fmt.Errorf("E22 FAILED: injected delay leaked onto the dlfm span — misattributed")
	}
	if dlfmSpan.Duration() > slow.Duration()/2 {
		return t, fmt.Errorf("E22 FAILED: dlfm span (%v) absorbs most of the commit wall (%v); the delay belongs to the wire", dlfmSpan.Duration(), slow.Duration())
	}
	if !sawCommit {
		return t, fmt.Errorf("E22 FAILED: no slow_op JSON line for the commit (got %d slow_op lines: %q)", logLines, slowLog.String())
	}
	return t, nil
}
