package harness

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/cau"
	"datalinks/internal/cico"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E6",
		Title: "Update disciplines under contention: UIP vs CICO vs CAU (§3)",
		Paper: "§3 argues: CICO's long locks curtail concurrency and cost two extra DB updates; CAU avoids locks but loses updates unless merged carefully; UIP holds an implicit lock only between open and close.",
		Run:   runE6,
	})
	Register(Experiment{
		ID:    "E12",
		Title: "Transaction-boundary ablation: per-write vs open..close (§3.1)",
		Paper: "§3.1 rejects making every fs_readwrite a transaction: useless intermediate versions, per-call upcalls, and heavy archiver load. The open..close boundary is the practical choice.",
		Run:   runE12,
	})
}

// e6Result collects one discipline's outcome.
type e6Result struct {
	name       string
	updates    int64
	busyErrors int64
	lost       int64
	merges     int64
	lockHold   time.Duration
	elapsed    time.Duration
}

// runE6 runs W writers over F files with think time, once per discipline.
func runE6() ([]*Table, error) {
	const (
		writers   = 8
		files     = 4
		updates   = 25 // per writer
		fileSize  = 8 << 10
		thinkTime = 200 * time.Microsecond // "application work" inside the critical window
	)
	var results []e6Result

	// --- UIP: update in place through DataLinks (rfd) ---
	{
		sys, srv, err := expSystem(false, 0)
		if err != nil {
			return nil, err
		}
		sys.DB.MustExec(`CREATE TABLE docs (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT)`)
		rng := workload.RNG(6)
		pop, err := workload.Seed(srv.Phys, "/w", files, fileSize, expUID, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < files; i++ {
			if _, err := sys.DB.Exec(`INSERT INTO docs (id, doc) VALUES (?, DLVALUE(?))`,
				sqlmini.Int(int64(i)), sqlmini.Str(pop.URL("fs1", i))); err != nil {
				return nil, err
			}
		}
		var done, busy int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess := sys.NewSession(expUID)
				z := workload.NewZipf(workload.RNG(int64(100+w)), files)
				for u := 0; u < updates; u++ {
					i := z.Next()
					row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM docs WHERE id = ?`, sqlmini.Int(int64(i)))
					if err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					f, err := sess.OpenWrite(row[0].S)
					if err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					time.Sleep(thinkTime)
					f.WriteAt(0, workload.UniformContent(fileSize, w*1000+u))
					if err := f.Close(); err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					atomic.AddInt64(&done, 1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		srv.DLFM.WaitArchives()
		results = append(results, e6Result{name: "UIP (rfd)", updates: done, busyErrors: busy, elapsed: elapsed})
		sys.Close()
	}

	// --- CICO: check-out locks the file for the whole edit ---
	{
		db := sqlmini.NewDB(sqlmini.Options{LockTimeout: 2 * time.Second})
		phys, arch, pop, err := plainFileSetup(files, fileSize)
		if err != nil {
			return nil, err
		}
		mgr, err := cico.New(db, phys, arch, "fs1", nil)
		if err != nil {
			return nil, err
		}
		var done, busy int64
		var lockHold int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				z := workload.NewZipf(workload.RNG(int64(200+w)), files)
				for u := 0; u < updates; u++ {
					i := z.Next()
					// The check-out is a database lock: contenders must retry
					// until the holder checks in (the paper's concurrency
					// criticism).
					var ticket *cico.Ticket
					var err error
					t0 := time.Now()
					for {
						ticket, err = mgr.CheckOut(fs.UID(expUID), pop.URL("fs1", i))
						if err == nil {
							break
						}
						atomic.AddInt64(&busy, 1)
						time.Sleep(100 * time.Microsecond)
					}
					time.Sleep(thinkTime)
					ticket.Content = workload.UniformContent(fileSize, w*1000+u)
					if err := mgr.CheckIn(ticket); err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					atomic.AddInt64(&lockHold, int64(time.Since(t0)))
					atomic.AddInt64(&done, 1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		res := e6Result{name: "CICO", updates: done, busyErrors: busy, elapsed: elapsed}
		if done > 0 {
			res.lockHold = time.Duration(lockHold / done)
		}
		results = append(results, res)
	}

	// --- CAU blind: private copies, last writer wins ---
	for _, safe := range []bool{false, true} {
		phys, arch, pop, err := plainFileSetup(files, fileSize)
		if err != nil {
			return nil, err
		}
		mgr := cau.New(phys, arch, "fs1", nil)
		var done, busy int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				z := workload.NewZipf(workload.RNG(int64(300+w)), files)
				for u := 0; u < updates; u++ {
					i := z.Next()
					wc, err := mgr.Copy(pop.URL("fs1", i))
					if err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					time.Sleep(thinkTime)
					wc.Content = workload.UniformContent(fileSize, w*1000+u)
					if safe {
						err = mgr.CheckInSafe(wc, func(base, mine, theirs []byte) ([]byte, error) {
							// Whole-file edits: prefer mine, a trivial merge.
							if bytes.Equal(base, theirs) {
								return mine, nil
							}
							return mine, nil
						})
					} else {
						err = mgr.CheckInBlind(wc)
					}
					if err != nil {
						atomic.AddInt64(&busy, 1)
						continue
					}
					atomic.AddInt64(&done, 1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		_, lost, merges, _ := mgr.Stats()
		name := "CAU blind"
		if safe {
			name = "CAU merge"
		}
		results = append(results, e6Result{
			name: name, updates: done, busyErrors: busy, lost: lost, merges: merges, elapsed: elapsed,
		})
	}

	t := &Table{
		Caption: fmt.Sprintf("E6. %d writers x %d updates over %d files (zipf), %v think time",
			writers, updates, files, thinkTime),
		Headers: []string{"discipline", "committed", "busy/conflict", "lost updates", "merges", "mean lock hold", "throughput"},
	}
	for _, r := range results {
		hold := "-"
		if r.lockHold > 0 {
			hold = Dur(r.lockHold)
		}
		t.AddRow(r.name,
			fmt.Sprintf("%d", r.updates),
			fmt.Sprintf("%d", r.busyErrors),
			fmt.Sprintf("%d", r.lost),
			fmt.Sprintf("%d", r.merges),
			hold,
			fmt.Sprintf("%.0f upd/s", float64(r.updates)/r.elapsed.Seconds()))
	}
	t.Note("UIP's implicit lock spans only open..close; CICO's explicit lock spans the whole edit; CAU never blocks but the blind variant loses updates")
	return []*Table{t}, nil
}

// plainFileSetup seeds files outside DataLinks for the baseline disciplines.
func plainFileSetup(files, size int) (*fs.FS, *archive.Store, *workload.Population, error) {
	phys := fs.New()
	arch := archive.New(0, nil)
	pop, err := workload.Seed(phys, "/w", files, size, expUID, workload.RNG(77))
	if err != nil {
		return nil, nil, nil, err
	}
	return phys, arch, pop, nil
}

// runE12 compares the open..close boundary against per-write transactions.
func runE12() ([]*Table, error) {
	writesPerUpdate := []int{1, 4, 16, 64}
	const chunk = 4 << 10

	t := &Table{
		Caption: "E12. W writes to one file: one open..close transaction vs one transaction per write",
		Headers: []string{"W", "boundary", "elapsed", "upcalls", "versions created", "archive jobs"},
	}
	for _, w := range writesPerUpdate {
		for _, perWrite := range []bool{false, true} {
			sys, srv, err := expSystem(false, 0)
			if err != nil {
				return nil, err
			}
			if err := seedOwned(srv, "/d/f.bin", workload.Content(workload.RNG(1), chunk), expUID); err != nil {
				return nil, err
			}
			sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
			if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
				return nil, err
			}
			sess := sys.NewSession(expUID)
			srv.Transport.Reset()
			start := time.Now()
			if perWrite {
				// §3.1's rejected design: every write is its own transaction
				// (modelled as open-write-close per write, which is exactly
				// what per-fs_readwrite boundaries would produce).
				for i := 0; i < w; i++ {
					row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
					if err != nil {
						return nil, err
					}
					f, err := sess.OpenWrite(row[0].S)
					if err != nil {
						return nil, err
					}
					f.WriteAt(int64(i), workload.UniformContent(1, i))
					if err := f.Close(); err != nil {
						return nil, err
					}
					srv.DLFM.WaitArchives()
				}
			} else {
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return nil, err
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					return nil, err
				}
				for i := 0; i < w; i++ {
					f.WriteAt(int64(i), workload.UniformContent(1, i))
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
				srv.DLFM.WaitArchives()
			}
			elapsed := time.Since(start)
			versions := len(srv.Archive.Versions("fs1", "/d/f.bin")) - 1 // minus v0
			boundary := "open..close"
			if perWrite {
				boundary = "per-write"
			}
			t.AddRow(fmt.Sprintf("%d", w), boundary, Dur(elapsed),
				fmt.Sprintf("%d", srv.Transport.Calls()),
				fmt.Sprintf("%d", versions),
				fmt.Sprintf("%d", versions))
			sys.Close()
		}
	}
	t.Note("per-write boundaries create W recoverable versions and W x the upcall/archive traffic for the same final content — §3.1's argument, quantified")
	return []*Table{t}, nil
}
