package harness

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/core"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E18",
		Title: "Durable repository plane: kill -9 of the whole process loses nothing",
		Paper: "§4.2/§4.4 promise that a DLFM machine crash never loses a committed file version: the repository (WAL + checkpoints) and the archive are the durable truth. This experiment hard-kills the ENTIRE process state — repository database, archive store, and the physical file system — and cold-starts from the two on-disk directories alone. Every link, every version, and the in-flight rollback must come back byte-identical with zero re-archiving, and recovery must replay only the log tail after the last checkpoint, not the whole history.",
		Run:   runE18,
	})
}

// The E18 knobs, exported so cmd/dlbench can sweep them from the command
// line. With an explicit ColdDir, a second E18 run against the same directory
// pair skips the churn phase and verifies the durable state a previous run
// (a previous PROCESS) left behind — the CI cold-start smoke job runs exactly
// that.
var (
	ColdFiles        = 3
	ColdFileKB       = 256
	ColdVersions     = 6
	ColdEditKB       = 32
	ColdCheckpointKB = 8  // small: force several checkpoints during churn
	ColdDir          = "" // "" = private temp dir, removed afterwards
	ColdFsync        = "" // repo + archive fsync policy ("", none, group, always)
)

// coldPath returns the deterministic linked-file path for file i.
func coldPath(i int) string { return fmt.Sprintf("/cold/f%d.bin", i) }

// coldExpected recomputes the exact content of every (file, version) from
// fixed seeds, so churn and verify phases — in different processes — derive
// the same truth from nothing but the knobs.
func coldExpected(files int, fileSize, editSize int64, versions int) [][][]byte {
	expected := make([][][]byte, files)
	for i := 0; i < files; i++ {
		model := workload.Content(workload.RNG(int64(18000+i)), int(fileSize))
		expected[i] = append(expected[i], append([]byte(nil), model...))
		for v := 1; v <= versions; v++ {
			edit := workload.Content(workload.RNG(int64(18500+100*i+v)), int(editSize))
			off := (int64(v*37+i*13) * editSize) % (fileSize - editSize + 1)
			copy(model[off:], edit)
			expected[i] = append(expected[i], append([]byte(nil), model...))
		}
	}
	return expected
}

// coldServerConfig is the one server config both phases share.
func coldServerConfig(repoDir, archDir string) core.ServerConfig {
	return core.ServerConfig{
		Name:                "fs1",
		OpenWait:            30 * time.Second,
		ArchiveDir:          archDir,
		ArchiveFsync:        ColdFsync,
		RepoDir:             repoDir,
		RepoFsync:           ColdFsync,
		RepoCheckpointBytes: int64(ColdCheckpointKB) << 10,
	}
}

// runE18 commits a deterministic workload, hard-kills the whole process
// state (repository, archive, physical FS), cold-starts a brand-new system
// from the repo + archive directories, and FAILS unless every link, every
// version, and the in-flight rollback are byte-identical with zero
// re-archiving — and unless recovery scanned only the post-checkpoint tail.
func runE18() ([]*Table, error) {
	fileSize := int64(ColdFileKB) << 10
	editSize := int64(ColdEditKB) << 10
	if editSize > fileSize {
		editSize = fileSize
	}
	dir := ColdDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dlrepo-e18-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	repoDir, archDir := dir+"/repo", dir+"/archive"
	expected := coldExpected(ColdFiles, fileSize, editSize, ColdVersions)

	// Probe the repository directory: WAL segments or a snapshot mean a
	// previous run (process) left durable state — verify-only mode.
	coldServe := false
	if entries, err := os.ReadDir(repoDir); err == nil {
		for _, e := range entries {
			if e.Name() == "repo.snap" || strings.HasPrefix(e.Name(), "wal-") {
				coldServe = true
				break
			}
		}
	}

	var churnWall time.Duration
	if !coldServe {
		start := time.Now()
		if err := coldChurn(repoDir, archDir, fileSize, editSize, expected); err != nil {
			return nil, err
		}
		churnWall = time.Since(start)
	}

	// The cold start: a brand-new system over nothing but the two
	// directories. No object survives from the churn phase.
	start := time.Now()
	sys, err := core.NewSystem(core.Config{
		Servers:     []core.ServerConfig{coldServerConfig(repoDir, archDir)},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("E18: cold start: %w", err)
	}
	coldWall := time.Since(start)
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	rep := srv.Recovery
	if rep == nil || rep.Repo == nil {
		return nil, fmt.Errorf("E18: cold open of a used repository ran as a fresh boot")
	}
	if !rep.Repo.SnapshotUsed {
		return nil, fmt.Errorf("E18: recovery ignored the checkpoint snapshot: %+v", rep.Repo)
	}
	if len(rep.LostFiles) != 0 {
		return nil, fmt.Errorf("E18: cold start lost files: %v", rep.LostFiles)
	}

	// Anchored, not O(history): the analysis/redo scan must cover only the
	// tail after the last checkpoint. TailLSN counts every record ever
	// logged (LSNs survive head truncation), so the ratio is honest.
	total := int(srv.DLFM.Repo().Log().TailLSN())
	if rep.Repo.RecordsScanned*2 >= total {
		return nil, fmt.Errorf("E18: recovery scanned %d of %d records — checkpoint anchoring failed", rep.Repo.RecordsScanned, total)
	}

	// Every link survives with its mode.
	if linked := srv.DLFM.LinkedFiles(); len(linked) != ColdFiles {
		return nil, fmt.Errorf("E18: %d links after cold start, want %d (%v)", len(linked), ColdFiles, linked)
	}
	verified := 0
	for i := 0; i < ColdFiles; i++ {
		path := coldPath(i)
		if mode, ok := srv.DLFM.FileMode(path); !ok || mode.String() != "rfd" {
			return nil, fmt.Errorf("E18: %s lost its control mode after cold start", path)
		}
		// Every version byte-identical from the archive.
		vers := srv.Archive.Versions("fs1", path)
		if len(vers) != ColdVersions+1 {
			return nil, fmt.Errorf("E18: %s has %d versions after cold start, want %d", path, len(vers), ColdVersions+1)
		}
		for v, e := range vers {
			if e.Version != archive.Version(v) {
				return nil, fmt.Errorf("E18: %s slot %d holds version %d", path, v, e.Version)
			}
			if !bytes.Equal(e.Content(), expected[i][v]) {
				return nil, fmt.Errorf("E18: %s v%d diverged across the kill", path, v)
			}
			verified++
		}
		// The physical file is materialized back to the last committed
		// content — including file 0, whose in-flight junk must be gone.
		got, err := srv.Phys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("E18: %s not materialized on the cold FS: %w", path, err)
		}
		if !bytes.Equal(got, expected[i][ColdVersions]) {
			return nil, fmt.Errorf("E18: %s content diverged after cold start", path)
		}
	}
	if !coldServe {
		// The churn phase died with an update open on file 0: it must have
		// been rolled back, and no other file touched.
		if len(rep.RestoredFiles) != 1 || rep.RestoredFiles[0] != coldPath(0) {
			return nil, fmt.Errorf("E18: in-flight rollback = %v, want [%s]", rep.RestoredFiles, coldPath(0))
		}
	}
	// Zero re-archiving: the archive catalog already held everything.
	if len(rep.ArchivedVersions) != 0 {
		return nil, fmt.Errorf("E18: cold start re-archived %v", rep.ArchivedVersions)
	}
	if d := srv.Archive.Dedup(); d.NewBytes != 0 {
		return nil, fmt.Errorf("E18: cold start transferred %d new bytes to the archive", d.NewBytes)
	}

	// And the recovered system keeps serving updates on the restored state.
	// (The host database died with the process, so re-link through fresh SQL.)
	sys.DB.MustExec(`CREATE TABLE cold (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)

	mb := func(b int64) string { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
	t := &Table{
		Caption: "E18. Whole-process kill: cold start from repo + archive dirs loses nothing",
		Headers: []string{"metric", "value"},
	}
	mode := "churn + kill + cold start (fresh dirs)"
	if coldServe {
		mode = "verify-only cold serve (state found in -e18-dir)"
	}
	t.AddRow("run mode", mode)
	t.AddRow("files x versions", fmt.Sprintf("%d x %d (+v0 each)", ColdFiles, ColdVersions))
	t.AddRow("linked file size / edit size", fmt.Sprintf("%s / %s", mb(fileSize), mb(editSize)))
	if !coldServe {
		t.AddRow("churn wall time", Dur(churnWall))
		t.AddRow("in-flight updates rolled back", fmt.Sprintf("%d (%s)", len(rep.RestoredFiles), strings.Join(rep.RestoredFiles, ",")))
	}
	t.AddRow("cold-start wall time (full recovery)", Dur(coldWall))
	t.AddRow("repo records scanned / total ever logged", fmt.Sprintf("%d / %d (anchor LSN %d)", rep.Repo.RecordsScanned, total, rep.Repo.AnchorLSN))
	t.AddRow("repo redo records applied", fmt.Sprintf("%d", rep.Repo.Redone))
	t.AddRow("files materialized from the archive", fmt.Sprintf("%d", len(rep.MaterializedFiles)))
	t.AddRow("version counters reconciled down", fmt.Sprintf("%d (%s)", len(rep.ReconciledVersions), strings.Join(rep.ReconciledVersions, ",")))
	t.AddRow("versions verified byte-identical", fmt.Sprintf("%d", verified))
	t.AddRow("bytes re-archived on cold start", fmt.Sprintf("%d", srv.Archive.Dedup().NewBytes))
	t.AddRow("repo checkpoint interval / fsync policy", fmt.Sprintf("%d KiB / %s", ColdCheckpointKB, orNone(ColdFsync)))
	t.Note("the whole process dies: repository, archive store AND the physical file system — only the repo and archive directories survive")
	t.Note("byte-identity, zero re-archiving, and anchored (scanned « total) recovery are enforced, not just reported")
	return []*Table{t}, nil
}

func orNone(p string) string {
	if p == "" {
		return "none"
	}
	return p
}

// coldChurn drives the deterministic workload through a full system stack
// over the durable directories, then kills the whole process state with an
// update still open — no checkpoint, no archive drain, no clean close.
func coldChurn(repoDir, archDir string, fileSize, editSize int64, expected [][][]byte) error {
	sys, err := core.NewSystem(core.Config{
		Servers:     []core.ServerConfig{coldServerConfig(repoDir, archDir)},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	srv, err := sys.Server("fs1")
	if err != nil {
		return err
	}
	sys.DB.MustExec(`CREATE TABLE cold (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	for i := 0; i < ColdFiles; i++ {
		if err := seedOwned(srv, coldPath(i), expected[i][0], expUID); err != nil {
			return err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO cold VALUES (%d, DLVALUE('dlfs://fs1%s'))`, i, coldPath(i))); err != nil {
			return err
		}
	}
	sess := sys.NewSession(expUID)
	writeURL := func(i int) (string, error) {
		row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM cold WHERE id = %d`, i))
		if err != nil {
			return "", err
		}
		return row[0].S, nil
	}
	for v := 1; v <= ColdVersions; v++ {
		for i := 0; i < ColdFiles; i++ {
			url, err := writeURL(i)
			if err != nil {
				return err
			}
			f, err := sess.OpenWrite(url)
			if err != nil {
				return err
			}
			edit := workload.Content(workload.RNG(int64(18500+100*i+v)), int(editSize))
			off := (int64(v*37+i*13) * editSize) % (fileSize - editSize + 1)
			if _, err := f.WriteAt(off, edit); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	// Every committed version must reach the archive before the kill — the
	// experiment tests crash durability of COMMITTED state, not a race with
	// the asynchronous archiver.
	srv.DLFM.WaitArchives()

	// Die with an update transaction open on file 0, its in-flight junk
	// uncommitted on the (volatile) physical file system.
	url, err := writeURL(0)
	if err != nil {
		return err
	}
	f, err := sess.OpenWrite(url)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(0, []byte("in-flight junk that must never survive the kill")); err != nil {
		return err
	}
	sys.Crash() // kill -9: no Close, no checkpoint, no drain
	return nil
}
