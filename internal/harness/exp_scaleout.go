package harness

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/ring"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E21",
		Title: "Scale-out namespace: consistent-hash routing and live rebalance",
		Paper: "The paper scopes one DLFM per file server and leaves multi-server growth to deployment. This experiment quantifies the scale-out extension: one DATALINK authority spread over N file servers by a consistent-hash ring must scale aggregate commit throughput with N under a skewed (zipfian) read load, and adding a server mid-run must migrate the reassigned paths live — no acknowledged commit lost, every migrated version history byte-identical.",
		Run:   runE21,
	})
}

// The E21 knobs, exported so cmd/dlbench can sweep them from the command
// line. Each round links ScaleoutFiles rdd files across a cluster of N
// members and drives ScaleoutSessions sessions for ScaleoutRound: half the
// sessions read zipfian-addressed files (the skew the ring has to spread),
// half commit in-place updates round-robin over disjoint partitions of the
// zipf-cold half of the namespace. Rounds are time-bounded so the reported
// commits/s is the aggregate the cluster sustains — a member slowed by the
// zipf-hot paths it owns contributes less, it does not gate the clock.
var (
	ScaleoutServers  = []int{1, 4, 16}
	ScaleoutSessions = 64
	ScaleoutRound    = 2 * time.Second
	ScaleoutFiles    = 256
	// ScaleoutUpcallLatency simulates the DLFS→DLFM IPC hop;
	// ScaleoutUpcallWidth bounds concurrent upcalls per member, so a single
	// member models a finite machine and scaling must come from adding them.
	// The defaults keep each member's capacity dominated by simulated wire
	// time rather than host CPU, so the curve measures the architecture even
	// on a small runner.
	ScaleoutUpcallLatency = 4 * time.Millisecond
	ScaleoutUpcallWidth   = 2
)

// scaleoutContent encodes a path's committed sequence number so verification
// can recover it from the file bytes alone.
func scaleoutContent(path string, seq int64) []byte {
	return []byte(fmt.Sprintf("seq%06d %s scale-out payload", seq, path))
}

// scaleoutSeq parses the sequence number back out of file content (-1: not a
// scale-out payload).
func scaleoutSeq(content []byte) int64 {
	s := string(content)
	if !strings.HasPrefix(s, "seq") {
		return -1
	}
	end := strings.IndexByte(s, ' ')
	if end < 0 {
		return -1
	}
	n, err := strconv.ParseInt(s[3:end], 10, 64)
	if err != nil {
		return -1
	}
	return n
}

func scaleoutPath(i int) string { return fmt.Sprintf("/z/f%d.bin", i) }

// e21Setup builds an N-member cluster, links ScaleoutFiles rdd files under
// the shared authority, and resolves their tokenized read URLs.
func e21Setup(servers int) (*core.Cluster, []string, []string, error) {
	members := make([]core.ServerConfig, servers)
	for i := range members {
		members[i] = core.ServerConfig{
			Name:          fmt.Sprintf("fs%d", i+1),
			UpcallLatency: ScaleoutUpcallLatency,
			UpcallWidth:   ScaleoutUpcallWidth,
			OpenWait:      10 * time.Second,
		}
	}
	c, err := core.NewCluster(core.ClusterConfig{Members: members, LockTimeout: 10 * time.Second})
	if err != nil {
		return nil, nil, nil, err
	}
	fail := func(err error) (*core.Cluster, []string, []string, error) {
		c.Close()
		return nil, nil, nil, err
	}
	c.DB.MustExec(`CREATE TABLE sc (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES, doc_size INT)`)
	paths := make([]string, ScaleoutFiles)
	readURLs := make([]string, ScaleoutFiles)
	for i := range paths {
		paths[i] = scaleoutPath(i)
		if err := c.SeedFile(paths[i], scaleoutContent(paths[i], 0), expUID); err != nil {
			return fail(err)
		}
		if _, err := c.DB.Exec(
			fmt.Sprintf(`INSERT INTO sc VALUES (%d, DLVALUE('%s'), NULL)`, i, c.URL(paths[i]))); err != nil {
			return fail(err)
		}
		row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETE(doc) FROM sc WHERE id = %d`, i))
		if err != nil {
			return fail(err)
		}
		readURLs[i] = row[0].S
	}
	return c, paths, readURLs, nil
}

// e21TrafficResult aggregates one traffic phase.
type e21TrafficResult struct {
	wall    time.Duration
	reads   int64
	commits int64
	acked   []int64 // per path, the last sequence whose Close returned cleanly
	samples []time.Duration
}

// e21Traffic drives the reader/writer session mix for one round. Reader
// sessions loop zipfian token-gated opens; writer sessions loop in-place
// update commits round-robin over disjoint partitions of the zipf-cold half
// of the namespace — an rdd write-open needs a reader-free gap (the design
// serializes reads against updates with no read locks), so updating the
// hottest read targets would measure writer starvation, not cluster
// capacity. Writer partitions are disjoint and the per-path acked sequence
// is written under a mutex, giving verification a total order to compare
// file bytes against.
func e21Traffic(c *core.Cluster, paths, readURLs []string) (e21TrafficResult, error) {
	res := e21TrafficResult{acked: make([]int64, len(paths))}
	pathMu := make([]sync.Mutex, len(paths))
	perSession := make([][]time.Duration, ScaleoutSessions)
	var reads, commits atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	stop := make(chan struct{})
	timer := time.AfterFunc(ScaleoutRound, func() { close(stop) })
	defer timer.Stop()
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	writers := ScaleoutSessions / 2
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < ScaleoutSessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := c.NewSession(expUID)
			if id >= writers {
				// Reader: zipfian over the read half of the namespace. An rdd
				// update excludes readers for its whole open-to-commit span by
				// design, so files under a continuous update stream would
				// starve readers out of their OpenWait — that conflict is
				// measured elsewhere; here it would just poison the curve.
				z := workload.NewZipf(workload.RNG(int64(id)+1), len(paths)/2)
				for !stopped() {
					i := z.Next()
					opStart := time.Now()
					err := func() error {
						f, err := sess.OpenRead(readURLs[i])
						if err != nil {
							return err
						}
						if _, err := f.ReadAll(); err != nil {
							return err
						}
						return f.Close()
					}()
					perSession[id] = append(perSession[id], time.Since(opStart))
					if err != nil {
						fail(fmt.Errorf("reader %d on %s: %w", id, paths[i], err))
						return
					}
					reads.Add(1)
				}
				return
			}
			// Writer: one dedicated file from the zipf-cold half. A writer
			// cycling over paths on several members would couple its pace to
			// the slowest member it visits; one file per writer lets commits
			// against healthy members flow at their own rate.
			i := len(paths)/2 + id%(len(paths)-len(paths)/2)
			for !stopped() {
				opStart := time.Now()
				err := func() error {
					pathMu[i].Lock()
					defer pathMu[i].Unlock()
					row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM sc WHERE id = %d`, i))
					if err != nil {
						return err
					}
					f, err := sess.OpenWrite(row[0].S)
					if err != nil {
						return err
					}
					seq := res.acked[i] + 1
					if err := f.WriteAll(scaleoutContent(paths[i], seq)); err != nil {
						_ = f.Abort()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
					res.acked[i] = seq
					commits.Add(1)
					return nil
				}()
				perSession[id] = append(perSession[id], time.Since(opStart))
				if err != nil {
					fail(fmt.Errorf("writer %d on %s: %w", id, paths[i], err))
					return
				}
			}
		}(s)
	}
	wg.Wait()
	res.wall = time.Since(start)
	res.reads = reads.Load()
	res.commits = commits.Load()
	for _, s := range perSession {
		res.samples = append(res.samples, s...)
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return res, err
}

// e21Lost counts paths whose final bytes do not match their last
// acknowledged commit — with client-serialized writers and every op required
// to succeed, the file must read back exactly the acked sequence.
func e21Lost(c *core.Cluster, paths []string, acked []int64) (int, error) {
	c.WaitArchives()
	lost := 0
	for i, p := range paths {
		id, err := c.Owner(p)
		if err != nil {
			return 0, err
		}
		m, err := c.Member(id)
		if err != nil {
			return 0, err
		}
		content, err := m.Phys.ReadFile(p)
		if err != nil {
			return 0, fmt.Errorf("read back %s on %s: %w", p, id, err)
		}
		if scaleoutSeq(content) != acked[i] {
			lost++
		}
	}
	return lost, nil
}

// e21Digest hashes a path's full archived version history on its current
// owner: version numbers, lengths, and content bytes.
func e21Digest(c *core.Cluster, path string) (string, error) {
	id, err := c.Owner(path)
	if err != nil {
		return "", err
	}
	m, err := c.Member(id)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, e := range m.Archive.Versions(c.Authority(), path) {
		fmt.Fprintf(h, "%d:%d:", e.Version, len(e.Content()))
		h.Write(e.Content())
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// runE21 measures aggregate commit throughput vs cluster size, then
// rebalances a loaded cluster live and proves the move lost nothing.
func runE21() ([]*Table, error) {
	scale := &Table{
		Caption: "E21. Aggregate throughput vs cluster size (zipfian reads over one authority)",
		Headers: []string{"servers", "sessions", "round", "reads/s", "commits", "commits/s", "p50", "p99", "lost acked"},
	}
	var baseCommitRate float64
	commitRate := make(map[int]float64)
	for _, n := range ScaleoutServers {
		c, paths, readURLs, err := e21Setup(n)
		if err != nil {
			return nil, err
		}
		res, err := e21Traffic(c, paths, readURLs)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("E21 %d-server round: %w", n, err)
		}
		lost, err := e21Lost(c, paths, res.acked)
		c.Close()
		if err != nil {
			return nil, err
		}
		cps := float64(res.commits) / res.wall.Seconds()
		commitRate[n] = cps
		if baseCommitRate == 0 {
			baseCommitRate = cps
		}
		s := Summarize(res.samples)
		scale.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%dr+%dw", ScaleoutSessions-ScaleoutSessions/2, ScaleoutSessions/2),
			Dur(res.wall),
			fmt.Sprintf("%.0f", float64(res.reads)/res.wall.Seconds()),
			fmt.Sprintf("%d", res.commits),
			fmt.Sprintf("%.0f (%.1fx)", cps, cps/baseCommitRate),
			Dur(s.P50), Dur(quantile(res.samples, 0.99)),
			fmt.Sprintf("%d", lost),
		)
		if lost > 0 {
			return []*Table{scale}, fmt.Errorf("E21 FAILED: %d-server round lost %d acked commit(s)", n, lost)
		}
	}
	scale.Note("%d rdd files under one dlfs://cluster authority, placement by consistent hash (%d vnodes/member); every member's upcall channel is %d wide with %v IPC latency, so one member is a bounded machine",
		ScaleoutFiles, ring.DefaultVirtualNodes, ScaleoutUpcallWidth, ScaleoutUpcallLatency)
	scale.Note("reader sessions address one half of the namespace zipfian, writer sessions each commit continuously to a dedicated file in the other half (rdd excludes readers for an update's whole open-to-commit span, so mixing the sets measures that conflict, not capacity); the member owning the hottest read paths saturates first, which is what keeps the largest cluster below perfectly linear")

	// Live rebalance: start 2 members under full traffic, add a third a third
	// of the way into the round, and let the remaining traffic ride through
	// the migrations.
	c, paths, readURLs, err := e21Setup(2)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rebalanceDone := make(chan error, 1)
	var rebalanceWall time.Duration
	go func() {
		time.Sleep(ScaleoutRound / 3)
		t0 := time.Now()
		err := c.AddServer(core.ServerConfig{
			Name:          "fs3",
			UpcallLatency: ScaleoutUpcallLatency,
			UpcallWidth:   ScaleoutUpcallWidth,
			OpenWait:      10 * time.Second,
		})
		rebalanceWall = time.Since(t0)
		rebalanceDone <- err
	}()
	trafficRes, trafficErr := e21Traffic(c, paths, readURLs)
	if err := <-rebalanceDone; err != nil {
		return nil, fmt.Errorf("E21 FAILED: live AddServer: %w", err)
	}
	if trafficErr != nil {
		return nil, fmt.Errorf("E21 FAILED: traffic during rebalance: %w", trafficErr)
	}
	lost, err := e21Lost(c, paths, trafficRes.acked)
	if err != nil {
		return nil, err
	}
	ringReg := c.Router().Metrics()
	movesLive := ringReg.Counter("ring.moves").Value()
	forwards := ringReg.Counter("ring.forwards").Value()

	// Quiesced migration byte-fidelity: digest every path's archived history,
	// grow the ring again, and require every digest unchanged on the new
	// owners.
	before := make([]string, len(paths))
	for i, p := range paths {
		if before[i], err = e21Digest(c, p); err != nil {
			return nil, err
		}
	}
	if err := c.AddServer(core.ServerConfig{
		Name:          "fs4",
		UpcallLatency: ScaleoutUpcallLatency,
		UpcallWidth:   ScaleoutUpcallWidth,
		OpenWait:      10 * time.Second,
	}); err != nil {
		return nil, fmt.Errorf("E21 FAILED: quiesced AddServer: %w", err)
	}
	mismatched := 0
	for i, p := range paths {
		after, err := e21Digest(c, p)
		if err != nil {
			return nil, err
		}
		if after != before[i] {
			mismatched++
		}
	}
	movesQuiesced := ringReg.Counter("ring.moves").Value() - movesLive

	s := Summarize(trafficRes.samples)
	reb := &Table{
		Caption: "E21b. Live rebalance under load (2 → 3 members, then a quiesced 3 → 4)",
		Headers: []string{"commits", "lost acked", "paths moved live", "rebalance wall", "forwards", "p50", "p99", "max op", "quiesced moves", "history mismatches"},
	}
	var maxOp time.Duration
	for _, d := range trafficRes.samples {
		if d > maxOp {
			maxOp = d
		}
	}
	reb.AddRow(
		fmt.Sprintf("%d", trafficRes.commits),
		fmt.Sprintf("%d", lost),
		fmt.Sprintf("%d", movesLive),
		Dur(rebalanceWall),
		fmt.Sprintf("%d", forwards),
		Dur(s.P50), Dur(quantile(trafficRes.samples, 0.99)), Dur(maxOp),
		fmt.Sprintf("%d", movesQuiesced),
		fmt.Sprintf("%d", mismatched),
	)
	reb.Note("a move drains the path's in-flight opens, freezes it, hands the archive history over chunk-deduped, imports the repository row, and evicts the source; a forward is an op that waited out a move gate")
	reb.Note("history digests hash (version, length, bytes) of every archived version before and after the quiesced migration — byte fidelity, not just latest-content equality")

	tables := []*Table{scale, reb}
	if lost > 0 {
		return tables, fmt.Errorf("E21 FAILED: rebalance round lost %d acked commit(s)", lost)
	}
	if mismatched > 0 {
		return tables, fmt.Errorf("E21 FAILED: %d path(s) changed archived history across migration", mismatched)
	}
	if maxOp > 30*time.Second {
		return tables, fmt.Errorf("E21 FAILED: an op took %v during rebalance — a client hung", maxOp)
	}
	// The scaling gate is a perf assertion about the uninstrumented system;
	// under the race detector per-op CPU cost inflates enough to break the
	// latency-domination the round design relies on, so skip it there.
	if r1, ok1 := commitRate[1]; ok1 && !raceEnabled {
		if r4, ok4 := commitRate[4]; ok4 && r4 < 3*r1 {
			return tables, fmt.Errorf("E21 FAILED: 1→4 servers scaled commits/s only %.1fx (need >= 3x)", r4/r1)
		}
	}
	return tables, nil
}
