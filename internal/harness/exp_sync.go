package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E9",
		Title: "Synchronization of file access with (un)link processing (§4.5)",
		Paper: "unlink is rejected while a Sync entry exists; read-open sync entries only for full-control files; a link can still succeed while the file is open (window of inconsistency) unless the future-work fix is applied.",
		Run:   runE9,
	})
	Register(Experiment{
		ID:    "E10",
		Title: "rfd read anomaly vs rdd serialization (§4.2, §5)",
		Paper: "\"an application can successfully open a file for update while another application has the file open for read\" in rfd; rdd serializes reads and writes at open time, so no torn reads.",
		Run:   runE10,
	})
	Register(Experiment{
		ID:    "E11",
		Title: "Design ablation: ownership-check optimization vs upcall-per-open (§4)",
		Paper: "per-file DataLinks state lives at DLFM (portability), so reads would need an upcall — avoided by examining file ownership; the strict variant pays the upcall on every open.",
		Run:   runE11,
	})
}

// runE9 probes every unlink/link vs open interleaving.
func runE9() ([]*Table, error) {
	t := &Table{
		Caption: "E9. (Un)link vs open interleavings",
		Headers: []string{"scenario", "mode", "outcome", "matches paper"},
	}
	type scenario struct {
		name   string
		mode   string
		strict bool
		run    func(sys *core.System, srv *core.FileServer, url string) (string, bool)
	}
	openRead := func(sys *core.System, url string) (*core.File, error) {
		row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
		if err != nil {
			return nil, err
		}
		return sys.NewSession(expUID).OpenRead(row[0].S)
	}
	scenarios := []scenario{
		{
			name: "unlink while open for read", mode: "rdd",
			run: func(sys *core.System, srv *core.FileServer, url string) (string, bool) {
				f, err := openRead(sys, url)
				if err != nil {
					return "setup failed: " + firstLine(err), false
				}
				defer f.Close()
				_, err = sys.DB.Exec(`DELETE FROM t WHERE id = 1`)
				return outcome(err == nil), err != nil // paper: rejected
			},
		},
		{
			name: "unlink while open for write", mode: "rfd",
			run: func(sys *core.System, srv *core.FileServer, url string) (string, bool) {
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					return "setup failed", false
				}
				f, err := sys.NewSession(expUID).OpenWrite(row[0].S)
				if err != nil {
					return "setup failed: " + firstLine(err), false
				}
				defer f.Close()
				_, err = sys.DB.Exec(`DELETE FROM t WHERE id = 1`)
				return outcome(err == nil), err != nil // paper: rejected
			},
		},
		{
			name: "unlink after close", mode: "rdd",
			run: func(sys *core.System, srv *core.FileServer, url string) (string, bool) {
				f, err := openRead(sys, url)
				if err != nil {
					return "setup failed", false
				}
				f.Close()
				_, err = sys.DB.Exec(`DELETE FROM t WHERE id = 1`)
				return outcome(err == nil), err == nil // paper: allowed
			},
		},
		{
			name: "link while file open (shipped behaviour)", mode: "rdd", strict: false,
			run: func(sys *core.System, srv *core.FileServer, url string) (string, bool) {
				seedOwned(srv, "/d/other.bin", []byte("x"), expUID)
				fd, err := srv.LFS.Open(fs.Cred{UID: expUID}, "/d/other.bin", fs.AccessRead)
				if err != nil {
					return "setup failed", false
				}
				defer srv.LFS.Close(fd)
				_, err = sys.DB.Exec(`INSERT INTO t VALUES (2, DLVALUE('dlfs://fs1/d/other.bin'))`)
				return outcome(err == nil) + " (window of inconsistency)", err == nil // paper: succeeds
			},
		},
		{
			name: "link while file open (strict extension)", mode: "rdd", strict: true,
			run: func(sys *core.System, srv *core.FileServer, url string) (string, bool) {
				seedOwned(srv, "/d/other.bin", []byte("x"), expUID)
				fd, err := srv.LFS.Open(fs.Cred{UID: expUID}, "/d/other.bin", fs.AccessRead)
				if err != nil {
					return "setup failed", false
				}
				defer srv.LFS.Close(fd)
				_, err = sys.DB.Exec(`INSERT INTO t VALUES (2, DLVALUE('dlfs://fs1/d/other.bin'))`)
				return outcome(err == nil), err != nil // fix: rejected
			},
		},
	}
	for _, sc := range scenarios {
		sys, srv, err := expSystem(sc.strict, 0)
		if err != nil {
			return nil, err
		}
		if err := seedOwned(srv, "/d/f.bin", []byte("v0"), expUID); err != nil {
			return nil, err
		}
		sys.DB.MustExec(fmt.Sprintf(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE %s RECOVERY YES)`, sc.mode))
		if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
			return nil, err
		}
		result, matches := sc.run(sys, srv, "dlfs://fs1/d/f.bin")
		verdict := "PASS"
		if !matches {
			verdict = "FAIL"
		}
		t.AddRow(sc.name, sc.mode, result, verdict)
		sys.Close()
	}
	return []*Table{t}, nil
}

func outcome(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "rejected"
}

// runE10 races slow readers against a writer and counts torn reads.
func runE10() ([]*Table, error) {
	const (
		fileSize = 64 << 10
		readers  = 2
		rounds   = 20
	)
	t := &Table{
		Caption: fmt.Sprintf("E10. %d slow readers vs 1 writer, %d write rounds, %dKB file", readers, rounds, fileSize>>10),
		Headers: []string{"mode", "reads ok", "reads rejected", "torn reads", "writer busy-retries"},
	}
	for _, mode := range []string{"rfd", "rdd"} {
		sys, err := core.NewSystem(core.Config{
			Servers:     []core.ServerConfig{{Name: "fs1", OpenWait: 2 * time.Second}},
			LockTimeout: 2 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		srv, err := sys.Server("fs1")
		if err != nil {
			return nil, err
		}
		if err := seedOwned(srv, "/d/f.bin", workload.UniformContent(fileSize, 0), expUID); err != nil {
			return nil, err
		}
		sys.DB.MustExec(fmt.Sprintf(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE %s RECOVERY YES)`, mode))
		if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
			return nil, err
		}
		var readsOK, readsRejected, torn, writerBusy int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		// Readers: open, read slowly in chunks, close, repeat.
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				sess := sys.NewSession(fs.UID(600 + r))
				for {
					select {
					case <-stop:
						return
					default:
					}
					url := "dlfs://fs1/d/f.bin"
					if mode == "rdd" {
						row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
						if err != nil {
							continue
						}
						url = row[0].S
					}
					f, err := sess.OpenRead(url)
					if err != nil {
						atomic.AddInt64(&readsRejected, 1)
						time.Sleep(time.Millisecond)
						continue
					}
					var content []byte
					buf := make([]byte, 16<<10)
					for {
						n, err := f.Read(buf)
						if err != nil || n == 0 {
							break
						}
						content = append(content, buf[:n]...)
						time.Sleep(100 * time.Microsecond) // slow reader
					}
					f.Close()
					if clean, _ := workload.TornCheck(content); !clean {
						atomic.AddInt64(&torn, 1)
					}
					atomic.AddInt64(&readsOK, 1)
					// Pause between reads so writers get open windows.
					time.Sleep(5 * time.Millisecond)
				}
			}(r)
		}
		// Writer: rewrite the whole file with a new version fill per round.
		sess := sys.NewSession(expUID)
		for v := 1; v <= rounds; v++ {
			for {
				row, err := sys.DB.QueryRow(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`)
				if err != nil {
					atomic.AddInt64(&writerBusy, 1)
					continue
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					atomic.AddInt64(&writerBusy, 1)
					time.Sleep(time.Millisecond)
					continue
				}
				f.WriteAt(0, workload.UniformContent(fileSize, v))
				if err := f.Close(); err != nil {
					atomic.AddInt64(&writerBusy, 1)
					continue
				}
				break
			}
			// Think time between updates: the paper's mostly-read workload.
			time.Sleep(2 * time.Millisecond)
		}
		close(stop)
		wg.Wait()
		srv.DLFM.WaitArchives()
		t.AddRow(mode,
			fmt.Sprintf("%d", readsOK),
			fmt.Sprintf("%d", readsRejected),
			fmt.Sprintf("%d", torn),
			fmt.Sprintf("%d", writerBusy))
		sys.Close()
	}
	t.Note("rfd: a reader that opened before the takeover keeps reading while the writer scribbles -> torn reads > 0; new opens during the window are rejected")
	t.Note("rdd: opens serialize against the writer at DLFM -> torn reads = 0, at the cost of waiting/rejected opens")
	return []*Table{t}, nil
}

// runE11 sweeps injected IPC latency over both read-open designs.
func runE11() ([]*Table, error) {
	t := &Table{
		Caption: "E11. Read-open cost: ownership check (0 upcalls) vs strict upcall-per-open, by IPC latency (rfd file, 500 opens)",
		Headers: []string{"IPC latency", "design", "mean open+close", "upcalls/op"},
	}
	for _, ipc := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		for _, strict := range []bool{false, true} {
			sys, srv, err := expSystem(strict, ipc)
			if err != nil {
				return nil, err
			}
			if err := seedOwned(srv, "/d/f.bin", workload.Content(workload.RNG(2), 4096), expUID); err != nil {
				return nil, err
			}
			sys.DB.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY NO)`)
			if _, err := sys.DB.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`); err != nil {
				return nil, err
			}
			sess := sys.NewSession(expUID)
			const n = 500
			srv.Transport.Reset()
			stats, err := Measure(n, func() error {
				f, err := sess.OpenRead("dlfs://fs1/d/f.bin")
				if err != nil {
					return err
				}
				return f.Close()
			})
			if err != nil {
				return nil, err
			}
			design := "ownership check (paper)"
			if strict {
				design = "upcall per open (strict)"
			}
			t.AddRow(fmt.Sprintf("%v", ipc), design, Dur(stats.Mean),
				fmt.Sprintf("%.1f", float64(srv.Transport.Calls())/float64(n)))
			sys.Close()
		}
	}
	t.Note("the gap between the designs is exactly the upcall count x IPC cost — the trade the paper's design optimizes, and what the strict fix of §4.5 would pay")
	return []*Table{t}, nil
}

var _ = sqlmini.Int
