package harness

import (
	"fmt"
	"sync"
	"time"

	"datalinks/internal/core"
	"datalinks/internal/fs"
	"datalinks/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E14",
		Title: "Large-file update workload: bytes archived vs bytes written",
		Paper: "§4.4 archives the last committed version on every file-update transaction, making archive cost THE per-commit constant. With flat copies a 64 KiB edit to a 64 MiB linked file pays O(64 MiB) twice (read + archive); with extent manifests and chunk dedup it pays O(changed chunks).",
		Run:   runE14,
	})
}

// The E14 knobs, exported so cmd/dlbench can sweep them from the command
// line: N sessions each commit a series of small edits to their own large
// linked file, and the experiment reports how many bytes the archive device
// physically received per byte the applications wrote.
var (
	LargeFileSessions = 4
	LargeFileSizeMB   = 16
	LargeFileEdits    = 8
	LargeFileEditKB   = 64
)

// runE14 drives the large-file update workload and reports the data-plane
// cost ratios of the extent store.
func runE14() ([]*Table, error) {
	fileSize := int64(LargeFileSizeMB) << 20
	editSize := int64(LargeFileEditKB) << 10
	if editSize > fileSize {
		editSize = fileSize
	}

	sys, err := core.NewSystem(core.Config{
		Servers:     []core.ServerConfig{{Name: "fs1", OpenWait: 30 * time.Second}},
		LockTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	srv, err := sys.Server("fs1")
	if err != nil {
		return nil, err
	}
	sys.DB.MustExec(`CREATE TABLE big (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)

	for i := 0; i < LargeFileSessions; i++ {
		path := fmt.Sprintf("/big/f%d.bin", i)
		if err := srv.Phys.MkdirAll("/big", fs.Cred{UID: fs.Root}, 0o777); err != nil {
			return nil, err
		}
		if err := seedOwned(srv, path, workload.Content(workload.RNG(int64(i)), int(fileSize)), expUID); err != nil {
			return nil, err
		}
		if _, err := sys.DB.Exec(
			fmt.Sprintf(`INSERT INTO big VALUES (%d, DLVALUE('dlfs://fs1%s'))`, i, path)); err != nil {
			return nil, err
		}
	}
	// Linking archived version 0 of every file (the whole content, once).
	// The edit phase below is what must cost O(delta); measure from here.
	base := srv.Archive.Dedup()

	var wg sync.WaitGroup
	errs := make(chan error, LargeFileSessions)
	start := time.Now()
	for i := 0; i < LargeFileSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := sys.NewSession(expUID)
			rng := workload.RNG(int64(1000 + i))
			for k := 0; k < LargeFileEdits; k++ {
				row, err := sys.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM big WHERE id = %d`, i))
				if err != nil {
					errs <- err
					return
				}
				f, err := sess.OpenWrite(row[0].S)
				if err != nil {
					errs <- err
					return
				}
				// Fresh random content per edit: the ratio then measures the
				// O(delta) property, not dedup luck on repeated payloads.
				edit := workload.Content(rng, int(editSize))
				off := (int64(i*LargeFileEdits+k) * editSize * 7) % (fileSize - editSize + 1)
				if _, err := f.WriteAt(off, edit); err != nil {
					errs <- err
					return
				}
				if err := f.Close(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	srv.DLFM.WaitArchives()
	wall := time.Since(start)
	d := srv.Archive.Dedup()

	commits := int64(LargeFileSessions * LargeFileEdits)
	bytesWritten := commits * editSize
	newBytes := d.NewBytes - base.NewBytes
	logical := d.LogicalBytes - base.LogicalBytes
	residentGrowth := d.ResidentBytes - base.ResidentBytes

	t := &Table{
		Caption: "E14. Large-file update workload (per-commit archive cost)",
		Headers: []string{"metric", "value"},
	}
	mb := func(b int64) string { return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20)) }
	t.AddRow("sessions x edits", fmt.Sprintf("%d x %d (%d commits)", LargeFileSessions, LargeFileEdits, commits))
	t.AddRow("linked file size", mb(fileSize))
	t.AddRow("edit size", mb(editSize))
	t.AddRow("wall time", Dur(wall))
	t.AddRow("bytes written by apps", mb(bytesWritten))
	t.AddRow("bytes archived (physical)", mb(newBytes))
	t.AddRow("bytes archived (flat-copy equivalent)", mb(logical))
	t.AddRow("archived/written ratio", fmt.Sprintf("%.2f", float64(newBytes)/float64(bytesWritten)))
	t.AddRow("flat-copy ratio (old cost)", fmt.Sprintf("%.0f", float64(logical)/float64(bytesWritten)))
	t.AddRow("chunks deduplicated", fmt.Sprintf("%d (%s saved)", d.SharedChunks-base.SharedChunks, mb(d.DedupedBytes-base.DedupedBytes)))
	t.AddRow("archive resident bytes", fmt.Sprintf("%s (+%s for %d versions of %s logical)",
		mb(d.ResidentBytes), mb(residentGrowth), commits, mb(logical)))
	t.Note("archived/written near 1 means commits cost O(changed bytes); the flat-copy ratio is what the same workload cost before extent manifests (filesize/delta)")
	t.Note("resident growth is sub-linear in versions: unchanged chunks are shared by content hash across all versions of all files")
	return []*Table{t}, nil
}
