package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := &Table{
		Caption: "test table",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "22")
	tbl.Note("footnote %d", 7)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "test table") || !strings.Contains(out, "a-much-longer-name") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "footnote 7") {
		t.Fatal("note missing")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{Caption: "md", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Markdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("markdown:\n%s", out)
	}
}

func TestRegistryOrderAndFind(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("registered experiments = %d, want >= 10", len(all))
	}
	// T before F before E, E numerically ordered.
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	want := []string{"T1", "F1", "F2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E20", "E21", "E22", "E23"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
	if _, ok := Find("e6"); !ok {
		t.Fatal("case-insensitive find failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestEveryExperimentHasPaperReference(t *testing.T) {
	for _, e := range All() {
		if e.Paper == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestMeasureAndSummarize(t *testing.T) {
	n := 0
	stats, err := Measure(10, func() error { n++; return nil })
	if err != nil || stats.N != 10 || n != 10 {
		t.Fatalf("measure = %+v, %v (n=%d)", stats, err, n)
	}
	s := Summarize([]time.Duration{1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond})
	if s.Min != time.Millisecond || s.Max != 3*time.Millisecond || s.Mean != 2*time.Millisecond {
		t.Fatalf("summarize = %+v", s)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summarize")
	}
}

func TestDurAndPct(t *testing.T) {
	if Dur(1500*time.Nanosecond) != "1.5µs" {
		t.Errorf("Dur micro = %s", Dur(1500*time.Nanosecond))
	}
	if Dur(2500*time.Microsecond) != "2.50ms" {
		t.Errorf("Dur ms = %s", Dur(2500*time.Microsecond))
	}
	if Dur(1500*time.Millisecond) != "1.50s" {
		t.Errorf("Dur s = %s", Dur(1500*time.Millisecond))
	}
	if Pct(0.015) != "1.50%" {
		t.Errorf("Pct = %s", Pct(0.015))
	}
}

// TestRunAllExperiments smoke-runs every registered experiment end to end —
// the same path cmd/dlbench takes — so a regression in any experiment fails
// the suite, not just the tool.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "==== "+e.ID+":") {
			t.Errorf("output missing experiment %s", e.ID)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("an experiment self-check failed:\n%s", out)
	}
}

// TestRunT1EndToEnd executes the full T1 experiment as a test: the observed
// matrix must match the paper's specification.
func TestRunT1EndToEnd(t *testing.T) {
	e, ok := Find("T1")
	if !ok {
		t.Fatal("T1 missing")
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	obs := tables[1]
	want := map[string][]string{
		//       read-  read+  write- write+ remove rename
		"nff": {"allow", "allow", "allow", "allow", "allow", "allow"},
		"rff": {"allow", "allow", "allow", "deny", "deny", "deny"},
		"rfb": {"allow", "allow", "deny", "deny", "deny", "deny"},
		"rdb": {"deny", "allow", "deny", "deny", "deny", "deny"},
		"rfd": {"allow", "allow", "deny", "allow", "deny", "deny"},
		"rdd": {"deny", "allow", "deny", "allow", "deny", "deny"},
	}
	for _, row := range obs.Rows {
		exp, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected mode row %v", row)
			continue
		}
		for i, cell := range row[1:] {
			if cell != exp[i] {
				t.Errorf("mode %s col %d = %s, want %s", row[0], i, cell, exp[i])
			}
		}
	}
}

// TestRunE9EndToEnd executes E9 and requires every scenario to PASS.
func TestRunE9EndToEnd(t *testing.T) {
	e, _ := Find("E9")
	tables, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "PASS" {
			t.Errorf("scenario %q = %v", row[0], row)
		}
	}
}

// TestRunE7EndToEnd executes the crash-point sweep and requires PASS.
func TestRunE7EndToEnd(t *testing.T) {
	e, _ := Find("E7")
	tables, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "PASS" {
			t.Errorf("crash point %q: %v", row[0], row)
		}
	}
}

// TestRunE8EndToEnd executes the restore sweep and requires agreement.
func TestRunE8EndToEnd(t *testing.T) {
	e, _ := Find("E8")
	tables, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, row := range tables[0].Rows {
		if row[4] != "PASS" {
			t.Errorf("restore row: %v", row)
		}
	}
}
