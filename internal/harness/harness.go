// Package harness runs the paper-reproduction experiments: every table and
// figure of the evaluation, plus the quantitative versions of the paper's
// qualitative claims. cmd/dlbench drives it from the command line;
// bench_test.go exposes each experiment as a testing.B benchmark.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"datalinks/internal/metrics"
)

func init() {
	// The experiments report exact order-statistic percentiles; production
	// histograms keep only buckets.
	metrics.RetainExactSamples(true)
}

// Table is an aligned text table with a caption.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Caption)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(w, "  %s", c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavoured markdown (EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "**%s**\n\n", t.Caption)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID    string // "T1", "F1", "E3", ...
	Title string
	Paper string // what the paper reported / claimed
	Run   func() ([]*Table, error)
}

// registry holds all experiments in declaration order.
var registry []Experiment

// Register adds an experiment (called from init functions in this package).
func Register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in a stable order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1, F1, F2, then E3..E12 numerically.
func orderKey(id string) string {
	if len(id) < 2 {
		return id
	}
	prefixRank := map[byte]string{'T': "0", 'F': "1", 'E': "2"}
	rank, ok := prefixRank[id[0]]
	if !ok {
		rank = "9"
	}
	return fmt.Sprintf("%s%02s", rank, id[1:])
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, rendering to w.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment, rendering to w.
func RunOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
	fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
	start := time.Now()
	tables, err := e.Run()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	for _, t := range tables {
		t.Render(w)
	}
	fmt.Fprintf(w, "(%s ran in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// Stats summarizes a series of duration samples.
type Stats struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	Min  time.Duration
	Max  time.Duration
}

// Measure runs fn n times and summarizes the per-call latency.
func Measure(n int, fn func() error) (Stats, error) {
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Stats{}, err
		}
		samples = append(samples, time.Since(start))
	}
	return Summarize(samples), nil
}

// Summarize computes order statistics for a sample set.
func Summarize(samples []time.Duration) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	q := func(p float64) time.Duration {
		idx := int(p*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return Stats{
		N:    len(sorted),
		Mean: sum / time.Duration(len(sorted)),
		P50:  q(0.50),
		P95:  q(0.95),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// Dur formats a duration compactly for table cells.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// Pct formats a ratio as a percentage.
func Pct(ratio float64) string { return fmt.Sprintf("%.2f%%", ratio*100) }
