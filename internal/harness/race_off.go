//go:build !race

package harness

// raceEnabled reports whether the binary was built with the race detector.
// Perf-threshold gates (E21's near-linear scaling check) are skipped under
// instrumentation: the detector multiplies per-op CPU cost, so a scaling
// ratio measured through it says nothing about the uninstrumented system.
// Correctness gates (lost commits, history divergence, hung clients) are
// enforced either way.
const raceEnabled = false
