package harness

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/core"
)

func init() {
	Register(Experiment{
		ID:    "E23",
		Title: "Replicated shards: ring successor replication and automatic failover",
		Paper: "The paper's recovery story rebuilds a failed DLFM from its durable planes — correct, but a cold start: the namespace is dark until the repository WAL replays and the archive rematerializes. This experiment measures the replication extension: every committed version ships synchronously to the path's ring successors at the 2PC commit barrier, so when a member machine dies mid-soak the probe promotes the successors' replicas in place — no cold start, no data movement — and the soak must show zero lost acked commits, unavailability inside the declared failover budget, and byte-identical owner/replica histories after quiesce.",
		Run:   runE23,
	})
}

// The E23 knobs, exported so cmd/dlbench can sweep them from the command
// line. A FailoverServers-member cluster runs with Replicas copies of every
// path and a WriteQuorum of 2; FailoverWriters sessions soak in-place update
// commits for FailoverRound, one member is killed silently (no FailServer
// bookkeeping — the health probe has to notice) a third of the way in, and
// the run fails if any acked commit is lost, any orphaned path stays dark
// longer than FailoverBudget, or any replica's post-quiesce history digest
// diverges from its owner's.
var (
	FailoverServers = 3
	FailoverFiles   = 48
	FailoverWriters = 16
	FailoverRound   = 2 * time.Second
	// FailoverBudget is the declared ceiling on per-path unavailability: the
	// gap between the kill and the path's first post-kill acked commit.
	FailoverBudget = 2 * time.Second
	FailoverProbe  = 25 * time.Millisecond
)

// e23Setup builds the replicated cluster and links FailoverFiles rdd files.
func e23Setup() (*core.Cluster, []string, error) {
	members := make([]core.ServerConfig, FailoverServers)
	for i := range members {
		members[i] = core.ServerConfig{
			Name:     fmt.Sprintf("fs%d", i+1),
			OpenWait: 10 * time.Second,
		}
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Members:       members,
		LockTimeout:   10 * time.Second,
		Replicas:      2,
		WriteQuorum:   2,
		ProbeInterval: FailoverProbe,
		AutoFailover:  true,
	})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*core.Cluster, []string, error) {
		c.Close()
		return nil, nil, err
	}
	c.DB.MustExec(`CREATE TABLE fo (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	paths := make([]string, FailoverFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/r/f%d.bin", i)
		if err := c.SeedFile(paths[i], scaleoutContent(paths[i], 0), expUID); err != nil {
			return fail(err)
		}
		if _, err := c.DB.Exec(
			fmt.Sprintf(`INSERT INTO fo VALUES (%d, DLVALUE('%s'))`, i, c.URL(paths[i]))); err != nil {
			return fail(err)
		}
	}
	return c, paths, nil
}

// e23Result aggregates the soak.
type e23Result struct {
	commits     int64 // acked closes
	failed      int64 // closes rejected during the outage window (tolerated)
	acked       []int64
	firstOKAt   []time.Time // per path, first acked commit after the kill
	killedAt    time.Time
	victim      string
	victimPaths map[string]bool
}

// e23Traffic soaks commits across all paths and kills the victim mid-round.
// Unlike the scale-out round, writer errors are TOLERATED: the outage window
// legitimately rejects commits against orphaned paths (and quorum-fails
// commits whose successor died) until the failover lands. The invariant is
// not "every op succeeds" but "every op that was ACKED survives".
func e23Traffic(c *core.Cluster, paths []string) (*e23Result, error) {
	res := &e23Result{
		acked:       make([]int64, len(paths)),
		firstOKAt:   make([]time.Time, len(paths)),
		victimPaths: make(map[string]bool),
	}
	writers := FailoverWriters
	if writers > len(paths) {
		writers = len(paths)
	}
	pathMu := make([]sync.Mutex, len(paths))
	var commits, failed atomic.Int64
	stop := make(chan struct{})
	timer := time.AfterFunc(FailoverRound, func() { close(stop) })
	defer timer.Stop()
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// The kill: a third into the round, the member owning paths[0] dies
	// silently — no FailServer bookkeeping, the probe must notice.
	var killErr error
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		time.Sleep(FailoverRound / 3)
		victim, err := c.Owner(paths[0])
		if err != nil {
			killErr = err
			return
		}
		for _, p := range paths {
			if owner, err := c.Owner(p); err == nil && owner == victim {
				res.victimPaths[p] = true
			}
		}
		res.victim = victim
		res.killedAt = time.Now()
		killErr = c.KillServer(victim)
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession(expUID)
			for !stopped() {
				for i := w; i < len(paths) && !stopped(); i += writers {
					err := func() error {
						pathMu[i].Lock()
						defer pathMu[i].Unlock()
						row, err := c.DB.QueryRow(fmt.Sprintf(`SELECT DLURLCOMPLETEWRITE(doc) FROM fo WHERE id = %d`, i))
						if err != nil {
							return err
						}
						f, err := sess.OpenWrite(row[0].S)
						if err != nil {
							return err
						}
						seq := res.acked[i] + 1
						if err := f.WriteAll(scaleoutContent(paths[i], seq)); err != nil {
							_ = f.Abort()
							return err
						}
						if err := f.Close(); err != nil {
							return err
						}
						res.acked[i] = seq
						if !res.killedAt.IsZero() && res.firstOKAt[i].IsZero() {
							res.firstOKAt[i] = time.Now()
						}
						return nil
					}()
					if err != nil {
						failed.Add(1)
					} else {
						commits.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	killWG.Wait()
	if killErr != nil {
		return nil, fmt.Errorf("kill: %w", killErr)
	}
	res.commits = commits.Load()
	res.failed = failed.Load()
	return res, nil
}

// e23Lost counts paths whose final bytes encode a sequence BELOW the last
// acked one. Above is legal: a close rejected for replication quorum still
// committed on the owner ("newer than the ack" is the at-least-once rule);
// below means an acknowledged commit evaporated.
func e23Lost(c *core.Cluster, paths []string, acked []int64) (int, error) {
	c.WaitArchives()
	lost := 0
	for i, p := range paths {
		id, err := c.Owner(p)
		if err != nil {
			return 0, fmt.Errorf("owner %s: %w", p, err)
		}
		m, err := c.Member(id)
		if err != nil {
			return 0, err
		}
		content, err := m.Phys.ReadFile(p)
		if err != nil {
			return 0, fmt.Errorf("read back %s on %s: %w", p, id, err)
		}
		if scaleoutSeq(content) < acked[i] {
			lost++
		}
	}
	return lost, nil
}

// e23ReplicaDigests compares every path's history digest on its owner
// against every replica in its successor set; returns the divergent count.
func e23ReplicaDigests(c *core.Cluster, paths []string) (int, error) {
	diverged := 0
	for _, p := range paths {
		set := c.ReplicaSet(p)
		ownerDigest, err := e23MemberDigest(c, set[0], p)
		if err != nil {
			return 0, err
		}
		for _, id := range set[1:] {
			d, err := e23MemberDigest(c, id, p)
			if err != nil {
				return 0, err
			}
			if d != ownerDigest {
				diverged++
			}
		}
	}
	return diverged, nil
}

func e23MemberDigest(c *core.Cluster, id, path string) (string, error) {
	m, err := c.Member(id)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, e := range m.Archive.Versions(c.Authority(), path) {
		fmt.Fprintf(h, "%d:%d:", e.Version, len(e.Content()))
		h.Write(e.Content())
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// runE23 soaks committed updates while a member machine dies mid-round and
// proves the three replication invariants.
func runE23() ([]*Table, error) {
	c, paths, err := e23Setup()
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res, err := e23Traffic(c, paths)
	if err != nil {
		return nil, fmt.Errorf("E23 soak: %w", err)
	}
	if res.victim == "" {
		return nil, fmt.Errorf("E23: the kill never ran")
	}

	// Unavailability: per victim-owned path, the gap between the kill and the
	// first acked commit after it.
	var maxDark time.Duration
	neverBack := 0
	for i, p := range paths {
		if !res.victimPaths[p] {
			continue
		}
		if res.firstOKAt[i].IsZero() {
			neverBack++
			continue
		}
		if dark := res.firstOKAt[i].Sub(res.killedAt); dark > maxDark {
			maxDark = dark
		}
	}

	// Quiesce: drain archiving, then run the anti-entropy pass — a commit
	// that quorum-failed during the outage left a replica gap no later ship
	// heals, and the ring swap stranded replicas on retired successor sets.
	lost, err := e23Lost(c, paths, res.acked)
	if err != nil {
		return nil, err
	}
	if err := c.FlushReplication(); err != nil {
		return nil, fmt.Errorf("E23 quiesce flush: %w", err)
	}
	diverged, err := e23ReplicaDigests(c, paths)
	if err != nil {
		return nil, err
	}

	failovers := c.Router().Metrics().Counter("repl.failovers").Value()
	var promotions, quorumFails int64
	for _, id := range c.Members() {
		if m, err := c.Member(id); err == nil {
			promotions += m.DLFM.Metrics().Counter("dlfm.repl.promotions").Value()
			quorumFails += m.DLFM.Metrics().Counter("dlfm.repl.quorum_failures").Value()
		}
	}

	tbl := &Table{
		Caption: "E23. Mid-soak member kill with ring-successor replication (Replicas=2, quorum=2)",
		Headers: []string{"writers", "round", "acked commits", "rejected (outage)", "victim paths", "promoted", "failovers", "max dark", "budget", "lost acked", "digest mismatches"},
	}
	tbl.AddRow(
		fmt.Sprintf("%d", FailoverWriters),
		Dur(FailoverRound),
		fmt.Sprintf("%d", res.commits),
		fmt.Sprintf("%d", res.failed),
		fmt.Sprintf("%d on %s", len(res.victimPaths), res.victim),
		fmt.Sprintf("%d", promotions),
		fmt.Sprintf("%d", failovers),
		Dur(maxDark),
		Dur(FailoverBudget),
		fmt.Sprintf("%d", lost),
		fmt.Sprintf("%d", diverged),
	)
	tbl.Note("the kill is silent (no FailServer bookkeeping): the %v health probe detects the dead member and promotes each orphaned path's replica on its ring successor in place — no AbsorbDead, no cold start, no archive transfer; %d closes were rejected during the outage window and every one of them is accounted for (an acked close is never among them)", FailoverProbe, res.failed)
	tbl.Note("quiesce = WaitArchives + FlushReplication (anti-entropy), then every path's (version, length, bytes) history digest is compared owner vs every replica; quorum-failed closes during the outage: %d", quorumFails)

	if lost > 0 {
		return []*Table{tbl}, fmt.Errorf("E23 FAILED: %d acked commit(s) lost across the kill", lost)
	}
	if diverged > 0 {
		return []*Table{tbl}, fmt.Errorf("E23 FAILED: %d replica history digest(s) diverge from their owner after quiesce", diverged)
	}
	// The budget gate is a latency assertion about the uninstrumented system;
	// the race detector inflates per-op cost enough to blur it.
	if !raceEnabled {
		if neverBack > 0 {
			return []*Table{tbl}, fmt.Errorf("E23 FAILED: %d victim path(s) never served a commit again after the kill", neverBack)
		}
		if maxDark > FailoverBudget {
			return []*Table{tbl}, fmt.Errorf("E23 FAILED: a path stayed dark %v after the kill (budget %v)", maxDark, FailoverBudget)
		}
	}
	return []*Table{tbl}, nil
}
