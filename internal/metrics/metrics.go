// Package metrics provides cheap counters and latency recorders shared by
// every layer of the DataLinks stack. The experiment harness reads them to
// report deterministic per-operation costs (upcalls, syscalls, archive jobs)
// alongside wall-clock timings.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Histogram records durations and reports simple order statistics.
// It keeps every sample; experiments are small enough that this is fine and
// it keeps percentiles exact.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = nil
	h.mu.Unlock()
}

// Mean returns the mean of the recorded samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples, or 0 if empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Samples returns a copy of the recorded samples (experiments merge
// per-server histograms before computing cross-server percentiles).
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max time.Duration
	for _, s := range h.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Registry is a named collection of counters and histograms. The zero value
// is not usable; call NewRegistry.
//
// Lookups use sync.Map so the steady state — every hot-path counter already
// created — is a lock-free read. Counter() on an instrumented fast path
// therefore never serializes concurrent operations against each other.
type Registry struct {
	ctrs  sync.Map // string -> *Counter
	hists sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.ctrs.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.ctrs.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Histogram returns the histogram with the given name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// ResetAll zeroes every counter and clears every histogram.
func (r *Registry) ResetAll() {
	r.ctrs.Range(func(_, v any) bool {
		v.(*Counter).Reset()
		return true
	})
	r.hists.Range(func(_, v any) bool {
		v.(*Histogram).Reset()
		return true
	})
}

// Snapshot returns counter values keyed by name, for test assertions.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	r.ctrs.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// String renders all counters sorted by name, one per line.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%-40s %d\n", n, snap[n])
	}
	return s
}
