// Package metrics provides cheap counters and latency recorders shared by
// every layer of the DataLinks stack. The experiment harness reads them to
// report deterministic per-operation costs (upcalls, syscalls, archive jobs)
// alongside wall-clock timings.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// exactSamples opts the whole process into retaining every raw sample next
// to the buckets. The experiment harness turns it on so cross-server sample
// merging and exact order statistics keep working; a long-running daemon
// leaves it off and its histograms stay fixed-size.
var exactSamples atomic.Bool

// RetainExactSamples toggles raw-sample retention for histograms
// process-wide. Only the test/bench harness should enable it: with it on,
// every Observe appends to an unbounded slice again.
func RetainExactSamples(on bool) { exactSamples.Store(on) }

// Histogram records durations into fixed-size log-linear buckets: one octave
// per power of two, 64 linear sub-buckets per octave, so any reconstructed
// quantile is within 1/128 (0.79%) of the true sample value while memory
// stays bounded no matter how many samples a soak-length run observes.
// Count, sum (hence mean) and max are tracked exactly.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets []uint64        // grown on demand, capped by bucketIndex range
	samples []time.Duration // raw samples, only under RetainExactSamples
}

// bucketIndex maps a duration to its log-linear bucket. Durations below 64ns
// get exact unit buckets; above that, each power-of-two octave splits into 64
// linear sub-buckets.
func bucketIndex(d time.Duration) int {
	u := uint64(d)
	if d < 0 {
		u = 0
	}
	if u < 64 {
		return int(u)
	}
	shift := bits.Len64(u) - 7
	return int(u>>uint(shift)) + shift<<6
}

// bucketValue returns the midpoint of a bucket, the value Quantile reports
// for samples that landed there.
func bucketValue(idx int) time.Duration {
	if idx < 64 {
		return time.Duration(idx)
	}
	shift := idx>>6 - 1
	sub := idx - shift<<6 // in [64, 128)
	lo := uint64(sub) << uint(shift)
	return time.Duration(lo + 1<<uint(shift)/2)
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	idx := bucketIndex(d)
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if idx >= len(h.buckets) {
		grown := make([]uint64, idx+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[idx]++
	if exactSamples.Load() {
		h.samples = append(h.samples, d)
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the exact total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.count, h.sum, h.max = 0, 0, 0
	h.buckets = nil
	h.samples = nil
	h.mu.Unlock()
}

// Mean returns the mean of the recorded samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples, or 0 if
// empty. The value is the midpoint of the bucket holding the q-th order
// statistic — within 0.79% of the exact sample.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for idx, n := range h.buckets {
		cum += int64(n)
		if cum >= rank {
			v := bucketValue(idx)
			if v > h.max {
				return h.max // the top bucket's midpoint can overshoot the true max
			}
			return v
		}
	}
	return h.max
}

// Samples returns a copy of the raw samples (experiments merge per-server
// histograms before computing cross-server percentiles). Raw samples exist
// only under RetainExactSamples; otherwise this returns nil.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.samples == nil {
		return nil
	}
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Registry is a named collection of counters and histograms. The zero value
// is not usable; call NewRegistry.
//
// Lookups use sync.Map so the steady state — every hot-path counter already
// created — is a lock-free read. Counter() on an instrumented fast path
// therefore never serializes concurrent operations against each other.
type Registry struct {
	ctrs  sync.Map // string -> *Counter
	hists sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.ctrs.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.ctrs.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Histogram returns the histogram with the given name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// ResetAll zeroes every counter and clears every histogram.
func (r *Registry) ResetAll() {
	r.ctrs.Range(func(_, v any) bool {
		v.(*Counter).Reset()
		return true
	})
	r.hists.Range(func(_, v any) bool {
		v.(*Histogram).Reset()
		return true
	})
}

// NameValue is one counter in a Snapshot.
type NameValue struct {
	Name  string
	Value int64
}

// Snapshot returns every counter as name→value pairs sorted by name — the
// enumeration order consumers (table printers, the metrics exposition
// endpoint) can rely on.
func (r *Registry) Snapshot() []NameValue {
	var out []NameValue
	r.ctrs.Range(func(k, v any) bool {
		out = append(out, NameValue{Name: k.(string), Value: v.(*Counter).Value()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedHistogram is one histogram in a Histograms enumeration.
type NamedHistogram struct {
	Name string
	Hist *Histogram
}

// Histograms returns every histogram sorted by name.
func (r *Registry) Histograms() []NamedHistogram {
	var out []NamedHistogram
	r.hists.Range(func(k, v any) bool {
		out = append(out, NamedHistogram{Name: k.(string), Hist: v.(*Histogram)})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders all counters sorted by name, one per line.
func (r *Registry) String() string {
	s := ""
	for _, nv := range r.Snapshot() {
		s += fmt.Sprintf("%-40s %d\n", nv.Name, nv.Value)
	}
	return s
}
