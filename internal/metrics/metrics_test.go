package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10_000 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	if p := h.Quantile(0.5); p != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Quantile(0.95); p != 95*time.Millisecond {
		t.Fatalf("p95 = %v", p)
	}
	if max := h.Max(); max != 100*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRegistryReuseAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Counter("b").Add(3)
	r.Histogram("h").Observe(time.Millisecond)
	snap := r.Snapshot()
	if snap["a"] != 2 || snap["b"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if !strings.Contains(r.String(), "a") {
		t.Fatal("String missing counter")
	}
	r.ResetAll()
	if r.Counter("a").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("ResetAll incomplete")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 4000 {
		t.Fatalf("shared = %d", r.Counter("shared").Value())
	}
}
