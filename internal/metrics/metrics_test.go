package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10_000 {
		t.Fatalf("value = %d", c.Value())
	}
}

// within asserts got is within 1% of want (the bucketed histogram's accuracy
// contract).
func within(t *testing.T, label string, got, want time.Duration) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %v, want 0", label, got)
		}
		return
	}
	err := math.Abs(float64(got-want)) / float64(want)
	if err > 0.01 {
		t.Fatalf("%s = %v, want %v within 1%% (off by %.2f%%)", label, got, want, err*100)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Count, sum, mean and max are tracked exactly; quantiles come from
	// bucket midpoints and must land within 1%.
	if m := h.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	if s := h.Sum(); s != 5050*time.Millisecond {
		t.Fatalf("sum = %v", s)
	}
	within(t, "p50", h.Quantile(0.5), 50*time.Millisecond)
	within(t, "p95", h.Quantile(0.95), 95*time.Millisecond)
	if max := h.Max(); max != 100*time.Millisecond {
		t.Fatalf("max = %v", max)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramQuantileAccuracyAcrossScales(t *testing.T) {
	// From nanoseconds to minutes: every reconstructed quantile must stay
	// within the 1% contract of the exact order statistic.
	for _, base := range []time.Duration{time.Nanosecond, time.Microsecond, time.Millisecond, time.Second, time.Minute} {
		var h Histogram
		samples := make([]time.Duration, 0, 1000)
		for i := 1; i <= 1000; i++ {
			d := base * time.Duration(i)
			h.Observe(d)
			samples = append(samples, d)
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			idx := int(math.Ceil(q*1000)) - 1
			within(t, "quantile", h.Quantile(q), samples[idx])
		}
	}
}

func TestHistogramBoundedWithoutOptIn(t *testing.T) {
	var h Histogram
	for i := 0; i < 200_000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Samples(); got != nil {
		t.Fatalf("raw samples retained without opt-in: %d", len(got))
	}
	if h.Count() != 200_000 {
		t.Fatalf("count = %d", h.Count())
	}
	// The bucket array is capped by the index range, not the sample count.
	if n := len(h.buckets); n > 3776 {
		t.Fatalf("bucket array grew to %d entries", n)
	}
}

func TestHistogramExactSampleOptIn(t *testing.T) {
	RetainExactSamples(true)
	defer RetainExactSamples(false)
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	got := h.Samples()
	if len(got) != 10 || got[0] != time.Millisecond || got[9] != 10*time.Millisecond {
		t.Fatalf("samples = %v", got)
	}
}

func TestRegistryReuseAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(3)
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Histogram("h").Observe(time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0] != (NameValue{"a", 2}) || snap[1] != (NameValue{"b", 3}) {
		t.Fatalf("snapshot = %v", snap)
	}
	hists := r.Histograms()
	if len(hists) != 1 || hists[0].Name != "h" || hists[0].Hist.Count() != 1 {
		t.Fatalf("histograms = %v", hists)
	}
	if !strings.Contains(r.String(), "a") {
		t.Fatal("String missing counter")
	}
	r.ResetAll()
	if r.Counter("a").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("ResetAll incomplete")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 4000 {
		t.Fatalf("shared = %d", r.Counter("shared").Value())
	}
}
