package datalink

import (
	"testing"
	"testing/quick"
)

func TestModeStringRoundTrip(t *testing.T) {
	names := []string{"nff", "rff", "rfb", "rdb", "rfd", "rdd"}
	for i, m := range Modes {
		if m.String() != names[i] {
			t.Errorf("mode %d string = %s, want %s", i, m, names[i])
		}
		parsed, err := ParseMode(names[i])
		if err != nil || parsed != m {
			t.Errorf("parse %s = %v, %v", names[i], parsed, err)
		}
	}
	if _, err := ParseMode("zzz"); err == nil {
		t.Error("ParseMode(zzz) should fail")
	}
	if _, err := ParseMode("rbb"); err == nil {
		t.Error("rbb is invalid (read access is never blocked)")
	}
}

// TestTable1 checks the exact semantics of Table 1 of the paper, extended
// with the two new update modes.
func TestTable1(t *testing.T) {
	cases := []struct {
		mode          ControlMode
		integrity     bool
		readByDBMS    bool
		writeAllowed  bool
		updateManaged bool
		fullControl   bool
	}{
		{NFF, false, false, true, false, false},
		{RFF, true, false, true, false, false},
		{RFB, true, false, false, false, false},
		{RDB, true, true, false, false, true},
		{RFD, true, false, true, true, false},
		{RDD, true, true, true, true, true},
	}
	for _, c := range cases {
		if got := c.mode.Linked(); got != c.integrity {
			t.Errorf("%s Linked = %v, want %v", c.mode, got, c.integrity)
		}
		if got := c.mode.ReadNeedsToken(); got != c.readByDBMS {
			t.Errorf("%s ReadNeedsToken = %v, want %v", c.mode, got, c.readByDBMS)
		}
		if got := c.mode.WriteAllowed(); got != c.writeAllowed {
			t.Errorf("%s WriteAllowed = %v, want %v", c.mode, got, c.writeAllowed)
		}
		if got := c.mode.UpdateManaged(); got != c.updateManaged {
			t.Errorf("%s UpdateManaged = %v, want %v", c.mode, got, c.updateManaged)
		}
		if got := c.mode.FullControl(); got != c.fullControl {
			t.Errorf("%s FullControl = %v, want %v", c.mode, got, c.fullControl)
		}
	}
}

func TestParseURL(t *testing.T) {
	l, err := Parse("dlfs://server1/movies/clip.mpg")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if l.Server != "server1" || l.Path != "/movies/clip.mpg" {
		t.Fatalf("link = %+v", l)
	}
	if l.URL() != "dlfs://server1/movies/clip.mpg" {
		t.Fatalf("url round trip = %s", l.URL())
	}
}

func TestParseURLErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"http://server/p",
		"dlfs://",
		"dlfs://server",
		"dlfs://server/",
		"dlfs:///path",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestScalarHelpers(t *testing.T) {
	l := MustParse("dlfs://fsrv/a/b.txt")
	if DLURLPath(l) != "/a/b.txt" {
		t.Errorf("DLURLPath = %s", DLURLPath(l))
	}
	if DLURLServer(l) != "fsrv" {
		t.Errorf("DLURLServer = %s", DLURLServer(l))
	}
	if DLURLScheme(l) != "dlfs" {
		t.Errorf("DLURLScheme = %s", DLURLScheme(l))
	}
	if l.IsZero() {
		t.Error("parsed link should not be zero")
	}
	if !(Link{}).IsZero() {
		t.Error("zero link should be zero")
	}
}

func TestParseColumnOptions(t *testing.T) {
	opts, err := ParseColumnOptions("MODE RDD RECOVERY YES TOKEN 300")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if opts.Mode != RDD || !opts.Recovery || opts.TokenTTLSecs != 300 {
		t.Fatalf("opts = %+v", opts)
	}
	opts, err = ParseColumnOptions("MODE RFB RECOVERY NO")
	if err != nil || opts.Mode != RFB || opts.Recovery {
		t.Fatalf("opts = %+v, %v", opts, err)
	}
	// Defaults.
	opts, err = ParseColumnOptions("")
	if err != nil || opts != DefaultOptions {
		t.Fatalf("empty opts = %+v, %v", opts, err)
	}
	for _, bad := range []string{"MODE", "MODE XYZ", "RECOVERY", "RECOVERY MAYBE", "TOKEN", "TOKEN x", "FROBNICATE"} {
		if _, err := ParseColumnOptions(bad); err == nil {
			t.Errorf("ParseColumnOptions(%q) should fail", bad)
		}
	}
}

// Property: URL formatting and parsing are inverse for well-formed links.
func TestURLRoundTripProperty(t *testing.T) {
	prop := func(server, path string) bool {
		// Constrain to the charset a real deployment uses.
		if server == "" || path == "" {
			return true
		}
		for _, r := range server {
			if r == '/' || r < 33 || r > 126 {
				return true
			}
		}
		for _, r := range path {
			if r < 33 || r > 126 {
				return true
			}
		}
		l := Link{Server: server, Path: "/" + path}
		got, err := Parse(l.URL())
		return err == nil && got == l
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
