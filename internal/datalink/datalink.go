// Package datalink defines the DATALINK SQL data type of the SQL/MED draft
// standard the paper builds on: a typed reference (URL) to an external file,
// together with the column control modes of Table 1 and the paper's two new
// update modes rfd and rdd.
package datalink

import (
	"errors"
	"fmt"
	"strings"
)

// Scheme is the URL scheme used by DataLinks file references.
const Scheme = "dlfs"

// IntegrityOpt says whether the DBMS guarantees referential integrity of the
// reference (the file cannot be removed/renamed while linked).
type IntegrityOpt uint8

// Integrity options: 'n' (none) and 'r' (referential integrity enforced).
const (
	IntegrityNone IntegrityOpt = iota + 1
	IntegrityRef
)

// AccessCtl says who controls a class of access to the linked file.
type AccessCtl uint8

// Access controllers: the file system ('f'), blocked entirely ('b'), or the
// DBMS ('d', token-gated).
const (
	CtlFS AccessCtl = iota + 1
	CtlBlocked
	CtlDBMS
)

func (c AccessCtl) letter() byte {
	switch c {
	case CtlFS:
		return 'f'
	case CtlBlocked:
		return 'b'
	case CtlDBMS:
		return 'd'
	default:
		return '?'
	}
}

// ControlMode is a three-attribute control mode: referential integrity,
// read access control, write access control (Table 1 plus §2.4's rfd, rdd).
type ControlMode struct {
	Integrity IntegrityOpt
	Read      AccessCtl // never CtlBlocked: "read access is never blocked"
	Write     AccessCtl
}

// The six valid control modes. NFF is "not really managed"; RFF adds
// referential integrity; RFB additionally blocks writes; RDB adds DB-managed
// reads; RFD and RDD are the paper's contribution: DB-managed update.
var (
	NFF = ControlMode{IntegrityNone, CtlFS, CtlFS}
	RFF = ControlMode{IntegrityRef, CtlFS, CtlFS}
	RFB = ControlMode{IntegrityRef, CtlFS, CtlBlocked}
	RDB = ControlMode{IntegrityRef, CtlDBMS, CtlBlocked}
	RFD = ControlMode{IntegrityRef, CtlFS, CtlDBMS}
	RDD = ControlMode{IntegrityRef, CtlDBMS, CtlDBMS}
)

// Modes lists every valid control mode in Table 1 order (extended).
var Modes = []ControlMode{NFF, RFF, RFB, RDB, RFD, RDD}

// String renders the three-letter mode name, e.g. "rdd".
func (m ControlMode) String() string {
	i := byte('n')
	if m.Integrity == IntegrityRef {
		i = 'r'
	}
	return string([]byte{i, m.Read.letter(), m.Write.letter()})
}

// ParseMode inverts String.
func ParseMode(s string) (ControlMode, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	for _, m := range Modes {
		if m.String() == s {
			return m, nil
		}
	}
	return ControlMode{}, fmt.Errorf("datalink: invalid control mode %q", s)
}

// Valid reports whether m is one of the six supported modes.
func (m ControlMode) Valid() bool {
	for _, v := range Modes {
		if m == v {
			return true
		}
	}
	return false
}

// FullControl reports whether the file is under full control of the database:
// neither read nor write access is controlled by the file system (§2.1).
// Under full control DLFM takes over file ownership at link time.
func (m ControlMode) FullControl() bool {
	return m.Read != CtlFS && m.Write != CtlFS
}

// Linked reports whether files in this mode are registered with DLFM at all.
func (m ControlMode) Linked() bool { return m.Integrity == IntegrityRef }

// WriteAllowed reports whether any write path exists (via FS or via token).
func (m ControlMode) WriteAllowed() bool { return m.Write != CtlBlocked }

// UpdateManaged reports whether this is one of the paper's update modes,
// where the DBMS manages in-place update (write tokens, update transactions).
func (m ControlMode) UpdateManaged() bool { return m.Write == CtlDBMS }

// ReadNeedsToken reports whether read opens require a DB-issued read token.
func (m ControlMode) ReadNeedsToken() bool { return m.Read == CtlDBMS }

// Link is a DATALINK value: a reference to an external file.
type Link struct {
	Server string // file server name, e.g. "fileserver1"
	Path   string // absolute path on that server, e.g. "/movies/clip1.mpg"
}

// Parse errors.
var (
	ErrBadURL = errors.New("datalink: malformed DATALINK URL")
)

// Parse decodes "dlfs://server/path" into a Link.
func Parse(url string) (Link, error) {
	rest, ok := strings.CutPrefix(url, Scheme+"://")
	if !ok {
		return Link{}, fmt.Errorf("%w: %q (want scheme %s)", ErrBadURL, url, Scheme)
	}
	slash := strings.Index(rest, "/")
	if slash <= 0 {
		return Link{}, fmt.Errorf("%w: %q (missing server or path)", ErrBadURL, url)
	}
	l := Link{Server: rest[:slash], Path: rest[slash:]}
	if l.Path == "/" {
		return Link{}, fmt.Errorf("%w: %q (empty path)", ErrBadURL, url)
	}
	return l, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(url string) Link {
	l, err := Parse(url)
	if err != nil {
		panic(err)
	}
	return l
}

// URL renders the link as a DATALINK URL.
func (l Link) URL() string { return Scheme + "://" + l.Server + l.Path }

// String implements fmt.Stringer.
func (l Link) String() string { return l.URL() }

// IsZero reports whether the link is unset (SQL NULL DATALINK).
func (l Link) IsZero() bool { return l.Server == "" && l.Path == "" }

// SQL/MED scalar functions (subset). DLURLCOMPLETE is produced by the engine
// because it embeds a freshly issued token; the pure-string ones live here.

// DLValue constructs a Link from a URL string (the DLVALUE scalar function).
func DLValue(url string) (Link, error) { return Parse(url) }

// DLURLPath returns the path component with no token (DLURLPATHONLY).
func DLURLPath(l Link) string { return l.Path }

// DLURLServer returns the file server name (DLURLSERVER).
func DLURLServer(l Link) string { return l.Server }

// DLURLScheme returns the URL scheme (DLURLSCHEME).
func DLURLScheme(l Link) string { return Scheme }

// ColumnOptions carries the per-column DATALINK options a CREATE TABLE may
// specify (§2.1): the control mode, whether recovery (archiving/point-in-time
// restore) applies, and the write-token lifetime.
type ColumnOptions struct {
	Mode         ControlMode
	Recovery     bool // "RECOVERY YES": versions archived, restore supported
	TokenTTLSecs int  // expiry for issued tokens; 0 = authority default
}

// DefaultOptions is the mode used when a DATALINK column gives no options.
var DefaultOptions = ColumnOptions{Mode: RFB, Recovery: false}

// ParseColumnOptions decodes the option string accepted in CREATE TABLE,
// e.g. "MODE RDD RECOVERY YES TOKEN 300". Unknown words are rejected.
func ParseColumnOptions(s string) (ColumnOptions, error) {
	opts := DefaultOptions
	fields := strings.Fields(strings.ToUpper(s))
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case "MODE":
			if i+1 >= len(fields) {
				return opts, errors.New("datalink: MODE needs a value")
			}
			m, err := ParseMode(fields[i+1])
			if err != nil {
				return opts, err
			}
			opts.Mode = m
			i++
		case "RECOVERY":
			if i+1 >= len(fields) {
				return opts, errors.New("datalink: RECOVERY needs YES or NO")
			}
			switch fields[i+1] {
			case "YES":
				opts.Recovery = true
			case "NO":
				opts.Recovery = false
			default:
				return opts, fmt.Errorf("datalink: RECOVERY %q not YES/NO", fields[i+1])
			}
			i++
		case "TOKEN":
			if i+1 >= len(fields) {
				return opts, errors.New("datalink: TOKEN needs a TTL in seconds")
			}
			var ttl int
			if _, err := fmt.Sscanf(fields[i+1], "%d", &ttl); err != nil || ttl <= 0 {
				return opts, fmt.Errorf("datalink: bad TOKEN TTL %q", fields[i+1])
			}
			opts.TokenTTLSecs = ttl
			i++
		default:
			return opts, fmt.Errorf("datalink: unknown column option %q", fields[i])
		}
	}
	return opts, nil
}
