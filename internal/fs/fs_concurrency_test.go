package fs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestParallelReadersWritersDistinctFiles drives many goroutines doing
// content I/O on disjoint files while namespace operations run alongside.
// It is a -race canary for the per-inode locking: no reader or writer of one
// file may share mutable state with another file's I/O.
func TestParallelReadersWritersDistinctFiles(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/data", Cred{UID: Root}, 0o777); err != nil {
		t.Fatal(err)
	}
	const files = 8
	inos := make([]*Inode, files)
	for i := range inos {
		n, err := f.Create(fmt.Sprintf("/data/f%d", i), Cred{UID: Root}, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(n, 0, bytes.Repeat([]byte{byte('a' + i)}, 4096)); err != nil {
			t.Fatal(err)
		}
		inos[i] = n
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := inos[g%files]
			buf := make([]byte, 4096)
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					if _, err := f.ReadAt(n, 0, buf); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := f.WriteAt(n, int64(i%128), []byte{byte(i)}); err != nil {
						errs <- err
						return
					}
				}
				if i%50 == 0 {
					if _, err := f.Getattr(n); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	// Namespace churn in parallel: create/remove files in a sibling dir.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("/data/tmp-%d-%d", g, i)
				if _, err := f.Create(p, Cred{UID: Root}, 0o644); err != nil {
					errs <- err
					return
				}
				if _, err := f.Lookup(p); err != nil {
					errs <- err
					return
				}
				if err := f.Remove(p, Cred{UID: Root}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every original file is still intact and fully readable.
	for i, n := range inos {
		data, err := f.ReadFile(fmt.Sprintf("/data/f%d", i))
		if err != nil || len(data) != 4096 {
			t.Fatalf("file %d after stress: len=%d err=%v", i, len(data), err)
		}
		_ = n
	}
}

// TestParallelNamespaceSiblingDirs churns disjoint directories concurrently:
// with per-directory namespace locks, create/remove/rename in one directory
// must neither race nor serialize against another's. Cross-directory renames
// and Rmdir/Create races on the same directory run alongside to exercise the
// two-lock (inode-number-ordered) paths under -race.
func TestParallelNamespaceSiblingDirs(t *testing.T) {
	f := New()
	const dirs = 8
	for d := 0; d < dirs; d++ {
		if err := f.MkdirAll(fmt.Sprintf("/d%d", d), Cred{UID: Root}, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Per-directory churn: create, list, rename within the dir, remove.
	for d := 0; d < dirs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				p := fmt.Sprintf("/d%d/a%d", d, i)
				q := fmt.Sprintf("/d%d/b%d", d, i)
				if _, err := f.Create(p, Cred{UID: Root}, 0o644); err != nil {
					errs <- err
					return
				}
				if err := f.Rename(p, q, Cred{UID: Root}); err != nil {
					errs <- err
					return
				}
				if _, err := f.ReadDir(fmt.Sprintf("/d%d", d)); err != nil {
					errs <- err
					return
				}
				if err := f.Remove(q, Cred{UID: Root}); err != nil {
					errs <- err
					return
				}
			}
		}(d)
	}
	// Cross-directory renames between adjacent dirs (two-lock path).
	for d := 0; d < dirs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			src := fmt.Sprintf("/d%d", d)
			dst := fmt.Sprintf("/d%d", (d+1)%dirs)
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("%s/x-%d-%d", src, d, i)
				q := fmt.Sprintf("%s/x-%d-%d", dst, d, i)
				if _, err := f.Create(p, Cred{UID: Root}, 0o644); err != nil {
					errs <- err
					return
				}
				if err := f.Rename(p, q, Cred{UID: Root}); err != nil {
					errs <- err
					return
				}
				if err := f.Remove(q, Cred{UID: Root}); err != nil {
					errs <- err
					return
				}
			}
		}(d)
	}
	// Rmdir vs Create races on short-lived subdirectories: a create that
	// loses the race must fail with ErrNotExist, never resurrect the dir.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				dp := fmt.Sprintf("/d%d/sub-%d-%d", g%dirs, g, i)
				if _, err := f.Mkdir(dp, Cred{UID: Root}, 0o777); err != nil {
					errs <- err
					return
				}
				done := make(chan struct{})
				go func() {
					defer close(done)
					_, err := f.Create(dp+"/leak", Cred{UID: Root}, 0o644)
					if err != nil && !errors.Is(err, ErrNotExist) {
						errs <- err
					}
				}()
				// Retry until the dir empties (the racing create may land first).
				for {
					err := f.Rmdir(dp, Cred{UID: Root})
					if err == nil {
						break
					}
					if errors.Is(err, ErrNotEmpty) {
						<-done
						if err := f.Remove(dp+"/leak", Cred{UID: Root}); err != nil && !errors.Is(err, ErrNotExist) {
							errs <- err
							return
						}
						continue
					}
					errs <- err
					return
				}
				<-done
				// Tombstoned: nothing may be created inside it any more.
				if _, err := f.Create(dp+"/late", Cred{UID: Root}, 0o644); !errors.Is(err, ErrNotExist) {
					errs <- fmt.Errorf("create in removed dir = %v, want ErrNotExist", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All churn cleaned up: every directory is empty again.
	for d := 0; d < dirs; d++ {
		names, err := f.ReadDir(fmt.Sprintf("/d%d", d))
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 0 {
			t.Fatalf("/d%d not empty after churn: %v", d, names)
		}
	}
}

// TestParallelSharedFileReaders checks that concurrent readers of one file
// return consistent full copies while a single writer replaces content with
// uniform blocks (readers must never see a torn mix inside one ReadAt call
// because writers hold the inode lock exclusively).
func TestParallelSharedFileReaders(t *testing.T) {
	f := New()
	n, err := f.Create("/shared.bin", Cred{UID: Root}, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const size = 8192
	if _, err := f.WriteAt(n, 0, bytes.Repeat([]byte{0}, size)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for v := byte(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := f.WriteAt(n, 0, bytes.Repeat([]byte{v}, size)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	var torn int
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			buf := make([]byte, size)
			for i := 0; i < 100; i++ {
				c, err := f.ReadAt(n, 0, buf)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 1; j < c; j++ {
					if buf[j] != buf[0] {
						mu.Lock()
						torn++
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
	if torn != 0 {
		t.Fatalf("%d torn reads observed", torn)
	}
}

// TestParallelAdvisoryLocks hammers Lockctl/TryLockctl from many owners on
// one inode while other goroutines lock a different inode: per-inode lock
// state must neither race nor cross-block.
func TestParallelAdvisoryLocks(t *testing.T) {
	f := New()
	a, _ := f.Create("/a.bin", Cred{UID: Root}, 0o644)
	b, _ := f.Create("/b.bin", Cred{UID: Root}, 0o644)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := a
			if g%2 == 0 {
				n = b
			}
			owner := fmt.Sprintf("o%d", g)
			for i := 0; i < 100; i++ {
				if err := f.Lockctl(n, owner, LockExclusive); err != nil {
					t.Error(err)
					return
				}
				if err := f.TryLockctl(n, owner, LockUnlock); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, n := range []*Inode{a, b} {
		if w, rs := f.LockState(n); w != "" || len(rs) != 0 {
			t.Fatalf("lock leaked: writer=%q readers=%v", w, rs)
		}
	}
}

// TestLockctlMissedWakeup regression-tests the waiter registration: a waiter
// must be woken even when the unlock lands between its failed try and its
// registration (the blocking loop re-checks under the inode's lock mutex).
func TestLockctlMissedWakeup(t *testing.T) {
	f := New()
	n, _ := f.Create("/w.bin", Cred{UID: Root}, 0o644)
	for i := 0; i < 200; i++ {
		if err := f.TryLockctl(n, "holder", LockExclusive); err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() { got <- f.Lockctl(n, "waiter", LockExclusive) }()
		// Unlock immediately — with the old racy registration the waiter
		// could hang forever here.
		if err := f.TryLockctl(n, "holder", LockUnlock); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
		if err := f.TryLockctl(n, "waiter", LockUnlock); err != nil {
			t.Fatal(err)
		}
	}
	if errors.Is(f.TryLockctl(n, "x", LockExclusive), ErrLocked) {
		t.Fatal("lock left held after test")
	}
}
