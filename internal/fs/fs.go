// Package fs implements the physical file system substrate that DataLinks
// manages: an in-memory UNIX-like file system with inodes, ownership,
// permission bits, modification times, and advisory whole-file locks.
//
// It stands in for the AIX JFS/UFS file systems of the paper. The DataLinks
// File System (internal/dlfs) interposes on it through the VFS interface in
// internal/vfs; this package knows nothing about databases or links.
//
// The file system is "the disk": it survives simulated crashes as-is,
// including partially written files — which is precisely why the DLFM
// archive-restore protocol of the paper is needed for update atomicity.
//
// Locking is deliberately fine-grained so concurrent clients scale:
//
//   - Every directory carries its own namespace lock (Inode.nsMu) guarding
//     just its children map. Path resolution walks hand-over-hand, holding
//     one directory's read lock at a time; create/remove/rename write-lock
//     only the parent directories they mutate. Namespace traffic in one
//     directory never serializes against another — there is no tree-wide
//     lock.
//   - Every inode carries its own read/write lock (Inode.mu) guarding its
//     attributes and data. Content reads copy under the inode's read lock
//     only, so readers of different files — and multiple readers of the same
//     file — never serialize against each other or against namespace ops.
//   - Link counts and the inode-number allocator are atomics.
//   - Advisory locks (fs_lockctl) have a separate per-inode mutex so lock
//     traffic on one file cannot block I/O on another.
//   - Op counters are atomics, off every lock entirely.
//
// Lock order: when an operation needs two directory nsMu locks (Rmdir's
// emptiness check, Rename's two parents) it acquires them in increasing
// inode-number order; everything else holds at most one nsMu. An Inode.mu
// may be taken while holding an nsMu (permission checks, mtime touches),
// never the reverse. lkMu is leaf-level and independent.
//
// With no tree-wide lock, a path resolved by one operation can be
// concurrently renamed by another; operations act atomically on the inodes
// resolution yielded, the same lookup/op race every real VFS exposes.
package fs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/extent"
)

// UID identifies a user. UID 0 is root and bypasses permission checks.
type UID int32

// Root is the superuser; permission checks always succeed for it.
const Root UID = 0

// Cred carries the credentials of the process issuing a file operation.
type Cred struct {
	UID UID
}

// FileMode holds UNIX-style permission bits. Only the lower 9 bits are used.
type FileMode uint16

// Permission bit masks for owner and everyone else. Group permissions exist
// for completeness but DataLinks only distinguishes owner vs other.
const (
	ModeOwnerRead  FileMode = 0o400
	ModeOwnerWrite FileMode = 0o200
	ModeGroupRead  FileMode = 0o040
	ModeGroupWrite FileMode = 0o020
	ModeOtherRead  FileMode = 0o004
	ModeOtherWrite FileMode = 0o002
)

// AccessMode is the mode with which a file is opened.
type AccessMode uint8

// Open access modes.
const (
	AccessRead AccessMode = 1 << iota
	AccessWrite
)

// ReadWrite is a convenience constant for read-write opens.
const ReadWrite = AccessRead | AccessWrite

func (m AccessMode) String() string {
	switch m {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case ReadWrite:
		return "read-write"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// Errors returned by file system operations. They mirror the errno values a
// real VFS would surface; DLFS dispatches on ErrPermission to trigger the
// rfd write-open upcall path exactly as the paper describes.
var (
	ErrNotExist   = errors.New("fs: no such file or directory")
	ErrExist      = errors.New("fs: file exists")
	ErrPermission = errors.New("fs: permission denied")
	ErrIsDir      = errors.New("fs: is a directory")
	ErrNotDir     = errors.New("fs: not a directory")
	ErrNotEmpty   = errors.New("fs: directory not empty")
	ErrLocked     = errors.New("fs: file locked")
	ErrInvalid    = errors.New("fs: invalid argument")
)

// NodeType distinguishes files from directories.
type NodeType uint8

// Inode types.
const (
	TypeFile NodeType = iota + 1
	TypeDir
)

// Attr is the stat-like attribute block of an inode.
type Attr struct {
	Ino   uint64
	Type  NodeType
	UID   UID
	Mode  FileMode
	Size  int64
	Mtime time.Time
}

// Inode is a file or directory. Callers treat *Inode as an opaque vnode
// pointer; all field access goes through FS methods so locking stays inside
// the package.
type Inode struct {
	ino uint64   // immutable after creation
	typ NodeType // immutable after creation

	// mu guards the attribute block and file content. Content is an extent
	// buffer: writes copy-on-write only the 64 KiB chunks they touch, and
	// snapshots (the archive path) are O(#chunks) reference grabs instead of
	// whole-file copies.
	mu    sync.RWMutex
	uid   UID
	mode  FileMode
	mtime time.Time
	data  extent.Buffer

	// nsMu is this directory's namespace lock, guarding children. Mutating
	// a directory takes it exclusive; resolution and listing take it shared.
	// Unused on files.
	nsMu     sync.RWMutex
	children map[string]*Inode // directories only

	// nlink is the link count: 0 once unlinked (data stays readable for open
	// handles). For directories it doubles as the liveness flag Create checks
	// so a racing Rmdir cannot resurrect a detached directory.
	nlink atomic.Int32

	// Advisory lock state, guarded by its own mutex so lock traffic on one
	// file never blocks content I/O on another.
	lkMu sync.Mutex
	lock fileLock
}

// Ino returns the inode number, stable for the life of the file.
func (n *Inode) Ino() uint64 { return n.ino }

// fileLock is an advisory whole-file read/write lock (fs_lockctl).
type fileLock struct {
	readers map[string]int // owner -> count
	writer  string         // owner holding the exclusive lock, "" if none
	waiters []chan struct{}
}

// LockOp selects the fs_lockctl operation.
type LockOp uint8

// Lock operations: shared (read) lock, exclusive (write) lock, unlock.
const (
	LockShared LockOp = iota + 1
	LockExclusive
	LockUnlock
)

// Clock supplies the current time; injectable for deterministic tests.
type Clock func() time.Time

// Stats holds the op counters, read by the experiment harness as "syscall
// counts". All fields are atomics so the hot paths never take a lock for
// accounting.
type Stats struct {
	Lookups  atomic.Int64
	Opens    atomic.Int64
	Reads    atomic.Int64
	Writes   atomic.Int64
	Removes  atomic.Int64
	Renames  atomic.Int64
	Setattrs atomic.Int64
}

// FS is an in-memory file system. All methods are safe for concurrent use.
type FS struct {
	root  *Inode
	next  atomic.Uint64 // inode-number allocator
	clock Clock

	Stats Stats
}

// New returns an empty file system with a root directory owned by root.
func New() *FS {
	return NewWithClock(time.Now)
}

// NewWithClock returns an empty file system using the given clock.
func NewWithClock(clock Clock) *FS {
	f := &FS{clock: clock}
	f.next.Store(1)
	f.root = &Inode{
		ino:      1,
		typ:      TypeDir,
		uid:      Root,
		mode:     0o755,
		mtime:    clock(),
		children: make(map[string]*Inode),
	}
	f.root.nlink.Store(1)
	return f
}

// clean normalizes a path to an absolute, slash-separated form.
func clean(p string) (string, error) {
	if p == "" {
		return "", ErrInvalid
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p), nil
}

// split returns the parent directory path and base name of p.
func split(p string) (dir, base string) {
	dir, base = path.Split(p)
	if dir != "/" {
		dir = strings.TrimSuffix(dir, "/")
	}
	if dir == "" {
		dir = "/"
	}
	return dir, base
}

// resolve walks the tree to the inode at p, hand-over-hand: each step holds
// only the current directory's namespace read lock, so resolutions in
// disjoint subtrees never contend.
func (f *FS) resolve(p string) (*Inode, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	cur := f.root
	if p == "/" {
		return cur, nil
	}
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if cur.typ != TypeDir {
			return nil, ErrNotDir
		}
		cur.nsMu.RLock()
		child, ok := cur.children[part]
		cur.nsMu.RUnlock()
		if !ok {
			return nil, ErrNotExist
		}
		cur = child
	}
	return cur, nil
}

// permOK reports whether cred may access an inode with the given mode.
// Caller must hold n.mu (shared or exclusive).
func permOK(n *Inode, cred Cred, want AccessMode) bool {
	if cred.UID == Root {
		return true
	}
	var readBit, writeBit FileMode
	if n.uid == cred.UID {
		readBit, writeBit = ModeOwnerRead, ModeOwnerWrite
	} else {
		readBit, writeBit = ModeOtherRead, ModeOtherWrite
	}
	if want&AccessRead != 0 && n.mode&readBit == 0 {
		return false
	}
	if want&AccessWrite != 0 && n.mode&writeBit == 0 {
		return false
	}
	return true
}

// permCheck takes the inode's read lock for a permission check.
func permCheck(n *Inode, cred Cred, want AccessMode) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return permOK(n, cred, want)
}

// Lookup resolves a path to its inode without any permission check on the
// target (matching UNIX fs_lookup semantics used by LFS before fs_open).
func (f *FS) Lookup(p string) (*Inode, error) {
	f.Stats.Lookups.Add(1)
	return f.resolve(p)
}

// OpenCheck performs the fs_open permission check against an inode. It does
// not allocate any handle state; the LFS layer owns the open-file table.
func (f *FS) OpenCheck(n *Inode, cred Cred, mode AccessMode) error {
	f.Stats.Opens.Add(1)
	if n == nil {
		return ErrInvalid
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.typ == TypeDir && mode&AccessWrite != 0 {
		return ErrIsDir
	}
	if !permOK(n, cred, mode) {
		return ErrPermission
	}
	return nil
}

// lockParent resolves the parent directory of p and write-locks its
// namespace, verifying under the lock that the directory is still linked
// (a racing Rmdir may have detached it after resolution). The caller must
// release dir.nsMu.
func (f *FS) lockParent(p string) (dir *Inode, base string, err error) {
	dirPath, base := split(p)
	dir, err = f.resolve(dirPath)
	if err != nil {
		return nil, "", err
	}
	if dir.typ != TypeDir {
		return nil, "", ErrNotDir
	}
	dir.nsMu.Lock()
	if dir.nlink.Load() == 0 {
		dir.nsMu.Unlock()
		return nil, "", ErrNotExist
	}
	return dir, base, nil
}

// Create makes a new empty file at p owned by cred with the given mode.
func (f *FS) Create(p string, cred Cred, mode FileMode) (*Inode, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	dir, base, err := f.lockParent(p)
	if err != nil {
		return nil, err
	}
	defer dir.nsMu.Unlock()
	if !permCheck(dir, cred, AccessWrite) {
		return nil, ErrPermission
	}
	if _, ok := dir.children[base]; ok {
		return nil, ErrExist
	}
	n := &Inode{
		ino:   f.next.Add(1),
		typ:   TypeFile,
		uid:   cred.UID,
		mode:  mode,
		mtime: f.clock(),
	}
	n.nlink.Store(1)
	dir.children[base] = n
	f.touch(dir)
	return n, nil
}

// touch sets an inode's mtime to now under its attribute lock.
func (f *FS) touch(n *Inode) {
	now := f.clock()
	n.mu.Lock()
	n.mtime = now
	n.mu.Unlock()
}

// Mkdir creates a directory at p.
func (f *FS) Mkdir(p string, cred Cred, mode FileMode) (*Inode, error) {
	p, err := clean(p)
	if err != nil {
		return nil, err
	}
	dir, base, err := f.lockParent(p)
	if err != nil {
		return nil, err
	}
	defer dir.nsMu.Unlock()
	if !permCheck(dir, cred, AccessWrite) {
		return nil, ErrPermission
	}
	if _, ok := dir.children[base]; ok {
		return nil, ErrExist
	}
	n := &Inode{
		ino:      f.next.Add(1),
		typ:      TypeDir,
		uid:      cred.UID,
		mode:     mode,
		mtime:    f.clock(),
		children: make(map[string]*Inode),
	}
	n.nlink.Store(1)
	dir.children[base] = n
	return n, nil
}

// MkdirAll creates p and any missing parents, ignoring ErrExist.
func (f *FS) MkdirAll(p string, cred Cred, mode FileMode) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if _, err := f.Mkdir(cur, cred, mode); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Remove unlinks the file at p. Directories must be removed with Rmdir.
func (f *FS) Remove(p string, cred Cred) error {
	f.Stats.Removes.Add(1)
	p, err := clean(p)
	if err != nil {
		return err
	}
	dir, base, err := f.lockParent(p)
	if err != nil {
		return err
	}
	defer dir.nsMu.Unlock()
	n, ok := dir.children[base]
	if !ok {
		return ErrNotExist
	}
	if n.typ == TypeDir {
		return ErrIsDir
	}
	if !permCheck(dir, cred, AccessWrite) {
		return ErrPermission
	}
	delete(dir.children, base)
	if n.nlink.Add(-1) == 0 {
		f.releaseContent(n)
	}
	f.touch(dir)
	return nil
}

// releaseContent drops the chunk references of a fully unlinked inode. The
// content stays readable for open handles; extent accounting just stops
// counting it as live (a later write through a handle re-retains).
func (f *FS) releaseContent(n *Inode) {
	n.mu.Lock()
	n.data.ReleaseRefs()
	n.mu.Unlock()
}

// Rmdir removes an empty directory at p. It needs two nsMu locks at once —
// the parent's (to drop the entry) and the target's (to check emptiness and
// tombstone it against racing Creates) — so it acquires them in inode-number
// order, backing off and re-verifying the binding when the target's ino is
// the smaller one (possible only after a directory rename).
func (f *FS) Rmdir(p string, cred Cred) error {
	p, err := clean(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return ErrInvalid
	}
	dir, base, err := f.lockParent(p)
	if err != nil {
		return err
	}
	defer dir.nsMu.Unlock()
	n, ok := dir.children[base]
	if !ok {
		return ErrNotExist
	}
	if n.typ != TypeDir {
		return ErrNotDir
	}
	if n.ino > dir.ino {
		n.nsMu.Lock()
	} else {
		dir.nsMu.Unlock()
		n.nsMu.Lock()
		dir.nsMu.Lock()
		if dir.nlink.Load() == 0 {
			n.nsMu.Unlock()
			return ErrNotExist
		}
		if cur, ok := dir.children[base]; !ok || cur != n {
			n.nsMu.Unlock()
			return ErrNotExist
		}
	}
	defer n.nsMu.Unlock()
	if len(n.children) != 0 {
		return ErrNotEmpty
	}
	if !permCheck(dir, cred, AccessWrite) {
		return ErrPermission
	}
	delete(dir.children, base)
	n.nlink.Store(0)
	return nil
}

// lockDirPair write-locks two directory namespaces in inode-number order
// (one lock if they are the same directory) — the package's lock-order
// discipline for two-lock operations.
func lockDirPair(a, b *Inode) {
	switch {
	case a == b:
		a.nsMu.Lock()
	case a.ino < b.ino:
		a.nsMu.Lock()
		b.nsMu.Lock()
	default:
		b.nsMu.Lock()
		a.nsMu.Lock()
	}
}

func unlockDirPair(a, b *Inode) {
	a.nsMu.Unlock()
	if a != b {
		b.nsMu.Unlock()
	}
}

// Rename moves oldp to newp, replacing any existing file at newp.
func (f *FS) Rename(oldp, newp string, cred Cred) error {
	f.Stats.Renames.Add(1)
	oldp, err := clean(oldp)
	if err != nil {
		return err
	}
	newp, err = clean(newp)
	if err != nil {
		return err
	}
	oldDirPath, oldBase := split(oldp)
	newDirPath, newBase := split(newp)
	oldDir, err := f.resolve(oldDirPath)
	if err != nil {
		return err
	}
	newDir, err := f.resolve(newDirPath)
	if err != nil {
		return err
	}
	if oldDir.typ != TypeDir || newDir.typ != TypeDir {
		return ErrNotDir
	}
	lockDirPair(oldDir, newDir)
	defer unlockDirPair(oldDir, newDir)
	if oldDir.nlink.Load() == 0 || newDir.nlink.Load() == 0 {
		return ErrNotExist
	}
	n, ok := oldDir.children[oldBase]
	if !ok {
		return ErrNotExist
	}
	if !permCheck(oldDir, cred, AccessWrite) || !permCheck(newDir, cred, AccessWrite) {
		return ErrPermission
	}
	if existing, ok := newDir.children[newBase]; ok {
		if existing.typ == TypeDir {
			return ErrIsDir
		}
		if existing.nlink.Add(-1) == 0 {
			f.releaseContent(existing)
		}
	}
	delete(oldDir.children, oldBase)
	newDir.children[newBase] = n
	f.touch(oldDir)
	if newDir != oldDir {
		f.touch(newDir)
	}
	return nil
}

// ReadAt reads from the file at offset off into p, returning bytes read.
// Reading at or past EOF returns 0 with no error (callers detect EOF by n=0).
// Only the inode's read lock is taken: concurrent reads — of the same file
// or different files — proceed in parallel.
func (f *FS) ReadAt(n *Inode, off int64, p []byte) (int, error) {
	f.Stats.Reads.Add(1)
	if n == nil || n.typ != TypeFile {
		return 0, ErrInvalid
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.data.ReadAt(off, p), nil
}

// WriteAt writes p to the file at offset off, extending it as needed.
// It updates size and mtime — the metadata DLFM propagates to the database.
// Only the target inode's write lock is taken.
func (f *FS) WriteAt(n *Inode, off int64, p []byte) (int, error) {
	f.Stats.Writes.Add(1)
	if n == nil || n.typ != TypeFile {
		return 0, ErrInvalid
	}
	if off < 0 {
		return 0, ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.data.WriteAt(off, p)
	// Clock read under the inode lock: concurrent writers must leave data
	// and mtime consistent (DLFM's modification detection compares mtimes).
	n.mtime = f.clock()
	return len(p), nil
}

// Truncate sets the file length to size.
func (f *FS) Truncate(n *Inode, size int64) error {
	if n == nil || n.typ != TypeFile {
		return ErrInvalid
	}
	if size < 0 {
		return ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.data.Truncate(size)
	n.mtime = f.clock()
	return nil
}

// Getattr returns the attribute block of an inode.
func (f *FS) Getattr(n *Inode) (Attr, error) {
	if n == nil {
		return Attr{}, ErrInvalid
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return Attr{
		Ino:   n.ino,
		Type:  n.typ,
		UID:   n.uid,
		Mode:  n.mode,
		Size:  n.data.Len(),
		Mtime: n.mtime,
	}, nil
}

// Chown changes the owner of an inode. Only root (or the DLFM process running
// as root) may take over ownership — matching the take-over mechanics of §4.
func (f *FS) Chown(n *Inode, cred Cred, uid UID) error {
	f.Stats.Setattrs.Add(1)
	if n == nil {
		return ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if cred.UID != Root && cred.UID != n.uid {
		return ErrPermission
	}
	n.uid = uid
	return nil
}

// Chmod changes the permission bits of an inode.
func (f *FS) Chmod(n *Inode, cred Cred, mode FileMode) error {
	f.Stats.Setattrs.Add(1)
	if n == nil {
		return ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if cred.UID != Root && cred.UID != n.uid {
		return ErrPermission
	}
	n.mode = mode
	return nil
}

// SetMtime overrides the modification time (used by restore).
func (f *FS) SetMtime(n *Inode, t time.Time) error {
	if n == nil {
		return ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mtime = t
	return nil
}

// ReadDir lists the entries of the directory at p in sorted order.
func (f *FS) ReadDir(p string) ([]string, error) {
	dir, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	if dir.typ != TypeDir {
		return nil, ErrNotDir
	}
	dir.nsMu.RLock()
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	dir.nsMu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// ReadFile returns a copy of the whole file content at p.
func (f *FS) ReadFile(p string) ([]byte, error) {
	n, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeFile {
		return nil, ErrIsDir
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.data.Bytes(), nil
}

// WriteFile replaces the whole content of the file at p, creating it if
// needed. It bypasses permission checks (root semantics) — a convenience for
// tests and restore paths only.
func (f *FS) WriteFile(p string, data []byte) error {
	n, err := f.Lookup(p)
	if errors.Is(err, ErrNotExist) {
		n, err = f.Create(p, Cred{UID: Root}, 0o644)
		if errors.Is(err, ErrExist) {
			// A concurrent WriteFile created it between lookup and create.
			n, err = f.Lookup(p)
		}
	}
	if err != nil {
		return err
	}
	if err := f.Truncate(n, 0); err != nil {
		return err
	}
	_, err = f.WriteAt(n, 0, data)
	return err
}

// Snapshot captures a file's content as an immutable extent manifest in
// O(#chunks) — the archive path's replacement for ReadFile. The caller owns
// the returned snapshot and must Release it (or hand it to an owner that
// will).
func (f *FS) Snapshot(n *Inode) (*extent.Snapshot, error) {
	if n == nil || n.typ != TypeFile {
		return nil, ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.data.Snapshot(), nil
}

// SnapshotFile is Snapshot by path.
func (f *FS) SnapshotFile(p string) (*extent.Snapshot, error) {
	n, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeFile {
		return nil, ErrIsDir
	}
	return f.Snapshot(n)
}

// WriteSnapshot replaces a file's content with a manifest swap: the restore
// path's O(#chunks) replacement for WriteFile. The snapshot itself is not
// consumed; the file holds its own references.
func (f *FS) WriteSnapshot(n *Inode, snap *extent.Snapshot) error {
	if n == nil || n.typ != TypeFile {
		return ErrInvalid
	}
	if snap == nil {
		return ErrInvalid
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.data.SetSnapshot(snap)
	n.mtime = f.clock()
	return nil
}

// WriteFileSnapshot is WriteSnapshot by path, creating the file if needed
// (root semantics, like WriteFile).
func (f *FS) WriteFileSnapshot(p string, snap *extent.Snapshot) error {
	n, err := f.Lookup(p)
	if errors.Is(err, ErrNotExist) {
		n, err = f.Create(p, Cred{UID: Root}, 0o644)
		if errors.Is(err, ErrExist) {
			n, err = f.Lookup(p)
		}
	}
	if err != nil {
		return err
	}
	return f.WriteSnapshot(n, snap)
}

// Lockctl implements advisory whole-file locking (the fs_lockctl entry
// point). TryLockctl is the non-blocking variant. The owner string names the
// lock holder; re-locking by the same owner is idempotent for shared locks.
func (f *FS) Lockctl(n *Inode, owner string, op LockOp) error {
	if n == nil {
		return ErrInvalid
	}
	for {
		n.lkMu.Lock()
		err := n.tryLockctlLocked(owner, op)
		if !errors.Is(err, ErrLocked) {
			n.lkMu.Unlock()
			return err
		}
		// Conflict: register as a waiter on this inode before releasing the
		// lock mutex, so a concurrent unlock cannot slip through unseen.
		ch := make(chan struct{})
		n.lock.waiters = append(n.lock.waiters, ch)
		n.lkMu.Unlock()
		<-ch
	}
}

// TryLockctl attempts the lock operation without blocking, returning
// ErrLocked on conflict.
func (f *FS) TryLockctl(n *Inode, owner string, op LockOp) error {
	if n == nil {
		return ErrInvalid
	}
	n.lkMu.Lock()
	defer n.lkMu.Unlock()
	return n.tryLockctlLocked(owner, op)
}

// tryLockctlLocked applies one lock operation. Caller holds n.lkMu.
func (n *Inode) tryLockctlLocked(owner string, op LockOp) error {
	lk := &n.lock
	if lk.readers == nil {
		lk.readers = make(map[string]int)
	}
	switch op {
	case LockShared:
		if lk.writer != "" && lk.writer != owner {
			return ErrLocked
		}
		lk.readers[owner]++
		return nil
	case LockExclusive:
		if lk.writer != "" && lk.writer != owner {
			return ErrLocked
		}
		for r := range lk.readers {
			if r != owner {
				return ErrLocked
			}
		}
		lk.writer = owner
		return nil
	case LockUnlock:
		released := false
		if lk.writer == owner {
			lk.writer = ""
			released = true
		}
		if cnt, ok := lk.readers[owner]; ok {
			if cnt <= 1 {
				delete(lk.readers, owner)
			} else {
				lk.readers[owner] = cnt - 1
			}
			released = true
		}
		if released {
			for _, ch := range lk.waiters {
				close(ch)
			}
			lk.waiters = nil
		}
		return nil
	default:
		return ErrInvalid
	}
}

// ClearAllLocks discards every advisory lock and wakes all waiters.
// Advisory locks are kernel state: a machine crash clears them, so restart
// recovery calls this to model the reboot. Traversal snapshots each
// directory under its own read lock; entries created or removed mid-sweep
// may or may not be visited, which a reboot-time sweep tolerates.
func (f *FS) ClearAllLocks() {
	var rec func(n *Inode)
	rec = func(n *Inode) {
		n.lkMu.Lock()
		n.lock.readers = nil
		n.lock.writer = ""
		for _, ch := range n.lock.waiters {
			close(ch)
		}
		n.lock.waiters = nil
		n.lkMu.Unlock()
		for _, child := range snapshotChildren(n) {
			rec(child)
		}
	}
	rec(f.root)
}

// snapshotChildren copies a directory's entries under its namespace read
// lock so traversals recurse without holding any lock.
func snapshotChildren(n *Inode) []*Inode {
	if n.typ != TypeDir {
		return nil
	}
	n.nsMu.RLock()
	kids := make([]*Inode, 0, len(n.children))
	for _, child := range n.children {
		kids = append(kids, child)
	}
	n.nsMu.RUnlock()
	return kids
}

// LockState reports the current holders of a file's advisory lock; used by
// tests to assert serialization behaviour.
func (f *FS) LockState(n *Inode) (writer string, readers []string) {
	n.lkMu.Lock()
	defer n.lkMu.Unlock()
	writer = n.lock.writer
	for r := range n.lock.readers {
		readers = append(readers, r)
	}
	sort.Strings(readers)
	return writer, readers
}

// Walk calls fn for every file (not directory) under root p, with its path.
// Each directory is listed under its own read lock only; files created or
// removed while the walk runs may or may not appear.
func (f *FS) Walk(p string, fn func(path string, attr Attr)) error {
	start, err := f.resolve(p)
	if err != nil {
		return err
	}
	p, _ = clean(p)
	var rec func(prefix string, n *Inode)
	rec = func(prefix string, n *Inode) {
		if n.typ == TypeFile {
			n.mu.RLock()
			attr := Attr{Ino: n.ino, Type: n.typ, UID: n.uid, Mode: n.mode, Size: n.data.Len(), Mtime: n.mtime}
			n.mu.RUnlock()
			fn(prefix, attr)
			return
		}
		n.nsMu.RLock()
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		children := make([]*Inode, 0, len(names))
		sort.Strings(names)
		for _, name := range names {
			children = append(children, n.children[name])
		}
		n.nsMu.RUnlock()
		for i, name := range names {
			cp := prefix + "/" + name
			if prefix == "/" {
				cp = "/" + name
			}
			rec(cp, children[i])
		}
	}
	rec(p, start)
	return nil
}
