package fs

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var alice = Cred{UID: 100}
var bob = Cred{UID: 101}
var root = Cred{UID: Root}

func newFS(t *testing.T) *FS {
	t.Helper()
	f := New()
	if err := f.MkdirAll("/data", root, 0o777); err != nil {
		t.Fatalf("mkdir /data: %v", err)
	}
	return f
}

func TestCreateLookupReadWrite(t *testing.T) {
	f := newFS(t)
	n, err := f.Create("/data/a.txt", alice, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.WriteAt(n, 0, []byte("hello world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := f.Lookup("/data/a.txt")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if got.Ino() != n.Ino() {
		t.Fatalf("lookup found different inode")
	}
	buf := make([]byte, 64)
	c, err := f.ReadAt(got, 0, buf)
	if err != nil || string(buf[:c]) != "hello world" {
		t.Fatalf("read = %q, %v", buf[:c], err)
	}
}

func TestReadAtOffsets(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/a", alice, 0o644)
	f.WriteAt(n, 0, []byte("0123456789"))
	buf := make([]byte, 4)
	c, err := f.ReadAt(n, 3, buf)
	if err != nil || string(buf[:c]) != "3456" {
		t.Fatalf("offset read = %q, %v", buf[:c], err)
	}
	c, err = f.ReadAt(n, 10, buf)
	if err != nil || c != 0 {
		t.Fatalf("read at EOF = %d, %v; want 0, nil", c, err)
	}
	if _, err := f.ReadAt(n, -1, buf); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestSparseWriteExtends(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/a", alice, 0o644)
	f.WriteAt(n, 5, []byte("xy"))
	attr, _ := f.Getattr(n)
	if attr.Size != 7 {
		t.Fatalf("size = %d, want 7", attr.Size)
	}
	data, _ := f.ReadFile("/data/a")
	if string(data[:5]) != "\x00\x00\x00\x00\x00" || string(data[5:]) != "xy" {
		t.Fatalf("sparse content wrong: %q", data)
	}
}

func TestTruncate(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/a", alice, 0o644)
	f.WriteAt(n, 0, []byte("0123456789"))
	if err := f.Truncate(n, 4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	data, _ := f.ReadFile("/data/a")
	if string(data) != "0123" {
		t.Fatalf("after shrink: %q", data)
	}
	if err := f.Truncate(n, 6); err != nil {
		t.Fatalf("grow: %v", err)
	}
	data, _ = f.ReadFile("/data/a")
	if string(data) != "0123\x00\x00" {
		t.Fatalf("after grow: %q", data)
	}
	if err := f.Truncate(n, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative truncate: %v", err)
	}
}

func TestPermissionChecks(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/secret", alice, 0o600)

	if err := f.OpenCheck(n, alice, ReadWrite); err != nil {
		t.Fatalf("owner open: %v", err)
	}
	if err := f.OpenCheck(n, bob, AccessRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("other read of 0600 = %v, want ErrPermission", err)
	}
	if err := f.OpenCheck(n, root, ReadWrite); err != nil {
		t.Fatalf("root bypass: %v", err)
	}

	// 0444: everyone reads, nobody writes (the rfb/rfd link state).
	f.Chmod(n, alice, 0o444)
	if err := f.OpenCheck(n, bob, AccessRead); err != nil {
		t.Fatalf("other read of 0444: %v", err)
	}
	if err := f.OpenCheck(n, alice, AccessWrite); !errors.Is(err, ErrPermission) {
		t.Fatalf("owner write of 0444 = %v, want ErrPermission", err)
	}
}

func TestChownTakeover(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/f", alice, 0o644)
	// Non-owner cannot chown.
	if err := f.Chown(n, bob, bob.UID); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob chown = %v", err)
	}
	// Root takes over (the DLFM takeover in §4).
	if err := f.Chown(n, root, 900); err != nil {
		t.Fatalf("root chown: %v", err)
	}
	if err := f.Chmod(n, Cred{UID: 900}, 0o400); err != nil {
		t.Fatalf("new owner chmod: %v", err)
	}
	attr, _ := f.Getattr(n)
	if attr.UID != 900 || attr.Mode != 0o400 {
		t.Fatalf("attr after takeover = %+v", attr)
	}
	// Previous owner can no longer read (0400, not owner).
	if err := f.OpenCheck(n, alice, AccessRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("alice read after takeover = %v", err)
	}
}

func TestRemoveAndRename(t *testing.T) {
	f := newFS(t)
	f.Create("/data/a", alice, 0o644)
	if err := f.Rename("/data/a", "/data/b", alice); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := f.Lookup("/data/a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still resolves: %v", err)
	}
	if _, err := f.Lookup("/data/b"); err != nil {
		t.Fatalf("new name missing: %v", err)
	}
	if err := f.Remove("/data/b", alice); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := f.Remove("/data/b", alice); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	f := newFS(t)
	f.WriteFile("/data/src", []byte("new"))
	f.WriteFile("/data/dst", []byte("old"))
	if err := f.Rename("/data/src", "/data/dst", root); err != nil {
		t.Fatalf("rename-over: %v", err)
	}
	data, _ := f.ReadFile("/data/dst")
	if string(data) != "new" {
		t.Fatalf("dst = %q, want new", data)
	}
}

func TestDirectoryOps(t *testing.T) {
	f := newFS(t)
	if err := f.MkdirAll("/a/b/c", root, 0o755); err != nil {
		t.Fatalf("mkdirall: %v", err)
	}
	f.WriteFile("/a/b/c/one", []byte("1"))
	f.WriteFile("/a/b/c/two", []byte("2"))
	names, err := f.ReadDir("/a/b/c")
	if err != nil || len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if err := f.Rmdir("/a/b/c", root); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	f.Remove("/a/b/c/one", root)
	f.Remove("/a/b/c/two", root)
	if err := f.Rmdir("/a/b/c", root); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
}

func TestMtimeAdvancesOnWrite(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewWithClock(func() time.Time {
		now = now.Add(time.Second)
		return now
	})
	f.MkdirAll("/d", root, 0o777)
	n, _ := f.Create("/d/f", alice, 0o644)
	a1, _ := f.Getattr(n)
	f.WriteAt(n, 0, []byte("x"))
	a2, _ := f.Getattr(n)
	if !a2.Mtime.After(a1.Mtime) {
		t.Fatalf("mtime did not advance: %v -> %v", a1.Mtime, a2.Mtime)
	}
}

func TestLockctlSharedExclusive(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/f", alice, 0o644)

	if err := f.TryLockctl(n, "r1", LockShared); err != nil {
		t.Fatalf("r1 shared: %v", err)
	}
	if err := f.TryLockctl(n, "r2", LockShared); err != nil {
		t.Fatalf("r2 shared: %v", err)
	}
	if err := f.TryLockctl(n, "w1", LockExclusive); !errors.Is(err, ErrLocked) {
		t.Fatalf("exclusive over shared = %v", err)
	}
	f.TryLockctl(n, "r1", LockUnlock)
	f.TryLockctl(n, "r2", LockUnlock)
	if err := f.TryLockctl(n, "w1", LockExclusive); err != nil {
		t.Fatalf("exclusive after unlocks: %v", err)
	}
	if err := f.TryLockctl(n, "r3", LockShared); !errors.Is(err, ErrLocked) {
		t.Fatalf("shared over exclusive = %v", err)
	}
	writer, readers := f.LockState(n)
	if writer != "w1" || len(readers) != 0 {
		t.Fatalf("lock state = %q, %v", writer, readers)
	}
}

func TestLockctlBlockingHandoff(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/f", alice, 0o644)
	f.TryLockctl(n, "w1", LockExclusive)

	acquired := make(chan struct{})
	go func() {
		f.Lockctl(n, "w2", LockExclusive) // blocks until w1 unlocks
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("w2 acquired while w1 held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	f.TryLockctl(n, "w1", LockUnlock)
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("w2 never acquired after unlock")
	}
}

func TestClearAllLocksWakesWaiters(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/f", alice, 0o644)
	f.TryLockctl(n, "dead-process", LockExclusive)

	acquired := make(chan error, 1)
	go func() {
		acquired <- f.Lockctl(n, "survivor", LockExclusive)
	}()
	select {
	case <-acquired:
		t.Fatal("acquired while dead-process held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	// The reboot clears kernel lock state.
	f.ClearAllLocks()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("survivor acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by ClearAllLocks")
	}
	writer, readers := f.LockState(n)
	if writer != "survivor" || len(readers) != 0 {
		t.Fatalf("state = %q %v", writer, readers)
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	f := newFS(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := "/data/file" + string(rune('a'+i))
			n, err := f.Create(p, alice, 0o644)
			if err != nil {
				t.Errorf("create %s: %v", p, err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := f.WriteAt(n, int64(j), []byte{byte(j)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestWalk(t *testing.T) {
	f := newFS(t)
	f.MkdirAll("/data/sub", root, 0o777)
	f.WriteFile("/data/a", []byte("1"))
	f.WriteFile("/data/sub/b", []byte("22"))
	var paths []string
	f.Walk("/", func(p string, a Attr) { paths = append(paths, p) })
	if len(paths) != 2 || paths[0] != "/data/a" || paths[1] != "/data/sub/b" {
		t.Fatalf("walk = %v", paths)
	}
}

// Property: WriteAt then ReadAt round-trips arbitrary content at arbitrary
// (small) offsets.
func TestWriteReadRoundTripProperty(t *testing.T) {
	f := newFS(t)
	n, _ := f.Create("/data/prop", alice, 0o644)
	prop := func(off uint16, data []byte) bool {
		o := int64(off % 4096)
		if _, err := f.WriteAt(n, o, data); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		c, err := f.ReadAt(n, o, buf)
		if err != nil {
			return false
		}
		return c == len(data) && string(buf[:c]) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPathCleaning(t *testing.T) {
	f := newFS(t)
	f.WriteFile("/data/x", []byte("1"))
	for _, p := range []string{"/data/x", "data/x", "/data//x", "/data/./x", "/data/sub/../x"} {
		if _, err := f.Lookup(p); err != nil {
			t.Errorf("lookup %q: %v", p, err)
		}
	}
	if _, err := f.Lookup(""); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty path: %v", err)
	}
}
