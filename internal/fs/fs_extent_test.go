package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"datalinks/internal/archive"
	"datalinks/internal/extent"
)

// TestFSArchiveEquivalenceProperty drives random write/truncate/archive/
// restore sequences through the chunked stack (fs inode content -> archive
// manifests -> manifest-swap restore) and through a flat byte-slice model,
// asserting byte-for-byte equivalence after every operation. This is the
// end-to-end guarantee the extent refactor must preserve: chunking, COW,
// dedup and manifest swaps are invisible to content readers.
func TestFSArchiveEquivalenceProperty(t *testing.T) {
	const C = extent.ChunkSize
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 8; round++ {
		f := New()
		arch := archive.New(0, nil)
		path := "/f.bin"
		n, err := f.Create(path, Cred{UID: Root}, 0o644)
		if err != nil {
			t.Fatal(err)
		}

		var model []byte
		var versions [][]byte // model content per archived version
		check := func(step string) {
			t.Helper()
			got, err := f.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatalf("round %d %s: content diverged (len %d vs %d)", round, step, len(got), len(model))
			}
		}

		for op := 0; op < 150; op++ {
			switch rng.Intn(10) {
			case 0, 1: // truncate
				size := int64(rng.Intn(3 * C))
				if err := f.Truncate(n, size); err != nil {
					t.Fatal(err)
				}
				if size <= int64(len(model)) {
					model = model[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, model)
					model = grown
				}
			case 2: // archive the current content as a new version
				snap, err := f.SnapshotFile(path)
				if err != nil {
					t.Fatal(err)
				}
				_, err = arch.PutSnapshot("fs1", path, archive.Version(len(versions)), uint64(len(versions)+1), snap)
				snap.Release()
				if err != nil {
					t.Fatal(err)
				}
				versions = append(versions, append([]byte(nil), model...))
			case 3: // restore a random archived version (manifest swap)
				if len(versions) > 0 {
					v := rng.Intn(len(versions))
					e, err := arch.Get("fs1", path, archive.Version(v))
					if err != nil {
						t.Fatal(err)
					}
					snap, err := e.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if err := f.WriteFileSnapshot(path, snap); err != nil {
						t.Fatal(err)
					}
					snap.Release()
					model = append(model[:0:0], versions[v]...)
				}
			default: // write
				off := int64(rng.Intn(2 * C))
				p := make([]byte, rng.Intn(C+C/2))
				rng.Read(p)
				if _, err := f.WriteAt(n, off, p); err != nil {
					t.Fatal(err)
				}
				end := off + int64(len(p))
				if end > int64(len(model)) {
					grown := make([]byte, end)
					copy(grown, model)
					model = grown
				}
				copy(model[off:], p)
			}
			check(fmt.Sprintf("op %d", op))
			// Archived versions must stay frozen under all later churn.
			if op%25 == 24 && len(versions) > 0 {
				v := rng.Intn(len(versions))
				e, err := arch.Get("fs1", path, archive.Version(v))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(e.Content(), versions[v]) {
					t.Fatalf("round %d: archived v%d mutated by later churn", round, v)
				}
			}
		}
	}
}

// TestChunkRefcountLeak: unlink + restore churn must end with zero orphaned
// chunks — every COW, snapshot, archive put, restore, truncate-after, drop
// and remove pairs its retains with releases.
func TestChunkRefcountLeak(t *testing.T) {
	baseChunks, baseBytes := extent.Live()
	f := New()
	arch := archive.New(0, nil)
	rng := rand.New(rand.NewSource(11))

	const files = 4
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/f%d.bin", i)
		n, err := f.Create(path, Cred{UID: Root}, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		content := make([]byte, 5*extent.ChunkSize+123)
		rng.Read(content)
		if _, err := f.WriteAt(n, 0, content); err != nil {
			t.Fatal(err)
		}
		// Version churn: edit, archive, occasionally restore an old version.
		for v := 0; v < 8; v++ {
			edit := make([]byte, 1000)
			rng.Read(edit)
			if _, err := f.WriteAt(n, int64(rng.Intn(5*extent.ChunkSize)), edit); err != nil {
				t.Fatal(err)
			}
			snap, err := f.Snapshot(n)
			if err != nil {
				t.Fatal(err)
			}
			_, err = arch.PutSnapshot("fs1", path, archive.Version(v), uint64(v+1), snap)
			snap.Release()
			if err != nil {
				t.Fatal(err)
			}
			if v%3 == 2 {
				e, err := arch.Get("fs1", path, archive.Version(rng.Intn(v+1)))
				if err != nil {
					t.Fatal(err)
				}
				snap, err := e.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if err := f.WriteSnapshot(n, snap); err != nil {
					t.Fatal(err)
				}
				snap.Release()
			}
		}
	}
	// Point-in-time truncate drops the newer versions of every file.
	for i := 0; i < files; i++ {
		arch.TruncateAfter("fs1", fmt.Sprintf("/f%d.bin", i), 4)
	}
	// Unlink everything: files from the namespace, versions from the archive.
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/f%d.bin", i)
		arch.Drop("fs1", path)
		if err := f.Remove(path, Cred{UID: Root}); err != nil {
			t.Fatal(err)
		}
	}
	if got := arch.Dedup().ResidentBytes; got != 0 {
		t.Fatalf("archive resident bytes after drop = %d", got)
	}
	endChunks, endBytes := extent.Live()
	if endChunks != baseChunks || endBytes != baseBytes {
		t.Fatalf("orphaned chunks: %d chunks / %d bytes still live",
			endChunks-baseChunks, endBytes-baseBytes)
	}
}
