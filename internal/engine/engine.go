// Package engine implements the DataLinks engine of Figure 1: the extension
// inside the host RDBMS that turns DATALINK column changes into DLFM
// link/unlink sub-transactions (two-phase commit, §2.2), generates access
// tokens when DATALINK values are selected (§4.1), applies the automatic
// metadata update of a committed file update (§4.3), and coordinates backup
// and point-in-time restore with the file servers (§4.4).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datalinks/internal/datalink"
	"datalinks/internal/dlfm"
	"datalinks/internal/metrics"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
)

// Conn is the engine's connection to one file-server authority. For a single
// DLFM it is a thin agent wrapper; for a scale-out cluster it is a router that
// resolves the path to a member behind the authority name. Link and Unlink
// return the XRM the host transaction must enlist — returning it from the same
// call that performed the link pins the sub-transaction to whichever member
// actually processed it, so a concurrent ring change between "link" and
// "enlist" cannot split the two across different servers.
type Conn interface {
	Link(hostTxn uint64, path string, opts datalink.ColumnOptions) (sqlmini.XRM, error)
	Unlink(hostTxn uint64, path string) (sqlmini.XRM, error)
	// ReadFileContent returns a linked file's current content (content hooks).
	ReadFileContent(path string) ([]byte, error)
}

// Restorer is the optional Conn capability behind the coordinated restore of
// §4.4: rewind file contents to a state id and reconcile the managed-file set
// with the restored database. A cluster conn fans both out over its members.
type Restorer interface {
	RestoreAsOf(stateID uint64) error
	ReconcileLinks(desired map[string]datalink.ColumnOptions) error
}

// agentConn adapts the classic one-DLFM agent to Conn.
type agentConn struct {
	agent *dlfm.Agent
}

func (a agentConn) Link(hostTxn uint64, path string, opts datalink.ColumnOptions) (sqlmini.XRM, error) {
	if err := a.agent.LinkFile(hostTxn, path, opts); err != nil {
		return nil, err
	}
	return a.agent.Server(), nil
}

func (a agentConn) Unlink(hostTxn uint64, path string) (sqlmini.XRM, error) {
	if err := a.agent.UnlinkFile(hostTxn, path); err != nil {
		return nil, err
	}
	return a.agent.Server(), nil
}

func (a agentConn) ReadFileContent(path string) ([]byte, error) {
	return a.agent.Server().ReadFileContent(path)
}

func (a agentConn) RestoreAsOf(stateID uint64) error {
	return a.agent.Server().RestoreAsOf(stateID)
}

func (a agentConn) ReconcileLinks(desired map[string]datalink.ColumnOptions) error {
	return a.agent.Server().ReconcileLinks(desired)
}

// serverConn pairs a Conn with the token authority for its shared key.
type serverConn struct {
	conn Conn
	auth *token.Authority
}

// registration records a linked file the engine knows about: which table and
// column reference it and the column options it was linked under. The
// registry backs token issuing and the metadata write-back.
type registration struct {
	table string
	col   string
	opts  datalink.ColumnOptions
}

// Engine is the DataLinks engine bound to one host database.
type Engine struct {
	db    *sqlmini.DB
	clock func() time.Time
	reg   *metrics.Registry

	mu       sync.Mutex
	servers  map[string]*serverConn
	registry map[string]registration // key: server + "\x00" + path
	// contentHooks derive user metadata column values from file content at
	// update-commit time, keyed by lowercase "table.column". This implements
	// the §4.3 future-work item (automatic update of content-specific
	// attributes) as an opt-in extension.
	contentHooks map[string]ContentHook
}

// ContentHook computes content-derived column values for the row(s)
// referencing an updated file. The returned map is column-name -> value;
// named columns must exist in the linking table.
type ContentHook func(content []byte) map[string]sqlmini.Value

// Options configures an engine.
type Options struct {
	Clock   func() time.Time
	Metrics *metrics.Registry
}

// New attaches a DataLinks engine to a host database: it installs the DML
// hook and the token-issuing scalar functions.
func New(db *sqlmini.DB, opts Options) *Engine {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	e := &Engine{
		db:           db,
		clock:        opts.Clock,
		reg:          opts.Metrics,
		servers:      make(map[string]*serverConn),
		registry:     make(map[string]registration),
		contentHooks: make(map[string]ContentHook),
	}
	db.SetDMLHook(e.dmlHook)
	e.registerTokenFns()
	return e
}

// DB returns the host database.
func (e *Engine) DB() *sqlmini.DB { return e.db }

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// AttachFileServer connects the engine to a DLFM. tokenKey must equal the
// DLFM's configured key (the shared secret of §4.1).
func (e *Engine) AttachFileServer(srv *dlfm.Server, tokenKey []byte, ttl time.Duration) {
	e.AttachConn(srv.Name(), agentConn{agent: srv.ConnectAgent()}, tokenKey, ttl)
}

// AttachConn connects the engine to a file-server authority through an
// arbitrary Conn — the scale-out cluster attaches its router here under the
// cluster authority name, so DATALINK URLs stay dlfs://<authority>/... no
// matter how many members serve them.
func (e *Engine) AttachConn(name string, c Conn, tokenKey []byte, ttl time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.servers[name] = &serverConn{
		conn: c,
		auth: token.NewAuthority(tokenKey, e.clock, ttl),
	}
}

// ServerNames lists attached file servers (status tooling).
func (e *Engine) ServerNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.servers))
	for n := range e.servers {
		out = append(out, n)
	}
	return out
}

// conn returns the connection for a file server.
func (e *Engine) conn(server string) (*serverConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.servers[server]
	if !ok {
		return nil, fmt.Errorf("engine: no file server %q attached", server)
	}
	return c, nil
}

func regKey(server, path string) string { return server + "\x00" + path }

// lookupReg finds the registration for a linked file.
func (e *Engine) lookupReg(server, path string) (registration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.registry[regKey(server, path)]
	return r, ok
}

// dmlHook observes row changes and drives link/unlink processing.
func (e *Engine) dmlHook(txn *sqlmini.Txn, tbl *sqlmini.Table, op sqlmini.DMLOp, old, new sqlmini.Row) error {
	for i, col := range tbl.Columns {
		if col.Kind != sqlmini.KindLink {
			continue
		}
		var oldLink, newLink datalink.Link
		if old != nil {
			oldLink, _ = old[i].AsLink()
		}
		if new != nil {
			newLink, _ = new[i].AsLink()
		}
		switch op {
		case sqlmini.DMLInsert:
			if !newLink.IsZero() {
				if err := e.link(txn, tbl, col, newLink); err != nil {
					return err
				}
			}
		case sqlmini.DMLDelete:
			if !oldLink.IsZero() {
				if err := e.unlink(txn, oldLink, col); err != nil {
					return err
				}
			}
		case sqlmini.DMLUpdate:
			if oldLink == newLink {
				continue
			}
			if !oldLink.IsZero() {
				if err := e.unlink(txn, oldLink, col); err != nil {
					return err
				}
			}
			if !newLink.IsZero() {
				if err := e.link(txn, tbl, col, newLink); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// link runs DLFM link processing inside the host transaction.
func (e *Engine) link(txn *sqlmini.Txn, tbl *sqlmini.Table, col sqlmini.Column, l datalink.Link) error {
	if !col.DL.Mode.Linked() {
		// nff: the URL is stored, the file is not managed at all.
		return nil
	}
	c, err := e.conn(l.Server)
	if err != nil {
		return err
	}
	xrm, err := c.conn.Link(txn.ID(), l.Path, col.DL)
	if err != nil {
		return fmt.Errorf("engine: link %s: %w", l.URL(), err)
	}
	txn.Enlist(xrm)
	e.reg.Counter("engine.links").Inc()
	reg := registration{table: tbl.Name, col: col.Name, opts: col.DL}
	key := regKey(l.Server, l.Path)
	txn.OnCommit(func() {
		e.mu.Lock()
		e.registry[key] = reg
		e.mu.Unlock()
	})
	return nil
}

// unlink runs DLFM unlink processing inside the host transaction.
func (e *Engine) unlink(txn *sqlmini.Txn, l datalink.Link, col sqlmini.Column) error {
	if !col.DL.Mode.Linked() {
		return nil
	}
	c, err := e.conn(l.Server)
	if err != nil {
		return err
	}
	xrm, err := c.conn.Unlink(txn.ID(), l.Path)
	if err != nil {
		return fmt.Errorf("engine: unlink %s: %w", l.URL(), err)
	}
	txn.Enlist(xrm)
	e.reg.Counter("engine.unlinks").Inc()
	key := regKey(l.Server, l.Path)
	txn.OnCommit(func() {
		e.mu.Lock()
		delete(e.registry, key)
		e.mu.Unlock()
	})
	return nil
}

// ---- Token issuing (§4.1) ----

// registerTokenFns installs DLURLCOMPLETE and DLURLCOMPLETEWRITE, which
// return the URL with a freshly issued read/write token embedded.
func (e *Engine) registerTokenFns() {
	e.db.RegisterFn("DLURLCOMPLETE", func(_ *sqlmini.Txn, args []sqlmini.Value) (sqlmini.Value, error) {
		return e.completeURL(args, token.Read)
	})
	e.db.RegisterFn("DLURLCOMPLETEWRITE", func(_ *sqlmini.Txn, args []sqlmini.Value) (sqlmini.Value, error) {
		return e.completeURL(args, token.Write)
	})
}

func (e *Engine) completeURL(args []sqlmini.Value, typ token.Type) (sqlmini.Value, error) {
	if len(args) != 1 || args[0].Kind() != sqlmini.KindLink {
		return sqlmini.Value{}, errors.New("DLURLCOMPLETE takes one DATALINK argument")
	}
	l, _ := args[0].AsLink()
	tok, err := e.IssueToken(l, typ)
	if err != nil {
		return sqlmini.Value{}, err
	}
	if tok == "" {
		return sqlmini.Str(l.URL()), nil
	}
	return sqlmini.Str(l.URL() + token.Sep + tok), nil
}

// IssueToken issues an access token for a linked file. Returns "" (no token
// needed) for files whose requested access is file-system controlled.
func (e *Engine) IssueToken(l datalink.Link, typ token.Type) (string, error) {
	reg, linked := e.lookupReg(l.Server, l.Path)
	if !linked {
		// Unlinked (nff or foreign) reference: no token to issue.
		return "", nil
	}
	c, err := e.conn(l.Server)
	if err != nil {
		return "", err
	}
	mode := reg.opts.Mode
	switch typ {
	case token.Read:
		if !mode.ReadNeedsToken() {
			return "", nil // reads are FS-controlled; no token needed
		}
	case token.Write:
		if !mode.UpdateManaged() {
			return "", fmt.Errorf("engine: %s is linked in %s mode: no write tokens", l.URL(), mode)
		}
	}
	e.reg.Counter("engine.tokens." + typ.String()).Inc()
	if reg.opts.TokenTTLSecs > 0 {
		return c.auth.IssueWithTTL(typ, l.Path, time.Duration(reg.opts.TokenTTLSecs)*time.Second), nil
	}
	return c.auth.Issue(typ, l.Path), nil
}

// LinkedMode reports the control mode a file is linked under, per the
// engine's registry.
func (e *Engine) LinkedMode(l datalink.Link) (datalink.ControlMode, bool) {
	reg, ok := e.lookupReg(l.Server, l.Path)
	return reg.opts.Mode, ok
}

// ---- Host services for DLFM (§4.3, 2PC recovery) ----

var _ dlfm.Host = (*Engine)(nil)

// RegisterContentHook installs a content-metadata derivation for one
// DATALINK column ("table", "column"). On every committed update of a file
// linked through that column, the hook runs over the new file content and
// its outputs are written to the named columns in the same transaction as
// the size/mtime update — extending §4.3's automatic metadata update to
// user metadata, which the paper leaves as future research.
func (e *Engine) RegisterContentHook(table, column string, hook ContentHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.contentHooks[strings.ToLower(table+"."+column)] = hook
}

func (e *Engine) contentHook(table, column string) (ContentHook, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.contentHooks[strings.ToLower(table+"."+column)]
	return h, ok
}

// MetaUpdate runs the automatic metadata update for a committed file update
// in a fresh host transaction with the DLFM sub-transaction enlisted. The
// convention reproduced from §4.3: if the linking table has companion
// columns named <linkcol>_size (integer) and/or <linkcol>_mtime (timestamp),
// they are updated in the same transaction as DLFM's version bookkeeping;
// registered content hooks contribute further columns.
func (e *Engine) MetaUpdate(server, path string, size int64, mtime time.Time, sub sqlmini.XRM) (uint64, error) {
	txn := e.db.Begin()
	txn.Enlist(sub)
	if reg, ok := e.lookupReg(server, path); ok {
		if err := e.applyMetaColumns(txn, reg, server, path, size, mtime); err != nil {
			_ = txn.Abort()
			return 0, err
		}
		if hook, ok := e.contentHook(reg.table, reg.col); ok {
			if err := e.applyContentHook(txn, reg, server, path, hook); err != nil {
				_ = txn.Abort()
				return 0, err
			}
		}
	}
	if err := txn.Commit(); err != nil {
		return 0, err
	}
	e.reg.Counter("engine.meta_updates").Inc()
	return uint64(e.db.StateID()), nil
}

// applyContentHook runs the hook over the file's content and updates the
// derived columns in the same transaction.
func (e *Engine) applyContentHook(txn *sqlmini.Txn, reg registration, server, path string, hook ContentHook) error {
	c, err := e.conn(server)
	if err != nil {
		return err
	}
	content, err := c.conn.ReadFileContent(path)
	if err != nil {
		return err
	}
	derived := hook(content)
	if len(derived) == 0 {
		return nil
	}
	cols := make([]string, 0, len(derived))
	for col := range derived {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	sets := make([]string, 0, len(cols))
	args := make([]sqlmini.Value, 0, len(cols)+1)
	for _, col := range cols {
		sets = append(sets, col+" = ?")
		args = append(args, derived[col])
	}
	args = append(args, sqlmini.Link(datalink.Link{Server: server, Path: path}))
	stmt := fmt.Sprintf("UPDATE %s SET %s WHERE %s = ?", reg.table, strings.Join(sets, ", "), reg.col)
	_, err = txn.Exec(stmt, args...)
	return err
}

// applyMetaColumns performs the companion-column UPDATE if the columns exist.
func (e *Engine) applyMetaColumns(txn *sqlmini.Txn, reg registration, server, path string, size int64, mtime time.Time) error {
	tbl, err := e.db.Table(reg.table)
	if err != nil {
		return err
	}
	sizeCol, mtimeCol := "", ""
	for _, c := range tbl.Columns {
		switch strings.ToLower(c.Name) {
		case strings.ToLower(reg.col) + "_size":
			sizeCol = c.Name
		case strings.ToLower(reg.col) + "_mtime":
			mtimeCol = c.Name
		}
	}
	if sizeCol == "" && mtimeCol == "" {
		return nil
	}
	var sets []string
	var args []sqlmini.Value
	if sizeCol != "" {
		sets = append(sets, sizeCol+" = ?")
		args = append(args, sqlmini.Int(size))
	}
	if mtimeCol != "" {
		sets = append(sets, mtimeCol+" = ?")
		args = append(args, sqlmini.Time(mtime))
	}
	args = append(args, sqlmini.Link(datalink.Link{Server: server, Path: path}))
	stmt := fmt.Sprintf("UPDATE %s SET %s WHERE %s = ?", reg.table, strings.Join(sets, ", "), reg.col)
	_, err = txn.Exec(stmt, args...)
	return err
}

// TxnOutcome reports the fate of a host transaction (DLFM in-doubt
// resolution).
func (e *Engine) TxnOutcome(txnID uint64) (committed, known bool) {
	return e.db.Outcome(txnID)
}

// StateID returns the current host database state identifier.
func (e *Engine) StateID() uint64 { return uint64(e.db.StateID()) }

// RebuildRegistry rescans every table for non-null DATALINK values and
// rebuilds the in-memory registry — used after restart or restore.
func (e *Engine) RebuildRegistry() error {
	fresh := make(map[string]registration)
	for _, name := range e.db.TableNames() {
		tbl, err := e.db.Table(name)
		if err != nil {
			return err
		}
		for i, col := range tbl.Columns {
			if col.Kind != sqlmini.KindLink || !col.DL.Mode.Linked() {
				continue
			}
			colIdx := i
			c := col
			tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
				if l, ok := row[colIdx].AsLink(); ok && !l.IsZero() {
					fresh[regKey(l.Server, l.Path)] = registration{table: tbl.Name, col: c.Name, opts: c.DL}
				}
				return true
			})
		}
	}
	e.mu.Lock()
	e.registry = fresh
	e.mu.Unlock()
	return nil
}

// LinkedFiles lists every registered link as URLs (status tooling).
func (e *Engine) LinkedFiles() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.registry))
	for key := range e.registry {
		parts := strings.SplitN(key, "\x00", 2)
		out = append(out, datalink.Link{Server: parts[0], Path: parts[1]}.URL())
	}
	return out
}
