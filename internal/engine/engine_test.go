package engine

import (
	"strings"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/dlfm"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
)

const owner fs.UID = 100

// rig wires a host DB + engine + one DLFM over a shared physical FS.
type rig struct {
	db   *sqlmini.DB
	eng  *Engine
	srv  *dlfm.Server
	phys *fs.FS
}

func newRig(t *testing.T) *rig {
	t.Helper()
	db := sqlmini.NewDB(sqlmini.Options{LockTimeout: 500 * time.Millisecond})
	eng := New(db, Options{})
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	key := []byte("shared-key")
	srv, err := dlfm.New(dlfm.Config{
		Name:     "fs1",
		Phys:     phys,
		Archive:  archive.New(0, nil),
		Host:     eng,
		TokenKey: key,
	})
	if err != nil {
		t.Fatalf("dlfm: %v", err)
	}
	eng.AttachFileServer(srv, key, 0)
	return &rig{db: db, eng: eng, srv: srv, phys: phys}
}

func (r *rig) seed(t *testing.T, path, content string) {
	t.Helper()
	if err := r.phys.WriteFile(path, []byte(content)); err != nil {
		t.Fatal(err)
	}
	ino, _ := r.phys.Lookup(path)
	r.phys.Chown(ino, fs.Cred{UID: fs.Root}, owner)
	r.phys.Chmod(ino, fs.Cred{UID: owner}, 0o644)
}

func TestInsertLinksDeleteUnlinks(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	if !r.srv.IsLinked("/d/f.bin") {
		t.Fatal("insert did not link")
	}
	if len(r.eng.LinkedFiles()) != 1 {
		t.Fatalf("registry = %v", r.eng.LinkedFiles())
	}
	r.db.MustExec(`DELETE FROM t WHERE id = 1`)
	if r.srv.IsLinked("/d/f.bin") {
		t.Fatal("delete did not unlink")
	}
	if len(r.eng.LinkedFiles()) != 0 {
		t.Fatalf("registry after delete = %v", r.eng.LinkedFiles())
	}
}

func TestUpdateRelinks(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/a.bin", "a")
	r.seed(t, "/d/b.bin", "b")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/a.bin'))`)
	r.db.MustExec(`UPDATE t SET doc = DLVALUE('dlfs://fs1/d/b.bin') WHERE id = 1`)
	if r.srv.IsLinked("/d/a.bin") {
		t.Fatal("old link survived the update")
	}
	if !r.srv.IsLinked("/d/b.bin") {
		t.Fatal("new link missing after the update")
	}
}

func TestUpdateSameLinkIsNoop(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/a.bin", "a")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, note VARCHAR, doc DATALINK MODE RFD)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, 'x', DLVALUE('dlfs://fs1/d/a.bin'))`)
	links := r.eng.Metrics().Counter("engine.links").Value()
	// Updating an unrelated column must not unlink/relink.
	r.db.MustExec(`UPDATE t SET note = 'y' WHERE id = 1`)
	if got := r.eng.Metrics().Counter("engine.links").Value(); got != links {
		t.Fatalf("spurious link operations: %d -> %d", links, got)
	}
	if !r.srv.IsLinked("/d/a.bin") {
		t.Fatal("link lost")
	}
}

func TestLinkToUnknownServerFails(t *testing.T) {
	r := newRig(t)
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD)`)
	if _, err := r.db.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://nowhere/d/f.bin'))`); err == nil {
		t.Fatal("link to unattached server accepted")
	}
}

func TestLinkMissingFileFailsStatement(t *testing.T) {
	r := newRig(t)
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD)`)
	if _, err := r.db.Exec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/ghost.bin'))`); err == nil {
		t.Fatal("link of missing file accepted")
	}
	rows, _ := r.db.Query(`SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].I != 0 {
		t.Fatal("failed insert left a row")
	}
}

func TestNffStoresURLWithoutLinking(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE NFF)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	if r.srv.IsLinked("/d/f.bin") {
		t.Fatal("nff should not link")
	}
	row, _ := r.db.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
	if strings.Contains(row[0].S, token.Sep) {
		t.Fatal("nff got a token")
	}
}

func TestTokenIssuingRespectsModes(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFB)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	// rfb: reads are FS-controlled -> no token in URL.
	row, err := r.db.QueryRow(`SELECT DLURLCOMPLETE(doc) FROM t WHERE id = 1`)
	if err != nil || strings.Contains(row[0].S, token.Sep) {
		t.Fatalf("rfb read URL = %v, %v", row, err)
	}
	// rfb: no write tokens.
	if _, err := r.db.Query(`SELECT DLURLCOMPLETEWRITE(doc) FROM t WHERE id = 1`); err == nil {
		t.Fatal("rfb issued a write token")
	}
}

func TestLinkedModeAndIssueToken(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES TOKEN 60)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	l := datalink.Link{Server: "fs1", Path: "/d/f.bin"}
	mode, ok := r.eng.LinkedMode(l)
	if !ok || mode != datalink.RDD {
		t.Fatalf("linked mode = %v, %v", mode, ok)
	}
	tok, err := r.eng.IssueToken(l, token.Read)
	if err != nil || tok == "" {
		t.Fatalf("read token = %q, %v", tok, err)
	}
	// Token is valid at the DLFM authority.
	if _, err := r.srv.Authority().Validate(tok, "/d/f.bin"); err != nil {
		t.Fatalf("issued token rejected by DLFM: %v", err)
	}
	// Unlinked file: no token, no error.
	tok, err = r.eng.IssueToken(datalink.Link{Server: "fs1", Path: "/d/other"}, token.Read)
	if err != nil || tok != "" {
		t.Fatalf("unlinked token = %q, %v", tok, err)
	}
}

func TestRebuildRegistry(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	// Blow the registry away and rebuild from table contents.
	r.eng.mu.Lock()
	r.eng.registry = make(map[string]registration)
	r.eng.mu.Unlock()
	if err := r.eng.RebuildRegistry(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if len(r.eng.LinkedFiles()) != 1 {
		t.Fatalf("registry after rebuild = %v", r.eng.LinkedFiles())
	}
}

func TestMetaUpdateWritesCompanionColumns(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFD RECOVERY YES, doc_size INT, doc_mtime TIMESTAMP)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'), NULL, NULL)`)
	mt := time.Unix(1_700_000_123, 0)
	sub := &noopXRM{}
	state, err := r.eng.MetaUpdate("fs1", "/d/f.bin", 4321, mt, sub)
	if err != nil {
		t.Fatalf("meta update: %v", err)
	}
	if state == 0 {
		t.Fatal("no state id")
	}
	if !sub.prepared || !sub.committed {
		t.Fatalf("sub-transaction not driven through 2PC: %+v", sub)
	}
	row, _ := r.db.QueryRow(`SELECT doc_size, doc_mtime FROM t WHERE id = 1`)
	if row[0].I != 4321 || !row[1].T.Equal(mt) {
		t.Fatalf("companion columns = %+v", row)
	}
}

type noopXRM struct{ prepared, committed, aborted bool }

func (n *noopXRM) XRMName() string         { return "noop" }
func (n *noopXRM) PrepareXRM(uint64) error { n.prepared = true; return nil }
func (n *noopXRM) CommitXRM(uint64) error  { n.committed = true; return nil }
func (n *noopXRM) AbortXRM(uint64) error   { n.aborted = true; return nil }

func TestBackupAndRestoreImage(t *testing.T) {
	r := newRig(t)
	r.seed(t, "/d/f.bin", "v0")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RDD RECOVERY YES)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin'))`)
	img := r.eng.Backup()
	if img.StateID == 0 {
		t.Fatal("backup state id zero")
	}
	// Mutate after the backup.
	r.db.MustExec(`DELETE FROM t WHERE id = 1`)
	if r.srv.IsLinked("/d/f.bin") {
		t.Fatal("unlink failed")
	}
	// Restore the image: the row and the link come back.
	if err := r.eng.RestoreImage(img); err != nil {
		t.Fatalf("restore: %v", err)
	}
	rows, err := r.eng.DB().Query(`SELECT COUNT(*) FROM t`)
	if err != nil || rows.Data[0][0].I != 1 {
		t.Fatalf("restored rows = %v, %v", rows, err)
	}
	if !r.srv.IsLinked("/d/f.bin") {
		t.Fatal("link not re-established by restore")
	}
}

func TestMultiServerLinks(t *testing.T) {
	r := newRig(t)
	phys2 := fs.New()
	phys2.MkdirAll("/e", fs.Cred{UID: fs.Root}, 0o777)
	phys2.WriteFile("/e/g.bin", []byte("y"))
	srv2, err := dlfm.New(dlfm.Config{
		Name: "fs2", Phys: phys2, Archive: archive.New(0, nil), Host: r.eng, TokenKey: []byte("shared-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.AttachFileServer(srv2, []byte("shared-key"), 0)
	r.seed(t, "/d/f.bin", "x")
	r.db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, doc DATALINK MODE RFF)`)
	r.db.MustExec(`INSERT INTO t VALUES (1, DLVALUE('dlfs://fs1/d/f.bin')), (2, DLVALUE('dlfs://fs2/e/g.bin'))`)
	if !r.srv.IsLinked("/d/f.bin") || !srv2.IsLinked("/e/g.bin") {
		t.Fatal("multi-server links incomplete")
	}
	// One transaction spanning both servers rolls back everywhere.
	txn := r.db.Begin()
	if _, err := txn.Exec(`DELETE FROM t`); err != nil {
		t.Fatalf("delete: %v", err)
	}
	txn.Abort()
	if !r.srv.IsLinked("/d/f.bin") || !srv2.IsLinked("/e/g.bin") {
		t.Fatal("abort did not restore links on both servers")
	}
}
