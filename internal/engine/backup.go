package engine

import (
	"fmt"
	"sort"
	"time"

	"datalinks/internal/datalink"
	"datalinks/internal/sqlmini"
	"datalinks/internal/wal"
)

// Coordinated backup and restore (§4.4): a database backup captures the
// state identifier; restoring the database to a point in time also restores
// every recovery-enabled linked file to the version that was current at that
// state, from the archive.

// BackupImage is a coordinated backup of the host database. File contents
// are NOT in the image — they live in the archive, keyed by state id, which
// is exactly the paper's design.
type BackupImage struct {
	StateID uint64
	TakenAt time.Time
	log     *wal.Log
}

// Backup captures the current database state. The image can be restored with
// RestoreToState or carried to a fresh Engine via RestoreImage.
func (e *Engine) Backup() *BackupImage {
	stateID := e.db.StateID()
	return &BackupImage{
		StateID: uint64(stateID),
		TakenAt: e.clock(),
		log:     e.db.Log().Prefix(stateID),
	}
}

// RestoreToState rewinds the host database to the given state identifier and
// directs every attached DLFM to restore its files to the matching versions.
// After the call the engine serves the restored database.
func (e *Engine) RestoreToState(stateID uint64) error {
	prefix := e.db.Log().Prefix(wal.LSN(stateID))
	return e.adoptRestoredLog(prefix, stateID)
}

// RestoreImage restores from a captured backup image (same protocol, using
// the image's log copy — e.g. after the live database was lost entirely).
func (e *Engine) RestoreImage(img *BackupImage) error {
	return e.adoptRestoredLog(img.log.Prefix(wal.LSN(img.StateID)), img.StateID)
}

// adoptRestoredLog rebuilds the database from a log prefix, swaps it in, and
// reconciles the file servers.
func (e *Engine) adoptRestoredLog(prefix *wal.Log, stateID uint64) error {
	db, _, err := sqlmini.Recover(prefix, sqlmini.Options{Clock: e.clock, Metrics: e.reg})
	if err != nil {
		return fmt.Errorf("engine: database restore: %w", err)
	}
	e.mu.Lock()
	e.db = db
	e.mu.Unlock()
	db.SetDMLHook(e.dmlHook)
	e.registerTokenFns()
	if err := e.RebuildRegistry(); err != nil {
		return err
	}
	// File half of the coordinated restore: per server, restore contents as
	// of the state id, then reconcile the managed-file set with the restored
	// database's references.
	e.mu.Lock()
	conns := make(map[string]*serverConn, len(e.servers))
	for n, c := range e.servers {
		conns[n] = c
	}
	reg := make(map[string]registration, len(e.registry))
	for k, v := range e.registry {
		reg[k] = v
	}
	e.mu.Unlock()

	names := make([]string, 0, len(conns))
	for n := range conns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		srv, ok := conns[name].conn.(Restorer)
		if !ok {
			return fmt.Errorf("engine: file server %q does not support coordinated restore", name)
		}
		if err := srv.RestoreAsOf(stateID); err != nil {
			return err
		}
		desired := make(map[string]datalink.ColumnOptions)
		for key, r := range reg {
			server, path := splitRegKey(key)
			if server == name {
				desired[path] = r.opts
			}
		}
		if err := srv.ReconcileLinks(desired); err != nil {
			return err
		}
	}
	e.reg.Counter("engine.restores").Inc()
	return nil
}

// RecoverHost simulates a host database crash and restart: the volatile log
// tail is lost, the database is rebuilt from the durable prefix, and the
// engine re-attaches (hooks, scalar functions, registry). DLFMs keep their
// reference to the engine and resolve in-doubt transactions against the
// recovered outcome map.
func (e *Engine) RecoverHost() error {
	durable := e.db.Crash()
	db, _, err := sqlmini.Recover(durable, sqlmini.Options{Clock: e.clock, Metrics: e.reg})
	if err != nil {
		return fmt.Errorf("engine: host recovery: %w", err)
	}
	e.mu.Lock()
	e.db = db
	e.mu.Unlock()
	db.SetDMLHook(e.dmlHook)
	e.registerTokenFns()
	return e.RebuildRegistry()
}

func splitRegKey(key string) (server, path string) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
