package archive

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"datalinks/internal/extent"
)

func newTiered(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := NewTiered(0, nil, TierConfig{Dir: t.TempDir(), MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// diskBlobFiles counts blob files physically present under the store's dir
// (the two-hex-digit fan-out subdirectories; the catalog's own files at the
// root are not blobs).
func diskBlobFiles(t *testing.T, s *Store) int {
	t.Helper()
	n := 0
	subdirs, err := os.ReadDir(s.TierDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.TierDir(), sub.Name()))
		if err != nil {
			t.Fatal(err)
		}
		n += len(files)
	}
	return n
}

// TestTieredDeltaChainAllVersionsRestorable: enough versions to cross
// several delta checkpoints, with single-chunk edits, grows and shrinks;
// every version must materialize back byte-identical, paging from disk.
func TestTieredDeltaChainAllVersionsRestorable(t *testing.T) {
	s := newTiered(t, 16) // evict everything: all reads are page-ins
	rng := rand.New(rand.NewSource(42))
	const C = extent.ChunkSize

	model := make([]byte, 4*C+1234)
	rng.Read(model)
	var versions [][]byte
	putVersion := func() {
		snap := extent.FromBytes(model)
		_, err := s.PutSnapshot("fs1", "/f", Version(len(versions)), uint64(len(versions)+1), snap)
		snap.Release()
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, append([]byte(nil), model...))
	}
	putVersion()
	for v := 1; v < 40; v++ {
		switch v % 9 {
		case 3: // grow
			grown := make([]byte, len(model)+C/2)
			copy(grown, model)
			rng.Read(grown[len(model):])
			model = grown
		case 6: // shrink
			model = model[:len(model)-C/3]
		default: // edit one chunk's worth
			off := rng.Intn(len(model))
			n := C / 4
			if off+n > len(model) {
				n = len(model) - off
			}
			rng.Read(model[off : off+n])
		}
		putVersion()
	}
	st := s.Tier()
	if st.Spills == 0 {
		t.Fatal("no spills with a 1-byte-per-shard budget")
	}
	for v := range versions {
		e, err := s.Get("fs1", "/f", Version(v))
		if err != nil {
			t.Fatalf("get v%d: %v", v, err)
		}
		if !bytes.Equal(e.Content(), versions[v]) {
			t.Fatalf("v%d diverged after page-in", v)
		}
	}
	if s.Tier().PageIns == 0 {
		t.Fatal("no page-ins reading back 40 evicted versions")
	}
	// Delta manifests: most versions must NOT be checkpoints. Count them.
	sh := s.shardFor(key("fs1", "/f"))
	sh.mu.Lock()
	fv := sh.entries[key("fs1", "/f")]
	full := 0
	for _, rec := range fv.recs {
		if rec.isFull {
			full++
		}
	}
	total := len(fv.recs)
	sh.mu.Unlock()
	if full == total {
		t.Fatal("every version stored a full manifest; deltas never kicked in")
	}
	if full < total/checkpointEvery {
		t.Fatalf("only %d checkpoints for %d versions", full, total)
	}
}

// TestTieredSpillGCReturnsToBaseline: after unlink (Drop) and TruncateAfter
// churn plus a GC sweep, live extent chunks AND on-disk chunk files return
// to their baselines — nothing leaks in either tier.
func TestTieredSpillGCReturnsToBaseline(t *testing.T) {
	baseChunks, baseBytes := extent.Live()
	s := newTiered(t, 4*extent.ChunkSize)
	rng := rand.New(rand.NewSource(7))

	paths := []string{"/a.bin", "/b.bin", "/c.bin"}
	content := make([]byte, 3*extent.ChunkSize+500)
	for _, p := range paths {
		rng.Read(content)
		for v := 0; v < 10; v++ {
			edit := make([]byte, 2000)
			rng.Read(edit)
			copy(content[rng.Intn(len(content)-len(edit)):], edit)
			snap := extent.FromBytes(content)
			if _, err := s.PutSnapshot("fs1", p, Version(v), uint64(v+1), snap); err != nil {
				t.Fatal(err)
			}
			snap.Release()
		}
	}
	if diskBlobFiles(t, s) == 0 && s.Tier().PackAppends == 0 {
		t.Fatal("nothing on disk after 30 versions")
	}

	// Point-in-time truncate, then read a surviving version (page-in), then
	// drop everything.
	for _, p := range paths {
		s.TruncateAfter("fs1", p, 5)
		e, err := s.Latest("fs1", p)
		if err != nil {
			t.Fatal(err)
		}
		if e.Content() == nil {
			t.Fatalf("surviving version of %s unreadable after truncate", p)
		}
	}
	for _, p := range paths {
		s.Drop("fs1", p)
	}

	// Memory returns to baseline immediately (LRU drops released blobs)...
	if c, b := extent.Live(); c != baseChunks || b != baseBytes {
		t.Fatalf("live chunks leaked: %d/%d bytes over baseline", c-baseChunks, b-baseBytes)
	}
	if st := s.Tier(); st.ResidentBytes != 0 {
		t.Fatalf("LRU still holds %d bytes after dropping every version", st.ResidentBytes)
	}
	// ...and the disk tier returns to baseline after GC.
	freed := s.GCNow()
	if freed == 0 {
		t.Fatal("GC freed nothing")
	}
	if n := diskBlobFiles(t, s); n != 0 {
		t.Fatalf("%d loose blob files survive GC with zero versions archived", n)
	}
	st := s.Tier()
	if st.DiskBlobs != 0 || st.DiskBytes != 0 || st.DeadBlobs != 0 {
		t.Fatalf("disk accounting off after GC: %+v", st)
	}
	// Pack-level reclamation: fully-dead sealed packs were compacted away;
	// at most the (unsealed) active pack file remains, holding only dead
	// space the next seal+sweep cycle reclaims.
	if st.PackFiles > 1 {
		t.Fatalf("%d pack files survive GC with zero versions archived", st.PackFiles)
	}
}

// TestEntryHandleInvalidAfterTruncateRefill: a handle to a version that was
// truncated away must error once a newer Put refills its slot — never serve
// the new version's bytes under the old version's metadata.
func TestEntryHandleInvalidAfterTruncateRefill(t *testing.T) {
	s := New(0, nil)
	for v := 1; v <= 3; v++ {
		if err := s.Put("fs1", "/f", Version(v), uint64(v), bytes.Repeat([]byte{byte(v)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	e, err := s.Latest("fs1", "/f") // v3, slot index 2
	if err != nil {
		t.Fatal(err)
	}
	s.TruncateAfter("fs1", "/f", 2) // drops v3
	if err := s.Put("fs1", "/f", 4, 4, bytes.Repeat([]byte{4}, 100)); err != nil {
		t.Fatal(err) // v4 refills slot index 2
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("stale handle materialized another version's content")
	}
	if e.Content() != nil {
		t.Fatal("stale handle served content")
	}
}

// TestTieredStaleAndReviveAccounting: a stale Put against the tiered store
// unwinds its disk references, and re-archiving content whose blobs are dead
// (but unswept) revives them without a device transfer.
func TestTieredStaleAndReviveAccounting(t *testing.T) {
	s := newTiered(t, 16)
	content := make([]byte, 2*extent.ChunkSize+100)
	for i := range content {
		content[i] = byte(i % 253)
	}
	if err := s.Put("fs1", "/f", 1, 10, content); err != nil {
		t.Fatal(err)
	}
	diskAfterV1 := s.Tier().DiskBlobs

	// Stale put of different content: rejected; its fresh blobs become dead
	// and the next sweep removes exactly those.
	other := bytes.Repeat([]byte{9}, len(content))
	if err := s.Put("fs1", "/f", 1, 20, other); err == nil {
		t.Fatal("stale put accepted")
	}
	s.GCNow()
	if got := s.Tier().DiskBlobs; got != diskAfterV1 {
		t.Fatalf("disk blobs after stale-put GC = %d, want %d", got, diskAfterV1)
	}

	// Drop the file, then re-archive identical content before the sweep:
	// every blob revives — zero new bytes travel to the device.
	s.Drop("fs1", "/f")
	newBefore := s.Dedup().NewBytes
	if err := s.Put("fs1", "/f", 1, 30, content); err != nil {
		t.Fatal(err)
	}
	if got := s.Dedup().NewBytes; got != newBefore {
		t.Fatalf("revive transferred %d bytes to the device", got-newBefore)
	}
	if freed := s.GCNow(); freed != 0 {
		t.Fatalf("GC freed %d revived blobs", freed)
	}
	e, err := s.Latest("fs1", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e.Content(), content) {
		t.Fatal("revived version unreadable")
	}
}
