// Package archive implements the archive server of §4.4: a versioned store
// of linked-file contents used for update atomicity (restore the last
// committed version after an abort or crash) and for coordinated
// point-in-time restore (each version carries the host database state
// identifier that was current when it committed).
//
// Versions are stored as extent manifests, not flat byte slices: chunks are
// interned by content hash, so archiving a new version of a file costs
// O(changed chunks) in both time and resident storage — mostly-identical
// versions share almost everything. Restore hands the manifest back for an
// O(#chunks) swap into the file system.
//
// The store is in-memory (the paper used a tertiary archive device); a
// configurable latency models the device. The latency of a Put is charged
// per NEW chunk transferred — deduplicated chunks never travel to the
// device — so the "block new updates until archiving completes" behaviour of
// the paper stays observable while its cost tracks the delta, not the file.
//
// Locking is sharded two ways: version lists shard by (server, path) key and
// the dedup table shards by content hash, so concurrent archivers of
// different files never contend on a global mutex.
package archive

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/extent"
)

// Version numbers a file's archived states, starting at 0 for the content
// at link time.
type Version int64

// Entry is one archived version of one file. The manifest is owned by the
// store; callers materialize bytes with Content() or swap the manifest into
// a file system directly.
type Entry struct {
	Server   string
	Path     string
	Version  Version
	StateID  uint64 // host database state identifier (tail LSN) at commit
	Size     int64
	Manifest *extent.Snapshot
	Stored   time.Time
}

// Content materializes the archived bytes (a fresh copy).
func (e Entry) Content() []byte {
	if e.Manifest == nil {
		return nil
	}
	return e.Manifest.Bytes()
}

// Errors.
var (
	ErrNotFound = errors.New("archive: no such version")
	// ErrStale rejects a Put whose version is not newer than what is already
	// archived. Recovery treats it as benign: the version already made it to
	// the device (e.g. an archiver that survived the crash completed it).
	ErrStale = errors.New("archive: version not newer than archived")
)

// shardCount must be a power of two.
const shardCount = 16

// entryShard holds the version lists of a subset of (server, path) keys.
type entryShard struct {
	mu      sync.Mutex
	entries map[string][]Entry
}

// dedupEntry is one interned chunk: the canonical chunk plus how many
// manifests reference it.
type dedupEntry struct {
	chunk *extent.Chunk
	refs  int64
}

// dedupShard holds a subset of the content-hash intern table.
type dedupShard struct {
	mu     sync.Mutex
	chunks map[extent.Hash]*dedupEntry
}

// PutStats reports what one Put physically did.
type PutStats struct {
	NewChunks    int   // chunks that had to be stored
	SharedChunks int   // chunks deduplicated against resident content
	NewBytes     int64 // bytes the device received (new chunks + tail)
	DedupedBytes int64 // bytes NOT transferred thanks to dedup
}

// DedupStats is the store-wide view of the dedup machinery.
type DedupStats struct {
	LogicalBytes  int64 // sum of version sizes as archived
	NewBytes      int64 // bytes physically stored across all Puts
	DedupedBytes  int64 // logical bytes that deduplicated away
	SharedChunks  int64 // chunk references served by dedup
	ResidentBytes int64 // bytes currently resident (chunks + tails)
}

// Store is an archive server. Safe for concurrent use.
type Store struct {
	shards [shardCount]entryShard
	dedup  [shardCount]dedupShard
	seed   maphash.Seed
	clock  func() time.Time

	latency atomic.Int64 // nanoseconds per device transfer unit

	// Stats for the experiment harness.
	puts          atomic.Int64
	restores      atomic.Int64
	logicalBytes  atomic.Int64
	newBytes      atomic.Int64
	dedupedBytes  atomic.Int64
	sharedChunks  atomic.Int64
	residentBytes atomic.Int64
}

// New returns an empty archive store. latency is the simulated device cost
// per transfer unit (one chunk's worth of new data for Put, one round trip
// for Get); zero means instant.
func New(latency time.Duration, clock func() time.Time) *Store {
	if clock == nil {
		clock = time.Now
	}
	s := &Store{seed: maphash.MakeSeed(), clock: clock}
	s.latency.Store(int64(latency))
	for i := range s.shards {
		s.shards[i].entries = make(map[string][]Entry)
		s.dedup[i].chunks = make(map[extent.Hash]*dedupEntry)
	}
	return s
}

func key(server, path string) string { return server + "\x00" + path }

// shardFor picks the entry shard for a key.
func (s *Store) shardFor(k string) *entryShard {
	return &s.shards[maphash.String(s.seed, k)&(shardCount-1)]
}

// dedupFor picks the dedup shard for a content hash.
func (s *Store) dedupFor(h extent.Hash) *dedupShard {
	return &s.dedup[h[0]&(shardCount-1)]
}

// SetLatency adjusts the simulated device latency.
func (s *Store) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

// sleep charges the device cost for units transfer units (minimum one round
// trip per operation).
func (s *Store) sleep(units int64) {
	d := time.Duration(s.latency.Load())
	if d <= 0 {
		return
	}
	if units < 1 {
		units = 1
	}
	time.Sleep(d * time.Duration(units))
}

// intern maps a chunk to its canonical resident representative, retaining
// the canonical chunk for the manifest being built. Returns whether the
// chunk was new to the store. Resident accounting happens here (and in
// unintern) so a manifest that is later rejected unwinds symmetrically.
func (s *Store) intern(c *extent.Chunk) (canonical *extent.Chunk, fresh bool) {
	h := c.Hash()
	ds := s.dedupFor(h)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if e, ok := ds.chunks[h]; ok {
		e.refs++
		return e.chunk.RetainChunk(), false
	}
	ds.chunks[h] = &dedupEntry{chunk: c, refs: 1}
	s.residentBytes.Add(extent.ChunkSize)
	return c.RetainChunk(), true
}

// unintern releases one manifest's reference to every chunk of a manifest.
func (s *Store) unintern(m *extent.Snapshot) {
	for _, c := range m.Chunks() {
		h := c.Hash()
		ds := s.dedupFor(h)
		ds.mu.Lock()
		if e, ok := ds.chunks[h]; ok {
			e.refs--
			if e.refs == 0 {
				delete(ds.chunks, h)
				s.residentBytes.Add(-extent.ChunkSize)
			}
		}
		ds.mu.Unlock()
	}
	s.residentBytes.Add(-int64(len(m.Tail())))
	m.Release()
}

// PutSnapshot archives a version of a file from an extent manifest. The
// snapshot is not consumed — the store builds its own interned manifest.
// Versions must be archived in increasing order per file; re-archiving an
// existing version returns ErrStale (versions are immutable).
func (s *Store) PutSnapshot(server, path string, v Version, stateID uint64, snap *extent.Snapshot) (PutStats, error) {
	var st PutStats
	manifest := snap.Intern(func(c *extent.Chunk) *extent.Chunk {
		canonical, fresh := s.intern(c)
		if fresh {
			st.NewChunks++
			st.NewBytes += extent.ChunkSize
		} else {
			st.SharedChunks++
			st.DedupedBytes += extent.ChunkSize
		}
		return canonical
	})
	st.NewBytes += int64(len(manifest.Tail()))
	s.residentBytes.Add(int64(len(manifest.Tail())))

	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	list := sh.entries[k]
	if n := len(list); n > 0 && list[n-1].Version >= v {
		sh.mu.Unlock()
		s.unintern(manifest)
		return PutStats{}, fmt.Errorf("%w: version %d of %s (archived %d)", ErrStale, v, path, list[n-1].Version)
	}
	size := manifest.Len()
	sh.entries[k] = append(list, Entry{
		Server:   server,
		Path:     path,
		Version:  v,
		StateID:  stateID,
		Size:     size,
		Manifest: manifest,
		Stored:   s.clock(),
	})
	sh.mu.Unlock()

	s.puts.Add(1)
	s.logicalBytes.Add(size)
	s.newBytes.Add(st.NewBytes)
	s.dedupedBytes.Add(st.DedupedBytes)
	s.sharedChunks.Add(int64(st.SharedChunks))

	// Device transfer: only new chunks travel.
	s.sleep(int64(st.NewChunks))
	return st, nil
}

// Put archives a version from a flat byte slice (content is copied).
func (s *Store) Put(server, path string, v Version, stateID uint64, content []byte) error {
	snap := extent.FromBytes(content)
	_, err := s.PutSnapshot(server, path, v, stateID, snap)
	snap.Release()
	return err
}

// Get returns a specific archived version.
func (s *Store) Get(server, path string, v Version) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.entries[k] {
		if e.Version == v {
			s.restores.Add(1)
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s v%d", ErrNotFound, path, v)
}

// Latest returns the newest archived version of a file.
func (s *Store) Latest(server, path string) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.entries[k]
	if len(list) == 0 {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	s.restores.Add(1)
	return list[len(list)-1], nil
}

// AsOf returns the newest version whose StateID is <= stateID — the version
// that was current when the database was at that state (§4.4).
func (s *Store) AsOf(server, path string, stateID uint64) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.entries[k]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].StateID <= stateID {
			s.restores.Add(1)
			return list[i], nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s as of state %d", ErrNotFound, path, stateID)
}

// TruncateAfter discards versions with StateID > stateID (used when the
// database itself is restored to an earlier point in time).
func (s *Store) TruncateAfter(server, path string, stateID uint64) {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	list := sh.entries[k]
	cut := len(list)
	for i, e := range list {
		if e.StateID > stateID {
			cut = i
			break
		}
	}
	dropped := list[cut:]
	sh.entries[k] = list[:cut]
	sh.mu.Unlock()
	for _, e := range dropped {
		s.unintern(e.Manifest)
	}
}

// Versions lists the archived versions of a file in order.
func (s *Store) Versions(server, path string) []Entry {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.entries[k]
	out := make([]Entry, len(list))
	copy(out, list)
	return out
}

// Files lists every archived path for a server, sorted.
func (s *Store) Files(server string) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			if len(k) > len(server) && k[:len(server)] == server && k[len(server)] == 0 {
				out = append(out, k[len(server)+1:])
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Drop discards every version of a file (after unlink with no recovery need).
func (s *Store) Drop(server, path string) {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	dropped := sh.entries[k]
	delete(sh.entries, k)
	sh.mu.Unlock()
	for _, e := range dropped {
		s.unintern(e.Manifest)
	}
}

// Stats reports operation counts for benchmarks. bytes is the logical size
// archived (what the paper's flat copy would have moved); the physically
// stored delta is in Dedup().
func (s *Store) Stats() (puts, restores, bytes int64) {
	return s.puts.Load(), s.restores.Load(), s.logicalBytes.Load()
}

// Dedup reports the chunk-dedup counters.
func (s *Store) Dedup() DedupStats {
	return DedupStats{
		LogicalBytes:  s.logicalBytes.Load(),
		NewBytes:      s.newBytes.Load(),
		DedupedBytes:  s.dedupedBytes.Load(),
		SharedChunks:  s.sharedChunks.Load(),
		ResidentBytes: s.residentBytes.Load(),
	}
}
