// Package archive implements the archive server of §4.4: a versioned store
// of linked-file contents used for update atomicity (restore the last
// committed version after an abort or crash) and for coordinated
// point-in-time restore (each version carries the host database state
// identifier that was current when it committed).
//
// Storage is tiered and delta-based:
//
//   - Each version's metadata is a delta manifest against its predecessor —
//     the list of chunk slots whose content hash changed, plus the new tail.
//     A full manifest (checkpoint) is stored for version 0, whenever the
//     delta would exceed half the file, and at least every checkpointEvery
//     versions, so materializing any version walks a bounded chain.
//     Metadata cost per version is therefore O(changed chunks), not
//     O(file size / ChunkSize).
//   - Chunk and tail bytes live in a chunkdisk store: interned by content
//     hash, written through to disk (when a directory is configured), with a
//     bounded in-memory LRU of hot blobs. Resident memory is capped by the
//     LRU budget no matter how many versions accumulate; cold chunks page
//     back in on Get/Latest/AsOf/restore.
//   - Dropping versions (TruncateAfter, Drop, unlink) releases references;
//     blobs that reach zero are freed from memory immediately and their disk
//     files are unlinked later by GC (a background sweeper or explicit
//     GCNow).
//   - With a directory configured, every version's manifest is also written
//     through to a durable catalog (internal/catalog: append-only checksummed
//     log + snapshot checkpoints, in the same directory), and TruncateAfter/
//     Drop append tombstones. NewTiered over an existing directory replays
//     the catalog: the whole version history comes back into service with
//     zero re-archiving, which is what makes the archive a database-managed
//     store rather than a cache over the chunk files.
//
// A configurable latency models the paper's tertiary archive device. The
// latency of a Put is charged per NEW chunk transferred — deduplicated
// chunks never travel — so the "block new updates until archiving completes"
// behaviour stays observable while its cost tracks the delta, not the file.
//
// Locking is sharded three ways: version lists shard by (server, path) key,
// the refcount table shards by content hash, and the chunkdisk LRU shards by
// hash — concurrent archivers of different files never contend on a global
// mutex. Lock order is always entry shard → dedup shard → chunkdisk shard.
package archive

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/catalog"
	"datalinks/internal/chunkdisk"
	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
)

// Version numbers a file's archived states, starting at 0 for the content
// at link time.
type Version int64

// checkpointEvery is the default delta-chain bound: at least every this many
// versions a full manifest is stored, so materialization applies at most this
// many deltas on top of one checkpoint (TierConfig.CheckpointEvery overrides).
const checkpointEvery = 16

// Entry is one archived version of one file: the metadata plus a handle
// through which the content can be materialized. Content() and Snapshot()
// are valid while the version remains archived (they fail after a
// TruncateAfter/Drop that discards it — the chunks may be gone).
type Entry struct {
	Server  string
	Path    string
	Version Version
	StateID uint64 // host database state identifier (tail LSN) at commit
	Size    int64
	Stored  time.Time

	st  *Store
	key string
	idx int
	gen uint64
}

// Content materializes the archived bytes (a fresh copy), paging cold chunks
// in from the disk tier as needed. Returns nil if the version has been
// discarded since the entry was obtained.
func (e Entry) Content() []byte {
	snap, err := e.Snapshot()
	if err != nil {
		return nil
	}
	defer snap.Release()
	return snap.Bytes()
}

// Snapshot materializes the version as an extent manifest for an O(#chunks)
// restore swap. The caller owns the returned snapshot and must Release it.
func (e Entry) Snapshot() (*extent.Snapshot, error) {
	if e.st == nil {
		return nil, fmt.Errorf("%w: entry not bound to a store", ErrNotFound)
	}
	return e.st.materialize(e.key, e.idx, e.gen, e.Version)
}

// Errors.
var (
	ErrNotFound = errors.New("archive: no such version")
	// ErrStale rejects a Put whose version is not newer than what is already
	// archived. Recovery treats it as benign: the version already made it to
	// the device (e.g. an archiver that survived the crash completed it).
	ErrStale = errors.New("archive: version not newer than archived")
)

// shardCount must be a power of two.
const shardCount = 16

// chunkMod is one slot of a delta manifest: chunk idx now has this hash.
type chunkMod struct {
	idx  int32
	hash extent.Hash
}

// verRec is the stored manifest of one version: either a full hash list
// (checkpoint) or a delta against the immediately preceding version.
type verRec struct {
	isFull  bool          // checkpoint: full holds every chunk hash
	full    []extent.Hash // checkpoint only (may be empty: tail-only file)
	mods    []chunkMod    // delta only: changed/new chunk slots
	nchunks int           // chunk count of this version
	tail    extent.Hash   // hash of the tail blob (tailLen > 0)
	tailLen int
}

// genCounter distinguishes successive histories of the same path (drop +
// re-link): stale Entry handles from a dropped history never resolve against
// the new one.
var genCounter atomic.Uint64

// modsForCatalog converts the in-memory delta to the catalog's wire form.
func modsForCatalog(mods []chunkMod) []catalog.Mod {
	if len(mods) == 0 {
		return nil
	}
	out := make([]catalog.Mod, len(mods))
	for i, m := range mods {
		out[i] = catalog.Mod{Idx: m.idx, Hash: m.hash}
	}
	return out
}

// fileVersions is the per-(server,path) version history.
type fileVersions struct {
	entries []Entry
	recs    []*verRec
	// last caches the newest version's full hash list so Put diffs against
	// it without walking the delta chain. O(#chunks of one version) memory
	// per archived file.
	last []extent.Hash
	gen  uint64 // distinguishes re-linked histories of the same path
}

// entryShard holds the version histories of a subset of (server, path) keys.
type entryShard struct {
	mu      sync.Mutex
	entries map[string]*fileVersions
}

// dedupEntry is one interned blob: how many version slots reference it.
// (Byte accounting lives in chunkdisk, which owns the bytes.)
type dedupEntry struct {
	refs int64
}

// dedupShard holds a subset of the content-hash refcount table.
type dedupShard struct {
	mu    sync.Mutex
	blobs map[extent.Hash]*dedupEntry
}

// PutStats reports what one Put physically did.
type PutStats struct {
	NewChunks    int   // chunks that had to be stored
	SharedChunks int   // chunks deduplicated against stored content
	DeltaChunks  int   // chunk slots recorded in the delta manifest
	NewBytes     int64 // bytes the device received (new chunks + new tail)
	DedupedBytes int64 // bytes NOT transferred thanks to dedup
}

// DedupStats is the store-wide view of the dedup machinery.
type DedupStats struct {
	LogicalBytes  int64 // sum of version sizes as archived
	NewBytes      int64 // bytes physically stored across all Puts
	DedupedBytes  int64 // logical bytes that deduplicated away
	SharedChunks  int64 // chunk references served by dedup
	ResidentBytes int64 // bytes currently resident in MEMORY (the LRU tier)
}

// TierConfig configures the durable tier.
type TierConfig struct {
	// Dir is the on-disk chunk store root; "" keeps the store memory-only.
	// With a directory, the store also keeps a durable catalog (manifest log
	// + snapshot checkpoints) there, and NewTiered replays it: a restarted
	// process serves the full pre-restart version history with zero
	// re-archiving.
	Dir string
	// MemoryBudget bounds the hot-chunk LRU (bytes); <= 0 uses the
	// chunkdisk default. Ignored when Dir is empty.
	MemoryBudget int64
	// GCInterval starts a background sweeper unlinking unreferenced disk
	// chunks this often; 0 leaves GC to explicit GCNow calls.
	GCInterval time.Duration
	// CheckpointEvery bounds the delta chain: a full manifest at least every
	// this many versions (<= 0: the package default of 16; 1 makes every
	// version a checkpoint).
	CheckpointEvery int
	// Compress flate-compresses spilled chunk files when that shrinks them;
	// content hashes are still verified on the uncompressed bytes. Ignored
	// when Dir is empty.
	Compress bool
	// CatalogCompactBytes checkpoints the catalog log once it outgrows this
	// size (<= 0: the catalog default).
	CatalogCompactBytes int64
	// Fsync selects the durability policy shared by packfile/blob writes and
	// catalog log appends: none (default — rely on the OS page cache), group
	// (concurrent committers coalesce behind shared fdatasyncs at the commit
	// barrier), or always (every append flushes inline). See internal/fsyncer.
	Fsync fsyncer.Policy
	// FsyncMaxDelay, under the group policy, lets a group-commit leader wait
	// this long before flushing so more committers join its round.
	FsyncMaxDelay time.Duration
	// PackThreshold batches blobs at or below this size into packfiles
	// (0: the chunkdisk default of one extent chunk — every tail and
	// single-chunk delta; negative: packing disabled, every blob loose).
	PackThreshold int64
	// PackTargetBytes seals the active packfile once it grows past this
	// (<= 0: the chunkdisk default).
	PackTargetBytes int64
	// PackGarbageRatio compacts a sealed packfile once this fraction of its
	// payload is dead (<= 0 or >= 1: the chunkdisk default).
	PackGarbageRatio float64
	// Metrics, if set, mirrors the tier's fsync/pack counters
	// (chunkdisk.fsyncs, chunkdisk.pack.appends, chunkdisk.pack.dead_bytes,
	// catalog.fsyncs) into a registry.
	Metrics *metrics.Registry
}

// RecoveryStats reports what NewTiered replayed from an existing archive
// directory.
type RecoveryStats struct {
	Files           int   // histories rebuilt from the catalog
	Versions        int   // versions restored to service
	DroppedVersions int   // versions discarded because a referenced blob is missing
	TornBytes       int64 // invalid catalog-log tail quarantined at open
	SnapshotRecords int   // catalog records loaded from the snapshot checkpoint
	LogRecords      int   // catalog records replayed from the log
}

// Store is an archive server. Safe for concurrent use.
type Store struct {
	shards  [shardCount]entryShard
	dedup   [shardCount]dedupShard
	disk    *chunkdisk.Store
	cat     *catalog.Catalog // nil in memory-only mode
	ckEvery int
	recov   RecoveryStats
	seed    maphash.Seed
	clock   func() time.Time

	latency atomic.Int64 // nanoseconds per device transfer unit

	gcStop    chan struct{}
	gcDone    chan struct{}
	closeOnce sync.Once

	// Stats for the experiment harness.
	puts         atomic.Int64
	restores     atomic.Int64
	logicalBytes atomic.Int64
	newBytes     atomic.Int64
	dedupedBytes atomic.Int64
	sharedChunks atomic.Int64
}

// New returns a memory-only archive store (the disk tier disabled). latency
// is the simulated device cost per transfer unit (one chunk's worth of new
// data for Put, one round trip for Get); zero means instant.
func New(latency time.Duration, clock func() time.Time) *Store {
	s, err := NewTiered(latency, clock, TierConfig{})
	if err != nil {
		// Memory-only construction cannot fail.
		panic(err)
	}
	return s
}

// NewTiered returns an archive store with the durable tier configured. With
// a directory, any version history a previous process left there (catalog +
// chunk files) is replayed back into service before the store returns: the
// full index is rebuilt, chunk refcounts re-pinned, and every referenced blob
// verified present — versions referencing missing blobs are dropped rather
// than failing the open, and a torn catalog-log tail is quarantined. See
// Recovery for what was replayed.
func NewTiered(latency time.Duration, clock func() time.Time, tier TierConfig) (*Store, error) {
	if clock == nil {
		clock = time.Now
	}
	disk, err := chunkdisk.Open(chunkdisk.Config{
		Dir:              tier.Dir,
		MemoryBudget:     tier.MemoryBudget,
		Compress:         tier.Compress,
		PackThreshold:    tier.PackThreshold,
		PackTargetBytes:  tier.PackTargetBytes,
		PackGarbageRatio: tier.PackGarbageRatio,
		Fsync:            tier.Fsync,
		FsyncMaxDelay:    tier.FsyncMaxDelay,
		Metrics:          tier.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	s := &Store{seed: maphash.MakeSeed(), clock: clock, disk: disk, ckEvery: tier.CheckpointEvery}
	if s.ckEvery <= 0 {
		s.ckEvery = checkpointEvery
	}
	s.latency.Store(int64(latency))
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*fileVersions)
		s.dedup[i].blobs = make(map[extent.Hash]*dedupEntry)
	}
	if tier.Dir != "" {
		cat, err := catalog.Open(tier.Dir, catalog.Config{
			CompactBytes:  tier.CatalogCompactBytes,
			Fsync:         tier.Fsync,
			FsyncMaxDelay: tier.FsyncMaxDelay,
			Metrics:       tier.Metrics,
		})
		if err != nil {
			disk.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
		repaired := s.replay(cat)
		// Persist the folded-in log and any repairs as a fresh checkpoint so
		// the next open starts from a snapshot and an empty log. A clean
		// snapshot-only open (nothing to fold, nothing repaired) skips the
		// rewrite — cold-open cost must not grow with archive size for a
		// no-op.
		if cat.LogSize() > 0 || s.recov.TornBytes > 0 || repaired {
			if err := cat.Compact(); err != nil {
				cat.Close()
				disk.Close()
				return nil, fmt.Errorf("archive: %w", err)
			}
		}
		s.cat = cat
	}
	if tier.Dir != "" && tier.GCInterval > 0 {
		s.gcStop = make(chan struct{})
		s.gcDone = make(chan struct{})
		go s.gcLoop(tier.GCInterval)
	}
	return s, nil
}

// replay rebuilds the in-memory version index from the catalog's shadow
// state: for every key, walk the delta chain oldest-first, verify every blob
// a version references actually exists in the chunk store, and only then
// re-pin one blob reference per chunk slot (and tail) — so a version that
// proves unservable never un-deadens blobs it will not use. The first
// version referencing a missing blob ends that key's history — it and
// everything after it are dropped (later deltas chain through it, and blobs
// only vanish through corruption or manual deletion, so the safe prefix is
// what remains). repaired reports whether any history was trimmed (the
// caller then persists the repair via a catalog checkpoint).
func (s *Store) replay(cat *catalog.Catalog) (repaired bool) {
	st := cat.Stats()
	s.recov.TornBytes = st.TornBytes
	s.recov.SnapshotRecords = st.SnapshotRecords
	s.recov.LogRecords = st.LogRecords
	exists := make(map[extent.Hash]bool)
	has := func(h extent.Hash) bool {
		ok, seen := exists[h]
		if !seen {
			ok = s.disk.Has(h)
			exists[h] = ok
		}
		return ok
	}
	claimed := make(map[extent.Hash]struct{})
	claim := func(h extent.Hash) {
		if _, done := claimed[h]; !done {
			s.disk.Claim(h)
			claimed[h] = struct{}{}
		}
	}
	for _, k := range cat.Keys() {
		hist := cat.History(k)
		server, path, ok := splitKey(k)
		if !ok {
			// Not a key this store ever writes; ignore rather than guess.
			cat.Trim(k, 0)
			repaired = true
			continue
		}
		fv := &fileVersions{gen: genCounter.Add(1)}
		var full []extent.Hash
		keep := len(hist)
	scan:
		for i, pr := range hist {
			rec := recFromCatalog(pr)
			full = applyRec(full, rec)
			for _, h := range full {
				if !has(h) {
					keep = i
					break scan
				}
			}
			if rec.tailLen > 0 && !has(rec.tail) {
				keep = i
				break scan
			}
			// The version is servable: un-deaden and pin its references,
			// then index it.
			for _, h := range full {
				claim(h)
				s.addRef(h)
			}
			if rec.tailLen > 0 {
				claim(rec.tail)
				s.addRef(rec.tail)
			}
			fv.recs = append(fv.recs, rec)
			fv.entries = append(fv.entries, Entry{
				Server:  server,
				Path:    path,
				Version: Version(pr.Version),
				StateID: pr.StateID,
				Size:    pr.Size,
				Stored:  time.Unix(0, pr.StoredUnixNano),
				st:      s,
				key:     k,
				idx:     i,
				gen:     fv.gen,
			})
			fv.last = full
		}
		if keep < len(hist) {
			cat.Trim(k, keep)
			s.recov.DroppedVersions += len(hist) - keep
			repaired = true
		}
		if keep == 0 {
			continue
		}
		sh := s.shardFor(k)
		sh.mu.Lock()
		sh.entries[k] = fv
		sh.mu.Unlock()
		s.recov.Files++
		s.recov.Versions += keep
	}
	return repaired
}

// recFromCatalog converts a durable manifest record to the in-memory form,
// sharing the (frozen) hash slices.
func recFromCatalog(pr *catalog.PutRec) *verRec {
	rec := &verRec{
		isFull:  pr.IsFull,
		full:    pr.Full,
		nchunks: pr.NChunks,
		tail:    pr.TailHash,
		tailLen: pr.TailLen,
	}
	if !pr.IsFull {
		rec.mods = make([]chunkMod, len(pr.Mods))
		for i, m := range pr.Mods {
			rec.mods[i] = chunkMod{idx: m.Idx, hash: m.Hash}
		}
	}
	return rec
}

// applyRec advances a full hash list by one version record (a fresh slice is
// returned; prev is not aliased).
func applyRec(prev []extent.Hash, rec *verRec) []extent.Hash {
	if rec.isFull {
		return append([]extent.Hash(nil), rec.full...)
	}
	return applyDelta(append([]extent.Hash(nil), prev...), rec)
}

// Recovery reports what NewTiered replayed from the archive directory (zero
// for a fresh or memory-only store).
func (s *Store) Recovery() RecoveryStats { return s.recov }

// gcLoop sweeps dead disk chunks until Close.
func (s *Store) gcLoop(interval time.Duration) {
	defer close(s.gcDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.disk.Sweep()
		case <-s.gcStop:
			return
		}
	}
}

// GCNow sweeps dead disk chunks immediately, returning how many files were
// freed (tests and explicit maintenance).
func (s *Store) GCNow() int { return s.disk.Sweep() }

// Close stops the background GC (if any), sweeps dead disk chunks one final
// time, closes the durable catalog and the disk tier (sealing the active
// packfile and releasing the archive-dir lock). A memory-only store remains
// usable afterwards; a tiered store rejects further Puts (its catalog is
// closed) but keeps serving memory-resident reads. Idempotent.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.gcStop != nil {
			close(s.gcStop)
			<-s.gcDone
		}
		s.disk.Sweep()
		if s.cat != nil {
			s.cat.Close()
		}
		s.disk.Close()
	})
}

// Crash simulates the archive process dying for tests: no final sweep, no
// pack seal fsync — the directory is left exactly as the OS had it, and the
// single-owner lock is released so a successor store can open it (a real
// crash releases it too, via the lockfile's dead-pid check).
func (s *Store) Crash() {
	s.closeOnce.Do(func() {
		if s.gcStop != nil {
			close(s.gcStop)
			<-s.gcDone
		}
		if s.cat != nil {
			s.cat.Close()
		}
		s.disk.Crash()
	})
}

// Fsyncs reports the physical fdatasync calls the durable tier has issued:
// chunk/pack flushes (chunkdisk) and manifest-log flushes (catalog). Both
// are zero under FsyncPolicy none.
func (s *Store) Fsyncs() (chunk, cat int64) {
	chunk = s.disk.Stats().Fsyncs
	if s.cat != nil {
		cat = s.cat.Fsyncs()
	}
	return chunk, cat
}

func key(server, path string) string { return server + "\x00" + path }

// splitKey is key's inverse (catalog replay).
func splitKey(k string) (server, path string, ok bool) {
	i := strings.IndexByte(k, 0)
	if i < 0 {
		return "", "", false
	}
	return k[:i], k[i+1:], true
}

// shardFor picks the entry shard for a key.
func (s *Store) shardFor(k string) *entryShard {
	return &s.shards[maphash.String(s.seed, k)&(shardCount-1)]
}

// dedupFor picks the dedup shard for a content hash.
func (s *Store) dedupFor(h extent.Hash) *dedupShard {
	return &s.dedup[h[0]&(shardCount-1)]
}

// SetLatency adjusts the simulated device latency.
func (s *Store) SetLatency(d time.Duration) { s.latency.Store(int64(d)) }

// sleep charges the device cost for units transfer units (minimum one round
// trip per operation).
func (s *Store) sleep(units int64) {
	d := time.Duration(s.latency.Load())
	if d <= 0 {
		return
	}
	if units < 1 {
		units = 1
	}
	time.Sleep(d * time.Duration(units))
}

// addRef takes one reference on a blob hash, reporting whether the blob is
// new to the refcount table.
func (s *Store) addRef(h extent.Hash) (fresh bool) {
	ds := s.dedupFor(h)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if e, ok := ds.blobs[h]; ok {
		e.refs++
		return false
	}
	ds.blobs[h] = &dedupEntry{refs: 1}
	return true
}

// releaseRef drops one reference; at zero the blob leaves the refcount table
// and its storage is dropped (memory immediately, disk at the next sweep).
func (s *Store) releaseRef(h extent.Hash) {
	ds := s.dedupFor(h)
	ds.mu.Lock()
	e, ok := ds.blobs[h]
	if ok {
		e.refs--
		if e.refs == 0 {
			delete(ds.blobs, h)
		} else {
			ok = false
		}
	}
	ds.mu.Unlock()
	if ok {
		s.disk.Drop(h)
	}
}

// releaseRec releases every blob reference a version's full hash list holds.
func (s *Store) releaseRec(hashes []extent.Hash, rec *verRec) {
	for _, h := range hashes {
		s.releaseRef(h)
	}
	if rec.tailLen > 0 {
		s.releaseRef(rec.tail)
	}
}

// applyDelta advances hashes by one delta record in place (resize to the
// record's chunk count, then apply the changed slots) — the single
// implementation of the chain-step semantics, shared by live materialization
// (hashesAt) and catalog replay (applyRec).
func applyDelta(hashes []extent.Hash, rec *verRec) []extent.Hash {
	if rec.nchunks <= len(hashes) {
		hashes = hashes[:rec.nchunks]
	} else {
		hashes = append(hashes, make([]extent.Hash, rec.nchunks-len(hashes))...)
	}
	for _, m := range rec.mods {
		hashes[m.idx] = m.hash
	}
	return hashes
}

// hashesAt materializes the full hash list of version index idx by walking
// back to the nearest checkpoint and applying deltas forward. Caller holds
// the entry shard lock.
func hashesAt(fv *fileVersions, idx int) []extent.Hash {
	base := idx
	for !fv.recs[base].isFull {
		base--
	}
	hashes := append([]extent.Hash(nil), fv.recs[base].full...)
	for i := base + 1; i <= idx; i++ {
		hashes = applyDelta(hashes, fv.recs[i])
	}
	return hashes
}

// PutSnapshot archives a version of a file from an extent manifest. The
// snapshot is not consumed — the store interns the content by hash.
// Versions must be archived in increasing order per file; re-archiving an
// existing version returns ErrStale (versions are immutable).
func (s *Store) PutSnapshot(server, path string, v Version, stateID uint64, snap *extent.Snapshot) (PutStats, error) {
	return s.PutSnapshotCtx(context.Background(), server, path, v, stateID, snap)
}

// PutSnapshotCtx is PutSnapshot carrying a trace context: when the context
// holds a span, the commit durability barrier gets an "archive.barrier" span
// whose "fsync" child records which group-commit round (pack and catalog)
// made this version durable.
func (s *Store) PutSnapshotCtx(ctx context.Context, server, path string, v Version, stateID uint64, snap *extent.Snapshot) (PutStats, error) {
	var st PutStats
	chunks := snap.Chunks()
	hashes := make([]extent.Hash, len(chunks))
	// Intern every chunk first: the references pin the blobs, so a stale
	// rejection can unwind symmetrically and a concurrent drop of an older
	// version can never free content this version shares.
	for i, c := range chunks {
		h := c.Hash()
		hashes[i] = h
		if s.addRef(h) {
			wrote, err := s.disk.Put(h, c)
			if err != nil {
				// Undo what we interned so far; the device rejected the blob.
				for _, uh := range hashes[:i+1] {
					s.releaseRef(uh)
				}
				return PutStats{}, err
			}
			if wrote {
				st.NewChunks++
				st.NewBytes += extent.ChunkSize
			} else {
				// Revived a dead blob: on the device already, no transfer.
				st.SharedChunks++
				st.DedupedBytes += extent.ChunkSize
			}
		} else {
			st.SharedChunks++
			st.DedupedBytes += extent.ChunkSize
		}
	}
	tail := snap.Tail()
	var tailHash extent.Hash
	if len(tail) > 0 {
		tailHash = sha256.Sum256(tail)
		if s.addRef(tailHash) {
			tc := extent.WrapChunk(append([]byte(nil), tail...), tailHash)
			wrote, err := s.disk.Put(tailHash, tc)
			tc.ReleaseChunk()
			if err != nil {
				for _, uh := range hashes {
					s.releaseRef(uh)
				}
				s.releaseRef(tailHash)
				return PutStats{}, err
			}
			if wrote {
				st.NewBytes += int64(len(tail))
			} else {
				st.DedupedBytes += int64(len(tail))
			}
		} else {
			st.DedupedBytes += int64(len(tail))
		}
	}
	rec := &verRec{nchunks: len(hashes), tail: tailHash, tailLen: len(tail)}

	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	fv := sh.entries[k]
	if fv == nil {
		fv = &fileVersions{gen: genCounter.Add(1)}
		sh.entries[k] = fv
	}
	if n := len(fv.entries); n > 0 && fv.entries[n-1].Version >= v {
		last := fv.entries[n-1].Version
		sh.mu.Unlock()
		s.releaseRec(hashes, rec)
		return PutStats{}, fmt.Errorf("%w: version %d of %s (archived %d)", ErrStale, v, path, last)
	}
	// Delta against the cached predecessor list; checkpoint when the delta
	// would not save metadata or the chain is due for one.
	var mods []chunkMod
	sinceFull := 0
	for i := len(fv.recs) - 1; i >= 0 && !fv.recs[i].isFull; i-- {
		sinceFull++
	}
	if len(fv.recs) > 0 {
		prev := fv.last
		for i, h := range hashes {
			if i >= len(prev) || prev[i] != h {
				mods = append(mods, chunkMod{idx: int32(i), hash: h})
			}
		}
	}
	if len(fv.recs) == 0 || sinceFull+1 >= s.ckEvery || len(mods)*2 >= len(hashes) {
		rec.isFull = true
		rec.full = append([]extent.Hash(nil), hashes...)
	} else {
		rec.mods = mods
	}
	st.DeltaChunks = len(mods)
	size := snap.Len()
	stored := s.clock()
	prevLast := fv.last
	fv.recs = append(fv.recs, rec)
	fv.entries = append(fv.entries, Entry{
		Server:  server,
		Path:    path,
		Version: v,
		StateID: stateID,
		Size:    size,
		Stored:  stored,
		st:      s,
		key:     k,
		idx:     len(fv.entries),
		gen:     fv.gen,
	})
	fv.last = hashes
	if s.cat != nil {
		// Write the manifest through to the durable catalog before the
		// version becomes visible outside the shard lock. The chunk bytes are
		// already on the device (written above), so a crash right here loses
		// only this version's index entry — its blobs are adopted as dead and
		// swept at the next open, and recovery's pending-archive pass
		// re-archives the version.
		pr := &catalog.PutRec{
			Key:            k,
			Version:        int64(v),
			StateID:        stateID,
			Size:           size,
			StoredUnixNano: stored.UnixNano(),
			NChunks:        rec.nchunks,
			TailLen:        rec.tailLen,
			TailHash:       rec.tail,
			IsFull:         rec.isFull,
			Full:           rec.full,
			Mods:           modsForCatalog(rec.mods),
		}
		if err := s.cat.AppendPut(pr); err != nil {
			// Unwind the insert: an unlogged version must not be served (it
			// would silently vanish at the next restart).
			fv.recs = fv.recs[:len(fv.recs)-1]
			fv.entries = fv.entries[:len(fv.entries)-1]
			fv.last = prevLast
			if len(fv.entries) == 0 {
				delete(sh.entries, k)
			}
			sh.mu.Unlock()
			s.releaseRec(hashes, rec)
			return PutStats{}, fmt.Errorf("archive: catalog: %w", err)
		}
	}
	sh.mu.Unlock()
	if s.cat != nil {
		// Checkpoint the catalog if this append pushed the log past its
		// threshold — outside the shard lock, so a large snapshot write never
		// stalls this shard's readers. Best-effort: on failure the log keeps
		// growing and a later append retries.
		_ = s.cat.CompactIfDue()
	}
	// Commit durability barrier (group policy; no-op under none/always):
	// one coalesced fdatasync covers this commit's pack appends, then one
	// covers its catalog append — shared with every concurrent committer.
	// Blobs flush before the manifest so a crash between the two leaves a
	// manifest whose blobs exist (the reverse would reference lost bytes,
	// which replay would then have to drop). The version is already indexed;
	// a barrier failure reports that its durability is not established.
	bar := obs.SpanFrom(ctx).Child("archive.barrier")
	fsp := bar.Child("fsync")
	round, err := s.disk.SyncRound()
	fsp.SetAttr("round", int64(round))
	if err != nil {
		fsp.End()
		bar.End()
		return st, err
	}
	if s.cat != nil {
		cround, cerr := s.cat.SyncRound()
		fsp.SetAttr("catalog_round", int64(cround))
		if cerr != nil {
			fsp.End()
			bar.End()
			return st, fmt.Errorf("archive: catalog: %w", cerr)
		}
	}
	fsp.End()
	bar.End()

	s.puts.Add(1)
	s.logicalBytes.Add(size)
	s.newBytes.Add(st.NewBytes)
	s.dedupedBytes.Add(st.DedupedBytes)
	s.sharedChunks.Add(int64(st.SharedChunks))

	// Device transfer: only new chunks travel.
	s.sleep(int64(st.NewChunks))
	return st, nil
}

// Put archives a version from a flat byte slice (content is copied).
func (s *Store) Put(server, path string, v Version, stateID uint64, content []byte) error {
	snap := extent.FromBytes(content)
	_, err := s.PutSnapshot(server, path, v, stateID, snap)
	snap.Release()
	return err
}

// materialize rebuilds version idx of key as a caller-owned snapshot. The
// blob refs are pinned under the shard lock (so a concurrent truncate/drop
// cannot free them), then the chunks are fetched — possibly paging in from
// disk — without holding any entry lock. The version check catches a slot
// that was truncated and re-filled by a newer Put since the handle was
// obtained: the handle must error, never serve a different version's bytes.
func (s *Store) materialize(k string, idx int, gen uint64, v Version) (*extent.Snapshot, error) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	fv := sh.entries[k]
	if fv == nil || fv.gen != gen || idx >= len(fv.recs) || fv.entries[idx].Version != v {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: version discarded", ErrNotFound)
	}
	rec := fv.recs[idx]
	hashes := hashesAt(fv, idx)
	// Pin every blob with a temporary reference.
	for _, h := range hashes {
		s.addRef(h)
	}
	if rec.tailLen > 0 {
		s.addRef(rec.tail)
	}
	tailHash, tailLen := rec.tail, rec.tailLen
	sh.mu.Unlock()

	unpin := func() {
		for _, h := range hashes {
			s.releaseRef(h)
		}
		if tailLen > 0 {
			s.releaseRef(tailHash)
		}
	}

	chunks := make([]*extent.Chunk, 0, len(hashes))
	fail := func(err error) (*extent.Snapshot, error) {
		for _, c := range chunks {
			c.ReleaseChunk()
		}
		unpin()
		return nil, err
	}
	for _, h := range hashes {
		c, err := s.disk.Get(h)
		if err != nil {
			return fail(err)
		}
		chunks = append(chunks, c)
	}
	var tail []byte
	if tailLen > 0 {
		tc, err := s.disk.Get(tailHash)
		if err != nil {
			return fail(err)
		}
		tail = tc.Data()
		snap := extent.BuildSnapshot(chunks, tail)
		tc.ReleaseChunk()
		unpin()
		return snap, nil
	}
	snap := extent.BuildSnapshot(chunks, nil)
	unpin()
	return snap, nil
}

// Get returns a specific archived version.
func (s *Store) Get(server, path string, v Version) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fv := sh.entries[k]; fv != nil {
		for _, e := range fv.entries {
			if e.Version == v {
				s.restores.Add(1)
				return e, nil
			}
		}
	}
	return Entry{}, fmt.Errorf("%w: %s v%d", ErrNotFound, path, v)
}

// Latest returns the newest archived version of a file.
func (s *Store) Latest(server, path string) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fv := sh.entries[k]
	if fv == nil || len(fv.entries) == 0 {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	s.restores.Add(1)
	return fv.entries[len(fv.entries)-1], nil
}

// AsOf returns the newest version whose StateID is <= stateID — the version
// that was current when the database was at that state (§4.4).
func (s *Store) AsOf(server, path string, stateID uint64) (Entry, error) {
	s.sleep(1)
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fv := sh.entries[k]; fv != nil {
		for i := len(fv.entries) - 1; i >= 0; i-- {
			if fv.entries[i].StateID <= stateID {
				s.restores.Add(1)
				return fv.entries[i], nil
			}
		}
	}
	return Entry{}, fmt.Errorf("%w: %s as of state %d", ErrNotFound, path, stateID)
}

// TruncateAfter discards versions with StateID > stateID (used when the
// database itself is restored to an earlier point in time). The tombstone is
// logged before any state changes: on a catalog failure nothing is dropped
// and the error is returned, so memory and the durable log can never
// disagree about which versions exist (dropped blobs linger on disk until a
// sweep, and an un-tombstoned restart would resurrect them).
func (s *Store) TruncateAfter(server, path string, stateID uint64) error {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	fv := sh.entries[k]
	if fv == nil {
		sh.mu.Unlock()
		return nil
	}
	cut := len(fv.entries)
	for i, e := range fv.entries {
		if e.StateID > stateID {
			cut = i
			break
		}
	}
	if cut == len(fv.entries) {
		sh.mu.Unlock()
		return nil
	}
	if s.cat != nil {
		if err := s.cat.AppendTruncate(k, cut); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("archive: catalog: %w", err)
		}
	}
	// Materialize the dropped versions' hash lists before mutating the
	// chain (their checkpoints may themselves be dropped).
	type dropped struct {
		hashes []extent.Hash
		rec    *verRec
	}
	drops := make([]dropped, 0, len(fv.entries)-cut)
	for i := cut; i < len(fv.entries); i++ {
		drops = append(drops, dropped{hashes: hashesAt(fv, i), rec: fv.recs[i]})
	}
	fv.entries = fv.entries[:cut]
	fv.recs = fv.recs[:cut]
	if cut == 0 {
		delete(sh.entries, k)
	} else {
		fv.last = hashesAt(fv, cut-1)
	}
	sh.mu.Unlock()
	if s.cat != nil {
		_ = s.cat.CompactIfDue()
		// The tombstone follows the same commit barrier as puts (best-effort:
		// the in-memory truncate already happened; a failed flush only widens
		// the window in which a crash resurrects the dropped suffix).
		_ = s.cat.Sync()
	}
	for _, d := range drops {
		s.releaseRec(d.hashes, d.rec)
	}
	return nil
}

// Versions lists the archived versions of a file in order.
func (s *Store) Versions(server, path string) []Entry {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fv := sh.entries[k]
	if fv == nil {
		return nil
	}
	out := make([]Entry, len(fv.entries))
	copy(out, fv.entries)
	return out
}

// Files lists every archived path for a server, sorted.
func (s *Store) Files(server string) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			if len(k) > len(server) && k[:len(server)] == server && k[len(server)] == 0 {
				out = append(out, k[len(server)+1:])
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Drop discards every version of a file (after unlink with no recovery
// need). Tombstone-first like TruncateAfter: a catalog failure drops nothing.
func (s *Store) Drop(server, path string) error {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	fv := sh.entries[k]
	if fv == nil {
		sh.mu.Unlock()
		return nil
	}
	if s.cat != nil {
		if err := s.cat.AppendDrop(k); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("archive: catalog: %w", err)
		}
	}
	type dropped struct {
		hashes []extent.Hash
		rec    *verRec
	}
	drops := make([]dropped, 0, len(fv.entries))
	for i := range fv.entries {
		drops = append(drops, dropped{hashes: hashesAt(fv, i), rec: fv.recs[i]})
	}
	delete(sh.entries, k)
	sh.mu.Unlock()
	if s.cat != nil {
		_ = s.cat.CompactIfDue()
		_ = s.cat.Sync() // tombstone barrier, best-effort like TruncateAfter's
	}
	for _, d := range drops {
		s.releaseRec(d.hashes, d.rec)
	}
	return nil
}

// Stats reports operation counts for benchmarks. bytes is the logical size
// archived (what the paper's flat copy would have moved); the physically
// stored delta is in Dedup().
func (s *Store) Stats() (puts, restores, bytes int64) {
	return s.puts.Load(), s.restores.Load(), s.logicalBytes.Load()
}

// Dedup reports the chunk-dedup counters. ResidentBytes is memory-resident
// bytes only: with the disk tier enabled it is bounded by the LRU budget,
// while the full deduplicated content lives in Tier().DiskBytes.
func (s *Store) Dedup() DedupStats {
	return DedupStats{
		LogicalBytes:  s.logicalBytes.Load(),
		NewBytes:      s.newBytes.Load(),
		DedupedBytes:  s.dedupedBytes.Load(),
		SharedChunks:  s.sharedChunks.Load(),
		ResidentBytes: s.disk.Stats().ResidentBytes,
	}
}

// Tier reports the durable-tier counters (spill, page-in, eviction, GC).
func (s *Store) Tier() chunkdisk.Stats { return s.disk.Stats() }

// TierDir reports the on-disk store root ("" when memory-only).
func (s *Store) TierDir() string { return s.disk.Dir() }
