// Package archive implements the archive server of §4.4: a versioned store
// of linked-file contents used for update atomicity (restore the last
// committed version after an abort or crash) and for coordinated
// point-in-time restore (each version carries the host database state
// identifier that was current when it committed).
//
// The store is in-memory (the paper used a tertiary archive device); a
// configurable per-operation latency models the device so the "block new
// updates until archiving completes" behaviour of the paper is observable.
package archive

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Version numbers a file's archived states, starting at 0 for the content
// at link time.
type Version int64

// Entry is one archived version of one file.
type Entry struct {
	Server  string
	Path    string
	Version Version
	StateID uint64 // host database state identifier (tail LSN) at commit
	Size    int64
	Content []byte
	Stored  time.Time
}

// Errors.
var (
	ErrNotFound = errors.New("archive: no such version")
)

// Store is an archive server. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[string][]Entry // key: server + "\x00" + path, sorted by version
	latency time.Duration
	clock   func() time.Time

	// Stats for the experiment harness.
	puts     int64
	restores int64
	bytes    int64
}

// New returns an empty archive store. latency is applied to every Put and
// Get, modelling the archive device of the paper; zero means instant.
func New(latency time.Duration, clock func() time.Time) *Store {
	if clock == nil {
		clock = time.Now
	}
	return &Store{
		entries: make(map[string][]Entry),
		latency: latency,
		clock:   clock,
	}
}

func key(server, path string) string { return server + "\x00" + path }

// SetLatency adjusts the simulated device latency.
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

func (s *Store) sleep() {
	s.mu.Lock()
	d := s.latency
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Put archives a version of a file. Content is copied. Versions must be
// archived in increasing order per file; re-archiving an existing version is
// an error (versions are immutable).
func (s *Store) Put(server, path string, v Version, stateID uint64, content []byte) error {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(server, path)
	list := s.entries[k]
	if n := len(list); n > 0 && list[n-1].Version >= v {
		return fmt.Errorf("archive: version %d of %s not newer than archived %d", v, path, list[n-1].Version)
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	s.entries[k] = append(list, Entry{
		Server:  server,
		Path:    path,
		Version: v,
		StateID: stateID,
		Size:    int64(len(cp)),
		Content: cp,
		Stored:  s.clock(),
	})
	s.puts++
	s.bytes += int64(len(cp))
	return nil
}

// Get returns a specific archived version.
func (s *Store) Get(server, path string, v Version) (Entry, error) {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries[key(server, path)] {
		if e.Version == v {
			s.restores++
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s v%d", ErrNotFound, path, v)
}

// Latest returns the newest archived version of a file.
func (s *Store) Latest(server, path string) (Entry, error) {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.entries[key(server, path)]
	if len(list) == 0 {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	s.restores++
	return list[len(list)-1], nil
}

// AsOf returns the newest version whose StateID is <= stateID — the version
// that was current when the database was at that state (§4.4).
func (s *Store) AsOf(server, path string, stateID uint64) (Entry, error) {
	s.sleep()
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.entries[key(server, path)]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].StateID <= stateID {
			s.restores++
			return list[i], nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s as of state %d", ErrNotFound, path, stateID)
}

// TruncateAfter discards versions with StateID > stateID (used when the
// database itself is restored to an earlier point in time).
func (s *Store) TruncateAfter(server, path string, stateID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(server, path)
	list := s.entries[k]
	cut := len(list)
	for i, e := range list {
		if e.StateID > stateID {
			cut = i
			break
		}
	}
	s.entries[k] = list[:cut]
}

// Versions lists the archived versions of a file in order.
func (s *Store) Versions(server, path string) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.entries[key(server, path)]
	out := make([]Entry, len(list))
	copy(out, list)
	return out
}

// Files lists every archived path for a server, sorted.
func (s *Store) Files(server string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.entries {
		if len(k) > len(server) && k[:len(server)] == server && k[len(server)] == 0 {
			out = append(out, k[len(server)+1:])
		}
	}
	sort.Strings(out)
	return out
}

// Drop discards every version of a file (after unlink with no recovery need).
func (s *Store) Drop(server, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, key(server, path))
}

// Stats reports operation counts for benchmarks.
func (s *Store) Stats() (puts, restores, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.restores, s.bytes
}
