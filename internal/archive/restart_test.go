package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"datalinks/internal/extent"
	"datalinks/internal/fsyncer"
)

// reopen closes a tiered store and opens a fresh one over the same directory
// (a process restart: all in-memory state is gone, only the directory
// survives).
func reopen(t *testing.T, s *Store, tier TierConfig) *Store {
	t.Helper()
	tier.Dir = s.TierDir()
	s.Close()
	s2, err := NewTiered(0, nil, tier)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	return s2
}

// putBytes archives content as (path, v) and returns a private copy.
func putBytes(t *testing.T, s *Store, path string, v Version, stateID uint64, content []byte) []byte {
	t.Helper()
	snap := extent.FromBytes(content)
	_, err := s.PutSnapshot("fs1", path, v, stateID, snap)
	snap.Release()
	if err != nil {
		t.Fatalf("put %s v%d: %v", path, v, err)
	}
	return append([]byte(nil), content...)
}

// TestRestartServesFullHistory is the acceptance test of the catalog
// subsystem: a store reopened over an existing archive directory serves
// Latest/AsOf/Get for every pre-restart version byte-identically, from many
// goroutines at once, with zero bytes re-archived.
func TestRestartServesFullHistory(t *testing.T) {
	const C = extent.ChunkSize
	dir := t.TempDir()
	tier := TierConfig{MemoryBudget: 2 * C} // small budget: most reads page in
	s, err := NewTiered(0, nil, TierConfig{Dir: dir, MemoryBudget: tier.MemoryBudget})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	paths := []string{"/a.bin", "/dir/b.bin", "/weird\x7f name.bin"}
	want := map[string][][]byte{}
	for pi, p := range paths {
		content := make([]byte, 2*C+pi*1000+77)
		rng.Read(content)
		for v := 0; v < 9; v++ {
			switch v % 3 {
			case 1: // edit in place
				rng.Read(content[C : C+500])
			case 2: // grow
				grown := make([]byte, len(content)+C/2)
				copy(grown, content)
				rng.Read(grown[len(content):])
				content = grown
			}
			want[p] = append(want[p], putBytes(t, s, p, Version(v), uint64(10*v+pi), content))
		}
	}

	s2 := reopen(t, s, tier)
	rec := s2.Recovery()
	if rec.Files != len(paths) || rec.Versions != 9*len(paths) {
		t.Fatalf("recovery = %+v, want %d files / %d versions", rec, len(paths), 9*len(paths))
	}
	if rec.DroppedVersions != 0 || rec.TornBytes != 0 {
		t.Fatalf("clean restart reported damage: %+v", rec)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 1024)
	for _, p := range paths {
		for v := range want[p] {
			wg.Add(1)
			go func(p string, v int) {
				defer wg.Done()
				e, err := s2.Get("fs1", p, Version(v))
				if err != nil {
					errs <- fmt.Errorf("get %s v%d: %w", p, v, err)
					return
				}
				if e.StateID != uint64(10*v+indexOf(paths, p)) {
					errs <- fmt.Errorf("%s v%d state id = %d", p, v, e.StateID)
					return
				}
				if !bytes.Equal(e.Content(), want[p][v]) {
					errs <- fmt.Errorf("%s v%d content diverged after restart", p, v)
				}
			}(p, v)
		}
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			e, err := s2.Latest("fs1", p)
			if err != nil || e.Version != 8 {
				errs <- fmt.Errorf("latest %s: %v (v%d)", p, err, e.Version)
				return
			}
			mid, err := s2.AsOf("fs1", p, uint64(10*4+indexOf(paths, p)))
			if err != nil || mid.Version != 4 {
				errs <- fmt.Errorf("asof %s: %v (v%d)", p, err, mid.Version)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Nothing was re-archived to serve any of that.
	if d := s2.Dedup(); d.NewBytes != 0 {
		t.Fatalf("reopen re-archived %d bytes", d.NewBytes)
	}
	if st := s2.Tier(); st.Spills != 0 {
		t.Fatalf("reopen spilled %d blobs", st.Spills)
	}
	if s2.Tier().PageIns == 0 {
		t.Fatal("verification paged nothing in — the reads did not come from disk")
	}

	// New versions append cleanly on top of replayed history, and survive
	// another restart.
	next := putBytes(t, s2, paths[0], 9, 1000, bytes.Repeat([]byte{0xAB}, C+5))
	s3 := reopen(t, s2, tier)
	e, err := s3.Latest("fs1", paths[0])
	if err != nil || e.Version != 9 || !bytes.Equal(e.Content(), next) {
		t.Fatalf("post-restart put lost: %v v%d", err, e.Version)
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// TestRestartRespectsTruncateAndDrop: TruncateAfter and Drop tombstones hold
// across a restart — dropped versions stay dropped, their chunk files are
// reclaimable by GC, and nothing resurrects.
func TestRestartRespectsTruncateAndDrop(t *testing.T) {
	const C = extent.ChunkSize
	s, err := NewTiered(0, nil, TierConfig{Dir: t.TempDir(), MemoryBudget: 2 * C})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	content := make([]byte, C+123)
	var wantKeep [][]byte
	for v := 0; v < 6; v++ {
		rng.Read(content)
		kept := putBytes(t, s, "/t.bin", Version(v), uint64(v+1), content)
		if v < 3 {
			wantKeep = append(wantKeep, kept)
		}
		rng.Read(content)
		putBytes(t, s, "/d.bin", Version(v), uint64(v+1), content)
	}
	s.TruncateAfter("fs1", "/t.bin", 3) // keep v0..v2
	s.Drop("fs1", "/d.bin")

	// Crash-style restart: no clean Close, so the dead-blob sweep never ran
	// and the dropped versions' chunk files are still on disk. The catalog
	// tombstones are what keeps them from resurrecting; adoption marks them
	// dead again and GC reclaims them. (Crash releases the single-owner dir
	// lock the way a real process death does, without the Close-time sweep.)
	dir := s.TierDir()
	s.Crash()
	s2, err := NewTiered(0, nil, TierConfig{Dir: dir, MemoryBudget: 2 * C})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if got := len(s2.Versions("fs1", "/t.bin")); got != 3 {
		t.Fatalf("truncated file has %d versions after restart, want 3", got)
	}
	for v, want := range wantKeep {
		e, err := s2.Get("fs1", "/t.bin", Version(v))
		if err != nil || !bytes.Equal(e.Content(), want) {
			t.Fatalf("surviving v%d wrong after restart: %v", v, err)
		}
	}
	if vs := s2.Versions("fs1", "/d.bin"); len(vs) != 0 {
		t.Fatalf("dropped file resurrected with %d versions", len(vs))
	}
	if _, err := s2.Latest("fs1", "/d.bin"); err == nil {
		t.Fatal("dropped file served after restart")
	}
	// The dropped/truncated versions' blobs were adopted dead: GC reclaims
	// them, and yet another restart still serves the survivors.
	if freed := s2.GCNow(); freed == 0 {
		t.Fatal("GC found nothing to free after restart of a truncated archive")
	}
	s3 := reopen(t, s2, TierConfig{MemoryBudget: 2 * C})
	for v, want := range wantKeep {
		e, err := s3.Get("fs1", "/t.bin", Version(v))
		if err != nil || !bytes.Equal(e.Content(), want) {
			t.Fatalf("v%d wrong after GC + second restart: %v", v, err)
		}
	}
}

// TestRestartDropsVersionsWithMissingBlobs: if a chunk file referenced by the
// newest version is deleted behind the store's back, reopen quarantines that
// version (and would-be successors) instead of failing open or serving
// corrupt data — earlier versions keep working.
func TestRestartDropsVersionsWithMissingBlobs(t *testing.T) {
	const C = extent.ChunkSize
	dir := t.TempDir()
	// Loose layout (packs off): the test deletes a chunk FILE by its hash path.
	s, err := NewTiered(0, nil, TierConfig{Dir: dir, MemoryBudget: 2 * C, PackThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{1}, C+9)
	v0 := putBytes(t, s, "/f.bin", 0, 1, base)
	// v1 appends one unique chunk whose on-disk file we can locate by hash.
	unique := bytes.Repeat([]byte{2}, C)
	v1content := append(append([]byte(nil), base[:C]...), unique...)
	putBytes(t, s, "/f.bin", 1, 2, v1content)
	s.Close()

	sum := sha256.Sum256(unique)
	hx := hex.EncodeToString(sum[:])
	if err := os.Remove(filepath.Join(dir, hx[:2], hx[2:])); err != nil {
		t.Fatalf("removing the unique chunk file: %v", err)
	}

	s2, err := NewTiered(0, nil, TierConfig{Dir: dir, MemoryBudget: 2 * C, PackThreshold: -1})
	if err != nil {
		t.Fatalf("open with a missing blob must not fail: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.DroppedVersions != 1 || rec.Versions != 1 {
		t.Fatalf("recovery = %+v, want 1 dropped / 1 served", rec)
	}
	e, err := s2.Latest("fs1", "/f.bin")
	if err != nil || e.Version != 0 || !bytes.Equal(e.Content(), v0) {
		t.Fatalf("v0 must survive the corruption: %v (v%d)", err, e.Version)
	}
	if _, err := s2.Get("fs1", "/f.bin", 1); err == nil {
		t.Fatal("version with a missing blob still served")
	}
	// The drop is persisted: a further restart agrees without re-validating.
	s3 := reopen(t, s2, TierConfig{MemoryBudget: 2 * C, PackThreshold: -1})
	if got := len(s3.Versions("fs1", "/f.bin")); got != 1 {
		t.Fatalf("second restart sees %d versions, want 1", got)
	}
}

// TestCheckpointIntervalSweep: the delta-chain checkpoint interval is
// configurable; every setting must keep all versions byte-identical, both
// live and across a restart, while storing the expected manifest mix.
func TestCheckpointIntervalSweep(t *testing.T) {
	const C = extent.ChunkSize
	for _, every := range []int{1, 4, 64} {
		every := every
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			tier := TierConfig{MemoryBudget: 2 * C, CheckpointEvery: every}
			cfg := tier
			cfg.Dir = t.TempDir()
			s, err := NewTiered(0, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(every)))
			content := make([]byte, 4*C+55)
			rng.Read(content)
			var want [][]byte
			const versions = 12
			for v := 0; v < versions; v++ {
				rng.Read(content[C : C+100]) // single-chunk edit: delta-friendly
				want = append(want, putBytes(t, s, "/f.bin", Version(v), uint64(v+1), content))
			}

			// Count checkpoint manifests in the chain.
			k := key("fs1", "/f.bin")
			sh := s.shardFor(k)
			sh.mu.Lock()
			full := 0
			for _, rec := range sh.entries[k].recs {
				if rec.isFull {
					full++
				}
			}
			sh.mu.Unlock()
			switch {
			case every == 1 && full != versions:
				t.Fatalf("interval 1: %d/%d checkpoints, want all", full, versions)
			case every == 4 && (full < versions/4 || full == versions):
				t.Fatalf("interval 4: %d/%d checkpoints", full, versions)
			case every == 64 && full != 1:
				t.Fatalf("interval 64: %d checkpoints, want only v0", full)
			}

			check := func(s *Store, phase string) {
				t.Helper()
				for v := range want {
					e, err := s.Get("fs1", "/f.bin", Version(v))
					if err != nil || !bytes.Equal(e.Content(), want[v]) {
						t.Fatalf("%s: v%d diverged (%v)", phase, v, err)
					}
				}
			}
			check(s, "live")
			check(reopen(t, s, tier), "restarted")
		})
	}
}

// TestRestartWithCompression: a compressed tier round-trips history across a
// restart, with physical disk bytes below logical for compressible content.
func TestRestartWithCompression(t *testing.T) {
	const C = extent.ChunkSize
	tier := TierConfig{MemoryBudget: 2 * C, Compress: true}
	cfg := tier
	cfg.Dir = t.TempDir()
	s, err := NewTiered(0, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Highly compressible multi-chunk content.
	var want [][]byte
	for v := 0; v < 5; v++ {
		content := bytes.Repeat([]byte{byte('a' + v)}, 3*C+999)
		want = append(want, putBytes(t, s, "/z.bin", Version(v), uint64(v+1), content))
	}
	st := s.Tier()
	if st.DiskBytes >= st.DiskLogicalBytes {
		t.Fatalf("compression saved nothing: %d physical vs %d logical", st.DiskBytes, st.DiskLogicalBytes)
	}
	s2 := reopen(t, s, tier)
	for v := range want {
		e, err := s2.Get("fs1", "/z.bin", Version(v))
		if err != nil || !bytes.Equal(e.Content(), want[v]) {
			t.Fatalf("compressed v%d diverged after restart (%v)", v, err)
		}
	}
	if d := s2.Dedup(); d.NewBytes != 0 {
		t.Fatalf("compressed reopen re-archived %d bytes", d.NewBytes)
	}
}

// TestRestartServesPackfileBackedHistory: the E16 recipe against a
// packfile-backed dir, including a deliberately TORN pack tail. All blobs sit
// in packfiles (small threshold target forces several packs); the process
// "crashes" (no clean close), garbage is appended to the newest pack as a
// torn half-record, and the reopened store must serve every version
// byte-identically with zero re-archiving — the torn suffix quarantined.
func TestRestartServesPackfileBackedHistory(t *testing.T) {
	const C = extent.ChunkSize
	dir := t.TempDir()
	tier := TierConfig{MemoryBudget: 2 * C, PackTargetBytes: 4 * C, Fsync: fsyncer.PolicyGroup}
	cfg := tier
	cfg.Dir = dir
	s, err := NewTiered(0, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	content := make([]byte, 2*C+333)
	rng.Read(content)
	var want [][]byte
	for v := 0; v < 8; v++ {
		rng.Read(content[C : C+700]) // single-chunk edits: pack-resident deltas
		want = append(want, putBytes(t, s, "/p.bin", Version(v), uint64(v+1), content))
	}
	if st := s.Tier(); st.PackAppends == 0 || st.PackFiles < 2 {
		t.Fatalf("workload not packfile-backed: %+v", st)
	}
	if ch, ca := s.Fsyncs(); ch == 0 || ca == 0 {
		t.Fatalf("group policy issued no fsyncs (chunk=%d catalog=%d)", ch, ca)
	}
	s.Crash()

	// Tear the newest pack: a crash mid-append leaves a half-written record.
	packs, err := filepath.Glob(filepath.Join(dir, "pack-*.pk"))
	if err != nil || len(packs) == 0 {
		t.Fatalf("no packfiles on disk: %v %v", packs, err)
	}
	sort.Strings(packs)
	newest := packs[len(packs)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte("\x40\x00\x00\x00half-written pack record interrupted by power loss")
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewTiered(0, nil, cfg)
	if err != nil {
		t.Fatalf("reopen over torn pack: %v", err)
	}
	defer s2.Close()
	if got := s2.Tier().PackTornBytes; got != int64(len(torn)) {
		t.Fatalf("torn pack bytes = %d, want %d", got, len(torn))
	}
	if _, err := os.Stat(newest + ".torn"); err != nil {
		t.Fatalf("torn pack tail not quarantined: %v", err)
	}
	if rec := s2.Recovery(); rec.Versions != len(want) || rec.DroppedVersions != 0 {
		t.Fatalf("recovery = %+v, want %d versions, none dropped", rec, len(want))
	}
	for v := range want {
		e, err := s2.Get("fs1", "/p.bin", Version(v))
		if err != nil || !bytes.Equal(e.Content(), want[v]) {
			t.Fatalf("v%d diverged across the torn-pack restart (%v)", v, err)
		}
	}
	if d := s2.Dedup(); d.NewBytes != 0 {
		t.Fatalf("torn-pack reopen re-archived %d bytes", d.NewBytes)
	}
	if st := s2.Tier(); st.Spills != 0 {
		t.Fatalf("torn-pack reopen spilled %d blobs", st.Spills)
	}
}

// TestArchiveDirSingleOwner: a second NewTiered over a live archive dir fails
// fast (the ROADMAP lockfile item) and Close releases the lock.
func TestArchiveDirSingleOwner(t *testing.T) {
	dir := t.TempDir()
	s, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTiered(0, nil, TierConfig{Dir: dir}); err == nil {
		t.Fatal("second NewTiered over a live archive dir succeeded")
	}
	s.Close()
	s2, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open after Close: %v", err)
	}
	s2.Close()
}
