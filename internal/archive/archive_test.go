package archive

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"datalinks/internal/extent"
)

func TestPutGetLatest(t *testing.T) {
	s := New(0, nil)
	if err := s.Put("fs1", "/a", 0, 10, []byte("v0")); err != nil {
		t.Fatalf("put v0: %v", err)
	}
	if err := s.Put("fs1", "/a", 1, 20, []byte("v1")); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	e, err := s.Get("fs1", "/a", 0)
	if err != nil || string(e.Content()) != "v0" {
		t.Fatalf("get v0 = %q, %v", e.Content(), err)
	}
	latest, err := s.Latest("fs1", "/a")
	if err != nil || latest.Version != 1 || string(latest.Content()) != "v1" {
		t.Fatalf("latest = %+v, %v", latest, err)
	}
}

func TestVersionsMustIncrease(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 1, 10, []byte("v1"))
	if err := s.Put("fs1", "/a", 1, 20, []byte("dup")); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if err := s.Put("fs1", "/a", 0, 20, []byte("old")); err == nil {
		t.Fatal("out-of-order version accepted")
	}
}

func TestContentIsCopied(t *testing.T) {
	s := New(0, nil)
	buf := []byte("original")
	s.Put("fs1", "/a", 0, 1, buf)
	buf[0] = 'X'
	e, _ := s.Get("fs1", "/a", 0)
	if string(e.Content()) != "original" {
		t.Fatalf("stored content aliased caller buffer: %q", e.Content())
	}
}

func TestAsOfSelectsByStateID(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 10, []byte("v0"))
	s.Put("fs1", "/a", 1, 20, []byte("v1"))
	s.Put("fs1", "/a", 2, 30, []byte("v2"))

	cases := []struct {
		state uint64
		want  string
	}{
		{10, "v0"}, {15, "v0"}, {20, "v1"}, {29, "v1"}, {30, "v2"}, {99, "v2"},
	}
	for _, c := range cases {
		e, err := s.AsOf("fs1", "/a", c.state)
		if err != nil || string(e.Content()) != c.want {
			t.Errorf("AsOf(%d) = %q, %v; want %q", c.state, e.Content(), err, c.want)
		}
	}
	if _, err := s.AsOf("fs1", "/a", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("AsOf before first version = %v", err)
	}
}

func TestTruncateAfter(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 10, []byte("v0"))
	s.Put("fs1", "/a", 1, 20, []byte("v1"))
	s.Put("fs1", "/a", 2, 30, []byte("v2"))
	s.TruncateAfter("fs1", "/a", 20)
	vs := s.Versions("fs1", "/a")
	if len(vs) != 2 || vs[1].Version != 1 {
		t.Fatalf("after truncate: %+v", vs)
	}
	// New versions can be appended after a truncate.
	if err := s.Put("fs1", "/a", 2, 40, []byte("v2b")); err != nil {
		t.Fatalf("re-put after truncate: %v", err)
	}
}

func TestServerNamespaceIsolation(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("one"))
	s.Put("fs2", "/a", 0, 1, []byte("two"))
	e1, _ := s.Latest("fs1", "/a")
	e2, _ := s.Latest("fs2", "/a")
	if string(e1.Content()) != "one" || string(e2.Content()) != "two" {
		t.Fatalf("cross-server contamination: %q, %q", e1.Content(), e2.Content())
	}
	files := s.Files("fs1")
	if len(files) != 1 || files[0] != "/a" {
		t.Fatalf("files(fs1) = %v", files)
	}
}

func TestDrop(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("x"))
	s.Drop("fs1", "/a")
	if _, err := s.Latest("fs1", "/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped file still present: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := New(4*time.Millisecond, nil)
	start := time.Now()
	s.Put("fs1", "/a", 0, 1, []byte("x"))
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("put latency not injected: %v", d)
	}
	s.SetLatency(0)
	start = time.Now()
	s.Latest("fs1", "/a")
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("latency not cleared: %v", d)
	}
}

func TestStats(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("abcd"))
	s.Latest("fs1", "/a")
	puts, restores, bytes := s.Stats()
	if puts != 1 || restores != 1 || bytes != 4 {
		t.Fatalf("stats = %d, %d, %d", puts, restores, bytes)
	}
}

// TestDedupSharesChunks: archiving mostly-identical versions stores only
// the changed chunks — resident bytes grow by the delta, not the file size.
func TestDedupSharesChunks(t *testing.T) {
	s := New(0, nil)
	const chunks = 16
	content := make([]byte, chunks*extent.ChunkSize)
	for i := range content {
		content[i] = byte(i % 251)
	}
	buf := extent.NewBuffer()
	buf.SetBytes(content)

	snap := buf.Snapshot()
	st, err := s.PutSnapshot("fs1", "/big", 0, 1, snap)
	snap.Release()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewChunks != chunks || st.SharedChunks != 0 {
		t.Fatalf("v0 put: %+v", st)
	}
	base := s.Dedup().ResidentBytes

	// Ten one-chunk edits, each archived as a full version.
	for v := 1; v <= 10; v++ {
		buf.WriteAt(int64(v%chunks)*extent.ChunkSize+7, []byte{byte(v)})
		snap := buf.Snapshot()
		st, err := s.PutSnapshot("fs1", "/big", Version(v), uint64(v+1), snap)
		snap.Release()
		if err != nil {
			t.Fatal(err)
		}
		if st.NewChunks != 1 || st.SharedChunks != chunks-1 {
			t.Fatalf("v%d put: %+v", v, st)
		}
	}
	d := s.Dedup()
	grown := d.ResidentBytes - base
	if grown != 10*extent.ChunkSize {
		t.Fatalf("resident grew %d; want %d (one chunk per version)", grown, 10*extent.ChunkSize)
	}
	if d.LogicalBytes != 11*int64(len(content)) {
		t.Fatalf("logical bytes = %d", d.LogicalBytes)
	}
	// Restored content matches the version exactly.
	e, err := s.Get("fs1", "/big", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), content...)
	for v := 1; v <= 3; v++ {
		want[(v%chunks)*extent.ChunkSize+7] = byte(v)
	}
	if !bytes.Equal(e.Content(), want) {
		t.Fatal("restored v3 content mismatch")
	}
	// Dropping the file releases every resident chunk.
	s.Drop("fs1", "/big")
	if r := s.Dedup().ResidentBytes; r != 0 {
		t.Fatalf("resident after drop = %d", r)
	}
}

// TestStalePutIsTyped: recovery relies on re-archiving an existing version
// being distinguishable (a crashed archiver may have completed it already).
func TestStalePutIsTyped(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 1, 10, []byte("v1"))
	if err := s.Put("fs1", "/a", 1, 20, []byte("dup")); !errors.Is(err, ErrStale) {
		t.Fatalf("dup put error = %v; want ErrStale", err)
	}
}

// TestPutLatencyChargedPerNewChunk: a fully deduplicated Put pays one device
// round trip; a Put with new chunks pays per chunk. The chunk counts are
// asserted deterministically; the wall-clock checks are lower bounds only
// (upper bounds flake on loaded runners).
func TestPutLatencyChargedPerNewChunk(t *testing.T) {
	s := New(2*time.Millisecond, nil)
	content := make([]byte, 4*extent.ChunkSize)
	for i := range content {
		content[i] = byte(i % 251) // 251 ∤ ChunkSize: every chunk is distinct
	}
	snap := extent.FromBytes(content)
	defer snap.Release()
	start := time.Now()
	st, err := s.PutSnapshot("fs1", "/f", 0, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewChunks != 4 || st.SharedChunks != 0 {
		t.Fatalf("v0 stats = %+v; want 4 new chunks", st)
	}
	if d := time.Since(start); d < 8*time.Millisecond {
		t.Fatalf("4 new chunks took %v; want >= 8ms (2ms per chunk)", d)
	}
	// Identical content again (new version): all chunks dedup, one trip.
	start = time.Now()
	st, err = s.PutSnapshot("fs1", "/f", 1, 2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewChunks != 0 || st.SharedChunks != 4 {
		t.Fatalf("v1 stats = %+v; want all 4 chunks deduplicated", st)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("deduplicated put took %v; want >= one 2ms round trip", d)
	}
}

// TestStalePutLeavesAccountingIntact: a rejected (stale) Put must unwind its
// interning exactly — resident bytes stay what the accepted versions hold,
// and handed-out entries keep reading valid content after Drop.
func TestStalePutLeavesAccountingIntact(t *testing.T) {
	s := New(0, nil)
	content := make([]byte, 2*extent.ChunkSize+100)
	for i := range content {
		content[i] = byte(i % 251)
	}
	if err := s.Put("fs1", "/f", 1, 10, content); err != nil {
		t.Fatal(err)
	}
	resident := s.Dedup().ResidentBytes
	if resident != 2*extent.ChunkSize+100 {
		t.Fatalf("resident = %d", resident)
	}
	// Stale re-put of v1 with different content: rejected, no accounting drift.
	other := bytes.Repeat([]byte{9}, len(content))
	if err := s.Put("fs1", "/f", 1, 20, other); !errors.Is(err, ErrStale) {
		t.Fatalf("stale put error = %v", err)
	}
	if got := s.Dedup().ResidentBytes; got != resident {
		t.Fatalf("resident after stale put = %d, want %d", got, resident)
	}
	// A snapshot materialized before the drop stays readable after it (the
	// retained chunks outlive the store's release); the entry handle itself
	// reports the version as discarded rather than serving reclaimed bytes.
	e, err := s.Latest("fs1", "/f")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Drop("fs1", "/f")
	if got := s.Dedup().ResidentBytes; got != 0 {
		t.Fatalf("resident after drop = %d", got)
	}
	if !bytes.Equal(snap.Bytes(), content) {
		t.Fatal("pre-drop snapshot corrupted by drop")
	}
	snap.Release()
	if e.Content() != nil {
		t.Fatal("entry content served after its version was discarded")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot() of a discarded version must fail")
	}
}

// Property: AsOf always returns the newest version with StateID <= s, for
// any increasing (version, stateID) chain.
func TestAsOfProperty(t *testing.T) {
	prop := func(deltas []uint8, probe uint16) bool {
		if len(deltas) == 0 {
			return true
		}
		if len(deltas) > 20 {
			deltas = deltas[:20]
		}
		s := New(0, nil)
		state := uint64(0)
		var states []uint64
		for i, d := range deltas {
			state += uint64(d%50) + 1
			states = append(states, state)
			if err := s.Put("fs1", "/p", Version(i), state, []byte{byte(i)}); err != nil {
				return false
			}
		}
		q := uint64(probe)
		e, err := s.AsOf("fs1", "/p", q)
		// Expected: newest index with states[i] <= q.
		want := -1
		for i, st := range states {
			if st <= q {
				want = i
			}
		}
		if want < 0 {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && e.Version == Version(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
