package archive

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGetLatest(t *testing.T) {
	s := New(0, nil)
	if err := s.Put("fs1", "/a", 0, 10, []byte("v0")); err != nil {
		t.Fatalf("put v0: %v", err)
	}
	if err := s.Put("fs1", "/a", 1, 20, []byte("v1")); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	e, err := s.Get("fs1", "/a", 0)
	if err != nil || string(e.Content) != "v0" {
		t.Fatalf("get v0 = %q, %v", e.Content, err)
	}
	latest, err := s.Latest("fs1", "/a")
	if err != nil || latest.Version != 1 || string(latest.Content) != "v1" {
		t.Fatalf("latest = %+v, %v", latest, err)
	}
}

func TestVersionsMustIncrease(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 1, 10, []byte("v1"))
	if err := s.Put("fs1", "/a", 1, 20, []byte("dup")); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if err := s.Put("fs1", "/a", 0, 20, []byte("old")); err == nil {
		t.Fatal("out-of-order version accepted")
	}
}

func TestContentIsCopied(t *testing.T) {
	s := New(0, nil)
	buf := []byte("original")
	s.Put("fs1", "/a", 0, 1, buf)
	buf[0] = 'X'
	e, _ := s.Get("fs1", "/a", 0)
	if string(e.Content) != "original" {
		t.Fatalf("stored content aliased caller buffer: %q", e.Content)
	}
}

func TestAsOfSelectsByStateID(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 10, []byte("v0"))
	s.Put("fs1", "/a", 1, 20, []byte("v1"))
	s.Put("fs1", "/a", 2, 30, []byte("v2"))

	cases := []struct {
		state uint64
		want  string
	}{
		{10, "v0"}, {15, "v0"}, {20, "v1"}, {29, "v1"}, {30, "v2"}, {99, "v2"},
	}
	for _, c := range cases {
		e, err := s.AsOf("fs1", "/a", c.state)
		if err != nil || string(e.Content) != c.want {
			t.Errorf("AsOf(%d) = %q, %v; want %q", c.state, e.Content, err, c.want)
		}
	}
	if _, err := s.AsOf("fs1", "/a", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("AsOf before first version = %v", err)
	}
}

func TestTruncateAfter(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 10, []byte("v0"))
	s.Put("fs1", "/a", 1, 20, []byte("v1"))
	s.Put("fs1", "/a", 2, 30, []byte("v2"))
	s.TruncateAfter("fs1", "/a", 20)
	vs := s.Versions("fs1", "/a")
	if len(vs) != 2 || vs[1].Version != 1 {
		t.Fatalf("after truncate: %+v", vs)
	}
	// New versions can be appended after a truncate.
	if err := s.Put("fs1", "/a", 2, 40, []byte("v2b")); err != nil {
		t.Fatalf("re-put after truncate: %v", err)
	}
}

func TestServerNamespaceIsolation(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("one"))
	s.Put("fs2", "/a", 0, 1, []byte("two"))
	e1, _ := s.Latest("fs1", "/a")
	e2, _ := s.Latest("fs2", "/a")
	if string(e1.Content) != "one" || string(e2.Content) != "two" {
		t.Fatalf("cross-server contamination: %q, %q", e1.Content, e2.Content)
	}
	files := s.Files("fs1")
	if len(files) != 1 || files[0] != "/a" {
		t.Fatalf("files(fs1) = %v", files)
	}
}

func TestDrop(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("x"))
	s.Drop("fs1", "/a")
	if _, err := s.Latest("fs1", "/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped file still present: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := New(4*time.Millisecond, nil)
	start := time.Now()
	s.Put("fs1", "/a", 0, 1, []byte("x"))
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("put latency not injected: %v", d)
	}
	s.SetLatency(0)
	start = time.Now()
	s.Latest("fs1", "/a")
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("latency not cleared: %v", d)
	}
}

func TestStats(t *testing.T) {
	s := New(0, nil)
	s.Put("fs1", "/a", 0, 1, []byte("abcd"))
	s.Latest("fs1", "/a")
	puts, restores, bytes := s.Stats()
	if puts != 1 || restores != 1 || bytes != 4 {
		t.Fatalf("stats = %d, %d, %d", puts, restores, bytes)
	}
}

// Property: AsOf always returns the newest version with StateID <= s, for
// any increasing (version, stateID) chain.
func TestAsOfProperty(t *testing.T) {
	prop := func(deltas []uint8, probe uint16) bool {
		if len(deltas) == 0 {
			return true
		}
		if len(deltas) > 20 {
			deltas = deltas[:20]
		}
		s := New(0, nil)
		state := uint64(0)
		var states []uint64
		for i, d := range deltas {
			state += uint64(d%50) + 1
			states = append(states, state)
			if err := s.Put("fs1", "/p", Version(i), state, []byte{byte(i)}); err != nil {
				return false
			}
		}
		q := uint64(probe)
		e, err := s.AsOf("fs1", "/p", q)
		// Expected: newest index with states[i] <= q.
		want := -1
		for i, st := range states {
			if st <= q {
				want = i
			}
		}
		if want < 0 {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && e.Version == Version(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
