package archive

// Shard handoff: export a file's version history as delta manifests and
// replay it into another store, moving chunk bytes by content hash. The
// destination deduplicates against everything it already holds — blobs it has
// (live, or dead-but-unswept on disk) never travel — so migrating a file
// whose history the destination mostly shares costs O(changed chunks), the
// same property PutSnapshot gives the commit path. This is what makes live
// shard migration affordable: the manifests are tiny, and only genuinely new
// bytes cross between archive devices.

import (
	"errors"
	"fmt"
	"time"

	"datalinks/internal/catalog"
	"datalinks/internal/extent"
)

// ErrChainGap reports a delta export or import whose base version does not
// line up with the history on this store — the history was truncated,
// restored, or never archived here. The caller falls back to a full resync
// (Drop + ExportHistory/ImportHistory).
var ErrChainGap = errors.New("archive: history chain gap")

// HistoryMod is one changed slot of an exported delta manifest.
type HistoryMod struct {
	Idx  int32
	Hash extent.Hash
}

// HistoryRec is one version of an exported history: exactly the manifest the
// store persists, so import replays it with the same chain semantics as a
// catalog replay. Recs are ordered oldest-first and deltas chain through
// their predecessors, so a history must be imported whole.
type HistoryRec struct {
	Version        int64
	StateID        uint64
	Size           int64
	StoredUnixNano int64
	NChunks        int
	TailLen        int
	TailHash       extent.Hash
	IsFull         bool
	Full           []extent.Hash
	Mods           []HistoryMod
}

// ImportStats reports what one ImportHistory physically did.
type ImportStats struct {
	Versions      int
	MovedChunks   int   // blobs fetched from the source and stored
	MovedBytes    int64 // bytes that crossed between the stores
	DedupedChunks int   // blobs the destination already held (zero transfer)
	DedupedBytes  int64
}

// exportRec copies version index i of fv as a portable record. Caller holds
// the entry shard lock.
func exportRec(fv *fileVersions, i int) HistoryRec {
	rec := fv.recs[i]
	e := fv.entries[i]
	hr := HistoryRec{
		Version:        int64(e.Version),
		StateID:        e.StateID,
		Size:           e.Size,
		StoredUnixNano: e.Stored.UnixNano(),
		NChunks:        rec.nchunks,
		TailLen:        rec.tailLen,
		TailHash:       rec.tail,
		IsFull:         rec.isFull,
	}
	if rec.isFull {
		hr.Full = append([]extent.Hash(nil), rec.full...)
	} else {
		hr.Mods = make([]HistoryMod, len(rec.mods))
		for j, m := range rec.mods {
			hr.Mods[j] = HistoryMod{Idx: m.idx, Hash: m.hash}
		}
	}
	return hr
}

// ExportHistory snapshots the version history of one file as portable
// manifest records. The slices are fresh copies — the caller may hold them
// across arbitrary later mutation of this store.
func (s *Store) ExportHistory(server, path string) []HistoryRec {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fv := sh.entries[k]
	if fv == nil {
		return nil
	}
	out := make([]HistoryRec, len(fv.recs))
	for i := range fv.recs {
		out[i] = exportRec(fv, i)
	}
	return out
}

// ExportDelta snapshots the tail of a history: every version strictly after
// base, ordered oldest-first. The first returned record chains off version
// base, so a store whose last version is base appends the result with
// ImportDelta — the O(changed chunks) transfer the replication stream uses
// to catch a lagging replica up. An empty slice means the history ends at
// base (nothing to ship). ErrChainGap reports that base is not present in
// this history; the caller falls back to a full resync.
func (s *Store) ExportDelta(server, path string, base int64) ([]HistoryRec, error) {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fv := sh.entries[k]
	if fv == nil || len(fv.entries) == 0 {
		return nil, fmt.Errorf("%w: export of %s after version %d: no history", ErrChainGap, path, base)
	}
	idx := -1
	for i := range fv.entries {
		if int64(fv.entries[i].Version) == base {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: export of %s: version %d not in history (have %d..%d)",
			ErrChainGap, path, base, fv.entries[0].Version, fv.entries[len(fv.entries)-1].Version)
	}
	out := make([]HistoryRec, 0, len(fv.recs)-idx-1)
	for i := idx + 1; i < len(fv.recs); i++ {
		out = append(out, exportRec(fv, i))
	}
	return out, nil
}

// FetchBlob returns the bytes of one content hash (paging in from the disk
// tier if cold). The caller owns the returned chunk and must ReleaseChunk it.
// This is the source side of a migration: the destination's ImportHistory
// calls it for exactly the hashes it does not already hold.
func (s *Store) FetchBlob(h extent.Hash) (*extent.Chunk, error) {
	return s.disk.Get(h)
}

// ImportHistory replays an exported history into this store. fetch is called
// once per blob hash this store does not already hold (memory, disk, or
// dead-but-unswept on disk — all deduplicate to zero transfer). The import is
// all-or-nothing: on any error no version becomes visible and every pinned
// reference is released. The destination must not already hold a history for
// (server, path) — migration owns the path exclusively while it runs.
func (s *Store) ImportHistory(server, path string, recs []HistoryRec, fetch func(extent.Hash) (*extent.Chunk, error)) (ImportStats, error) {
	var st ImportStats
	if len(recs) == 0 {
		return st, nil
	}
	k := key(server, path)

	// Build the whole fileVersions aside, pinning blob references and moving
	// bytes as needed — the same walk as a catalog replay, except a missing
	// blob is fetched from the source instead of ending the history.
	fv := &fileVersions{gen: genCounter.Add(1)}
	var pinned []extent.Hash // every addRef taken, for unwind
	fail := func(err error) (ImportStats, error) {
		for _, h := range pinned {
			s.releaseRef(h)
		}
		return ImportStats{}, err
	}
	ensure := func(h extent.Hash, logical int64) error {
		return s.ensureBlob(h, logical, path, fetch, &st, &pinned)
	}

	var full []extent.Hash
	for i, hr := range recs {
		rec := &verRec{
			isFull:  hr.IsFull,
			nchunks: hr.NChunks,
			tail:    hr.TailHash,
			tailLen: hr.TailLen,
		}
		if hr.IsFull {
			rec.full = append([]extent.Hash(nil), hr.Full...)
		} else {
			rec.mods = make([]chunkMod, len(hr.Mods))
			for j, m := range hr.Mods {
				rec.mods[j] = chunkMod{idx: m.Idx, hash: m.Hash}
			}
		}
		full = applyRec(full, rec)
		for _, h := range full {
			if err := ensure(h, extent.ChunkSize); err != nil {
				return fail(err)
			}
		}
		if rec.tailLen > 0 {
			if err := ensure(rec.tail, int64(rec.tailLen)); err != nil {
				return fail(err)
			}
		}
		fv.recs = append(fv.recs, rec)
		fv.entries = append(fv.entries, Entry{
			Server:  server,
			Path:    path,
			Version: Version(hr.Version),
			StateID: hr.StateID,
			Size:    hr.Size,
			Stored:  time.Unix(0, hr.StoredUnixNano),
			st:      s,
			key:     k,
			idx:     i,
			gen:     fv.gen,
		})
		fv.last = full
	}
	st.Versions = len(recs)

	sh := s.shardFor(k)
	sh.mu.Lock()
	if existing := sh.entries[k]; existing != nil {
		sh.mu.Unlock()
		return fail(fmt.Errorf("%w: import of %s: history already present", ErrStale, path))
	}
	if s.cat != nil {
		// Log every version before it becomes visible, like PutSnapshot. On a
		// partial failure, tombstone whatever was appended so a restart cannot
		// resurrect a half-imported history.
		for i, hr := range recs {
			rec := fv.recs[i]
			pr := &catalog.PutRec{
				Key:            k,
				Version:        hr.Version,
				StateID:        hr.StateID,
				Size:           hr.Size,
				StoredUnixNano: hr.StoredUnixNano,
				NChunks:        rec.nchunks,
				TailLen:        rec.tailLen,
				TailHash:       rec.tail,
				IsFull:         rec.isFull,
				Full:           rec.full,
				Mods:           modsForCatalog(rec.mods),
			}
			if err := s.cat.AppendPut(pr); err != nil {
				if i > 0 {
					_ = s.cat.AppendDrop(k)
				}
				sh.mu.Unlock()
				return fail(fmt.Errorf("archive: import catalog %s: %w", path, err))
			}
		}
	}
	sh.entries[k] = fv
	sh.mu.Unlock()
	if s.cat != nil {
		_ = s.cat.CompactIfDue()
	}
	// Same commit durability barrier as PutSnapshot: blobs before manifests.
	if err := s.disk.Sync(); err != nil {
		return st, err
	}
	if s.cat != nil {
		if err := s.cat.Sync(); err != nil {
			return st, fmt.Errorf("archive: import catalog %s: %w", path, err)
		}
	}
	s.logicalBytes.Add(sumSizes(recs))
	s.newBytes.Add(st.MovedBytes)
	s.dedupedBytes.Add(st.DedupedBytes)
	// Device transfer: only moved blobs travel.
	s.sleep(int64(st.MovedChunks))
	return st, nil
}

// ensureBlob pins one reference on h and, the first time h is fresh to the
// refcount table, makes sure its bytes are on this store's device — reviving
// a dead-but-unswept disk blob in place, or fetching from the source
// otherwise. logical is the slot's logical size, charged to the dedup
// counters when no transfer happens. Every pin is appended to *pinned so the
// caller can unwind symmetrically.
func (s *Store) ensureBlob(h extent.Hash, logical int64, path string, fetch func(extent.Hash) (*extent.Chunk, error), st *ImportStats, pinned *[]extent.Hash) error {
	fresh := s.addRef(h)
	*pinned = append(*pinned, h)
	if !fresh {
		st.DedupedChunks++
		st.DedupedBytes += logical
		return nil
	}
	if s.disk.Has(h) {
		// Dead-but-unswept (or adopted-orphan) blob: revive in place.
		s.disk.Claim(h)
		st.DedupedChunks++
		st.DedupedBytes += logical
		return nil
	}
	c, err := fetch(h)
	if err != nil {
		return fmt.Errorf("archive: import fetch %s: %w", path, err)
	}
	n := int64(len(c.Data()))
	_, err = s.disk.Put(h, c)
	c.ReleaseChunk()
	if err != nil {
		return fmt.Errorf("archive: import store %s: %w", path, err)
	}
	st.MovedChunks++
	st.MovedBytes += n
	return nil
}

// ImportDelta appends exported tail records onto a history this store
// already holds — the replica side of a ship frame or a catch-up transfer.
// Records at or below the local last version are skipped, so a re-shipped
// frame whose ack was lost lands as a no-op; the first genuinely new record
// must be the direct successor of the local last version, anything else is
// ErrChainGap and the caller resyncs from scratch. Blob movement and
// deduplication follow ImportHistory: fetch runs only for hashes this store
// does not hold. Versions become visible one at a time, each logged to the
// durable catalog before it is served, with the same blobs-before-manifests
// durability barrier as PutSnapshot at the end.
func (s *Store) ImportDelta(server, path string, recs []HistoryRec, fetch func(extent.Hash) (*extent.Chunk, error)) (ImportStats, error) {
	var st ImportStats
	k := key(server, path)
	sh := s.shardFor(k)

	sh.mu.Lock()
	fv := sh.entries[k]
	if fv == nil || len(fv.entries) == 0 {
		sh.mu.Unlock()
		return st, fmt.Errorf("%w: delta into %s: no base history", ErrChainGap, path)
	}
	last := int64(fv.entries[len(fv.entries)-1].Version)
	gen := fv.gen
	full := append([]extent.Hash(nil), fv.last...)
	sh.mu.Unlock()

	for len(recs) > 0 && recs[0].Version <= last {
		recs = recs[1:]
	}
	if len(recs) == 0 {
		return st, nil
	}
	if recs[0].Version != last+1 {
		return st, fmt.Errorf("%w: delta into %s: have version %d, tail starts at %d",
			ErrChainGap, path, last, recs[0].Version)
	}

	// Build the tail aside, pinning blob references per record so a partial
	// failure can release exactly the uncommitted records' pins.
	var pinned []extent.Hash
	fail := func(err error) (ImportStats, error) {
		for _, h := range pinned {
			s.releaseRef(h)
		}
		return ImportStats{}, err
	}
	newRecs := make([]*verRec, len(recs))
	fulls := make([][]extent.Hash, len(recs))
	pinStart := make([]int, len(recs)+1)
	for i, hr := range recs {
		if hr.Version != last+1+int64(i) {
			return fail(fmt.Errorf("%w: delta into %s: tail not contiguous at version %d", ErrChainGap, path, hr.Version))
		}
		pinStart[i] = len(pinned)
		rec := &verRec{
			isFull:  hr.IsFull,
			nchunks: hr.NChunks,
			tail:    hr.TailHash,
			tailLen: hr.TailLen,
		}
		if hr.IsFull {
			rec.full = append([]extent.Hash(nil), hr.Full...)
		} else {
			rec.mods = make([]chunkMod, len(hr.Mods))
			for j, m := range hr.Mods {
				rec.mods[j] = chunkMod{idx: m.Idx, hash: m.Hash}
			}
		}
		full = applyRec(full, rec)
		for _, h := range full {
			if err := s.ensureBlob(h, extent.ChunkSize, path, fetch, &st, &pinned); err != nil {
				return fail(err)
			}
		}
		if rec.tailLen > 0 {
			if err := s.ensureBlob(rec.tail, int64(rec.tailLen), path, fetch, &st, &pinned); err != nil {
				return fail(err)
			}
		}
		newRecs[i] = rec
		fulls[i] = append([]extent.Hash(nil), full...)
	}
	pinStart[len(recs)] = len(pinned)

	sh.mu.Lock()
	cur := sh.entries[k]
	if cur != fv || cur.gen != gen || int64(cur.entries[len(cur.entries)-1].Version) != last {
		sh.mu.Unlock()
		return fail(fmt.Errorf("%w: delta into %s: history changed during import", ErrStale, path))
	}
	for i, hr := range recs {
		rec := newRecs[i]
		if s.cat != nil {
			pr := &catalog.PutRec{
				Key:            k,
				Version:        hr.Version,
				StateID:        hr.StateID,
				Size:           hr.Size,
				StoredUnixNano: hr.StoredUnixNano,
				NChunks:        rec.nchunks,
				TailLen:        rec.tailLen,
				TailHash:       rec.tail,
				IsFull:         rec.isFull,
				Full:           rec.full,
				Mods:           modsForCatalog(rec.mods),
			}
			if err := s.cat.AppendPut(pr); err != nil {
				// Records [0,i) are logged and visible — keep them. Release
				// only the pins belonging to the records that did not land.
				sh.mu.Unlock()
				for _, h := range pinned[pinStart[i]:] {
					s.releaseRef(h)
				}
				st.Versions = i
				return st, fmt.Errorf("archive: delta catalog %s: %w", path, err)
			}
		}
		fv.recs = append(fv.recs, rec)
		fv.entries = append(fv.entries, Entry{
			Server:  server,
			Path:    path,
			Version: Version(hr.Version),
			StateID: hr.StateID,
			Size:    hr.Size,
			Stored:  time.Unix(0, hr.StoredUnixNano),
			st:      s,
			key:     k,
			idx:     len(fv.entries),
			gen:     fv.gen,
		})
		fv.last = fulls[i]
		st.Versions++
	}
	sh.mu.Unlock()
	if s.cat != nil {
		_ = s.cat.CompactIfDue()
	}
	// Same commit durability barrier as PutSnapshot: blobs before manifests.
	if err := s.disk.Sync(); err != nil {
		return st, err
	}
	if s.cat != nil {
		if err := s.cat.Sync(); err != nil {
			return st, fmt.Errorf("archive: delta catalog %s: %w", path, err)
		}
	}
	s.logicalBytes.Add(sumSizes(recs))
	s.newBytes.Add(st.MovedBytes)
	s.dedupedBytes.Add(st.DedupedBytes)
	s.sleep(int64(st.MovedChunks))
	return st, nil
}

func sumSizes(recs []HistoryRec) int64 {
	var n int64
	for _, r := range recs {
		n += r.Size
	}
	return n
}
