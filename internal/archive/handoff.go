package archive

// Shard handoff: export a file's version history as delta manifests and
// replay it into another store, moving chunk bytes by content hash. The
// destination deduplicates against everything it already holds — blobs it has
// (live, or dead-but-unswept on disk) never travel — so migrating a file
// whose history the destination mostly shares costs O(changed chunks), the
// same property PutSnapshot gives the commit path. This is what makes live
// shard migration affordable: the manifests are tiny, and only genuinely new
// bytes cross between archive devices.

import (
	"fmt"
	"time"

	"datalinks/internal/catalog"
	"datalinks/internal/extent"
)

// HistoryMod is one changed slot of an exported delta manifest.
type HistoryMod struct {
	Idx  int32
	Hash extent.Hash
}

// HistoryRec is one version of an exported history: exactly the manifest the
// store persists, so import replays it with the same chain semantics as a
// catalog replay. Recs are ordered oldest-first and deltas chain through
// their predecessors, so a history must be imported whole.
type HistoryRec struct {
	Version        int64
	StateID        uint64
	Size           int64
	StoredUnixNano int64
	NChunks        int
	TailLen        int
	TailHash       extent.Hash
	IsFull         bool
	Full           []extent.Hash
	Mods           []HistoryMod
}

// ImportStats reports what one ImportHistory physically did.
type ImportStats struct {
	Versions      int
	MovedChunks   int   // blobs fetched from the source and stored
	MovedBytes    int64 // bytes that crossed between the stores
	DedupedChunks int   // blobs the destination already held (zero transfer)
	DedupedBytes  int64
}

// ExportHistory snapshots the version history of one file as portable
// manifest records. The slices are fresh copies — the caller may hold them
// across arbitrary later mutation of this store.
func (s *Store) ExportHistory(server, path string) []HistoryRec {
	k := key(server, path)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fv := sh.entries[k]
	if fv == nil {
		return nil
	}
	out := make([]HistoryRec, len(fv.recs))
	for i, rec := range fv.recs {
		e := fv.entries[i]
		hr := HistoryRec{
			Version:        int64(e.Version),
			StateID:        e.StateID,
			Size:           e.Size,
			StoredUnixNano: e.Stored.UnixNano(),
			NChunks:        rec.nchunks,
			TailLen:        rec.tailLen,
			TailHash:       rec.tail,
			IsFull:         rec.isFull,
		}
		if rec.isFull {
			hr.Full = append([]extent.Hash(nil), rec.full...)
		} else {
			hr.Mods = make([]HistoryMod, len(rec.mods))
			for j, m := range rec.mods {
				hr.Mods[j] = HistoryMod{Idx: m.idx, Hash: m.hash}
			}
		}
		out[i] = hr
	}
	return out
}

// FetchBlob returns the bytes of one content hash (paging in from the disk
// tier if cold). The caller owns the returned chunk and must ReleaseChunk it.
// This is the source side of a migration: the destination's ImportHistory
// calls it for exactly the hashes it does not already hold.
func (s *Store) FetchBlob(h extent.Hash) (*extent.Chunk, error) {
	return s.disk.Get(h)
}

// ImportHistory replays an exported history into this store. fetch is called
// once per blob hash this store does not already hold (memory, disk, or
// dead-but-unswept on disk — all deduplicate to zero transfer). The import is
// all-or-nothing: on any error no version becomes visible and every pinned
// reference is released. The destination must not already hold a history for
// (server, path) — migration owns the path exclusively while it runs.
func (s *Store) ImportHistory(server, path string, recs []HistoryRec, fetch func(extent.Hash) (*extent.Chunk, error)) (ImportStats, error) {
	var st ImportStats
	if len(recs) == 0 {
		return st, nil
	}
	k := key(server, path)

	// Build the whole fileVersions aside, pinning blob references and moving
	// bytes as needed — the same walk as a catalog replay, except a missing
	// blob is fetched from the source instead of ending the history.
	fv := &fileVersions{gen: genCounter.Add(1)}
	var pinned []extent.Hash // every addRef taken, for unwind
	fail := func(err error) (ImportStats, error) {
		for _, h := range pinned {
			s.releaseRef(h)
		}
		return ImportStats{}, err
	}
	// ensure pins one reference on h and, the first time h is fresh to the
	// refcount table, makes sure its bytes are on this store's device.
	// logical is the slot's logical size, charged to the dedup counters when
	// no transfer happens.
	ensure := func(h extent.Hash, logical int64) error {
		fresh := s.addRef(h)
		pinned = append(pinned, h)
		if !fresh {
			st.DedupedChunks++
			st.DedupedBytes += logical
			return nil
		}
		if s.disk.Has(h) {
			// Dead-but-unswept (or adopted-orphan) blob: revive in place.
			s.disk.Claim(h)
			st.DedupedChunks++
			st.DedupedBytes += logical
			return nil
		}
		c, err := fetch(h)
		if err != nil {
			return fmt.Errorf("archive: import fetch %s: %w", path, err)
		}
		n := int64(len(c.Data()))
		_, err = s.disk.Put(h, c)
		c.ReleaseChunk()
		if err != nil {
			return fmt.Errorf("archive: import store %s: %w", path, err)
		}
		st.MovedChunks++
		st.MovedBytes += n
		return nil
	}

	var full []extent.Hash
	for i, hr := range recs {
		rec := &verRec{
			isFull:  hr.IsFull,
			nchunks: hr.NChunks,
			tail:    hr.TailHash,
			tailLen: hr.TailLen,
		}
		if hr.IsFull {
			rec.full = append([]extent.Hash(nil), hr.Full...)
		} else {
			rec.mods = make([]chunkMod, len(hr.Mods))
			for j, m := range hr.Mods {
				rec.mods[j] = chunkMod{idx: m.Idx, hash: m.Hash}
			}
		}
		full = applyRec(full, rec)
		for _, h := range full {
			if err := ensure(h, extent.ChunkSize); err != nil {
				return fail(err)
			}
		}
		if rec.tailLen > 0 {
			if err := ensure(rec.tail, int64(rec.tailLen)); err != nil {
				return fail(err)
			}
		}
		fv.recs = append(fv.recs, rec)
		fv.entries = append(fv.entries, Entry{
			Server:  server,
			Path:    path,
			Version: Version(hr.Version),
			StateID: hr.StateID,
			Size:    hr.Size,
			Stored:  time.Unix(0, hr.StoredUnixNano),
			st:      s,
			key:     k,
			idx:     i,
			gen:     fv.gen,
		})
		fv.last = full
	}
	st.Versions = len(recs)

	sh := s.shardFor(k)
	sh.mu.Lock()
	if existing := sh.entries[k]; existing != nil {
		sh.mu.Unlock()
		return fail(fmt.Errorf("%w: import of %s: history already present", ErrStale, path))
	}
	if s.cat != nil {
		// Log every version before it becomes visible, like PutSnapshot. On a
		// partial failure, tombstone whatever was appended so a restart cannot
		// resurrect a half-imported history.
		for i, hr := range recs {
			rec := fv.recs[i]
			pr := &catalog.PutRec{
				Key:            k,
				Version:        hr.Version,
				StateID:        hr.StateID,
				Size:           hr.Size,
				StoredUnixNano: hr.StoredUnixNano,
				NChunks:        rec.nchunks,
				TailLen:        rec.tailLen,
				TailHash:       rec.tail,
				IsFull:         rec.isFull,
				Full:           rec.full,
				Mods:           modsForCatalog(rec.mods),
			}
			if err := s.cat.AppendPut(pr); err != nil {
				if i > 0 {
					_ = s.cat.AppendDrop(k)
				}
				sh.mu.Unlock()
				return fail(fmt.Errorf("archive: import catalog %s: %w", path, err))
			}
		}
	}
	sh.entries[k] = fv
	sh.mu.Unlock()
	if s.cat != nil {
		_ = s.cat.CompactIfDue()
	}
	// Same commit durability barrier as PutSnapshot: blobs before manifests.
	if err := s.disk.Sync(); err != nil {
		return st, err
	}
	if s.cat != nil {
		if err := s.cat.Sync(); err != nil {
			return st, fmt.Errorf("archive: import catalog %s: %w", path, err)
		}
	}
	s.logicalBytes.Add(sumSizes(recs))
	s.newBytes.Add(st.MovedBytes)
	s.dedupedBytes.Add(st.DedupedBytes)
	// Device transfer: only moved blobs travel.
	s.sleep(int64(st.MovedChunks))
	return st, nil
}

func sumSizes(recs []HistoryRec) int64 {
	var n int64
	for _, r := range recs {
		n += r.Size
	}
	return n
}
