package archive

import (
	"bytes"
	"fmt"
	"testing"

	"datalinks/internal/extent"
)

// multiVersionContent builds version v of a deterministic multi-chunk file:
// 3 chunks + tail, with only chunk 1 varying per version — so consecutive
// versions share most blobs and a handoff should dedup them.
func multiVersionContent(v int) []byte {
	buf := make([]byte, 3*extent.ChunkSize+100)
	for i := range buf {
		buf[i] = byte(i)
	}
	copy(buf[extent.ChunkSize:], []byte(fmt.Sprintf("version-%d", v)))
	return buf
}

func TestHandoffRoundTrip(t *testing.T) {
	src := New(0, nil)
	for v := 0; v < 5; v++ {
		if err := src.Put("auth", "/f", Version(v), uint64(10+v), multiVersionContent(v)); err != nil {
			t.Fatalf("put v%d: %v", v, err)
		}
	}
	recs := src.ExportHistory("auth", "/f")
	if len(recs) != 5 {
		t.Fatalf("exported %d recs, want 5", len(recs))
	}

	dst := New(0, nil)
	st, err := dst.ImportHistory("auth", "/f", recs, src.FetchBlob)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if st.Versions != 5 {
		t.Fatalf("imported %d versions, want 5", st.Versions)
	}
	// The byte(i) fill makes chunks 0 and 2 identical, so the unique blobs
	// are: one base chunk, the tail, and 5 per-version variants of chunk 1
	// = 7 moved. Everything else dedups.
	if st.MovedChunks != 7 {
		t.Errorf("moved %d blobs, want 7 (dedup broken)", st.MovedChunks)
	}
	if st.DedupedChunks == 0 {
		t.Error("no deduped slots — per-slot pinning broken")
	}
	for v := 0; v < 5; v++ {
		want := multiVersionContent(v)
		e, err := dst.Get("auth", "/f", Version(v))
		if err != nil {
			t.Fatalf("dst get v%d: %v", v, err)
		}
		if !bytes.Equal(e.Content(), want) {
			t.Fatalf("v%d content mismatch after handoff", v)
		}
		if e.StateID != uint64(10+v) {
			t.Fatalf("v%d state id %d, want %d", v, e.StateID, 10+v)
		}
	}
	// The source history is untouched; dropping it must not break the
	// destination (references are independent).
	if err := src.Drop("auth", "/f"); err != nil {
		t.Fatalf("src drop: %v", err)
	}
	e, err := dst.Get("auth", "/f", 3)
	if err != nil || !bytes.Equal(e.Content(), multiVersionContent(3)) {
		t.Fatalf("dst history damaged by src drop: %v", err)
	}
}

func TestHandoffDedupAgainstResident(t *testing.T) {
	src := New(0, nil)
	dst := New(0, nil)
	content := multiVersionContent(0)
	// The destination already archived identical content under another path.
	if err := dst.Put("auth", "/other", 0, 1, content); err != nil {
		t.Fatalf("seed dst: %v", err)
	}
	if err := src.Put("auth", "/f", 0, 1, content); err != nil {
		t.Fatalf("seed src: %v", err)
	}
	st, err := dst.ImportHistory("auth", "/f", src.ExportHistory("auth", "/f"), src.FetchBlob)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if st.MovedChunks != 0 {
		t.Errorf("moved %d blobs for fully-shared content, want 0", st.MovedChunks)
	}
	e, err := dst.Get("auth", "/f", 0)
	if err != nil || !bytes.Equal(e.Content(), content) {
		t.Fatalf("imported content wrong: %v", err)
	}
}

func TestHandoffRejectsExistingHistory(t *testing.T) {
	src := New(0, nil)
	dst := New(0, nil)
	if err := src.Put("auth", "/f", 0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := dst.Put("auth", "/f", 0, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportHistory("auth", "/f", src.ExportHistory("auth", "/f"), src.FetchBlob); err == nil {
		t.Fatal("import over an existing history succeeded")
	}
	// The failed import must not have leaked references over the existing
	// history: its content still serves.
	e, err := dst.Get("auth", "/f", 0)
	if err != nil || string(e.Content()) != "y" {
		t.Fatalf("existing history damaged: %v", err)
	}
}

func TestHandoffFetchFailureUnwinds(t *testing.T) {
	src := New(0, nil)
	if err := src.Put("auth", "/f", 0, 1, multiVersionContent(0)); err != nil {
		t.Fatal(err)
	}
	dst := New(0, nil)
	calls := 0
	failing := func(h extent.Hash) (*extent.Chunk, error) {
		calls++
		if calls > 2 {
			return nil, fmt.Errorf("wire down")
		}
		return src.FetchBlob(h)
	}
	if _, err := dst.ImportHistory("auth", "/f", src.ExportHistory("auth", "/f"), failing); err == nil {
		t.Fatal("import with failing fetch succeeded")
	}
	if _, err := dst.Get("auth", "/f", 0); err == nil {
		t.Fatal("half-imported history is visible")
	}
	// Retry with a healthy fetch: the unwind must have left the store clean.
	if _, err := dst.ImportHistory("auth", "/f", src.ExportHistory("auth", "/f"), src.FetchBlob); err != nil {
		t.Fatalf("retry after unwind: %v", err)
	}
	e, err := dst.Get("auth", "/f", 0)
	if err != nil || !bytes.Equal(e.Content(), multiVersionContent(0)) {
		t.Fatalf("retried import wrong: %v", err)
	}
}

func TestHandoffTieredDestination(t *testing.T) {
	src := New(0, nil)
	for v := 0; v < 3; v++ {
		if err := src.Put("auth", "/f", Version(v), uint64(v+1), multiVersionContent(v)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	dst, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportHistory("auth", "/f", src.ExportHistory("auth", "/f"), src.FetchBlob); err != nil {
		t.Fatalf("import: %v", err)
	}
	dst.Close()
	// The imported history must be durable: reopen and serve every version.
	re, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for v := 0; v < 3; v++ {
		e, err := re.Get("auth", "/f", Version(v))
		if err != nil || !bytes.Equal(e.Content(), multiVersionContent(v)) {
			t.Fatalf("reopened v%d wrong: %v", v, err)
		}
	}
}
