package archive

import (
	"bytes"
	"errors"
	"testing"

	"datalinks/internal/extent"
)

// seedPair returns a source with versions 0..srcVers-1 of /f and a
// destination already holding the prefix 0..dstVers-1 (shipped from src, so
// the chains match).
func seedPair(t *testing.T, srcVers, dstVers int) (src, dst *Store) {
	t.Helper()
	src = New(0, nil)
	for v := 0; v < srcVers; v++ {
		if err := src.Put("auth", "/f", Version(v), uint64(10+v), multiVersionContent(v)); err != nil {
			t.Fatalf("src put v%d: %v", v, err)
		}
	}
	dst = New(0, nil)
	if dstVers > 0 {
		recs := src.ExportHistory("auth", "/f")
		if _, err := dst.ImportHistory("auth", "/f", recs[:dstVers], src.FetchBlob); err != nil {
			t.Fatalf("seed dst: %v", err)
		}
	}
	return src, dst
}

func TestDeltaShipsOnlyMissingVersions(t *testing.T) {
	src, dst := seedPair(t, 6, 3)
	recs, err := src.ExportDelta("auth", "/f", 2) // dst has 0..2
	if err != nil {
		t.Fatalf("export delta: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("delta has %d recs, want 3 (versions 3..5)", len(recs))
	}
	st, err := dst.ImportDelta("auth", "/f", recs, src.FetchBlob)
	if err != nil {
		t.Fatalf("import delta: %v", err)
	}
	if st.Versions != 3 {
		t.Fatalf("imported %d versions, want 3", st.Versions)
	}
	// Only chunk 1 varies per version: 3 new versions move at most 3 + tail
	// blobs; a full history re-ship would have moved the base chunks again.
	if st.MovedChunks > 4 {
		t.Errorf("delta moved %d blobs — that is a full copy, not a delta", st.MovedChunks)
	}
	for v := 0; v < 6; v++ {
		e, err := dst.Get("auth", "/f", Version(v))
		if err != nil || !bytes.Equal(e.Content(), multiVersionContent(v)) {
			t.Fatalf("v%d wrong after delta import: %v", v, err)
		}
	}
}

func TestDeltaEmptyWhenCaughtUp(t *testing.T) {
	src, _ := seedPair(t, 4, 0)
	recs, err := src.ExportDelta("auth", "/f", 3)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("caught-up delta has %d recs, want 0", len(recs))
	}
}

func TestDeltaChainGap(t *testing.T) {
	src, dst := seedPair(t, 5, 2)
	// Base the source never archived (e.g. the replica ran ahead of a
	// restored owner): the chain cannot be extended, the caller must resync.
	if _, err := src.ExportDelta("auth", "/f", 99); !errors.Is(err, ErrChainGap) {
		t.Fatalf("export with unknown base: %v, want ErrChainGap", err)
	}
	if _, err := src.ExportDelta("auth", "/missing", 0); !errors.Is(err, ErrChainGap) {
		t.Fatalf("export of missing path: %v, want ErrChainGap", err)
	}
	// Non-contiguous delta (starts past the destination's last version).
	recs, err := src.ExportDelta("auth", "/f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportDelta("auth", "/f", recs, src.FetchBlob); !errors.Is(err, ErrChainGap) {
		t.Fatalf("gapped import: %v, want ErrChainGap", err)
	}
	// The failed import left the destination intact.
	e, err := dst.Get("auth", "/f", 1)
	if err != nil || !bytes.Equal(e.Content(), multiVersionContent(1)) {
		t.Fatalf("dst damaged by rejected import: %v", err)
	}
	// ImportDelta onto an empty history is a gap too: the full-history path
	// (ImportHistory) owns that case.
	empty := New(0, nil)
	if _, err := empty.ImportDelta("auth", "/f", recs, src.FetchBlob); !errors.Is(err, ErrChainGap) {
		t.Fatalf("delta into empty store: %v, want ErrChainGap", err)
	}
}

func TestDeltaIdempotentReship(t *testing.T) {
	src, dst := seedPair(t, 5, 3)
	recs, err := src.ExportDelta("auth", "/f", 1) // overlaps: dst already has 2
	if err != nil {
		t.Fatal(err)
	}
	st, err := dst.ImportDelta("auth", "/f", recs, src.FetchBlob)
	if err != nil {
		t.Fatalf("overlapping re-ship: %v", err)
	}
	if st.Versions != 2 {
		t.Fatalf("imported %d versions, want 2 (3 and 4; 2 skipped)", st.Versions)
	}
	// A second identical ship is a clean no-op — the at-least-once delivery
	// case the replication retry produces.
	st, err = dst.ImportDelta("auth", "/f", recs, src.FetchBlob)
	if err != nil {
		t.Fatalf("duplicate ship: %v", err)
	}
	if st.Versions != 0 || st.MovedChunks != 0 {
		t.Fatalf("duplicate ship imported %d versions, moved %d blobs; want 0/0", st.Versions, st.MovedChunks)
	}
	for v := 0; v < 5; v++ {
		e, err := dst.Get("auth", "/f", Version(v))
		if err != nil || !bytes.Equal(e.Content(), multiVersionContent(v)) {
			t.Fatalf("v%d wrong after re-ships: %v", v, err)
		}
	}
}

func TestDeltaFetchFailureKeepsPrefix(t *testing.T) {
	src, dst := seedPair(t, 6, 2)
	recs, err := src.ExportDelta("auth", "/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	failing := func(h extent.Hash) (*extent.Chunk, error) {
		calls++
		if calls > 1 {
			return nil, errors.New("wire down")
		}
		return src.FetchBlob(h)
	}
	if _, err := dst.ImportDelta("auth", "/f", recs, failing); err == nil {
		t.Fatal("import with failing fetch succeeded")
	}
	// The destination still serves what it had, and a healthy retry converges.
	e, err := dst.Get("auth", "/f", 1)
	if err != nil || !bytes.Equal(e.Content(), multiVersionContent(1)) {
		t.Fatalf("existing prefix damaged: %v", err)
	}
	if _, err := dst.ImportDelta("auth", "/f", recs, src.FetchBlob); err != nil {
		t.Fatalf("retry: %v", err)
	}
	for v := 0; v < 6; v++ {
		e, err := dst.Get("auth", "/f", Version(v))
		if err != nil || !bytes.Equal(e.Content(), multiVersionContent(v)) {
			t.Fatalf("v%d wrong after retry: %v", v, err)
		}
	}
}

func TestDeltaDurableDestination(t *testing.T) {
	src, _ := seedPair(t, 4, 0)
	dir := t.TempDir()
	dst, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := src.ExportHistory("auth", "/f")
	if _, err := dst.ImportHistory("auth", "/f", recs[:2], src.FetchBlob); err != nil {
		t.Fatal(err)
	}
	delta, err := src.ExportDelta("auth", "/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportDelta("auth", "/f", delta, src.FetchBlob); err != nil {
		t.Fatalf("delta import: %v", err)
	}
	dst.Close()
	re, err := NewTiered(0, nil, TierConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for v := 0; v < 4; v++ {
		e, err := re.Get("auth", "/f", Version(v))
		if err != nil || !bytes.Equal(e.Content(), multiVersionContent(v)) {
			t.Fatalf("reopened v%d wrong: %v", v, err)
		}
	}
}
