// Package cico implements the check-in/check-out update discipline the paper
// compares against in §3: the DBMS tracks who has checked out which file;
// the check-out places a lock (a database row) that blocks every other
// check-out of the same file until check-in.
//
// The paper's criticisms are reproduced measurably:
//   - the lock is held from check-out to check-in (application think time
//     included), curtailing concurrency — unlike UIP's open..close window;
//   - each check-out and check-in costs an extra database update;
//   - a misbehaving application can hoard check-outs and starve others.
package cico

import (
	"errors"
	"fmt"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// Errors.
var (
	ErrCheckedOut = errors.New("cico: file is checked out by another user")
	ErrStale      = errors.New("cico: ticket is no longer valid")
)

// Manager coordinates check-outs through a database table.
type Manager struct {
	db    *sqlmini.DB
	phys  *fs.FS
	arch  *archive.Store
	srv   string
	clock func() time.Time
}

// New creates the manager and its coordination table.
func New(db *sqlmini.DB, phys *fs.FS, arch *archive.Store, server string, clock func() time.Time) (*Manager, error) {
	if clock == nil {
		clock = time.Now
	}
	if _, err := db.Exec(`CREATE TABLE dl_checkout (
		url VARCHAR PRIMARY KEY,
		holder INT NOT NULL,
		since TIMESTAMP NOT NULL
	)`); err != nil {
		return nil, err
	}
	return &Manager{db: db, phys: phys, arch: arch, srv: server, clock: clock}, nil
}

// Ticket represents one granted check-out.
type Ticket struct {
	URL     string
	Holder  fs.UID
	Content []byte // private working copy
	path    string
	valid   bool
	since   time.Time
}

// CheckOut locks the file in the database and hands back a working copy.
// This is one database update (the lock row) plus the file read.
func (m *Manager) CheckOut(user fs.UID, url string) (*Ticket, error) {
	l, err := datalink.Parse(url)
	if err != nil {
		return nil, err
	}
	if _, err := m.db.Exec(`INSERT INTO dl_checkout (url, holder, since) VALUES (?, ?, ?)`,
		sqlmini.Str(url), sqlmini.Int(int64(user)), sqlmini.Time(m.clock())); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCheckedOut, url)
	}
	content, err := m.phys.ReadFile(l.Path)
	if err != nil {
		// Release the lock we just took.
		_, _ = m.db.Exec(`DELETE FROM dl_checkout WHERE url = ?`, sqlmini.Str(url))
		return nil, err
	}
	return &Ticket{URL: url, Holder: user, Content: content, path: l.Path, valid: true, since: m.clock()}, nil
}

// CheckIn writes the working copy back, archives a version, and releases the
// lock — the second extra database update of the discipline.
func (m *Manager) CheckIn(t *Ticket) error {
	if !t.valid {
		return ErrStale
	}
	if err := m.phys.WriteFile(t.path, t.Content); err != nil {
		return err
	}
	ver := archive.Version(0)
	if vs := m.arch.Versions(m.srv, t.path); len(vs) > 0 {
		ver = vs[len(vs)-1].Version + 1
	}
	if err := m.arch.Put(m.srv, t.path, ver, uint64(m.db.StateID()), t.Content); err != nil {
		return err
	}
	if _, err := m.db.Exec(`DELETE FROM dl_checkout WHERE url = ?`, sqlmini.Str(t.URL)); err != nil {
		return err
	}
	t.valid = false
	return nil
}

// Cancel abandons a check-out without writing anything.
func (m *Manager) Cancel(t *Ticket) error {
	if !t.valid {
		return ErrStale
	}
	if _, err := m.db.Exec(`DELETE FROM dl_checkout WHERE url = ?`, sqlmini.Str(t.URL)); err != nil {
		return err
	}
	t.valid = false
	return nil
}

// Holder reports who currently holds a file, if anyone.
func (m *Manager) Holder(url string) (fs.UID, bool) {
	rows, err := m.db.Query(`SELECT holder FROM dl_checkout WHERE url = ?`, sqlmini.Str(url))
	if err != nil || len(rows.Data) == 0 {
		return 0, false
	}
	return fs.UID(rows.Data[0][0].I), true
}

// OutstandingCheckouts counts live check-outs (hoarding detection).
func (m *Manager) OutstandingCheckouts() int {
	rows, err := m.db.Query(`SELECT COUNT(*) FROM dl_checkout`)
	if err != nil {
		return 0
	}
	return int(rows.Data[0][0].I)
}
