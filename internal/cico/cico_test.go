package cico

import (
	"errors"
	"sync"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/workload"
)

func setup(t *testing.T) (*Manager, *fs.FS, *workload.Population) {
	t.Helper()
	db := sqlmini.NewDB(sqlmini.Options{LockTimeout: time.Second})
	phys := fs.New()
	arch := archive.New(0, nil)
	pop, err := workload.Seed(phys, "/w", 3, 128, 100, workload.RNG(1))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	m, err := New(db, phys, arch, "fs1", nil)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	return m, phys, pop
}

func TestCheckOutBlocksSecondCheckout(t *testing.T) {
	m, _, pop := setup(t)
	url := pop.URL("fs1", 0)
	tk, err := m.CheckOut(100, url)
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	if _, err := m.CheckOut(101, url); !errors.Is(err, ErrCheckedOut) {
		t.Fatalf("second checkout = %v", err)
	}
	if holder, ok := m.Holder(url); !ok || holder != 100 {
		t.Fatalf("holder = %d, %v", holder, ok)
	}
	if err := m.CheckIn(tk); err != nil {
		t.Fatalf("checkin: %v", err)
	}
	if _, ok := m.Holder(url); ok {
		t.Fatal("lock not released")
	}
	if _, err := m.CheckOut(101, url); err != nil {
		t.Fatalf("checkout after release: %v", err)
	}
}

func TestCheckInWritesContentAndArchives(t *testing.T) {
	m, phys, pop := setup(t)
	url := pop.URL("fs1", 0)
	tk, _ := m.CheckOut(100, url)
	tk.Content = []byte("edited content")
	if err := m.CheckIn(tk); err != nil {
		t.Fatalf("checkin: %v", err)
	}
	data, _ := phys.ReadFile(pop.Paths[0])
	if string(data) != "edited content" {
		t.Fatalf("content = %q", data)
	}
}

func TestTicketSingleUse(t *testing.T) {
	m, _, pop := setup(t)
	tk, _ := m.CheckOut(100, pop.URL("fs1", 0))
	m.CheckIn(tk)
	if err := m.CheckIn(tk); !errors.Is(err, ErrStale) {
		t.Fatalf("double checkin = %v", err)
	}
	tk2, _ := m.CheckOut(100, pop.URL("fs1", 0))
	if err := m.Cancel(tk2); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := m.Cancel(tk2); !errors.Is(err, ErrStale) {
		t.Fatalf("double cancel = %v", err)
	}
}

func TestCancelDoesNotWrite(t *testing.T) {
	m, phys, pop := setup(t)
	before, _ := phys.ReadFile(pop.Paths[1])
	tk, _ := m.CheckOut(100, pop.URL("fs1", 1))
	tk.Content = []byte("should not land")
	m.Cancel(tk)
	after, _ := phys.ReadFile(pop.Paths[1])
	if string(before) != string(after) {
		t.Fatal("cancel wrote content")
	}
	if _, ok := m.Holder(pop.URL("fs1", 1)); ok {
		t.Fatal("cancel left the lock")
	}
}

func TestHoardingVisible(t *testing.T) {
	// The §3 criticism: one application checks out many files in advance.
	m, _, pop := setup(t)
	for i := 0; i < 3; i++ {
		if _, err := m.CheckOut(100, pop.URL("fs1", i)); err != nil {
			t.Fatalf("hoard %d: %v", i, err)
		}
	}
	if n := m.OutstandingCheckouts(); n != 3 {
		t.Fatalf("outstanding = %d", n)
	}
	// Everyone else is starved.
	for i := 0; i < 3; i++ {
		if _, err := m.CheckOut(101, pop.URL("fs1", i)); !errors.Is(err, ErrCheckedOut) {
			t.Fatalf("starved checkout %d = %v", i, err)
		}
	}
}

func TestConcurrentCheckoutsOneWinner(t *testing.T) {
	m, _, pop := setup(t)
	url := pop.URL("fs1", 0)
	var wins int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(uid int32) {
			defer wg.Done()
			if tk, err := m.CheckOut(fs.UID(uid), url); err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
				m.CheckIn(tk)
			}
		}(int32(200 + i))
	}
	wg.Wait()
	if wins < 1 {
		t.Fatal("no checkout won")
	}
	// All locks released at the end.
	if m.OutstandingCheckouts() != 0 {
		t.Fatalf("outstanding = %d", m.OutstandingCheckouts())
	}
}

func TestCheckOutMissingFile(t *testing.T) {
	m, _, _ := setup(t)
	if _, err := m.CheckOut(100, "dlfs://fs1/missing.dat"); err == nil {
		t.Fatal("checkout of missing file succeeded")
	}
	// The failed checkout must not leave a dangling lock.
	if m.OutstandingCheckouts() != 0 {
		t.Fatal("dangling lock after failed checkout")
	}
}
