package dlfm

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// newShardPeer builds a second server sharing the authority name "fs1" (as
// cluster members do) with an empty filesystem — a migration destination.
func newShardPeer(t *testing.T) (*Server, *fs.FS) {
	t.Helper()
	phys := fs.New()
	srv, err := New(Config{
		Name:     "fs1",
		Phys:     phys,
		Archive:  archive.New(0, nil),
		Host:     newFakeHost(),
		TokenKey: []byte("k"),
		OpenWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new peer: %v", err)
	}
	return srv, phys
}

// migrate runs the full per-path handoff between two servers, the way the
// cluster router does: freeze+export, archive history, bundle import, evict.
func migrate(t *testing.T, src, dst *Server, path string) {
	t.Helper()
	b, err := src.BeginExport(path)
	if err != nil {
		t.Fatalf("begin export: %v", err)
	}
	defer b.Release()
	recs := src.cfg.Archive.ExportHistory("fs1", path)
	if _, err := dst.cfg.Archive.ImportHistory("fs1", path, recs, src.cfg.Archive.FetchBlob); err != nil {
		src.AbortExport(path)
		t.Fatalf("import history: %v", err)
	}
	if err := dst.ImportBundle(b); err != nil {
		src.AbortExport(path)
		t.Fatalf("import bundle: %v", err)
	}
	if err := src.EndExport(path, true); err != nil {
		t.Fatalf("end export: %v", err)
	}
	if err := src.cfg.Archive.Drop("fs1", path); err != nil {
		t.Fatalf("src archive drop: %v", err)
	}
}

func TestShardExportImportRoundTrip(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	id := openWrite(t, src, "/d/f.bin", owner)
	srcPhys.WriteFile("/d/f.bin", []byte("v1"))
	if resp := closeFile(t, src, srcPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	src.WaitArchives()
	srcIno, _ := srcPhys.Lookup("/d/f.bin")
	srcAttr, _ := srcPhys.Getattr(srcIno)

	dst, dstPhys := newShardPeer(t)
	migrate(t, src, dst, "/d/f.bin")

	// Source forgot the path entirely.
	if src.IsLinked("/d/f.bin") {
		t.Fatal("source still linked after evict")
	}
	if _, err := srcPhys.Lookup("/d/f.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("source phys file survived evict: %v", err)
	}
	// Destination serves the link: row, bytes, mtime, and at-rest protection.
	if !dst.IsLinked("/d/f.bin") {
		t.Fatal("destination not linked after import")
	}
	data, err := dstPhys.ReadFile("/d/f.bin")
	if err != nil || string(data) != "v1" {
		t.Fatalf("destination content = %q, %v", data, err)
	}
	ino, _ := dstPhys.Lookup("/d/f.bin")
	attr, _ := dstPhys.Getattr(ino)
	if !attr.Mtime.Equal(srcAttr.Mtime) {
		t.Fatalf("mtime not preserved: %v vs %v", attr.Mtime, srcAttr.Mtime)
	}
	if attr.Mode&0o222 != 0 {
		t.Fatalf("rfd file writable after import: %o", attr.Mode)
	}
	// The migrated archive history serves every version, and src's Drop did
	// not damage it.
	vs := dst.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 2 || string(vs[0].Content()) != "v0" || string(vs[1].Content()) != "v1" {
		t.Fatalf("migrated versions wrong: %d", len(vs))
	}

	// Version numbering continues where the source stopped: the next update on
	// the destination commits version 2, not version 1 again.
	id = openWrite(t, dst, "/d/f.bin", owner)
	dstPhys.WriteFile("/d/f.bin", []byte("v2"))
	if resp := closeFile(t, dst, dstPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("post-migration close: %+v", resp)
	}
	dst.WaitArchives()
	vs = dst.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 3 || string(vs[2].Content()) != "v2" {
		t.Fatalf("post-migration versions = %d", len(vs))
	}
}

func TestShardImportPreservedMtimeMeansUnmodified(t *testing.T) {
	src, _, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	dst, dstPhys := newShardPeer(t)
	migrate(t, src, dst, "/d/f.bin")

	// A write open that touches nothing must close as "unmodified" — which
	// only works if the import preserved the source's mtime exactly (every
	// import step before SetMtime dirties it).
	id := openWrite(t, dst, "/d/f.bin", owner)
	if resp := closeFile(t, dst, dstPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("no-op close: %+v", resp)
	}
	if got := len(dst.cfg.Archive.Versions("fs1", "/d/f.bin")); got != 1 {
		t.Fatalf("no-op close after migration minted a version: %d", got)
	}
}

func TestBeginExportDrainsAndTimesOut(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	id := openWrite(t, src, "/d/f.bin", owner)
	// A writer is in flight: the export drain must give up within OpenWait.
	if _, err := src.BeginExport("/d/f.bin"); !errors.Is(err, ErrFileBusy) {
		t.Fatalf("export with writer in flight = %v, want ErrFileBusy", err)
	}
	if resp := closeFile(t, src, srcPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	// Writer gone: the drain succeeds now.
	b, err := src.BeginExport("/d/f.bin")
	if err != nil {
		t.Fatalf("export after drain: %v", err)
	}
	b.Release()
	src.AbortExport("/d/f.bin")
}

func TestExportFreezeBlocksOpensUntilAbort(t *testing.T) {
	src, _, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	b, err := src.BeginExport("/d/f.bin")
	if err != nil {
		t.Fatalf("begin export: %v", err)
	}
	defer b.Release()

	tok := src.Authority().Issue(token.Write, "/d/f.bin")
	if resp, err := src.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: int32(owner)}); err != nil || !resp.OK {
		t.Fatalf("validate: %+v %v", resp, err)
	}
	var opened atomic.Bool
	done := make(chan upcall.Response, 1)
	go func() {
		resp, _ := src.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: "/d/f.bin", UID: int32(owner), Write: true})
		opened.Store(true)
		done <- resp
	}()
	// The open must park behind the freeze, not proceed.
	time.Sleep(20 * time.Millisecond)
	if opened.Load() {
		t.Fatal("open proceeded under export freeze")
	}
	src.AbortExport("/d/f.bin")
	resp := <-done
	if !resp.OK {
		t.Fatalf("open after aborted export: %+v", resp)
	}
}

func TestBeginExportNotLinked(t *testing.T) {
	src, _, _ := newServer(t)
	if _, err := src.BeginExport("/d/f.bin"); !errors.Is(err, ErrNotLinked) {
		t.Fatalf("export of unlinked path = %v, want ErrNotLinked", err)
	}
}

func TestEndExportEvictPurgesEverything(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rdd")
	// Seed a token entry so eviction has something to purge.
	tok := src.Authority().Issue(token.Read, "/d/f.bin")
	if resp, _ := src.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: 9}); !resp.OK {
		t.Fatalf("validate: %+v", resp)
	}
	b, err := src.BeginExport("/d/f.bin")
	if err != nil {
		t.Fatalf("begin export: %v", err)
	}
	b.Release()
	if err := src.EndExport("/d/f.bin", true); err != nil {
		t.Fatalf("end export: %v", err)
	}
	if src.IsLinked("/d/f.bin") {
		t.Fatal("row survived evict")
	}
	if _, err := srcPhys.Lookup("/d/f.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("phys file survived evict")
	}
	if src.TokenEntryCount() != 0 {
		t.Fatal("token entries survived evict")
	}
	// The path is open for business again (e.g. a fresh link of a new file).
	seedFile(t, srcPhys, "/d/f.bin", "new")
	linkCommitted(t, src, "/d/f.bin", "rfd")
	if !src.IsLinked("/d/f.bin") {
		t.Fatal("relink after evict failed")
	}
}

func TestImportBundleRejectsLinkedPath(t *testing.T) {
	src, _, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	b, err := src.BeginExport("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	defer src.AbortExport("/d/f.bin")
	dst, dstPhys := newShardPeer(t)
	dstPhys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	seedFile(t, dstPhys, "/d/f.bin", "local")
	linkCommitted(t, dst, "/d/f.bin", "rfd")
	if err := dst.ImportBundle(b); !errors.Is(err, ErrAlreadyLinked) {
		t.Fatalf("import over linked path = %v, want ErrAlreadyLinked", err)
	}
}
