package dlfm

import (
	"errors"
	"fmt"
	pathpkg "path"

	"datalinks/internal/archive"
	"datalinks/internal/extent"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/wal"
)

func intToUID(v int64) fs.UID       { return fs.UID(v) }
func intToMode(v int64) fs.FileMode { return fs.FileMode(v) }

// Restart recovery (§4.2, §4.4):
//
//  1. The repository database recovers from its own WAL (ARIES).
//  2. In-doubt sub-transactions (prepared at crash time) are resolved by
//     asking the host database for the outcome of the bound host
//     transaction — presumed abort if the host never logged a commit.
//     File-system side effects are compensated accordingly.
//  3. Every durable update entry marks a file whose update transaction was
//     in flight: its in-flight content is quarantined and the last committed
//     version restored from the archive.
//  4. Committed-but-unarchived versions (pending-archive rows, or a version
//     counter ahead of the archive) are archived now.
//  5. The canonical at-rest permission state is re-established for every
//     linked file (a crash during a takeover leaves DLFM-owned files).
//
// Token entries, Sync entries and open states are volatile by design: a
// machine crash ends every open.

// RecoveryReport summarizes what DLFM restart recovery did.
type RecoveryReport struct {
	Repo             *sqlmini.RecoveryReport
	ResolvedCommit   []uint64 // host txns resolved as committed
	ResolvedAbort    []uint64 // host txns resolved as aborted (incl. presumed)
	RestoredFiles    []string // files rolled back to their last committed version
	ArchivedVersions []string // committed versions archived during recovery
	// Cold-start reconciliation: files whose content had to be materialized
	// from the archive because the physical file system did not survive,
	// version counters walked back to the newest archived version (the
	// committed bytes died with the process before archiving finished), and
	// linked files with no archived copy to materialize from.
	MaterializedFiles  []string
	ReconciledVersions []string
	LostFiles          []string
}

// Recover rebuilds a DLFM server after a crash. crashedLog is the durable
// prefix of the repository WAL (from Server.CrashRepo or sqlmini semantics);
// cfg must reference the same physical file system and archive store, which
// survive the crash as "disk" state.
func Recover(cfg Config, crashedLog *wal.Log) (*Server, *RecoveryReport, error) {
	cfg.RepoLog = crashedLog
	if cfg.RepoDir != "" && cfg.RepoCheckpointBytes <= 0 {
		cfg.RepoCheckpointBytes = DefaultRepoCheckpointBytes
	}
	repo, repoRep, err := sqlmini.Recover(crashedLog, repoOptions(cfg))
	if err != nil {
		return nil, nil, fmt.Errorf("dlfm: repository recovery: %w", err)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Adopt the recovered repository in place of the fresh one New made.
	s.repo = repo
	rep := &RecoveryReport{Repo: repoRep}

	// A crash in the middle of first-boot schema creation can leave a
	// half-created repository; fill in whatever is missing.
	if err := s.ensureRepoTables(); err != nil {
		return nil, nil, err
	}

	// The reboot cleared all kernel state on this machine, including the
	// advisory locks DLFS held for in-flight updates.
	cfg.Phys.ClearAllLocks()

	if err := s.seedCounters(); err != nil {
		return nil, nil, err
	}
	if err := s.resolveInDoubt(rep); err != nil {
		return nil, nil, err
	}
	if err := s.recoverPendingArchives(rep); err != nil {
		return nil, nil, err
	}
	if err := s.materializeMissingFiles(rep); err != nil {
		return nil, nil, err
	}
	if err := s.recoverInFlightUpdates(rep); err != nil {
		return nil, nil, err
	}
	if err := s.reestablishLinkStates(); err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}

// physExists reports whether path survived on the physical file system —
// true on a warm restart, usually false after a whole-process kill (the
// simulated phys lives in RAM).
func (s *Server) physExists(path string) bool {
	_, err := s.cfg.Phys.Lookup(path)
	return err == nil
}

// reconcileVersionDown walks a file's version counter back to the newest
// archived version: the committed bytes beyond it died with the process
// before their archive copy completed, so the archive's view IS the
// recoverable truth.
func (s *Server) reconcileVersionDown(fi fileInfo, rep *RecoveryReport) error {
	versions := s.cfg.Archive.Versions(s.cfg.Name, fi.path)
	if len(versions) == 0 {
		return nil // nothing archived; the materialize pass reports the loss
	}
	latest := versions[len(versions)-1].Version
	if latest >= fi.version {
		return nil
	}
	if _, err := s.repo.Exec(`UPDATE dlfm_files SET cur_version = ? WHERE path = ?`,
		sqlmini.Int(int64(latest)), sqlmini.Str(fi.path)); err != nil {
		return err
	}
	rep.ReconciledVersions = append(rep.ReconciledVersions,
		fmt.Sprintf("%s: v%d -> v%d", fi.path, fi.version, latest))
	return nil
}

// writeRestored writes an archive snapshot to the physical path, creating
// parent directories first — on a cold-started file system not even the
// directory tree survived.
func (s *Server) writeRestored(p string, snap *extent.Snapshot) error {
	if dir := pathpkg.Dir(p); dir != "" && dir != "/" && dir != "." {
		if err := s.cfg.Phys.MkdirAll(dir, rootCred, 0o777); err != nil {
			return fmt.Errorf("dlfm: restore %s: %w", p, err)
		}
	}
	return s.cfg.Phys.WriteFileSnapshot(p, snap)
}

// materializeMissingFiles restores linked files that no longer exist on the
// physical file system from their newest archived version — the cold-start
// counterpart of §4.2's restore, for when the whole machine (not just DLFM)
// lost its volatile state. Files mid-update are left to the in-flight pass;
// files with no archived copy are reported lost.
func (s *Server) materializeMissingFiles(rep *RecoveryReport) error {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return err
	}
	var missing []fileInfo
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		fi := decodeFileRow(row)
		if !s.physExists(fi.path) && !s.hasUpdateEntry(fi.path) {
			missing = append(missing, fi)
		}
		return true
	})
	for _, fi := range missing {
		entry, err := s.cfg.Archive.Latest(s.cfg.Name, fi.path)
		if err != nil {
			rep.LostFiles = append(rep.LostFiles, fi.path)
			continue
		}
		snap, err := entry.Snapshot()
		if err != nil {
			return fmt.Errorf("dlfm: materialize %s v%d: %w", fi.path, entry.Version, err)
		}
		err = s.writeRestored(fi.path, snap)
		snap.Release()
		if err != nil {
			return err
		}
		rep.MaterializedFiles = append(rep.MaterializedFiles, fi.path)
	}
	return nil
}

// CrashRepo simulates a DLFM machine crash, returning the durable repository
// log for Recover. The physical FS and archive survive as-is.
func (s *Server) CrashRepo() *wal.Log {
	return s.repo.Crash()
}

// seedCounters re-seeds the journal-id counter past any surviving rows.
func (s *Server) seedCounters() error {
	tbl, err := s.repo.Table("dlfm_txns")
	if err != nil {
		return err
	}
	var maxID int64
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		if row[0].I > maxID {
			maxID = row[0].I
		}
		return true
	})
	s.mu.Lock()
	s.nextJournal = maxID
	s.mu.Unlock()
	return nil
}

// journalRow is a decoded dlfm_txns row.
type journalRow struct {
	id       int64
	repoTxn  uint64
	hostTxn  uint64
	action   string
	path     string
	origUID  int64
	origMode int64
	recovery bool
}

// journalRowsFor reads the journal rows written by one in-doubt repository
// transaction. The rows were redone by repository recovery and are readable
// by direct scan (the executor's locks don't apply to storage-level scans).
func (s *Server) journalRowsFor(repoTxn uint64) ([]journalRow, error) {
	tbl, err := s.repo.Table("dlfm_txns")
	if err != nil {
		return nil, err
	}
	var out []journalRow
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		if uint64(row[1].I) == repoTxn {
			out = append(out, journalRow{
				id:       row[0].I,
				repoTxn:  uint64(row[1].I),
				hostTxn:  uint64(row[2].I),
				action:   row[3].S,
				path:     row[4].S,
				origUID:  row[5].I,
				origMode: row[6].I,
				recovery: row[7].B,
			})
		}
		return true
	})
	return out, nil
}

// resolveInDoubt finishes prepared sub-transactions using the host outcome.
func (s *Server) resolveInDoubt(rep *RecoveryReport) error {
	for _, repoTxn := range s.repo.InDoubt() {
		rows, err := s.journalRowsFor(repoTxn)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			// No journal — nothing to compensate; presumed abort.
			if err := s.repo.ResolveInDoubt(repoTxn, false); err != nil {
				return err
			}
			continue
		}
		hostTxn := rows[0].hostTxn
		committed, known := s.cfg.Host.TxnOutcome(hostTxn)
		if !known {
			committed = false // presumed abort
		}
		if err := s.repo.ResolveInDoubt(repoTxn, committed); err != nil {
			return err
		}
		if committed {
			rep.ResolvedCommit = append(rep.ResolvedCommit, hostTxn)
		} else {
			rep.ResolvedAbort = append(rep.ResolvedAbort, hostTxn)
		}
		// Compensate or complete the file-system side effects.
		for _, r := range rows {
			if err := s.compensateJournal(r, committed, rep); err != nil {
				return err
			}
		}
		_, _ = s.repo.Exec(`DELETE FROM dlfm_txns WHERE host_txn = ?`, sqlmini.Int(int64(hostTxn)))
	}
	return nil
}

// compensateJournal applies the post-outcome file-system action for one
// journaled side effect.
func (s *Server) compensateJournal(r journalRow, committed bool, rep *RecoveryReport) error {
	switch r.action {
	case "link":
		if committed {
			// Eager FS changes stand. Ensure version 0 is archived.
			if fi, ok := s.lookupFile(r.path); ok && (fi.mode.UpdateManaged() || fi.recovery) && s.physExists(r.path) {
				if len(s.cfg.Archive.Versions(s.cfg.Name, r.path)) == 0 {
					if err := s.archiveCurrent(r.path, 0, s.cfg.Host.StateID()); err != nil {
						return err
					}
					rep.ArchivedVersions = append(rep.ArchivedVersions, r.path)
				}
			}
			return nil
		}
		// Aborted link: undo the eager permission/ownership change.
		node, err := s.cfg.Phys.Lookup(r.path)
		if err != nil {
			return nil // file vanished; nothing to restore
		}
		if err := s.cfg.Phys.Chown(node, rootCred, intToUID(r.origUID)); err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, intToMode(r.origMode))
	case "unlink":
		if !committed {
			return nil // deferred FS change never ran
		}
		// Committed unlink: complete the deferred restoration.
		node, err := s.cfg.Phys.Lookup(r.path)
		if err != nil {
			return nil
		}
		if err := s.cfg.Phys.Chown(node, rootCred, intToUID(r.origUID)); err != nil {
			return err
		}
		if err := s.cfg.Phys.Chmod(node, rootCred, intToMode(r.origMode)); err != nil {
			return err
		}
		return s.cfg.Archive.Drop(s.cfg.Name, r.path)
	case "close":
		// The repository outcome (version counter, update-entry deletion)
		// was already resolved with the transaction; the later passes handle
		// restore/archive from that state.
		return nil
	default:
		return fmt.Errorf("dlfm: unknown journal action %q", r.action)
	}
}

// recoverPendingArchives archives committed versions whose archive copy was
// interrupted, and reconciles version counters with the archive.
func (s *Server) recoverPendingArchives(rep *RecoveryReport) error {
	// Pass 1: explicit pending-archive rows (exact state ids).
	tbl, err := s.repo.Table("dlfm_pending_archive")
	if err != nil {
		return err
	}
	type pending struct {
		path    string
		version int64
		stateID int64
	}
	var rows []pending
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		rows = append(rows, pending{path: row[0].S, version: row[1].I, stateID: row[2].I})
		return true
	})
	for _, p := range rows {
		already := false
		for _, e := range s.cfg.Archive.Versions(s.cfg.Name, p.path) {
			if e.Version == archive.Version(p.version) {
				already = true
				break
			}
		}
		switch {
		case already:
			// The archiver finished before the crash; only the cleanup of
			// the pending row was lost.
		case s.physExists(p.path):
			if err := s.archiveCurrent(p.path, archive.Version(p.version), uint64(p.stateID)); err != nil {
				return err
			}
			rep.ArchivedVersions = append(rep.ArchivedVersions, fmt.Sprintf("%s@v%d", p.path, p.version))
		default:
			// Cold start: the committed bytes lived only on the volatile
			// file system and were never archived. Walk the counter back to
			// what the archive actually holds.
			if fi, ok := s.lookupFile(p.path); ok {
				if err := s.reconcileVersionDown(fi, rep); err != nil {
					return err
				}
			}
		}
		if _, err := s.repo.Exec(`DELETE FROM dlfm_pending_archive WHERE path = ?`, sqlmini.Str(p.path)); err != nil {
			return err
		}
	}
	// Pass 2: version counters ahead of the archive (crash between the
	// commit point and the pending-archive insert).
	files, err := s.repo.Table("dlfm_files")
	if err != nil {
		return err
	}
	var lagging []fileInfo
	files.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		fi := decodeFileRow(row)
		if !fi.mode.UpdateManaged() && !fi.recovery {
			return true
		}
		versions := s.cfg.Archive.Versions(s.cfg.Name, fi.path)
		if len(versions) == 0 || versions[len(versions)-1].Version < fi.version {
			lagging = append(lagging, fi)
		}
		return true
	})
	for _, fi := range lagging {
		// Skip files that are mid-update (their update entry triggers a
		// restore instead).
		if s.hasUpdateEntry(fi.path) {
			continue
		}
		if !s.physExists(fi.path) {
			// Cold start: the bytes for the newer version are gone. Adopt the
			// archive's newest version as the current one.
			if err := s.reconcileVersionDown(fi, rep); err != nil {
				return err
			}
			continue
		}
		if err := s.archiveCurrent(fi.path, fi.version, s.cfg.Host.StateID()); err != nil {
			return err
		}
		rep.ArchivedVersions = append(rep.ArchivedVersions, fmt.Sprintf("%s@v%d", fi.path, fi.version))
	}
	return nil
}

// archiveCurrent archives the file's current content as the given version
// via a manifest snapshot. A stale-version rejection is benign here: an
// archiver goroutine that survived the simulated crash may have completed
// the same version concurrently — the copy is already on the device.
func (s *Server) archiveCurrent(path string, ver archive.Version, stateID uint64) error {
	snap, err := s.cfg.Phys.SnapshotFile(path)
	if err != nil {
		return err
	}
	_, err = s.cfg.Archive.PutSnapshot(s.cfg.Name, path, ver, stateID, snap)
	snap.Release()
	if err != nil && !errors.Is(err, archive.ErrStale) {
		return err
	}
	return nil
}

// recoverInFlightUpdates rolls back updates caught open by the crash.
func (s *Server) recoverInFlightUpdates(rep *RecoveryReport) error {
	for _, path := range s.UpdatesInFlight() {
		if err := s.restoreLastCommitted(path); err != nil {
			return err
		}
		rep.RestoredFiles = append(rep.RestoredFiles, path)
	}
	return nil
}

// reestablishLinkStates restores at-rest ownership/permissions for every
// linked file (idempotent; cleans up interrupted takeovers).
func (s *Server) reestablishLinkStates() error {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return err
	}
	var all []fileInfo
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		all = append(all, decodeFileRow(row))
		return true
	})
	for _, fi := range all {
		if err := s.restoreLinkState(fi.path, fi); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// Reported as lost by the materialize pass; nothing at rest
				// to re-establish.
				continue
			}
			return err
		}
	}
	return nil
}
