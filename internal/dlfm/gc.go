package dlfm

import (
	"strconv"
	"strings"
	"time"

	"datalinks/internal/fs"
)

// Quarantine garbage collection. Rolled-back and crash-recovered update
// transactions move their in-flight content to the quarantine directory
// (§4.2) for possible manual recovery; without expiry those files accumulate
// forever — one per abort — and cap how long a server can run. When
// Config.QuarantineTTL is set, quarantined files older than the TTL (by file
// mtime, which the manifest-swap write stamps from the shared clock) are
// deleted, either by the background sweeper (Config.GCInterval) or by an
// explicit SweepQuarantine call.

// seedQuarantineSeq advances the quarantine-name sequence counter past any
// surviving quarantine files: a recovered server restarts the in-memory
// counter, and under a frozen or coarse clock a post-crash rollback could
// otherwise regenerate a pre-crash name and overwrite its content. Names end
// in ".<seq>"; non-conforming entries are ignored.
func (s *Server) seedQuarantineSeq() {
	names, err := s.cfg.Phys.ReadDir(s.cfg.Quarantine)
	if err != nil {
		return
	}
	var max uint64
	for _, name := range names {
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			continue
		}
		if seq, err := strconv.ParseUint(name[i+1:], 10, 64); err == nil && seq > max {
			max = seq
		}
	}
	s.qseq.Store(max)
}

// quarantineGCLoop sweeps expired quarantine files until Close.
func (s *Server) quarantineGCLoop(interval time.Duration) {
	defer s.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.SweepQuarantine()
		case <-s.gcStop:
			return
		}
	}
}

// SweepQuarantine deletes quarantined files older than the configured TTL,
// returning how many it expired. A zero TTL never expires anything.
func (s *Server) SweepQuarantine() int {
	ttl := s.cfg.QuarantineTTL
	if ttl <= 0 {
		return 0
	}
	names, err := s.cfg.Phys.ReadDir(s.cfg.Quarantine)
	if err != nil {
		return 0
	}
	now := s.cfg.Clock()
	expired := 0
	for _, name := range names {
		p := s.cfg.Quarantine + "/" + name
		node, err := s.cfg.Phys.Lookup(p)
		if err != nil {
			continue
		}
		attr, err := s.cfg.Phys.Getattr(node)
		if err != nil || attr.Type == fs.TypeDir {
			continue
		}
		if now.Sub(attr.Mtime) <= ttl {
			continue
		}
		if err := s.cfg.Phys.Remove(p, rootCred); err == nil {
			expired++
		}
	}
	if expired > 0 {
		s.cfg.Metrics.Counter("dlfm.quarantine.expired").Add(int64(expired))
	}
	return expired
}

// QuarantinedFiles lists the current quarantine directory (status tooling
// and tests).
func (s *Server) QuarantinedFiles() []string {
	names, err := s.cfg.Phys.ReadDir(s.cfg.Quarantine)
	if err != nil {
		return nil
	}
	return names
}
