package dlfm

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/obs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// The update-in-place algorithm (§4): a file's open-for-write begins a
// file-update transaction and its close commits it. The commit is a
// two-phase commit between the DLFM repository (version bookkeeping) and the
// host database (automatic size/mtime metadata update, §4.3). Abort — or a
// crash — restores the last committed version from the archive and moves the
// in-flight content to a quarantine directory (§4.2).

// writeOpen handles the fs_open upcall for write access. For rfd files DLFS
// reaches here only after the native open failed with EACCES (the file was
// made read-only at link time) — the paper's lazy path that keeps unlinked
// and read traffic free of upcalls.
func (s *Server) writeOpen(ctx context.Context, req upcall.Request) upcall.Response {
	fi, linked := s.lookupFile(req.Path)
	if !linked {
		return reject(upcall.CodeNotLinked, req.Path+" is not linked")
	}
	if !fi.mode.UpdateManaged() {
		// rfb/rdb block writes entirely; rff writes never reach DLFM.
		return reject(upcall.CodePermission,
			fmt.Sprintf("%s is linked in %s mode: writes are blocked", req.Path, fi.mode))
	}
	grant, ok := s.tokenGrant(fs.UID(req.UID), req.Path)
	if !ok || !grant.typ.Covers(token.Write) {
		return reject(upcall.CodePermission, "no valid write token entry for "+req.Path)
	}

	sh, idx := s.pathShard(req.Path)
	sh.mu.Lock()
	// Wait until no conflicting open and no pending archive (§4.4: "any new
	// update request to the file is blocked until the archiving completes").
	pred := func(st *syncState) bool { return st.writer == 0 }
	if fi.mode.FullControl() {
		// rdd: readers also serialize against the writer.
		pred = func(st *syncState) bool { return st.writer == 0 && len(st.readers) == 0 }
	}
	lk := obs.SpanFrom(ctx).Child("lock")
	lk.SetAttr("path", req.Path)
	if !s.waitLocked(sh, req.Path, pred) {
		lk.SetAttr("timeout", true)
		lk.End()
		sh.mu.Unlock()
		return reject(upcall.CodeBusy, req.Path+" is busy (open or archiving)")
	}
	lk.End()
	id := s.newOpenLocked(sh, idx, req.Path, fs.UID(req.UID), true)
	st := s.syncFor(sh, req.Path)
	st.writer = id
	sh.mu.Unlock()

	// Durable update entry before the open is approved (§4.4): after a crash
	// this row is how recovery knows a restore is needed.
	if _, err := s.repo.Exec(`INSERT INTO dlfm_updates (path, open_id) VALUES (?, ?)`,
		sqlmini.Str(req.Path), sqlmini.Int(int64(id))); err != nil {
		s.dropOpen(id)
		return reject(upcall.CodeInternal, "update entry: "+err.Error())
	}

	// Take over the file for the duration of the update (§4.2): DLFM becomes
	// the owner with exclusive access, so native reads fail during the
	// window — read-write serialization without read locks in rfd mode.
	if err := s.takeOver(req.Path); err != nil {
		s.clearUpdateEntry(req.Path)
		s.dropOpen(id)
		return reject(upcall.CodeInternal, "takeover: "+err.Error())
	}
	s.cfg.Metrics.Counter("dlfm.open.write").Inc()
	return upcall.Response{OK: true, OpenID: id, TakeOver: true}
}

// takeOver makes DLFM the exclusive owner of the file.
func (s *Server) takeOver(path string) error {
	node, err := s.cfg.Phys.Lookup(path)
	if err != nil {
		return err
	}
	attr, err := s.cfg.Phys.Getattr(node)
	if err != nil {
		return err
	}
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	if _, ok := sh.takeovers[path]; !ok {
		sh.takeovers[path] = &takeoverState{origUID: attr.UID, origMode: attr.Mode}
	}
	sh.mu.Unlock()
	if err := s.cfg.Phys.Chown(node, rootCred, s.cfg.UID); err != nil {
		return err
	}
	return s.cfg.Phys.Chmod(node, rootCred, 0o600)
}

// releaseTakeover restores the at-rest linked state after an update ends.
func (s *Server) releaseTakeover(path string, fi fileInfo) error {
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	delete(sh.takeovers, path)
	sh.mu.Unlock()
	return s.restoreLinkState(path, fi)
}

// dropOpen discards open and sync state for an open id, waking only the
// opens parked on that path. (An open id lives in its path's shard, so one
// lock covers both.)
func (s *Server) dropOpen(id uint64) {
	sh := s.openShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.opens[id]
	if !ok {
		return
	}
	delete(sh.opens, id)
	if sy, ok := sh.syncs[st.path]; ok {
		delete(sy.readers, id)
		if sy.writer == id {
			sy.writer = 0
		}
		sy.wake()
		if sy.idle() {
			delete(sh.syncs, st.path)
		}
	}
}

// clearUpdateEntry removes the durable update row for a path.
func (s *Server) clearUpdateEntry(path string) {
	_, _ = s.repo.Exec(`DELETE FROM dlfm_updates WHERE path = ?`, sqlmini.Str(path))
}

// closeFile handles the fs_close upcall — end transaction for write opens.
func (s *Server) closeFile(ctx context.Context, req upcall.Request) upcall.Response {
	sh := s.openShardOf(req.OpenID)
	sh.mu.Lock()
	st, ok := sh.opens[req.OpenID]
	sh.mu.Unlock()
	if !ok {
		return reject(upcall.CodeInternal, fmt.Sprintf("unknown open id %d", req.OpenID))
	}
	if !st.write {
		s.dropOpen(st.id)
		s.cfg.Metrics.Counter("dlfm.close.read").Inc()
		return upcall.Response{OK: true}
	}
	if err := s.commitUpdate(ctx, st, req.Size, time.Unix(0, req.Mtime)); err != nil {
		if errors.Is(err, ErrReplicationQuorum) {
			// The commit point passed — host metadata and repository row both
			// carry the new version — but not enough replicas acked it. The
			// close still fails (the application must not treat the write as
			// replicated), yet the content must NOT roll back: restoring the
			// old bytes would diverge from the committed host state. The
			// at-least-once retry discipline already makes "file newer than
			// the last ack" a legal state for the writer to observe.
			return reject(upcall.CodeInternal, "file-update committed but under-replicated: "+err.Error())
		}
		// The close fails and the update rolls back — the application sees
		// the error from close(2), matching "processing of file close
		// request fails [⇒] the update operation is rolled back".
		if rbErr := s.rollbackUpdate(st); rbErr != nil {
			return reject(upcall.CodeInternal,
				fmt.Sprintf("close failed (%v) and rollback failed (%v)", err, rbErr))
		}
		return reject(upcall.CodeInternal, "file-update transaction aborted: "+err.Error())
	}
	s.cfg.Metrics.Counter("dlfm.close.write").Inc()
	return upcall.Response{OK: true}
}

// updateSub is the DLFM side of a file-update transaction's 2PC: a repo
// transaction that prepares/commits/aborts with the host metadata update.
type updateSub struct {
	s    *Server
	repo *sqlmini.Txn
	path string
	ver  int64
}

// XRMName identifies the sub-transaction participant.
func (u *updateSub) XRMName() string { return "dlfm-update:" + u.s.cfg.Name }

// PrepareXRM journals the host binding, then prepares the repo transaction.
func (u *updateSub) PrepareXRM(hostTxn uint64) error {
	_, err := u.repo.Exec(
		`INSERT INTO dlfm_txns (id, repo_txn, host_txn, action, path, orig_uid, orig_mode, recovery)
		 VALUES (?, ?, ?, 'close', ?, 0, 0, FALSE)`,
		sqlmini.Int(u.s.journalID()), sqlmini.Int(int64(u.repo.ID())),
		sqlmini.Int(int64(hostTxn)), sqlmini.Str(u.path))
	if err != nil {
		return err
	}
	return u.repo.Prepare()
}

// CommitXRM commits the repository half.
func (u *updateSub) CommitXRM(hostTxn uint64) error {
	err := u.repo.Commit()
	u.s.cleanupJournal(hostTxn)
	return err
}

// AbortXRM rolls the repository half back.
func (u *updateSub) AbortXRM(hostTxn uint64) error {
	err := u.repo.Abort()
	u.s.cleanupJournal(hostTxn)
	return err
}

// commitUpdate runs the file-update commit protocol for a closing write open.
func (s *Server) commitUpdate(ctx context.Context, st *openState, size int64, mtime time.Time) error {
	fi, linked := s.lookupFile(st.path)
	if !linked {
		return fmt.Errorf("dlfm: %s no longer linked", st.path)
	}
	// Modification detection via mtime (§4.4).
	node, err := s.cfg.Phys.Lookup(st.path)
	if err != nil {
		return err
	}
	attr, err := s.cfg.Phys.Getattr(node)
	if err != nil {
		return err
	}
	modified := !attr.Mtime.Equal(st.mtime)
	if !modified {
		// Nothing to commit: drop the update entry locally.
		s.clearUpdateEntry(st.path)
		if err := s.releaseTakeover(st.path, fi); err != nil {
			return err
		}
		s.dropOpen(st.id)
		s.cfg.Metrics.Counter("dlfm.close.unmodified").Inc()
		return nil
	}

	newVer := int64(fi.version) + 1
	sub := &updateSub{s: s, repo: s.repo.Begin(), path: st.path, ver: newVer}
	if _, err := sub.repo.Exec(`UPDATE dlfm_files SET cur_version = ? WHERE path = ?`,
		sqlmini.Int(newVer), sqlmini.Str(st.path)); err != nil {
		sub.repo.Abort()
		return err
	}
	if _, err := sub.repo.Exec(`DELETE FROM dlfm_updates WHERE path = ?`,
		sqlmini.Str(st.path)); err != nil {
		sub.repo.Abort()
		return err
	}

	// Two-phase commit with the host database: the metadata update (§4.3)
	// and the repository changes share one fate.
	tp := obs.SpanFrom(ctx).Child("2pc")
	stateID, err := s.cfg.Host.MetaUpdate(s.cfg.Name, st.path, size, mtime, sub)
	tp.End()
	if err != nil {
		// The host aborted; AbortXRM already rolled the repo txn back.
		return fmt.Errorf("metadata update failed: %w", err)
	}

	// Commit point passed. Record the committed-but-unarchived version, then
	// archive asynchronously (§4.4).
	if _, err := s.repo.Exec(`INSERT INTO dlfm_pending_archive (path, version, state_id) VALUES (?, ?, ?)`,
		sqlmini.Str(st.path), sqlmini.Int(newVer), sqlmini.Int(int64(stateID))); err != nil {
		return err
	}
	s.startArchive(ctx, st.path, archive.Version(newVer), stateID)

	// Ship the committed version to the path's ring successors before the
	// close returns — the synchronous half of the replication stream. The
	// content is stable until dropOpen releases the writer, so the snapshot
	// here is exactly the committed state. A quorum failure surfaces as
	// ErrReplicationQuorum after local bookkeeping completes; closeFile
	// rejects the close without rolling back.
	var shipErr error
	if r := s.replicator(); r != nil {
		shipErr = func() error {
			meta := ReplicaMeta{Mode: fi.mode, Recovery: fi.recovery, TokenTTL: fi.tokenTTL,
				OrigUID: fi.origUID, OrigMode: fi.origMode}
			snap, err := s.cfg.Phys.SnapshotFile(st.path)
			if err != nil {
				return err
			}
			defer snap.Release()
			return r.ShipCommit(ctx, st.path, newVer, stateID, snap, size, attr.Mtime, meta)
		}()
	}

	if err := s.releaseTakeover(st.path, fi); err != nil {
		return err
	}
	s.dropOpen(st.id)
	s.cfg.Metrics.Counter("dlfm.versions.committed").Inc()
	if shipErr != nil {
		s.cfg.Metrics.Counter("dlfm.repl.quorum_failures").Inc()
		return fmt.Errorf("%w: %v", ErrReplicationQuorum, shipErr)
	}
	return nil
}

// startArchive snapshots the file content and archives it in the background.
// New update opens of the path block until the job finishes (§4.4). The
// snapshot is an O(#chunks) manifest grab, and the archive stores only the
// chunks this version changed — commit cost is O(delta), not O(file size).
//
// The "archive" span is opened synchronously — it is part of the commit
// trace even though the trace's root finishes before the job does (the
// paper's async-archive design). It ends when the job completes, carrying
// the archive-barrier/fsync spans from PutSnapshotCtx underneath it.
func (s *Server) startArchive(ctx context.Context, path string, ver archive.Version, stateID uint64) {
	arch := obs.SpanFrom(ctx).Child("archive")
	arch.SetAttr("version", int64(ver))
	snap, err := s.cfg.Phys.SnapshotFile(path)
	if err != nil {
		snap = nil
	}
	lk := arch.Child("lock")
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	s.syncFor(sh, path).archiving = true
	sh.mu.Unlock()
	lk.End()
	s.archJobs.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer arch.End()
		defer func() {
			sh.mu.Lock()
			if sy, ok := sh.syncs[path]; ok {
				sy.archiving = false
				sy.wake()
				if sy.idle() {
					delete(sh.syncs, path)
				}
			}
			sh.mu.Unlock()
			s.archJobs.Add(-1)
		}()
		// A simulated machine crash (CrashRepo) can race this job; the
		// repository rejects writes after the crash, which surfaces as a
		// panic from the closed WAL. That is the "archiver died mid-job"
		// case the durable pending-archive row exists for — recovery
		// completes the copy. Absorb it here like the process death it is.
		defer func() {
			if recover() != nil {
				s.cfg.Metrics.Counter("dlfm.archive.interrupted").Inc()
			}
		}()
		if snap == nil {
			s.cfg.Metrics.Counter("dlfm.archive.errors").Inc()
			return
		}
		st, err := s.cfg.Archive.PutSnapshotCtx(
			obs.ContextWithSpan(context.Background(), arch), s.cfg.Name, path, ver, stateID, snap)
		snap.Release()
		if err != nil {
			s.cfg.Metrics.Counter("dlfm.archive.errors").Inc()
			return
		}
		s.cfg.Metrics.Counter("dlfm.archive.bytes_new").Add(st.NewBytes)
		s.cfg.Metrics.Counter("dlfm.archive.bytes_deduped").Add(st.DedupedBytes)
		s.cfg.Metrics.Counter("dlfm.archive.chunks_shared").Add(int64(st.SharedChunks))
		_, _ = s.repo.Exec(`DELETE FROM dlfm_pending_archive WHERE path = ?`, sqlmini.Str(path))
		s.cfg.Metrics.Counter("dlfm.archive.jobs").Inc()
	}()
}

// WaitArchives blocks until all in-flight archive jobs complete (tests and
// orderly shutdown).
func (s *Server) WaitArchives() {
	for s.archJobs.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
}

// AbortUpdate explicitly rolls back an in-flight update transaction: the
// last committed version is restored and the in-flight content quarantined.
// Exposed to the engine/core layer; a crash takes the same path in recovery.
func (s *Server) AbortUpdate(openID uint64) error {
	sh := s.openShardOf(openID)
	sh.mu.Lock()
	st, ok := sh.opens[openID]
	sh.mu.Unlock()
	if !ok || !st.write {
		return fmt.Errorf("dlfm: open %d is not an in-flight update", openID)
	}
	return s.rollbackUpdate(st)
}

// AbortUpdateByPath rolls back the in-flight update transaction on a path.
func (s *Server) AbortUpdateByPath(path string) error {
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	var st *openState
	if sy, ok := sh.syncs[path]; ok && sy.writer != 0 {
		st = sh.opens[sy.writer]
	}
	sh.mu.Unlock()
	if st == nil {
		return fmt.Errorf("dlfm: no update in flight on %s", path)
	}
	return s.rollbackUpdate(st)
}

// rollbackUpdate implements §4.2's failure path for one open.
func (s *Server) rollbackUpdate(st *openState) error {
	err := s.restoreLastCommitted(st.path)
	s.dropOpen(st.id)
	return err
}

// restoreLastCommitted quarantines the in-flight content of path and
// restores the newest archived version. Also used by restart recovery. Both
// moves are manifest swaps: the quarantine copy shares its chunks with the
// in-flight file, and the restore shares its chunks with the archive.
func (s *Server) restoreLastCommitted(path string) error {
	fi, linked := s.lookupFile(path)
	if !linked {
		return fmt.Errorf("dlfm: %s not linked", path)
	}
	// Quarantine the in-flight version (§4.2). The name embeds the path
	// percent-escaped — an injective encoding, so /a/b_c and /a_b/c can
	// never map to the same quarantine file — plus a server-wide monotonic
	// sequence number, so two rollbacks in the same clock tick (frozen test
	// clocks, coarse clocks) cannot overwrite each other either. The
	// timestamp stays in the name for operators; expiry uses file mtime.
	current, err := s.cfg.Phys.SnapshotFile(path)
	switch {
	case err == nil:
		qname := fmt.Sprintf("%s/%s.%d.%06d", s.cfg.Quarantine,
			url.PathEscape(strings.TrimPrefix(path, "/")),
			s.cfg.Clock().UnixNano(), s.qseq.Add(1))
		err = s.cfg.Phys.WriteFileSnapshot(qname, current)
		current.Release()
		if err != nil {
			return err
		}
	case errors.Is(err, fs.ErrNotExist):
		// Cold start: the in-flight bytes died with the machine, so there is
		// nothing to quarantine — only the committed version to bring back.
	default:
		return err
	}
	// Restore the last committed version from the archive (paging its
	// chunks back in from the disk tier if they were spilled).
	entry, err := s.cfg.Archive.Latest(s.cfg.Name, path)
	if err != nil {
		return fmt.Errorf("dlfm: no archived version of %s to restore: %w", path, err)
	}
	snap, err := entry.Snapshot()
	if err != nil {
		return fmt.Errorf("dlfm: materialize %s v%d: %w", path, entry.Version, err)
	}
	err = s.writeRestored(path, snap)
	snap.Release()
	if err != nil {
		return err
	}
	s.clearUpdateEntry(path)
	if err := s.releaseTakeover(path, fi); err != nil {
		return err
	}
	s.cfg.Metrics.Counter("dlfm.restores").Inc()
	return nil
}

// RestoreAsOf restores every linked, recovery-enabled file to the newest
// version whose database state identifier is <= stateID, discarding newer
// versions — the file half of coordinated point-in-time restore (§4.4).
func (s *Server) RestoreAsOf(stateID uint64) error {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return err
	}
	type target struct {
		fi fileInfo
	}
	var targets []target
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		fi := decodeFileRow(row)
		if fi.recovery {
			targets = append(targets, target{fi: fi})
		}
		return true
	})
	for _, t := range targets {
		entry, err := s.cfg.Archive.AsOf(s.cfg.Name, t.fi.path, stateID)
		if err != nil {
			return fmt.Errorf("dlfm: restore %s as of %d: %w", t.fi.path, stateID, err)
		}
		snap, err := entry.Snapshot()
		if err != nil {
			return fmt.Errorf("dlfm: materialize %s v%d: %w", t.fi.path, entry.Version, err)
		}
		err = s.cfg.Phys.WriteFileSnapshot(t.fi.path, snap)
		snap.Release()
		if err != nil {
			return err
		}
		if err := s.cfg.Archive.TruncateAfter(s.cfg.Name, t.fi.path, stateID); err != nil {
			return fmt.Errorf("dlfm: truncate archive of %s: %w", t.fi.path, err)
		}
		if _, err := s.repo.Exec(`UPDATE dlfm_files SET cur_version = ? WHERE path = ?`,
			sqlmini.Int(int64(entry.Version)), sqlmini.Str(t.fi.path)); err != nil {
			return err
		}
		if err := s.restoreLinkState(t.fi.path, t.fi); err != nil {
			return err
		}
	}
	return nil
}

// UpdatesInFlight reports paths with durable update entries (status tooling).
func (s *Server) UpdatesInFlight() []string {
	tbl, err := s.repo.Table("dlfm_updates")
	if err != nil {
		return nil
	}
	var out []string
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		out = append(out, row[0].S)
		return true
	})
	return out
}
