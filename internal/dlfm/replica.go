package dlfm

// Shard replication: the DLFM half of ring-successor replication. A replica
// holds a path's full archive history (shipped version by version at the
// commit barrier) plus one dlfm_replicas repository row carrying the identity
// needed to promote — but no physical file and no dlfm_files row, so the
// linked-file namespace, rebalance, and recovery scans never see replicas.
// Promotion (failover) materializes the latest archived content exactly like
// a shard import and moves the row into dlfm_files; from that instant the
// path serves again with no cold start and no data movement.
//
// The owner side is a Replicator installed by the cluster layer after the
// stack is built: commitUpdate, link, and unlink call it synchronously inside
// their commit windows, so a quorum of replicas has acked a version before
// the application's close returns.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/extent"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// ReplicaMeta is the identity a replica must carry to promote a path: the
// dlfm_files columns that are not derivable from the archive history.
type ReplicaMeta struct {
	Mode     datalink.ControlMode
	Recovery bool
	TokenTTL int
	OrigUID  fs.UID
	OrigMode fs.FileMode
}

// Replicator ships owner-side mutations to the path's ring successors. The
// cluster layer installs one per server with SetReplicator; a nil replicator
// (the default, and Replicas=1) makes every ship a no-op. ShipCommit returns
// nil once a write quorum of replicas has acked; its error means the quorum
// was NOT reached — the version is committed locally but under-replicated.
type Replicator interface {
	ShipCommit(ctx context.Context, path string, ver int64, stateID uint64, snap *extent.Snapshot, size int64, mtime time.Time, meta ReplicaMeta) error
	ShipUnlink(path string) error
}

// ErrReplicationQuorum reports a commit that is durable and visible on the
// owner but did not reach its write quorum of replicas. The close that
// carried it is rejected WITHOUT rolling the file back: the host database
// already committed the version, so the content must stay (the same
// "newer than the ack is legal" rule at-least-once retries rely on).
var ErrReplicationQuorum = errors.New("dlfm: replication quorum not reached")

// ErrReplicaLag reports a shipped version that does not directly extend the
// replica's history — the replica missed one or more earlier versions and
// must be caught up (archive.ExportDelta/ImportDelta) before this frame can
// apply.
var ErrReplicaLag = errors.New("dlfm: replica history lags")

// ErrNoReplica reports a promotion target this server holds no replica for.
var ErrNoReplica = errors.New("dlfm: no replica held")

// replicatorBox wraps the interface so the holder can be swapped atomically.
type replicatorBox struct{ r Replicator }

// SetReplicator installs (or clears, with nil) the owner-side replicator.
// Safe to call while traffic is running.
func (s *Server) SetReplicator(r Replicator) {
	s.repl.Store(&replicatorBox{r: r})
}

// replicator returns the installed replicator, or nil.
func (s *Server) replicator() Replicator {
	if b := s.repl.Load(); b != nil {
		return b.r
	}
	return nil
}

// replicaInfo is the decoded dlfm_replicas row.
type replicaInfo struct {
	path    string
	meta    ReplicaMeta
	version int64
	mtime   time.Time
}

func decodeReplicaRow(row sqlmini.Row) replicaInfo {
	mode, _ := datalink.ParseMode(row[1].S)
	return replicaInfo{
		path: row[0].S,
		meta: ReplicaMeta{
			Mode:     mode,
			Recovery: row[2].B,
			TokenTTL: int(row[3].I),
			OrigUID:  fs.UID(row[4].I),
			OrigMode: fs.FileMode(row[5].I),
		},
		version: row[6].I,
		mtime:   time.Unix(0, row[7].I),
	}
}

// replicaRow reads a path's dlfm_replicas row outside any transaction.
func (s *Server) replicaRow(path string) (replicaInfo, bool) {
	tbl, err := s.repo.Table("dlfm_replicas")
	if err != nil {
		return replicaInfo{}, false
	}
	id, ok := tbl.LookupPK(sqlmini.Str(path))
	if !ok {
		return replicaInfo{}, false
	}
	row, ok := tbl.Get(id)
	if !ok {
		return replicaInfo{}, false
	}
	return decodeReplicaRow(row), true
}

// ReplicaPaths lists every path this server holds a replica for, sorted.
func (s *Server) ReplicaPaths() []string {
	tbl, err := s.repo.Table("dlfm_replicas")
	if err != nil {
		return nil
	}
	var out []string
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		out = append(out, row[0].S)
		return true
	})
	sort.Strings(out)
	return out
}

// ReplicaVersion returns the version the replica row has acked for path,
// or -1 if no replica is held.
func (s *Server) ReplicaVersion(path string) int64 {
	ri, ok := s.replicaRow(path)
	if !ok {
		return -1
	}
	return ri.version
}

// FileMeta returns the promotion identity, current version, and physical
// mtime of a path linked on this server — the owner-side inputs to a ship.
func (s *Server) FileMeta(path string) (ReplicaMeta, int64, time.Time, error) {
	fi, ok := s.lookupFile(path)
	if !ok {
		return ReplicaMeta{}, 0, time.Time{}, fmt.Errorf("%w: %s", ErrNotLinked, path)
	}
	node, err := s.cfg.Phys.Lookup(path)
	if err != nil {
		return ReplicaMeta{}, 0, time.Time{}, err
	}
	attr, err := s.cfg.Phys.Getattr(node)
	if err != nil {
		return ReplicaMeta{}, 0, time.Time{}, err
	}
	meta := ReplicaMeta{
		Mode:     fi.mode,
		Recovery: fi.recovery,
		TokenTTL: fi.tokenTTL,
		OrigUID:  fi.origUID,
		OrigMode: fi.origMode,
	}
	return meta, int64(fi.version), attr.Mtime, nil
}

// ApplyReplicaCommit lands one shipped version on this server as a replica:
// the content goes into the archive (a delta against the predecessor this
// replica already holds), the dlfm_replicas row advances. Idempotent — a
// re-shipped frame whose ack was lost returns nil without re-applying.
// ErrReplicaLag means the frame does not directly extend the local history;
// the shipper must catch this replica up first.
func (s *Server) ApplyReplicaCommit(path string, ver int64, stateID uint64, snap *extent.Snapshot, mtime time.Time, meta ReplicaMeta) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("dlfm: replica apply %s: server %s closed", path, s.cfg.Name)
	}
	if _, linked := s.lookupFile(path); linked {
		return fmt.Errorf("dlfm: replica apply %s: path is owned by %s", path, s.cfg.Name)
	}
	vs := s.cfg.Archive.Versions(s.cfg.Name, path)
	last := int64(-1)
	if len(vs) > 0 {
		last = int64(vs[len(vs)-1].Version)
	}
	switch {
	case last >= ver:
		// Already archived — only the ack was lost. Fall through to make
		// sure the row reflects it.
	case last < ver-1:
		return fmt.Errorf("%w: %s: have %d, shipped %d", ErrReplicaLag, path, last, ver)
	default:
		if _, err := s.cfg.Archive.PutSnapshot(s.cfg.Name, path, archive.Version(ver), stateID, snap); err != nil && !errors.Is(err, archive.ErrStale) {
			return fmt.Errorf("dlfm: replica archive %s: %w", path, err)
		}
	}
	if err := s.EnsureReplicaRow(path, ver, mtime, meta); err != nil {
		return err
	}
	s.cfg.Metrics.Counter("dlfm.repl.applied").Inc()
	return nil
}

// EnsureReplicaRow upserts the dlfm_replicas row for path at version ver.
// Rows never move backwards: a stale frame leaves a newer row untouched.
func (s *Server) EnsureReplicaRow(path string, ver int64, mtime time.Time, meta ReplicaMeta) error {
	if ri, ok := s.replicaRow(path); ok {
		if ri.version >= ver {
			return nil
		}
		if _, err := s.repo.Exec(`DELETE FROM dlfm_replicas WHERE path = ?`, sqlmini.Str(path)); err != nil {
			return fmt.Errorf("dlfm: replica row %s: %w", path, err)
		}
	}
	if _, err := s.repo.Exec(
		`INSERT INTO dlfm_replicas (path, mode, recovery, token_ttl, orig_uid, orig_mode, cur_version, mtime_ns)
		 VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
		sqlmini.Str(path), sqlmini.Str(meta.Mode.String()), sqlmini.Bool(meta.Recovery),
		sqlmini.Int(int64(meta.TokenTTL)), sqlmini.Int(int64(meta.OrigUID)), sqlmini.Int(int64(meta.OrigMode)),
		sqlmini.Int(ver), sqlmini.Int(mtime.UnixNano())); err != nil {
		return fmt.Errorf("dlfm: replica row %s: %w", path, err)
	}
	return nil
}

// ApplyReplicaUnlink removes a replica after the owner unlinked the path:
// row and archive history both go (unlink semantics — §4.2's unlink restores
// the file to the user and the database forgets it).
func (s *Server) ApplyReplicaUnlink(path string) error {
	if _, err := s.repo.Exec(`DELETE FROM dlfm_replicas WHERE path = ?`, sqlmini.Str(path)); err != nil {
		return fmt.Errorf("dlfm: replica unlink %s: %w", path, err)
	}
	if err := s.cfg.Archive.Drop(s.cfg.Name, path); err != nil {
		return fmt.Errorf("dlfm: replica unlink %s: %w", path, err)
	}
	return nil
}

// DropReplica discards a replica this server should no longer hold (the
// successor set moved away from it). Identical mechanics to unlink-apply,
// counted separately for the anti-entropy pass.
func (s *Server) DropReplica(path string) error {
	if err := s.ApplyReplicaUnlink(path); err != nil {
		return err
	}
	s.cfg.Metrics.Counter("dlfm.repl.dropped").Inc()
	return nil
}

// PromoteReplica turns a replica into the served copy: latest archived
// content is materialized with the stored identity and mtime (the same
// sequence as a shard import — mtime last, because modification detection
// compares against it at the next write open), the dlfm_files row appears,
// and the replica row is retired. No upcall to the old owner, no archive
// transfer: everything needed is already local.
func (s *Server) PromoteReplica(path string) error {
	ri, ok := s.replicaRow(path)
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNoReplica, path, s.cfg.Name)
	}
	if _, linked := s.lookupFile(path); linked {
		return fmt.Errorf("%w: promote %s", ErrAlreadyLinked, path)
	}
	entry, err := s.cfg.Archive.Latest(s.cfg.Name, path)
	if err != nil {
		return fmt.Errorf("dlfm: promote %s: no archived content: %w", path, err)
	}
	snap, err := entry.Snapshot()
	if err != nil {
		return fmt.Errorf("dlfm: promote %s: %w", path, err)
	}
	defer snap.Release()
	b := &FileBundle{
		Path:     path,
		Mode:     ri.meta.Mode,
		Recovery: ri.meta.Recovery,
		TokenTTL: ri.meta.TokenTTL,
		OrigUID:  ri.meta.OrigUID,
		OrigMode: ri.meta.OrigMode,
		Version:  int64(entry.Version),
		Content:  snap,
		Mtime:    ri.mtime,
	}
	if err := s.ImportBundle(b); err != nil {
		return fmt.Errorf("dlfm: promote %s: %w", path, err)
	}
	if _, err := s.repo.Exec(`DELETE FROM dlfm_replicas WHERE path = ?`, sqlmini.Str(path)); err != nil {
		return fmt.Errorf("dlfm: promote %s: %w", path, err)
	}
	s.cfg.Metrics.Counter("dlfm.repl.promotions").Inc()
	return nil
}

// ReadReplica materializes the latest replicated content of path — the
// stale-bounded read served when the owner is partitioned and the cluster
// allows replica reads. The staleness bound is the replication lag: at most
// the versions the owner committed after this replica's last acked frame.
func (s *Server) ReadReplica(path string) ([]byte, error) {
	if _, ok := s.replicaRow(path); !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoReplica, path, s.cfg.Name)
	}
	entry, err := s.cfg.Archive.Latest(s.cfg.Name, path)
	if err != nil {
		return nil, fmt.Errorf("dlfm: replica read %s: %w", path, err)
	}
	return entry.Content(), nil
}

// shipCurrent ships the path's current on-disk state at version ver to the
// replica set (no-op without a replicator). Used by link — commit ships are
// issued inline by commitUpdate, which already holds the snapshot inputs.
func (s *Server) shipCurrent(ctx context.Context, path string, ver int64, stateID uint64) error {
	r := s.replicator()
	if r == nil {
		return nil
	}
	meta, _, mtime, err := s.FileMeta(path)
	if err != nil {
		return err
	}
	snap, err := s.cfg.Phys.SnapshotFile(path)
	if err != nil {
		return err
	}
	defer snap.Release()
	return r.ShipCommit(ctx, path, ver, stateID, snap, int64(snap.Len()), mtime, meta)
}
