package dlfm

import (
	"fmt"
	"sort"

	"datalinks/internal/datalink"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// Administrative reconciliation used by coordinated restore (§4.4): after the
// host database has been rewound to an earlier state, the set of files DLFM
// manages must match the references in the restored database — links made
// after the restore point are dissolved, links that existed then are
// re-established. This runs outside 2PC (it is itself part of a restore).

// LinkedPaths lists every path this server manages, sorted. The cluster
// router snapshots it to compute a rebalance work list.
func (s *Server) LinkedPaths() []string {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return nil
	}
	var out []string
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		out = append(out, decodeFileRow(row).path)
		return true
	})
	sort.Strings(out)
	return out
}

// ReconcileLinks makes the repository's linked-file set equal `desired`
// (path -> column options). File permissions are adjusted accordingly.
func (s *Server) ReconcileLinks(desired map[string]datalink.ColumnOptions) error {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return err
	}
	current := make(map[string]fileInfo)
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		fi := decodeFileRow(row)
		current[fi.path] = fi
		return true
	})

	// Dissolve links that should not exist at the restored state.
	for path, fi := range current {
		if _, keep := desired[path]; keep {
			continue
		}
		if _, err := s.repo.Exec(`DELETE FROM dlfm_files WHERE path = ?`, sqlmini.Str(path)); err != nil {
			return err
		}
		s.clearUpdateEntry(path)
		node, err := s.cfg.Phys.Lookup(path)
		if err == nil {
			if err := s.cfg.Phys.Chown(node, rootCred, fi.origUID); err != nil {
				return err
			}
			if err := s.cfg.Phys.Chmod(node, rootCred, fi.origMode); err != nil {
				return err
			}
		}
		s.purgeTokens(path)
	}

	// Re-establish links that the restored database references but the
	// repository lost (e.g. an unlink that committed after the restore
	// point).
	for path, opts := range desired {
		if _, have := current[path]; have {
			continue
		}
		node, err := s.cfg.Phys.Lookup(path)
		if err != nil {
			return fmt.Errorf("dlfm: reconcile: %s referenced by restored database but missing: %w", path, err)
		}
		attr, err := s.cfg.Phys.Getattr(node)
		if err != nil {
			return err
		}
		// Determine the current version from the archive (restored earlier).
		ver := int64(0)
		if vs := s.cfg.Archive.Versions(s.cfg.Name, path); len(vs) > 0 {
			ver = int64(vs[len(vs)-1].Version)
		}
		origUID, origMode := attr.UID, attr.Mode
		if attr.UID == s.cfg.UID {
			// The file is still in its taken-over state from before the
			// restore; we no longer know the original identity unless a
			// version-0 archive entry can tell us. Default to root-owned
			// read-only; the administrator can chown afterwards.
			origUID, origMode = fs.Root, 0o644
		}
		if _, err := s.repo.Exec(
			`INSERT INTO dlfm_files (path, mode, recovery, token_ttl, orig_uid, orig_mode, cur_version)
			 VALUES (?, ?, ?, ?, ?, ?, ?)`,
			sqlmini.Str(path), sqlmini.Str(opts.Mode.String()), sqlmini.Bool(opts.Recovery),
			sqlmini.Int(int64(opts.TokenTTLSecs)), sqlmini.Int(int64(origUID)), sqlmini.Int(int64(origMode)),
			sqlmini.Int(ver)); err != nil {
			return err
		}
		if err := s.applyLinkState(node, opts.Mode); err != nil {
			return err
		}
	}
	return nil
}
