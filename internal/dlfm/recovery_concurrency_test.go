package dlfm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// lockedHost is a goroutine-safe Host for tests that drive parallel commits.
type lockedHost struct {
	mu    sync.Mutex
	inner *fakeHost
}

func (h *lockedHost) MetaUpdate(server, path string, size int64, mtime time.Time, sub sqlmini.XRM) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inner.MetaUpdate(server, path, size, mtime, sub)
}

func (h *lockedHost) TxnOutcome(txnID uint64) (bool, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inner.TxnOutcome(txnID)
}

func (h *lockedHost) StateID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inner.StateID()
}

// writeOpenErr is openWrite without t.Fatal, usable from worker goroutines.
func writeOpenErr(srv *Server, path string, uid fs.UID) (uint64, error) {
	tok := srv.Authority().Issue(token.Write, path)
	resp, err := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: path, Token: tok, UID: int32(uid)})
	if err != nil || !resp.OK {
		return 0, fmt.Errorf("validate %s: %+v %v", path, resp, err)
	}
	resp, err = srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: path, UID: int32(uid), Write: true})
	if err != nil || !resp.OK {
		return 0, fmt.Errorf("write open %s: %+v %v", path, resp, err)
	}
	return resp.OpenID, nil
}

// closeFileErr is closeFile without t.Fatal.
func closeFileErr(srv *Server, phys *fs.FS, path string, openID uint64) error {
	ino, err := phys.Lookup(path)
	if err != nil {
		return err
	}
	attr, err := phys.Getattr(ino)
	if err != nil {
		return err
	}
	resp, err := srv.Upcall(upcall.Request{
		Op: upcall.OpClose, Path: path, OpenID: openID,
		Size: attr.Size, Mtime: attr.Mtime.UnixNano(),
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("close %s rejected: %+v", path, resp)
	}
	return nil
}

// TestCrashRecoveryUnderConcurrentUpdates crashes the DLFM while several
// in-place updates are open in parallel and the background archiver is
// still copying previously committed versions. Restart recovery must bring
// every file back to its last committed content: in-flight updates roll
// back, pending archives complete.
func TestCrashRecoveryUnderConcurrentUpdates(t *testing.T) {
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	// A slow archive device keeps archive jobs of phase A in flight while
	// the crash hits.
	arch := archive.New(3*time.Millisecond, nil)
	host := &lockedHost{inner: newFakeHost()}
	cfg := Config{
		Name:     "fs1",
		Phys:     phys,
		Archive:  arch,
		Host:     host,
		TokenKey: []byte("k"),
		OpenWait: 5 * time.Second,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const files = 6
	committed := make([][]byte, files)
	paths := make([]string, files)
	for i := 0; i < files; i++ {
		paths[i] = fmt.Sprintf("/d/f%d.bin", i)
		seedFile(t, phys, paths[i], fmt.Sprintf("v0 of file %d", i))
		linkCommitted(t, srv, paths[i], "rfd")
		committed[i] = []byte(fmt.Sprintf("v0 of file %d", i))
	}

	// Phase A: parallel committed updates. Each file gets a new committed
	// version; the slow archiver copies them in the background.
	var wg sync.WaitGroup
	errs := make(chan error, files)
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := writeOpenErr(srv, paths[i], owner)
			if err != nil {
				errs <- err
				return
			}
			next := []byte(fmt.Sprintf("committed v1 of file %d, longer than v0", i))
			if err := phys.WriteFile(paths[i], next); err != nil {
				errs <- err
				return
			}
			if err := closeFileErr(srv, phys, paths[i], id); err != nil {
				errs <- err
				return
			}
			committed[i] = next
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase B: open a new update on half the files and scribble without
	// closing — these are the in-flight transactions the crash will catch.
	inFlight := map[string]bool{}
	errs2 := make(chan error, files)
	for i := 0; i < files; i += 2 {
		inFlight[paths[i]] = true
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := writeOpenErr(srv, paths[i], owner)
			if err != nil {
				errs2 <- err
				return
			}
			_ = id // never closed: the crash interrupts this update
			if err := phys.WriteFile(paths[i], []byte(fmt.Sprintf("torn in-flight garbage %d", i))); err != nil {
				errs2 <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}

	// Crash while phase-A archive jobs may still be in flight, then recover.
	durable := srv.CrashRepo()
	srv2, rep, err := Recover(cfg, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer srv2.Close()

	// Every file is back at its last committed content.
	for i := 0; i < files; i++ {
		data, err := phys.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, committed[i]) {
			t.Fatalf("%s after recovery = %q, want %q", paths[i], data, committed[i])
		}
		vs := arch.Versions("fs1", paths[i])
		if len(vs) == 0 {
			t.Fatalf("%s has no archived versions after recovery", paths[i])
		}
		if !bytes.Equal(vs[len(vs)-1].Content(), committed[i]) {
			t.Fatalf("%s newest archive = %q, want committed %q", paths[i], vs[len(vs)-1].Content(), committed[i])
		}
	}
	// The interrupted updates were rolled back by recovery.
	if len(rep.RestoredFiles) != len(inFlight) {
		t.Fatalf("recovery restored %v, want the %d in-flight paths %v", rep.RestoredFiles, len(inFlight), inFlight)
	}
	for _, p := range rep.RestoredFiles {
		if !inFlight[p] {
			t.Fatalf("recovery restored %s which had no in-flight update", p)
		}
	}
	if got := srv2.UpdatesInFlight(); len(got) != 0 {
		t.Fatalf("update entries survive recovery: %v", got)
	}
	// The recovered server accepts a fresh committed update on every file.
	for i := 0; i < files; i++ {
		id, err := writeOpenErr(srv2, paths[i], owner)
		if err != nil {
			t.Fatalf("post-recovery open %s: %v", paths[i], err)
		}
		next := []byte(fmt.Sprintf("post-recovery v2 of file %d", i))
		if err := phys.WriteFile(paths[i], next); err != nil {
			t.Fatal(err)
		}
		if err := closeFileErr(srv2, phys, paths[i], id); err != nil {
			t.Fatalf("post-recovery close %s: %v", paths[i], err)
		}
		data, _ := phys.ReadFile(paths[i])
		if !bytes.Equal(data, next) {
			t.Fatalf("post-recovery update lost on %s", paths[i])
		}
	}
	srv2.WaitArchives()
}
