package dlfm

import (
	"context"
	"errors"
	"fmt"

	"datalinks/internal/datalink"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// Link processing (§2.2): when a reference is inserted into or deleted from
// a DATALINK column, the DataLinks engine directs DLFM to start or stop
// managing the file. The repository changes run in a sub-transaction of the
// host database transaction; file-system side effects are applied eagerly
// and compensated on abort, exactly as the paper describes ("if the SQL
// transaction is rolled back, the changes made by the DLFM are undone").

// Errors surfaced to the engine (which turns them into SQL statement errors).
var (
	ErrAlreadyLinked = errors.New("dlfm: file already linked")
	ErrNotLinked     = errors.New("dlfm: file not linked")
	ErrFileBusy      = errors.New("dlfm: file is open or being updated")
	ErrNoSuchFile    = errors.New("dlfm: no such file on file server")
)

// subFor returns the repository sub-transaction bound to a host transaction,
// creating it on first use.
func (s *Server) subFor(hostTxn uint64) *subTxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.subs[hostTxn]
	if !ok {
		sub = &subTxn{repo: s.repo.Begin()}
		s.subs[hostTxn] = sub
	}
	return sub
}

// journalID allocates a unique id for a dlfm_txns row.
func (s *Server) journalID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextJournal++
	return s.nextJournal
}

// LinkFile starts managing a file as part of host transaction hostTxn.
func (s *Server) LinkFile(hostTxn uint64, path string, opts datalink.ColumnOptions) error {
	tr := s.cfg.Tracer.Start("link")
	tr.Root().SetAttr("path", path)
	err := s.linkFile(hostTxn, path, opts)
	if err != nil {
		tr.Root().SetAttr("error", err.Error())
	}
	tr.Finish()
	return err
}

func (s *Server) linkFile(hostTxn uint64, path string, opts datalink.ColumnOptions) error {
	if !opts.Mode.Linked() {
		return fmt.Errorf("dlfm: mode %s does not link files", opts.Mode)
	}
	node, err := s.cfg.Phys.Lookup(path)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	attr, err := s.cfg.Phys.Getattr(node)
	if err != nil {
		return err
	}
	if attr.Type != fs.TypeFile {
		return fmt.Errorf("dlfm: %s is not a regular file", path)
	}
	// With the strict-link-check extension, opens of unlinked files are
	// registered in the Sync table, so a link of a currently-open file can
	// be detected and rejected — closing the §4.5 window of inconsistency.
	// Without it, the link succeeds and the window exists (the paper's
	// shipped behaviour).
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	if st, ok := sh.syncs[path]; ok && (st.writer != 0 || len(st.readers) > 0) {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s is open", ErrFileBusy, path)
	}
	sh.mu.Unlock()

	sub := s.subFor(hostTxn)
	// Repository insert; the primary key rejects double links.
	_, err = sub.repo.Exec(
		`INSERT INTO dlfm_files (path, mode, recovery, token_ttl, orig_uid, orig_mode, cur_version)
		 VALUES (?, ?, ?, ?, ?, ?, 0)`,
		sqlmini.Str(path), sqlmini.Str(opts.Mode.String()), sqlmini.Bool(opts.Recovery),
		sqlmini.Int(int64(opts.TokenTTLSecs)), sqlmini.Int(int64(attr.UID)), sqlmini.Int(int64(attr.Mode)))
	if err != nil {
		return fmt.Errorf("%w: %s", ErrAlreadyLinked, path)
	}
	// Journal the side effect for 2PC recovery.
	_, err = sub.repo.Exec(
		`INSERT INTO dlfm_txns (id, repo_txn, host_txn, action, path, orig_uid, orig_mode, recovery)
		 VALUES (?, ?, ?, 'link', ?, ?, ?, ?)`,
		sqlmini.Int(s.journalID()), sqlmini.Int(int64(sub.repo.ID())), sqlmini.Int(int64(hostTxn)),
		sqlmini.Str(path), sqlmini.Int(int64(attr.UID)), sqlmini.Int(int64(attr.Mode)), sqlmini.Bool(opts.Recovery))
	if err != nil {
		return err
	}

	// Apply the file-system constraints for the control mode (§2.2, §4).
	if err := s.applyLinkState(node, opts.Mode); err != nil {
		return err
	}
	origUID, origMode := attr.UID, attr.Mode
	sub.comps = append(sub.comps, compensation{
		onAbort: func() error {
			// Undo the takeover / permission change.
			if err := s.cfg.Phys.Chown(node, rootCred, origUID); err != nil {
				return err
			}
			return s.cfg.Phys.Chmod(node, rootCred, origMode)
		},
		onCommit: func() error {
			// Archive the initial version so an aborted first update can be
			// rolled back (§4.2) and point-in-time restore has a floor. The
			// manifest snapshot keeps link cost O(#chunks).
			if opts.Mode.UpdateManaged() || opts.Recovery {
				stateID := s.cfg.Host.StateID()
				shipVer := int64(0)
				if vs := s.cfg.Archive.Versions(s.cfg.Name, path); len(vs) > 0 {
					// Already archived (re-link after restore): the current
					// content is the last archived version, not version 0.
					shipVer = int64(vs[len(vs)-1].Version)
				} else if err := s.archiveCurrent(path, 0, stateID); err != nil {
					return err
				}
				// Replicate the link in the same stream as commits: the
				// successors get the history floor and the promotion
				// identity, so a failover right after link loses nothing.
				return s.shipCurrent(context.Background(), path, shipVer, stateID)
			}
			return nil
		},
	})
	s.cfg.Metrics.Counter("dlfm.link").Inc()
	return nil
}

// applyLinkState sets the ownership and permission bits a control mode
// requires (Table 1 semantics).
func (s *Server) applyLinkState(node *fs.Inode, mode datalink.ControlMode) error {
	switch {
	case mode.FullControl():
		// rdb, rdd: DLFM takes over the file and marks it read-only (§2.2).
		if err := s.cfg.Phys.Chown(node, rootCred, s.cfg.UID); err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, 0o400)
	case mode.Write != datalink.CtlFS:
		// rfb, rfd: ownership unchanged, write permission disabled.
		attr, err := s.cfg.Phys.Getattr(node)
		if err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, attr.Mode&^0o222)
	default:
		// rff: referential integrity only; no permission change.
		return nil
	}
}

// restoreLinkState re-establishes the canonical at-rest state for a linked
// file (used when a write takeover ends, and by recovery). Idempotent.
func (s *Server) restoreLinkState(path string, fi fileInfo) error {
	node, err := s.cfg.Phys.Lookup(path)
	if err != nil {
		return err
	}
	switch {
	case fi.mode.FullControl():
		if err := s.cfg.Phys.Chown(node, rootCred, s.cfg.UID); err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, 0o400)
	case fi.mode.Write != datalink.CtlFS:
		if err := s.cfg.Phys.Chown(node, rootCred, fi.origUID); err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, fi.origMode&^0o222)
	default:
		if err := s.cfg.Phys.Chown(node, rootCred, fi.origUID); err != nil {
			return err
		}
		return s.cfg.Phys.Chmod(node, rootCred, fi.origMode)
	}
}

// UnlinkFile stops managing a file as part of host transaction hostTxn.
// Rejected while the file is open or being updated (§4.5).
func (s *Server) UnlinkFile(hostTxn uint64, path string) error {
	tr := s.cfg.Tracer.Start("unlink")
	tr.Root().SetAttr("path", path)
	err := s.unlinkFile(hostTxn, path)
	if err != nil {
		tr.Root().SetAttr("error", err.Error())
	}
	tr.Finish()
	return err
}

func (s *Server) unlinkFile(hostTxn uint64, path string) error {
	fi, linked := s.lookupFile(path)
	if !linked {
		return fmt.Errorf("%w: %s", ErrNotLinked, path)
	}
	// Synchronization with open files: any Sync entry or update entry
	// rejects the unlink (§4.5).
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	if st, ok := sh.syncs[path]; ok && (st.writer != 0 || len(st.readers) > 0) {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrFileBusy, path)
	}
	sh.mu.Unlock()
	if s.hasUpdateEntry(path) {
		return fmt.Errorf("%w: %s (update in progress)", ErrFileBusy, path)
	}

	sub := s.subFor(hostTxn)
	n, err := sub.repo.Exec(`DELETE FROM dlfm_files WHERE path = ?`, sqlmini.Str(path))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%w: %s", ErrNotLinked, path)
	}
	_, err = sub.repo.Exec(
		`INSERT INTO dlfm_txns (id, repo_txn, host_txn, action, path, orig_uid, orig_mode, recovery)
		 VALUES (?, ?, ?, 'unlink', ?, ?, ?, ?)`,
		sqlmini.Int(s.journalID()), sqlmini.Int(int64(sub.repo.ID())), sqlmini.Int(int64(hostTxn)),
		sqlmini.Str(path), sqlmini.Int(int64(fi.origUID)), sqlmini.Int(int64(fi.origMode)), sqlmini.Bool(fi.recovery))
	if err != nil {
		return err
	}
	// File-system restoration is deferred to commit: the file stays
	// protected if the transaction rolls back.
	sub.comps = append(sub.comps, compensation{
		onCommit: func() error {
			node, err := s.cfg.Phys.Lookup(path)
			if err != nil {
				return err
			}
			if err := s.cfg.Phys.Chown(node, rootCred, fi.origUID); err != nil {
				return err
			}
			if err := s.cfg.Phys.Chmod(node, rootCred, fi.origMode); err != nil {
				return err
			}
			if err := s.cfg.Archive.Drop(s.cfg.Name, path); err != nil {
				return err
			}
			s.purgeTokens(path)
			// Unlink rides the replication stream too: replicas drop their
			// history and row so a later failover cannot resurrect the path.
			if r := s.replicator(); r != nil {
				return r.ShipUnlink(path)
			}
			return nil
		},
	})
	s.cfg.Metrics.Counter("dlfm.unlink").Inc()
	return nil
}

// hasUpdateEntry reports whether a durable update entry exists for path.
func (s *Server) hasUpdateEntry(path string) bool {
	tbl, err := s.repo.Table("dlfm_updates")
	if err != nil {
		return false
	}
	_, ok := tbl.LookupPK(sqlmini.Str(path))
	return ok
}

// purgeTokens drops all token entries for a path. The token table is guarded
// by tokMu (not the open/sync mutex): locking s.mu here raced every
// validate-token upcall.
func (s *Server) purgeTokens(path string) {
	s.tokMu.Lock()
	defer s.tokMu.Unlock()
	for k := range s.tokens {
		if k.path == path {
			delete(s.tokens, k)
		}
	}
}

// ---- XRM: the sub-transaction commits or aborts with the host (§2.2) ----

var _ sqlmini.XRM = (*Server)(nil)

// XRMName identifies this DLFM in host transaction errors.
func (s *Server) XRMName() string { return "dlfm:" + s.cfg.Name }

// PrepareXRM makes the sub-transaction's pending outcome durable.
func (s *Server) PrepareXRM(hostTxn uint64) error {
	s.mu.Lock()
	sub, ok := s.subs[hostTxn]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dlfm: no sub-transaction for host txn %d", hostTxn)
	}
	return sub.repo.Prepare()
}

// CommitXRM finishes the sub-transaction on the host's commit.
func (s *Server) CommitXRM(hostTxn uint64) error {
	s.mu.Lock()
	sub, ok := s.subs[hostTxn]
	delete(s.subs, hostTxn)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dlfm: no sub-transaction for host txn %d", hostTxn)
	}
	if err := sub.repo.Commit(); err != nil {
		return err
	}
	var firstErr error
	for _, c := range sub.comps {
		if c.onCommit != nil {
			if err := c.onCommit(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	// The journal rows served their purpose; clean them up outside the
	// resolved transaction.
	s.cleanupJournal(hostTxn)
	return firstErr
}

// AbortXRM rolls the sub-transaction back on the host's abort.
func (s *Server) AbortXRM(hostTxn uint64) error {
	s.mu.Lock()
	sub, ok := s.subs[hostTxn]
	delete(s.subs, hostTxn)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dlfm: no sub-transaction for host txn %d", hostTxn)
	}
	if err := sub.repo.Abort(); err != nil {
		return err
	}
	var firstErr error
	// Undo eager file-system changes in reverse order.
	for i := len(sub.comps) - 1; i >= 0; i-- {
		if sub.comps[i].onAbort != nil {
			if err := sub.comps[i].onAbort(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.cleanupJournal(hostTxn)
	return firstErr
}

// cleanupJournal removes resolved journal rows for a host transaction.
func (s *Server) cleanupJournal(hostTxn uint64) {
	_, _ = s.repo.Exec(`DELETE FROM dlfm_txns WHERE host_txn = ?`, sqlmini.Int(int64(hostTxn)))
}
