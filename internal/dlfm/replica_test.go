package dlfm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"datalinks/internal/extent"
	"datalinks/internal/fs"
)

// shipTo applies the owner's current state of path to a replica peer, the way
// the cluster shipper does at the commit barrier.
func shipTo(t *testing.T, src *Server, srcPhys *fs.FS, dst *Server, path string) {
	t.Helper()
	meta, ver, mtime, err := src.FileMeta(path)
	if err != nil {
		t.Fatalf("file meta: %v", err)
	}
	snap, err := srcPhys.SnapshotFile(path)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer snap.Release()
	if err := dst.ApplyReplicaCommit(path, ver, src.cfg.Host.StateID(), snap, mtime, meta); err != nil {
		t.Fatalf("apply replica commit v%d: %v", ver, err)
	}
}

func TestReplicaApplyAndRow(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	dst, _ := newShardPeer(t)

	shipTo(t, src, srcPhys, dst, "/d/f.bin")
	if got := dst.ReplicaVersion("/d/f.bin"); got != 0 {
		t.Fatalf("replica version = %d, want 0", got)
	}
	if paths := dst.ReplicaPaths(); len(paths) != 1 || paths[0] != "/d/f.bin" {
		t.Fatalf("replica paths = %v", paths)
	}
	// Replicas are invisible to the linked-file namespace.
	if dst.IsLinked("/d/f.bin") {
		t.Fatal("replica shows as linked")
	}
	if len(dst.LinkedPaths()) != 0 {
		t.Fatal("replica in LinkedPaths")
	}
	// The replicated history serves.
	e, err := dst.cfg.Archive.Latest("fs1", "/d/f.bin")
	if err != nil || string(e.Content()) != "v0" {
		t.Fatalf("replica archive content: %q, %v", e.Content(), err)
	}
	// Idempotent re-ship (the lost-ack retry) is a clean no-op.
	shipTo(t, src, srcPhys, dst, "/d/f.bin")
	if got := dst.ReplicaVersion("/d/f.bin"); got != 0 {
		t.Fatalf("replica version after re-ship = %d, want 0", got)
	}
}

func TestReplicaLagDetected(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	dst, _ := newShardPeer(t)
	meta, _, mtime, err := src.FileMeta("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := srcPhys.SnapshotFile("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Frame v2 arriving at a replica that holds nothing: lag, not apply.
	if err := dst.ApplyReplicaCommit("/d/f.bin", 2, 1, snap, mtime, meta); !errors.Is(err, ErrReplicaLag) {
		t.Fatalf("gapped frame: %v, want ErrReplicaLag", err)
	}
	if dst.ReplicaVersion("/d/f.bin") != -1 {
		t.Fatal("lagged frame advanced the row")
	}
}

func TestReplicaApplyRejectsOwnedPath(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	meta, ver, mtime, _ := src.FileMeta("/d/f.bin")
	snap, err := srcPhys.SnapshotFile("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// A server must never hold a replica of a path it owns — that frame is a
	// routing bug, not a state to absorb.
	if err := src.ApplyReplicaCommit("/d/f.bin", ver, 1, snap, mtime, meta); err == nil {
		t.Fatal("replica apply over an owned path succeeded")
	}
}

func TestReplicaPromoteServes(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	// Commit an update so the replica carries a multi-version history.
	id := openWrite(t, src, "/d/f.bin", owner)
	srcPhys.WriteFile("/d/f.bin", []byte("v1"))
	if resp := closeFile(t, src, srcPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	src.WaitArchives()

	dst, dstPhys := newShardPeer(t)
	// Replica histories build version by version, as the shipper delivers.
	recs := src.cfg.Archive.ExportHistory("fs1", "/d/f.bin")
	if _, err := dst.cfg.Archive.ImportHistory("fs1", "/d/f.bin", recs, src.cfg.Archive.FetchBlob); err != nil {
		t.Fatal(err)
	}
	meta, ver, mtime, err := src.FileMeta("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.EnsureReplicaRow("/d/f.bin", ver, mtime, meta); err != nil {
		t.Fatal(err)
	}

	if err := dst.PromoteReplica("/d/f.bin"); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !dst.IsLinked("/d/f.bin") {
		t.Fatal("promoted path not linked")
	}
	if len(dst.ReplicaPaths()) != 0 {
		t.Fatal("replica row survived promotion")
	}
	data, err := dstPhys.ReadFile("/d/f.bin")
	if err != nil || string(data) != "v1" {
		t.Fatalf("promoted content = %q, %v", data, err)
	}
	// At-rest protection and mtime match the owner's (promotion is a shard
	// import, not a fresh link).
	ino, _ := dstPhys.Lookup("/d/f.bin")
	attr, _ := dstPhys.Getattr(ino)
	if attr.Mode&0o222 != 0 {
		t.Fatalf("promoted rfd file writable: %o", attr.Mode)
	}
	// Version numbering continues where the owner stopped.
	id = openWrite(t, dst, "/d/f.bin", owner)
	dstPhys.WriteFile("/d/f.bin", []byte("v2"))
	if resp := closeFile(t, dst, dstPhys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("post-promotion close: %+v", resp)
	}
	dst.WaitArchives()
	vs := dst.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 3 || string(vs[2].Content()) != "v2" {
		t.Fatalf("post-promotion versions = %d", len(vs))
	}
}

func TestReplicaPromoteWithoutReplica(t *testing.T) {
	dst, _ := newShardPeer(t)
	if err := dst.PromoteReplica("/d/ghost.bin"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("promote without replica: %v, want ErrNoReplica", err)
	}
}

func TestReplicaUnlinkDropsEverything(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	dst, _ := newShardPeer(t)
	shipTo(t, src, srcPhys, dst, "/d/f.bin")

	if err := dst.ApplyReplicaUnlink("/d/f.bin"); err != nil {
		t.Fatalf("replica unlink: %v", err)
	}
	if len(dst.ReplicaPaths()) != 0 {
		t.Fatal("replica row survived unlink")
	}
	if len(dst.cfg.Archive.Versions("fs1", "/d/f.bin")) != 0 {
		t.Fatal("replica history survived unlink")
	}
	// Idempotent — the unlink retry delivers twice.
	if err := dst.ApplyReplicaUnlink("/d/f.bin"); err != nil {
		t.Fatalf("duplicate replica unlink: %v", err)
	}
}

func TestReplicaRead(t *testing.T) {
	src, srcPhys, _ := newServer(t)
	linkCommitted(t, src, "/d/f.bin", "rfd")
	dst, _ := newShardPeer(t)
	shipTo(t, src, srcPhys, dst, "/d/f.bin")
	data, err := dst.ReadReplica("/d/f.bin")
	if err != nil || string(data) != "v0" {
		t.Fatalf("replica read = %q, %v", data, err)
	}
	if _, err := dst.ReadReplica("/d/other.bin"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("read of missing replica: %v, want ErrNoReplica", err)
	}
}

// fakeReplicator records ships and can fail them — the dlfm-level view of the
// cluster shipper.
type fakeReplicator struct {
	ships   []int64
	unlinks []string
	fail    error
}

func (f *fakeReplicator) ShipCommit(_ context.Context, path string, ver int64, _ uint64, snap *extent.Snapshot, _ int64, _ time.Time, _ ReplicaMeta) error {
	if f.fail != nil {
		return f.fail
	}
	f.ships = append(f.ships, ver)
	return nil
}

func (f *fakeReplicator) ShipUnlink(path string) error {
	f.unlinks = append(f.unlinks, path)
	return f.fail
}

func TestCommitShipsSynchronously(t *testing.T) {
	srv, phys, _ := newServer(t)
	fr := &fakeReplicator{}
	srv.SetReplicator(fr)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	if len(fr.ships) != 1 || fr.ships[0] != 0 {
		t.Fatalf("link ships = %v, want [0]", fr.ships)
	}
	id := openWrite(t, srv, "/d/f.bin", owner)
	phys.WriteFile("/d/f.bin", []byte("v1"))
	if resp := closeFile(t, srv, phys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	if len(fr.ships) != 2 || fr.ships[1] != 1 {
		t.Fatalf("ships after commit = %v, want [0 1]", fr.ships)
	}
}

func TestQuorumFailureRejectsWithoutRollback(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	fr := &fakeReplicator{fail: errors.New("replicas unreachable")}
	srv.SetReplicator(fr)

	id := openWrite(t, srv, "/d/f.bin", owner)
	phys.WriteFile("/d/f.bin", []byte("v1"))
	resp := closeFile(t, srv, phys, "/d/f.bin", id)
	// The close is rejected — the writer learns the version is
	// under-replicated...
	if resp.OK {
		t.Fatal("under-replicated close acked")
	}
	if !strings.Contains(resp.Err, "under-replicated") {
		t.Fatalf("close err = %q, want under-replicated", resp.Err)
	}
	// ...but the commit is NOT rolled back: the host transaction already
	// committed, the content stays, and the version archives.
	data, _ := phys.ReadFile("/d/f.bin")
	if string(data) != "v1" {
		t.Fatalf("content rolled back to %q after quorum failure", data)
	}
	srv.WaitArchives()
	vs := srv.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 2 || string(vs[1].Content()) != "v1" {
		t.Fatalf("v1 not archived after quorum failure: %d versions", len(vs))
	}
	// With the replicas back, the next update ships normally.
	fr.fail = nil
	id = openWrite(t, srv, "/d/f.bin", owner)
	phys.WriteFile("/d/f.bin", []byte("v2"))
	if resp := closeFile(t, srv, phys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("recovered close: %+v", resp)
	}
	if len(fr.ships) != 1 || fr.ships[0] != 2 {
		t.Fatalf("recovered ships = %v, want [2]", fr.ships)
	}
}

func TestUnlinkShips(t *testing.T) {
	srv, _, _ := newServer(t)
	fr := &fakeReplicator{}
	srv.SetReplicator(fr)
	linkCommitted(t, srv, "/d/f.bin", "rfd")

	const hostTxn = 91
	if err := srv.UnlinkFile(hostTxn, "/d/f.bin"); err != nil {
		t.Fatal(err)
	}
	srv.PrepareXRM(hostTxn)
	srv.CommitXRM(hostTxn)
	if len(fr.unlinks) != 1 || fr.unlinks[0] != "/d/f.bin" {
		t.Fatalf("unlink ships = %v", fr.unlinks)
	}
}
