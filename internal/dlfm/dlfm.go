// Package dlfm implements the DataLinks File Manager of §2.2 and §4: the
// user-space daemon on each file server that owns the DataLinks repository,
// executes link/unlink as sub-transactions of host database transactions
// (two-phase commit), services upcalls from DLFS (token validation, open and
// close processing), coordinates in-place update transactions, drives the
// archiver, and recovers all of it after a crash.
//
// The repository is itself a transactional database (an instance of
// internal/sqlmini with its own WAL) — mirroring the real DLFM, which was
// built as a transactional resource manager [Hsiao & Narang, SIGMOD 2000].
package dlfm

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/fs"
	"datalinks/internal/fsyncer"
	"datalinks/internal/metrics"
	"datalinks/internal/obs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
	"datalinks/internal/wal"
)

// upcallOpRange bounds the upcall.Op space for the counter cache (ops are
// small consecutive constants starting at 1).
const upcallOpRange = upcall.OpReadOpen + 1

// DefaultUID is the well-known uid the DLFM process runs as; file takeover
// (§4) transfers ownership to this uid.
const DefaultUID fs.UID = 777

// DefaultQuarantineDir is where in-flight versions of rolled-back updates
// are moved (§4.2: "the in-flight version of the file is moved to a
// temporary directory").
const DefaultQuarantineDir = "/lost+found"

// Host is the interface back to the host database's DataLinks engine. DLFM
// uses it to run the metadata half of a file-update transaction (§4.3) and
// to resolve in-doubt sub-transactions after a restart.
type Host interface {
	// MetaUpdate runs, in a fresh host transaction with sub enlisted as a
	// 2PC participant, the automatic metadata update for a committed file
	// update (size and modification time, §4.3). It returns the host
	// database state identifier of the committed transaction (§4.4).
	MetaUpdate(server, path string, size int64, mtime time.Time, sub sqlmini.XRM) (uint64, error)
	// TxnOutcome reports whether host transaction txnID committed. known is
	// false while the outcome is undecided.
	TxnOutcome(txnID uint64) (committed, known bool)
	// StateID returns the current host database state identifier.
	StateID() uint64
}

// Config configures a DLFM server.
type Config struct {
	Name       string // file server name (the DATALINK URL authority)
	Phys       *fs.FS // physical file system of this server
	Archive    *archive.Store
	Host       Host
	TokenKey   []byte // shared secret with the DataLinks engine
	Clock      func() time.Time
	UID        fs.UID // DLFM process uid; DefaultUID if zero
	Quarantine string
	// QuarantineTTL expires quarantined in-flight versions this long after
	// they were written (§4.2 moves them aside "for possible manual
	// recovery"; without expiry they accumulate unbounded). Zero keeps them
	// forever.
	QuarantineTTL time.Duration
	// GCInterval runs the background quarantine sweeper this often when
	// QuarantineTTL is set; zero leaves expiry to explicit SweepQuarantine
	// calls.
	GCInterval time.Duration
	// OpenWait bounds how long write-open approval waits for conflicting
	// opens and pending archives before returning CodeBusy.
	OpenWait time.Duration
	TokenTTL time.Duration
	// RepoLog reuses an existing repository log (restart recovery).
	RepoLog *wal.Log
	// RepoDir, when set, puts the repository plane on disk: WAL segments,
	// the repo.snap checkpoint and the repo.lock single-owner lockfile live
	// there, and Open cold-starts from whatever the directory holds.
	RepoDir string
	// RepoFsync is the repository WAL durability policy; RepoFsyncMaxDelay
	// the group-commit coalescing window.
	RepoFsync         fsyncer.Policy
	RepoFsyncMaxDelay time.Duration
	// RepoCheckpointBytes triggers automatic repository checkpoints once
	// this many log bytes accumulate (DefaultRepoCheckpointBytes when 0 and
	// RepoDir is set).
	RepoCheckpointBytes int64
	Metrics             *metrics.Registry
	// Tracer, when set, records request-scoped traces for the operations the
	// daemon originates itself (link/unlink). Upcall-driven work is traced
	// through the context the transport hands in, not this field.
	Tracer *obs.Tracer
}

// DefaultRepoCheckpointBytes is the automatic checkpoint trigger for
// disk-backed repositories when Config.RepoCheckpointBytes is zero.
const DefaultRepoCheckpointBytes = 1 << 20

// openState tracks one approved open between its open and close upcalls.
type openState struct {
	id      uint64
	path    string
	uid     fs.UID
	write   bool
	mtime   time.Time // file mtime at open (modification detection, §4.4)
	hostTxn uint64    // file-update transactions bind to a host txn at close
}

// syncState is the in-memory image of the Sync table rows for one file
// (§4.5). Entries are volatile: a crash ends every open.
//
// Each path carries its own wait queue: an open blocked on this file's
// writer or archive job parks on a channel here and is woken only when THIS
// path's state changes — there is no server-wide broadcast, so traffic on
// one file never wakes (or delays) openers of another.
type syncState struct {
	readers   map[uint64]bool // openID set
	writer    uint64          // openID, 0 if none
	archiving bool            // an archive job for this path is in flight
	waiters   []chan struct{}
}

// wake releases every waiter parked on this path's state.
func (st *syncState) wake() {
	for _, ch := range st.waiters {
		close(ch)
	}
	st.waiters = nil
}

// idle reports whether the state carries no information and can be dropped.
func (st *syncState) idle() bool {
	return st.writer == 0 && len(st.readers) == 0 && !st.archiving && len(st.waiters) == 0
}

// takeoverState remembers the pre-takeover identity of a file (§4.2).
type takeoverState struct {
	origUID  fs.UID
	origMode fs.FileMode
}

// tokenKey identifies a token entry: the paper stores entries per *userid*,
// not per process (§4.1).
type tokenKey struct {
	uid  fs.UID
	path string
}

// tokenEntry is a validated token registered by the upcall daemon.
type tokenEntry struct {
	typ    token.Type
	expiry time.Time
}

// subTxn is a repository sub-transaction bound to a host transaction.
type subTxn struct {
	repo  *sqlmini.Txn
	comps []compensation // file system compensation actions
}

// compensation reverses or applies a file-system side effect depending on
// the transaction outcome.
type compensation struct {
	onAbort  func() error // run if the host transaction aborts
	onCommit func() error // run once the host transaction commits
}

// openShardCount stripes the open/sync bookkeeping by path hash (like the
// sqlmini lock-manager shards): traffic on one file never takes the same
// mutex as traffic on another, outside 1-in-openShardCount hash collisions.
// Must be a power of two; open ids encode their shard in the low bits so an
// open can be found by id alone.
const openShardCount = 16

// openShardBits is log2(openShardCount).
const openShardBits = 4

// openShard is one stripe of the open/sync/takeover bookkeeping. An open id
// always lives in the shard of its path, so one lock covers an open and its
// file's sync state together.
type openShard struct {
	mu        sync.Mutex
	syncs     map[string]*syncState
	opens     map[uint64]*openState
	takeovers map[string]*takeoverState
}

// Server is a DLFM instance. One per file server.
//
// Locking: the token table has its own read/write mutex — token validation
// and token-entry checks (every managed open) never contend with the open/
// sync bookkeeping. That bookkeeping itself is striped across openShardCount
// path-hashed shards, so concurrent opens of different files do not
// serialize; blocked opens wait on per-path channels inside syncState, not
// on a server-wide condition variable. The remaining server mutex guards
// only the sub-transaction table and the small counters.
type Server struct {
	cfg  Config
	repo *sqlmini.DB
	auth *token.Authority

	tokMu  sync.RWMutex
	tokens map[tokenKey]tokenEntry

	openSeed   maphash.Seed
	openShards [openShardCount]openShard
	nextOpen   atomic.Uint64

	mu          sync.Mutex
	subs        map[uint64]*subTxn
	nextJournal int64
	agents      int64
	closed      bool

	archJobs atomic.Int64 // archive goroutines in flight
	qseq     atomic.Uint64
	gcStop   chan struct{}

	// repl holds the owner-side shard replicator (SetReplicator); nil box or
	// nil interface means replication is off and ships are no-ops.
	repl atomic.Pointer[replicatorBox]

	// upcallCtrs caches the per-op dispatch counters (indexed by upcall.Op)
	// so the upcall hot path skips the registry lookup and name formatting.
	upcallCtrs [upcallOpRange]*metrics.Counter

	wg sync.WaitGroup
}

// Open starts a DLFM server from its durable state: when RepoDir is set it
// opens the disk WAL (taking the repo.lock), and either starts fresh (empty
// directory) or runs full cold-start recovery — repository WAL replay,
// in-doubt resolution, archive reconciliation, in-flight rollback and file
// materialization. Without RepoDir it is New. The returned report is nil on
// a fresh start.
func Open(cfg Config) (*Server, *RecoveryReport, error) {
	if cfg.RepoDir == "" {
		s, err := New(cfg)
		return s, nil, err
	}
	if cfg.RepoCheckpointBytes <= 0 {
		cfg.RepoCheckpointBytes = DefaultRepoCheckpointBytes
	}
	lg, err := wal.Open(wal.Config{
		Dir:           cfg.RepoDir,
		Fsync:         cfg.RepoFsync,
		FsyncMaxDelay: cfg.RepoFsyncMaxDelay,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dlfm: repository log: %w", err)
	}
	cfg.RepoLog = lg
	if lg.TailLSN() == wal.NilLSN && lg.Base() == wal.NilLSN {
		// Nothing ever logged and nothing checkpointed: a fresh repository.
		s, err := New(cfg)
		if err != nil {
			lg.Close()
			return nil, nil, err
		}
		// Seed repo.snap so a pre-first-checkpoint crash still cold-starts.
		if _, err := s.repo.Checkpoint(); err != nil {
			s.Kill()
			return nil, nil, fmt.Errorf("dlfm: initial checkpoint: %w", err)
		}
		return s, nil, nil
	}
	s, rep, err := Recover(cfg, lg)
	if err != nil {
		lg.Kill()
		return nil, nil, err
	}
	return s, rep, nil
}

// repoOptions builds the sqlmini options for the repository database.
func repoOptions(cfg Config) sqlmini.Options {
	return sqlmini.Options{
		Clock:           cfg.Clock,
		Log:             cfg.RepoLog,
		LockTimeout:     cfg.OpenWait,
		Metrics:         cfg.Metrics,
		Dir:             cfg.RepoDir,
		CheckpointBytes: cfg.RepoCheckpointBytes,
	}
}

// New starts a DLFM server with a fresh repository.
func New(cfg Config) (*Server, error) {
	if cfg.Phys == nil || cfg.Archive == nil {
		return nil, errors.New("dlfm: Phys and Archive are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.UID == 0 {
		cfg.UID = DefaultUID
	}
	if cfg.Quarantine == "" {
		cfg.Quarantine = DefaultQuarantineDir
	}
	if cfg.OpenWait <= 0 {
		cfg.OpenWait = 5 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	repo := sqlmini.NewDB(repoOptions(cfg))
	s := &Server{
		cfg:      cfg,
		repo:     repo,
		auth:     token.NewAuthority(cfg.TokenKey, cfg.Clock, cfg.TokenTTL),
		tokens:   make(map[tokenKey]tokenEntry),
		openSeed: maphash.MakeSeed(),
		subs:     make(map[uint64]*subTxn),
	}
	for i := range s.openShards {
		sh := &s.openShards[i]
		sh.syncs = make(map[string]*syncState)
		sh.opens = make(map[uint64]*openState)
		sh.takeovers = make(map[string]*takeoverState)
	}
	for op := upcall.Op(1); op < upcallOpRange; op++ {
		s.upcallCtrs[op] = cfg.Metrics.Counter("dlfm.upcall." + op.String())
	}
	// A truly fresh repository (no pre-existing log records) needs its
	// schema; a log with history gets its schema from replay/snapshot.
	if cfg.RepoLog == nil || (cfg.RepoLog.TailLSN() == wal.NilLSN && cfg.RepoLog.Base() == wal.NilLSN) {
		if err := s.createRepoTables(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Phys.MkdirAll(cfg.Quarantine, fs.Cred{UID: fs.Root}, 0o700); err != nil {
		return nil, fmt.Errorf("dlfm: quarantine dir: %w", err)
	}
	s.seedQuarantineSeq()
	if cfg.QuarantineTTL > 0 && cfg.GCInterval > 0 {
		s.gcStop = make(chan struct{})
		s.wg.Add(1)
		go s.quarantineGCLoop(cfg.GCInterval)
	}
	return s, nil
}

// repoSchema pairs each repository table with its DDL so first boot can
// create everything and recovery can fill in whatever a mid-bootstrap crash
// left missing.
var repoSchema = []struct {
	table string
	ddl   string
}{
	// Linked files and the identity needed to undo a takeover.
	{"dlfm_files", `CREATE TABLE dlfm_files (
		path VARCHAR PRIMARY KEY,
		mode VARCHAR NOT NULL,
		recovery BOOLEAN NOT NULL,
		token_ttl INT,
		orig_uid INT NOT NULL,
		orig_mode INT NOT NULL,
		cur_version INT NOT NULL
	)`},
	// Files with an update transaction in flight (§4.4: "an entry
	// indicating that the file is being updated").
	{"dlfm_updates", `CREATE TABLE dlfm_updates (path VARCHAR PRIMARY KEY, open_id INT NOT NULL)`},
	// Committed versions whose archive copy has not completed yet.
	{"dlfm_pending_archive", `CREATE TABLE dlfm_pending_archive (path VARCHAR PRIMARY KEY, version INT NOT NULL, state_id INT NOT NULL)`},
	// Replicated shards held for other ring members: promotion identity plus
	// the last acked version. Deliberately NOT dlfm_files — the linked-file
	// namespace, rebalance, and recovery scans must never see replicas.
	{"dlfm_replicas", `CREATE TABLE dlfm_replicas (
		path VARCHAR PRIMARY KEY,
		mode VARCHAR NOT NULL,
		recovery BOOLEAN NOT NULL,
		token_ttl INT,
		orig_uid INT NOT NULL,
		orig_mode INT NOT NULL,
		cur_version INT NOT NULL,
		mtime_ns INT NOT NULL
	)`},
	// Sub-transaction journal for 2PC recovery: one row per file-system
	// side effect of a link/unlink sub-transaction.
	{"dlfm_txns", `CREATE TABLE dlfm_txns (
		id INT PRIMARY KEY,
		repo_txn INT NOT NULL,
		host_txn INT NOT NULL,
		action VARCHAR NOT NULL,
		path VARCHAR NOT NULL,
		orig_uid INT NOT NULL,
		orig_mode INT NOT NULL,
		recovery BOOLEAN NOT NULL
	)`},
}

// Every commit/abort deletes journal rows by host_txn — a non-PK predicate
// that would otherwise fall back to a full table scan (and row-lock every
// journal row) on each transaction resolution. Re-creating an existing index
// is a no-op, so this is safe to exec on every boot path.
const repoTxnIndexDDL = `CREATE INDEX ON dlfm_txns (host_txn)`

// createRepoTables creates the DLFM repository schema.
func (s *Server) createRepoTables() error {
	for _, t := range repoSchema {
		if _, err := s.repo.Exec(t.ddl); err != nil {
			return fmt.Errorf("dlfm: repo schema: %w", err)
		}
	}
	if _, err := s.repo.Exec(repoTxnIndexDDL); err != nil {
		return fmt.Errorf("dlfm: repo schema: %w", err)
	}
	return nil
}

// ensureRepoTables creates any repository table a crash during first-boot
// schema creation left missing. Existing tables (the common case after
// recovery) are untouched.
func (s *Server) ensureRepoTables() error {
	for _, t := range repoSchema {
		if _, err := s.repo.Table(t.table); err == nil {
			continue
		}
		if _, err := s.repo.Exec(t.ddl); err != nil {
			return fmt.Errorf("dlfm: repo schema repair: %w", err)
		}
	}
	if _, err := s.repo.Exec(repoTxnIndexDDL); err != nil {
		return fmt.Errorf("dlfm: repo schema repair: %w", err)
	}
	return nil
}

// Name returns the file server name.
func (s *Server) Name() string { return s.cfg.Name }

// Authority exposes the token authority (the engine shares the key instead
// in a real deployment; tests use this for forged-token scenarios).
func (s *Server) Authority() *token.Authority { return s.auth }

// Repo exposes the repository database (inspection and tests).
func (s *Server) Repo() *sqlmini.DB { return s.repo }

// UID returns the uid DLFM runs as.
func (s *Server) UID() fs.UID { return s.cfg.UID }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// ConnectAgent mirrors the main-daemon/child-agent structure of §2.2: each
// database agent connection gets a child agent. Functionally the agent is a
// thin handle; the call counting feeds the F1 architecture figure.
func (s *Server) ConnectAgent() *Agent {
	s.mu.Lock()
	s.agents++
	n := s.agents
	s.mu.Unlock()
	s.cfg.Metrics.Counter("dlfm.agents").Inc()
	return &Agent{srv: s, id: n}
}

// AgentCount reports how many child agents have been spawned.
func (s *Server) AgentCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agents
}

// Agent is a child agent serving one DataLinks engine connection.
type Agent struct {
	srv *Server
	id  int64
}

// ID returns the agent's index.
func (a *Agent) ID() int64 { return a.id }

// Server returns the owning DLFM.
func (a *Agent) Server() *Server { return a.srv }

// LinkFile forwards to the server's link processing.
func (a *Agent) LinkFile(hostTxn uint64, path string, opts datalink.ColumnOptions) error {
	return a.srv.LinkFile(hostTxn, path, opts)
}

// UnlinkFile forwards to the server's unlink processing.
func (a *Agent) UnlinkFile(hostTxn uint64, path string) error {
	return a.srv.UnlinkFile(hostTxn, path)
}

// Close waits for background work (archiver goroutines, the quarantine
// sweeper) to finish. A disk-backed repository takes a final checkpoint and
// closes its log, so the next Open replays almost nothing.
func (s *Server) Close() {
	s.mu.Lock()
	closed := s.closed
	s.closed = true
	s.mu.Unlock()
	if closed {
		return
	}
	if s.gcStop != nil {
		close(s.gcStop)
	}
	s.wg.Wait()
	if s.cfg.RepoDir != "" {
		_, _ = s.repo.Checkpoint() // best effort; the log alone suffices
		s.repo.Log().Close()
	}
}

// Kill simulates the whole process dying (kill -9): nothing is waited for,
// nothing is flushed, the repository log drops its volatile tail and
// releases its directory lock. Only what already reached RepoDir and the
// archive directory survives for the next Open. In-memory servers just
// close their log.
func (s *Server) Kill() {
	s.mu.Lock()
	s.closed = true
	if s.gcStop != nil {
		select {
		case <-s.gcStop:
		default:
			close(s.gcStop)
		}
		s.gcStop = nil
	}
	s.mu.Unlock()
	s.repo.Log().Kill()
}

// Alive reports whether the server is still serving (not closed, not
// killed). The cluster's health probe polls this to detect silent deaths.
func (s *Server) Alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// fileInfo is the decoded dlfm_files row.
type fileInfo struct {
	path     string
	mode     datalink.ControlMode
	recovery bool
	tokenTTL int
	origUID  fs.UID
	origMode fs.FileMode
	version  archive.Version
}

// lookupFile reads a file's repository row outside any transaction (the
// upcall path must not block on link transactions in progress; it sees the
// current committed-or-eager state, which is exactly the §4.5 window).
func (s *Server) lookupFile(path string) (fileInfo, bool) {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return fileInfo{}, false
	}
	id, ok := tbl.LookupPK(sqlmini.Str(path))
	if !ok {
		return fileInfo{}, false
	}
	row, ok := tbl.Get(id)
	if !ok {
		return fileInfo{}, false
	}
	return decodeFileRow(row), true
}

func decodeFileRow(row sqlmini.Row) fileInfo {
	mode, _ := datalink.ParseMode(row[1].S)
	return fileInfo{
		path:     row[0].S,
		mode:     mode,
		recovery: row[2].B,
		tokenTTL: int(row[3].I),
		origUID:  fs.UID(row[4].I),
		origMode: fs.FileMode(row[5].I),
		version:  archive.Version(row[6].I),
	}
}

// ReadFileContent returns the current content of a file on this server —
// the engine uses it to feed content-derived metadata hooks (§4.3's
// "content specific attributes", left as future research in the paper and
// implemented here as an extension).
func (s *Server) ReadFileContent(path string) ([]byte, error) {
	return s.cfg.Phys.ReadFile(path)
}

// LinkedFiles lists every linked path (admin/status tooling).
func (s *Server) LinkedFiles() []string {
	tbl, err := s.repo.Table("dlfm_files")
	if err != nil {
		return nil
	}
	var out []string
	tbl.Scan(func(_ sqlmini.RowID, row sqlmini.Row) bool {
		out = append(out, row[0].S)
		return true
	})
	return out
}

// IsLinked reports whether a path is currently linked.
func (s *Server) IsLinked(path string) bool {
	_, ok := s.lookupFile(path)
	return ok
}

// FileMode returns the control mode a path is linked under.
func (s *Server) FileMode(path string) (datalink.ControlMode, bool) {
	fi, ok := s.lookupFile(path)
	return fi.mode, ok
}

// rootCred is the credential DLFM uses for its own file operations; the
// daemon runs with system privileges on its file server.
var rootCred = fs.Cred{UID: fs.Root}
