package dlfm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// newWaitServer builds a server with a generous open-wait so serialization
// is observed as blocking, not rejection.
func newWaitServer(t *testing.T) (*Server, *fs.FS) {
	t.Helper()
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	seedFile(t, phys, "/d/f.bin", "v0")
	srv, err := New(Config{
		Name:     "fs1",
		Phys:     phys,
		Archive:  archive.New(0, nil),
		Host:     newFakeHost(),
		TokenKey: []byte("k"),
		OpenWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, phys
}

func TestConcurrentReadersShareRDBFile(t *testing.T) {
	srv, _ := newWaitServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdb")
	var wg sync.WaitGroup
	var failures int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(uid int32) {
			defer wg.Done()
			tok := srv.Authority().Issue(token.Read, "/d/f.bin")
			resp, err := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: uid})
			if err != nil || !resp.OK {
				atomic.AddInt64(&failures, 1)
				return
			}
			resp, err = srv.Upcall(upcall.Request{Op: upcall.OpReadOpen, Path: "/d/f.bin", UID: uid})
			if err != nil || !resp.OK {
				atomic.AddInt64(&failures, 1)
				return
			}
			time.Sleep(5 * time.Millisecond) // hold the open
			resp2, _ := srv.Upcall(upcall.Request{Op: upcall.OpClose, Path: "/d/f.bin", OpenID: resp.OpenID})
			if !resp2.OK {
				atomic.AddInt64(&failures, 1)
			}
		}(int32(100 + i))
	}
	wg.Wait()
	if failures != 0 {
		t.Fatalf("%d concurrent readers failed", failures)
	}
	if srv.OpenCount() != 0 {
		t.Fatalf("open leak: %d", srv.OpenCount())
	}
}

func TestWriterWaitsForReadersRDD(t *testing.T) {
	srv, phys := newWaitServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")

	// A reader holds the file open.
	rtok := srv.Authority().Issue(token.Read, "/d/f.bin")
	srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: rtok, UID: 1})
	rresp, _ := srv.Upcall(upcall.Request{Op: upcall.OpReadOpen, Path: "/d/f.bin", UID: 1})
	if !rresp.OK {
		t.Fatalf("read open: %+v", rresp)
	}

	// The writer blocks until the reader closes.
	wtok := srv.Authority().Issue(token.Write, "/d/f.bin")
	srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: wtok, UID: 2})
	writerDone := make(chan upcall.Response, 1)
	go func() {
		resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: "/d/f.bin", UID: 2, Write: true})
		writerDone <- resp
	}()
	select {
	case resp := <-writerDone:
		t.Fatalf("writer did not wait for the reader: %+v", resp)
	case <-time.After(30 * time.Millisecond):
	}
	// Reader closes; writer proceeds.
	srv.Upcall(upcall.Request{Op: upcall.OpClose, Path: "/d/f.bin", OpenID: rresp.OpenID})
	select {
	case resp := <-writerDone:
		if !resp.OK {
			t.Fatalf("writer open after reader close: %+v", resp)
		}
		closeFile(t, srv, phys, "/d/f.bin", resp.OpenID)
	case <-time.After(3 * time.Second):
		t.Fatal("writer never unblocked")
	}
}

func TestSequentialWritersSerializeViaWait(t *testing.T) {
	srv, phys := newWaitServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	const writers = 4
	var maxConcurrent, current, observedMax int64
	_ = maxConcurrent
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(uid int32) {
			defer wg.Done()
			tok := srv.Authority().Issue(token.Write, "/d/f.bin")
			srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: uid})
			resp, err := srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: "/d/f.bin", UID: uid, Write: true})
			if err != nil || !resp.OK {
				t.Errorf("write open uid %d: %+v %v", uid, resp, err)
				return
			}
			c := atomic.AddInt64(&current, 1)
			for {
				old := atomic.LoadInt64(&observedMax)
				if c <= old || atomic.CompareAndSwapInt64(&observedMax, old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&current, -1)
			closeFile(t, srv, phys, "/d/f.bin", resp.OpenID)
		}(int32(200 + i))
	}
	wg.Wait()
	srv.WaitArchives()
	if observedMax != 1 {
		t.Fatalf("write-write serialization violated: %d writers concurrent", observedMax)
	}
}

func TestSyncEntriesReflectOpens(t *testing.T) {
	srv, phys := newWaitServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	tok := srv.Authority().Issue(token.Read, "/d/f.bin")
	srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: 1})
	r1, _ := srv.Upcall(upcall.Request{Op: upcall.OpReadOpen, Path: "/d/f.bin", UID: 1})
	r2, _ := srv.Upcall(upcall.Request{Op: upcall.OpReadOpen, Path: "/d/f.bin", UID: 1})
	readers, writer := srv.SyncEntries("/d/f.bin")
	if readers != 2 || writer {
		t.Fatalf("sync = %d readers, writer=%v", readers, writer)
	}
	srv.Upcall(upcall.Request{Op: upcall.OpClose, Path: "/d/f.bin", OpenID: r1.OpenID})
	srv.Upcall(upcall.Request{Op: upcall.OpClose, Path: "/d/f.bin", OpenID: r2.OpenID})
	readers, writer = srv.SyncEntries("/d/f.bin")
	if readers != 0 || writer {
		t.Fatalf("sync after closes = %d, %v", readers, writer)
	}
	_ = phys
}
