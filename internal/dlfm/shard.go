package dlfm

import (
	"fmt"
	"time"

	"datalinks/internal/datalink"
	"datalinks/internal/extent"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
)

// Shard handoff: the per-path half of live migration between DLFM servers.
// The protocol is freeze → export → import → evict:
//
//   - BeginExport drains the path (waits for in-flight opens and archive jobs
//     exactly like a write open would) and then freezes it by installing a
//     sentinel writer, so every later open parks on the path's wait queue
//     until the migration ends. It returns a bundle: the repository row plus
//     an O(#chunks) snapshot of the current content.
//   - The caller moves the archive history separately (archive.ExportHistory/
//     ImportHistory — chunk bytes travel by hash, deduped).
//   - ImportBundle replays the bundle on the destination: content, ownership,
//     permissions, and — critically — the source's mtime, because mtime is how
//     commit detects modification (§4.4); a fresh mtime would make the next
//     writer's no-op close look like a real update.
//   - EndExport either evicts the path from the source (rows deleted, phys
//     file removed, tokens purged) or aborts the export, and in both cases
//     lifts the freeze.
//
// Routing above this layer must already gate new traffic for the path to the
// destination; the freeze here only covers stragglers that were past the
// router when the gate went up.

// exportSentinel is the writer id installed by BeginExport. It is never a
// real open id (real ids are monotonic counters shifted by the shard bits, so
// reaching all-ones would take centuries of opens), so nothing but EndExport/
// AbortExport can clear it.
const exportSentinel = ^uint64(0)

// FileBundle is the portable per-path repository state.
type FileBundle struct {
	Path     string
	Mode     datalink.ControlMode
	Recovery bool
	TokenTTL int
	OrigUID  fs.UID
	OrigMode fs.FileMode
	Version  int64
	// Content is the current physical content (the committed state — the
	// drain guarantees no update is in flight). The receiver of the bundle
	// owns it and must Release it (ImportBundle does not consume it).
	Content *extent.Snapshot
	Mtime   time.Time // physical mtime at export; preserved on import
}

// Release frees the bundle's content snapshot.
func (b *FileBundle) Release() {
	if b != nil && b.Content != nil {
		b.Content.Release()
		b.Content = nil
	}
}

// BeginExport drains and freezes a linked path, returning its bundle. On
// success the path rejects every new open until EndExport or AbortExport.
// Returns ErrFileBusy if the drain exceeds the configured open wait, and
// ErrNotLinked if the path is not (or no longer) linked.
func (s *Server) BeginExport(path string) (*FileBundle, error) {
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	// Drain: no writer, no readers, no archive job. Readers drain too — a
	// reader's close upcall routes by path, and after the move it would reach
	// a server that never saw its open.
	if !s.waitLocked(sh, path, func(st *syncState) bool {
		return st.writer == 0 && len(st.readers) == 0
	}) {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (drain timed out)", ErrFileBusy, path)
	}
	st := s.syncFor(sh, path)
	st.writer = exportSentinel
	sh.mu.Unlock()

	unfreeze := func() {
		sh.mu.Lock()
		if sy, ok := sh.syncs[path]; ok && sy.writer == exportSentinel {
			sy.writer = 0
			sy.wake()
			if sy.idle() {
				delete(sh.syncs, path)
			}
		}
		sh.mu.Unlock()
	}

	// Re-read the row after the freeze: the path may have been unlinked while
	// the drain waited.
	fi, linked := s.lookupFile(path)
	if !linked {
		unfreeze()
		return nil, fmt.Errorf("%w: %s", ErrNotLinked, path)
	}
	snap, err := s.cfg.Phys.SnapshotFile(path)
	if err != nil {
		unfreeze()
		return nil, fmt.Errorf("dlfm: export snapshot %s: %w", path, err)
	}
	node, err := s.cfg.Phys.Lookup(path)
	if err != nil {
		snap.Release()
		unfreeze()
		return nil, err
	}
	attr, err := s.cfg.Phys.Getattr(node)
	if err != nil {
		snap.Release()
		unfreeze()
		return nil, err
	}
	s.cfg.Metrics.Counter("dlfm.shard.exports").Inc()
	return &FileBundle{
		Path:     path,
		Mode:     fi.mode,
		Recovery: fi.recovery,
		TokenTTL: fi.tokenTTL,
		OrigUID:  fi.origUID,
		OrigMode: fi.origMode,
		Version:  int64(fi.version),
		Content:  snap,
		Mtime:    attr.Mtime,
	}, nil
}

// EndExport concludes an export begun by BeginExport. With evict the path is
// removed from this server entirely — repository rows, physical file, token
// entries; without it only the freeze is lifted (the import failed and the
// source remains the owner). Callers drop the archive history separately.
func (s *Server) EndExport(path string, evict bool) error {
	var firstErr error
	if evict {
		if _, err := s.repo.Exec(`DELETE FROM dlfm_files WHERE path = ?`, sqlmini.Str(path)); err != nil {
			firstErr = err
		}
		s.clearUpdateEntry(path)
		if _, err := s.repo.Exec(`DELETE FROM dlfm_pending_archive WHERE path = ?`, sqlmini.Str(path)); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.cfg.Phys.Remove(path, rootCred); err != nil && firstErr == nil {
			firstErr = err
		}
		s.purgeTokens(path)
		s.cfg.Metrics.Counter("dlfm.shard.evictions").Inc()
	}
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	delete(sh.takeovers, path)
	if sy, ok := sh.syncs[path]; ok && sy.writer == exportSentinel {
		sy.writer = 0
		sy.wake()
		if sy.idle() {
			delete(sh.syncs, path)
		}
	}
	sh.mu.Unlock()
	return firstErr
}

// AbortExport lifts the freeze without evicting (the migration failed before
// the destination took over).
func (s *Server) AbortExport(path string) {
	_ = s.EndExport(path, false)
}

// ImportBundle establishes a migrated path on this server: physical content
// with the source's mtime, at-rest ownership and permissions, and the
// repository row. The bundle's content is not consumed. The path must not
// already be linked here. Like ReconcileLinks, this runs outside 2PC — the
// migration protocol above it owns atomicity.
func (s *Server) ImportBundle(b *FileBundle) error {
	if _, linked := s.lookupFile(b.Path); linked {
		return fmt.Errorf("%w: import of %s", ErrAlreadyLinked, b.Path)
	}
	if i := lastSlash(b.Path); i > 0 {
		if err := s.cfg.Phys.MkdirAll(b.Path[:i], rootCred, 0o755); err != nil {
			return fmt.Errorf("dlfm: import mkdir %s: %w", b.Path, err)
		}
	}
	if err := s.cfg.Phys.WriteFileSnapshot(b.Path, b.Content); err != nil {
		return fmt.Errorf("dlfm: import content %s: %w", b.Path, err)
	}
	node, err := s.cfg.Phys.Lookup(b.Path)
	if err != nil {
		return err
	}
	// Original identity first, then the control mode's at-rest constraints on
	// top (the same two layers a link applies).
	if err := s.cfg.Phys.Chown(node, rootCred, b.OrigUID); err != nil {
		return err
	}
	if err := s.cfg.Phys.Chmod(node, rootCred, b.OrigMode); err != nil {
		return err
	}
	if err := s.applyLinkState(node, b.Mode); err != nil {
		return err
	}
	// Mtime last: every step above may have touched it, and modification
	// detection compares against exactly this value at the next write open.
	if err := s.cfg.Phys.SetMtime(node, b.Mtime); err != nil {
		return err
	}
	if _, err := s.repo.Exec(
		`INSERT INTO dlfm_files (path, mode, recovery, token_ttl, orig_uid, orig_mode, cur_version)
		 VALUES (?, ?, ?, ?, ?, ?, ?)`,
		sqlmini.Str(b.Path), sqlmini.Str(b.Mode.String()), sqlmini.Bool(b.Recovery),
		sqlmini.Int(int64(b.TokenTTL)), sqlmini.Int(int64(b.OrigUID)), sqlmini.Int(int64(b.OrigMode)),
		sqlmini.Int(b.Version)); err != nil {
		return fmt.Errorf("dlfm: import row %s: %w", b.Path, err)
	}
	s.cfg.Metrics.Counter("dlfm.shard.imports").Inc()
	return nil
}

// lastSlash returns the index of the last '/' in p, or -1.
func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}
