package dlfm

import (
	"context"
	"fmt"
	"hash/maphash"
	"time"

	"datalinks/internal/fs"
	"datalinks/internal/obs"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// The upcall daemon (§2.2): services requests from DLFS to validate tokens
// and verify access permissions of linked files. This file implements the
// access-control half (§4.1) and the Sync-table bookkeeping (§4.5); the
// update-transaction half (write opens and closes, §4.2–4.4) is in
// update.go.

var (
	_ upcall.Service    = (*Server)(nil)
	_ upcall.CtxService = (*Server)(nil)
)

// Upcall dispatches one request from DLFS.
func (s *Server) Upcall(req upcall.Request) (upcall.Response, error) {
	return s.UpcallCtx(context.Background(), req)
}

// UpcallCtx is Upcall under a request context. When the context carries a
// trace span, the daemon's work gets a "dlfm" child span; the blocking and
// commit phases underneath annotate it further (lock, 2pc, archive).
//
// A killed server answers like a dead machine: every upcall fails with an
// error (the transport-loss class), never a panic in the caller's process.
// Kill closes the repository WAL out from under in-flight requests, so the
// recover converts the resulting panics for requests that raced the death.
func (s *Server) UpcallCtx(ctx context.Context, req upcall.Request) (resp upcall.Response, err error) {
	if !s.Alive() {
		return upcall.Response{}, fmt.Errorf("dlfm: server %s is down", s.cfg.Name)
	}
	defer func() {
		if r := recover(); r != nil {
			if s.Alive() {
				panic(r) // a real bug, not a raced death
			}
			resp, err = upcall.Response{}, fmt.Errorf("dlfm: server %s died mid-request: %v", s.cfg.Name, r)
		}
	}()
	if sp := obs.SpanFrom(ctx); sp != nil {
		c := sp.Child("dlfm")
		c.SetAttr("op", req.Op.String())
		ctx = obs.ContextWithSpan(ctx, c)
		defer c.End()
	}
	if req.Op > 0 && req.Op < upcallOpRange {
		s.upcallCtrs[req.Op].Inc()
	} else {
		s.cfg.Metrics.Counter("dlfm.upcall." + req.Op.String()).Inc()
	}
	switch req.Op {
	case upcall.OpValidateToken:
		return s.validateToken(req), nil
	case upcall.OpReadOpen:
		return s.readOpen(req), nil
	case upcall.OpWriteOpen:
		return s.writeOpen(ctx, req), nil
	case upcall.OpClose:
		return s.closeFile(ctx, req), nil
	case upcall.OpCheckRemove, upcall.OpCheckRename:
		return s.checkRemoveRename(req), nil
	default:
		return reject(upcall.CodeInternal, fmt.Sprintf("unknown upcall op %d", req.Op)), nil
	}
}

func reject(code upcall.Code, msg string) upcall.Response {
	return upcall.Response{OK: false, Code: code, Err: msg}
}

// validateToken handles the fs_lookup upcall: verify the embedded token and
// record a token entry for the user (§4.1). The entry — not the token — is
// what fs_open later checks, bridging the lookup/open decoupling.
func (s *Server) validateToken(req upcall.Request) upcall.Response {
	tok, err := s.auth.Validate(req.Token, req.Path)
	if err != nil {
		return reject(upcall.CodeBadToken, fmt.Sprintf("token rejected for %s: %v", req.Path, err))
	}
	s.tokMu.Lock()
	key := tokenKey{uid: fs.UID(req.UID), path: req.Path}
	// Keep the strongest live grant: a write token subsumes a read token.
	if cur, ok := s.tokens[key]; !ok || tok.Type.Covers(cur.typ) {
		s.tokens[key] = tokenEntry{typ: tok.Type, expiry: tok.Expiry}
	}
	s.tokMu.Unlock()
	return upcall.Response{OK: true}
}

// tokenGrant returns the live token entry for (uid, path), if any. The fast
// path is a shared-lock read; the exclusive lock is taken only to purge an
// expired entry.
func (s *Server) tokenGrant(uid fs.UID, path string) (tokenEntry, bool) {
	key := tokenKey{uid: uid, path: path}
	s.tokMu.RLock()
	e, ok := s.tokens[key]
	s.tokMu.RUnlock()
	if !ok {
		return tokenEntry{}, false
	}
	if s.cfg.Clock().After(e.expiry) {
		s.tokMu.Lock()
		if cur, still := s.tokens[key]; still && cur.expiry.Equal(e.expiry) {
			delete(s.tokens, key)
		}
		s.tokMu.Unlock()
		return tokenEntry{}, false
	}
	return e, true
}

// readOpen handles the fs_open upcall for read access to a file under full
// database control (and, with the strict-link-check extension, any file).
func (s *Server) readOpen(req upcall.Request) upcall.Response {
	fi, linked := s.lookupFile(req.Path)
	if !linked {
		if !req.Strict {
			return reject(upcall.CodeNotLinked, req.Path+" is not linked")
		}
		// Strict extension (§4.5 future work): register the open of an
		// unlinked file so a concurrent link transaction can detect it.
		sh, idx := s.pathShard(req.Path)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		id := s.newOpenLocked(sh, idx, req.Path, fs.UID(req.UID), false)
		s.syncFor(sh, req.Path).readers[id] = true
		s.cfg.Metrics.Counter("dlfm.open.read.strict").Inc()
		return upcall.Response{OK: true, OpenID: id}
	}
	if fi.mode.ReadNeedsToken() {
		grant, ok := s.tokenGrant(fs.UID(req.UID), req.Path)
		if !ok || !grant.typ.Covers(token.Read) {
			return reject(upcall.CodePermission, "no valid read token entry for "+req.Path)
		}
	} else if !fi.mode.FullControl() {
		// A read upcall for a partial-control file happens only when DLFM has
		// taken the file over for an in-place update (rfd): the paper's
		// design rejects such reads — read/write serialization without read
		// locks (§4.2). With strict mode the file may simply be idle.
		sh, idx := s.pathShard(req.Path)
		sh.mu.Lock()
		st := s.syncFor(sh, req.Path)
		writerActive := st.writer != 0
		if writerActive || !req.Strict {
			sh.mu.Unlock()
			return reject(upcall.CodePermission, req.Path+" is taken over for update")
		}
		id := s.newOpenLocked(sh, idx, req.Path, fs.UID(req.UID), false)
		st.readers[id] = true
		sh.mu.Unlock()
		s.cfg.Metrics.Counter("dlfm.open.read.strict").Inc()
		return upcall.Response{OK: true, OpenID: id}
	}
	// Serialize against writers for full-control files: a reader must not
	// observe an in-flight update (§4.2).
	sh, idx := s.pathShard(req.Path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !s.waitLocked(sh, req.Path, func(st *syncState) bool { return st.writer == 0 }) {
		return reject(upcall.CodeBusy, req.Path+" is being updated")
	}
	id := s.newOpenLocked(sh, idx, req.Path, fs.UID(req.UID), false)
	st := s.syncFor(sh, req.Path)
	st.readers[id] = true
	s.cfg.Metrics.Counter("dlfm.open.read").Inc()
	return upcall.Response{OK: true, OpenID: id, TakeOver: fi.mode.FullControl()}
}

// checkRemoveRename rejects user-level remove/rename of linked files: the
// referential-integrity guarantee ("no dangling pointers", §2.3).
func (s *Server) checkRemoveRename(req upcall.Request) upcall.Response {
	if _, linked := s.lookupFile(req.Path); linked {
		return reject(upcall.CodeIntegrity, req.Path+" is linked to the database")
	}
	if req.Op == upcall.OpCheckRename && req.NewPath != "" {
		// Renaming *onto* a linked file would also destroy it.
		if _, linked := s.lookupFile(req.NewPath); linked {
			return reject(upcall.CodeIntegrity, req.NewPath+" is linked to the database")
		}
	}
	return upcall.Response{OK: true}
}

// pathShard returns the open/sync shard owning a path, plus its index (the
// index is baked into open ids allocated under it).
func (s *Server) pathShard(path string) (*openShard, uint64) {
	idx := maphash.String(s.openSeed, path) & (openShardCount - 1)
	return &s.openShards[idx], idx
}

// openShardOf returns the shard an open id lives in — the id's low bits are
// its path's shard index.
func (s *Server) openShardOf(id uint64) *openShard {
	return &s.openShards[id&(openShardCount-1)]
}

// newOpenLocked allocates an open state in the path's shard. Caller holds
// sh.mu; idx is the shard's index (encoded into the id).
func (s *Server) newOpenLocked(sh *openShard, idx uint64, path string, uid fs.UID, write bool) uint64 {
	id := s.nextOpen.Add(1)<<openShardBits | idx
	st := &openState{id: id, path: path, uid: uid, write: write}
	if node, err := s.cfg.Phys.Lookup(path); err == nil {
		if attr, err := s.cfg.Phys.Getattr(node); err == nil {
			st.mtime = attr.Mtime
		}
	}
	sh.opens[id] = st
	return id
}

// syncFor returns the sync state for a path, creating it. Caller holds the
// path's shard mutex.
func (s *Server) syncFor(sh *openShard, path string) *syncState {
	st, ok := sh.syncs[path]
	if !ok {
		st = &syncState{readers: make(map[uint64]bool)}
		sh.syncs[path] = st
	}
	return st
}

// waitLocked blocks until pred holds for the path's sync state and no
// archive is in flight for it, or the configured open-wait deadline passes.
// Returns false on timeout. Caller holds the path's shard mutex on entry and
// exit; the wait itself parks on the path's own channel, so only changes to
// THIS path (or the deadline) wake it.
func (s *Server) waitLocked(sh *openShard, path string, pred func(*syncState) bool) bool {
	deadline := time.Now().Add(s.cfg.OpenWait)
	for {
		st := s.syncFor(sh, path)
		if pred(st) && !st.archiving {
			return true
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		ch := make(chan struct{})
		st.waiters = append(st.waiters, ch)
		sh.mu.Unlock()
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
		sh.mu.Lock()
	}
}

// OpenCount reports live opens (tests and status tooling).
func (s *Server) OpenCount() int {
	n := 0
	for i := range s.openShards {
		sh := &s.openShards[i]
		sh.mu.Lock()
		n += len(sh.opens)
		sh.mu.Unlock()
	}
	return n
}

// SyncEntries reports the Sync-table view for a path: reader count and
// whether a writer holds it (§4.5).
func (s *Server) SyncEntries(path string) (readers int, writer bool) {
	sh, _ := s.pathShard(path)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.syncs[path]
	if !ok {
		return 0, false
	}
	return len(st.readers), st.writer != 0
}

// TokenEntryCount reports live token entries (tests).
func (s *Server) TokenEntryCount() int {
	s.tokMu.RLock()
	defer s.tokMu.RUnlock()
	return len(s.tokens)
}
