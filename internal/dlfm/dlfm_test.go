package dlfm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/datalink"
	"datalinks/internal/fs"
	"datalinks/internal/sqlmini"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// fakeHost implements Host with controllable outcomes.
type fakeHost struct {
	metaErr  error
	outcomes map[uint64]bool
	state    uint64
	nextTxn  uint64
	metaLog  []string
}

func newFakeHost() *fakeHost {
	return &fakeHost{outcomes: make(map[uint64]bool), state: 1, nextTxn: 1000}
}

func (h *fakeHost) MetaUpdate(server, path string, size int64, mtime time.Time, sub sqlmini.XRM) (uint64, error) {
	h.nextTxn++
	id := h.nextTxn
	if h.metaErr != nil {
		// Host aborts: tell the participant.
		_ = sub.AbortXRM(id)
		h.outcomes[id] = false
		return 0, h.metaErr
	}
	if err := sub.PrepareXRM(id); err != nil {
		_ = sub.AbortXRM(id)
		h.outcomes[id] = false
		return 0, err
	}
	h.state++
	h.outcomes[id] = true
	if err := sub.CommitXRM(id); err != nil {
		return 0, err
	}
	h.metaLog = append(h.metaLog, path)
	return h.state, nil
}

func (h *fakeHost) TxnOutcome(txnID uint64) (bool, bool) {
	c, ok := h.outcomes[txnID]
	return c, ok
}

func (h *fakeHost) StateID() uint64 { return h.state }

const owner fs.UID = 100

func newServer(t *testing.T) (*Server, *fs.FS, *fakeHost) {
	t.Helper()
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	seedFile(t, phys, "/d/f.bin", "v0")
	host := newFakeHost()
	srv, err := New(Config{
		Name:     "fs1",
		Phys:     phys,
		Archive:  archive.New(0, nil),
		Host:     host,
		TokenKey: []byte("k"),
		OpenWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new dlfm: %v", err)
	}
	return srv, phys, host
}

func seedFile(t *testing.T, phys *fs.FS, path, content string) {
	t.Helper()
	if err := phys.WriteFile(path, []byte(content)); err != nil {
		t.Fatalf("seed: %v", err)
	}
	ino, _ := phys.Lookup(path)
	phys.Chown(ino, fs.Cred{UID: fs.Root}, owner)
	phys.Chmod(ino, fs.Cred{UID: owner}, 0o644)
}

// linkCommitted links a file and commits the host transaction.
func linkCommitted(t *testing.T, srv *Server, path, mode string) {
	t.Helper()
	m, err := datalink.ParseMode(mode)
	if err != nil {
		t.Fatal(err)
	}
	hostTxn := uint64(time.Now().UnixNano()) // unique enough per test
	if err := srv.LinkFile(hostTxn, path, datalink.ColumnOptions{Mode: m, Recovery: true}); err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := srv.PrepareXRM(hostTxn); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := srv.CommitXRM(hostTxn); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestLinkRepositoryAndPermissions(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	if !srv.IsLinked("/d/f.bin") {
		t.Fatal("not linked")
	}
	mode, _ := srv.FileMode("/d/f.bin")
	if mode.String() != "rfd" {
		t.Fatalf("mode = %s", mode)
	}
	ino, _ := phys.Lookup("/d/f.bin")
	attr, _ := phys.Getattr(ino)
	if attr.Mode&0o222 != 0 {
		t.Fatalf("rfd file writable after link: %o", attr.Mode)
	}
	// Version 0 archived.
	if len(srv.cfg.Archive.Versions("fs1", "/d/f.bin")) != 1 {
		t.Fatal("v0 not archived")
	}
}

func TestDoubleLinkRejected(t *testing.T) {
	srv, _, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	err := srv.LinkFile(1, "/d/f.bin", datalink.ColumnOptions{Mode: datalink.RFD})
	if !errors.Is(err, ErrAlreadyLinked) {
		t.Fatalf("double link = %v", err)
	}
	// The failed sub-transaction must be aborted by the host.
	if err := srv.AbortXRM(1); err != nil {
		t.Fatalf("abort: %v", err)
	}
}

func TestLinkMissingFile(t *testing.T) {
	srv, _, _ := newServer(t)
	err := srv.LinkFile(1, "/d/missing.bin", datalink.ColumnOptions{Mode: datalink.RFD})
	if !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("link missing = %v", err)
	}
	_ = srv.AbortXRM(1)
}

func TestUnlinkRestoresPermissionsOnCommitOnly(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	ino, _ := phys.Lookup("/d/f.bin")

	const hostTxn = 77
	if err := srv.UnlinkFile(hostTxn, "/d/f.bin"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	// Before commit the file stays protected.
	attr, _ := phys.Getattr(ino)
	if attr.UID != srv.UID() {
		t.Fatal("file unprotected before unlink commit")
	}
	srv.PrepareXRM(hostTxn)
	srv.CommitXRM(hostTxn)
	attr, _ = phys.Getattr(ino)
	if attr.UID != owner || attr.Mode != 0o644 {
		t.Fatalf("not restored after unlink: uid=%d mode=%o", attr.UID, attr.Mode)
	}
	if srv.IsLinked("/d/f.bin") {
		t.Fatal("still linked")
	}
}

func TestUnlinkAbortKeepsLink(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	const hostTxn = 78
	srv.UnlinkFile(hostTxn, "/d/f.bin")
	srv.AbortXRM(hostTxn)
	if !srv.IsLinked("/d/f.bin") {
		t.Fatal("link lost after aborted unlink")
	}
	ino, _ := phys.Lookup("/d/f.bin")
	attr, _ := phys.Getattr(ino)
	if attr.UID != srv.UID() {
		t.Fatal("file lost protection after aborted unlink")
	}
}

// openWrite performs the full token+open protocol against the server.
func openWrite(t *testing.T, srv *Server, path string, uid fs.UID) uint64 {
	t.Helper()
	tok := srv.Authority().Issue(token.Write, path)
	resp, err := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: path, Token: tok, UID: int32(uid)})
	if err != nil || !resp.OK {
		t.Fatalf("validate: %+v, %v", resp, err)
	}
	resp, err = srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: path, UID: int32(uid), Write: true})
	if err != nil || !resp.OK {
		t.Fatalf("write open: %+v, %v", resp, err)
	}
	return resp.OpenID
}

func closeFile(t *testing.T, srv *Server, phys *fs.FS, path string, openID uint64) upcall.Response {
	t.Helper()
	ino, _ := phys.Lookup(path)
	attr, _ := phys.Getattr(ino)
	resp, err := srv.Upcall(upcall.Request{
		Op: upcall.OpClose, Path: path, OpenID: openID,
		Size: attr.Size, Mtime: attr.Mtime.UnixNano(),
	})
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	return resp
}

func TestWriteOpenCloseCommitsVersion(t *testing.T) {
	srv, phys, host := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	id := openWrite(t, srv, "/d/f.bin", owner)

	// The file is taken over during the update.
	ino, _ := phys.Lookup("/d/f.bin")
	attr, _ := phys.Getattr(ino)
	if attr.UID != srv.UID() {
		t.Fatal("no takeover during update")
	}
	if got := srv.UpdatesInFlight(); len(got) != 1 {
		t.Fatalf("update entries = %v", got)
	}
	// Write new content (as root, simulating the approved writer).
	phys.WriteFile("/d/f.bin", []byte("v1"))
	resp := closeFile(t, srv, phys, "/d/f.bin", id)
	if !resp.OK {
		t.Fatalf("close rejected: %+v", resp)
	}
	srv.WaitArchives()
	// Metadata was pushed to the host, version archived, takeover released.
	if len(host.metaLog) != 1 || host.metaLog[0] != "/d/f.bin" {
		t.Fatalf("meta updates = %v", host.metaLog)
	}
	vs := srv.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 2 || string(vs[1].Content()) != "v1" {
		t.Fatalf("versions = %+v", vs)
	}
	attr, _ = phys.Getattr(ino)
	if attr.UID != owner {
		t.Fatal("takeover not released")
	}
	if len(srv.UpdatesInFlight()) != 0 {
		t.Fatal("update entry not cleared")
	}
}

func TestCloseFailureRollsBack(t *testing.T) {
	srv, phys, host := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	id := openWrite(t, srv, "/d/f.bin", owner)
	phys.WriteFile("/d/f.bin", []byte("doomed"))
	host.metaErr = errors.New("host refused")
	resp := closeFile(t, srv, phys, "/d/f.bin", id)
	if resp.OK {
		t.Fatal("close should fail when the host transaction aborts")
	}
	// Rolled back to v0, in-flight quarantined.
	data, _ := phys.ReadFile("/d/f.bin")
	if string(data) != "v0" {
		t.Fatalf("content = %q, want v0", data)
	}
	names, _ := phys.ReadDir(DefaultQuarantineDir)
	if len(names) != 1 {
		t.Fatalf("quarantine = %v", names)
	}
	if len(srv.UpdatesInFlight()) != 0 {
		t.Fatal("update entry survived rollback")
	}
}

func TestWriteOpenRequiresWriteToken(t *testing.T) {
	srv, _, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	// Read token only.
	tok := srv.Authority().Issue(token.Read, "/d/f.bin")
	srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: int32(owner)})
	resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: "/d/f.bin", UID: int32(owner), Write: true})
	if resp.OK || resp.Code != upcall.CodePermission {
		t.Fatalf("write with read token = %+v", resp)
	}
}

func TestTokenEntryExpiry(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := &now
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	phys.WriteFile("/d/f.bin", []byte("x"))
	host := newFakeHost()
	srv, err := New(Config{
		Name: "fs1", Phys: phys, Archive: archive.New(0, nil), Host: host,
		TokenKey: []byte("k"), Clock: func() time.Time { return *clock }, TokenTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	tok := srv.Authority().Issue(token.Read, "/d/f.bin")
	resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: tok, UID: 9})
	if !resp.OK {
		t.Fatalf("validate: %+v", resp)
	}
	if srv.TokenEntryCount() != 1 {
		t.Fatal("no token entry")
	}
	// After expiry, the entry no longer grants opens.
	*clock = now.Add(2 * time.Minute)
	resp, _ = srv.Upcall(upcall.Request{Op: upcall.OpReadOpen, Path: "/d/f.bin", UID: 9})
	if resp.OK {
		t.Fatal("expired entry granted access")
	}
}

func TestUnmodifiedCloseSkipsHost(t *testing.T) {
	srv, phys, host := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	id := openWrite(t, srv, "/d/f.bin", owner)
	// No write between open and close.
	resp := closeFile(t, srv, phys, "/d/f.bin", id)
	if !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	if len(host.metaLog) != 0 {
		t.Fatal("unmodified close ran a host metadata update")
	}
	if len(srv.cfg.Archive.Versions("fs1", "/d/f.bin")) != 1 {
		t.Fatal("unmodified close archived a version")
	}
}

func TestCrashRecoveryInDoubtCommit(t *testing.T) {
	srv, phys, host := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")

	// Start a link of a second file and crash between prepare and commit.
	seedFile(t, phys, "/d/g.bin", "g0")
	const hostTxn = 500
	if err := srv.LinkFile(hostTxn, "/d/g.bin", datalink.ColumnOptions{Mode: datalink.RFD, Recovery: true}); err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := srv.PrepareXRM(hostTxn); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	host.outcomes[hostTxn] = true // the host committed

	durable := srv.CrashRepo()
	srv2, rep, err := Recover(Config{
		Name: "fs1", Phys: phys, Archive: srv.cfg.Archive, Host: host, TokenKey: []byte("k"),
	}, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.ResolvedCommit) != 1 {
		t.Fatalf("resolved commits = %v", rep.ResolvedCommit)
	}
	if !srv2.IsLinked("/d/g.bin") {
		t.Fatal("committed link lost in recovery")
	}
	// v0 of the new link archived during recovery.
	if len(srv2.cfg.Archive.Versions("fs1", "/d/g.bin")) != 1 {
		t.Fatal("v0 not archived during recovery")
	}
}

func TestCrashRecoveryInDoubtPresumedAbort(t *testing.T) {
	srv, phys, host := newServer(t)
	seedFile(t, phys, "/d/g.bin", "g0")
	const hostTxn = 501
	srv.LinkFile(hostTxn, "/d/g.bin", datalink.ColumnOptions{Mode: datalink.RDD, Recovery: true})
	srv.PrepareXRM(hostTxn)
	// Host never decided (unknown outcome -> presumed abort).

	durable := srv.CrashRepo()
	srv2, rep, err := Recover(Config{
		Name: "fs1", Phys: phys, Archive: srv.cfg.Archive, Host: host, TokenKey: []byte("k"),
	}, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.ResolvedAbort) != 1 {
		t.Fatalf("resolved aborts = %v", rep.ResolvedAbort)
	}
	if srv2.IsLinked("/d/g.bin") {
		t.Fatal("presumed-abort link survived")
	}
	// Takeover undone.
	ino, _ := phys.Lookup("/d/g.bin")
	attr, _ := phys.Getattr(ino)
	if attr.UID != owner || attr.Mode != 0o644 {
		t.Fatalf("permissions not compensated: uid=%d mode=%o", attr.UID, attr.Mode)
	}
}

func TestCrashRecoveryPendingArchive(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	id := openWrite(t, srv, "/d/f.bin", owner)
	phys.WriteFile("/d/f.bin", []byte("v1"))

	// Block the archiver with huge latency so the close commits but the
	// archive job hangs; then crash.
	srv.cfg.Archive.SetLatency(time.Hour)
	done := make(chan upcall.Response, 1)
	go func() {
		ino, _ := phys.Lookup("/d/f.bin")
		attr, _ := phys.Getattr(ino)
		resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpClose, Path: "/d/f.bin", OpenID: id, Size: attr.Size, Mtime: attr.Mtime.UnixNano()})
		done <- resp
	}()
	resp := <-done
	if !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	// Crash while the archive job hangs; only then un-jam the device so
	// recovery can use it.
	durable := srv.CrashRepo()
	srv.cfg.Archive.SetLatency(0)
	srv2, _, err := Recover(Config{
		Name: "fs1", Phys: phys, Archive: srv.cfg.Archive, Host: newFakeHost(), TokenKey: []byte("k"),
	}, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Whether recovery re-archived the version itself or found it already
	// completed by the dying archiver (both races are legal), the outcome
	// must be: v1 archived, no pending rows left.
	vs := srv2.cfg.Archive.Versions("fs1", "/d/f.bin")
	if len(vs) != 2 || string(vs[1].Content()) != "v1" {
		t.Fatalf("versions after recovery = %+v", vs)
	}
	pend, err := srv2.Repo().Table("dlfm_pending_archive")
	if err != nil {
		t.Fatal(err)
	}
	if pend.Len() != 0 {
		t.Fatalf("pending-archive rows left: %d", pend.Len())
	}
}

func TestReconcileLinks(t *testing.T) {
	srv, phys, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	seedFile(t, phys, "/d/keep.bin", "k")

	// Desired state: f.bin unlinked, keep.bin linked.
	desired := map[string]datalink.ColumnOptions{
		"/d/keep.bin": {Mode: datalink.RDD, Recovery: true},
	}
	if err := srv.ReconcileLinks(desired); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if srv.IsLinked("/d/f.bin") {
		t.Fatal("f.bin should be dissolved")
	}
	if !srv.IsLinked("/d/keep.bin") {
		t.Fatal("keep.bin should be linked")
	}
	ino, _ := phys.Lookup("/d/f.bin")
	attr, _ := phys.Getattr(ino)
	if attr.UID == srv.UID() {
		t.Fatal("dissolved file still taken over")
	}
	ino, _ = phys.Lookup("/d/keep.bin")
	attr, _ = phys.Getattr(ino)
	if attr.UID != srv.UID() {
		t.Fatal("reconciled link not taken over")
	}
}

func TestAgentModel(t *testing.T) {
	srv, _, _ := newServer(t)
	a1 := srv.ConnectAgent()
	a2 := srv.ConnectAgent()
	if a1.ID() == a2.ID() {
		t.Fatal("agents share an id")
	}
	if srv.AgentCount() != 2 {
		t.Fatalf("agent count = %d", srv.AgentCount())
	}
	if a1.Server() != srv {
		t.Fatal("agent server mismatch")
	}
}

func TestRemoveRenameCheck(t *testing.T) {
	srv, _, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rff")
	resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpCheckRemove, Path: "/d/f.bin"})
	if resp.OK || resp.Code != upcall.CodeIntegrity {
		t.Fatalf("remove check = %+v", resp)
	}
	resp, _ = srv.Upcall(upcall.Request{Op: upcall.OpCheckRemove, Path: "/d/other.bin"})
	if !resp.OK {
		t.Fatalf("remove of unlinked = %+v", resp)
	}
	resp, _ = srv.Upcall(upcall.Request{Op: upcall.OpCheckRename, Path: "/d/x.bin", NewPath: "/d/f.bin"})
	if resp.OK {
		t.Fatal("rename onto linked file allowed")
	}
}

func TestRestoreAsOfSkipsNonRecoveryFiles(t *testing.T) {
	srv, phys, _ := newServer(t)
	// Link without recovery.
	const hostTxn = 600
	srv.LinkFile(hostTxn, "/d/f.bin", datalink.ColumnOptions{Mode: datalink.RFF, Recovery: false})
	srv.PrepareXRM(hostTxn)
	srv.CommitXRM(hostTxn)
	if err := srv.RestoreAsOf(1); err != nil {
		t.Fatalf("restore with no recovery files: %v", err)
	}
	data, _ := phys.ReadFile("/d/f.bin")
	if string(data) != "v0" {
		t.Fatalf("non-recovery file touched: %q", data)
	}
}

func TestBadTokenRejectedAtValidate(t *testing.T) {
	srv, _, _ := newServer(t)
	linkCommitted(t, srv, "/d/f.bin", "rdd")
	resp, _ := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: "/d/f.bin", Token: "w:1:forged", UID: 9})
	if resp.OK || resp.Code != upcall.CodeBadToken {
		t.Fatalf("forged token = %+v", resp)
	}
	if !strings.Contains(resp.Err, "token") {
		t.Fatalf("err = %q", resp.Err)
	}
}
