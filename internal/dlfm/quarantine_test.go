package dlfm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
)

// newFrozenServer builds a DLFM whose repository AND physical file system
// share one settable fake clock, so tests can freeze time (quarantine-name
// collisions) and advance it (TTL expiry).
func newFrozenServer(t *testing.T, now *time.Time, ttl time.Duration) (*Server, *fs.FS, *fakeHost) {
	t.Helper()
	clock := func() time.Time { return *now }
	phys := fs.NewWithClock(clock)
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	host := newFakeHost()
	srv, err := New(Config{
		Name:          "fs1",
		Phys:          phys,
		Archive:       archive.New(0, clock),
		Host:          host,
		TokenKey:      []byte("k"),
		Clock:         clock,
		OpenWait:      100 * time.Millisecond,
		QuarantineTTL: ttl,
	})
	if err != nil {
		t.Fatalf("new dlfm: %v", err)
	}
	return srv, phys, host
}

// TestQuarantineNamesNeverCollide: the old scheme flattened paths with
// ReplaceAll("/", "_") plus a clock timestamp, so /d/a/b_c and /d/a_b/c
// rolled back in the same (frozen) clock tick silently overwrote each
// other's quarantined content. The injective percent-escaped encoding plus
// the monotonic sequence number must keep both copies.
func TestQuarantineNamesNeverCollide(t *testing.T) {
	now := time.Unix(1000, 0)
	srv, phys, _ := newFrozenServer(t, &now, 0)
	defer srv.Close()

	paths := []string{"/d/a/b_c", "/d/a_b/c"}
	inflight := map[string][]byte{
		"/d/a/b_c": []byte("in-flight content of /d/a/b_c"),
		"/d/a_b/c": []byte("in-flight content of /d/a_b/c"),
	}
	for _, p := range paths {
		phys.MkdirAll(p[:len(p)-2], fs.Cred{UID: fs.Root}, 0o777)
		seedFile(t, phys, p, "committed "+p)
		linkCommitted(t, srv, p, "rfd")
		openWrite(t, srv, p, owner)
		if err := phys.WriteFile(p, inflight[p]); err != nil {
			t.Fatal(err)
		}
	}
	// Both rollbacks happen in the same frozen clock tick.
	for _, p := range paths {
		if err := srv.AbortUpdateByPath(p); err != nil {
			t.Fatalf("abort %s: %v", p, err)
		}
	}

	q := srv.QuarantinedFiles()
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d files (%v), want both in-flight copies", len(q), q)
	}
	// Every in-flight content must survive, each in its own file.
	found := map[string]bool{}
	for _, name := range q {
		data, err := phys.ReadFile(DefaultQuarantineDir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		for p, want := range inflight {
			if bytes.Equal(data, want) {
				found[p] = true
			}
		}
	}
	for p := range inflight {
		if !found[p] {
			t.Fatalf("in-flight content of %s lost from quarantine (files: %v)", p, q)
		}
	}
	// And the live files rolled back to their committed versions.
	for _, p := range paths {
		got, _ := phys.ReadFile(p)
		if string(got) != "committed "+p {
			t.Fatalf("%s = %q after rollback", p, got)
		}
	}
}

// TestQuarantineSeqSurvivesRecovery: the anti-collision sequence counter is
// in-memory, so a recovered server must reseed it past surviving quarantine
// files — otherwise a post-crash rollback under the same frozen clock tick
// would regenerate a pre-crash name and overwrite its content.
func TestQuarantineSeqSurvivesRecovery(t *testing.T) {
	now := time.Unix(3000, 0)
	srv, phys, host := newFrozenServer(t, &now, 0)

	seedFile(t, phys, "/d/f.bin", "committed")
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	openWrite(t, srv, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", []byte("junk one")); err != nil {
		t.Fatal(err)
	}
	if err := srv.AbortUpdateByPath("/d/f.bin"); err != nil {
		t.Fatal(err)
	}

	// Crash with a second update in flight; recovery rolls it back in the
	// same (frozen) clock tick.
	openWrite(t, srv, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", []byte("junk two")); err != nil {
		t.Fatal(err)
	}
	durable := srv.CrashRepo()
	clock := func() time.Time { return now }
	srv2, _, err := Recover(Config{
		Name: "fs1", Phys: phys, Archive: srv.cfg.Archive, Host: host,
		TokenKey: []byte("k"), Clock: clock,
	}, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer srv2.Close()

	q := srv2.QuarantinedFiles()
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d files (%v); recovery overwrote the pre-crash copy", len(q), q)
	}
	contents := map[string]bool{}
	for _, name := range q {
		data, err := phys.ReadFile(DefaultQuarantineDir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		contents[string(data)] = true
	}
	if !contents["junk one"] || !contents["junk two"] {
		t.Fatalf("quarantined contents = %v, want both junk copies", contents)
	}
}

// TestQuarantineTTLExpiry: quarantined files older than the TTL are swept;
// younger ones survive.
func TestQuarantineTTLExpiry(t *testing.T) {
	now := time.Unix(2000, 0)
	srv, phys, _ := newFrozenServer(t, &now, time.Minute)
	defer srv.Close()

	seedFile(t, phys, "/d/f.bin", "v0")
	linkCommitted(t, srv, "/d/f.bin", "rfd")

	rollback := func() {
		openWrite(t, srv, "/d/f.bin", owner)
		if err := phys.WriteFile("/d/f.bin", []byte("junk")); err != nil {
			t.Fatal(err)
		}
		if err := srv.AbortUpdateByPath("/d/f.bin"); err != nil {
			t.Fatal(err)
		}
	}
	rollback() // old quarantine file, stamped at t0
	now = now.Add(45 * time.Second)
	rollback() // young quarantine file, stamped at t0+45s

	if got := len(srv.QuarantinedFiles()); got != 2 {
		t.Fatalf("quarantined files = %d, want 2", got)
	}
	// Nothing is older than the TTL yet.
	if n := srv.SweepQuarantine(); n != 0 {
		t.Fatalf("premature expiry of %d files", n)
	}
	// 30s later the first copy (75s old) has expired, the second (30s) not.
	now = now.Add(30 * time.Second)
	if n := srv.SweepQuarantine(); n != 1 {
		t.Fatalf("expired %d files, want 1", n)
	}
	if got := len(srv.QuarantinedFiles()); got != 1 {
		t.Fatalf("quarantined files after sweep = %d, want 1", got)
	}
	// Far in the future everything is gone.
	now = now.Add(time.Hour)
	if n := srv.SweepQuarantine(); n != 1 {
		t.Fatalf("expired %d files, want 1", n)
	}
	if got := len(srv.QuarantinedFiles()); got != 0 {
		t.Fatalf("quarantine not empty after full expiry: %v", srv.QuarantinedFiles())
	}
}

// TestRecoveryRestoresFromDiskTier: with the durable tier enabled and an LRU
// budget too small to keep anything resident, a crash mid-update must still
// restore the last committed version — its chunks page back in from the
// on-disk store.
func TestRecoveryRestoresFromDiskTier(t *testing.T) {
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	host := newFakeHost()
	arch, err := archive.NewTiered(0, nil, archive.TierConfig{
		Dir:          t.TempDir(),
		MemoryBudget: 16, // 1 byte per LRU shard: every blob evicts after write
	})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	cfg := Config{
		Name: "fs1", Phys: phys, Archive: arch, Host: host,
		TokenKey: []byte("k"), OpenWait: 100 * time.Millisecond,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Commit a multi-chunk version so the restore needs real chunk page-ins.
	committed := make([]byte, 3*64<<10+777)
	for i := range committed {
		committed[i] = byte(i * 7)
	}
	seedFile(t, phys, "/d/f.bin", "v0")
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	id := openWrite(t, srv, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", committed); err != nil {
		t.Fatal(err)
	}
	if resp := closeFile(t, srv, phys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("commit close: %+v", resp)
	}
	srv.WaitArchives()
	if arch.Tier().Spills == 0 {
		t.Fatal("nothing spilled to the disk tier")
	}

	// Crash with a new update in flight.
	openWrite(t, srv, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", []byte("in-flight junk")); err != nil {
		t.Fatal(err)
	}
	durable := srv.CrashRepo()
	pageInsBefore := arch.Tier().PageIns
	srv2, rep, err := Recover(cfg, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer srv2.Close()
	if len(rep.RestoredFiles) != 1 {
		t.Fatalf("restored files = %v", rep.RestoredFiles)
	}
	got, err := phys.ReadFile("/d/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, committed) {
		t.Fatalf("restored content wrong: %d bytes, want %d", len(got), len(committed))
	}
	if arch.Tier().PageIns <= pageInsBefore {
		t.Fatal("restore did not page chunks in from disk")
	}
}

// TestTieredCommitChurnBoundsResidency: many committed versions with the
// disk tier on — archive memory stays under the LRU budget while the
// logical archive grows, and every version remains restorable.
func TestTieredCommitChurnBoundsResidency(t *testing.T) {
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	host := newFakeHost()
	const budget = 4 * 64 << 10
	arch, err := archive.NewTiered(0, nil, archive.TierConfig{Dir: t.TempDir(), MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	srv, err := New(Config{
		Name: "fs1", Phys: phys, Archive: arch, Host: host,
		TokenKey: []byte("k"), OpenWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	content := make([]byte, 2*64<<10+99)
	seedFile(t, phys, "/d/f.bin", string(content))
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	want := make(map[int][]byte)
	for v := 1; v <= 24; v++ {
		id := openWrite(t, srv, "/d/f.bin", owner)
		copy(content, fmt.Sprintf("version %03d ", v))
		content[64<<10+v] = byte(v) // touch the second chunk too
		if err := phys.WriteFile("/d/f.bin", content); err != nil {
			t.Fatal(err)
		}
		if resp := closeFile(t, srv, phys, "/d/f.bin", id); !resp.OK {
			t.Fatalf("close v%d: %+v", v, resp)
		}
		srv.WaitArchives()
		want[v] = append([]byte(nil), content...)
	}
	if got := arch.Tier().ResidentBytes; got > budget {
		t.Fatalf("archive resident %d bytes exceeds LRU budget %d", got, budget)
	}
	for v, wantContent := range want {
		e, err := arch.Get("fs1", "/d/f.bin", archive.Version(v))
		if err != nil {
			t.Fatalf("get v%d: %v", v, err)
		}
		if !bytes.Equal(e.Content(), wantContent) {
			t.Fatalf("v%d content diverged", v)
		}
	}
}
