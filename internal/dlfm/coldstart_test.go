package dlfm

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
	"datalinks/internal/token"
	"datalinks/internal/upcall"
)

// coldConfig builds a disk-backed DLFM config over repoDir/archDir.
func coldConfig(t *testing.T, phys *fs.FS, repoDir, archDir string) (Config, *archive.Store) {
	t.Helper()
	arch, err := archive.NewTiered(0, nil, archive.TierConfig{Dir: archDir, MemoryBudget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Name: "fs1", Phys: phys, Archive: arch, Host: newFakeHost(),
		TokenKey: []byte("k"), OpenWait: 100 * time.Millisecond,
		RepoDir: repoDir, RepoCheckpointBytes: 8 << 10,
	}, arch
}

// commitVersion runs one full update transaction writing content to path.
func commitVersion(t *testing.T, srv *Server, phys *fs.FS, path string, content []byte) {
	t.Helper()
	id := openWrite(t, srv, path, owner)
	if err := phys.WriteFile(path, content); err != nil {
		t.Fatal(err)
	}
	if resp := closeFile(t, srv, phys, path, id); !resp.OK {
		t.Fatalf("close %s: %+v", path, resp)
	}
}

// TestColdStartWholeProcessKill: the entire process dies — DLFM, its
// repository, AND the RAM-backed physical file system. Only the repository
// directory (WAL + snapshot) and the archive directory survive. A cold Open
// from those two directories must rebuild every link byte-identically:
// untouched files materialized from the archive, the in-flight update rolled
// back to its last committed version, and nothing re-archived.
func TestColdStartWholeProcessKill(t *testing.T) {
	root := t.TempDir()
	repoDir, archDir := root+"/repo", root+"/archive"

	phys1 := fs.New()
	phys1.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	cfg, arch1 := coldConfig(t, phys1, repoDir, archDir)
	srv, rep, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("fresh open produced a recovery report: %+v", rep)
	}

	want := map[string][]byte{}
	for _, p := range []string{"/d/a.bin", "/d/b.bin"} {
		seedFile(t, phys1, p, "v0 of "+p)
		linkCommitted(t, srv, p, "rfd")
		want[p] = []byte("v0 of " + p)
	}
	for v := 1; v <= 3; v++ {
		content := []byte(fmt.Sprintf("a.bin committed version %d %s", v, strings.Repeat("x", 900)))
		commitVersion(t, srv, phys1, "/d/a.bin", content)
		want["/d/a.bin"] = content
	}
	content := []byte("b.bin committed version 1 " + strings.Repeat("y", 900))
	commitVersion(t, srv, phys1, "/d/b.bin", content)
	want["/d/b.bin"] = content
	srv.WaitArchives()

	// An update is in flight on a.bin when the machine dies.
	openWrite(t, srv, "/d/a.bin", owner)
	if err := phys1.WriteFile("/d/a.bin", []byte("in-flight junk")); err != nil {
		t.Fatal(err)
	}

	// Whole-process death: server killed, archive store dropped, and the
	// RAM-backed phys simply ceases to exist.
	srv.Kill()
	arch1.Close()

	phys2 := fs.New() // not even /d survives
	cfg2, arch2 := coldConfig(t, phys2, repoDir, archDir)
	defer arch2.Close()
	srv2, rep2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("cold open: %v", err)
	}
	defer srv2.Close()
	if rep2 == nil {
		t.Fatal("cold open of a used repository returned no recovery report")
	}
	if !rep2.Repo.SnapshotUsed {
		t.Fatalf("repository recovery ignored the checkpoint: %+v", rep2.Repo)
	}
	if len(rep2.LostFiles) != 0 {
		t.Fatalf("lost files on a fully archived workload: %v", rep2.LostFiles)
	}
	// b.bin was at rest: materialized. a.bin was mid-update: rolled back.
	if len(rep2.MaterializedFiles) != 1 || rep2.MaterializedFiles[0] != "/d/b.bin" {
		t.Fatalf("materialized = %v, want [/d/b.bin]", rep2.MaterializedFiles)
	}
	if len(rep2.RestoredFiles) != 1 || rep2.RestoredFiles[0] != "/d/a.bin" {
		t.Fatalf("restored = %v, want [/d/a.bin]", rep2.RestoredFiles)
	}
	// Every archived version was already durable; nothing re-archived.
	if len(rep2.ArchivedVersions) != 0 {
		t.Fatalf("cold start re-archived %v", rep2.ArchivedVersions)
	}
	if d := arch2.Dedup(); d.NewBytes != 0 {
		t.Fatalf("cold start transferred %d new bytes to the archive", d.NewBytes)
	}
	for p, wantContent := range want {
		got, err := phys2.ReadFile(p)
		if err != nil || !bytes.Equal(got, wantContent) {
			t.Fatalf("%s diverged after cold start (err=%v, %d bytes, want %d)", p, err, len(got), len(wantContent))
		}
		if !srv2.IsLinked(p) {
			t.Fatalf("%s not linked after cold start", p)
		}
	}
	// The in-flight junk never existed on the cold phys, so nothing to
	// quarantine.
	if q := srv2.QuarantinedFiles(); len(q) != 0 {
		t.Fatalf("cold start quarantined %v with no surviving in-flight bytes", q)
	}

	// The recovered server keeps working on top of the restored state.
	commitVersion(t, srv2, phys2, "/d/a.bin", []byte("post-cold-start version"))
	srv2.WaitArchives()
	e, err := arch2.Latest("fs1", "/d/a.bin")
	if err != nil || !bytes.Equal(e.Content(), []byte("post-cold-start version")) {
		t.Fatalf("post-cold-start version not archived (%v)", err)
	}
}

// TestColdStartConcurrentInFlightQuarantine: the process dies with several
// concurrent update transactions open, but the physical file system survives
// (warm disk, dead process). Reconciliation must quarantine every in-flight
// version and roll each file back to its last committed content.
func TestColdStartConcurrentInFlightQuarantine(t *testing.T) {
	root := t.TempDir()
	repoDir, archDir := root+"/repo", root+"/archive"

	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	cfg, arch1 := coldConfig(t, phys, repoDir, archDir)
	srv, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const files = 4
	paths := make([]string, files)
	want := map[string][]byte{}
	for i := range paths {
		p := fmt.Sprintf("/d/f%d.bin", i)
		paths[i] = p
		seedFile(t, phys, p, "seed")
		linkCommitted(t, srv, p, "rfd")
		content := []byte(fmt.Sprintf("committed content of %s %s", p, strings.Repeat("z", 500)))
		commitVersion(t, srv, phys, p, content)
		want[p] = content
	}
	srv.WaitArchives()

	// Concurrent in-flight updates, then the process dies mid-update.
	errs := make(chan error, files)
	var wg sync.WaitGroup
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			tok := srv.Authority().Issue(token.Write, p)
			if resp, err := srv.Upcall(upcall.Request{Op: upcall.OpValidateToken, Path: p, Token: tok, UID: int32(owner)}); err != nil || !resp.OK {
				errs <- fmt.Errorf("validate %s: %+v %v", p, resp, err)
				return
			}
			if resp, err := srv.Upcall(upcall.Request{Op: upcall.OpWriteOpen, Path: p, UID: int32(owner), Write: true}); err != nil || !resp.OK {
				errs <- fmt.Errorf("open %s: %+v %v", p, resp, err)
				return
			}
			errs <- phys.WriteFile(p, []byte("in-flight junk on "+p))
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	srv.Kill()
	arch1.Close()

	cfg2, arch2 := coldConfig(t, phys, repoDir, archDir)
	defer arch2.Close()
	srv2, rep, err := Open(cfg2)
	if err != nil {
		t.Fatalf("cold open: %v", err)
	}
	defer srv2.Close()
	if len(rep.RestoredFiles) != files {
		t.Fatalf("restored %v, want all %d in-flight files", rep.RestoredFiles, files)
	}
	q := srv2.QuarantinedFiles()
	if len(q) != files {
		t.Fatalf("quarantine holds %d files (%v), want %d", len(q), q, files)
	}
	for _, p := range paths {
		got, err := phys.ReadFile(p)
		if err != nil || !bytes.Equal(got, want[p]) {
			t.Fatalf("%s not rolled back to committed content (err=%v)", p, err)
		}
		// The in-flight bytes are preserved in quarantine.
		found := false
		for _, name := range q {
			data, err := phys.ReadFile(DefaultQuarantineDir + "/" + name)
			if err == nil && bytes.Equal(data, []byte("in-flight junk on "+p)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("in-flight content of %s missing from quarantine %v", p, q)
		}
	}
}
