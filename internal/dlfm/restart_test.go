package dlfm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"datalinks/internal/archive"
	"datalinks/internal/fs"
)

// TestRecoveryFromColdStartedArchive: the archive process restarts too — the
// original store object is gone and a NEW store is opened over the same
// directory via the durable catalog. DLFM restart recovery against that
// cold-started store must find every pre-crash version already archived
// (zero re-archiving), roll the in-flight update back to the last committed
// version byte-identically, and keep the whole history restorable.
func TestRecoveryFromColdStartedArchive(t *testing.T) {
	dir := t.TempDir()
	phys := fs.New()
	phys.MkdirAll("/d", fs.Cred{UID: fs.Root}, 0o777)
	host := newFakeHost()
	const budget = 2 * 64 << 10 // small LRU: restores must page from disk
	arch1, err := archive.NewTiered(0, nil, archive.TierConfig{Dir: dir, MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Name: "fs1", Phys: phys, Archive: arch1, Host: host,
		TokenKey: []byte("k"), OpenWait: 100 * time.Millisecond,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	seedFile(t, phys, "/d/f.bin", "v0 content")
	linkCommitted(t, srv, "/d/f.bin", "rfd")
	want := map[int][]byte{0: []byte("v0 content")}
	content := make([]byte, 3*64<<10+123)
	for v := 1; v <= 4; v++ {
		id := openWrite(t, srv, "/d/f.bin", owner)
		copy(content, fmt.Sprintf("committed version %d ", v))
		content[64<<10+v] = byte(v) // dirty a second chunk
		if err := phys.WriteFile("/d/f.bin", content); err != nil {
			t.Fatal(err)
		}
		if resp := closeFile(t, srv, phys, "/d/f.bin", id); !resp.OK {
			t.Fatalf("close v%d: %+v", v, resp)
		}
		srv.WaitArchives()
		want[v] = append([]byte(nil), content...)
	}

	// Crash with an update in flight, and take the archive process down with
	// the machine: the store object is closed and forgotten.
	openWrite(t, srv, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", []byte("in-flight junk")); err != nil {
		t.Fatal(err)
	}
	durable := srv.CrashRepo()
	arch1.Close()

	arch2, err := archive.NewTiered(0, nil, archive.TierConfig{Dir: dir, MemoryBudget: budget})
	if err != nil {
		t.Fatalf("cold archive open: %v", err)
	}
	defer arch2.Close()
	if rec := arch2.Recovery(); rec.Versions != len(want) {
		t.Fatalf("cold store replayed %d versions, want %d (%+v)", rec.Versions, len(want), rec)
	}

	cfg.Archive = arch2
	srv2, rep, err := Recover(cfg, durable)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer srv2.Close()

	// Nothing was re-archived: the catalog already knew every version.
	if len(rep.ArchivedVersions) != 0 {
		t.Fatalf("recovery re-archived %v against a catalog-complete store", rep.ArchivedVersions)
	}
	if d := arch2.Dedup(); d.NewBytes != 0 {
		t.Fatalf("recovery transferred %d bytes to the archive device", d.NewBytes)
	}
	if len(rep.RestoredFiles) != 1 || rep.RestoredFiles[0] != "/d/f.bin" {
		t.Fatalf("restored files = %v", rep.RestoredFiles)
	}
	got, err := phys.ReadFile("/d/f.bin")
	if err != nil || !bytes.Equal(got, want[4]) {
		t.Fatalf("rollback from cold store wrong (%v, %d bytes)", err, len(got))
	}

	// The full pre-crash history is served from the cold-started store.
	for v, wantContent := range want {
		e, err := arch2.Get("fs1", "/d/f.bin", archive.Version(v))
		if err != nil {
			t.Fatalf("get v%d from cold store: %v", v, err)
		}
		if !bytes.Equal(e.Content(), wantContent) {
			t.Fatalf("v%d diverged across the archive restart", v)
		}
	}

	// And the recovered server keeps updating on top of it.
	id := openWrite(t, srv2, "/d/f.bin", owner)
	if err := phys.WriteFile("/d/f.bin", []byte("post-recovery version")); err != nil {
		t.Fatal(err)
	}
	if resp := closeFile(t, srv2, phys, "/d/f.bin", id); !resp.OK {
		t.Fatalf("post-recovery close: %+v", resp)
	}
	srv2.WaitArchives()
	e, err := arch2.Latest("fs1", "/d/f.bin")
	if err != nil || !bytes.Equal(e.Content(), []byte("post-recovery version")) {
		t.Fatalf("post-recovery version not archived (%v)", err)
	}
}
