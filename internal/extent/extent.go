// Package extent is the shared content store under the DataLinks data plane:
// file content is a slice of refcounted, immutable, fixed-size chunks plus a
// small mutable tail. Writes copy-on-write only the chunks they touch, a
// snapshot is an O(#chunks) reference grab, and identical chunks can be
// deduplicated by content hash — so archiving a new version of a file costs
// O(changed bytes), not O(file size).
//
// Three layers build on it:
//
//   - internal/fs keeps every inode's content in a Buffer.
//   - internal/archive stores versions as Snapshot manifests, interning
//     chunks by hash so mostly-identical versions share storage.
//   - internal/dlfm moves Snapshots (manifests) between the two instead of
//     flat byte slices.
//
// Buffers are NOT safe for concurrent use — the owning inode's lock guards
// them. Chunks and Snapshots are immutable and may be shared freely across
// goroutines; their reference counts are atomic.
package extent

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// ChunkSize is the fixed size of a sealed chunk. Content shorter than this
// lives entirely in a buffer's mutable tail.
const ChunkSize = 64 << 10

// Hash is the content hash of a chunk (dedup key).
type Hash [sha256.Size]byte

// Live chunk accounting, package-wide: a chunk is live while any owner holds
// a reference. The leak tests assert churn (update, snapshot, restore,
// unlink, archive drop) returns these to their baseline.
var (
	liveChunks atomic.Int64
	liveBytes  atomic.Int64
)

// Live reports the number of live (referenced) chunks and their total bytes.
func Live() (chunks, bytes int64) {
	return liveChunks.Load(), liveBytes.Load()
}

// Chunk is an immutable span of exactly ChunkSize bytes shared by reference.
type Chunk struct {
	data []byte // len == ChunkSize; never mutated once the chunk is shared

	refs atomic.Int64

	// The content hash is memoized: unchanged chunks carried across file
	// versions are hashed once ever, which is what keeps archive dedup
	// O(changed chunks) per version. A hashed chunk is never mutated in
	// place (the hash would go stale under the dedup table).
	hashed   atomic.Bool
	hashOnce sync.Once
	hash     Hash
}

// newChunk wraps data (owned by the chunk from here on) with one reference.
func newChunk(data []byte) *Chunk {
	c := &Chunk{}
	c.data = data
	c.refs.Store(1)
	liveChunks.Add(1)
	liveBytes.Add(int64(len(data)))
	return c
}

// retain adds a reference. Retaining a fully released chunk resurrects it in
// the live accounting (the data was never freed).
func (c *Chunk) retain() *Chunk {
	if c.refs.Add(1) == 1 {
		liveChunks.Add(1)
		liveBytes.Add(int64(len(c.data)))
	}
	return c
}

// release drops a reference.
func (c *Chunk) release() {
	if n := c.refs.Add(-1); n == 0 {
		liveChunks.Add(-1)
		liveBytes.Add(-int64(len(c.data)))
	} else if n < 0 {
		panic("extent: chunk over-released")
	}
}

// Hash returns the memoized content hash of the chunk.
func (c *Chunk) Hash() Hash {
	c.hashOnce.Do(func() {
		c.hashed.Store(true)
		c.hash = sha256.Sum256(c.data)
	})
	return c.hash
}

// Data exposes the chunk's bytes. Callers must not modify them.
func (c *Chunk) Data() []byte { return c.data }

// RetainChunk adds a caller-owned reference (exported for the archive's
// dedup table; buffers and snapshots manage their own references).
func (c *Chunk) RetainChunk() *Chunk { return c.retain() }

// ReleaseChunk drops a caller-owned reference.
func (c *Chunk) ReleaseChunk() { c.release() }

// zeroChunk backs holes from sparse writes and zero-extending truncates: any
// number of zero chunks share this one allocation. The permanent reference
// keeps it out of in-place-write eligibility (refs is always >= 2 while any
// buffer holds it).
var zeroChunk = newChunk(make([]byte, ChunkSize))

// Buffer is mutable content: sealed chunks plus a tail shorter than
// ChunkSize. The zero value is an empty buffer.
//
// Invariant: length = len(chunks)*ChunkSize + len(tail), 0 <= len(tail) <
// ChunkSize. The tail's backing array grows geometrically (append), fixing
// the quadratic reallocate-per-write append path of a flat []byte.
type Buffer struct {
	chunks []*Chunk
	tail   []byte

	// detached marks a buffer whose references were dropped (unlinked file
	// whose data outlives the namespace entry for open handles). Reads still
	// work; the first mutation or snapshot re-retains everything.
	detached bool
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Len returns the content length.
func (b *Buffer) Len() int64 {
	return int64(len(b.chunks))*ChunkSize + int64(len(b.tail))
}

// NumChunks reports how many sealed chunks the buffer holds (tests).
func (b *Buffer) NumChunks() int { return len(b.chunks) }

// ReadAt copies content at off into p, returning the bytes copied. Reading
// at or past EOF returns 0.
func (b *Buffer) ReadAt(off int64, p []byte) int {
	size := b.Len()
	if off < 0 || off >= size {
		return 0
	}
	if max := size - off; int64(len(p)) > max {
		p = p[:max]
	}
	total := 0
	for len(p) > 0 {
		ci := int(off / ChunkSize)
		cs := int(off % ChunkSize)
		var src []byte
		if ci < len(b.chunks) {
			src = b.chunks[ci].data[cs:]
		} else {
			src = b.tail[off-int64(len(b.chunks))*ChunkSize:]
			// The tail is the final segment; one copy finishes the read.
		}
		n := copy(p, src)
		p = p[n:]
		off += int64(n)
		total += n
	}
	return total
}

// WriteAt writes p at off, zero-filling any gap past the current end (like
// a sparse write). Only the chunks the write touches are copied; a write
// that fully covers a chunk replaces it without reading the old content.
func (b *Buffer) WriteAt(off int64, p []byte) {
	b.reattach()
	end := off + int64(len(p))
	if end > b.Len() {
		b.extend(end)
	}
	b.overwrite(off, p)
}

// overwrite copies p over existing content at off. Caller ensured capacity.
func (b *Buffer) overwrite(off int64, p []byte) {
	bodyLen := int64(len(b.chunks)) * ChunkSize
	for len(p) > 0 {
		if off >= bodyLen {
			copy(b.tail[off-bodyLen:], p)
			return
		}
		ci := int(off / ChunkSize)
		cs := int(off % ChunkSize)
		n := ChunkSize - cs
		if n > len(p) {
			n = len(p)
		}
		old := b.chunks[ci]
		switch {
		case cs == 0 && n == ChunkSize:
			// Full overwrite: build the new chunk straight from p.
			data := make([]byte, ChunkSize)
			copy(data, p)
			b.chunks[ci] = newChunk(data)
			old.release()
		case old.refs.Load() == 1 && !old.hashed.Load():
			// Exclusive and never hashed: no snapshot or dedup table can see
			// this chunk, so mutate in place.
			copy(old.data[cs:], p[:n])
		default:
			// Shared (or hash-pinned): copy-on-write.
			data := make([]byte, ChunkSize)
			copy(data, old.data)
			copy(data[cs:], p[:n])
			b.chunks[ci] = newChunk(data)
			old.release()
		}
		p = p[n:]
		off += int64(n)
	}
}

// extend zero-extends the buffer to newLen, sealing the tail as it fills.
// Whole zero chunks share the package's single zero chunk.
func (b *Buffer) extend(newLen int64) {
	cur := b.Len()
	if newLen <= cur {
		return
	}
	// Fill the tail up to a chunk boundary (or the target) with zeros.
	if len(b.tail) > 0 || newLen < int64(len(b.chunks)+1)*ChunkSize {
		want := newLen - int64(len(b.chunks))*ChunkSize
		if want > ChunkSize {
			want = ChunkSize
		}
		b.tail = zeroFill(b.tail, int(want))
		if len(b.tail) == ChunkSize {
			b.sealTail()
		}
	}
	// Whole zero chunks for the remaining body.
	for int64(len(b.chunks)+1)*ChunkSize <= newLen {
		b.chunks = append(b.chunks, zeroChunk.retain())
	}
	// Remaining zeros go to the (empty) tail.
	if rem := newLen - int64(len(b.chunks))*ChunkSize; rem > int64(len(b.tail)) {
		b.tail = zeroFill(b.tail, int(rem))
	}
}

// zeroFill appends zeros until len(p) == n (no-op if already there).
func zeroFill(p []byte, n int) []byte {
	if len(p) >= n {
		return p
	}
	return append(p, make([]byte, n-len(p))...)
}

// sealTail turns the full tail into a chunk, keeping the tail's backing
// array for future appends.
func (b *Buffer) sealTail() {
	data := make([]byte, ChunkSize)
	copy(data, b.tail)
	b.chunks = append(b.chunks, newChunk(data))
	b.tail = b.tail[:0]
}

// Truncate sets the length to size, zero-extending if it grows.
func (b *Buffer) Truncate(size int64) {
	b.reattach()
	if size >= b.Len() {
		b.extend(size)
		return
	}
	keep := int(size / ChunkSize)
	rem := int(size % ChunkSize)
	if keep >= len(b.chunks) {
		b.tail = b.tail[:size-int64(len(b.chunks))*ChunkSize]
		return
	}
	newTail := append(b.tail[:0], b.chunks[keep].data[:rem]...)
	for _, c := range b.chunks[keep:] {
		c.release()
	}
	b.chunks = b.chunks[:keep]
	b.tail = newTail
}

// Snapshot captures the current content in O(#chunks): sealed chunks are
// retained by reference, only the tail (< ChunkSize) is copied.
func (b *Buffer) Snapshot() *Snapshot {
	b.reattach()
	chunks := make([]*Chunk, len(b.chunks))
	for i, c := range b.chunks {
		chunks[i] = c.retain()
	}
	return &Snapshot{chunks: chunks, tail: append([]byte(nil), b.tail...)}
}

// SetSnapshot replaces the buffer's content with the snapshot's — the
// restore path's "manifest swap". O(#chunks) plus the tail copy.
func (b *Buffer) SetSnapshot(s *Snapshot) {
	old := b.chunks
	detached := b.detached
	b.chunks = make([]*Chunk, len(s.chunks))
	for i, c := range s.chunks {
		b.chunks[i] = c.retain()
	}
	b.tail = append(b.tail[:0], s.tail...)
	b.detached = false
	if !detached {
		for _, c := range old {
			c.release()
		}
	}
}

// SetBytes replaces the buffer's content with a copy of p.
func (b *Buffer) SetBytes(p []byte) {
	b.Truncate(0)
	b.WriteAt(0, p)
}

// Bytes materializes the whole content as a fresh byte slice.
func (b *Buffer) Bytes() []byte {
	out := make([]byte, b.Len())
	b.ReadAt(0, out)
	return out
}

// ReleaseRefs drops the buffer's chunk references without discarding the
// structure: reads keep working (unlinked file held open), but the chunks no
// longer count as live unless something else references them. A later
// mutation or snapshot re-retains.
func (b *Buffer) ReleaseRefs() {
	if b.detached {
		return
	}
	for _, c := range b.chunks {
		c.release()
	}
	b.detached = true
}

// reattach undoes ReleaseRefs before any mutation or snapshot.
func (b *Buffer) reattach() {
	if !b.detached {
		return
	}
	for _, c := range b.chunks {
		c.retain()
	}
	b.detached = false
}

// WrapChunk wraps data (owned by the chunk from here on; callers must not
// modify it) as a sealed chunk whose content hash is already known — the
// disk tier's page-in path, which verifies the hash against the file before
// wrapping. Pre-setting the hash marks the chunk hash-pinned, so it can
// never become eligible for in-place mutation.
func WrapChunk(data []byte, h Hash) *Chunk {
	c := newChunk(data)
	c.hashOnce.Do(func() {
		c.hashed.Store(true)
		c.hash = h
	})
	return c
}

// Snapshot is an immutable manifest of content: shared chunks plus a private
// tail copy. Snapshots are safe for concurrent use.
type Snapshot struct {
	chunks []*Chunk
	tail   []byte
}

// BuildSnapshot assembles a snapshot from already-retained chunks and a tail
// (copied). Ownership of the chunk references transfers to the snapshot —
// the archive's materialization path, which pages chunks in one by one and
// hands the finished manifest to the restore swap.
func BuildSnapshot(chunks []*Chunk, tail []byte) *Snapshot {
	return &Snapshot{chunks: chunks, tail: append([]byte(nil), tail...)}
}

// FromBytes builds a snapshot owning a chunked copy of p.
func FromBytes(p []byte) *Snapshot {
	var chunks []*Chunk
	for int64(len(p)) >= ChunkSize {
		data := make([]byte, ChunkSize)
		copy(data, p)
		chunks = append(chunks, newChunk(data))
		p = p[ChunkSize:]
	}
	return &Snapshot{chunks: chunks, tail: append([]byte(nil), p...)}
}

// Len returns the content length.
func (s *Snapshot) Len() int64 {
	return int64(len(s.chunks))*ChunkSize + int64(len(s.tail))
}

// NumChunks reports the number of sealed chunks in the manifest.
func (s *Snapshot) NumChunks() int { return len(s.chunks) }

// Chunks exposes the manifest's chunks (archive interning). Callers must not
// modify the returned slice or the chunks.
func (s *Snapshot) Chunks() []*Chunk { return s.chunks }

// Tail exposes the manifest's tail bytes. Callers must not modify them.
func (s *Snapshot) Tail() []byte { return s.tail }

// Bytes materializes the content as a fresh byte slice.
func (s *Snapshot) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	for _, c := range s.chunks {
		out = append(out, c.data...)
	}
	return append(out, s.tail...)
}

// Retain returns a new reference-holding snapshot of the same content.
func (s *Snapshot) Retain() *Snapshot {
	chunks := make([]*Chunk, len(s.chunks))
	for i, c := range s.chunks {
		chunks[i] = c.retain()
	}
	return &Snapshot{chunks: chunks, tail: s.tail}
}

// Release drops the snapshot's chunk references. The manifest structure is
// deliberately left intact: chunk data is never freed, so a reader that
// still holds an alias of this snapshot (the archive hands out Entry values
// whose Manifest pointer aliases the store's copy, and Drop/TruncateAfter
// may release it concurrently) keeps reading valid content — release only
// affects live accounting and dedup eligibility. Releasing twice is a bug.
func (s *Snapshot) Release() {
	for _, c := range s.chunks {
		c.release()
	}
}

// Intern rebuilds this snapshot's manifest through fn, which maps each chunk
// to its canonical (deduplicated) representative and is expected to retain
// the returned chunk. Used by the archive store; the receiver is unchanged.
func (s *Snapshot) Intern(fn func(*Chunk) *Chunk) *Snapshot {
	chunks := make([]*Chunk, len(s.chunks))
	for i, c := range s.chunks {
		chunks[i] = fn(c)
	}
	return &Snapshot{chunks: chunks, tail: append([]byte(nil), s.tail...)}
}
