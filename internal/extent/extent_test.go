package extent

import (
	"bytes"
	"math/rand"
	"testing"
)

// flatModel mirrors Buffer semantics with a plain byte slice.
type flatModel []byte

func (m *flatModel) WriteAt(off int64, p []byte) {
	end := off + int64(len(p))
	if end > int64(len(*m)) {
		grown := make([]byte, end)
		copy(grown, *m)
		*m = grown
	}
	copy((*m)[off:], p)
}

func (m *flatModel) Truncate(size int64) {
	if size <= int64(len(*m)) {
		*m = (*m)[:size]
		return
	}
	grown := make([]byte, size)
	copy(grown, *m)
	*m = grown
}

func TestBufferBasics(t *testing.T) {
	b := NewBuffer()
	if b.Len() != 0 {
		t.Fatalf("empty len = %d", b.Len())
	}
	b.WriteAt(0, []byte("hello"))
	if got := string(b.Bytes()); got != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	b.WriteAt(2, []byte("XY"))
	if got := string(b.Bytes()); got != "heXYo" {
		t.Fatalf("bytes = %q", got)
	}
	// Sparse write: the gap reads as zeros.
	b.WriteAt(10, []byte("!"))
	want := append([]byte("heXYo"), 0, 0, 0, 0, 0, '!')
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("sparse = %q", b.Bytes())
	}
	p := make([]byte, 3)
	if n := b.ReadAt(2, p); n != 3 || string(p) != "XYo" {
		t.Fatalf("ReadAt = %d %q", n, p)
	}
	if n := b.ReadAt(11, p); n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
}

func TestBufferChunkBoundaries(t *testing.T) {
	b := NewBuffer()
	content := make([]byte, 3*ChunkSize+100)
	for i := range content {
		content[i] = byte(i % 251)
	}
	b.WriteAt(0, content)
	if b.NumChunks() != 3 || b.Len() != int64(len(content)) {
		t.Fatalf("chunks=%d len=%d", b.NumChunks(), b.Len())
	}
	if !bytes.Equal(b.Bytes(), content) {
		t.Fatal("content mismatch after chunked write")
	}
	// Write straddling two chunks.
	straddle := bytes.Repeat([]byte{0xEE}, 100)
	b.WriteAt(ChunkSize-50, straddle)
	copy(content[ChunkSize-50:], straddle)
	if !bytes.Equal(b.Bytes(), content) {
		t.Fatal("content mismatch after straddling write")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	b := NewBuffer()
	content := bytes.Repeat([]byte("abcd"), ChunkSize) // 4 chunks
	b.WriteAt(0, content)
	snap := b.Snapshot()
	defer snap.Release()

	b.WriteAt(5, []byte("MUTATED"))
	b.Truncate(10)
	if !bytes.Equal(snap.Bytes(), content) {
		t.Fatal("snapshot changed under buffer mutation")
	}
	// Restore swaps the manifest back in.
	b.SetSnapshot(snap)
	if !bytes.Equal(b.Bytes(), content) {
		t.Fatal("restore mismatch")
	}
}

func TestSnapshotSharesUntouchedChunks(t *testing.T) {
	baseC, _ := Live()
	b := NewBuffer()
	b.WriteAt(0, make([]byte, 16*ChunkSize))
	// Force real (non-zero-chunk) content.
	for i := 0; i < 16; i++ {
		b.WriteAt(int64(i)*ChunkSize, []byte{byte(i + 1)})
	}
	c0, _ := Live()
	snap := b.Snapshot()
	c1, _ := Live()
	if c1 != c0 {
		t.Fatalf("snapshot allocated %d chunks; want 0", c1-c0)
	}
	// A one-chunk edit allocates exactly one chunk (COW of the touched one).
	b.WriteAt(3*ChunkSize+17, []byte("edit"))
	c2, _ := Live()
	if c2 != c1+1 {
		t.Fatalf("single-chunk edit allocated %d chunks; want 1", c2-c1)
	}
	snap.Release()
	b.Truncate(0)
	endC, _ := Live()
	if endC != baseC {
		t.Fatalf("leaked %d chunks", endC-baseC)
	}
}

func TestReleaseRefsResurrection(t *testing.T) {
	baseC, _ := Live()
	b := NewBuffer()
	b.WriteAt(0, bytes.Repeat([]byte{7}, 2*ChunkSize))
	b.ReleaseRefs()
	if c, _ := Live(); c != baseC {
		t.Fatalf("detached buffer still counts %d chunks live", c-baseC)
	}
	// Reads keep working on a detached buffer.
	p := make([]byte, 4)
	if n := b.ReadAt(ChunkSize, p); n != 4 || p[0] != 7 {
		t.Fatalf("detached read = %d %v", n, p)
	}
	// A mutation resurrects the references.
	b.WriteAt(0, []byte{9})
	if c, _ := Live(); c != baseC+2 {
		t.Fatalf("resurrected live = %d; want 2", c-baseC)
	}
	b.Truncate(0)
	if c, _ := Live(); c != baseC {
		t.Fatalf("leaked %d chunks", c-baseC)
	}
}

// TestBufferMatchesFlatModel drives random writes and truncates through a
// Buffer (with interleaved snapshot/restore churn) and a flat byte slice,
// asserting byte-for-byte equivalence throughout.
func TestBufferMatchesFlatModel(t *testing.T) {
	baseC, _ := Live()
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		b := NewBuffer()
		var m flatModel
		var snaps []*Snapshot
		var snapModels [][]byte
		for op := 0; op < 120; op++ {
			switch rng.Intn(10) {
			case 0, 1: // truncate
				size := int64(rng.Intn(4 * ChunkSize))
				b.Truncate(size)
				m.Truncate(size)
			case 2: // snapshot
				snaps = append(snaps, b.Snapshot())
				snapModels = append(snapModels, append([]byte(nil), m...))
			case 3: // restore a random snapshot
				if len(snaps) > 0 {
					i := rng.Intn(len(snaps))
					b.SetSnapshot(snaps[i])
					m = append(m[:0], snapModels[i]...)
				}
			default: // write
				off := int64(rng.Intn(3 * ChunkSize))
				n := rng.Intn(ChunkSize * 2)
				p := make([]byte, n)
				rng.Read(p)
				b.WriteAt(off, p)
				m.WriteAt(off, p)
			}
			if b.Len() != int64(len(m)) {
				t.Fatalf("round %d op %d: len %d vs model %d", round, op, b.Len(), len(m))
			}
		}
		if !bytes.Equal(b.Bytes(), m) {
			t.Fatalf("round %d: content diverged from model", round)
		}
		// Random-range reads agree too.
		for i := 0; i < 20; i++ {
			off := int64(rng.Intn(len(m) + 1))
			p := make([]byte, rng.Intn(ChunkSize))
			n := b.ReadAt(off, p)
			want := len(m) - int(off)
			if want > len(p) {
				want = len(p)
			}
			if want < 0 {
				want = 0
			}
			if n != want || !bytes.Equal(p[:n], m[off:int(off)+n]) {
				t.Fatalf("round %d: ReadAt(%d, %d) diverged", round, off, len(p))
			}
		}
		for _, s := range snaps {
			s.Release()
		}
		b.Truncate(0)
	}
	if endC, _ := Live(); endC != baseC {
		t.Fatalf("model churn leaked %d chunks", endC-baseC)
	}
}

func TestFromBytesAndIntern(t *testing.T) {
	baseC, _ := Live()
	content := bytes.Repeat([]byte{1, 2, 3}, ChunkSize) // 3 chunks exactly
	s := FromBytes(content)
	if s.NumChunks() != 3 || len(s.Tail()) != 0 {
		t.Fatalf("chunks=%d tail=%d", s.NumChunks(), len(s.Tail()))
	}
	if !bytes.Equal(s.Bytes(), content) {
		t.Fatal("FromBytes round-trip mismatch")
	}
	// Intern maps chunks (here: identity with retain, as the archive does).
	dup := s.Intern(func(c *Chunk) *Chunk { return c.retain() })
	if !bytes.Equal(dup.Bytes(), content) {
		t.Fatal("interned content mismatch")
	}
	dup.Release()
	s.Release()
	if endC, _ := Live(); endC != baseC {
		t.Fatalf("leaked %d chunks", endC-baseC)
	}
}

func TestHashStableAndDistinct(t *testing.T) {
	a := FromBytes(bytes.Repeat([]byte{1}, ChunkSize))
	b := FromBytes(bytes.Repeat([]byte{1}, ChunkSize))
	c := FromBytes(bytes.Repeat([]byte{2}, ChunkSize))
	defer a.Release()
	defer b.Release()
	defer c.Release()
	if a.Chunks()[0].Hash() != b.Chunks()[0].Hash() {
		t.Fatal("identical content hashed differently")
	}
	if a.Chunks()[0].Hash() == c.Chunks()[0].Hash() {
		t.Fatal("distinct content collided")
	}
}

// TestHashedChunkIsNotMutatedInPlace guards the dedup-correctness rule: once
// a chunk's hash is taken (it may be in an archive dedup table), writes must
// copy, never mutate.
func TestHashedChunkIsNotMutatedInPlace(t *testing.T) {
	b := NewBuffer()
	b.WriteAt(0, bytes.Repeat([]byte{5}, ChunkSize))
	snap := b.Snapshot()
	h := snap.Chunks()[0].Hash()
	data := snap.Chunks()[0].Data()
	snap.Release() // refs back to 1, but the chunk is hash-pinned
	b.WriteAt(0, []byte{99})
	if data[0] != 5 {
		t.Fatal("hashed chunk mutated in place")
	}
	b2 := NewBuffer()
	b2.WriteAt(0, bytes.Repeat([]byte{5}, ChunkSize))
	s2 := b2.Snapshot()
	defer s2.Release()
	if s2.Chunks()[0].Hash() != h {
		t.Fatal("hash no longer matches original content")
	}
}
