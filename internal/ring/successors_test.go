package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSuccessorsDistinct property-tests the core contract: SuccessorsFor
// returns n DISTINCT members (clamped to the member count), so a replica set
// never places two copies on the same machine.
func TestSuccessorsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("fs%d", i+1)
		}
		r := New(0, members...)
		for _, want := range []int{1, 2, 3, n, n + 3} {
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("/d%d/f%d.bin", rng.Intn(40), rng.Intn(100000))
				succ := r.SuccessorsFor(key, want)
				expect := want
				if expect > n {
					expect = n
				}
				if len(succ) != expect {
					t.Fatalf("n=%d SuccessorsFor(%q, %d) returned %d members: %v",
						n, key, want, len(succ), succ)
				}
				seen := make(map[string]bool)
				for _, id := range succ {
					if seen[id] {
						t.Fatalf("duplicate member %q in successor list %v for %q", id, succ, key)
					}
					seen[id] = true
				}
			}
		}
	}
}

// TestSuccessorsFirstIsOwner: the first successor is always the Lookup owner
// — the successor list is the ownership chain, not a separate placement.
func TestSuccessorsFirstIsOwner(t *testing.T) {
	r := New(0, "fs1", "fs2", "fs3", "fs4", "fs5")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("/x%d/y%d", rng.Intn(30), rng.Intn(100000))
		succ := r.SuccessorsFor(key, 3)
		if succ[0] != r.Lookup(key) {
			t.Fatalf("SuccessorsFor(%q)[0] = %q, Lookup = %q", key, succ[0], r.Lookup(key))
		}
	}
}

// TestSuccessorIsFailoverOwner pins the property failover is built on: when
// the owner leaves the ring, every key it owned is reassigned to exactly its
// second successor on the old ring. Promoting replicas there means failover
// moves zero bytes.
func TestSuccessorIsFailoverOwner(t *testing.T) {
	r := New(0, "fs1", "fs2", "fs3", "fs4", "fs5")
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("/p%d/q%d.dat", rng.Intn(25), rng.Intn(100000))
		succ := r.SuccessorsFor(key, 2)
		owner := succ[0]
		after := r.Without(owner)
		if got := after.Lookup(key); got != succ[1] {
			t.Fatalf("key %q: owner %q removed → %q, want second successor %q (list %v)",
				key, owner, got, succ[1], succ)
		}
	}
}

// TestSuccessorsStableUnderMembership: adding or removing an UNRELATED member
// must not reorder the surviving portion of a key's successor chain — the
// same minimal-movement contract Lookup honors, extended to replica sets.
func TestSuccessorsStableUnderMembership(t *testing.T) {
	r := New(0, "fs1", "fs2", "fs3", "fs4", "fs5", "fs6")
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("/s%d/t%d", rng.Intn(20), rng.Intn(100000))
		before := r.SuccessorsFor(key, 3)
		// Remove a member not in the chain: the chain must be unchanged.
		inChain := map[string]bool{}
		for _, id := range before {
			inChain[id] = true
		}
		for _, id := range r.Members() {
			if inChain[id] {
				continue
			}
			after := r.Without(id).SuccessorsFor(key, 3)
			for j := range before {
				if after[j] != before[j] {
					t.Fatalf("key %q: removing unrelated %q changed chain %v → %v",
						key, id, before, after)
				}
			}
			break
		}
		// Remove a chain member: survivors keep their relative order.
		victim := before[rng.Intn(len(before))]
		after := r.Without(victim).SuccessorsFor(key, 3)
		want := make([]string, 0, len(before))
		for _, id := range before {
			if id != victim {
				want = append(want, id)
			}
		}
		for j := range want {
			if after[j] != want[j] {
				t.Fatalf("key %q: removing chain member %q reordered survivors: %v → %v (want prefix %v)",
					key, victim, before, after, want)
			}
		}
	}
}

// TestSuccessorsGolden pins successor placements to golden values — the
// replica sets of every deployed cluster depend on these staying fixed
// across builds.
func TestSuccessorsGolden(t *testing.T) {
	r := New(128, "fs1", "fs2", "fs3", "fs4")
	golden := map[string][]string{
		"/docs/report.pdf": {"fs3", "fs2", "fs4"},
		"/c/f0.bin":        {"fs2", "fs4", "fs3"},
		"/c/f1.bin":        {"fs2", "fs3", "fs4"},
		"/video/a/b/c.mp4": {"fs2", "fs4", "fs1"},
	}
	for key, want := range golden {
		got := r.SuccessorsFor(key, 3)
		if len(got) != len(want) {
			t.Fatalf("SuccessorsFor(%q) = %v, want %v", key, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SuccessorsFor(%q) = %v, want golden %v", key, got, want)
				break
			}
		}
	}
}

// TestSuccessorsEdgeCases covers nil rings, zero/negative counts, and the
// single-member ring.
func TestSuccessorsEdgeCases(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.SuccessorsFor("/a", 2); got != nil {
		t.Errorf("nil ring: got %v, want nil", got)
	}
	r := New(0, "solo")
	if got := r.SuccessorsFor("/a", 0); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	if got := r.SuccessorsFor("/a", 3); len(got) != 1 || got[0] != "solo" {
		t.Errorf("single member: got %v, want [solo]", got)
	}
}
