package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestLookupDeterministicGolden pins placement to golden values. If this test
// ever fails, the hash function changed and every DATALINK URL minted by an
// older process would route to the wrong server after an upgrade — that is a
// breaking change, not a refactor.
func TestLookupDeterministicGolden(t *testing.T) {
	r := New(128, "fs1", "fs2", "fs3", "fs4")
	golden := map[string]string{
		"/docs/report.pdf": "fs3",
		"/c/f0.bin":        "fs2",
		"/c/f1.bin":        "fs2",
		"/video/a/b/c.mp4": "fs2",
		"":                 "fs3",
	}
	for key, want := range golden {
		if got := r.Lookup(key); got != want {
			t.Errorf("Lookup(%q) = %q, want golden %q", key, got, want)
		}
	}
}

// TestLookupDeterministicAcrossBuilds verifies placement is a pure function
// of (members, vnodes, key): rebuilding the ring — including with shuffled
// member order, as a restarted process would — answers identically.
func TestLookupDeterministicAcrossBuilds(t *testing.T) {
	members := []string{"fs1", "fs2", "fs3", "fs4", "fs5"}
	a := New(64, members...)
	shuffled := []string{"fs4", "fs1", "fs5", "fs3", "fs2"}
	b := New(64, shuffled...)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("/dir%d/file%d.bin", rng.Intn(50), rng.Intn(10000))
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("placement depends on member order: key %q → %q vs %q",
				key, a.Lookup(key), b.Lookup(key))
		}
	}
}

// TestMinimalMovementOnAdd property-tests the consistent-hashing contract:
// adding one member to n moves ≈K/(n+1) keys, all of them TO the new member
// — no key may move between two surviving members.
func TestMinimalMovementOnAdd(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 3, 7, 15} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("fs%d", i+1)
		}
		before := New(0, members...)
		after := before.With("fsNEW")
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("/shard/file-%d", i)
			src, dst := before.Lookup(key), after.Lookup(key)
			if src == dst {
				continue
			}
			if dst != "fsNEW" {
				t.Fatalf("n=%d: key %q moved between survivors %q → %q", n, key, src, dst)
			}
			moved++
		}
		expect := float64(keys) / float64(n+1)
		if f := float64(moved); f > 2*expect {
			t.Errorf("n=%d: moved %d keys, want ≈%.0f (≤2x slack)", n, moved, expect)
		}
		if moved == 0 {
			t.Errorf("n=%d: new member received no keys", n)
		}
	}
}

// TestMinimalMovementOnRemove is the symmetric property: removing one member
// moves exactly that member's keys, and only to survivors.
func TestMinimalMovementOnRemove(t *testing.T) {
	const keys = 20000
	members := []string{"fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8"}
	before := New(0, members...)
	after := before.Without("fs3")
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("/shard/file-%d", i)
		src, dst := before.Lookup(key), after.Lookup(key)
		if src != "fs3" && src != dst {
			t.Fatalf("key %q owned by survivor %q moved to %q", key, src, dst)
		}
		if src == "fs3" && dst == "fs3" {
			t.Fatalf("key %q still routed to removed member", key)
		}
	}
}

// TestBalance checks vnodes keep the per-member share near K/n.
func TestBalance(t *testing.T) {
	const keys = 50000
	r := New(0, "fs1", "fs2", "fs3", "fs4")
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("/b/%d", i))]++
	}
	mean := float64(keys) / 4
	for m, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.5 || ratio > 1.6 {
			t.Errorf("member %s holds %d keys (%.2fx mean) — vnode balance broken", m, c, ratio)
		}
	}
}

func TestMembershipOps(t *testing.T) {
	r := New(16)
	if got := r.Lookup("/x"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want \"\"", got)
	}
	r = r.With("fs1")
	if got := r.Lookup("/x"); got != "fs1" {
		t.Fatalf("single-member ring Lookup = %q, want fs1", got)
	}
	if r2 := r.With("fs1"); r2 != r {
		t.Fatal("With(existing) should return the same ring")
	}
	if r2 := r.Without("nope"); r2 != r {
		t.Fatal("Without(absent) should return the same ring")
	}
	r = r.With("fs2").With("fs3")
	if got := len(r.Members()); got != 3 {
		t.Fatalf("Members() = %d, want 3", got)
	}
	if !r.Has("fs2") || r.Has("fs9") {
		t.Fatal("Has misreports membership")
	}
	r = r.Without("fs2")
	if r.Has("fs2") || len(r.Members()) != 2 {
		t.Fatal("Without did not remove fs2")
	}
	if r.VirtualNodes() != 16 {
		t.Fatalf("vnode count not preserved: %d", r.VirtualNodes())
	}
	// New collapses duplicates and empty names.
	d := New(8, "a", "a", "", "b")
	if len(d.Members()) != 2 {
		t.Fatalf("duplicate collapse failed: %v", d.Members())
	}
}
