// Package ring places link paths on a ring of DLFM servers with consistent
// hashing. The ring is the routing truth for the scale-out namespace: every
// layer that needs "which server owns this path" asks a Ring, and because the
// hash is a fixed function (FNV-1a 64, not a per-process seeded hash) the
// answer is identical across processes and across restarts — a requirement
// for routing DATALINK URLs minted before the current process started.
//
// Each member contributes VirtualNodes points to the ring ("member#0",
// "member#1", ...); a key is owned by the member of the first point at or
// clockwise after hash(key). Virtual nodes keep the per-member share near
// K/n and, more importantly, make membership changes minimal: adding or
// removing one member of n moves only the keys that fall into the new
// member's arcs — about K/n of them — and no key moves between two surviving
// members. Rings are immutable; With/Without return new rings, so a router
// can swap atomically under its own lock.
package ring

import "sort"

// DefaultVirtualNodes is the vnode count used when Config leaves it zero.
// 128 points per member keeps the max/mean member share under ~1.3 for small
// clusters, which E21 reports as shard skew.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the 64-bit ring and the member
// that owns the arc ending there.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring. The zero value is an empty ring
// that owns nothing; use New.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []point  // sorted by (hash, member)
}

// fnv64a is FNV-1a 64 with a murmur-style finalizer. Deliberately hand-rolled
// rather than hash/maphash: placement must be a pure function of the bytes so
// that two processes (or one process before and after a restart) route
// identically. Raw FNV-1a clusters short sequential labels ("fs1#0".."fs1#127")
// into narrow arcs of the 64-bit ring — measured up to 65% of keys landing on
// one member of four — so the finalizer's bit mixing is load-bearing, not
// cosmetic.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// fmix64 (MurmurHash3 finalizer): full avalanche over all 64 bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// vnodeLabel is the hashed label of member's i-th virtual node.
func vnodeLabel(member string, i int) string {
	// member + "#" + decimal(i); '#' keeps "fs1"+"1" distinct from "fs11"+"".
	buf := make([]byte, 0, len(member)+8)
	buf = append(buf, member...)
	buf = append(buf, '#')
	if i == 0 {
		buf = append(buf, '0')
	} else {
		var digits [20]byte
		n := len(digits)
		for i > 0 {
			n--
			digits[n] = byte('0' + i%10)
			i /= 10
		}
		buf = append(buf, digits[n:]...)
	}
	return string(buf)
}

// New builds a ring of the given members with vnodes virtual nodes each
// (DefaultVirtualNodes if vnodes <= 0). Duplicate member names collapse.
func New(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: fnv64a(vnodeLabel(m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member name so placement
		// stays deterministic regardless of insertion order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Lookup returns the member that owns key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := fnv64a(key)
	// First point with hash >= h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// SuccessorsFor returns the first n distinct members at or clockwise after
// hash(key): the key's owner first (identical to Lookup), then the members
// whose arcs follow it. The list is the key's replica set under successor
// replication, and its ordering is what makes failover free of data movement:
// Without(owner) reassigns the key to exactly SuccessorsFor(key, n)[1],
// because removing owner's points leaves the old second successor as the
// first point clockwise of the key. Fewer than n members yields them all.
func (r *Ring) SuccessorsFor(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Members returns the sorted member list. The caller must not mutate it.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// With returns a new ring with member added (or r itself if already present).
func (r *Ring) With(member string) *Ring {
	if r.Has(member) {
		return r
	}
	vn := DefaultVirtualNodes
	if r != nil && r.vnodes > 0 {
		vn = r.vnodes
	}
	return New(vn, append(append([]string{}, r.Members()...), member)...)
}

// Without returns a new ring with member removed (or r itself if absent).
func (r *Ring) Without(member string) *Ring {
	if !r.Has(member) {
		return r
	}
	keep := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			keep = append(keep, m)
		}
	}
	return New(r.vnodes, keep...)
}

// VirtualNodes returns the per-member vnode count the ring was built with.
func (r *Ring) VirtualNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}
