package retry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errTransient = errors.New("transient")
var errFatal = errors.New("fatal")

func classify(err error) Class {
	if errors.Is(err, errTransient) {
		return Retryable
	}
	return Permanent
}

// identity jitter makes Delay deterministic.
func noJitter(d time.Duration) time.Duration { return d }

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Multiplier: 2, Jitter: noJitter}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 45 * time.Millisecond, 45 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayFullJitterStaysInRange(t *testing.T) {
	p := Policy{BaseDelay: 8 * time.Millisecond, MaxDelay: 64 * time.Millisecond}
	for retry := 1; retry <= 6; retry++ {
		// The un-jittered ceiling for this retry number.
		ceil := Policy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay, Jitter: noJitter}.Delay(retry)
		for i := 0; i < 50; i++ {
			d := p.Delay(retry)
			if d < 0 || d > ceil {
				t.Fatalf("jittered Delay(%d) = %v outside [0, %v]", retry, d, ceil)
			}
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, Jitter: noJitter}, classify,
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errTransient
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, classify,
		func(context.Context) error { calls++; return errFatal })
	if !errors.Is(err, errFatal) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	var retries []int
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Jitter: noJitter,
		OnRetry: func(attempt int, err error, d time.Duration) { retries = append(retries, attempt) }}
	err := Do(context.Background(), p, classify, func(context.Context) error { calls++; return errTransient })
	if !errors.Is(err, errTransient) || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v", retries)
	}
}

func TestDoNilClassifierNeverRetries(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5}, nil, func(context.Context) error { calls++; return errTransient })
	if !errors.Is(err, errTransient) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestDoRespectsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	err := Do(ctx, Policy{MaxAttempts: 100, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: noJitter},
		classify, func(context.Context) error { calls++; return errTransient })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls == 0 || calls > 10 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoReturnsCauseWhenSleepWouldPassDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := Do(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Second, Jitter: noJitter}, classify,
		func(context.Context) error { return errTransient })
	// The loop must surface the transient cause, not burn the deadline.
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoBudgetBoundsTotalTime(t *testing.T) {
	start := time.Now()
	err := Do(context.Background(),
		Policy{MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, MaxDelay: 5 * time.Millisecond, Budget: 25 * time.Millisecond, Jitter: noJitter},
		classify, func(context.Context) error { return errTransient })
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("budget did not bound the loop: %v", elapsed)
	}
}

func TestBreakerOpensAtThresholdAndCoolsDown(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	opened := 0
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Clock: clock, OnOpen: func() { opened++ }})

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	if b.State() != "closed" {
		t.Fatalf("state = %s before threshold", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure: opens
	if b.State() != "open" || opened != 1 {
		t.Fatalf("state = %s, opened = %d", b.State(), opened)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second caller admitted during probe")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("state = %s after successful probe", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	opened := 0
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Clock: clock, OnOpen: func() { opened++ }})
	b.Allow()
	b.Failure()
	now = now.Add(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure() // probe failed: back to open with a fresh cooldown
	if b.State() != "open" || opened != 2 {
		t.Fatalf("state = %s, opened = %d", b.State(), opened)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("reopened breaker allowed a call before cooldown")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 4, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if err := b.Allow(); err == nil {
					if k%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(i)
	}
	wg.Wait()
}
