// Package retry implements the client-side fault-tolerance discipline for
// the DataLinks network plane: an error classifier separating transient
// transport faults from permanent protocol/auth failures, capped exponential
// backoff with full jitter, attempt and wall-clock budgets, and a circuit
// breaker that fails fast while a peer is down and half-opens after a
// cooldown.
//
// The package is deliberately transport-agnostic: internal/upcall supplies
// the classifier that knows which of its errors are retryable, and the
// executor here owns only the pacing and give-up policy.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Class is the verdict of a Classifier.
type Class int

const (
	// Permanent errors must not be retried: the peer answered, and the
	// answer will not change (auth rejection, protocol violation, invalid
	// request). Retrying would only add load and latency.
	Permanent Class = iota
	// Retryable errors are transient transport faults (connection lost,
	// dial refused, I/O deadline exceeded, server overloaded) where a
	// fresh attempt has a real chance of succeeding.
	Retryable
)

// Classifier decides whether an error is worth retrying. A nil classifier
// treats every error as Permanent (no retries).
type Classifier func(error) Class

// Policy bounds a retry loop. The zero value is usable: WithDefaults fills
// in conservative settings (4 attempts, 2ms..250ms full-jitter backoff).
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 0: default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (<= 0: default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (<= 0: default 250ms).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (<= 1: default 2).
	Multiplier float64
	// Budget bounds the total wall-clock time the loop may spend across
	// attempts and backoff sleeps (0: unbounded; the context still rules).
	Budget time.Duration
	// Jitter maps the capped exponential delay to the actual sleep.
	// nil = full jitter: uniform in [0, d]. Tests inject identity for
	// determinism.
	Jitter func(d time.Duration) time.Duration
	// OnRetry, if set, is called before each backoff sleep with the attempt
	// number that just failed (1-based), its error, and the chosen delay.
	// Metrics hooks live here.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// WithDefaults returns the policy with unset knobs filled in.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// jitterRand is the process-wide jitter source. Seeded once; full jitter
// needs no reproducibility (tests inject Policy.Jitter instead).
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay returns the backoff before retry number retryN (1-based): the capped
// exponential BaseDelay·Multiplier^(retryN-1) passed through the jitter.
func (p Policy) Delay(retryN int) time.Duration {
	p = p.WithDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retryN; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter != nil {
		return p.Jitter(time.Duration(d))
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRand.Int63n(int64(d) + 1))
}

// attemptKey carries the 1-based attempt number into op's context.
type attemptKey struct{}

// Attempt returns the 1-based attempt number of the retry loop the context
// belongs to, or 1 outside a Do loop. Tracing uses it to label wire-attempt
// spans without threading another parameter through every transport layer.
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok {
		return n
	}
	return 1
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, exceeds Budget, or the context ends. The last error is
// returned as-is so callers can errors.Is/As against the underlying cause.
func Do(ctx context.Context, p Policy, classify Classifier, op func(ctx context.Context) error) error {
	p = p.WithDefaults()
	var deadline time.Time
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(context.WithValue(ctx, attemptKey{}, attempt))
		if err == nil {
			return nil
		}
		if classify == nil || classify(err) != Retryable {
			return err
		}
		if attempt >= p.MaxAttempts {
			return err
		}
		d := p.Delay(attempt)
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			return err
		}
		if ctxDeadline, ok := ctx.Deadline(); ok && time.Now().Add(d).After(ctxDeadline) {
			// Sleeping would eat the whole remaining context budget; give
			// the caller its error now instead of a useless DeadlineExceeded.
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// ErrOpen is returned by Breaker.Allow while the circuit is open: the peer
// has failed repeatedly and the cooldown has not elapsed, so callers should
// fail fast instead of queueing more doomed attempts.
var ErrOpen = errors.New("retry: circuit breaker open")

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that opens
	// the circuit (<= 0: default 8).
	Threshold int
	// Cooldown is how long the circuit stays open before half-opening
	// (<= 0: default 500ms).
	Cooldown time.Duration
	// Clock is injectable for tests (nil: time.Now).
	Clock func() time.Time
	// OnOpen, if set, is called on every closed/half-open → open
	// transition. Metrics hooks live here.
	OnOpen func()
}

// Breaker is a three-state circuit breaker: closed (normal operation), open
// (failing fast until the cooldown elapses), half-open (exactly one probe
// in flight decides whether to close again or re-open).
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// NewBreaker builds a breaker; a nil config pointerless zero value works.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 500 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. While open it returns ErrOpen
// until the cooldown elapses, then admits exactly one probe (half-open);
// further callers keep failing fast until that probe reports its outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
}

// Success reports a completed call (the peer answered — even with a
// Permanent application-level rejection, the transport works). Closes the
// circuit and resets the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a transport-level failure. The Threshold'th consecutive
// failure — or any failed half-open probe — opens the circuit.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	wasProbe := b.state == stateHalfOpen
	b.probing = false
	if wasProbe || (b.state == stateClosed && b.failures >= b.cfg.Threshold) {
		b.state = stateOpen
		b.openedAt = b.cfg.Clock()
		if b.cfg.OnOpen != nil {
			b.cfg.OnOpen()
		}
	}
}

// State reports the breaker's current state as a string (metrics/status).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
