package wal

import (
	"testing"
	"testing/quick"
)

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	l := New()
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append(Record{Type: RecUpdate, TxnID: 1})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if lsn != LSN(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if got := l.TailLSN(); got != 5 {
		t.Fatalf("tail = %d, want 5", got)
	}
}

func TestFlushMakesDurable(t *testing.T) {
	l := New()
	l.Append(Record{Type: RecBegin, TxnID: 1})
	if l.DurableLSN() != 0 {
		t.Fatalf("durable before flush = %d, want 0", l.DurableLSN())
	}
	lsn, err := l.Flush()
	if err != nil || lsn != 1 {
		t.Fatalf("flush = %d, %v", lsn, err)
	}
	if l.DurableLSN() != 1 {
		t.Fatalf("durable = %d, want 1", l.DurableLSN())
	}
}

func TestFlushToIsIdempotent(t *testing.T) {
	l := New()
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Append(Record{Type: RecCommit, TxnID: 1})
	if err := l.FlushTo(2); err != nil {
		t.Fatalf("flush to 2: %v", err)
	}
	n := l.FlushCount()
	if err := l.FlushTo(1); err != nil {
		t.Fatalf("flush to 1: %v", err)
	}
	if l.FlushCount() != n {
		t.Fatalf("redundant flush issued a physical flush")
	}
}

func TestFlushToBeyondTailErrors(t *testing.T) {
	l := New()
	if err := l.FlushTo(3); err == nil {
		t.Fatal("flush beyond tail should error")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	l := New()
	buf := []byte("hello")
	l.Append(Record{Type: RecUpdate, TxnID: 1, Payload: buf})
	buf[0] = 'X'
	rec, err := l.Read(1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(rec.Payload) != "hello" {
		t.Fatalf("payload mutated: %q", rec.Payload)
	}
}

func TestReadOutOfRange(t *testing.T) {
	l := New()
	if _, err := l.Read(0); err == nil {
		t.Fatal("read of NilLSN should error")
	}
	if _, err := l.Read(7); err == nil {
		t.Fatal("read past tail should error")
	}
}

func TestCrashDiscardsVolatileTail(t *testing.T) {
	l := New()
	l.Append(Record{Type: RecBegin, TxnID: 1})
	l.Append(Record{Type: RecUpdate, TxnID: 1})
	l.Flush()
	l.Append(Record{Type: RecCommit, TxnID: 1}) // not flushed

	recovered := l.Crash()
	if recovered.TailLSN() != 2 {
		t.Fatalf("recovered tail = %d, want 2", recovered.TailLSN())
	}
	// The crashed log must reject further writes.
	if _, err := l.Append(Record{Type: RecEnd, TxnID: 1}); err != ErrClosed {
		t.Fatalf("append to crashed log: err = %v, want ErrClosed", err)
	}
	// The recovered log accepts new appends continuing the LSN sequence.
	lsn, err := recovered.Append(Record{Type: RecAbort, TxnID: 1})
	if err != nil || lsn != 3 {
		t.Fatalf("append after recovery = %d, %v", lsn, err)
	}
}

func TestScanRange(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: RecUpdate, TxnID: uint64(i)})
	}
	var seen []LSN
	l.Scan(3, 6, func(r Record) bool {
		seen = append(seen, r.LSN)
		return true
	})
	if len(seen) != 4 || seen[0] != 3 || seen[3] != 6 {
		t.Fatalf("scan range saw %v", seen)
	}
	// Early stop.
	count := 0
	l.Scan(NilLSN, NilLSN, func(r Record) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop scanned %d records", count)
	}
}

func TestBackchainTraversal(t *testing.T) {
	l := New()
	var prev LSN
	for i := 0; i < 4; i++ {
		lsn, _ := l.Append(Record{Type: RecUpdate, TxnID: 9, PrevLSN: prev})
		prev = lsn
	}
	// Walk backwards.
	count := 0
	cur := prev
	for cur != NilLSN {
		rec, err := l.Read(cur)
		if err != nil {
			t.Fatalf("read %d: %v", cur, err)
		}
		count++
		cur = rec.PrevLSN
	}
	if count != 4 {
		t.Fatalf("backchain length = %d, want 4", count)
	}
}

// Property: after any sequence of appends and one crash, the recovered log
// contains exactly the records appended before the last flush, in order.
func TestCrashPreservesDurablePrefixProperty(t *testing.T) {
	prop := func(nBefore, nAfter uint8) bool {
		l := New()
		before := int(nBefore % 50)
		after := int(nAfter % 50)
		for i := 0; i < before; i++ {
			l.Append(Record{Type: RecUpdate, TxnID: uint64(i)})
		}
		l.Flush()
		for i := 0; i < after; i++ {
			l.Append(Record{Type: RecUpdate, TxnID: uint64(1000 + i)})
		}
		rec := l.Crash()
		if rec.TailLSN() != LSN(before) {
			return false
		}
		ok := true
		rec.Scan(NilLSN, NilLSN, func(r Record) bool {
			if r.TxnID != uint64(r.LSN-1) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixForPointInTimeRestore(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: RecUpdate, TxnID: uint64(i)})
	}
	l.Flush()
	p := l.Prefix(4)
	if p.TailLSN() != 4 || p.DurableLSN() != 4 {
		t.Fatalf("prefix tail=%d durable=%d", p.TailLSN(), p.DurableLSN())
	}
	// The prefix is independent: appends to it don't touch the original.
	p.Append(Record{Type: RecCommit, TxnID: 99})
	if l.TailLSN() != 10 {
		t.Fatalf("original mutated: tail=%d", l.TailLSN())
	}
	// Prefix beyond the tail clamps.
	if q := l.Prefix(99); q.TailLSN() != 10 {
		t.Fatalf("clamped prefix tail = %d", q.TailLSN())
	}
}

func TestRecTypeString(t *testing.T) {
	types := []RecType{RecBegin, RecUpdate, RecCommit, RecAbort, RecEnd, RecCLR, RecCheckpoint, RecPrepare}
	want := []string{"BEGIN", "UPDATE", "COMMIT", "ABORT", "END", "CLR", "CHECKPOINT", "PREPARE"}
	for i, typ := range types {
		if typ.String() != want[i] {
			t.Errorf("String(%d) = %s, want %s", typ, typ.String(), want[i])
		}
	}
}
