package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datalinks/internal/fsyncer"
)

func openDisk(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Config{Dir: dir, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, typ RecType, txn uint64, payload []byte) LSN {
	t.Helper()
	lsn, err := l.Append(Record{Type: typ, TxnID: txn, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func logRecords(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Scan(NilLSN, NilLSN, func(r Record) bool {
		recs = append(recs, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 0)
	var want []Record
	for i := 0; i < 50; i++ {
		rec := Record{
			Type:    RecType(i%int(RecPrepare) + 1),
			TxnID:   uint64(i % 7),
			PrevLSN: LSN(i),
			UndoLSN: LSN(i / 2),
			Payload: []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i*3))),
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Scan(NilLSN, NilLSN, func(r Record) bool { want = append(want, r); return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := openDisk(t, dir, 0)
	defer l2.Close()
	if l2.TailLSN() != 50 || l2.DurableLSN() != 50 {
		t.Fatalf("tail %d durable %d after reopen, want 50/50", l2.TailLSN(), l2.DurableLSN())
	}
	got := logRecords(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.LSN != g.LSN || w.Type != g.Type || w.TxnID != g.TxnID ||
			w.PrevLSN != g.PrevLSN || w.UndoLSN != g.UndoLSN || string(w.Payload) != string(g.Payload) {
			t.Fatalf("record %d differs after reopen:\n  want %+v\n  got  %+v", i, w, g)
		}
	}
	if l2.TornBytes() != 0 {
		t.Fatalf("clean reopen quarantined %d bytes", l2.TornBytes())
	}
}

func TestDiskCrashDropsUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 0)
	mustAppend(t, l, RecBegin, 1, nil)
	mustAppend(t, l, RecUpdate, 1, []byte("durable"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, RecUpdate, 1, []byte("volatile"))
	mustAppend(t, l, RecCommit, 1, nil)

	l2 := l.Crash()
	defer l2.Close()
	if l2.TailLSN() != 2 {
		t.Fatalf("tail after crash = %d, want 2 (unflushed tail must vanish)", l2.TailLSN())
	}
	if _, err := l.Append(Record{Type: RecBegin}); err != ErrClosed {
		t.Fatalf("append on crashed log: err = %v, want ErrClosed", err)
	}
	// The reopened log continues the LSN sequence.
	if lsn := mustAppend(t, l2, RecBegin, 2, nil); lsn != 3 {
		t.Fatalf("next LSN after crash = %d, want 3", lsn)
	}
}

func TestDiskKillThenOpen(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 0)
	mustAppend(t, l, RecBegin, 1, nil)
	mustAppend(t, l, RecUpdate, 1, []byte("keep"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, RecUpdate, 1, []byte("lost"))
	l.Kill()

	l2 := openDisk(t, dir, 0) // lock must have been released by Kill
	defer l2.Close()
	if l2.TailLSN() != 2 {
		t.Fatalf("tail after kill+open = %d, want 2", l2.TailLSN())
	}
	recs := logRecords(t, l2)
	if string(recs[1].Payload) != "keep" {
		t.Fatalf("surviving payload = %q, want %q", recs[1].Payload, "keep")
	}
}

// TestDiskTornTailEveryByte truncates the segment file at EVERY byte boundary
// inside the last record's frame and verifies each reopen recovers exactly
// the unharmed prefix, quarantining the torn bytes.
func TestDiskTornTailEveryByte(t *testing.T) {
	seed := t.TempDir()
	l := openDisk(t, seed, 0)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, RecUpdate, 1, []byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("y", 20+i))))
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	segs, err := listSegments(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("seed produced %d segments, want 1", len(segs))
	}
	whole, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	prefix, recs := decodeFrames(whole, 1)
	if prefix != int64(len(whole)) || len(recs) != 5 {
		t.Fatalf("seed file does not decode cleanly: %d/%d bytes, %d records", prefix, len(whole), len(recs))
	}
	// The valid prefix of the file minus one byte ends exactly where the
	// last frame starts.
	lastStart, recs4 := decodeFrames(whole[:len(whole)-1], 1)
	if len(recs4) != 4 {
		t.Fatalf("expected 4 records before the last frame, got %d", len(recs4))
	}

	for cut := int(lastStart); cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if l2.TailLSN() != 4 {
			t.Fatalf("cut=%d: tail = %d, want 4", cut, l2.TailLSN())
		}
		if wantTorn := int64(cut) - lastStart; l2.TornBytes() != wantTorn {
			t.Fatalf("cut=%d: torn bytes = %d, want %d", cut, l2.TornBytes(), wantTorn)
		}
		got := logRecords(t, l2)
		for i := range got {
			if string(got[i].Payload) != string(recs4[i].Payload) {
				t.Fatalf("cut=%d: record %d payload differs", cut, i)
			}
		}
		// The log must keep working: append + flush + reopen.
		if lsn := mustAppend(t, l2, RecCommit, 1, []byte("after-tear")); lsn != 5 {
			t.Fatalf("cut=%d: next LSN = %d, want 5", cut, lsn)
		}
		if _, err := l2.Flush(); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		l3, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("cut=%d: second open: %v", cut, err)
		}
		if l3.TailLSN() != 5 || l3.TornBytes() != 0 {
			t.Fatalf("cut=%d: post-repair reopen tail=%d torn=%d, want 5/0", cut, l3.TailLSN(), l3.TornBytes())
		}
		l3.Close()
	}
}

// TestDiskTornTailCorruptedByte flips every byte of the last frame in turn:
// CRC must reject the frame and recovery keeps the 4-record prefix.
func TestDiskTornTailCorruptedByte(t *testing.T) {
	seed := t.TempDir()
	l := openDisk(t, seed, 0)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, RecUpdate, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, _ := listSegments(seed)
	whole, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart, recs4 := decodeFrames(whole[:len(whole)-1], 1)
	if len(recs4) != 4 {
		t.Fatalf("want 4 records before last frame, got %d", len(recs4))
	}
	for pos := int(lastStart); pos < len(whole); pos++ {
		dir := t.TempDir()
		mangled := append([]byte(nil), whole...)
		mangled[pos] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("pos=%d: open: %v", pos, err)
		}
		// A flipped byte in the length header can make the frame look short
		// (torn) or invalid (CRC); either way the 4-record prefix survives.
		if l2.TailLSN() != 4 {
			t.Fatalf("pos=%d: tail = %d, want 4", pos, l2.TailLSN())
		}
		if l2.TornBytes() == 0 {
			t.Fatalf("pos=%d: corruption quarantined no bytes", pos)
		}
		l2.Close()
	}
}

func TestDiskSegmentRotationAndTruncateHead(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 256) // tiny segments force rotation
	payload := []byte(strings.Repeat("z", 100))
	for i := 0; i < 12; i++ {
		mustAppend(t, l, RecUpdate, 1, payload)
		if _, err := l.Flush(); err != nil { // flush each to land in own batch
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments after rotation, got %d", len(segs))
	}

	// Truncate below LSN 9: whole segments below it disappear, the log's
	// base moves to the first retained segment, records stay readable.
	if err := l.TruncateHead(9); err != nil {
		t.Fatal(err)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("TruncateHead removed nothing: %d -> %d segments", len(segs), len(after))
	}
	if l.Base() == NilLSN || l.Base() >= 9 {
		t.Fatalf("base after truncate = %d, want in (0, 9)", l.Base())
	}
	if _, err := l.Read(l.Base()); err == nil {
		t.Fatal("read at base should fail")
	}
	if r, err := l.Read(9); err != nil || r.LSN != 9 {
		t.Fatalf("read(9) after truncate: %v, %+v", err, r)
	}

	// Reopen: the retained records (including those below the anchor still
	// in the first retained segment) replay with correct LSNs.
	l.Close()
	l2 := openDisk(t, dir, 256)
	defer l2.Close()
	if l2.Base() == NilLSN || l2.TailLSN() != 12 {
		t.Fatalf("reopen after truncate: base=%d tail=%d, want base>0 tail=12", l2.Base(), l2.TailLSN())
	}
	recs := logRecords(t, l2)
	if recs[0].LSN != l2.Base()+1 {
		t.Fatalf("first replayed LSN = %d, want %d", recs[0].LSN, l2.Base()+1)
	}
}

func TestDiskMemoryTruncateHead(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, RecUpdate, 1, []byte("m"))
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateHead(7); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 6 {
		t.Fatalf("memory base = %d, want 6", l.Base())
	}
	if _, err := l.Read(6); err == nil {
		t.Fatal("read below base should fail")
	}
	if r, err := l.Read(7); err != nil || r.LSN != 7 {
		t.Fatalf("read(7): %v %+v", err, r)
	}
	if lsn := mustAppend(t, l, RecUpdate, 1, nil); lsn != 11 {
		t.Fatalf("append after truncate LSN = %d, want 11", lsn)
	}
}

func TestDiskLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 0)
	defer l.Close()
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("second Open on a locked dir must fail")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open error = %v, want lock refusal", err)
	}
}

func TestDiskLastCheckpointAndOdometer(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 0)
	mustAppend(t, l, RecUpdate, 1, []byte("aaaa"))
	ck := mustAppend(t, l, RecCheckpoint, 0, []byte{0x02, 0x01}) // payload-bearing anchor
	if l.SizeSinceCheckpoint() != 0 {
		t.Fatalf("odometer after checkpoint = %d, want 0", l.SizeSinceCheckpoint())
	}
	mustAppend(t, l, RecUpdate, 1, []byte("bbbb"))
	if l.SizeSinceCheckpoint() == 0 {
		t.Fatal("odometer did not advance")
	}
	if l.LastCheckpoint() != NilLSN {
		t.Fatal("unflushed checkpoint must not anchor")
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.LastCheckpoint() != ck {
		t.Fatalf("LastCheckpoint = %d, want %d", l.LastCheckpoint(), ck)
	}
	l.Close()

	l2 := openDisk(t, dir, 0)
	defer l2.Close()
	if l2.LastCheckpoint() != ck {
		t.Fatalf("LastCheckpoint after reopen = %d, want %d", l2.LastCheckpoint(), ck)
	}
	if l2.SizeSinceCheckpoint() == 0 {
		t.Fatal("odometer after reopen should count the post-checkpoint record")
	}
}

func TestDiskFsyncPolicies(t *testing.T) {
	for _, pol := range []fsyncer.Policy{fsyncer.PolicyNone, fsyncer.PolicyGroup, fsyncer.PolicyAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Config{Dir: dir, Fsync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				mustAppend(t, l, RecUpdate, 1, []byte("p"))
				if err := l.FlushTo(LSN(i + 1)); err != nil {
					t.Fatal(err)
				}
			}
			if pol == fsyncer.PolicyNone && l.SyncCount() != 0 {
				t.Fatalf("policy none issued %d fsyncs", l.SyncCount())
			}
			if pol != fsyncer.PolicyNone && l.SyncCount() == 0 {
				t.Fatalf("policy %v issued no fsyncs", pol)
			}
			if l.SyncPolicy() != pol {
				t.Fatalf("SyncPolicy = %v, want %v", l.SyncPolicy(), pol)
			}
			l.Close()
			l2, err := Open(Config{Dir: dir, Fsync: pol})
			if err != nil {
				t.Fatal(err)
			}
			if l2.TailLSN() != 3 {
				t.Fatalf("tail after reopen = %d, want 3", l2.TailLSN())
			}
			l2.Close()
		})
	}
}

func TestDiskGapBetweenSegmentsQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := openDisk(t, dir, 128)
	for i := 0; i < 8; i++ {
		mustAppend(t, l, RecUpdate, 1, []byte(strings.Repeat("g", 64)))
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Delete a middle segment: everything after the hole is unusable.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	l2 := openDisk(t, dir, 128)
	defer l2.Close()
	if l2.TailLSN() >= 8 {
		t.Fatalf("tail = %d after losing a middle segment, want < 8", l2.TailLSN())
	}
	if l2.TornBytes() == 0 {
		t.Fatal("post-gap segments were not quarantined")
	}
}
