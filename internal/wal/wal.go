// Package wal implements a write-ahead log with LSN addressing, per-transaction
// backchaining, group flush, and crash simulation. Both the host database
// (internal/sqlmini) and the DLFM repository log through this package.
//
// The log has two backends. The in-memory backend (New) models stable
// storage explicitly: records appended with Append are buffered and volatile
// until Flush makes them durable, and Crash() discards the volatile tail,
// exactly what a power failure would do — recovery tests exercise every
// interleaving of "logged but not forced". The disk backend (Open) puts the
// same record stream in CRC-framed, size-bounded segment files under a
// locked directory, with Flush/FlushTo routed through an fsyncer policy; a
// reopen replays the longest valid prefix and quarantines any torn tail.
package wal

import (
	"errors"
	"fmt"
	"sync"

	"datalinks/internal/fsyncer"
)

// LSN is a log sequence number. LSNs start at 1; 0 means "nil LSN".
type LSN uint64

// NilLSN is the zero LSN, used as the PrevLSN of a transaction's first record.
const NilLSN LSN = 0

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types. Update carries both redo and undo images. CLR is a
// compensation record written while rolling back; it is redo-only.
const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort
	RecEnd
	RecCLR
	RecCheckpoint
	RecPrepare // transaction entered the prepared (in-doubt) state of 2PC
)

// String returns a human-readable name for the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecPrepare:
		return "PREPARE"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is a single log record. Payload encoding is the client's business:
// sqlmini stores row images, DLFM stores repository mutations.
type Record struct {
	LSN     LSN
	Type    RecType
	TxnID   uint64
	PrevLSN LSN // previous record of the same transaction (backchain)
	UndoLSN LSN // for CLR: the next record to undo (UndoNxtLSN in ARIES)
	Payload []byte
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only write-ahead log. Safe for concurrent use.
//
// After a checkpoint truncates the head (TruncateHead), records below the
// base LSN are gone: Read and Scan serve only (base, tail]. Recovery anchors
// at the checkpoint, so it never asks for the truncated prefix.
type Log struct {
	mu       sync.Mutex
	base     LSN      // records[i] has LSN base+i+1
	records  []Record // the retained tail of the log
	flushed  LSN      // highest durable LSN
	closed   bool
	flushCnt int64
	// sizeSinceCkpt approximates log bytes appended since the last
	// checkpoint record — the trigger for the next one.
	sizeSinceCkpt int64

	disk *diskLog // nil = in-memory backend
}

// New returns an empty in-memory log.
func New() *Log { return &Log{} }

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Flush (or FlushTo covering it) is called.
func (l *Log) Append(rec Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return NilLSN, ErrClosed
	}
	rec.LSN = l.base + LSN(len(l.records)) + 1
	// Copy the payload so the caller may reuse its buffer.
	if rec.Payload != nil {
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
	}
	l.records = append(l.records, rec)
	if rec.Type == RecCheckpoint && len(rec.Payload) > 0 {
		l.sizeSinceCkpt = 0
	} else {
		l.sizeSinceCkpt += int64(len(rec.Payload)) + recOverheadBytes
	}
	if l.disk != nil {
		l.disk.pending = appendFrame(l.disk.pending, rec)
	}
	return rec.LSN, nil
}

// recOverheadBytes is the accounted per-record framing cost.
const recOverheadBytes = 16

// Flush makes every appended record durable and returns the tail LSN.
func (l *Log) Flush() (LSN, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return NilLSN, ErrClosed
	}
	target := l.base + LSN(len(l.records))
	if l.disk != nil {
		if err := l.writePendingLocked(); err != nil {
			l.mu.Unlock()
			return NilLSN, err
		}
	}
	if target > l.flushed {
		l.flushed = target
		l.flushCnt++
	}
	d := l.disk
	l.mu.Unlock()
	if d != nil {
		if err := d.sync.AfterWrite(); err != nil {
			return NilLSN, err
		}
		if err := d.sync.Barrier(); err != nil {
			return NilLSN, err
		}
	}
	return target, nil
}

// FlushTo makes records up to and including lsn durable. Flushing an LSN that
// is already durable is a no-op (group commit piggybacking). On the disk
// backend the whole buffered tail is written (frames are cheap to write; the
// fsync barrier is the expensive part and covers exactly the caller's LSN).
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if lsn > l.base+LSN(len(l.records)) {
		tail := l.base + LSN(len(l.records))
		l.mu.Unlock()
		return fmt.Errorf("wal: flush to %d beyond tail %d", lsn, tail)
	}
	needSync := lsn > l.flushed
	if l.disk != nil && needSync {
		if err := l.writePendingLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if needSync {
		l.flushed = l.base + LSN(len(l.records))
		if lsn > l.flushed {
			l.flushed = lsn
		}
		l.flushCnt++
	}
	d := l.disk
	l.mu.Unlock()
	if d != nil && needSync {
		if err := d.sync.AfterWrite(); err != nil {
			return err
		}
		if err := d.sync.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// TailLSN returns the LSN of the most recently appended record (durable or not).
func (l *Log) TailLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + LSN(len(l.records))
}

// Base returns the LSN below which records have been truncated away by a
// checkpoint (NilLSN when the full history is retained).
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// DurableLSN returns the highest LSN guaranteed to survive a crash.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// FlushCount reports how many logical flushes have been issued; benchmarks
// use it to show group-commit batching.
func (l *Log) FlushCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushCnt
}

// SizeSinceCheckpoint approximates the log bytes appended since the last
// checkpoint record — the checkpoint-trigger odometer.
func (l *Log) SizeSinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sizeSinceCkpt
}

// SyncPolicy reports the disk backend's fsync policy (PolicyNone in memory).
func (l *Log) SyncPolicy() fsyncer.Policy {
	if l.disk == nil {
		return fsyncer.PolicyNone
	}
	return l.disk.sync.Policy()
}

// LastCheckpoint returns the LSN of the newest durable checkpoint record
// that carries a payload (an anchor), or NilLSN.
func (l *Log) LastCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := int(l.flushed - l.base); i > 0; i-- {
		r := l.records[i-1]
		if r.Type == RecCheckpoint && len(r.Payload) > 0 {
			return r.LSN
		}
	}
	return NilLSN
}

// Read returns the record at the given LSN.
func (l *Log) Read(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == NilLSN || lsn > l.base+LSN(len(l.records)) || lsn <= l.base {
		return Record{}, fmt.Errorf("wal: no record at LSN %d (log covers %d..%d)", lsn, l.base+1, l.base+LSN(len(l.records)))
	}
	return l.records[lsn-l.base-1], nil
}

// Scan calls fn on every record in [from, to] in LSN order. A zero `to`
// means the current tail; a `from` at or below the truncated base is clamped
// to the first retained record. Scanning stops early if fn returns false.
func (l *Log) Scan(from, to LSN, fn func(Record) bool) error {
	l.mu.Lock()
	recs := l.records
	base := l.base
	tail := base + LSN(len(recs))
	l.mu.Unlock()
	if from <= base {
		from = base + 1
	}
	if to == NilLSN || to > tail {
		to = tail
	}
	for lsn := from; lsn <= to; lsn++ {
		if !fn(recs[lsn-base-1]) {
			return nil
		}
	}
	return nil
}

// Prefix returns a new, fully durable in-memory log holding the records with
// LSN <= to. Point-in-time restore rebuilds a database from such a prefix
// (§4.4 of the paper: restore the database to a previous state, then restore
// the files according to the restored state identifier).
func (l *Log) Prefix(to LSN) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to > l.base+LSN(len(l.records)) {
		to = l.base + LSN(len(l.records))
	}
	if to < l.base {
		to = l.base
	}
	return &Log{
		base:    l.base,
		records: append([]Record(nil), l.records[:to-l.base]...),
		flushed: to,
	}
}

// Crash simulates a machine failure and restart. The in-memory backend
// returns a new Log containing only the durable prefix. The disk backend
// drops its unwritten tail, closes its files, releases the directory lock
// and reopens the directory — the returned log holds whatever the "disk"
// (the OS page cache included; this is a process kill, not a power cut)
// retained. The original log is closed either way.
func (l *Log) Crash() *Log {
	l.mu.Lock()
	if l.disk != nil {
		cfg := l.disk.cfg
		l.killLocked()
		l.mu.Unlock()
		reopened, err := Open(cfg)
		if err != nil {
			panic(fmt.Sprintf("wal: reopen after crash: %v", err))
		}
		return reopened
	}
	defer l.mu.Unlock()
	l.closed = true
	return &Log{
		base:    l.base,
		records: append([]Record(nil), l.records[:l.flushed-l.base]...),
		flushed: l.flushed,
	}
}

// Kill simulates the process dying without a successor in hand: buffered
// records are dropped, files close, the directory lock is released, and the
// log is closed. A later Open over the same directory cold-starts from what
// reached the file system.
func (l *Log) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.killLocked()
}

// killLocked is Kill under l.mu.
func (l *Log) killLocked() {
	l.closed = true
	if d := l.disk; d != nil {
		d.pending = nil
		d.fileMu.Lock()
		if d.seg != nil {
			d.seg.Close()
			d.seg = nil
		}
		d.fileMu.Unlock()
		d.lock.Release()
	}
}

// Close marks the log closed. The disk backend first writes its buffered
// tail (and syncs it under a syncing policy) so a clean shutdown loses
// nothing, then releases the directory lock. Further appends fail.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if d := l.disk; d != nil {
		_ = l.writePendingLocked()
		d.fileMu.Lock()
		if d.seg != nil {
			if d.sync.Policy() != fsyncer.PolicyNone {
				_ = d.seg.Sync()
			}
			d.seg.Close()
			d.seg = nil
		}
		d.fileMu.Unlock()
		d.lock.Release()
	}
	l.closed = true
}
