// Package wal implements a write-ahead log with LSN addressing, per-transaction
// backchaining, group flush, and crash simulation. Both the host database
// (internal/sqlmini) and the DLFM repository log through this package.
//
// The log models stable storage explicitly: records appended with Append are
// buffered and volatile until Flush (or an Append with the force flag) makes
// them durable. Crash() discards the volatile tail, exactly what a power
// failure would do, which lets recovery tests exercise every interleaving of
// "logged but not forced".
package wal

import (
	"errors"
	"fmt"
	"sync"
)

// LSN is a log sequence number. LSNs start at 1; 0 means "nil LSN".
type LSN uint64

// NilLSN is the zero LSN, used as the PrevLSN of a transaction's first record.
const NilLSN LSN = 0

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types. Update carries both redo and undo images. CLR is a
// compensation record written while rolling back; it is redo-only.
const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort
	RecEnd
	RecCLR
	RecCheckpoint
	RecPrepare // transaction entered the prepared (in-doubt) state of 2PC
)

// String returns a human-readable name for the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecPrepare:
		return "PREPARE"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is a single log record. Payload encoding is the client's business:
// sqlmini stores row images, DLFM stores repository mutations.
type Record struct {
	LSN     LSN
	Type    RecType
	TxnID   uint64
	PrevLSN LSN // previous record of the same transaction (backchain)
	UndoLSN LSN // for CLR: the next record to undo (UndoNxtLSN in ARIES)
	Payload []byte
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only write-ahead log. Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	records  []Record // records[i] has LSN i+1
	flushed  LSN      // highest durable LSN
	closed   bool
	flushCnt int64
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Flush (or FlushTo covering it) is called.
func (l *Log) Append(rec Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return NilLSN, ErrClosed
	}
	rec.LSN = LSN(len(l.records) + 1)
	// Copy the payload so the caller may reuse its buffer.
	if rec.Payload != nil {
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		rec.Payload = p
	}
	l.records = append(l.records, rec)
	return rec.LSN, nil
}

// Flush makes every appended record durable and returns the tail LSN.
func (l *Log) Flush() (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return NilLSN, ErrClosed
	}
	l.flushed = LSN(len(l.records))
	l.flushCnt++
	return l.flushed, nil
}

// FlushTo makes records up to and including lsn durable. Flushing an LSN that
// is already durable is a no-op (group commit piggybacking).
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if lsn > LSN(len(l.records)) {
		return fmt.Errorf("wal: flush to %d beyond tail %d", lsn, len(l.records))
	}
	if lsn > l.flushed {
		l.flushed = lsn
		l.flushCnt++
	}
	return nil
}

// TailLSN returns the LSN of the most recently appended record (durable or not).
func (l *Log) TailLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LSN(len(l.records))
}

// DurableLSN returns the highest LSN guaranteed to survive a crash.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// FlushCount reports how many physical flushes have been issued; benchmarks
// use it to show group-commit batching.
func (l *Log) FlushCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushCnt
}

// Read returns the record at the given LSN.
func (l *Log) Read(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == NilLSN || lsn > LSN(len(l.records)) {
		return Record{}, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	return l.records[lsn-1], nil
}

// Scan calls fn on every record in [from, to] in LSN order. A zero `to`
// means the current tail. Scanning stops early if fn returns false.
func (l *Log) Scan(from, to LSN, fn func(Record) bool) error {
	l.mu.Lock()
	recs := l.records
	tail := LSN(len(recs))
	l.mu.Unlock()
	if from == NilLSN {
		from = 1
	}
	if to == NilLSN || to > tail {
		to = tail
	}
	for lsn := from; lsn <= to; lsn++ {
		if !fn(recs[lsn-1]) {
			return nil
		}
	}
	return nil
}

// Prefix returns a new, fully durable log holding the records with LSN <= to.
// Point-in-time restore rebuilds a database from such a prefix (§4.4 of the
// paper: restore the database to a previous state, then restore the files
// according to the restored state identifier).
func (l *Log) Prefix(to LSN) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to > LSN(len(l.records)) {
		to = LSN(len(l.records))
	}
	return &Log{
		records: append([]Record(nil), l.records[:to]...),
		flushed: to,
	}
}

// Crash simulates a machine failure: it returns a new Log containing only the
// durable prefix and marks the original closed so stray writers error out.
func (l *Log) Crash() *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	recovered := &Log{
		records: append([]Record(nil), l.records[:l.flushed]...),
		flushed: l.flushed,
	}
	return recovered
}

// Close marks the log closed. Further appends fail.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
}
