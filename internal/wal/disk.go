package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"datalinks/internal/dirlock"
	"datalinks/internal/fsyncer"
)

// Disk layout: the log directory holds size-bounded segment files named
// wal-<first LSN>.log, each a concatenation of CRC-framed records:
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// where the payload is uvarint LSN, one type byte, uvarint TxnID, uvarint
// PrevLSN, uvarint UndoLSN, then the record payload. A reopen replays the
// segments in LSN order and keeps the longest valid prefix: the first frame
// that fails its length bound, CRC, decode, or LSN-continuity check marks
// the torn tail, which is appended to the wal.torn quarantine file and
// truncated away — the catalog.log / pack-<seq>.pk discipline. The same
// directory carries repo.snap (the sqlmini checkpoint snapshot) and the
// repo.lock single-owner lockfile.
const (
	// DefaultSegmentBytes bounds a segment before the log rotates to a new
	// file; whole sealed segments below the checkpoint anchor are deleted by
	// TruncateHead.
	DefaultSegmentBytes = 4 << 20
	// maxRecordBytes is a sanity bound on a framed payload: anything larger
	// in a length header is corruption, not a record.
	maxRecordBytes = 64 << 20

	repoLockName = "repo.lock"
	tornName     = "wal.torn"
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

// Config describes a disk-backed log directory.
type Config struct {
	// Dir is the log directory; created if missing, locked while open.
	Dir string
	// SegmentBytes bounds each segment file (DefaultSegmentBytes when 0).
	SegmentBytes int64
	// Fsync selects the durability policy for Flush/FlushTo.
	Fsync fsyncer.Policy
	// FsyncMaxDelay is the group-commit coalescing window under PolicyGroup.
	FsyncMaxDelay time.Duration
}

type segInfo struct {
	first LSN // LSN of the segment's first record
	path  string
}

// diskLog is the stable-storage side of a Log. The pending buffer and the
// written watermark are guarded by the owning Log's mu; the file handle and
// segment list by fileMu (lock order: mu before fileMu), so the fsyncer's
// flush callback can sync the active segment without blocking appends.
type diskLog struct {
	cfg       Config
	lock      *dirlock.Lock
	sync      *fsyncer.Syncer
	pending   []byte // frames appended since the last write (under Log.mu)
	written   LSN    // highest LSN whose frame reached the file (under Log.mu)
	tornBytes int64  // bytes quarantined to wal.torn at open

	fileMu  sync.Mutex
	seg     *os.File // active (last) segment
	segSize int64
	segs    []segInfo
}

// Open opens (or creates) a disk-backed log directory, taking single
// ownership of it, replaying the longest valid record prefix and
// quarantining any torn tail.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: Config.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := dirlock.Acquire(cfg.Dir, repoLockName)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	d := &diskLog{cfg: cfg, lock: lock}
	l := &Log{disk: d}
	if err := d.replay(l); err != nil {
		lock.Release()
		return nil, err
	}
	d.sync = fsyncer.New(cfg.Fsync, cfg.FsyncMaxDelay, d.flushActive, nil)
	return l, nil
}

// replay loads every segment into l and repairs the tail.
func (d *diskLog) replay(l *Log) error {
	segs, err := listSegments(d.cfg.Dir)
	if err != nil {
		return err
	}

	var (
		recs    []Record
		base    LSN
		next    LSN
		tornIdx = -1 // first segment holding invalid bytes
		tornOff int64
	)
	for i, s := range segs {
		if i == 0 {
			base = s.first - 1
			next = s.first
		} else if s.first != next {
			// Gap or overlap between segments: everything from here on is
			// not a continuation of the valid prefix.
			tornIdx, tornOff = i, 0
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		valid, fileRecs := decodeFrames(data, next)
		recs = append(recs, fileRecs...)
		next += LSN(len(fileRecs))
		if valid < int64(len(data)) {
			tornIdx, tornOff = i, valid
			break
		}
	}

	if tornIdx >= 0 {
		if err := d.repairTail(segs, tornIdx, tornOff); err != nil {
			return err
		}
		if tornOff > 0 {
			segs = segs[:tornIdx+1]
		} else {
			segs = segs[:tornIdx]
		}
	}

	// Open (or create) the active segment.
	if len(segs) == 0 {
		first := base + LSN(len(recs)) + 1
		path := filepath.Join(d.cfg.Dir, segName(first))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if d.cfg.Fsync != fsyncer.PolicyNone {
			syncDir(d.cfg.Dir)
		}
		segs = []segInfo{{first: first, path: path}}
		d.seg, d.segSize = f, 0
	} else {
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		d.seg, d.segSize = f, size
	}
	d.segs = segs
	d.written = base + LSN(len(recs))

	l.base = base
	l.records = recs
	l.flushed = d.written
	since := int64(0)
	for _, r := range recs {
		if r.Type == RecCheckpoint && len(r.Payload) > 0 {
			since = 0
		} else {
			since += int64(len(r.Payload)) + recOverheadBytes
		}
	}
	l.sizeSinceCkpt = since
	return nil
}

// repairTail quarantines segs[tornIdx:] starting at tornOff into wal.torn,
// truncates the torn segment to its valid prefix and deletes the rest.
func (d *diskLog) repairTail(segs []segInfo, tornIdx int, tornOff int64) error {
	tf, err := os.OpenFile(filepath.Join(d.cfg.Dir, tornName),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer tf.Close()
	for i := tornIdx; i < len(segs); i++ {
		data, rerr := os.ReadFile(segs[i].path)
		if rerr != nil {
			return fmt.Errorf("wal: %w", rerr)
		}
		start := int64(0)
		if i == tornIdx {
			start = tornOff
		}
		if int64(len(data)) > start {
			if _, werr := tf.Write(data[start:]); werr != nil {
				return fmt.Errorf("wal: quarantining torn tail: %w", werr)
			}
			d.tornBytes += int64(len(data)) - start
		}
		if i == tornIdx && tornOff > 0 {
			if terr := os.Truncate(segs[i].path, tornOff); terr != nil {
				return fmt.Errorf("wal: %w", terr)
			}
		} else if rmerr := os.Remove(segs[i].path); rmerr != nil {
			return fmt.Errorf("wal: %w", rmerr)
		}
	}
	tf.Sync()
	syncDir(d.cfg.Dir)
	return nil
}

// flushActive is the fsyncer callback: sync the active segment. Sealed
// segments were synced at rotation, so the active file is the only one with
// bytes possibly outside stable storage.
func (d *diskLog) flushActive() error {
	d.fileMu.Lock()
	defer d.fileMu.Unlock()
	if d.seg == nil {
		return nil
	}
	return d.seg.Sync()
}

// writePendingLocked moves the buffered frames into the active segment,
// rotating first if the segment is full. Caller holds l.mu.
func (l *Log) writePendingLocked() error {
	d := l.disk
	if len(d.pending) == 0 {
		return nil
	}
	d.fileMu.Lock()
	defer d.fileMu.Unlock()
	if d.seg == nil {
		return ErrClosed
	}
	if d.segSize >= d.cfg.SegmentBytes {
		if err := d.rotateLocked(d.written + 1); err != nil {
			return err
		}
	}
	if _, err := d.seg.Write(d.pending); err != nil {
		// Rewind any partial write so the frame stream stays aligned;
		// pending is kept intact for a retry.
		d.seg.Truncate(d.segSize)
		d.seg.Seek(d.segSize, io.SeekStart)
		return fmt.Errorf("wal: writing %s: %w", d.segs[len(d.segs)-1].path, err)
	}
	d.segSize += int64(len(d.pending))
	d.written = l.base + LSN(len(l.records))
	d.pending = d.pending[:0]
	return nil
}

// rotateLocked seals the active segment and starts a new one whose first
// record will be `first`. Caller holds l.mu and d.fileMu.
func (d *diskLog) rotateLocked(first LSN) error {
	if d.cfg.Fsync != fsyncer.PolicyNone {
		// Seal the outgoing segment so the flush callback only ever needs
		// to sync the active one.
		if err := d.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
	}
	path := filepath.Join(d.cfg.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if d.cfg.Fsync != fsyncer.PolicyNone {
		syncDir(d.cfg.Dir)
	}
	d.seg.Close()
	d.seg = f
	d.segSize = 0
	d.segs = append(d.segs, segInfo{first: first, path: path})
	return nil
}

// TruncateHead discards log records below keepFrom, the checkpoint anchor's
// successor. The disk backend deletes only whole sealed segments — the
// active segment keeps any pre-anchor records it holds, so recovery always
// re-reads a few records below the anchor and the sequence gate is what
// prevents double-apply. The in-memory backend trims exactly.
func (l *Log) TruncateHead(keepFrom LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if keepFrom > l.flushed+1 {
		keepFrom = l.flushed + 1
	}
	if keepFrom <= l.base+1 {
		return nil
	}
	if l.disk == nil {
		newBase := keepFrom - 1
		l.records = append([]Record(nil), l.records[newBase-l.base:]...)
		l.base = newBase
		return nil
	}
	d := l.disk
	d.fileMu.Lock()
	defer d.fileMu.Unlock()
	keep := 0
	for keep+1 < len(d.segs) && d.segs[keep+1].first <= keepFrom {
		keep++
	}
	if keep == 0 {
		return nil
	}
	for i := 0; i < keep; i++ {
		os.Remove(d.segs[i].path)
	}
	if d.cfg.Fsync != fsyncer.PolicyNone {
		syncDir(d.cfg.Dir)
	}
	d.segs = append([]segInfo(nil), d.segs[keep:]...)
	newBase := d.segs[0].first - 1
	l.records = append([]Record(nil), l.records[newBase-l.base:]...)
	l.base = newBase
	return nil
}

// Dir returns the disk backend's directory ("" for the in-memory backend).
func (l *Log) Dir() string {
	if l.disk == nil {
		return ""
	}
	return l.disk.cfg.Dir
}

// TornBytes reports how many bytes the open-time repair quarantined.
func (l *Log) TornBytes() int64 {
	if l.disk == nil {
		return 0
	}
	return l.disk.tornBytes
}

// SyncCount reports physical fsyncs issued by the disk backend.
func (l *Log) SyncCount() int64 {
	if l.disk == nil {
		return 0
	}
	return l.disk.sync.Count()
}

// listSegments returns the directory's wal-<first>.log files in LSN order.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numeral := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, perr := strconv.ParseUint(numeral, 10, 64)
		if perr != nil || first == 0 {
			return nil, fmt.Errorf("wal: bad segment name %q", name)
		}
		segs = append(segs, segInfo{first: LSN(first), path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func segName(first LSN) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, uint64(first), segSuffix)
}

// syncDir forces directory metadata (created/removed segment names) to disk.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// appendFrame encodes rec as one CRC frame onto buf.
func appendFrame(buf []byte, rec Record) []byte {
	payload := encodeRecord(rec)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecord serializes the record header fields and payload.
func encodeRecord(rec Record) []byte {
	buf := make([]byte, 0, 4*binary.MaxVarintLen64+1+len(rec.Payload))
	buf = binary.AppendUvarint(buf, uint64(rec.LSN))
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, rec.TxnID)
	buf = binary.AppendUvarint(buf, uint64(rec.PrevLSN))
	buf = binary.AppendUvarint(buf, uint64(rec.UndoLSN))
	return append(buf, rec.Payload...)
}

var errShortRecord = errors.New("wal: truncated record payload")

// decodeRecord is the inverse of encodeRecord. The payload is copied so the
// record does not alias the segment read buffer.
func decodeRecord(b []byte) (Record, error) {
	var rec Record
	lsn, n := binary.Uvarint(b)
	if n <= 0 {
		return rec, errShortRecord
	}
	b = b[n:]
	if len(b) < 1 {
		return rec, errShortRecord
	}
	rec.Type = RecType(b[0])
	b = b[1:]
	txn, n := binary.Uvarint(b)
	if n <= 0 {
		return rec, errShortRecord
	}
	b = b[n:]
	prev, n := binary.Uvarint(b)
	if n <= 0 {
		return rec, errShortRecord
	}
	b = b[n:]
	undo, n := binary.Uvarint(b)
	if n <= 0 {
		return rec, errShortRecord
	}
	b = b[n:]
	rec.LSN = LSN(lsn)
	rec.TxnID = txn
	rec.PrevLSN = LSN(prev)
	rec.UndoLSN = LSN(undo)
	if len(b) > 0 {
		rec.Payload = append([]byte(nil), b...)
	}
	return rec, nil
}

// decodeFrames walks the frame stream, returning the length of the valid
// prefix and its records. `next` is the LSN the first record must carry;
// any length, CRC, decode, or sequence anomaly ends the valid prefix.
func decodeFrames(data []byte, next LSN) (valid int64, recs []Record) {
	off := 0
	for {
		if len(data)-off < 8 {
			return int64(off), recs
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || int64(n) > maxRecordBytes {
			return int64(off), recs
		}
		if len(data)-off-8 < int(n) {
			return int64(off), recs
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off), recs
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.LSN != next {
			return int64(off), recs
		}
		recs = append(recs, rec)
		next++
		off += 8 + int(n)
	}
}
