package vfs

import (
	"sync"
	"testing"

	"datalinks/internal/fs"
)

// TestSharedFDOffsetRace: goroutines hammering one descriptor must never
// lose an offset update — every sequential Read consumes a distinct byte and
// every sequential Write lands on a distinct offset. Before fileEntry grew
// its offset mutex this was both a data race (caught by -race) and a lost
// update (two readers returning the same byte).
func TestSharedFDOffsetRace(t *testing.T) {
	l, phys := newLFS(t)
	cred := fs.Cred{UID: fs.Root}

	const perWorker = 1000
	const workers = 4
	content := make([]byte, perWorker*workers)
	for i := range content {
		content[i] = byte(i)
	}
	if err := phys.WriteFile("/data/shared.bin", content); err != nil {
		t.Fatal(err)
	}

	fd, err := l.Open(cred, "/data/shared.bin", fs.AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	reads := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 1)
			for i := 0; i < perWorker; i++ {
				n, err := l.Read(fd, buf)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if n == 1 {
					reads[w] = append(reads[w], buf[0])
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(fd); err != nil {
		t.Fatal(err)
	}
	// Union of all reads must cover the file exactly once: a lost offset
	// update shows up as a duplicate byte value plus a missed one.
	seen := make(map[int]int)
	total := 0
	for _, r := range reads {
		total += len(r)
		for _, b := range r {
			seen[int(b)]++
		}
	}
	if total != len(content) {
		t.Fatalf("read %d bytes total, want %d", total, len(content))
	}
	want := make(map[int]int)
	for _, b := range content {
		want[int(b)]++
	}
	for v := 0; v < 256; v++ {
		if seen[v] != want[v] {
			t.Fatalf("byte value %d read %d times, want %d (lost/duplicated offset)", v, seen[v], want[v])
		}
	}

	// Writers: every sequential 1-byte write must land on a fresh offset, so
	// the file ends up exactly workers*perWorker long with each worker's
	// marker appearing exactly perWorker times.
	wfd, err := l.Create(cred, "/data/out.bin", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			p := []byte{byte(200 + w)}
			for i := 0; i < perWorker; i++ {
				if _, err := l.Write(wfd, p); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	if err := l.Close(wfd); err != nil {
		t.Fatal(err)
	}
	out, err := phys.ReadFile("/data/out.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != workers*perWorker {
		t.Fatalf("file length %d after concurrent writes, want %d (lost offset updates)", len(out), workers*perWorker)
	}
	counts := make(map[byte]int)
	for _, b := range out {
		counts[b]++
	}
	for w := 0; w < workers; w++ {
		if got := counts[byte(200+w)]; got != perWorker {
			t.Fatalf("worker %d marker appears %d times, want %d", w, got, perWorker)
		}
	}
}
