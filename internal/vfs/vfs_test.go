package vfs

import (
	"errors"
	"testing"

	"datalinks/internal/fs"
)

var alice = fs.Cred{UID: 100}
var bob = fs.Cred{UID: 101}

func newLFS(t *testing.T) (*LFS, *fs.FS) {
	t.Helper()
	phys := fs.New()
	if err := phys.MkdirAll("/data", fs.Cred{UID: fs.Root}, 0o777); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	return NewLFS(NewPassthrough(phys)), phys
}

func TestOpenReadClose(t *testing.T) {
	lfs, phys := newLFS(t)
	phys.WriteFile("/data/f", []byte("hello"))

	fd, err := lfs.Open(alice, "/data/f", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buf := make([]byte, 3)
	n, err := lfs.Read(fd, buf)
	if err != nil || string(buf[:n]) != "hel" {
		t.Fatalf("read 1 = %q, %v", buf[:n], err)
	}
	n, err = lfs.Read(fd, buf)
	if err != nil || string(buf[:n]) != "lo" {
		t.Fatalf("read 2 = %q, %v", buf[:n], err)
	}
	n, err = lfs.Read(fd, buf)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
	if err := lfs.Close(fd); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := lfs.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close = %v", err)
	}
	if lfs.OpenCount() != 0 {
		t.Fatalf("descriptor leak: %d", lfs.OpenCount())
	}
}

func TestWriteViaDescriptor(t *testing.T) {
	lfs, phys := newLFS(t)
	fd, err := lfs.Create(alice, "/data/new", 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := lfs.Write(fd, []byte("abc")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := lfs.Write(fd, []byte("def")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	lfs.Close(fd)
	data, _ := phys.ReadFile("/data/new")
	if string(data) != "abcdef" {
		t.Fatalf("file content = %q", data)
	}
}

func TestModeEnforcementAtDescriptor(t *testing.T) {
	lfs, phys := newLFS(t)
	phys.WriteFile("/data/f", []byte("x"))
	fd, err := lfs.Open(alice, "/data/f", fs.AccessRead)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := lfs.Write(fd, []byte("y")); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write on read fd = %v", err)
	}
	lfs.Close(fd)
}

func TestOpenFailureReleasesFD(t *testing.T) {
	lfs, phys := newLFS(t)
	n, _ := phys.Create("/data/private", bob, 0o600)
	_ = n
	if _, err := lfs.Open(alice, "/data/private", fs.AccessRead); err == nil {
		t.Fatal("open of other's 0600 file should fail")
	}
	if lfs.OpenCount() != 0 {
		t.Fatalf("failed open leaked a descriptor: %d", lfs.OpenCount())
	}
}

func TestOpenMissingFile(t *testing.T) {
	lfs, _ := newLFS(t)
	if _, err := lfs.Open(alice, "/data/nope", fs.AccessRead); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
}

func TestReadAllAndSeek(t *testing.T) {
	lfs, phys := newLFS(t)
	content := make([]byte, 200_000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	phys.WriteFile("/data/big", content)
	fd, _ := lfs.Open(alice, "/data/big", fs.AccessRead)
	got, err := lfs.ReadAll(fd)
	if err != nil || len(got) != len(content) {
		t.Fatalf("readall = %d bytes, %v", len(got), err)
	}
	for i := range got {
		if got[i] != content[i] {
			t.Fatalf("content mismatch at %d", i)
		}
	}
	if err := lfs.Seek(fd, 10); err != nil {
		t.Fatalf("seek: %v", err)
	}
	buf := make([]byte, 1)
	lfs.Read(fd, buf)
	if buf[0] != content[10] {
		t.Fatalf("post-seek read = %d, want %d", buf[0], content[10])
	}
	lfs.Close(fd)
}

func TestStatRemoveRenameForwarding(t *testing.T) {
	lfs, phys := newLFS(t)
	phys.WriteFile("/data/f", []byte("12345"))
	fd, _ := lfs.Open(alice, "/data/f", fs.AccessRead)
	attr, err := lfs.Stat(fd)
	if err != nil || attr.Size != 5 {
		t.Fatalf("stat = %+v, %v", attr, err)
	}
	lfs.Close(fd)

	if err := lfs.Rename(fs.Cred{UID: fs.Root}, "/data/f", "/data/g"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	names, err := lfs.Readdir(alice, "/data")
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if err := lfs.Remove(fs.Cred{UID: fs.Root}, "/data/g"); err != nil {
		t.Fatalf("remove: %v", err)
	}
}

func TestLockctlThroughVFS(t *testing.T) {
	lfs, phys := newLFS(t)
	phys.WriteFile("/data/f", []byte("x"))
	node, err := lfs.Mounted().FsLookup(alice, "/data/f")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if err := lfs.Mounted().FsLockctl(node, "o1", fs.LockExclusive, false); err != nil {
		t.Fatalf("lock: %v", err)
	}
	if err := lfs.Mounted().FsLockctl(node, "o2", fs.LockExclusive, false); !errors.Is(err, fs.ErrLocked) {
		t.Fatalf("second lock = %v", err)
	}
	if err := lfs.Mounted().FsLockctl(node, "o1", fs.LockUnlock, false); err != nil {
		t.Fatalf("unlock: %v", err)
	}
}
