// Package vfs defines the virtual file system switch and the Logical File
// System (LFS) of the paper's architecture (Figure 1).
//
// The FileSystem interface mirrors the vnode entry points that the AIX LFS
// calls: fs_lookup, fs_open, fs_close, fs_read/fs_write, fs_remove,
// fs_rename, fs_lockctl. Crucially it reproduces the open() decoupling the
// paper's §4.1 hinges on: FsLookup receives the *name* (where an access token
// may be embedded) and returns an opaque node; FsOpen receives only the node
// and the access mode — not the name, and therefore not the token. DLFS must
// bridge that gap through DLFM token entries, exactly as in the paper.
//
// The LFS implements the syscall surface applications use (Open, Read, Write,
// Close, ...) on top of any FileSystem: it decomposes open() into
// FsLookup + file-descriptor allocation + FsOpen, and keeps the system
// open-file table.
package vfs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"datalinks/internal/fs"
)

// Node is an opaque vnode handle returned by FsLookup and consumed by FsOpen.
type Node interface{}

// OpenFile is the per-open state a FileSystem may associate with an open.
// DLFS uses it to remember the linked-file bookkeeping it must undo at close.
type OpenFile interface{}

// FileSystem is the set of vnode entry points a mounted file system provides.
type FileSystem interface {
	// FsLookup resolves name (which may carry an embedded access token) to a
	// node. It is called before FsOpen and does not know the access mode.
	FsLookup(cred fs.Cred, name string) (Node, error)
	// FsOpen opens a previously looked-up node with the given access mode.
	// It does not receive the name — the decoupling of §4.1.
	FsOpen(cred fs.Cred, node Node, mode fs.AccessMode) (OpenFile, error)
	// FsClose releases an open. For DLFS this is where update transactions
	// commit.
	FsClose(cred fs.Cred, node Node, of OpenFile) error
	// FsRead and FsWrite transfer data. DataLinks deliberately does NOT
	// interpose on these (performance, §3.2), but they are part of the
	// interface so a per-write-transaction ablation can.
	FsRead(node Node, of OpenFile, off int64, p []byte) (int, error)
	FsWrite(node Node, of OpenFile, off int64, p []byte) (int, error)
	// FsRemove unlinks a file; FsRename moves one. DLFS rejects both for
	// linked files (referential integrity).
	FsRemove(cred fs.Cred, name string) error
	FsRename(cred fs.Cred, oldName, newName string) error
	// FsGetattr returns the attributes of a node.
	FsGetattr(node Node) (fs.Attr, error)
	// FsCreate makes a new file.
	FsCreate(cred fs.Cred, name string, mode fs.FileMode) (Node, error)
	// FsLockctl acquires or releases an advisory lock on the node.
	FsLockctl(node Node, owner string, op fs.LockOp, block bool) error
	// FsReaddir lists a directory.
	FsReaddir(cred fs.Cred, name string) ([]string, error)
}

// CtxFileSystem is implemented by file systems whose interposed entry
// points accept a request context — the carrier for trace spans. The LFS
// upgrades to it when available; plain FileSystem implementations keep
// working untraced (the same pattern as upcall.CtxService).
type CtxFileSystem interface {
	FsLookupCtx(ctx context.Context, cred fs.Cred, name string) (Node, error)
	FsOpenCtx(ctx context.Context, cred fs.Cred, node Node, mode fs.AccessMode) (OpenFile, error)
	FsCloseCtx(ctx context.Context, cred fs.Cred, node Node, of OpenFile) error
}

// Errors of the LFS layer.
var (
	ErrBadFD = errors.New("vfs: bad file descriptor")
)

// FD is a file descriptor index into a process's LFS table.
type FD int

// fileEntry is one slot of the system open-file table.
//
// The descriptor offset has its own mutex: lookupFD hands the entry out
// after releasing the shard lock, so two goroutines sharing an fd would
// otherwise race on offset (and lose updates — both reading the same offset,
// then both advancing from it). Read/Write hold the mutex across the I/O,
// giving POSIX-style atomic offset advancement on shared descriptors;
// positional ReadAt/WriteAt never touch the offset and stay lock-free.
type fileEntry struct {
	node Node
	of   OpenFile
	cred fs.Cred
	mode fs.AccessMode
	name string

	offMu  sync.Mutex
	offset int64
}

// fdShardCount must be a power of two.
const fdShardCount = 16

// fdShard is one stripe of the open-file table.
type fdShard struct {
	mu    sync.Mutex
	table map[FD]*fileEntry
}

// LFS is the logical file system: the syscall layer applications use.
//
// The open-file table is sharded by descriptor so concurrent opens, closes
// and per-I/O descriptor lookups of unrelated files never serialize on a
// single table mutex; descriptor numbers come from an atomic counter.
type LFS struct {
	fsys FileSystem

	next   atomic.Int64
	shards [fdShardCount]fdShard
}

// NewLFS mounts a FileSystem and returns the syscall layer over it.
func NewLFS(fsys FileSystem) *LFS {
	l := &LFS{fsys: fsys}
	l.next.Store(2) // first allocated descriptor is 3, after stdio
	for i := range l.shards {
		l.shards[i].table = make(map[FD]*fileEntry)
	}
	return l
}

// shard returns the stripe owning fd.
func (l *LFS) shard(fd FD) *fdShard {
	return &l.shards[uint64(fd)&(fdShardCount-1)]
}

// Mounted returns the underlying FileSystem (used by admin tooling).
func (l *LFS) Mounted() FileSystem { return l.fsys }

// Open performs the open() system call: lookup, fd allocation, fs_open.
// On any fs_open failure the fd is released, mirroring kernel behaviour.
func (l *LFS) Open(cred fs.Cred, name string, mode fs.AccessMode) (FD, error) {
	return l.OpenCtx(context.Background(), cred, name, mode)
}

// OpenCtx is Open under a request context, threading it through to a
// CtxFileSystem's lookup and open hooks (trace propagation).
func (l *LFS) OpenCtx(ctx context.Context, cred fs.Cred, name string, mode fs.AccessMode) (FD, error) {
	cfs, hasCtx := l.fsys.(CtxFileSystem)
	var node Node
	var err error
	if hasCtx {
		node, err = cfs.FsLookupCtx(ctx, cred, name)
	} else {
		node, err = l.fsys.FsLookup(cred, name)
	}
	if err != nil {
		return -1, fmt.Errorf("open %s: %w", name, err)
	}
	// The kernel allocates the file structure before calling fs_open (§2.3).
	fd := FD(l.next.Add(1))
	entry := &fileEntry{node: node, cred: cred, mode: mode, name: name}
	sh := l.shard(fd)
	sh.mu.Lock()
	sh.table[fd] = entry
	sh.mu.Unlock()

	var of OpenFile
	if hasCtx {
		of, err = cfs.FsOpenCtx(ctx, cred, node, mode)
	} else {
		of, err = l.fsys.FsOpen(cred, node, mode)
	}
	if err != nil {
		sh.mu.Lock()
		delete(sh.table, fd)
		sh.mu.Unlock()
		return -1, fmt.Errorf("open %s: %w", name, err)
	}
	entry.of = of
	return fd, nil
}

// Create makes a new file and opens it for writing.
func (l *LFS) Create(cred fs.Cred, name string, mode fs.FileMode) (FD, error) {
	if _, err := l.fsys.FsCreate(cred, name, mode); err != nil {
		return -1, fmt.Errorf("create %s: %w", name, err)
	}
	return l.Open(cred, name, fs.AccessWrite)
}

// lookupFD fetches the open-file entry for fd.
func (l *LFS) lookupFD(fd FD) (*fileEntry, error) {
	sh := l.shard(fd)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.table[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return e, nil
}

// Close releases the descriptor and calls fs_close.
func (l *LFS) Close(fd FD) error {
	return l.CloseCtx(context.Background(), fd)
}

// CloseCtx is Close under a request context, threading it through to a
// CtxFileSystem's close hook (where update transactions commit).
func (l *LFS) CloseCtx(ctx context.Context, fd FD) error {
	sh := l.shard(fd)
	sh.mu.Lock()
	e, ok := sh.table[fd]
	if ok {
		delete(sh.table, fd)
	}
	sh.mu.Unlock()
	if !ok {
		return ErrBadFD
	}
	if cfs, hasCtx := l.fsys.(CtxFileSystem); hasCtx {
		return cfs.FsCloseCtx(ctx, e.cred, e.node, e.of)
	}
	return l.fsys.FsClose(e.cred, e.node, e.of)
}

// Read reads up to len(p) bytes at the descriptor's current offset.
// n == 0 with nil error signals EOF.
func (l *LFS) Read(fd FD, p []byte) (int, error) {
	e, err := l.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if e.mode&fs.AccessRead == 0 {
		return 0, fs.ErrPermission
	}
	e.offMu.Lock()
	defer e.offMu.Unlock()
	n, err := l.fsys.FsRead(e.node, e.of, e.offset, p)
	e.offset += int64(n)
	return n, err
}

// Write writes p at the descriptor's current offset.
func (l *LFS) Write(fd FD, p []byte) (int, error) {
	e, err := l.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if e.mode&fs.AccessWrite == 0 {
		return 0, fs.ErrPermission
	}
	e.offMu.Lock()
	defer e.offMu.Unlock()
	n, err := l.fsys.FsWrite(e.node, e.of, e.offset, p)
	e.offset += int64(n)
	return n, err
}

// ReadAt and WriteAt are positional variants that do not move the offset.
func (l *LFS) ReadAt(fd FD, off int64, p []byte) (int, error) {
	e, err := l.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if e.mode&fs.AccessRead == 0 {
		return 0, fs.ErrPermission
	}
	return l.fsys.FsRead(e.node, e.of, off, p)
}

// WriteAt writes p at offset off without moving the descriptor offset.
func (l *LFS) WriteAt(fd FD, off int64, p []byte) (int, error) {
	e, err := l.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if e.mode&fs.AccessWrite == 0 {
		return 0, fs.ErrPermission
	}
	return l.fsys.FsWrite(e.node, e.of, off, p)
}

// ReadAll reads the whole file behind fd from offset 0.
func (l *LFS) ReadAll(fd FD) ([]byte, error) {
	var out []byte
	buf := make([]byte, 64*1024)
	off := int64(0)
	for {
		n, err := l.ReadAt(fd, off, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
		off += int64(n)
	}
}

// Seek sets the descriptor offset (whence: 0=set only; kept minimal).
func (l *LFS) Seek(fd FD, off int64) error {
	e, err := l.lookupFD(fd)
	if err != nil {
		return err
	}
	if off < 0 {
		return fs.ErrInvalid
	}
	e.offMu.Lock()
	e.offset = off
	e.offMu.Unlock()
	return nil
}

// Stat returns the attributes of the file behind fd.
func (l *LFS) Stat(fd FD) (fs.Attr, error) {
	e, err := l.lookupFD(fd)
	if err != nil {
		return fs.Attr{}, err
	}
	return l.fsys.FsGetattr(e.node)
}

// Remove, Rename and Readdir forward the path-based calls.
func (l *LFS) Remove(cred fs.Cred, name string) error {
	return l.fsys.FsRemove(cred, name)
}

// Rename forwards the rename call to the mounted file system.
func (l *LFS) Rename(cred fs.Cred, oldName, newName string) error {
	return l.fsys.FsRename(cred, oldName, newName)
}

// Readdir lists directory entries.
func (l *LFS) Readdir(cred fs.Cred, name string) ([]string, error) {
	return l.fsys.FsReaddir(cred, name)
}

// OpenCount reports how many descriptors are currently open (leak checks).
func (l *LFS) OpenCount() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

// Passthrough adapts a physical fs.FS directly to the FileSystem interface
// with no interposition: the "native file system" baseline of §3.2 and the
// layer below DLFS.
type Passthrough struct {
	Phys *fs.FS
}

// NewPassthrough wraps a physical file system.
func NewPassthrough(phys *fs.FS) *Passthrough { return &Passthrough{Phys: phys} }

var _ FileSystem = (*Passthrough)(nil)

// FsLookup resolves the name on the physical file system.
func (p *Passthrough) FsLookup(cred fs.Cred, name string) (Node, error) {
	return p.Phys.Lookup(name)
}

// FsOpen performs the physical permission check.
func (p *Passthrough) FsOpen(cred fs.Cred, node Node, mode fs.AccessMode) (OpenFile, error) {
	ino := node.(*fs.Inode)
	if err := p.Phys.OpenCheck(ino, cred, mode); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

// FsClose is a no-op for the native file system.
func (p *Passthrough) FsClose(cred fs.Cred, node Node, of OpenFile) error { return nil }

// FsRead reads through to the physical file.
func (p *Passthrough) FsRead(node Node, of OpenFile, off int64, buf []byte) (int, error) {
	return p.Phys.ReadAt(node.(*fs.Inode), off, buf)
}

// FsWrite writes through to the physical file.
func (p *Passthrough) FsWrite(node Node, of OpenFile, off int64, buf []byte) (int, error) {
	return p.Phys.WriteAt(node.(*fs.Inode), off, buf)
}

// FsRemove unlinks on the physical file system.
func (p *Passthrough) FsRemove(cred fs.Cred, name string) error {
	return p.Phys.Remove(name, cred)
}

// FsRename renames on the physical file system.
func (p *Passthrough) FsRename(cred fs.Cred, oldName, newName string) error {
	return p.Phys.Rename(oldName, newName, cred)
}

// FsGetattr stats the physical inode.
func (p *Passthrough) FsGetattr(node Node) (fs.Attr, error) {
	return p.Phys.Getattr(node.(*fs.Inode))
}

// FsCreate creates a physical file.
func (p *Passthrough) FsCreate(cred fs.Cred, name string, mode fs.FileMode) (Node, error) {
	return p.Phys.Create(name, cred, mode)
}

// FsLockctl locks or unlocks the physical inode.
func (p *Passthrough) FsLockctl(node Node, owner string, op fs.LockOp, block bool) error {
	if block {
		return p.Phys.Lockctl(node.(*fs.Inode), owner, op)
	}
	return p.Phys.TryLockctl(node.(*fs.Inode), owner, op)
}

// FsReaddir lists a physical directory.
func (p *Passthrough) FsReaddir(cred fs.Cred, name string) ([]string, error) {
	return p.Phys.ReadDir(name)
}
