// Package workload generates deterministic workloads for the experiment
// harness: file populations of configurable sizes, skewed (zipf) file
// choice, and content generators whose versions are distinguishable so
// torn reads can be detected byte-exactly.
package workload

import (
	"fmt"
	"math/rand"

	"datalinks/internal/fs"
)

// RNG returns a deterministic random source for a named experiment.
func RNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Content builds a pseudo-random payload of the given size.
func Content(rng *rand.Rand, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte('a' + rng.Intn(26))
	}
	return out
}

// UniformContent builds a payload of the given size filled with one byte —
// version v of a file is all 'A'+v%26. A read that mixes two fill bytes is a
// torn read, detectable with a single scan.
func UniformContent(size int, version int) []byte {
	out := make([]byte, size)
	fill := byte('A' + version%26)
	for i := range out {
		out[i] = fill
	}
	return out
}

// TornCheck reports whether content is a clean single-version payload, and
// which version byte it carries. Mixed fill bytes mean a torn read.
func TornCheck(content []byte) (clean bool, fill byte) {
	if len(content) == 0 {
		return true, 0
	}
	fill = content[0]
	for _, b := range content {
		if b != fill {
			return false, fill
		}
	}
	return true, fill
}

// Zipf draws file indexes with the classic skew (s=1.1) so experiments see
// contention on hot files.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a zipf chooser over [0, n).
func NewZipf(rng *rand.Rand, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(rng, 1.1, 1, uint64(n-1))}
}

// Next draws the next file index.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Population describes a set of seeded files on one file server.
type Population struct {
	Dir   string
	Paths []string
	Size  int
	Owner fs.UID
}

// Seed creates n files of the given size under dir on phys, owned by owner.
func Seed(phys *fs.FS, dir string, n, size int, owner fs.UID, rng *rand.Rand) (*Population, error) {
	if err := phys.MkdirAll(dir, fs.Cred{UID: fs.Root}, 0o777); err != nil {
		return nil, err
	}
	pop := &Population{Dir: dir, Size: size, Owner: owner}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("%s/file%04d.dat", dir, i)
		if err := phys.WriteFile(path, Content(rng, size)); err != nil {
			return nil, err
		}
		ino, err := phys.Lookup(path)
		if err != nil {
			return nil, err
		}
		if err := phys.Chown(ino, fs.Cred{UID: fs.Root}, owner); err != nil {
			return nil, err
		}
		if err := phys.Chmod(ino, fs.Cred{UID: owner}, 0o644); err != nil {
			return nil, err
		}
		pop.Paths = append(pop.Paths, path)
	}
	return pop, nil
}

// URL renders the DATALINK URL of the i-th file for a server name.
func (p *Population) URL(server string, i int) string {
	return "dlfs://" + server + p.Paths[i]
}
