package workload

import (
	"testing"

	"datalinks/internal/fs"
)

func TestSeedCreatesOwnedFiles(t *testing.T) {
	phys := fs.New()
	pop, err := Seed(phys, "/data", 5, 256, 42, RNG(1))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	if len(pop.Paths) != 5 {
		t.Fatalf("paths = %v", pop.Paths)
	}
	for _, p := range pop.Paths {
		ino, err := phys.Lookup(p)
		if err != nil {
			t.Fatalf("lookup %s: %v", p, err)
		}
		attr, _ := phys.Getattr(ino)
		if attr.UID != 42 || attr.Size != 256 || attr.Mode != 0o644 {
			t.Fatalf("attr of %s = %+v", p, attr)
		}
	}
	if pop.URL("srv", 0) != "dlfs://srv/data/file0000.dat" {
		t.Fatalf("url = %s", pop.URL("srv", 0))
	}
}

func TestContentDeterministic(t *testing.T) {
	a := Content(RNG(7), 128)
	b := Content(RNG(7), 128)
	if string(a) != string(b) {
		t.Fatal("same seed produced different content")
	}
	c := Content(RNG(8), 128)
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical content")
	}
}

func TestUniformContentAndTornCheck(t *testing.T) {
	v3 := UniformContent(64, 3)
	clean, fill := TornCheck(v3)
	if !clean || fill != 'D' {
		t.Fatalf("clean=%v fill=%c", clean, fill)
	}
	mixed := append(UniformContent(32, 1), UniformContent(32, 2)...)
	if clean, _ := TornCheck(mixed); clean {
		t.Fatal("mixed content reported clean")
	}
	if clean, _ := TornCheck(nil); !clean {
		t.Fatal("empty content should be clean")
	}
}

func TestZipfSkewsTowardsLowIndexes(t *testing.T) {
	z := NewZipf(RNG(3), 100)
	counts := make(map[int]int)
	for i := 0; i < 10_000; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 100 {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("no skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfSingleFile(t *testing.T) {
	z := NewZipf(RNG(1), 1)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("single-file zipf must return 0")
		}
	}
}
