package upcall

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"datalinks/internal/retry"
)

// --- hermetic test servers -------------------------------------------------
//
// rawServer is a scripted in-process server: connection i is handed to
// handlers[i] (later connections are closed immediately). It lets tests
// produce exact wire-level misbehaviour — torn frames, stale sequence
// numbers, oversized headers — that a well-behaved Server never would.

func rawServer(t *testing.T, handlers ...func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if i < len(handlers) {
				h := handlers[i]
				go func() {
					defer conn.Close()
					h(conn)
				}()
			} else {
				conn.Close()
			}
		}
	}()
	return ln.Addr().String()
}

// echoFrames answers every well-formed request frame with resp.
func echoFrames(resp Response) func(net.Conn) {
	return func(conn net.Conn) {
		r := bufio.NewReader(conn)
		for {
			var e envelope
			if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
				return
			}
			if err := writeFrame(conn, DefaultMaxFrame, &envelope{Seq: e.Seq, Resp: resp}); err != nil {
				return
			}
		}
	}
}

// fastClient is a client config with short timeouts and tight backoff so
// fault paths resolve in milliseconds.
func fastClient() ClientConfig {
	return ClientConfig{
		PoolSize:       1,
		DialTimeout:    time.Second,
		OpTimeout:      5 * time.Second,
		AttemptTimeout: 200 * time.Millisecond,
		Retry:          retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		DisableBreaker: true,
	}
}

// gateService blocks every upcall until release is closed, signalling entry
// on entered. It drives the backpressure and drain tests.
type gateService struct {
	entered chan struct{}
	release chan struct{}
}

func newGateService() *gateService {
	return &gateService{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateService) Upcall(Request) (Response, error) {
	g.entered <- struct{}{}
	<-g.release
	return Response{OK: true}, nil
}

// --- client fault paths ----------------------------------------------------

// Server dies mid-reply: the client must retire the poisoned connection,
// redial, and succeed on the retry.
func TestClientRetriesTornReply(t *testing.T) {
	addr := rawServer(t,
		func(conn net.Conn) {
			r := bufio.NewReader(conn)
			var e envelope
			if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
				return
			}
			// Promise 64 payload bytes, deliver 8, hang up.
			conn.Write([]byte{0, 0, 0, 64})
			conn.Write(make([]byte, 8))
		},
		echoFrames(Response{OK: true, OpenID: 11}),
	)
	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	resp, err := client.Upcall(Request{Op: OpCheckOpen})
	if err != nil || !resp.OK || resp.OpenID != 11 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	m := client.Metrics()
	if m.Counter("upcall.retries").Value() < 1 {
		t.Fatal("no retry recorded")
	}
	if m.Counter("upcall.conns_retired").Value() < 1 {
		t.Fatal("poisoned connection not retired")
	}
	if m.Counter("upcall.conns_dialed").Value() != 2 {
		t.Fatalf("dials = %d, want 2", m.Counter("upcall.conns_dialed").Value())
	}
}

// A response carrying the wrong sequence number means the stream is out of
// sync; the client must kill the connection rather than mis-deliver it.
func TestClientRejectsStaleResponseSeq(t *testing.T) {
	addr := rawServer(t,
		func(conn net.Conn) {
			r := bufio.NewReader(conn)
			var e envelope
			if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
				return
			}
			writeFrame(conn, DefaultMaxFrame, &envelope{Seq: e.Seq + 999, Resp: Response{OK: true}})
		},
		echoFrames(Response{OK: true}),
	)
	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if client.Metrics().Counter("upcall.conns_retired").Value() < 1 {
		t.Fatal("out-of-sync connection not retired")
	}
}

// A reply header promising more than MaxFrame must be rejected before any
// allocation, and the connection retired.
func TestClientRejectsOversizedReply(t *testing.T) {
	addr := rawServer(t,
		func(conn net.Conn) {
			r := bufio.NewReader(conn)
			var e envelope
			if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
				return
			}
			conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame, sure
			time.Sleep(50 * time.Millisecond)          // let the client read it
		},
		echoFrames(Response{OK: true}),
	)
	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if resp, err := client.Upcall(Request{Op: OpReadOpen}); err != nil || !resp.OK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if client.Metrics().Counter("upcall.retries").Value() < 1 {
		t.Fatal("oversized reply did not trigger a retry")
	}
}

// A lost reply (server reads the request, answers nothing) must cost one
// attempt timeout, not the whole op: the retry goes to a fresh connection.
func TestClientRetriesLostReply(t *testing.T) {
	addr := rawServer(t,
		func(conn net.Conn) {
			r := bufio.NewReader(conn)
			var e envelope
			readFrame(r, DefaultMaxFrame, &e)
			time.Sleep(2 * time.Second) // never answer within the attempt timeout
		},
		echoFrames(Response{OK: true}),
	)
	cfg := fastClient()
	cfg.AttemptTimeout = 100 * time.Millisecond
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	start := time.Now()
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("lost reply burned %v, want ~1 attempt timeout", d)
	}
}

// Permanent service errors must not be retried.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	svc := &echoService{err: errors.New("token rejected")}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Upcall(Request{Op: OpValidateToken}); err == nil || err.Error() != "token rejected" {
		t.Fatalf("err = %v", err)
	}
	if n := client.Metrics().Counter("upcall.retries").Value(); n != 0 {
		t.Fatalf("permanent error retried %d times", n)
	}
	svc.mu.Lock()
	calls := len(svc.calls)
	svc.mu.Unlock()
	if calls != 1 {
		t.Fatalf("service saw %d calls, want 1", calls)
	}
}

// When every attempt fails, the client gives up with a transport error and
// counts the giveup.
func TestClientGivesUpAfterBudget(t *testing.T) {
	cfg := fastClient()
	cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		return nil, errors.New("connection refused")
	}
	// Eager dial fails fast — that is the contract.
	if _, err := DialConfig("127.0.0.1:1", cfg); !errors.Is(err, ErrConnLost) {
		t.Fatalf("eager dial err = %v, want ErrConnLost", err)
	}

	// Now a client whose server vanishes after dial time.
	var broken atomic.Bool
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	cfg = fastClient()
	cfg.Dial = func(_ string, timeout time.Duration) (net.Conn, error) {
		if broken.Load() {
			return nil, errors.New("connection refused")
		}
		return netDial(addr, timeout)
	}
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	broken.Store(true)
	server.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); !errors.Is(err, ErrConnLost) {
		t.Fatalf("err = %v, want ErrConnLost", err)
	}
	m := client.Metrics()
	if m.Counter("upcall.giveups").Value() != 1 {
		t.Fatalf("giveups = %d, want 1", m.Counter("upcall.giveups").Value())
	}
	if m.Counter("upcall.retries").Value() < 1 {
		t.Fatal("no retries before giving up")
	}
}

// Repeated transport failures open the circuit breaker: subsequent calls
// fail fast without touching the network, and a cooldown later one probe
// closes it again against a healthy daemon.
func TestClientBreakerOpensFailsFastRecovers(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	var broken atomic.Bool
	var dials atomic.Int64
	cfg := fastClient()
	cfg.DisableBreaker = false
	cfg.Breaker = &retry.BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}
	cfg.Retry = retry.Policy{MaxAttempts: 1}
	cfg.Dial = func(_ string, timeout time.Duration) (net.Conn, error) {
		dials.Add(1)
		if broken.Load() {
			return nil, errors.New("connection refused")
		}
		return netDial(addr, timeout)
	}
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Take the daemon away: the pooled connection dies with the server and
	// replacement dials are refused.
	broken.Store(true)
	server.Close()
	for i := 0; i < 3; i++ {
		if _, err := client.Upcall(Request{Op: OpClose}); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if client.Metrics().Counter("upcall.breaker_open").Value() < 1 {
		t.Fatal("breaker never opened")
	}
	// Open breaker fails fast: no dial attempts, ErrOpen surfaced.
	before := dials.Load()
	if _, err := client.Upcall(Request{Op: OpClose}); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want retry.ErrOpen", err)
	}
	if dials.Load() != before {
		t.Fatal("open breaker still touched the network")
	}

	// Recover: a fresh daemon comes up, the cooldown passes, one probe
	// closes the breaker.
	server2, addr2, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve2: %v", err)
	}
	defer server2.Close()
	addr = addr2
	broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("post-recovery call: %+v, %v", resp, err)
	}
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("breaker did not close after probe: %+v, %v", resp, err)
	}
}

// --- server fault paths ----------------------------------------------------

// A client that dies mid-request (header promised more than it sent) must
// not wedge the server.
func TestServerSurvivesClientKilledMidRequest(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{FrameTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	conn.Write([]byte{0, 0, 0, 100}) // promise 100 bytes
	conn.Write(make([]byte, 10))     // deliver 10
	conn.Close()

	// Also: a client that goes silent mid-frame without closing.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial 2: %v", err)
	}
	defer conn2.Close()
	conn2.Write([]byte{0, 0, 0, 100})
	// Say nothing more; FrameTimeout must cut it off.

	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if resp, err := client.Upcall(Request{Op: OpCheckRename}); err != nil || !resp.OK {
		t.Fatalf("server wedged after torn request: %+v, %v", resp, err)
	}
}

// An oversized inbound frame kills only its own connection, and is counted.
func TestServerRejectsOversizedFrame(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{MaxFrame: 1024})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte{0, 0, 0x10, 0}) // 4096 > 1024
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
	if server.Metrics().Counter("upcall.frames_oversized").Value() != 1 {
		t.Fatal("oversized frame not counted")
	}

	// The server still serves others.
	client, err := DialConfig(addr, ClientConfig{MaxFrame: 1024, DisableBreaker: true})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

// A full per-connection window answers overload immediately instead of
// queueing unbounded work, and the reply is marked retryable.
func TestServerWindowBackpressure(t *testing.T) {
	svc := newGateService()
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{Window: 1})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	<-svc.entered // request 1 is in the service, holding the window
	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 2, Req: Request{Op: OpClose}})
	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 3, Req: Request{Op: OpClose}})

	for _, wantSeq := range []uint64{2, 3} {
		var e envelope
		if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
			t.Fatalf("read overload reply: %v", err)
		}
		if e.Seq != wantSeq || !e.Retryable || e.Err != ErrOverloaded.Error() {
			t.Fatalf("overload reply = %+v", e)
		}
	}
	close(svc.release)
	var e envelope
	if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
		t.Fatalf("read gated reply: %v", err)
	}
	if e.Seq != 1 || !e.Resp.OK {
		t.Fatalf("gated reply = %+v", e)
	}
	if server.Metrics().Counter("upcall.inflight_rejected").Value() != 2 {
		t.Fatalf("inflight_rejected = %d, want 2", server.Metrics().Counter("upcall.inflight_rejected").Value())
	}
}

// The global in-flight cap bounds work across connections.
func TestServerGlobalInflightCap(t *testing.T) {
	svc := newGateService()
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{Window: 4, MaxInflight: 1})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	connA, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial A: %v", err)
	}
	defer connA.Close()
	connB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial B: %v", err)
	}
	defer connB.Close()

	writeFrame(connA, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	<-svc.entered
	writeFrame(connB, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	var e envelope
	if err := readFrame(bufio.NewReader(connB), DefaultMaxFrame, &e); err != nil {
		t.Fatalf("read B: %v", err)
	}
	if !e.Retryable || e.Err != ErrOverloaded.Error() {
		t.Fatalf("B's reply = %+v, want retryable overload", e)
	}
	close(svc.release)
	if err := readFrame(bufio.NewReader(connA), DefaultMaxFrame, &e); err != nil || !e.Resp.OK {
		t.Fatalf("A's reply = %+v, %v", e, err)
	}
}

// Connections beyond MaxConns are refused at accept.
func TestServerMaxConns(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{MaxConns: 1})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer conn1.Close()
	// Round-trip to guarantee conn1 is registered before conn2 arrives.
	writeFrame(conn1, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	var e envelope
	if err := readFrame(bufio.NewReader(conn1), DefaultMaxFrame, &e); err != nil {
		t.Fatalf("conn1 round trip: %v", err)
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn2.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn beyond MaxConns was not refused")
	}
	if server.Metrics().Counter("upcall.conns_rejected").Value() != 1 {
		t.Fatal("refused conn not counted")
	}
}

// Idle connections are evicted after IdleTimeout.
func TestServerEvictsIdleConns(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection not evicted")
	}
	if server.Metrics().Counter("upcall.evicted").Value() < 1 {
		t.Fatal("eviction not counted")
	}
}

// Graceful drain: in-flight requests finish and their responses flush
// before the connections close.
func TestServerDrainFlushesInflight(t *testing.T) {
	svc := newGateService()
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	client, err := DialConfig(addr, fastClient())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := client.Upcall(Request{Op: OpClose})
		if err == nil && !resp.OK {
			err = errors.New("response not OK")
		}
		done <- err
	}()
	<-svc.entered // the request is in the service
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(svc.release)
	}()
	if err := server.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request lost during drain: %v", err)
	}
}

// Drain must give up after its timeout when a handler never finishes,
// returning an error instead of hanging.
func TestServerDrainTimesOut(t *testing.T) {
	svc := newGateService()
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	<-svc.entered

	start := time.Now()
	if err := server.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("drain with a stuck handler returned nil")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("drain took %v, want ~50ms", d)
	}
	close(svc.release) // let the stuck handler finish
}

// A request that the reader picks up after the drain flag is set is refused
// with a retryable draining error. White-box: the flag is raised directly so
// the read completes deterministically after it (a real Drain races its
// deadline nudge against the in-flight read).
func TestServerDrainRefusesNewRequests(t *testing.T) {
	svc := newGateService()
	server, addr, err := ServeConfig(svc, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Park request 1 in the service; the reader loops back into its header
	// wait (give it a beat to get there before raising the flag).
	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 1, Req: Request{Op: OpClose}})
	<-svc.entered
	time.Sleep(20 * time.Millisecond)

	server.draining.Store(true)
	writeFrame(conn, DefaultMaxFrame, &envelope{Seq: 2, Req: Request{Op: OpClose}})
	var e envelope
	if err := readFrame(r, DefaultMaxFrame, &e); err != nil {
		t.Fatalf("read drain reply: %v", err)
	}
	if e.Seq != 2 || !e.Retryable || e.Err != ErrDraining.Error() {
		t.Fatalf("drain reply = %+v, want retryable draining error", e)
	}
	if server.Metrics().Counter("upcall.drain_rejected").Value() != 1 {
		t.Fatal("drain rejection not counted")
	}

	// The parked request still completes and its response still flushes.
	close(svc.release)
	if err := readFrame(r, DefaultMaxFrame, &e); err != nil || e.Seq != 1 || !e.Resp.OK {
		t.Fatalf("parked reply = %+v, %v", e, err)
	}
}

// --- chaos ----------------------------------------------------------------

// The same seed must produce the same fault sequence.
func TestChaosDeterministic(t *testing.T) {
	mk := func() *Chaos {
		return &Chaos{Seed: 7, DropProb: 0.3, ResetProb: 0.2, DelayDist: Delay{Prob: 0.5, Min: time.Microsecond, Max: 5 * time.Microsecond}}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ad, adrop, areset := a.roll()
		bd, bdrop, breset := b.roll()
		if ad != bd || adrop != bdrop || areset != breset {
			t.Fatalf("roll %d diverged: (%v %v %v) vs (%v %v %v)", i, ad, adrop, areset, bd, bdrop, breset)
		}
	}
}

// WrapService injects connection-scoped faults in-process, and Enable(false)
// turns them all off.
func TestChaosWrapService(t *testing.T) {
	inner := &echoService{resp: Response{OK: true}}
	ch := &Chaos{DropProb: 1}
	svc := ch.WrapService(inner)
	if _, err := svc.Upcall(Request{Op: OpClose}); !errors.Is(err, ErrConnLost) {
		t.Fatalf("err = %v, want ErrConnLost", err)
	}
	if ch.Stats().Drops != 1 {
		t.Fatalf("stats = %+v", ch.Stats())
	}
	inner.mu.Lock()
	n := len(inner.calls)
	inner.mu.Unlock()
	if n != 0 {
		t.Fatal("dropped request still reached the service")
	}

	ch.Enable(false)
	if resp, err := svc.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("disabled chaos still faulted: %+v, %v", resp, err)
	}

	ch.Enable(true)
	ch.DropProb = 0
	ch.Partition(true)
	if _, err := svc.Upcall(Request{Op: OpClose}); !errors.Is(err, ErrConnLost) {
		t.Fatalf("partition err = %v, want ErrConnLost", err)
	}
	ch.Partition(false)
	if resp, err := svc.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("partition heal: %+v, %v", resp, err)
	}
}

// Soak: a real server, a chaos-wrapped client, and every op must still
// succeed via retries while faults are provably injected.
func TestChaosSoakOverTCP(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	ch := &Chaos{
		Seed:      42,
		DropProb:  0.15,
		ResetProb: 0.08,
		DelayDist: Delay{Prob: 0.2, Min: 100 * time.Microsecond, Max: 2 * time.Millisecond},
	}
	cfg := ClientConfig{
		PoolSize:       2,
		AttemptTimeout: 60 * time.Millisecond,
		OpTimeout:      10 * time.Second,
		Retry:          retry.Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		DisableBreaker: true,
		Chaos:          ch,
	}
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	const ops = 40
	for i := 0; i < ops; i++ {
		if resp, err := client.Upcall(Request{Op: OpClose, OpenID: uint64(i)}); err != nil || !resp.OK {
			t.Fatalf("op %d: %+v, %v", i, resp, err)
		}
	}
	st := ch.Stats()
	if st.Drops+st.Resets == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
	svc.mu.Lock()
	served := len(svc.calls)
	svc.mu.Unlock()
	if served < ops {
		t.Fatalf("server saw %d calls, want >= %d (at-least-once)", served, ops)
	}
	if client.Metrics().Counter("upcall.retries").Value() == 0 {
		t.Fatal("soak ran without a single retry despite injected faults")
	}
}

// Partition over TCP: dials fail while partitioned, heal restores service.
func TestChaosPartitionOverTCP(t *testing.T) {
	svc := &echoService{resp: Response{OK: true}}
	server, addr, err := Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer server.Close()

	ch := &Chaos{}
	cfg := fastClient()
	cfg.AttemptTimeout = 50 * time.Millisecond
	cfg.Chaos = ch
	client, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Upcall(Request{Op: OpClose}); err != nil {
		t.Fatalf("pre-partition: %v", err)
	}

	ch.Partition(true)
	if _, err := client.Upcall(Request{Op: OpClose}); !errors.Is(err, ErrConnLost) {
		t.Fatalf("partitioned err = %v, want ErrConnLost", err)
	}
	ch.Partition(false)
	if resp, err := client.Upcall(Request{Op: OpClose}); err != nil || !resp.OK {
		t.Fatalf("post-heal: %+v, %v", resp, err)
	}
}
